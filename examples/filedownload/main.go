// Filedownload: the paper's §5.4 wget workload — single-object downloads
// across a bandwidth sweep, default vs ECF.
//
//	go run ./examples/filedownload
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/web"
)

func main() {
	sizes := []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20}
	fmt.Println("wget download completion time (s), WiFi = 1 Mbps")
	fmt.Println("size    LTE(Mbps)  default  ecf      speedup")

	for _, size := range sizes {
		for _, lte := range []float64{2, 5, 10} {
			var dur [2]float64
			for i, schedName := range []string{"minrtt", "ecf"} {
				net := core.NewNetwork(core.DefaultPaths(1, lte))
				conn := net.NewConn(core.ConnOptions{Scheduler: schedName})
				web.Download(conn, size, func(o web.ObjectResult) {
					dur[i] = o.Duration().Seconds()
				})
				net.RunAll()
			}
			fmt.Printf("%4dKB  %9.0f  %7.3f  %7.3f  %6.1f%%\n",
				size>>10, lte, dur[0], dur[1], 100*(1-dur[1]/dur[0]))
		}
	}
	fmt.Println("\nSingle-object downloads barely separate the schedulers (paper Fig 18/19:")
	fmt.Println("parity at small sizes, up to ~20% ECF wins at 512 KB+ on their testbed;")
	fmt.Println("this substrate lands at parity).")
}
