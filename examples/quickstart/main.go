// Quickstart: build a two-path network, open an MPTCP connection with the
// ECF scheduler, transfer a file, and read back the telemetry.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mptcp"
)

func main() {
	// A heterogeneous pair: slow WiFi, fast LTE — the configuration
	// where scheduler choice matters most.
	net := core.NewNetwork(core.DefaultPaths(0.3, 8.6))

	for _, schedName := range []string{"minrtt", "ecf"} {
		conn := net.NewConn(core.ConnOptions{Scheduler: schedName})

		var done *mptcp.Transfer
		conn.Request(2<<20, func(tr *mptcp.Transfer) { done = tr })
		net.RunAll()

		fmt.Printf("%-7s 2 MiB in %.2fs (%.2f Mbps)",
			schedName, done.Duration().Seconds(),
			2*8*1.048576/done.Duration().Seconds())
		if diff, ok := done.LastPacketTimeDiff(0, 1); ok {
			fmt.Printf(", last-packet gap between paths %.2fs", diff.Seconds())
		}
		fmt.Println()

		for _, sf := range conn.Subflows() {
			fmt.Printf("  %-5s srtt=%4dms cwnd=%5.1f segs sent=%d\n",
				sf.Name(), sf.Srtt().Milliseconds(), sf.CwndSegments(), sf.Stats().SegmentsSent)
		}
		conn.Close()
	}
}
