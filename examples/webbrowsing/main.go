// Webbrowsing: the paper's §5.5 workload — a CNN-like page of 107 objects
// over six parallel persistent MPTCP connections, comparing per-object
// completion-time distributions.
//
//	go run ./examples/webbrowsing
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mptcp"
	"repro/internal/web"
)

func main() {
	const wifiMbps, lteMbps = 1.0, 10.0
	objects := web.CNNPageObjects(1)
	var total int64
	for _, o := range objects {
		total += o
	}
	fmt.Printf("page: %d objects, %.2f MB total; %.0f/%.0f Mbps WiFi/LTE, 6 connections\n\n",
		len(objects), float64(total)/1e6, wifiMbps, lteMbps)
	fmt.Println("scheduler  p50      p90      p99      mean     page-load")

	for _, schedName := range []string{"minrtt", "daps", "blest", "ecf"} {
		net := core.NewNetwork(core.DefaultPaths(wifiMbps, lteMbps))
		conns := make([]*mptcp.Conn, 6)
		for i := range conns {
			conns[i] = net.NewConn(core.ConnOptions{Scheduler: schedName})
		}
		var res *web.PageResult
		web.FetchPage(net.Engine(), conns, web.PageConfig{
			Objects:   objects,
			ThinkTime: 30 * time.Millisecond,
		}, func(r *web.PageResult) { res = r })
		net.RunAll()

		c := metrics.NewCDF(metrics.DurationsToSeconds(res.CompletionTimes()))
		fmt.Printf("%-9s %.3fs   %.3fs   %.3fs   %.3fs   %.2fs\n",
			schedName, c.Quantile(0.5), c.Quantile(0.9), c.Quantile(0.99), c.Mean(),
			res.PageLoadTime.Seconds())
	}
	fmt.Println("\nECF improves the completion-time tail (p99) under path heterogeneity.")
}
