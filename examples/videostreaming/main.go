// Videostreaming: the paper's §5.2 workload — a DASH session over
// heterogeneous paths, comparing all four schedulers on achieved bitrate,
// window resets and out-of-order delay.
//
//	go run ./examples/videostreaming
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dash"
	"repro/internal/metrics"
)

func main() {
	const wifiMbps, lteMbps, videoSec = 0.3, 8.6, 180
	ideal := dash.IdealBitrateMbps(wifiMbps+lteMbps, dash.StandardLadder)

	fmt.Printf("DASH streaming, %.1f Mbps WiFi / %.1f Mbps LTE, %.0f s video (ideal %.2f Mbps)\n\n",
		wifiMbps, lteMbps, float64(videoSec), ideal)
	fmt.Println("scheduler  bitrate  ratio  throughput  IW-resets  mean-OOO")

	for _, schedName := range []string{"minrtt", "daps", "blest", "ecf"} {
		net := core.NewNetwork(core.DefaultPaths(wifiMbps, lteMbps))
		conn := net.NewConn(core.ConnOptions{Scheduler: schedName})
		player := dash.NewPlayer(net.Engine(), conn, dash.PlayerConfig{
			VideoSeconds: videoSec,
		})
		var res *dash.Result
		player.Start(func(r *dash.Result) { res = r })
		net.RunAll()

		var iw int64
		for _, sf := range conn.Subflows() {
			iw += sf.Stats().IWResets
		}
		ooo := metrics.NewCDF(metrics.DurationsToSeconds(conn.Receiver().OOODelays()))
		fmt.Printf("%-9s %6.2f  %5.2f  %9.2f  %9d  %7.3fs\n",
			schedName, res.AvgBitrateMbps(), res.AvgBitrateMbps()/ideal,
			res.AvgThroughputMbps(), iw, ooo.Mean())
	}
	fmt.Println("\nECF should achieve the highest bitrate ratio with the fewest window resets.")
}
