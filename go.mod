module repro

go 1.21
