package repro

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper, plus ablation benches for the design choices called out in
// the design notes below. Run with:
//
//	go test -bench=. -benchmem
//
// Each bench executes the experiment at a bench-scale profile and reports
// the headline quantity of the corresponding artifact via b.ReportMetric,
// so a bench run doubles as a compact reproduction report. For the full
// printed tables use cmd/ecfbench.

import (
	"testing"

	"repro/internal/dash"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// benchScale keeps individual benches in the seconds range while staying
// long enough for steady-state behaviour.
var benchScale = experiments.Scale{
	VideoSec:        180,
	GridVideoSec:    60,
	RandomDurSec:    160,
	RandomScenarios: 5,
	WebRuns:         3,
	WildWebRuns:     9,
}

func BenchmarkTable1Ladder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table1()
		if len(r.Ladder) != 6 {
			b.Fatal("bad ladder")
		}
	}
}

func BenchmarkTable2RTT(b *testing.B) {
	var r *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table2(benchScale)
	}
	b.ReportMetric(float64(r.WifiRTT[0].Milliseconds()), "wifi-rtt@0.3Mbps-ms")
	b.ReportMetric(float64(r.WifiRTT[5].Milliseconds()), "wifi-rtt@8.6Mbps-ms")
	b.ReportMetric(float64(r.LteRTT[5].Milliseconds()), "lte-rtt@8.6Mbps-ms")
}

func BenchmarkTable3IWResets(b *testing.B) {
	var r *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table3(benchScale)
	}
	for i, s := range r.Schedulers {
		b.ReportMetric(float64(r.IWResets[i]), s+"-resets")
	}
}

func BenchmarkTable4WildWeb(b *testing.B) {
	var r *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		r = experiments.Table4(benchScale)
	}
	ci, oi := r.Improvement()
	b.ReportMetric(ci*100, "completion-improvement-%")
	b.ReportMetric(oi*100, "ooo-improvement-%")
}

func BenchmarkFigure1OnOff(b *testing.B) {
	var r *experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure1(benchScale)
	}
	b.ReportMetric(float64(r.OffPeriods), "off-periods")
}

func BenchmarkFigure2DefaultHeatmap(b *testing.B) {
	var r *experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure2(benchScale)
	}
	h := r.Grid.Heatmap()
	b.ReportMetric(h.Mean(), "mean-ratio")
	// The heterogeneous corner (0.3 WiFi, 8.6 LTE): row 5, col 0.
	b.ReportMetric(h.At(5, 0), "ratio@0.3/8.6")
}

func BenchmarkFigure3SendBuffer(b *testing.B) {
	var r *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure3(benchScale)
	}
	peaks := r.PeakBytes()
	b.ReportMetric(peaks[0]/1024, "wifi-peak-KB")
	b.ReportMetric(peaks[1]/1024, "lte-peak-KB")
}

func BenchmarkFigure5LastPacketDiff(b *testing.B) {
	var r *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure5(benchScale)
	}
	b.ReportMetric(r.Median(0).Seconds(), "median@0.3-8.6-s")
	b.ReportMetric(r.Median(3).Seconds(), "median@4.2-8.6-s")
}

func BenchmarkFigure6CwndReset(b *testing.B) {
	var r *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure6(benchScale)
	}
	// The 0.3/8.6 cell: WiFi index 0, LTE index 5.
	b.ReportMetric(r.WithReset.Cells[0][5].ThroughputMbps, "with-reset-Mbps")
	b.ReportMetric(r.NoReset.Cells[0][5].ThroughputMbps, "no-reset-Mbps")
}

func BenchmarkFigure7TrafficSplit(b *testing.B) {
	var r *experiments.Figure7Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure7(benchScale)
	}
	c := r.Grid.Cells[0][5]
	b.ReportMetric(c.FastFraction, "default-frac@0.3/8.6")
	b.ReportMetric(c.IdealFraction, "ideal-frac@0.3/8.6")
}

func BenchmarkFigure9SchedulerHeatmaps(b *testing.B) {
	var r *experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure9(benchScale)
	}
	for _, s := range r.Order {
		b.ReportMetric(r.MeanRatio(s), s+"-mean-ratio")
	}
}

func BenchmarkFigure10TrafficSplit(b *testing.B) {
	var r *experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure10(benchScale)
	}
	b.ReportMetric(r.ECF.Cells[0][5].FastFraction, "ecf-frac@0.3/8.6")
	b.ReportMetric(r.BLEST.Cells[0][5].FastFraction, "blest-frac@0.3/8.6")
}

func BenchmarkFigure11WifiCwnd(b *testing.B) {
	var r *experiments.CwndTraceResult
	for i := 0; i < b.N; i++ {
		r = experiments.Figure11(benchScale)
	}
	b.ReportMetric(r.MeanCwnd("minrtt"), "default-mean-cwnd")
	b.ReportMetric(r.MeanCwnd("ecf"), "ecf-mean-cwnd")
}

func BenchmarkFigure12LteCwnd(b *testing.B) {
	var r *experiments.CwndTraceResult
	for i := 0; i < b.N; i++ {
		r = experiments.Figure12(benchScale)
	}
	b.ReportMetric(r.MeanCwnd("minrtt"), "default-mean-cwnd")
	b.ReportMetric(r.MeanCwnd("ecf"), "ecf-mean-cwnd")
}

func BenchmarkFigure13OooDefault(b *testing.B) {
	var r *experiments.Figure13Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure13(benchScale)
	}
	b.ReportMetric(r.CDFs[0].Mean(), "mean-ooo@0.3-8.6-s")
	b.ReportMetric(r.CDFs[3].Mean(), "mean-ooo@4.2-8.6-s")
}

func BenchmarkFigure14OooSchedulers(b *testing.B) {
	var r *experiments.Figure14Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure14(benchScale)
	}
	for _, s := range r.Heterogeneous.Schedulers {
		b.ReportMetric(r.Heterogeneous.CDFs[s].Mean(), s+"-mean-ooo-s")
	}
}

func BenchmarkFigure15FourSubflows(b *testing.B) {
	var r *experiments.Figure15Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure15(benchScale)
	}
	b.ReportMetric(r.DefaultRatio[5], "default-ratio@0.3/8.6")
	b.ReportMetric(r.ECFRatio[5], "ecf-ratio@0.3/8.6")
}

func BenchmarkFigure16RandomBandwidth(b *testing.B) {
	var r *experiments.Figure16Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure16(benchScale)
	}
	for _, s := range r.Schedulers {
		b.ReportMetric(r.MeanThroughput(s), s+"-Mbps")
	}
}

func BenchmarkFigure17ChunkTrace(b *testing.B) {
	var r *experiments.Figure17Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure17(benchScale)
	}
	b.ReportMetric(float64(len(r.ECF)), "chunks")
}

func BenchmarkFigure18Wget(b *testing.B) {
	var r *experiments.Figure18Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure18(benchScale)
	}
	// 512 KB at LTE 10 Mbps (index 9), the paper's headline wget case.
	b.ReportMetric(r.Mean[512<<10]["minrtt"][9], "default-512KB@1-10-s")
	b.ReportMetric(r.Mean[512<<10]["ecf"][9], "ecf-512KB@1-10-s")
}

func BenchmarkFigure19WgetRatio(b *testing.B) {
	var r *experiments.Figure19Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure19(benchScale)
	}
	b.ReportMetric(float64(r.WorseCells()), "ecf-worse-cells")
}

func BenchmarkFigure20WebCompletion(b *testing.B) {
	var r *experiments.WebBrowsingResult
	for i := 0; i < b.N; i++ {
		r = experiments.Figure20(benchScale)
	}
	// Config 2: 1.0 Mbps WiFi / 10.0 Mbps LTE — p99 per scheduler.
	for _, s := range r.Schedulers {
		b.ReportMetric(r.Completions[s][2].Quantile(0.99), s+"-p99-s")
	}
}

func BenchmarkFigure21WebOoo(b *testing.B) {
	var r *experiments.WebBrowsingResult
	for i := 0; i < b.N; i++ {
		r = experiments.Figure21(benchScale)
	}
	for _, s := range r.Schedulers {
		b.ReportMetric(r.OOO[s][2].Mean(), s+"-mean-ooo-s")
	}
}

func BenchmarkFigure22WildStreaming(b *testing.B) {
	sc := benchScale
	sc.VideoSec = 120
	var r *experiments.Figure22Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure22(sc)
	}
	def, ecf := r.MeanThroughput()
	b.ReportMetric(def, "default-Mbps")
	b.ReportMetric(ecf, "ecf-Mbps")
}

func BenchmarkFigure23WildWeb(b *testing.B) {
	var r *experiments.Figure23Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure23(benchScale)
	}
	b.ReportMetric(r.MeanCompletion["minrtt"].Seconds(), "default-completion-s")
	b.ReportMetric(r.MeanCompletion["ecf"].Seconds(), "ecf-completion-s")
}

// --- Ablation benches (design-choice studies) ---

func BenchmarkAblationBeta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, beta := range []float64{0, 0.25, 1.0} {
			beta := beta
			e := sched.NewECF()
			e.Beta = beta
			ratio := runECFVariant(e)
			b.ReportMetric(ratio, "ratio-beta-"+ftoa(beta))
		}
	}
}

func BenchmarkAblationDelta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := sched.NewECF()
		off := sched.NewECF()
		off.UseDelta = false
		b.ReportMetric(runECFVariant(on), "ratio-delta-on")
		b.ReportMetric(runECFVariant(off), "ratio-delta-off")
	}
}

func BenchmarkAblationGuard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		on := sched.NewECF()
		off := sched.NewECF()
		off.UseGuard = false
		b.ReportMetric(runECFVariant(on), "ratio-guard-on")
		b.ReportMetric(runECFVariant(off), "ratio-guard-off")
	}
}

func BenchmarkAblationSlowStartAware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		plain := sched.NewECF()
		aware := sched.NewECF()
		aware.SlowStartAware = true
		b.ReportMetric(runECFVariant(plain), "ratio-plain")
		b.ReportMetric(runECFVariant(aware), "ratio-ss-aware")
	}
}

func BenchmarkAblationIdleRestart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, schedName := range []string{"minrtt", "ecf"} {
			on := experiments.RunStreaming(experiments.StreamConfig{
				WifiMbps: 0.3, LteMbps: 8.6, Scheduler: schedName, VideoSec: benchScale.VideoSec,
			})
			off := experiments.RunStreaming(experiments.StreamConfig{
				WifiMbps: 0.3, LteMbps: 8.6, Scheduler: schedName, VideoSec: benchScale.VideoSec,
				DisableIdleRestart: true,
			})
			b.ReportMetric(on.Result.AvgThroughputMbps(), schedName+"-reset-on-Mbps")
			b.ReportMetric(off.Result.AvgThroughputMbps(), schedName+"-reset-off-Mbps")
		}
	}
}

func BenchmarkAblationCongestionControl(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ccName := range []string{"lia", "olia", "reno"} {
			out := experiments.RunStreaming(experiments.StreamConfig{
				WifiMbps: 0.3, LteMbps: 8.6, Scheduler: "ecf", CC: ccName,
				VideoSec: benchScale.VideoSec,
			})
			b.ReportMetric(out.Result.AvgThroughputMbps(), ccName+"-Mbps")
		}
	}
}

// runECFVariant streams the hot cell with a specific ECF instance.
func runECFVariant(e *sched.ECF) float64 {
	out := experiments.RunStreaming(experiments.StreamConfig{
		WifiMbps: 0.3, LteMbps: 8.6,
		SchedulerInstance: e,
		VideoSec:          benchScale.VideoSec,
	})
	return out.Result.AvgBitrateMbps() / dash.IdealBitrateMbps(8.9, dash.StandardLadder)
}

// --- Micro-benches for the substrate itself ---

func BenchmarkSubstrateStreamingCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunStreaming(experiments.StreamConfig{
			WifiMbps: 4.2, LteMbps: 8.6, Scheduler: "ecf", VideoSec: 60,
		})
	}
}

func BenchmarkSubstrateOOOCDF(b *testing.B) {
	out := experiments.RunStreaming(experiments.StreamConfig{
		WifiMbps: 0.3, LteMbps: 8.6, Scheduler: "minrtt", VideoSec: 60,
	})
	xs := metrics.DurationsToSeconds(out.OOODelays)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := metrics.NewCDF(xs)
		_ = c.Quantile(0.99)
	}
}

func ftoa(f float64) string {
	switch f {
	case 0:
		return "0"
	case 0.25:
		return "0.25"
	case 1.0:
		return "1.0"
	default:
		return "x"
	}
}
