package sched

import (
	"repro/internal/mptcp"
	"repro/internal/obs"
	"repro/internal/tcp"
)

// DAPS is the Delay-Aware Packet Scheduler (Kuhn et al., ICC 2014). It
// plans segment-to-path assignments so that traffic is split across
// subflows inversely proportional to their RTTs (weighted by window, i.e.
// proportionally to each path's cwnd/RTT service rate), aiming for
// in-order arrival at the receiver.
//
// We realize the plan with deficit counters: every scheduling decision
// credits each subflow with its normalized service-rate share and sends
// on the available subflow with the largest accumulated credit. This
// keeps the slow path persistently busy — including at burst tails, which
// is exactly the pathology §3.2 describes and why DAPS trails the other
// schedulers in the paper's results. Its strong dependence on the RTT
// ratio (§5.4) is retained: the plan follows SRTT estimates wherever they
// lead.
type DAPS struct {
	// credit is indexed by subflow ID — IDs are the subflow's position
	// in the connection's creation order, so the counters are a dense
	// slice rather than a map hashed on every scheduling decision.
	credit []float64
	// sink, when non-nil, receives one record per Select call (decision
	// tracing; installed only on the traced cell, cleared by Reset).
	sink obs.DecisionSink
}

// NewDAPS returns a DAPS scheduler.
func NewDAPS() *DAPS { return &DAPS{} }

// Name implements mptcp.Scheduler.
func (*DAPS) Name() string { return "daps" }

// Reset implements mptcp.Resettable: deficit counters clear (the slice
// keeps its capacity for the next connection's subflows).
func (d *DAPS) Reset() {
	d.credit = d.credit[:0]
	d.sink = nil
}

// SetDecisionSink implements obs.DecisionRecording.
func (d *DAPS) SetDecisionSink(s obs.DecisionSink) { d.sink = s }

// rate returns a subflow's service rate in segments/second.
func dapsRate(sf *tcp.Subflow) float64 {
	rtt := effSrtt(sf).Seconds()
	if rtt <= 0 {
		rtt = 0.1
	}
	w := sf.CwndSegments()
	if w < 1 {
		w = 1
	}
	return w / rtt
}

// Select implements mptcp.Scheduler.
func (d *DAPS) Select(c *mptcp.Conn) *tcp.Subflow {
	subflows := c.Subflows()
	for len(d.credit) < len(subflows) {
		d.credit = append(d.credit, 0)
	}
	var sum float64
	anyAvailable := false
	for _, sf := range subflows {
		sum += dapsRate(sf)
		if sf.CanSend() {
			anyAvailable = true
		}
	}
	if !anyAvailable || sum <= 0 {
		if d.sink != nil {
			recordDecision(d.sink, c, "daps", nil, false, "no subflow with window space", nil)
		}
		return nil
	}
	// Credit every subflow with its share of one segment.
	for _, sf := range subflows {
		d.credit[sf.ID()] += dapsRate(sf) / sum
	}
	// Send on the available subflow with the largest credit.
	var best *tcp.Subflow
	for _, sf := range subflows {
		if !sf.CanSend() {
			continue
		}
		if best == nil || d.credit[sf.ID()] > d.credit[best.ID()] {
			best = sf
		}
	}
	d.credit[best.ID()]--
	if d.sink != nil {
		recordDecision(d.sink, c, "daps", best, false, "largest deficit credit among available subflows",
			func(dec *obs.SchedDecision) {
				for i := range dec.Candidates {
					if id := subflows[i].ID(); id < len(d.credit) {
						dec.Candidates[i].Score = d.credit[id]
					}
				}
			})
	}
	return best
}
