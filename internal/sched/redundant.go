package sched

import (
	"repro/internal/mptcp"
	"repro/internal/tcp"
)

// Redundant duplicates every segment onto all subflows with window space
// (the mptcp.org kernel's "redundant" scheduler). It trades goodput for
// latency robustness: the receiver keeps whichever copy arrives first, so
// a slow path can never delay in-order delivery. It is not part of the
// paper's comparison but serves as an instructive extension baseline: it
// bounds the achievable out-of-order delay from below while wasting the
// aggregate bandwidth the paper's schedulers try to harvest.
type Redundant struct {
	// dups is the reused scratch for SelectDuplicates; the connection
	// consumes the returned slice before the next scheduling decision.
	dups []*tcp.Subflow
}

// NewRedundant returns a redundant scheduler.
func NewRedundant() *Redundant { return &Redundant{} }

// Name implements mptcp.Scheduler.
func (*Redundant) Name() string { return "redundant" }

// Reset implements mptcp.Resettable: the scratch buffer empties (its
// capacity is kept).
func (r *Redundant) Reset() { r.dups = r.dups[:0] }

// Select implements mptcp.Scheduler: new data is paced by the lowest-RTT
// subflow; if it has no window space the scheduler waits rather than
// strand a sole copy on a slow path (which would reintroduce exactly the
// head-of-line delays redundancy exists to avoid).
func (r *Redundant) Select(c *mptcp.Conn) *tcp.Subflow {
	xf := fastestOverall(c.Subflows())
	if xf != nil && xf.CanSend() {
		return xf
	}
	return nil
}

// SelectDuplicates implements mptcp.DuplicatingScheduler: every other
// available subflow carries a redundant copy. The returned slice is
// scheduler-owned scratch, valid until the next call.
func (r *Redundant) SelectDuplicates(c *mptcp.Conn, primary *tcp.Subflow) []*tcp.Subflow {
	r.dups = r.dups[:0]
	for _, sf := range c.Subflows() {
		if sf != primary && sf.CanSend() {
			r.dups = append(r.dups, sf)
		}
	}
	return r.dups
}
