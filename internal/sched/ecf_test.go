package sched

import (
	"testing"
	"testing/quick"
)

// The paper's §3.2 worked example: RTTs 10 ms and 100 ms, both CWNDs 10,
// 11 packets remaining. Waiting for the fast subflow completes in 20 ms
// versus 100 ms for splitting — ECF must wait.
func TestECFPaperWorkedExample(t *testing.T) {
	waiting := false
	wait := ecfDecide(ecfInput{
		K:     11,
		CwndF: 10,
		CwndS: 10,
		RTTF:  0.010,
		RTTS:  0.100,
		Delta: 0,
	}, &waiting, 0.25, true)
	if !wait {
		t.Fatal("ECF must wait for the fast subflow in the paper's §3.2 example")
	}
	if !waiting {
		t.Fatal("hysteresis state should be set after a wait decision")
	}
}

func TestECFUsesSlowPathForLargeBacklog(t *testing.T) {
	// Huge backlog: even the fast path needs many RTTs, so the slow path
	// adds useful bandwidth. n·RTT_f = (1+1000/10)·10ms ≈ 1s >> 100ms.
	waiting := false
	wait := ecfDecide(ecfInput{
		K:     1000,
		CwndF: 10,
		CwndS: 10,
		RTTF:  0.010,
		RTTS:  0.100,
		Delta: 0,
	}, &waiting, 0.25, true)
	if wait {
		t.Fatal("ECF must use the slow subflow when the backlog is large")
	}
	if waiting {
		t.Fatal("hysteresis state should be cleared")
	}
}

func TestECFGuardPreventsWaitWhenSlowFinishesFast(t *testing.T) {
	// First inequality holds (waiting looks good) but the slow subflow
	// could drain k within two fast RTTs — guard fails, use the slow one.
	// k=1, cwndS=10: k/cwndS·RTT_s = 6ms < 2·RTT_f = 100ms.
	waiting := false
	wait := ecfDecide(ecfInput{
		K:     1,
		CwndF: 10,
		CwndS: 10,
		RTTF:  0.050,
		RTTS:  0.060,
		Delta: 0,
	}, &waiting, 0.25, true)
	if wait {
		t.Fatal("guard inequality should have prevented waiting")
	}
	// Same input with the guard disabled must wait.
	waiting = false
	wait = ecfDecide(ecfInput{
		K:     1,
		CwndF: 10,
		CwndS: 10,
		RTTF:  0.050,
		RTTS:  0.060,
		Delta: 0,
	}, &waiting, 0.25, false)
	if !wait {
		t.Fatal("without the guard this input satisfies the wait inequality")
	}
}

func TestECFHysteresisBeta(t *testing.T) {
	// Borderline input: n·RTT_f slightly above RTT_s + δ, so a fresh
	// decision sends on xs; but in the waiting state the (1+β) factor
	// keeps it waiting.
	in := ecfInput{
		K:     20,
		CwndF: 10,
		CwndS: 10,    // guard: 20/10·110 = 220 ms ≥ 2·40 = 80 ms holds
		RTTF:  0.040, // n·RTT_f = 3·40 = 120 ms
		RTTS:  0.110, // RTT_s+δ = 110 ms < 120 ms < 1.25·110 = 137.5 ms
		Delta: 0,
	}
	waiting := false
	if wait := ecfDecide(in, &waiting, 0.25, true); wait {
		t.Fatal("fresh decision should use the slow subflow")
	}
	waiting = true
	if wait := ecfDecide(in, &waiting, 0.25, true); !wait {
		t.Fatal("waiting state with β=0.25 should keep waiting on borderline input")
	}
	// With β=0 the waiting state must not change the decision.
	waiting = true
	if wait := ecfDecide(in, &waiting, 0, true); wait {
		t.Fatal("with β=0 hysteresis must have no effect")
	}
}

func TestECFDeltaMarginMattersForJitteryPaths(t *testing.T) {
	// Without δ the slow path looks usable; a large σ tips the decision
	// to waiting (RTT_s + δ grows).
	base := ecfInput{K: 30, CwndF: 10, CwndS: 10, RTTF: 0.030, RTTS: 0.100}
	waiting := false
	if wait := ecfDecide(base, &waiting, 0.25, true); wait {
		t.Fatal("without delta this input should use the slow path")
	}
	jittery := base
	jittery.Delta = 0.050
	waiting = false
	if wait := ecfDecide(jittery, &waiting, 0.25, true); !wait {
		t.Fatal("with a 50 ms sigma the wait inequality should hold")
	}
}

func TestECFSymmetricPathsNeverWait(t *testing.T) {
	// Property: with identical path characteristics, ECF behaves like the
	// default scheduler (never waits) — the paper's homogeneous parity.
	if err := quick.Check(func(kRaw uint16, cwndRaw, rttMs uint8) bool {
		k := float64(kRaw%2000) + 1
		cwnd := float64(cwndRaw%100) + 1
		rtt := float64(rttMs%200+1) / 1000
		waiting := false
		// RTT_f == RTT_s: n·RTT_f = (1+k/w)·rtt >= rtt + 0 always
		// (since k >= 1 ⇒ n > 1) ... wait requires strict <.
		return !ecfDecide(ecfInput{K: k, CwndF: cwnd, CwndS: cwnd, RTTF: rtt, RTTS: rtt},
			&waiting, 0.25, true)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestECFZeroRTTSendsOnSlow(t *testing.T) {
	// Before any RTT samples both srtt values are zero: ECF must not
	// deadlock waiting; inequality 0 < 0 is false so it uses xs.
	waiting := false
	if wait := ecfDecide(ecfInput{K: 5, CwndF: 10, CwndS: 10}, &waiting, 0.25, true); wait {
		t.Fatal("zero-RTT input should fall through to the slow subflow")
	}
}

func TestECFWaitImpliesFastIsFaster(t *testing.T) {
	// Property: whenever ECF waits, the projected fast-path completion
	// (1+k/wf)·rttF is indeed below the slow-path option rttS+δ scaled by
	// at most (1+β) — i.e. the wait is always justified by the model.
	if err := quick.Check(func(kRaw uint16, wfRaw, wsRaw uint8, rttFms, rttSms uint16) bool {
		in := ecfInput{
			K:     float64(kRaw%3000) + 1,
			CwndF: float64(wfRaw%200) + 1,
			CwndS: float64(wsRaw%200) + 1,
			RTTF:  float64(rttFms%1000+1) / 1000,
			RTTS:  float64(rttSms%1000+1) / 1000,
		}
		waiting := false
		if !ecfDecide(in, &waiting, 0.25, true) {
			return true
		}
		n := 1 + in.K/in.CwndF
		return n*in.RTTF < (1+0.25)*(in.RTTS+in.Delta)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBLESTDecide(t *testing.T) {
	// Tiny free window: the fast path could send far more than the
	// remaining window during one slow RTT — skip the slow subflow.
	if !blestDecide(blestInput{
		RTTF: 0.010, RTTS: 0.100, CwndF: 50, MSS: 1400,
		FreeBytes: 20_000, InflightS: 5_000,
	}, 1.0) {
		t.Fatal("BLEST should skip the slow subflow with a near-full window")
	}
	// Huge free window: no blocking risk, use the slow subflow.
	if blestDecide(blestInput{
		RTTF: 0.010, RTTS: 0.100, CwndF: 50, MSS: 1400,
		FreeBytes: 8 << 20, InflightS: 5_000,
	}, 1.0) {
		t.Fatal("BLEST should use the slow subflow with a huge window")
	}
}

func TestBLESTNoEstimatesFallsThrough(t *testing.T) {
	if blestDecide(blestInput{RTTF: 0, RTTS: 0.1, CwndF: 10, MSS: 1400, FreeBytes: 1e6}, 1.0) {
		t.Fatal("BLEST with no fast-path RTT estimate must not skip")
	}
}

func TestBLESTLambdaScalesConservatism(t *testing.T) {
	in := blestInput{
		RTTF: 0.010, RTTS: 0.100, CwndF: 50, MSS: 1400,
		FreeBytes: 800_000, InflightS: 0,
	}
	// X = 1400·(50+4.5)·10 = 763 KB: with λ=1 it fits 800 KB, with λ=1.5
	// it does not.
	if blestDecide(in, 1.0) {
		t.Fatal("λ=1 should fit")
	}
	if !blestDecide(in, 1.5) {
		t.Fatal("λ=1.5 should not fit")
	}
}
