package sched

import (
	"testing"
	"time"

	"repro/internal/mptcp"
)

func TestRedundantDuplicatesEverySegment(t *testing.T) {
	r := newRig(t, NewRedundant(), 8, 8)
	var tr *mptcp.Transfer
	r.conn.Request(500_000, func(x *mptcp.Transfer) { tr = x })
	r.eng.Run()
	if tr == nil {
		t.Fatal("transfer did not complete")
	}
	if r.conn.DuplicateSends() == 0 {
		t.Fatal("redundant scheduler sent no duplicates")
	}
	// The receiver must have seen (and discarded) redundant DSNs.
	if r.conn.Receiver().DuplicateArrivals() == 0 {
		t.Fatal("no duplicate arrivals recorded")
	}
	if got := r.conn.Receiver().DeliveredBytes(); got != 500_000 {
		t.Fatalf("delivered %d, want 500000", got)
	}
}

func TestRedundantLowersOOODelayVsDefault(t *testing.T) {
	// The redundant scheduler bounds out-of-order delay from below: the
	// first copy to arrive is delivered, so heterogeneity cannot stall
	// in-order delivery for long.
	mean := func(s mptcp.Scheduler) float64 {
		r := newRig(t, s, 0.3, 8.6)
		runBurstySized(r, 4, 500_000)
		var sum float64
		ds := r.conn.Receiver().OOODelays()
		if len(ds) == 0 {
			return 0
		}
		for _, d := range ds {
			sum += d.Seconds()
		}
		return sum / float64(len(ds))
	}
	if red, def := mean(NewRedundant()), mean(NewMinRTT()); red > def {
		t.Fatalf("redundant mean OOO %.4f > default %.4f", red, def)
	}
}

func TestRedundantGoodputCostOnSymmetricPaths(t *testing.T) {
	// The flip side: on symmetric paths duplication forfeits half the
	// aggregate capacity, so bulk completion is clearly slower than
	// ECF's, which harvests both paths.
	run := func(s mptcp.Scheduler) time.Duration {
		r := newRig(t, s, 8, 8)
		return runBurstySized(r, 4, 2<<20)
	}
	red := run(NewRedundant())
	ecf := run(NewECF())
	if red <= ecf*11/10 {
		t.Fatalf("redundant %v not clearly slower than ecf %v on symmetric paths", red, ecf)
	}
}

func TestRedundantRegistered(t *testing.T) {
	f, err := Factory("redundant")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f().(mptcp.DuplicatingScheduler); !ok {
		t.Fatal("redundant must implement DuplicatingScheduler")
	}
}
