package sched

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/mptcp"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// rig builds a two-path connection with the given scheduler.
type rig struct {
	eng  *sim.Engine
	conn *mptcp.Conn
	wifi *netsim.Path
	lte  *netsim.Path
}

func newRig(t *testing.T, s mptcp.Scheduler, wifiMbps, lteMbps float64) *rig {
	t.Helper()
	eng := sim.New()
	wifi := netsim.NewPath(eng, netsim.PathConfig{Name: "wifi", RateBps: wifiMbps * 1e6, Delay: 10 * time.Millisecond, QueueBytes: 48 << 10})
	lte := netsim.NewPath(eng, netsim.PathConfig{Name: "lte", RateBps: lteMbps * 1e6, Delay: 40 * time.Millisecond, QueueBytes: 48 << 10})
	conn := mptcp.NewConn(eng, mptcp.DefaultConfig(0), cc.NewLIA())
	conn.SetScheduler(s)
	for _, p := range []*netsim.Path{wifi, lte} {
		fwd, rev := netsim.NewDemux(), netsim.NewDemux()
		p.SetForwardReceiver(fwd.OnPacket)
		p.SetReverseReceiver(rev.OnPacket)
		conn.AddSubflow(p.Name(), p, fwd, rev)
	}
	return &rig{eng: eng, conn: conn, wifi: wifi, lte: lte}
}

// runBursty models the multi-download pattern of §3: repeated requests
// separated by 1 s OFF periods, returning the sum of burst durations.
func runBursty(r *rig, bursts int) time.Duration {
	return runBurstySized(r, bursts, 300_000)
}

// runBurstySized is runBursty with a configurable burst size. Larger
// bursts (~1 MB, a 480p chunk) are where the schedulers' tail decisions
// separate most clearly.
func runBurstySized(r *rig, bursts int, size int64) (sumDur time.Duration) {
	var durations []time.Duration
	var issue func(i int)
	issue = func(i int) {
		if i >= bursts {
			return
		}
		r.conn.Request(size, func(tr *mptcp.Transfer) {
			durations = append(durations, tr.Duration())
			r.eng.Schedule(time.Second, func() { issue(i + 1) })
		})
	}
	issue(0)
	r.eng.Run()
	for _, d := range durations {
		sumDur += d
	}
	return sumDur
}

func TestAllSchedulersCompleteBurstyWorkload(t *testing.T) {
	for _, mk := range []func() mptcp.Scheduler{
		func() mptcp.Scheduler { return NewMinRTT() },
		func() mptcp.Scheduler { return NewECF() },
		func() mptcp.Scheduler { return NewBLEST() },
		func() mptcp.Scheduler { return NewDAPS() },
		func() mptcp.Scheduler { return NewRoundRobin() },
	} {
		s := mk()
		r := newRig(t, s, 1, 8)
		sum := runBursty(r, 5)
		if sum <= 0 {
			t.Fatalf("%s: bursty workload did not complete", s.Name())
		}
		if got := r.conn.Receiver().DeliveredBytes(); got != 5*300_000 {
			t.Fatalf("%s: delivered %d bytes, want %d", s.Name(), got, 5*300_000)
		}
	}
}

func TestECFBeatsDefaultUnderHeterogeneity(t *testing.T) {
	// The headline claim: with a 0.3/8.6 Mbps split and bursty traffic,
	// ECF completes bursts faster than the default scheduler.
	rDef := newRig(t, NewMinRTT(), 0.3, 8.6)
	sumDef := runBurstySized(rDef, 8, 1<<20)
	rEcf := newRig(t, NewECF(), 0.3, 8.6)
	sumEcf := runBurstySized(rEcf, 8, 1<<20)
	if sumEcf >= sumDef {
		t.Fatalf("ECF sum %v not better than default %v under heterogeneity", sumEcf, sumDef)
	}
}

func TestECFMatchesDefaultOnSymmetricPaths(t *testing.T) {
	rDef := newRig(t, NewMinRTT(), 8, 8)
	sumDef := runBursty(rDef, 5)
	rEcf := newRig(t, NewECF(), 8, 8)
	sumEcf := runBursty(rEcf, 5)
	ratio := float64(sumEcf) / float64(sumDef)
	if ratio > 1.10 || ratio < 0.85 {
		t.Fatalf("symmetric paths: ECF/default ratio = %.2f, want ~1", ratio)
	}
}

func TestECFReducesOOODelay(t *testing.T) {
	rDef := newRig(t, NewMinRTT(), 0.3, 8.6)
	runBursty(rDef, 5)
	rEcf := newRig(t, NewECF(), 0.3, 8.6)
	runBursty(rEcf, 5)
	mean := func(ds []time.Duration) float64 {
		if len(ds) == 0 {
			return 0
		}
		var s float64
		for _, d := range ds {
			s += d.Seconds()
		}
		return s / float64(len(ds))
	}
	mDef := mean(rDef.conn.Receiver().OOODelays())
	mEcf := mean(rEcf.conn.Receiver().OOODelays())
	if mEcf >= mDef {
		t.Fatalf("mean OOO delay: ecf=%.4fs default=%.4fs, want ecf smaller", mEcf, mDef)
	}
}

func TestECFShiftsTrafficToFastPath(t *testing.T) {
	rDef := newRig(t, NewMinRTT(), 0.3, 8.6)
	runBurstySized(rDef, 5, 1<<20)
	rEcf := newRig(t, NewECF(), 0.3, 8.6)
	runBurstySized(rEcf, 5, 1<<20)
	frac := func(r *rig) float64 {
		by := r.conn.Receiver().SubflowBytes()
		return float64(by[1]) / float64(by[0]+by[1])
	}
	fDef, fEcf := frac(rDef), frac(rEcf)
	if fEcf <= fDef {
		t.Fatalf("fast-path fraction: ecf=%.3f default=%.3f, want ecf larger", fEcf, fDef)
	}
	// Ideal fraction is 8.6/8.9 ≈ 0.97; over a short 5-burst run the
	// first burst's slow-path probing drags the average, but ECF should
	// still be well past 0.85 (the full-length experiment drivers get
	// much closer to ideal).
	if fEcf < 0.85 {
		t.Fatalf("ECF fast-path fraction = %.3f, want >= 0.85", fEcf)
	}
}

func TestDAPSSplitsByServiceRate(t *testing.T) {
	// Pure decision-level test: two always-available subflows with
	// service rates 10/rtt vs 10/(4·rtt) should see a ~4:1 pick ratio.
	eng := sim.New()
	fast := netsim.NewPath(eng, netsim.PathConfig{Name: "fast", RateBps: 1e9, Delay: 5 * time.Millisecond, QueueBytes: 1 << 30})
	slow := netsim.NewPath(eng, netsim.PathConfig{Name: "slow", RateBps: 1e9, Delay: 20 * time.Millisecond, QueueBytes: 1 << 30})
	cfg := mptcp.DefaultConfig(0)
	cfg.InitialCwnd = 1000 // effectively always available
	conn := mptcp.NewConn(eng, cfg, cc.NewReno())
	d := NewDAPS()
	conn.SetScheduler(d)
	for _, p := range []*netsim.Path{fast, slow} {
		fwd, rev := netsim.NewDemux(), netsim.NewDemux()
		p.SetForwardReceiver(fwd.OnPacket)
		p.SetReverseReceiver(rev.OnPacket)
		conn.AddSubflow(p.Name(), p, fwd, rev)
	}
	subflows := conn.Subflows()
	subflows[0].SeedRTT(10 * time.Millisecond)
	subflows[1].SeedRTT(40 * time.Millisecond)
	counts := map[int]int{}
	for i := 0; i < 1000; i++ {
		sf := d.Select(conn)
		if sf == nil {
			t.Fatal("DAPS returned nil with available subflows")
		}
		counts[sf.ID()]++
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 3.0 || ratio > 5.5 {
		t.Fatalf("DAPS pick ratio = %.2f (counts %v), want ~4", ratio, counts)
	}
}

func TestMinRTTPrefersLowerRTT(t *testing.T) {
	r := newRig(t, NewMinRTT(), 8, 8)
	subflows := r.conn.Subflows()
	// Drive the estimates decisively past the handshake seeds.
	for i := 0; i < 50; i++ {
		subflows[0].SeedRTT(50 * time.Millisecond)
		subflows[1].SeedRTT(20 * time.Millisecond)
	}
	s := NewMinRTT()
	if sf := s.Select(r.conn); sf != subflows[1] {
		t.Fatalf("minRTT picked %s, want the 20ms subflow", sf.Name())
	}
}

func TestMinRTTFallsBackWhenFastFull(t *testing.T) {
	r := newRig(t, NewMinRTT(), 8, 8)
	subflows := r.conn.Subflows()
	subflows[0].SeedRTT(20 * time.Millisecond)
	subflows[1].SeedRTT(50 * time.Millisecond)
	// Fill subflow 0's window.
	for subflows[0].CanSend() {
		subflows[0].SendSegment(0, 1400)
	}
	s := NewMinRTT()
	if sf := s.Select(r.conn); sf != subflows[1] {
		t.Fatal("minRTT should fall back to the slower available subflow")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	r := newRig(t, NewRoundRobin(), 8, 8)
	s := NewRoundRobin()
	first := s.Select(r.conn)
	second := s.Select(r.conn)
	if first == second {
		t.Fatal("round robin returned the same subflow twice")
	}
}

func TestSinglePathSticksToOne(t *testing.T) {
	r := newRig(t, NewSinglePath(1), 8, 8)
	s := NewSinglePath(1)
	for i := 0; i < 5; i++ {
		if sf := s.Select(r.conn); sf == nil || sf.ID() != 1 {
			t.Fatal("single-path scheduler must pin subflow 1")
		}
	}
	if sf := NewSinglePath(9).Select(r.conn); sf != nil {
		t.Fatal("out-of-range single path should return nil")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Names() {
		f, err := Factory(name)
		if err != nil {
			t.Fatalf("Factory(%q): %v", name, err)
		}
		if f() == nil {
			t.Fatalf("factory %q built nil", name)
		}
	}
	if _, err := Factory("nope"); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestECFWaitsCounted(t *testing.T) {
	e := NewECF()
	r := newRig(t, e, 0.3, 8.6)
	runBursty(r, 5)
	if e.Waits() == 0 {
		t.Fatal("ECF should have recorded wait decisions under heterogeneity")
	}
}
