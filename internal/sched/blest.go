package sched

import (
	"repro/internal/mptcp"
	"repro/internal/tcp"
)

// BLEST is the Blocking Estimation-based scheduler (Ferlin et al., IFIP
// Networking 2016). Like ECF it can decline to use a slow subflow, but
// its criterion is different: it estimates whether occupying the
// connection-level send window with a slow-path segment for one slow RTT
// would leave the fast subflow without window space (head-of-line
// blocking of the send window), not whether the fast path will go idle
// for lack of data — the distinction the paper draws in §5.1 and exploits
// in §5.2.3.
//
// Decision (slow subflow S considered because fast subflow F is full):
//
//	rtts = RTT_S / RTT_F                       (fast rounds per slow RTT)
//	X    = MSS·(CWND_F + (rtts-1)/2)·rtts      (bytes F could send meanwhile)
//	skip S when  X·λ  >  |W| − (inflight_S + 1)·MSS
//
// λ is a correction factor adapted upward whenever a send-window stall is
// observed and slowly decayed back toward 1.
type BLEST struct {
	// Lambda is the adaptive correction factor (starts at 1).
	Lambda float64
	// LambdaStep is added to λ on observed send-window stalls.
	LambdaStep float64

	lastStalls int64
	waits      int64
}

// NewBLEST returns a BLEST scheduler with λ = 1.
func NewBLEST() *BLEST {
	return &BLEST{Lambda: 1.0, LambdaStep: 0.25}
}

// Name implements mptcp.Scheduler.
func (*BLEST) Name() string { return "blest" }

// Reset implements mptcp.Resettable: λ returns to its starting value
// (it is adapted per connection) and the stall tracking clears;
// LambdaStep is construction-time configuration and persists.
func (b *BLEST) Reset() {
	b.Lambda = 1.0
	b.lastStalls = 0
	b.waits = 0
}

// Waits reports how many Select calls declined the slow subflow.
func (b *BLEST) Waits() int64 { return b.waits }

// Select implements mptcp.Scheduler.
func (b *BLEST) Select(c *mptcp.Conn) *tcp.Subflow {
	subflows := c.Subflows()
	xf := fastestOverall(subflows)
	if xf == nil {
		return nil
	}
	if xf.CanSend() {
		return xf
	}
	xs := fastestAvailable(subflows)
	if xs == nil {
		return nil
	}

	// Adapt λ: any new send-window stall since the last decision means
	// the previous estimate was too permissive.
	if stalls := c.WindowStalls(); stalls > b.lastStalls {
		b.Lambda += b.LambdaStep
		b.lastStalls = stalls
	} else if b.Lambda > 1 {
		b.Lambda -= 0.01
		if b.Lambda < 1 {
			b.Lambda = 1
		}
	}

	if blestDecide(blestInput{
		RTTF:      effSrtt(xf).Seconds(),
		RTTS:      effSrtt(xs).Seconds(),
		CwndF:     xf.CwndSegments(),
		MSS:       float64(c.MSS()),
		FreeBytes: float64(c.SendWindowFreeBytes()),
		InflightS: float64(xs.InflightBytes()),
	}, b.Lambda) {
		b.waits++
		return nil
	}
	return xs
}

// blestInput carries the quantities of the BLEST blocking estimate.
type blestInput struct {
	RTTF, RTTS float64 // smoothed RTTs, seconds
	CwndF      float64 // fast subflow window, segments
	MSS        float64 // bytes
	FreeBytes  float64 // free connection-level send window
	InflightS  float64 // slow subflow's unacked bytes
}

// blestDecide returns true when the slow subflow should be skipped.
func blestDecide(in blestInput, lambda float64) bool {
	if in.RTTF <= 0 || in.RTTS <= 0 {
		return false // no estimates yet: behave like the default
	}
	rtts := in.RTTS / in.RTTF
	x := in.MSS * (in.CwndF + (rtts-1)/2) * rtts
	occupied := in.InflightS + in.MSS
	return x*lambda > in.FreeBytes-occupied
}
