package sched

import (
	"repro/internal/mptcp"
	"repro/internal/obs"
	"repro/internal/tcp"
)

// BLEST is the Blocking Estimation-based scheduler (Ferlin et al., IFIP
// Networking 2016). Like ECF it can decline to use a slow subflow, but
// its criterion is different: it estimates whether occupying the
// connection-level send window with a slow-path segment for one slow RTT
// would leave the fast subflow without window space (head-of-line
// blocking of the send window), not whether the fast path will go idle
// for lack of data — the distinction the paper draws in §5.1 and exploits
// in §5.2.3.
//
// Decision (slow subflow S considered because fast subflow F is full):
//
//	rtts = RTT_S / RTT_F                       (fast rounds per slow RTT)
//	X    = MSS·(CWND_F + (rtts-1)/2)·rtts      (bytes F could send meanwhile)
//	skip S when  X·λ  >  |W| − (inflight_S + 1)·MSS
//
// λ is a correction factor adapted upward whenever a send-window stall is
// observed and slowly decayed back toward 1.
type BLEST struct {
	// Lambda is the adaptive correction factor (starts at 1).
	Lambda float64
	// LambdaStep is added to λ on observed send-window stalls.
	LambdaStep float64

	lastStalls int64
	waits      int64
	// sink, when non-nil, receives one record per Select call (decision
	// tracing; installed only on the traced cell, cleared by Reset).
	sink obs.DecisionSink
}

// NewBLEST returns a BLEST scheduler with λ = 1.
func NewBLEST() *BLEST {
	return &BLEST{Lambda: 1.0, LambdaStep: 0.25}
}

// Name implements mptcp.Scheduler.
func (*BLEST) Name() string { return "blest" }

// Reset implements mptcp.Resettable: λ returns to its starting value
// (it is adapted per connection) and the stall tracking clears;
// LambdaStep is construction-time configuration and persists.
func (b *BLEST) Reset() {
	b.Lambda = 1.0
	b.lastStalls = 0
	b.waits = 0
	b.sink = nil
}

// SetDecisionSink implements obs.DecisionRecording.
func (b *BLEST) SetDecisionSink(s obs.DecisionSink) { b.sink = s }

// Waits reports how many Select calls declined the slow subflow.
func (b *BLEST) Waits() int64 { return b.waits }

// Select implements mptcp.Scheduler.
func (b *BLEST) Select(c *mptcp.Conn) *tcp.Subflow {
	subflows := c.Subflows()
	xf := fastestOverall(subflows)
	if xf == nil {
		if b.sink != nil {
			recordDecision(b.sink, c, "blest", nil, false, "no subflows", nil)
		}
		return nil
	}
	if xf.CanSend() {
		if b.sink != nil {
			recordDecision(b.sink, c, "blest", xf, false, "fast subflow has window space", nil)
		}
		return xf
	}
	xs := fastestAvailable(subflows)
	if xs == nil {
		if b.sink != nil {
			recordDecision(b.sink, c, "blest", nil, false, "fast subflow full, no alternative with window space", nil)
		}
		return nil
	}

	// Adapt λ: any new send-window stall since the last decision means
	// the previous estimate was too permissive.
	if stalls := c.WindowStalls(); stalls > b.lastStalls {
		b.Lambda += b.LambdaStep
		b.lastStalls = stalls
	} else if b.Lambda > 1 {
		b.Lambda -= 0.01
		if b.Lambda < 1 {
			b.Lambda = 1
		}
	}

	in := blestInput{
		RTTF:      effSrtt(xf).Seconds(),
		RTTS:      effSrtt(xs).Seconds(),
		CwndF:     xf.CwndSegments(),
		MSS:       float64(c.MSS()),
		FreeBytes: float64(c.SendWindowFreeBytes()),
		InflightS: float64(xs.InflightBytes()),
	}
	skip := blestDecide(in, b.Lambda)
	if b.sink != nil {
		b.recordEstimate(c, in, skip, xs)
	}
	if skip {
		b.waits++
		return nil
	}
	return xs
}

// recordEstimate records a decision that reached the blocking estimate.
func (b *BLEST) recordEstimate(c *mptcp.Conn, in blestInput, skip bool, xs *tcp.Subflow) {
	ev := blestEvaluate(in, b.Lambda)
	q := &obs.BlestQuantities{
		RTTF: in.RTTF, RTTS: in.RTTS, CwndF: in.CwndF,
		X: ev.x, Lambda: b.Lambda,
		FreeBytes: in.FreeBytes, OccupiedBytes: ev.occupied,
	}
	chosen, reason := xs, "slow subflow fits the send window"
	if skip {
		chosen, reason = nil, "skip slow subflow: occupying the send window for one slow RTT would block the fast subflow"
	} else if in.RTTF <= 0 || in.RTTS <= 0 {
		reason = "no RTT estimates yet: default policy"
	}
	recordDecision(b.sink, c, "blest", chosen, skip, reason,
		func(d *obs.SchedDecision) { d.Blest = q })
}

// blestInput carries the quantities of the BLEST blocking estimate.
type blestInput struct {
	RTTF, RTTS float64 // smoothed RTTs, seconds
	CwndF      float64 // fast subflow window, segments
	MSS        float64 // bytes
	FreeBytes  float64 // free connection-level send window
	InflightS  float64 // slow subflow's unacked bytes
}

// blestEval carries the evaluated terms of the blocking estimate.
type blestEval struct {
	x        float64 // bytes the fast subflow could send in one slow RTT
	occupied float64 // slow inflight plus the segment under decision
	skip     bool
}

// blestEvaluate computes the blocking estimate without side effects.
func blestEvaluate(in blestInput, lambda float64) blestEval {
	if in.RTTF <= 0 || in.RTTS <= 0 {
		return blestEval{} // no estimates yet: behave like the default
	}
	rtts := in.RTTS / in.RTTF
	ev := blestEval{
		x:        in.MSS * (in.CwndF + (rtts-1)/2) * rtts,
		occupied: in.InflightS + in.MSS,
	}
	ev.skip = ev.x*lambda > in.FreeBytes-ev.occupied
	return ev
}

// blestDecide returns true when the slow subflow should be skipped.
func blestDecide(in blestInput, lambda float64) bool {
	return blestEvaluate(in, lambda).skip
}
