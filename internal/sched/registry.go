package sched

import (
	"fmt"
	"sort"

	"repro/internal/mptcp"
	"repro/internal/obs"
)

// factories maps scheduler names to constructors. Each connection gets a
// fresh instance (schedulers carry per-connection state).
var factories = map[string]mptcp.SchedulerFactory{
	"minrtt":     func() mptcp.Scheduler { return NewMinRTT() },
	"default":    func() mptcp.Scheduler { return NewMinRTT() },
	"ecf":        func() mptcp.Scheduler { return NewECF() },
	"blest":      func() mptcp.Scheduler { return NewBLEST() },
	"daps":       func() mptcp.Scheduler { return NewDAPS() },
	"roundrobin": func() mptcp.Scheduler { return NewRoundRobin() },
	"redundant":  func() mptcp.Scheduler { return NewRedundant() },
	"wifi-only":  func() mptcp.Scheduler { return NewSinglePath(0) },
	"lte-only":   func() mptcp.Scheduler { return NewSinglePath(1) },
}

// Factory returns the constructor for a scheduler name.
func Factory(name string) (mptcp.SchedulerFactory, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, Names())
	}
	return f, nil
}

// WireDecisionSink attaches sink to s when it supports decision
// tracing (ECF, BLEST, DAPS, minRTT), reporting whether it does. A nil
// sink detaches. Schedulers without per-decision estimates (redundant,
// round-robin, single-path) simply decline.
func WireDecisionSink(s mptcp.Scheduler, sink obs.DecisionSink) bool {
	r, ok := s.(obs.DecisionRecording)
	if ok {
		r.SetDecisionSink(sink)
	}
	return ok
}

// Names returns the registered scheduler names, sorted.
func Names() []string {
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
