package sched

import (
	"math"
	"time"

	"repro/internal/mptcp"
	"repro/internal/tcp"
)

// ECF is the paper's contribution (§4, Algorithm 1): Earliest Completion
// First. When the fastest subflow x_f has no window space, the default
// scheduler would immediately fall back to the second-fastest available
// subflow x_s. ECF instead asks whether waiting for x_f finishes the
// pending backlog sooner:
//
//	(1 + k/CWND_f)·RTT_f < (1 + waiting·β)·(RTT_s + δ)    [wait is faster]
//	k/CWND_s · RTT_s ≥ 2·RTT_f + δ                         [guard]
//
// with k the unscheduled backlog, δ = max(σ_f, σ_s) compensating RTT
// variability, and β hysteresis against flapping between the two states.
// When both inequalities hold, ECF sends nothing and waits for x_f.
type ECF struct {
	// Beta is the hysteresis factor (paper value 0.25).
	Beta float64
	// UseDelta enables the δ variability margin. Disabled only by the
	// ablation benches.
	UseDelta bool
	// UseGuard enables the second inequality. Disabled only by the
	// ablation benches.
	UseGuard bool
	// SlowStartAware refines the fast-path drain estimate when x_f is in
	// slow start: a doubling window drains k in ~log2(1+k/w) RTTs, not
	// k/w. The paper notes (§4) that ECF's congestion-avoidance
	// assumption "can cause incorrect estimations ... during the
	// slow-start phase" but argues the effect is negligible; we found the
	// refinement helps ramp-heavy streaming slightly yet makes ECF wait
	// for thin low-RTT paths on short fresh-connection transfers, so —
	// like the paper — we leave the estimate unrefined by default. The
	// ablation bench measures both settings.
	SlowStartAware bool

	waiting bool
	waits   int64
}

// NewECF returns an ECF scheduler with the paper's parameters (β = 0.25,
// both inequalities active).
func NewECF() *ECF {
	return &ECF{Beta: 0.25, UseDelta: true, UseGuard: true}
}

// Name implements mptcp.Scheduler.
func (*ECF) Name() string { return "ecf" }

// Reset implements mptcp.Resettable: the hysteresis state and wait
// counter clear; the algorithm parameters (Beta, UseDelta, UseGuard,
// SlowStartAware) are construction-time configuration and persist.
func (e *ECF) Reset() {
	e.waiting = false
	e.waits = 0
}

// Waits reports how many Select calls chose to wait for the fast subflow.
func (e *ECF) Waits() int64 { return e.waits }

// Waiting reports the current hysteresis state.
func (e *ECF) Waiting() bool { return e.waiting }

// Select implements mptcp.Scheduler (Algorithm 1).
func (e *ECF) Select(c *mptcp.Conn) *tcp.Subflow {
	subflows := c.Subflows()
	xf := fastestOverall(subflows)
	if xf == nil {
		return nil
	}
	if xf.CanSend() {
		return xf
	}
	// x_f is full: candidate per the default policy.
	xs := fastestAvailable(subflows)
	if xs == nil {
		return nil
	}

	// k: unscheduled backlog in segments (at least the one segment that
	// triggered this decision).
	k := float64(c.UnsentBytes()) / float64(c.MSS())
	var delta float64
	if e.UseDelta {
		delta = maxDuration(xf.RTTStdDev(), xs.RTTStdDev()).Seconds()
	}
	in := ecfInput{
		K:               k,
		CwndF:           xf.CwndSegments(),
		CwndS:           xs.CwndSegments(),
		RTTF:            effSrtt(xf).Seconds(),
		RTTS:            effSrtt(xs).Seconds(),
		Delta:           delta,
		FastInSlowStart: e.SlowStartAware && xf.InSlowStart(),
	}
	wait := ecfDecide(in, &e.waiting, e.Beta, e.UseGuard)
	if wait {
		e.waits++
		return nil
	}
	return xs
}

// ecfInput carries the quantities of Algorithm 1 in segment/second units.
type ecfInput struct {
	K            float64 // unscheduled backlog, segments
	CwndF, CwndS float64 // windows, segments
	RTTF, RTTS   float64 // smoothed RTTs, seconds
	Delta        float64 // max(σ_f, σ_s), seconds
	// FastInSlowStart switches the drain estimate for x_f to the
	// doubling-window form.
	FastInSlowStart bool
}

// ecfDecide evaluates Algorithm 1 and updates the hysteresis state in
// place. It returns true when the scheduler should send nothing and wait
// for the fast subflow.
func ecfDecide(in ecfInput, waiting *bool, beta float64, useGuard bool) bool {
	k := in.K
	if k < 1 {
		k = 1
	}
	cwndF := in.CwndF
	if cwndF < 1 {
		cwndF = 1
	}
	cwndS := in.CwndS
	if cwndS < 1 {
		cwndS = 1
	}
	n := 1 + k/cwndF
	if in.FastInSlowStart {
		// Doubling window: w + 2w + 4w + ... covers k within
		// log2(1 + k/w) round trips.
		n = 1 + math.Log2(1+k/cwndF)
	}
	b := 0.0
	if *waiting {
		b = beta
	}
	if n*in.RTTF < (1+b)*(in.RTTS+in.Delta) {
		// Waiting for x_f would complete sooner than using x_s now —
		// unless x_s can drain the backlog faster than two fast-path
		// round trips (the guard).
		if !useGuard || k/cwndS*in.RTTS >= 2*in.RTTF+in.Delta {
			*waiting = true
			return true
		}
		return false
	}
	*waiting = false
	return false
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
