package sched

import (
	"math"
	"time"

	"repro/internal/mptcp"
	"repro/internal/obs"
	"repro/internal/tcp"
)

// ECF is the paper's contribution (§4, Algorithm 1): Earliest Completion
// First. When the fastest subflow x_f has no window space, the default
// scheduler would immediately fall back to the second-fastest available
// subflow x_s. ECF instead asks whether waiting for x_f finishes the
// pending backlog sooner:
//
//	(1 + k/CWND_f)·RTT_f < (1 + waiting·β)·(RTT_s + δ)    [wait is faster]
//	k/CWND_s · RTT_s ≥ 2·RTT_f + δ                         [guard]
//
// with k the unscheduled backlog, δ = max(σ_f, σ_s) compensating RTT
// variability, and β hysteresis against flapping between the two states.
// When both inequalities hold, ECF sends nothing and waits for x_f.
type ECF struct {
	// Beta is the hysteresis factor (paper value 0.25).
	Beta float64
	// UseDelta enables the δ variability margin. Disabled only by the
	// ablation benches.
	UseDelta bool
	// UseGuard enables the second inequality. Disabled only by the
	// ablation benches.
	UseGuard bool
	// SlowStartAware refines the fast-path drain estimate when x_f is in
	// slow start: a doubling window drains k in ~log2(1+k/w) RTTs, not
	// k/w. The paper notes (§4) that ECF's congestion-avoidance
	// assumption "can cause incorrect estimations ... during the
	// slow-start phase" but argues the effect is negligible; we found the
	// refinement helps ramp-heavy streaming slightly yet makes ECF wait
	// for thin low-RTT paths on short fresh-connection transfers, so —
	// like the paper — we leave the estimate unrefined by default. The
	// ablation bench measures both settings.
	SlowStartAware bool

	waiting bool
	waits   int64
	// sink, when non-nil, receives one record per Select call (decision
	// tracing; installed only on the traced cell, cleared by Reset).
	sink obs.DecisionSink
}

// NewECF returns an ECF scheduler with the paper's parameters (β = 0.25,
// both inequalities active).
func NewECF() *ECF {
	return &ECF{Beta: 0.25, UseDelta: true, UseGuard: true}
}

// Name implements mptcp.Scheduler.
func (*ECF) Name() string { return "ecf" }

// Reset implements mptcp.Resettable: the hysteresis state and wait
// counter clear; the algorithm parameters (Beta, UseDelta, UseGuard,
// SlowStartAware) are construction-time configuration and persist.
func (e *ECF) Reset() {
	e.waiting = false
	e.waits = 0
	e.sink = nil
}

// SetDecisionSink implements obs.DecisionRecording.
func (e *ECF) SetDecisionSink(s obs.DecisionSink) { e.sink = s }

// Waits reports how many Select calls chose to wait for the fast subflow.
func (e *ECF) Waits() int64 { return e.waits }

// Waiting reports the current hysteresis state.
func (e *ECF) Waiting() bool { return e.waiting }

// Select implements mptcp.Scheduler (Algorithm 1).
func (e *ECF) Select(c *mptcp.Conn) *tcp.Subflow {
	subflows := c.Subflows()
	xf := fastestOverall(subflows)
	if xf == nil {
		if e.sink != nil {
			recordDecision(e.sink, c, "ecf", nil, false, "no subflows", nil)
		}
		return nil
	}
	if xf.CanSend() {
		if e.sink != nil {
			recordDecision(e.sink, c, "ecf", xf, false, "fast subflow has window space", nil)
		}
		return xf
	}
	// x_f is full: candidate per the default policy.
	xs := fastestAvailable(subflows)
	if xs == nil {
		if e.sink != nil {
			recordDecision(e.sink, c, "ecf", nil, false, "fast subflow full, no alternative with window space", nil)
		}
		return nil
	}

	// k: unscheduled backlog in segments (at least the one segment that
	// triggered this decision).
	k := float64(c.UnsentBytes()) / float64(c.MSS())
	var delta float64
	if e.UseDelta {
		delta = maxDuration(xf.RTTStdDev(), xs.RTTStdDev()).Seconds()
	}
	in := ecfInput{
		K:               k,
		CwndF:           xf.CwndSegments(),
		CwndS:           xs.CwndSegments(),
		RTTF:            effSrtt(xf).Seconds(),
		RTTS:            effSrtt(xs).Seconds(),
		Delta:           delta,
		FastInSlowStart: e.SlowStartAware && xf.InSlowStart(),
	}
	hysteresis := e.waiting
	wait := ecfDecide(in, &e.waiting, e.Beta, e.UseGuard)
	if e.sink != nil {
		e.recordEstimate(c, in, hysteresis, wait, xs)
	}
	if wait {
		e.waits++
		return nil
	}
	return xs
}

// recordEstimate records a decision that reached the Eq. 1–2 estimate,
// re-evaluating the inequalities under the pre-decision hysteresis
// state so the recorded quantities are exactly what ecfDecide compared.
func (e *ECF) recordEstimate(c *mptcp.Conn, in ecfInput, hysteresis, wait bool, xs *tcp.Subflow) {
	ev := ecfEvaluate(in, hysteresis, e.Beta, e.UseGuard)
	q := &obs.EcfQuantities{
		K: in.K, CwndF: in.CwndF, CwndS: in.CwndS,
		RTTF: in.RTTF, RTTS: in.RTTS, Delta: in.Delta,
		N: ev.n, Beta: e.Beta, Hysteresis: hysteresis,
		LHS: ev.lhs, RHS: ev.rhs, WaitTest: ev.waitTest,
		GuardLHS: ev.guardLHS, GuardRHS: ev.guardRHS,
		GuardOK: ev.guardOK, GuardUsed: e.UseGuard,
	}
	var chosen *tcp.Subflow
	reason := "wait for fast subflow (Eq. 1 holds"
	switch {
	case wait && e.UseGuard:
		reason += ", Eq. 2 holds)"
	case wait:
		reason += ", Eq. 2 disabled)"
	case ev.waitTest:
		chosen, reason = xs, "Eq. 1 holds but Eq. 2 fails: slow subflow drains the backlog fast enough"
	default:
		chosen, reason = xs, "using slow subflow finishes sooner (Eq. 1 fails)"
	}
	recordDecision(e.sink, c, "ecf", chosen, wait, reason,
		func(d *obs.SchedDecision) { d.Ecf = q })
}

// ecfInput carries the quantities of Algorithm 1 in segment/second units.
type ecfInput struct {
	K            float64 // unscheduled backlog, segments
	CwndF, CwndS float64 // windows, segments
	RTTF, RTTS   float64 // smoothed RTTs, seconds
	Delta        float64 // max(σ_f, σ_s), seconds
	// FastInSlowStart switches the drain estimate for x_f to the
	// doubling-window form.
	FastInSlowStart bool
}

// ecfEval carries the evaluated terms of Algorithm 1's inequalities —
// what ecfDecide compares and what decision traces record.
type ecfEval struct {
	n, lhs, rhs        float64 // Eq. 1: lhs < rhs means waiting wins
	waitTest           bool
	guardLHS, guardRHS float64 // Eq. 2: guardLHS >= guardRHS confirms
	guardOK            bool
	wait               bool // the verdict under the given guard setting
}

// ecfEvaluate computes Algorithm 1's inequalities under the given
// hysteresis state, without side effects.
func ecfEvaluate(in ecfInput, waiting bool, beta float64, useGuard bool) ecfEval {
	k := in.K
	if k < 1 {
		k = 1
	}
	cwndF := in.CwndF
	if cwndF < 1 {
		cwndF = 1
	}
	cwndS := in.CwndS
	if cwndS < 1 {
		cwndS = 1
	}
	n := 1 + k/cwndF
	if in.FastInSlowStart {
		// Doubling window: w + 2w + 4w + ... covers k within
		// log2(1 + k/w) round trips.
		n = 1 + math.Log2(1+k/cwndF)
	}
	b := 0.0
	if waiting {
		b = beta
	}
	ev := ecfEval{
		n:        n,
		lhs:      n * in.RTTF,
		rhs:      (1 + b) * (in.RTTS + in.Delta),
		guardLHS: k / cwndS * in.RTTS,
		guardRHS: 2*in.RTTF + in.Delta,
	}
	ev.waitTest = ev.lhs < ev.rhs
	ev.guardOK = ev.guardLHS >= ev.guardRHS
	// Waiting for x_f completes sooner than using x_s now (Eq. 1) —
	// unless x_s can drain the backlog faster than two fast-path round
	// trips (Eq. 2, the guard).
	ev.wait = ev.waitTest && (!useGuard || ev.guardOK)
	return ev
}

// ecfDecide evaluates Algorithm 1 and updates the hysteresis state in
// place. It returns true when the scheduler should send nothing and wait
// for the fast subflow. A guard-rejected wait leaves the hysteresis
// state untouched: Eq. 1 still held, so the next decision keeps the
// waiting bias.
func ecfDecide(in ecfInput, waiting *bool, beta float64, useGuard bool) bool {
	ev := ecfEvaluate(in, *waiting, beta, useGuard)
	if ev.wait {
		*waiting = true
		return true
	}
	if !ev.waitTest {
		*waiting = false
	}
	return false
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
