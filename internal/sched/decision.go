package sched

import (
	"repro/internal/mptcp"
	"repro/internal/obs"
	"repro/internal/tcp"
)

// recordDecision builds the common part of a decision record — virtual
// time, connection identity, head-of-backlog DSN and owning transfer,
// the candidate set — and hands it to the sink. mod, when non-nil,
// fills the scheduler-specific quantities. Callers guard with
// sink != nil, so untraced cells never reach this.
func recordDecision(sink obs.DecisionSink, c *mptcp.Conn, scheduler string,
	chosen *tcp.Subflow, wait bool, reason string, mod func(*obs.SchedDecision)) {
	d := obs.SchedDecision{
		At:           c.Now(),
		Scheduler:    scheduler,
		Conn:         c.ID(),
		HeadDSN:      -1,
		Transfer:     -1,
		BacklogBytes: c.UnsentBytes(),
		Wait:         wait,
		Reason:       reason,
	}
	if dsn, ok := c.NextUnsentDSN(); ok {
		d.HeadDSN = dsn
		if seq, ok := c.ActiveTransferSeq(dsn); ok {
			d.Transfer = seq
		}
	}
	for _, sf := range c.Subflows() {
		d.Candidates = append(d.Candidates, obs.SchedCandidate{
			Name:     sf.Name(),
			Srtt:     sf.Srtt(),
			StdDev:   sf.RTTStdDev(),
			Cwnd:     sf.CwndSegments(),
			Inflight: sf.InflightSegments(),
			Avail:    sf.AvailableCwndSegments(),
			CanSend:  sf.CanSend(),
		})
	}
	if chosen != nil {
		d.Chosen = chosen.Name()
	}
	if mod != nil {
		mod(&d)
	}
	sink.RecordDecision(&d)
}
