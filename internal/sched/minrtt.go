// Package sched implements the MPTCP path schedulers the paper compares:
// the kernel default (minimum RTT), the paper's contribution ECF, and the
// two prior-work baselines BLEST and DAPS, plus round-robin and
// single-path schedulers used as additional references and ablations.
package sched

import (
	"time"

	"repro/internal/mptcp"
	"repro/internal/obs"
	"repro/internal/tcp"
)

// effSrtt returns a subflow's smoothed RTT for scheduling comparisons.
// Subflows without a sample yet report zero, which sorts them first —
// mirroring the kernel, where a fresh subflow (srtt 0) is preferred and
// list order (primary first) breaks ties.
func effSrtt(sf *tcp.Subflow) time.Duration {
	if !sf.HasRTTSample() {
		return 0
	}
	return sf.Srtt()
}

// fastestAvailable returns the lowest-RTT subflow with congestion-window
// space, or nil.
func fastestAvailable(subflows []*tcp.Subflow) *tcp.Subflow {
	var best *tcp.Subflow
	for _, sf := range subflows {
		if !sf.CanSend() {
			continue
		}
		if best == nil || effSrtt(sf) < effSrtt(best) {
			best = sf
		}
	}
	return best
}

// fastestOverall returns the lowest-RTT subflow regardless of window
// space, or nil if the connection has no subflows.
func fastestOverall(subflows []*tcp.Subflow) *tcp.Subflow {
	var best *tcp.Subflow
	for _, sf := range subflows {
		if best == nil || effSrtt(sf) < effSrtt(best) {
			best = sf
		}
	}
	return best
}

// MinRTT is the default MPTCP scheduler: pick the available subflow with
// the smallest RTT estimate (§2.1). Its failure mode under heterogeneity
// — filling the slow path whenever the fast path's window is full,
// leaving the fast path idle at burst tails — is the problem the paper
// diagnoses in §3.
type MinRTT struct {
	// sink, when non-nil, receives one record per Select call (decision
	// tracing; installed only on the traced cell, cleared by Reset).
	sink obs.DecisionSink
}

// NewMinRTT returns the default scheduler.
func NewMinRTT() *MinRTT { return &MinRTT{} }

// Name implements mptcp.Scheduler.
func (*MinRTT) Name() string { return "minrtt" }

// Reset implements mptcp.Resettable (the only state is the trace sink).
func (m *MinRTT) Reset() { m.sink = nil }

// SetDecisionSink implements obs.DecisionRecording.
func (m *MinRTT) SetDecisionSink(s obs.DecisionSink) { m.sink = s }

// Select implements mptcp.Scheduler.
func (m *MinRTT) Select(c *mptcp.Conn) *tcp.Subflow {
	best := fastestAvailable(c.Subflows())
	if m.sink != nil {
		reason := "lowest-RTT subflow with window space"
		if best == nil {
			reason = "no subflow with window space"
		}
		recordDecision(m.sink, c, "minrtt", best, false, reason, nil)
	}
	return best
}

// RoundRobin cycles through available subflows regardless of RTT. It is
// not in the paper's comparison but serves as a naive reference.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements mptcp.Scheduler.
func (*RoundRobin) Name() string { return "roundrobin" }

// Reset implements mptcp.Resettable: the rotation restarts at the
// primary subflow, as on a fresh scheduler.
func (r *RoundRobin) Reset() { r.next = 0 }

// Select implements mptcp.Scheduler.
func (r *RoundRobin) Select(c *mptcp.Conn) *tcp.Subflow {
	subflows := c.Subflows()
	n := len(subflows)
	for i := 0; i < n; i++ {
		sf := subflows[(r.next+i)%n]
		if sf.CanSend() {
			r.next = (r.next + i + 1) % n
			return sf
		}
	}
	return nil
}

// SinglePath pins all traffic to one subflow (by index), modelling a
// plain single-interface TCP connection for reference curves.
type SinglePath struct {
	idx int
}

// NewSinglePath returns a scheduler pinned to subflow idx.
func NewSinglePath(idx int) *SinglePath { return &SinglePath{idx: idx} }

// Name implements mptcp.Scheduler.
func (*SinglePath) Name() string { return "singlepath" }

// Reset implements mptcp.Resettable: the pinned index is
// construction-time configuration and persists (the pool keys
// "wifi-only" and "lte-only" instances separately by registry name).
func (*SinglePath) Reset() {}

// Select implements mptcp.Scheduler.
func (s *SinglePath) Select(c *mptcp.Conn) *tcp.Subflow {
	subflows := c.Subflows()
	if s.idx >= len(subflows) {
		return nil
	}
	if sf := subflows[s.idx]; sf.CanSend() {
		return sf
	}
	return nil
}
