package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// oracleQueue is a container/heap reference ordered by the same (at, seq)
// key the engine promises — the oracle the tiered queue is driven
// against under randomized churn.
type oracleQueue []oracleEvent

type oracleEvent struct {
	at  Time
	seq uint64
	id  int
}

func (q oracleQueue) Len() int      { return len(q) }
func (q oracleQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q oracleQueue) Less(a, b int) bool {
	if q[a].at != q[b].at {
		return q[a].at < q[b].at
	}
	return q[a].seq < q[b].seq
}
func (q *oracleQueue) Push(x any) { *q = append(*q, x.(oracleEvent)) }
func (q *oracleQueue) Pop() any   { old := *q; n := len(old) - 1; v := old[n]; *q = old[:n]; return v }

// churnModel drives one engine and the reference oracle through the
// same randomized schedule/cancel/reserve/run workload and fails on the
// first divergence in dispatch order, Pending, or Timer.At. The time
// distribution deliberately mixes sub-bucket gaps, window-spanning
// gaps, and far-future overflow times (plus occasional idle jumps past
// the whole bucket window) so every tier transition is exercised.
func churnModel(t *testing.T, e *Engine, rng *rand.Rand, ops int) {
	t.Helper()
	ref := &oracleQueue{}
	var fired []int
	nextID := 0
	timers := map[int]Timer{}
	expect := map[int]oracleEvent{}
	schedule := func() {
		var gap Time
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // same or next bucket
			gap = Time(rng.Int63n(int64(2) << bucketBits))
		case 4, 5, 6: // inside the window
			gap = Time(rng.Int63n(int64(numBuckets) << bucketBits))
		case 7, 8: // overflow tier
			gap = Time(int64(numBuckets)<<bucketBits + rng.Int63n(int64(time.Second)))
		default: // far overflow: several windows out
			gap = Time(rng.Int63n(int64(10 * time.Second)))
		}
		id := nextID
		nextID++
		at := e.Now() + gap
		var tm Timer
		var seq uint64
		if rng.Intn(4) == 0 {
			tk := e.ReserveTicket()
			seq = uint64(tk)
			tm = e.AtTicket(at, tk, KindClosure, func() { fired = append(fired, id) })
		} else {
			tm = e.At(at, func() { fired = append(fired, id) })
			seq = e.seq
		}
		timers[id] = tm
		ev := oracleEvent{at: at, seq: seq, id: id}
		expect[id] = ev
		heap.Push(ref, ev)
		if got := tm.At(); got != at {
			t.Fatalf("op %d: Timer.At = %v right after scheduling for %v", id, got, at)
		}
	}
	cancelRandom := func() {
		for id, tm := range timers { // map order is as good a random pick as any
			tm.Cancel()
			if tm.Active() {
				t.Fatalf("timer %d still Active after Cancel", id)
			}
			if tm.At() != 0 {
				t.Fatalf("timer %d At = %v after Cancel, want 0", id, tm.At())
			}
			tm.Cancel() // double-cancel must be a no-op
			delete(timers, id)
			delete(expect, id)
			for i := range *ref {
				if (*ref)[i].id == id {
					heap.Remove(ref, i)
					break
				}
			}
			return
		}
	}
	stepBoth := func() {
		if ref.Len() == 0 {
			if e.Step() {
				t.Fatal("engine stepped an event the reference does not have")
			}
			return
		}
		want := heap.Pop(ref).(oracleEvent)
		before := len(fired)
		if !e.Step() {
			t.Fatalf("engine empty but reference holds %d events (next id %d at %v)", ref.Len()+1, want.id, want.at)
		}
		if len(fired) != before+1 || fired[len(fired)-1] != want.id {
			t.Fatalf("dispatch order diverged: engine fired %v, reference expected id %d (at %v seq %d)",
				fired[max(0, len(fired)-3):], want.id, want.at, want.seq)
		}
		delete(timers, want.id)
	}
	for i := 0; i < ops; i++ {
		switch r := rng.Intn(10); {
		case r < 5:
			schedule()
		case r < 7:
			cancelRandom()
		default:
			stepBoth()
		}
		if e.Pending() != ref.Len() {
			t.Fatalf("op %d: Pending = %d, reference holds %d", i, e.Pending(), ref.Len())
		}
		for id, tm := range timers {
			if !tm.Active() {
				t.Fatalf("op %d: timer %d inactive while the reference still holds it", i, id)
			}
			if tm.At() != expect[id].at {
				t.Fatalf("op %d: timer %d At = %v, want %v", i, tm.At(), tm.At(), expect[id].at)
			}
			break // one spot-check per op keeps the loop O(ops)
		}
	}
	// Drain: every surviving event must come out in reference order.
	for ref.Len() > 0 {
		stepBoth()
	}
	if e.Step() {
		t.Fatal("engine not empty after draining the reference")
	}
}

// TestTieredMatchesReferenceUnderChurn drives the tiered queue against
// the container/heap oracle under randomized schedule/cancel/step
// workloads spanning every tier transition (dispatch-bucket inserts,
// window advance, overflow migration, idle window jumps).
func TestTieredMatchesReferenceUnderChurn(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		e := NewWithQueue(QueueTiered)
		churnModel(t, e, rand.New(rand.NewSource(seed)), 4000)
	}
}

// TestHeapQueueMatchesReferenceUnderChurn runs the same oracle over the
// pinned heap queue — the A/B baseline stays covered by the identical
// workload.
func TestHeapQueueMatchesReferenceUnderChurn(t *testing.T) {
	for seed := int64(101); seed <= 104; seed++ {
		e := NewWithQueue(QueueHeap)
		churnModel(t, e, rand.New(rand.NewSource(seed)), 4000)
	}
}

// TestTieredResetReuse churns, Resets, and churns again on the same
// engine: the bucket ring, window cursor and telemetry must come back
// to a clean slate while retaining capacity (the pooled-engine
// lifecycle every sweep cell exercises).
func TestTieredResetReuse(t *testing.T) {
	e := NewWithQueue(QueueTiered)
	for round := 0; round < 3; round++ {
		churnModel(t, e, rand.New(rand.NewSource(42+int64(round))), 2000)
		e.Reset()
		if e.Pending() != 0 || e.Now() != 0 {
			t.Fatalf("round %d: Reset left Pending=%d Now=%v", round, e.Pending(), e.Now())
		}
		if e.PeekTime() != maxTime {
			t.Fatalf("round %d: PeekTime on empty engine = %v", round, e.PeekTime())
		}
	}
}

// TestTieredRunsNextAcrossTiers pins the inline-claim head comparison
// under the tiered queue: a claim must be refused whenever any queued
// event — bucketed or overflow — sorts before the claimed key, and
// granted otherwise.
func TestTieredRunsNextAcrossTiers(t *testing.T) {
	e := NewWithQueue(QueueTiered)
	e.limit = maxTime // simulate being inside a run loop

	// Overflow-tier head: an event far past the window.
	far := Time(int64(numBuckets+5) << bucketBits)
	e.At(far, func() {})
	tk := e.ReserveTicket()
	if !e.RunsNext(far-1, tk) {
		t.Fatal("claim before the overflow head refused")
	}
	tk2 := e.ReserveTicket()
	if e.RunsNext(far+1, tk2) {
		t.Fatal("claim past the overflow head granted")
	}

	// Near-tier head at the same timestamp: ticket order decides.
	e2 := NewWithQueue(QueueTiered)
	e2.limit = maxTime
	at := Time(1000)
	tkA := e2.ReserveTicket()
	tkB := e2.ReserveTicket()
	e2.AtTicket(at, tkB, KindClosure, func() {})
	if !e2.RunsNext(at, tkA) {
		t.Fatal("earlier-ticket claim at the queued event's timestamp refused")
	}
	tkC := e2.ReserveTicket()
	if e2.RunsNext(at, tkC) {
		t.Fatal("later-ticket claim at the queued event's timestamp granted")
	}
}

// TestTieredPastScheduleLandsInDispatchBucket covers the d <= curDay
// clamp: after the cursor has settled into a later bucket than day(now)
// would suggest (an idle window jump), a handler scheduling near now
// must still dispatch in exact (at, seq) order.
func TestTieredPastScheduleLandsInDispatchBucket(t *testing.T) {
	e := NewWithQueue(QueueTiered)
	var got []int
	// Jump the window: one event several windows out, nothing nearer.
	far := Time(int64(3*numBuckets) << bucketBits)
	e.At(far, func() {
		// The cursor is now deep into the jumped-to day. Schedule three
		// events whose days all precede curDay-relative buckets.
		e.At(e.Now()+1, func() { got = append(got, 1) })
		e.At(e.Now(), func() { got = append(got, 0) })
		e.At(e.Now()+2, func() { got = append(got, 2) })
	})
	e.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("post-jump dispatch order = %v, want [0 1 2]", got)
	}
}

// FuzzQueueOrdering feeds an op stream to a heap-mode and a tiered-mode
// engine side by side: schedules (with and without reserved tickets),
// stale-generation cancels, and steps, asserting both engines fire the
// identical event sequence and agree on Pending. The fuzzer owns the
// byte-to-op decoding, so crashing inputs shrink to readable op lists.
func FuzzQueueOrdering(f *testing.F) {
	f.Add([]byte{0x10, 0x80, 0x02, 0x41, 0xff, 0x07, 0x30})
	f.Add([]byte{0x00, 0x00, 0xff, 0xff, 0x80, 0x80, 0x80, 0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		he := NewWithQueue(QueueHeap)
		te := NewWithQueue(QueueTiered)
		var hFired, tFired []int
		var hTimers, tTimers []Timer
		id := 0
		pos := 0
		next := func() byte {
			if pos >= len(data) {
				return 0
			}
			b := data[pos]
			pos++
			return b
		}
		for pos < len(data) {
			op := next()
			switch op % 4 {
			case 0, 1: // schedule; gap spliced from the next two bytes
				gap := Time(op%2)<<bucketBits*Time(next()) + Time(next())*1000
				hid, tid := id, id
				id++
				if op&0x10 != 0 { // ticketed form
					htk, ttk := he.ReserveTicket(), te.ReserveTicket()
					hTimers = append(hTimers, he.AtTicket(he.Now()+gap, htk, KindClosure, func() { hFired = append(hFired, hid) }))
					tTimers = append(tTimers, te.AtTicket(te.Now()+gap, ttk, KindClosure, func() { tFired = append(tFired, tid) }))
				} else {
					hTimers = append(hTimers, he.At(he.Now()+gap, func() { hFired = append(hFired, hid) }))
					tTimers = append(tTimers, te.At(te.Now()+gap, func() { tFired = append(tFired, tid) }))
				}
			case 2: // cancel by index — stale handles included on purpose
				if len(hTimers) > 0 {
					i := int(next()) % len(hTimers)
					hTimers[i].Cancel()
					tTimers[i].Cancel()
					if hTimers[i].Active() != tTimers[i].Active() {
						t.Fatalf("Active diverges for timer %d after cancel", i)
					}
				}
			case 3: // step both
				if he.Step() != te.Step() {
					t.Fatal("one engine stepped while the other was empty")
				}
			}
			if he.Pending() != te.Pending() {
				t.Fatalf("Pending diverges: heap %d, tiered %d", he.Pending(), te.Pending())
			}
		}
		for he.Step() {
			if !te.Step() {
				t.Fatal("tiered engine ran dry before the heap engine")
			}
		}
		if te.Step() {
			t.Fatal("tiered engine still has events after the heap engine drained")
		}
		if len(hFired) != len(tFired) {
			t.Fatalf("fired %d events on heap, %d on tiered", len(hFired), len(tFired))
		}
		for i := range hFired {
			if hFired[i] != tFired[i] {
				t.Fatalf("dispatch order diverges at %d: heap fired %d, tiered fired %d", i, hFired[i], tFired[i])
			}
		}
	})
}

// BenchmarkEventQueueChurn pits the two queue implementations against
// the same mixed workload at several standing depths: a rotating pool
// of timers where each dispatch schedules a successor, one in eight
// events is cancelled and rescheduled (arm/cancel churn), and one in
// eight schedules far-future (overflow on the tiered queue). ns/op is
// per event dispatched.
func BenchmarkEventQueueChurn(b *testing.B) {
	for _, bench := range []struct {
		name string
		kind QueueKind
	}{{"heap", QueueHeap}, {"tiered", QueueTiered}} {
		for _, depth := range []int{8, 64, 512} {
			b.Run(fmt.Sprintf("%s/depth%d", bench.name, depth), func(b *testing.B) {
				e := NewWithQueue(bench.kind)
				rng := NewRNG(7)
				var step func()
				victim := Timer{}
				n := 0
				step = func() {
					n++
					gap := Time(50_000 + rng.Intn(4_000_000)) // 50µs..4ms
					switch n % 8 {
					case 3:
						// Far-future arm + cancel churn: lands in the
						// overflow tier on the tiered queue.
						victim.Cancel()
						victim = e.At(e.Now()+Time(2*int64(numBuckets))<<bucketBits, func() {})
					case 5:
						victim.Cancel()
						victim = e.At(e.Now()+gap, func() {})
					}
					e.Schedule(gap, step)
				}
				for i := 0; i < depth; i++ {
					e.At(Time(rng.Intn(4_000_000)), step)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.Step()
				}
			})
		}
	}
}
