// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the network, transport and application models in this repository
// run on virtual time supplied by an Engine. Events execute in strict
// timestamp order; ties are broken by scheduling order, which makes every
// simulation fully deterministic for a given seed.
//
// # Event representation: typed kinds
//
// Every queued event is a pair (kind, arg): a small EventKind naming one
// of the simulation's known event types, and an untyped argument (in
// practice always a pointer to the model object the event belongs to).
// Model packages register their kinds once, at package init, with
// RegisterKind; firing an event is a single load from the dense
// kind-dispatch table followed by a direct call into the registered
// handler — there is no per-event closure and no function pointer stored
// per timer slot. The closure forms Schedule/At are a convenience built
// on the same representation (KindClosure, with the func() as the
// argument); they are for setup and cold paths only.
//
// The registry contract:
//
//   - RegisterKind may only be called during package initialization
//     (package-level var or init), never after engines are running. The
//     returned EventKind is process-global and carries no ordering
//     semantics — dispatch identity only.
//   - A kind's handler is total: it must tolerate being invoked for any
//     argument its package schedules under that kind, including after
//     the model object was reset (handlers run only while their engine
//     is live, so in practice Reset's invalidation makes this moot).
//   - Handlers run on the engine's goroutine; they may schedule, cancel
//     and reserve tickets freely.
//
// # Event queue: 4-ary heap (default) or two-tier calendar
//
// Two queue implementations are available, selected per engine
// (QueueKind, SetDefaultQueue, the ecfbench -queue flag). Both dispatch
// in the identical (at, seq) total order; the choice is invisible to
// every model and every output byte.
//
// The heap queue (QueueHeap, the default) is a single 4-ary min-heap of
// key-packed entries; Cancel removes eagerly in O(log n). It is the
// default because measurement, not theory, says so: the sweep's live
// queue is shallow (mean depth ~6.5, max ~29 on the quick catalog), so
// a sift touches barely one level and the calendar queue's bucket
// machinery costs more than the log n it removes (see BENCH_pr10.json).
//
// The tiered queue (QueueTiered, opt-in via -queue tiered) is a calendar queue
// specialized for this simulator's short scheduling horizons: a ring of
// power-of-two-width time buckets covers ~a few srtt of virtual time
// around the dispatch cursor, and an event inside that window is
// appended to its bucket in O(1). A bucket is sorted by the full
// (at, seq) key only when the cursor reaches it — the per-event
// ordering cost is an amortized O(1) append plus a share of one small,
// cache-resident sort instead of an O(log n) sift. Events beyond the
// window land in an overflow tier (the 4-ary heap below) and migrate
// into buckets as the window advances; when every bucket is empty the
// window jumps straight to the overflow head. Cancel on a bucketed
// event frees its arena slot eagerly but leaves a tombstone entry that
// is dropped when its bucket is sorted or dispatched — Pending never
// counts tombstones, and Timer.At still reads the exact scheduled time
// through the slot's packed bucket location. It earns its keep at
// depths the sweep does not reach (see BenchmarkEventQueueChurn); at
// the catalog's depths it measured ~6% slower than the heap, which is
// why it is not the default.
//
// # Allocation and layout contract
//
// The engine is built for allocation-free, cache-resident steady-state
// operation:
//
//   - Timers live in an engine-owned arena recycled through a free list;
//     a slot holds only the event argument, its generation and its
//     queue position — 24 bytes. The event's kind travels in the queue
//     entry (it fits the entry's alignment padding), so dispatch never
//     waits on an extra arena load.
//   - Queue entries are 24 bytes and embed the full ordering key
//     (at, seq) next to the arena slot index, so comparisons — heap
//     sifts and bucket sorts alike — read only contiguous entry slices
//     and never chase a pointer into the arena. The arena is touched
//     exactly once per moved entry (to maintain the slot's queue
//     position for eager Cancel and Timer.At), not once per comparison.
//   - Reset returns an engine to time zero while keeping the arena,
//     heap and bucket ring at their grown capacity, and Acquire/Release
//     pool engines so a sweep of thousands of simulation cells re-grows
//     these structures once per worker instead of once per cell.
//
// # Event-count reduction: tickets and inline claims
//
// Models that multiplex several logical events through one timer (the
// netsim.Link drain, the tcp.Subflow pacer) reserve a Ticket per logical
// event up front and arm the shared timer under the earliest pending
// ticket. When that timer fires, the model may process its successor
// logical events inline — without a round-trip through the heap — by
// asking RunsNext whether each successor would be the next event the
// engine dispatched anyway. This batching is exact: execution order, and
// therefore every tie-break and every byte of experiment output, is
// identical to scheduling each logical event individually. Processed
// counts heap dispatches, Coalesced counts logical events claimed
// inline; their sum is the logical event total.
//
// Once the arena and heap have grown to a simulation's working set,
// scheduling, firing and cancelling timers perform zero heap
// allocations — the AllocsPerRun regression tests in this package and in
// netsim/tcp pin that at ~0 allocations per packet.
//
// # Lane-batched execution
//
// A LaneEngine drives up to MaxLanes mutually independent engines — one
// simulation cell each — through a single merged dispatch loop on one
// goroutine. The contract is strict: each lane's own (time, ticket)
// dispatch order, its inline-claim decisions and its final clock are
// exactly what a scalar RunUntil of that cell alone would produce, so
// every byte of experiment output is lane-invisible; only the on-worker
// interleave of the lanes differs, and no output can observe it. The
// dispatcher keeps a structure-of-arrays scoreboard of per-lane next
// event times and lets the running lane burst up to a bounded sim-time
// drift window past the other lanes' heads before switching, so lane
// switches amortize over dozens of events. RunLaneDone returns each
// lane as it completes, letting a sweep worker stream a cell list
// through a fixed set of lanes (retire, collect, refill).
package sim

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Time is a point in virtual time, measured from the simulation epoch (0).
type Time = time.Duration

// maxTime is the largest representable virtual time (Run's inline-claim
// horizon when no deadline applies).
const maxTime = Time(math.MaxInt64)

// noSlot terminates the arena free list.
const noSlot = -1

// noRunLimit is the inline-claim bound outside Run/RunUntil: below any
// valid virtual time, so RunsNext refuses every claim.
const noRunLimit = Time(-1)

// idleTicket is CurrentTicket's value outside any dispatch: every
// pending sub-event with a timestamp at or before the clock has
// logically completed once no event is running.
const idleTicket = Ticket(math.MaxUint64)

// EventKind identifies one of the simulation's event types in the
// process-global kind-dispatch table. Kinds are allocated by
// RegisterKind at package init; KindClosure is pre-registered for the
// Schedule/At closure forms.
type EventKind uint8

// KindClosure is the built-in kind backing Schedule/At: the event
// argument is the func() to invoke.
const KindClosure EventKind = 0

// maxKinds bounds the dispatch table. The whole stack uses well under
// this; the bound keeps the table a fixed-size array.
const maxKinds = 64

var (
	kindFns   [maxKinds]func(any)
	kindNames [maxKinds]string
	numKinds  = EventKind(1) // KindClosure
)

func init() {
	kindNames[KindClosure] = "sim.closure"
	kindFns[KindClosure] = func(arg any) { arg.(func())() }
}

// RegisterKind adds an event kind to the dispatch table and returns its
// identifier. It must be called during package initialization only (the
// table is read without synchronization once engines run); registering
// more than maxKinds kinds or a nil handler panics.
func RegisterKind(name string, fn func(any)) EventKind {
	if fn == nil {
		panic("sim: RegisterKind with nil handler")
	}
	if numKinds >= maxKinds {
		panic("sim: event-kind table full")
	}
	k := numKinds
	numKinds++
	kindFns[k] = fn
	kindNames[k] = name
	return k
}

// KindName returns the registration name of k ("" for unregistered
// values) — telemetry and debugging only.
func KindName(k EventKind) string {
	if k < maxKinds {
		return kindNames[k]
	}
	return ""
}

// Timer is a generation-checked handle for a scheduled event, returned by
// the Schedule/At families. The zero value is inert: Cancel is a no-op
// and Active reports false. Handles stay safe after the event fires or is
// cancelled — the underlying arena slot is recycled, but the generation
// check makes a stale handle's Cancel a no-op rather than a cancellation
// of an unrelated reused timer.
type Timer struct {
	e    *Engine
	slot int32
	gen  uint32
}

// Active reports whether the timer is still scheduled (not yet fired and
// not cancelled).
func (t Timer) Active() bool {
	return t.e != nil && t.e.arena[t.slot].gen == t.gen
}

// At returns the virtual time the timer is scheduled to fire, or 0 if it
// already fired or was cancelled. The scheduled time is read through the
// slot's queue location, so it is exact under both queue kinds —
// including tiered-queue events whose bucket has not been sorted yet.
func (t Timer) At() Time {
	if !t.Active() {
		return 0
	}
	e := t.e
	pos := e.arena[t.slot].pos
	if pos >= 0 {
		return e.heap[pos].at
	}
	packed := ^pos
	return e.buckets[packed>>locIdxBits][packed&locIdxMask].at
}

// Cancel removes the timer from the queue. The arena slot is always
// freed eagerly (arm/cancel churn stays allocation-free); on the heap
// tier the entry is removed eagerly too, while a bucketed entry of the
// tiered queue becomes a tombstone that its bucket drops at sort or
// dispatch time — it never counts as pending and never fires.
// Cancelling an already-fired or already-cancelled timer — or the zero
// Timer — is a no-op.
func (t Timer) Cancel() {
	e := t.e
	if e == nil {
		return
	}
	s := &e.arena[t.slot]
	if s.gen != t.gen {
		return // already fired, cancelled, or slot reused
	}
	if s.pos >= 0 {
		e.heapRemove(int(s.pos))
	} else {
		packed := ^s.pos
		e.buckets[packed>>locIdxBits][packed&locIdxMask].slot = tombSlot
		e.nearCount--
	}
	e.freeSlot(t.slot)
}

// slot is one arena entry: the event argument and the bookkeeping that
// ties it to the queue. The ordering key and the event kind live in the
// queue entry itself, not here. While scheduled, pos locates the
// timer's entry: a non-negative pos is a heap index (heap queue, or the
// tiered queue's overflow tier), a negative pos is a packed bucket
// location (^(ring<<locIdxBits|index)). While free, pos chains the free
// list.
type slot struct {
	arg any
	gen uint32
	pos int32
}

// heapEnt is one event-queue entry: the full ordering key packed next to
// the arena slot index and the event kind (which rides in what would
// otherwise be alignment padding — the entry stays 24 bytes). less never
// touches the arena — comparisons stay inside the contiguous heap slice.
type heapEnt struct {
	at   Time
	seq  uint64
	slot int32
	kind EventKind
}

// less orders entries by (at, seq): earliest first, scheduling order
// breaking ties — the determinism invariant every model relies on.
func less(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event scheduler over virtual time.
//
// The zero value is not usable; construct with New (or Acquire, which
// reuses a pooled engine). Engines are not safe for concurrent use:
// simulations are single-goroutine by design, which is what makes them
// reproducible.
type Engine struct {
	now      Time
	arena    []slot
	freeHead int32
	// heap is a 4-ary min-heap of key-packed entries ordered by
	// (at, seq): the whole queue in heap mode, the far-future overflow
	// tier in tiered mode. 4-ary beats binary here: sift-down does 3
	// extra comparisons per level but halves the levels, and with
	// 24-byte entries the four children of a node share two cache
	// lines.
	heap    []heapEnt
	seq     uint64
	stopped bool
	// tiered selects the queue implementation (see tierqueue.go);
	// pinnedQueue marks engines built with NewWithQueue, which never
	// re-adopt the process default.
	tiered      bool
	pinnedQueue bool
	// Near-tier state (tiered mode only). buckets is the ring; curDay
	// is the absolute bucket number of the dispatch cursor (monotone,
	// >= day(now)); curIdx is the next entry in the dispatch bucket
	// once curSorted marks it sorted; nearCount counts live
	// (non-tombstone) entries across all buckets.
	buckets   [][]heapEnt
	curDay    int64
	curIdx    int
	curSorted bool
	nearCount int
	// bucketCap is the shared per-bucket capacity: every ring bucket is
	// carved from one backing array at exactly this capacity, and a full
	// bucket grows by re-carving the whole ring at double the capacity
	// (see growBucket) — so the ring converges to the global max
	// occupancy and steady-state appends stop allocating. It survives
	// Reset, like the arena and heap capacity.
	bucketCap int
	// qstats is the per-run queue telemetry, flushed by Reset.
	qstats queueCounters
	// limit bounds inline claims (RunsNext): Run lifts it to maxTime,
	// RunUntil to its deadline, so a batching drain can never advance
	// the clock past what the run loop itself would dispatch. Outside a
	// run loop it is -1 (below any valid time) and RunsNext declines
	// every claim.
	limit Time
	// processed counts heap events dispatched; coalesced counts logical
	// events claimed inline via RunsNext. Their sum is the logical event
	// total.
	processed uint64
	coalesced uint64
	// curSeq is the tie-break position of the event currently being
	// dispatched (idleTicket when none is). Models with lazily-accounted
	// sub-events compare their reserved tickets against it to decide
	// whether a same-instant sub-event logically precedes the running
	// event — see CurrentTicket.
	curSeq uint64
	// flight, when non-nil, records every dispatch (heap and inline
	// claims) into a fixed-capacity ring. It is installed only on the
	// engine of a traced cell and cleared by Reset; on every other
	// engine each dispatch pays one nil check.
	flight *obs.FlightRecorder
}

// New returns an empty Engine positioned at time 0, using the
// process-default queue kind (which the engine re-adopts at every
// Reset, so pooled engines follow SetDefaultQueue).
func New() *Engine {
	e := &Engine{freeHead: noSlot, limit: noRunLimit, curSeq: uint64(idleTicket)}
	e.setQueueKind(DefaultQueue())
	return e
}

// NewWithQueue returns an empty Engine pinned to the given queue kind:
// it keeps that kind across Reset regardless of the process default.
// For A/B comparisons and tests; production engines come from New.
func NewWithQueue(k QueueKind) *Engine {
	e := &Engine{freeHead: noSlot, limit: noRunLimit, curSeq: uint64(idleTicket)}
	e.setQueueKind(k)
	e.pinnedQueue = true
	return e
}

// totalProcessed and totalCoalesced accumulate, across every engine in
// the process, the counters of runs that have completed (flushed by
// Reset — the pooled-lifecycle step every simulation cell ends with).
// They feed the ecfbench event telemetry.
var (
	totalProcessed atomic.Uint64
	totalCoalesced atomic.Uint64
)

// TotalEvents returns the process-wide counters of heap events
// dispatched and logical events coalesced inline, summed over every
// engine run flushed so far (an engine flushes on Reset; a network cell
// flushes when it is closed).
func TotalEvents() (processed, coalesced uint64) {
	return totalProcessed.Load(), totalCoalesced.Load()
}

// Reset returns the engine to virtual time zero with an empty queue,
// retaining the arena and heap at their grown capacity so the next
// simulation starts with a warm working set. Every outstanding Timer
// handle is invalidated (their generation is bumped) and every pending
// event argument is dropped, so the previous simulation's object graph
// becomes collectable even while the engine sits in a pool. The run's
// event and queue-telemetry counters are flushed into the process-wide
// totals, and an unpinned engine re-adopts the process-default queue
// kind.
func (e *Engine) Reset() {
	totalProcessed.Add(e.processed)
	totalCoalesced.Add(e.coalesced)
	e.flushQueueStats()
	for i := range e.arena {
		s := &e.arena[i]
		s.gen++
		s.arg = nil
		s.pos = int32(i) - 1 // chain the free list through all slots
	}
	e.freeHead = noSlot
	if n := len(e.arena); n > 0 {
		e.freeHead = int32(n - 1)
	}
	e.heap = e.heap[:0]
	for i := range e.buckets {
		e.buckets[i] = e.buckets[i][:0]
	}
	e.curDay = 0
	e.curIdx = 0
	e.curSorted = false
	e.nearCount = 0
	e.adoptDefaultQueue()
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.coalesced = 0
	e.stopped = false
	e.limit = noRunLimit
	e.curSeq = uint64(idleTicket)
	e.flight = nil
}

// SetFlightRecorder installs (or with nil removes) the dispatch
// recorder. Reset also removes it, so a pooled engine never carries a
// recorder into its next cell.
func (e *Engine) SetFlightRecorder(r *obs.FlightRecorder) { e.flight = r }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of heap events dispatched so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Coalesced returns the number of logical events claimed inline via
// RunsNext so far (events that did not round-trip through the heap).
func (e *Engine) Coalesced() uint64 { return e.coalesced }

// CurrentTicket returns the tie-break position of the event being
// dispatched right now — a heap event's sequence number, or the claimed
// ticket inside a RunsNext batch — and idleTicket (the maximum Ticket)
// when no event is running. A model that accounts sub-events lazily
// instead of scheduling them (the link serializer's departures) uses it
// to reproduce the eager scheme's same-instant semantics exactly: a
// sub-event keyed (t, tk) has logically completed iff t is in the past,
// or t is now and tk sorts before the running event's position.
func (e *Engine) CurrentTicket() Ticket { return Ticket(e.curSeq) }

// Pending returns the number of events waiting in the queue. Cancelled
// timers are never counted — the heap tier removes them eagerly, the
// bucket tier excludes tombstones from its live count.
func (e *Engine) Pending() int { return e.nearCount + len(e.heap) }

// PeekTime returns the virtual time of the next event the engine would
// dispatch, or the maximum Time when the queue is empty. O(1) on the
// heap queue; amortized O(1) on the tiered queue (the peek may settle
// the dispatch bucket — work Step would otherwise do).
func (e *Engine) PeekTime() Time {
	if at, _, ok := e.peekHead(); ok {
		return at
	}
	return maxTime
}

// peekHead returns the (at, seq) ordering key of the queue's head
// event, settling the tiered queue's dispatch cursor first.
func (e *Engine) peekHead() (Time, uint64, bool) {
	if e.tiered {
		if !e.settle() {
			return 0, 0, false
		}
		ent := &e.buckets[e.curDay&bucketMask][e.curIdx]
		return ent.at, ent.seq, true
	}
	if len(e.heap) == 0 {
		return 0, 0, false
	}
	return e.heap[0].at, e.heap[0].seq, true
}

// Schedule arranges for fn to run delay from now. A negative delay is
// treated as zero (run "immediately", after currently queued events at the
// same timestamp). The returned Timer may be used to cancel the event.
//
// The closure form is for setup and cold paths; per-packet scheduling
// should use ScheduleEvent/AtEvent with a registered kind, which capture
// nothing.
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute virtual time t. If t is in the
// past it is clamped to the current time.
func (e *Engine) At(t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	// A func value is pointer-shaped, so boxing it into the arg interface
	// does not allocate; the closure itself (if it captures) is the
	// caller's allocation.
	return e.schedule(t, KindClosure, fn)
}

// ScheduleEvent is the typed form of Schedule: the registered handler for
// kind is invoked with arg when the timer fires. With a pointer-shaped
// arg (the idiom: the model struct the event belongs to), scheduling
// captures nothing and allocates nothing.
func (e *Engine) ScheduleEvent(delay time.Duration, kind EventKind, arg any) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.AtEvent(e.now+delay, kind, arg)
}

// AtEvent is the typed form of At.
func (e *Engine) AtEvent(t Time, kind EventKind, arg any) Timer {
	if kind >= numKinds {
		panic(fmt.Sprintf("sim: AtEvent with unregistered kind %d", kind))
	}
	return e.schedule(t, kind, arg)
}

// Ticket is a reserved position in the engine's tie-break order. Models
// that multiplex several logical events through one timer (netsim.Link's
// drain, the tcp pacer) reserve a ticket per logical event up front and
// later schedule the shared timer under the earliest pending ticket — so
// same-timestamp ordering against every other event is exactly what
// scheduling each logical event individually would have produced. That
// equivalence is what keeps experiment output byte-identical across the
// multiplexing.
type Ticket uint64

// ReserveTicket claims the next position in the tie-break order, exactly
// as scheduling an event at this point would.
func (e *Engine) ReserveTicket() Ticket {
	e.seq++
	return Ticket(e.seq)
}

// AtTicket arranges for kind's handler to run on arg at absolute time t,
// occupying a previously reserved tie-break position. Each ticket may
// back at most one scheduled timer at a time; reusing a ticket after its
// timer fired or was cancelled is allowed (the drain pattern re-arms
// under the next pending ticket).
func (e *Engine) AtTicket(t Time, tk Ticket, kind EventKind, arg any) Timer {
	if kind >= numKinds {
		panic(fmt.Sprintf("sim: AtTicket with unregistered kind %d", kind))
	}
	return e.scheduleSeq(t, uint64(tk), kind, arg)
}

// RunsNext reports whether a pending logical event keyed (t, tk) would be
// the engine's very next dispatch — no queued event sorts before it, the
// run loop has not been stopped, and t does not exceed the loop's
// deadline — and, when true, advances the clock to t and counts the
// event as coalesced. A multiplexing model calls this from inside its
// timer handler to execute successor logical events inline instead of
// re-arming through the heap; because the claim succeeds only when the
// successor would have been dispatched next anyway, execution order (and
// with it every tie-break) is identical to the unbatched schedule.
// Outside Run/RunUntil the claim always fails, preserving strict
// one-event-per-Step semantics for direct Step callers.
func (e *Engine) RunsNext(t Time, tk Ticket) bool {
	if e.stopped || t > e.limit {
		return false
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: RunsNext in the past: %v < %v", t, e.now))
	}
	if at, seq, ok := e.peekHead(); ok {
		if at < t || (at == t && seq < uint64(tk)) {
			return false
		}
	}
	e.now = t
	e.coalesced++
	e.curSeq = uint64(tk)
	if e.flight != nil {
		e.flight.Record(obs.EngineEvent{At: t, Ticket: uint64(tk), Kind: obs.KindCoalesced, Coalesced: true})
	}
	return true
}

// schedule places (kind, arg) into the arena and heap under a fresh
// sequence number.
func (e *Engine) schedule(t Time, kind EventKind, arg any) Timer {
	e.seq++
	return e.scheduleSeq(t, e.seq, kind, arg)
}

// scheduleSeq places (kind, arg) into the arena and queue under an
// explicit tie-break sequence number.
func (e *Engine) scheduleSeq(t Time, seq uint64, kind EventKind, arg any) Timer {
	if t < e.now {
		t = e.now
	}
	si := e.allocSlot()
	s := &e.arena[si]
	s.arg = arg
	gen := s.gen
	if e.tiered {
		e.pushTiered(heapEnt{at: t, seq: seq, slot: si, kind: kind})
	} else {
		e.heap = append(e.heap, heapEnt{at: t, seq: seq, slot: si, kind: kind})
		e.siftUp(len(e.heap) - 1)
	}
	// Depth telemetry: one sample per scheduled event (a handful of
	// integer ops — the counters ride in the engine and flush on Reset).
	d := uint64(e.nearCount + len(e.heap))
	e.qstats.depthSum += d
	e.qstats.depthSamples++
	if d > e.qstats.depthMax {
		e.qstats.depthMax = d
	}
	return Timer{e: e, slot: si, gen: gen}
}

// allocSlot pops the free list, growing the arena only when it is empty.
func (e *Engine) allocSlot() int32 {
	if e.freeHead != noSlot {
		si := e.freeHead
		e.freeHead = e.arena[si].pos
		return si
	}
	e.arena = append(e.arena, slot{})
	return int32(len(e.arena) - 1)
}

// freeSlot retires a fired or cancelled slot: the generation bump
// invalidates outstanding handles. arg is deliberately left in place —
// nil-ing it costs a write-barriered store on every event pop and
// cancel, and the reference it pins (a model object that lives for the
// whole simulation anyway) dies at the latest when Reset clears the
// arena before the engine is pooled.
func (e *Engine) freeSlot(si int32) {
	s := &e.arena[si]
	s.gen++
	s.pos = e.freeHead
	e.freeHead = si
}

// Stop aborts the current Run/RunUntil after the in-flight event returns
// (inline claims made after Stop fail, so a batching drain winds down
// too). The queue is preserved, so a subsequent Run resumes where it
// left off.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	var ent heapEnt
	if e.tiered {
		// The head always dispatches from the near tier: settle moves
		// the window (migrating overflow) until the dispatch bucket
		// holds the minimum key, then popping is a cursor increment.
		if !e.settle() {
			return false
		}
		ent = e.buckets[e.curDay&bucketMask][e.curIdx]
		e.curIdx++
		e.nearCount--
	} else {
		if len(e.heap) == 0 {
			return false
		}
		ent = e.heap[0]
	}
	if ent.at < e.now {
		panic(fmt.Sprintf("sim: time went backwards: %v < %v", ent.at, e.now))
	}
	e.now = ent.at
	e.processed++
	e.curSeq = ent.seq
	if e.flight != nil {
		e.flight.Record(obs.EngineEvent{At: ent.at, Ticket: ent.seq, Kind: uint8(ent.kind), Tag: ent.slot})
	}
	arg := e.arena[ent.slot].arg
	// Retire the slot before running the handler so the event can
	// reschedule (reusing this very slot) and so its own handle is
	// already stale inside the handler. (The tiered pop above already
	// moved the cursor past the entry; only the heap needs a removal.)
	if !e.tiered {
		e.heapRemove(0)
	}
	e.freeSlot(ent.slot)
	kindFns[ent.kind](arg)
	e.curSeq = uint64(idleTicket)
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	e.limit = maxTime
	for !e.stopped && e.Step() {
	}
	e.limit = noRunLimit
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (if it is ahead of the last event). Events scheduled
// after deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	e.limit = deadline
	for !e.stopped {
		at, _, ok := e.peekHead()
		if !ok || at > deadline {
			break
		}
		e.Step()
	}
	e.limit = noRunLimit
	if e.now < deadline {
		e.now = deadline
	}
}

// siftUp restores heap order for the entry at heap index i, moving it
// toward the root. The arena is written once per moved entry (its heap
// position, for eager Cancel); comparisons never leave the heap slice.
func (e *Engine) siftUp(i int) {
	h := e.heap
	ent := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ent, h[p]) {
			break
		}
		h[i] = h[p]
		e.arena[h[i].slot].pos = int32(i)
		i = p
	}
	h[i] = ent
	e.arena[ent.slot].pos = int32(i)
}

// siftDown restores heap order for the entry at heap index i, moving it
// toward the leaves.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ent := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(h[j], h[best]) {
				best = j
			}
		}
		if !less(h[best], ent) {
			break
		}
		h[i] = h[best]
		e.arena[h[i].slot].pos = int32(i)
		i = best
	}
	h[i] = ent
	e.arena[ent.slot].pos = int32(i)
}

// heapRemove deletes the entry at heap index i in O(log n), the operation
// that makes eager Cancel cheap.
func (e *Engine) heapRemove(i int) {
	h := e.heap
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if i == n {
		return
	}
	h[i] = last
	e.arena[last.slot].pos = int32(i)
	if i > 0 && less(last, h[(i-1)>>2]) {
		e.siftUp(i)
	} else {
		e.siftDown(i)
	}
}
