// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the network, transport and application models in this repository
// run on virtual time supplied by an Engine. Events execute in strict
// timestamp order; ties are broken by scheduling order, which makes every
// simulation fully deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, measured from the simulation epoch (0).
type Time = time.Duration

// Timer is a handle for a scheduled event. A Timer can be cancelled or
// queried; it is returned by Engine.Schedule and Engine.At.
type Timer struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// At returns the virtual time the timer is scheduled to fire.
func (t *Timer) At() Time { return t.at }

// Cancel prevents the timer from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op.
func (t *Timer) Cancel() { t.cancelled = true }

// Cancelled reports whether Cancel has been called.
func (t *Timer) Cancelled() bool { return t.cancelled }

// Engine is a discrete-event scheduler over virtual time.
//
// The zero value is not usable; construct with New. Engines are not safe
// for concurrent use: simulations are single-goroutine by design, which is
// what makes them reproducible.
type Engine struct {
	now     Time
	queue   timerHeap
	seq     uint64
	stopped bool
	// processed counts events that have been executed.
	processed uint64
}

// New returns an empty Engine positioned at time 0.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue, including
// cancelled ones that have not yet been discarded.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule arranges for fn to run delay from now. A negative delay is
// treated as zero (run "immediately", after currently queued events at the
// same timestamp). The returned Timer may be used to cancel the event.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute virtual time t. If t is in the
// past it is clamped to the current time.
func (e *Engine) At(t Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < e.now {
		t = e.now
	}
	e.seq++
	tm := &Timer{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.queue, tm)
	return tm
}

// Stop aborts the current Run/RunUntil after the in-flight event returns.
// The queue is preserved, so a subsequent Run resumes where it left off.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty. Cancelled events are discarded
// without executing.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		tm := heap.Pop(&e.queue).(*Timer)
		if tm.cancelled {
			continue
		}
		if tm.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: %v < %v", tm.at, e.now))
		}
		e.now = tm.at
		e.processed++
		tm.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (if it is ahead of the last event). Events scheduled
// after deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped {
		tm := e.peek()
		if tm == nil || tm.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// peek returns the earliest non-cancelled timer without executing it.
func (e *Engine) peek() *Timer {
	for len(e.queue) > 0 {
		tm := e.queue[0]
		if !tm.cancelled {
			return tm
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// timerHeap is a min-heap ordered by (at, seq).
type timerHeap []*Timer

func (h timerHeap) Len() int { return len(h) }

func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *timerHeap) Push(x any) {
	tm := x.(*Timer)
	tm.index = len(*h)
	*h = append(*h, tm)
}

func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	tm := old[n-1]
	old[n-1] = nil
	tm.index = -1
	*h = old[:n-1]
	return tm
}
