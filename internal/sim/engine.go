// Package sim provides a deterministic discrete-event simulation engine.
//
// All of the network, transport and application models in this repository
// run on virtual time supplied by an Engine. Events execute in strict
// timestamp order; ties are broken by scheduling order, which makes every
// simulation fully deterministic for a given seed.
//
// # Allocation and layout contract
//
// The engine is built for allocation-free, cache-resident steady-state
// operation:
//
//   - Timers live in an engine-owned arena recycled through a free list;
//     a slot holds only the callback (fn, arg), its generation and its
//     heap position — 32 bytes.
//   - The event queue is a 4-ary min-heap of 24-byte entries that embed
//     the full ordering key (at, seq) next to the arena slot index, so
//     sift comparisons read only the contiguous heap slice and never
//     chase a pointer into the arena. The arena is touched exactly once
//     per moved entry (to maintain the slot's heap position for eager
//     Cancel), not once per comparison.
//   - The closure-free ScheduleCall/AtCall forms let hot-path callers
//     (links, subflows, shapers) schedule events without capturing
//     anything.
//   - Reset returns an engine to time zero while keeping the arena and
//     heap at their grown capacity, and Acquire/Release pool engines so
//     a sweep of thousands of simulation cells re-grows these structures
//     once per worker instead of once per cell.
//
// Once the arena and heap have grown to a simulation's working set,
// scheduling, firing and cancelling timers perform zero heap
// allocations — the AllocsPerRun regression tests in this package and in
// netsim/tcp pin that at ~0 allocations per packet.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured from the simulation epoch (0).
type Time = time.Duration

// noSlot terminates the arena free list.
const noSlot = -1

// Timer is a generation-checked handle for a scheduled event, returned by
// the Schedule/At families. The zero value is inert: Cancel is a no-op
// and Active reports false. Handles stay safe after the event fires or is
// cancelled — the underlying arena slot is recycled, but the generation
// check makes a stale handle's Cancel a no-op rather than a cancellation
// of an unrelated reused timer.
type Timer struct {
	e    *Engine
	slot int32
	gen  uint32
}

// Active reports whether the timer is still scheduled (not yet fired and
// not cancelled).
func (t Timer) Active() bool {
	return t.e != nil && t.e.arena[t.slot].gen == t.gen
}

// At returns the virtual time the timer is scheduled to fire, or 0 if it
// already fired or was cancelled.
func (t Timer) At() Time {
	if !t.Active() {
		return 0
	}
	return t.e.heap[t.e.arena[t.slot].pos].at
}

// Cancel removes the timer from the queue eagerly, so cancelled events
// cost no queue space and no pop-time filtering (RTO-heavy runs re-arm
// and cancel a timer per segment). Cancelling an already-fired or
// already-cancelled timer — or the zero Timer — is a no-op.
func (t Timer) Cancel() {
	e := t.e
	if e == nil {
		return
	}
	s := &e.arena[t.slot]
	if s.gen != t.gen {
		return // already fired, cancelled, or slot reused
	}
	e.heapRemove(int(s.pos))
	e.freeSlot(t.slot)
}

// slot is one arena entry: just the callback and the bookkeeping that
// ties it to the heap. The ordering key lives in the heap entry itself,
// not here. While scheduled, pos is the timer's index in the heap; while
// free, pos chains the free list.
type slot struct {
	fn  func(any)
	arg any
	gen uint32
	pos int32
}

// heapEnt is one event-queue entry: the full ordering key packed next to
// the arena slot index. less never touches the arena — comparisons stay
// inside the contiguous heap slice.
type heapEnt struct {
	at   Time
	seq  uint64
	slot int32
}

// less orders entries by (at, seq): earliest first, scheduling order
// breaking ties — the determinism invariant every model relies on.
func less(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event scheduler over virtual time.
//
// The zero value is not usable; construct with New (or Acquire, which
// reuses a pooled engine). Engines are not safe for concurrent use:
// simulations are single-goroutine by design, which is what makes them
// reproducible.
type Engine struct {
	now      Time
	arena    []slot
	freeHead int32
	// heap is a 4-ary min-heap of key-packed entries ordered by
	// (at, seq). 4-ary beats binary here: sift-down does 3 extra
	// comparisons per level but halves the levels, and with 24-byte
	// entries the four children of a node share two cache lines.
	heap    []heapEnt
	seq     uint64
	stopped bool
	// processed counts events that have been executed.
	processed uint64
}

// New returns an empty Engine positioned at time 0.
func New() *Engine {
	return &Engine{freeHead: noSlot}
}

// Reset returns the engine to virtual time zero with an empty queue,
// retaining the arena and heap at their grown capacity so the next
// simulation starts with a warm working set. Every outstanding Timer
// handle is invalidated (their generation is bumped) and every pending
// callback reference is dropped, so the previous simulation's object
// graph becomes collectable even while the engine sits in a pool.
func (e *Engine) Reset() {
	for i := range e.arena {
		s := &e.arena[i]
		s.gen++
		s.fn = nil
		s.arg = nil
		s.pos = int32(i) - 1 // chain the free list through all slots
	}
	e.freeHead = noSlot
	if n := len(e.arena); n > 0 {
		e.freeHead = int32(n - 1)
	}
	e.heap = e.heap[:0]
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.stopped = false
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting in the queue. Cancelled
// timers are removed eagerly and never counted.
func (e *Engine) Pending() int { return len(e.heap) }

// Schedule arranges for fn to run delay from now. A negative delay is
// treated as zero (run "immediately", after currently queued events at the
// same timestamp). The returned Timer may be used to cancel the event.
//
// The closure form is for setup and cold paths; per-packet scheduling
// should use ScheduleCall/AtCall, which allocate nothing.
func (e *Engine) Schedule(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at absolute virtual time t. If t is in the
// past it is clamped to the current time.
func (e *Engine) At(t Time, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	// A func value is pointer-shaped, so boxing it into the arg interface
	// does not allocate; the closure itself (if it captures) is the
	// caller's allocation.
	return e.schedule(t, callClosure, fn)
}

// callClosure adapts the closure form onto the (fn, arg) representation.
func callClosure(arg any) { arg.(func())() }

// ScheduleCall is the closure-free form of Schedule: fn is invoked with
// arg when the timer fires. With a package-level fn and a pointer-shaped
// arg (the idiom: a package-level dispatch function asserting arg back to
// the model struct), scheduling captures nothing and allocates nothing.
func (e *Engine) ScheduleCall(delay time.Duration, fn func(any), arg any) Timer {
	if delay < 0 {
		delay = 0
	}
	return e.AtCall(e.now+delay, fn, arg)
}

// AtCall is the closure-free form of At.
func (e *Engine) AtCall(t Time, fn func(any), arg any) Timer {
	if fn == nil {
		panic("sim: AtCall called with nil function")
	}
	return e.schedule(t, fn, arg)
}

// Ticket is a reserved position in the engine's tie-break order. Models
// that multiplex several logical events through one timer (netsim.Link's
// drain) reserve a ticket per logical event up front and later schedule
// the shared timer under the earliest pending ticket — so same-timestamp
// ordering against every other event is exactly what scheduling each
// logical event individually would have produced. That equivalence is
// what keeps experiment output byte-identical across the multiplexing.
type Ticket uint64

// ReserveTicket claims the next position in the tie-break order, exactly
// as scheduling an event at this point would.
func (e *Engine) ReserveTicket() Ticket {
	e.seq++
	return Ticket(e.seq)
}

// AtTicket arranges for fn(arg) to run at absolute time t occupying a
// previously reserved tie-break position. Each ticket may back at most
// one scheduled timer at a time; reusing a ticket after its timer fired
// or was cancelled is allowed (the drain pattern re-arms under the next
// pending ticket).
func (e *Engine) AtTicket(t Time, tk Ticket, fn func(any), arg any) Timer {
	if fn == nil {
		panic("sim: AtTicket called with nil function")
	}
	return e.scheduleSeq(t, uint64(tk), fn, arg)
}

// schedule places (fn, arg) into the arena and heap under a fresh
// sequence number.
func (e *Engine) schedule(t Time, fn func(any), arg any) Timer {
	e.seq++
	return e.scheduleSeq(t, e.seq, fn, arg)
}

// scheduleSeq places (fn, arg) into the arena and heap under an explicit
// tie-break sequence number.
func (e *Engine) scheduleSeq(t Time, seq uint64, fn func(any), arg any) Timer {
	if t < e.now {
		t = e.now
	}
	si := e.allocSlot()
	s := &e.arena[si]
	s.fn = fn
	s.arg = arg
	e.heap = append(e.heap, heapEnt{at: t, seq: seq, slot: si})
	e.siftUp(len(e.heap) - 1)
	return Timer{e: e, slot: si, gen: s.gen}
}

// allocSlot pops the free list, growing the arena only when it is empty.
func (e *Engine) allocSlot() int32 {
	if e.freeHead != noSlot {
		si := e.freeHead
		e.freeHead = e.arena[si].pos
		return si
	}
	e.arena = append(e.arena, slot{})
	return int32(len(e.arena) - 1)
}

// freeSlot retires a fired or cancelled slot: the generation bump
// invalidates outstanding handles. fn/arg are deliberately left in
// place — nil-ing them costs three write-barriered stores on every
// event pop and cancel, and the references they pin (model objects that
// live for the whole simulation anyway) die at the latest when Reset
// clears the arena before the engine is pooled.
func (e *Engine) freeSlot(si int32) {
	s := &e.arena[si]
	s.gen++
	s.pos = e.freeHead
	e.freeHead = si
}

// Stop aborts the current Run/RunUntil after the in-flight event returns.
// The queue is preserved, so a subsequent Run resumes where it left off.
func (e *Engine) Stop() { e.stopped = true }

// Step executes the single earliest pending event and returns true, or
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ent := e.heap[0]
	if ent.at < e.now {
		panic(fmt.Sprintf("sim: time went backwards: %v < %v", ent.at, e.now))
	}
	e.now = ent.at
	e.processed++
	s := &e.arena[ent.slot]
	fn, arg := s.fn, s.arg
	// Retire the slot before running the callback so the event can
	// reschedule (reusing this very slot) and so its own handle is
	// already stale inside the callback.
	e.heapRemove(0)
	e.freeSlot(ent.slot)
	fn(arg)
	return true
}

// Run executes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to deadline (if it is ahead of the last event). Events scheduled
// after deadline remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// siftUp restores heap order for the entry at heap index i, moving it
// toward the root. The arena is written once per moved entry (its heap
// position, for eager Cancel); comparisons never leave the heap slice.
func (e *Engine) siftUp(i int) {
	h := e.heap
	ent := h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ent, h[p]) {
			break
		}
		h[i] = h[p]
		e.arena[h[i].slot].pos = int32(i)
		i = p
	}
	h[i] = ent
	e.arena[ent.slot].pos = int32(i)
}

// siftDown restores heap order for the entry at heap index i, moving it
// toward the leaves.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ent := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(h[j], h[best]) {
				best = j
			}
		}
		if !less(h[best], ent) {
			break
		}
		h[i] = h[best]
		e.arena[h[i].slot].pos = int32(i)
		i = best
	}
	h[i] = ent
	e.arena[ent.slot].pos = int32(i)
}

// heapRemove deletes the entry at heap index i in O(log n), the operation
// that makes eager Cancel cheap.
func (e *Engine) heapRemove(i int) {
	h := e.heap
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if i == n {
		return
	}
	h[i] = last
	e.arena[last.slot].pos = int32(i)
	if i > 0 && less(last, h[(i-1)>>2]) {
		e.siftUp(i)
	} else {
		e.siftDown(i)
	}
}
