package sim

import (
	"fmt"
	"slices"
	"sync/atomic"
)

// This file holds the near-horizon tier of the two-tier calendar event
// queue and the queue-selection API. The far tier is the 4-ary
// key-packed min-heap in engine.go (Engine.heap), which a heap-mode
// engine uses alone and a tiered-mode engine uses as overflow storage
// for events beyond the bucket window.
//
// Shape of the near tier: a ring of numBuckets time buckets, each
// 1<<bucketBits nanoseconds of virtual time wide. An event whose
// timestamp falls within the ring's current window is appended to its
// bucket in O(1); a bucket is sorted by the full (at, seq) key only
// when the dispatch cursor reaches it, so the per-event ordering cost
// collapses from O(log n) sift work to an amortized O(1) append plus a
// share of one small sort. Events past the window go to the overflow
// heap and migrate into buckets as the window advances.

// QueueKind selects an event-queue implementation. Both kinds dispatch
// in the identical (at, seq) total order — every experiment byte is the
// same under either — so the choice is purely a performance knob.
type QueueKind uint8

const (
	// QueueHeap is the single-tier 4-ary min-heap (O(log n) per event).
	QueueHeap QueueKind = iota
	// QueueTiered is the two-tier calendar queue: near-horizon bucket
	// ring with amortized O(1) appends, heap overflow for the far
	// future.
	QueueTiered
)

// String names the kind as the ecfbench -queue flag spells it.
func (k QueueKind) String() string {
	if k == QueueTiered {
		return "tiered"
	}
	return "heap"
}

// ParseQueueKind maps the -queue flag values to a QueueKind.
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "heap":
		return QueueHeap, nil
	case "tiered":
		return QueueTiered, nil
	}
	return 0, fmt.Errorf("unknown queue kind %q (heap|tiered)", s)
}

// defaultQueue is the process-wide queue kind New() engines adopt (and
// unpinned engines re-adopt at Reset/Acquire, so pooled engines follow
// a startup-time SetDefaultQueue even if they were built earlier).
var defaultQueue atomic.Uint32

func init() { defaultQueue.Store(uint32(QueueHeap)) }

// DefaultQueue returns the process-wide default queue kind.
func DefaultQueue() QueueKind { return QueueKind(defaultQueue.Load()) }

// SetDefaultQueue sets the process-wide default queue kind. Call it at
// startup, before simulations run: engines created afterwards use it
// immediately and unpinned pooled engines adopt it at their next Reset.
func SetDefaultQueue(k QueueKind) { defaultQueue.Store(uint32(k)) }

const (
	// bucketBits is the log2 width of one near-tier bucket: 2^24 ns ≈
	// 16.8 ms — several srtt at the paper's RTT scale. The sweep's event
	// gaps are serialization- and RTT-scale (hundreds of µs to a few ms
	// at Mbps-scale bandwidths), so wide buckets keep the window-advance
	// machinery (recycle, migrate) off the hot path; the dispatch-time
	// sort still stays small because the live queue is shallow (mean
	// depth ~6.5 on the quick catalog). Swept 21–26 on the quick
	// catalog; 24 measured fastest.
	bucketBits = 24
	// numBuckets is the ring length; the window spans
	// numBuckets<<bucketBits ≈ 1.07 s of virtual time, so pacing,
	// delayed-ACK, link-drain, and RTO timers all land in the near tier
	// and only transfer-lifetime events overflow.
	numBuckets = 64
	bucketMask = numBuckets - 1

	// Packed bucket locations (slot.pos for a near-tier event) are
	// ^(ring<<locIdxBits | index): always negative, so they never
	// collide with overflow-heap indices (>= 0). 23 index bits bound a
	// bucket at 8M entries, far past any simulated queue depth.
	locIdxBits = 23
	locIdxMask = 1<<locIdxBits - 1

	// tombSlot marks a cancelled entry awaiting collection at sort or
	// dispatch time. Cancel frees the arena slot eagerly (the alloc
	// contract is unchanged); only the 24-byte entry lingers.
	tombSlot = int32(-1)
)

// packLoc encodes a bucket position into slot.pos.
func packLoc(ring int64, idx int) int32 {
	return ^int32(ring<<locIdxBits | int64(idx))
}

// day returns the absolute bucket number of a timestamp.
func day(t Time) int64 { return int64(t) >> bucketBits }

// pushTiered routes a new entry into the near or far tier. The caller
// has already clamped ent.at to >= e.now.
func (e *Engine) pushTiered(ent heapEnt) {
	d := day(ent.at)
	if d >= e.curDay+numBuckets {
		// Far future: overflow heap, migrated in when the window
		// reaches its day.
		e.heap = append(e.heap, ent)
		e.siftUp(len(e.heap) - 1)
		e.qstats.far++
		return
	}
	e.qstats.near++
	e.nearCount++
	if d <= e.curDay {
		// The dispatch bucket. (d < curDay is possible when the cursor
		// settled ahead of the clock and a handler schedules close to
		// now — the full-key order inside the dispatch bucket absorbs
		// it, since such an entry still sorts before every later
		// bucket.) A sorted dispatch bucket takes a binary insert into
		// its undispatched tail; an unsorted one takes a plain append.
		ring := e.curDay & bucketMask
		if e.curSorted {
			e.insertSorted(ring, ent)
			return
		}
		e.arena[ent.slot].pos = packLoc(ring, e.bucketAppend(ring, ent))
		return
	}
	ring := d & bucketMask
	e.arena[ent.slot].pos = packLoc(ring, e.bucketAppend(ring, ent))
}

// bucketAppend appends ent to a ring bucket and returns its index,
// growing the whole ring through growBucket when the bucket is full.
func (e *Engine) bucketAppend(ring int64, ent heapEnt) int {
	b := e.buckets[ring]
	if len(b) == cap(b) {
		b = e.growBucket(ring)
	}
	b = append(b, ent)
	e.buckets[ring] = b
	return len(b) - 1
}

// growBucket doubles the shared per-bucket capacity and returns the
// (re-based) full bucket that triggered the growth. Growing the whole
// ring at once is what makes the steady state allocation-free: bucket
// occupancy varies day to day, and 64 independent slices each
// converging to their own max would keep reallocating on every new
// per-slot record, while one shared backing array converges to the
// global max occupancy in O(log max) re-carves — exactly like the
// heap's single slice. The doubling amortizes the O(ring) copy away.
func (e *Engine) growBucket(ring int64) []heapEnt {
	nc := 2 * e.bucketCap
	if nc < 16 {
		nc = 16
	}
	e.carveBuckets(nc)
	return e.buckets[ring]
}

// carveBuckets re-bases every ring bucket onto one shared backing array
// at the given per-bucket capacity, preserving contents and indices (so
// packed arena locations stay valid). Every bucket always has exactly
// bucketCap capacity; the three-index carve keeps appends from crossing
// into a neighbor's region.
func (e *Engine) carveBuckets(bcap int) {
	store := make([]heapEnt, numBuckets*bcap)
	for i := range e.buckets {
		nb := store[i*bcap : i*bcap : (i+1)*bcap]
		nb = append(nb, e.buckets[i]...)
		e.buckets[i] = nb
	}
	e.bucketCap = bcap
}

// insertSorted places ent into the sorted undispatched tail of the
// dispatch bucket, keeping (at, seq) order; shifted entries get their
// arena locations rewritten, same discipline as a heap sift.
func (e *Engine) insertSorted(ring int64, ent heapEnt) {
	b := e.buckets[ring]
	lo, hi := e.curIdx, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if less(ent, b[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if len(b) == cap(b) {
		b = e.growBucket(ring)
	}
	b = append(b, heapEnt{})
	copy(b[lo+1:], b[lo:])
	b[lo] = ent
	e.buckets[ring] = b
	for j := lo; j < len(b); j++ {
		if s := b[j].slot; s != tombSlot {
			e.arena[s].pos = packLoc(ring, j)
		}
	}
}

// settle advances the dispatch cursor to the queue's head event:
// sorting the dispatch bucket if it has not been sorted yet, skipping
// tombstones, recycling exhausted buckets, advancing (or, when every
// bucket is empty, jumping) the window and migrating overflow entries
// that the moved window now covers. After a true return the head entry
// is buckets[curDay&bucketMask][curIdx]; false means the queue is
// empty. Amortized O(1): every unit of settle work is paid for by one
// scheduled event or one bucket the window passes.
//
// The split matters: settle is called at least twice per dispatched
// event (peek, then pop), so the already-settled case — sorted bucket,
// live entry under the cursor — is a two-branch inlinable check, and
// only misses fall through to the loop in settleSlow.
func (e *Engine) settle() bool {
	if e.curSorted {
		b := e.buckets[e.curDay&bucketMask]
		if e.curIdx < len(b) && b[e.curIdx].slot != tombSlot {
			return true
		}
	}
	return e.settleSlow()
}

func (e *Engine) settleSlow() bool {
	for {
		ring := e.curDay & bucketMask
		b := e.buckets[ring]
		if !e.curSorted {
			b = e.sortBucket(ring)
		}
		for e.curIdx < len(b) && b[e.curIdx].slot == tombSlot {
			e.curIdx++
		}
		if e.curIdx < len(b) {
			return true
		}
		// Bucket exhausted: recycle it (capacity retained) and move the
		// window. With live near-tier entries the window advances one
		// bucket; with none it jumps straight to the overflow head's
		// day, so idle stretches cost O(1), not O(gap).
		e.buckets[ring] = b[:0]
		e.curIdx = 0
		e.curSorted = false
		if e.nearCount > 0 {
			e.curDay++
		} else if len(e.heap) > 0 {
			e.curDay = day(e.heap[0].at)
		} else {
			return false
		}
		e.migrate()
	}
}

// sortBucket compacts tombstones out of the dispatch bucket, sorts the
// survivors by (at, seq) — keys are unique, so an unstable sort is
// exact — and rewrites their arena locations in one pass.
func (e *Engine) sortBucket(ring int64) []heapEnt {
	b := e.buckets[ring]
	if len(b) > 0 {
		live := b[:0]
		for i := range b {
			if b[i].slot != tombSlot {
				live = append(live, b[i])
			}
		}
		b = live
		if len(b) <= 24 {
			// Insertion sort: bucket contents arrive largely in schedule
			// order, which correlates with (at, seq), so short buckets
			// are nearly sorted already.
			for i := 1; i < len(b); i++ {
				ent := b[i]
				j := i
				for j > 0 && less(ent, b[j-1]) {
					b[j] = b[j-1]
					j--
				}
				b[j] = ent
			}
		} else {
			slices.SortFunc(b, func(x, y heapEnt) int {
				if less(x, y) {
					return -1
				}
				return 1
			})
		}
		for i := range b {
			e.arena[b[i].slot].pos = packLoc(ring, i)
		}
		e.buckets[ring] = b
		e.qstats.sorts++
		if n := uint64(len(b)); n > e.qstats.bucketMax {
			e.qstats.bucketMax = n
		}
	}
	e.curSorted = true
	e.curIdx = 0
	return b
}

// migrate drains overflow entries whose day the (just-moved) window now
// covers into their buckets. Only settle moves the window, so migration
// never targets a sorted dispatch bucket.
func (e *Engine) migrate() {
	horizon := e.curDay + numBuckets - 1
	for len(e.heap) > 0 {
		ent := e.heap[0]
		d := day(ent.at)
		if d > horizon {
			return
		}
		e.heapRemove(0)
		ring := d & bucketMask
		e.arena[ent.slot].pos = packLoc(ring, e.bucketAppend(ring, ent))
		e.nearCount++
		e.qstats.migrated++
	}
}

// setQueueKind switches an (empty) engine between queue
// implementations, allocating the bucket ring on first use of the
// tiered kind. The ring is retained across a switch back to heap so a
// later switch keeps its grown capacity.
func (e *Engine) setQueueKind(k QueueKind) {
	e.tiered = k == QueueTiered
	if e.tiered && e.buckets == nil {
		e.buckets = make([][]heapEnt, numBuckets)
		e.carveBuckets(16)
	}
}

// adoptDefaultQueue re-reads the process default for unpinned engines;
// Reset and Acquire call it so pooled engines follow a startup-time
// SetDefaultQueue.
func (e *Engine) adoptDefaultQueue() {
	if !e.pinnedQueue {
		e.setQueueKind(DefaultQueue())
	}
}

// Queue returns the engine's queue kind.
func (e *Engine) Queue() QueueKind {
	if e.tiered {
		return QueueTiered
	}
	return QueueHeap
}

// queueCounters is the per-run event-queue telemetry, flushed into the
// process totals by Reset (the pooled-lifecycle step every cell ends
// with). Depth is sampled after every insert; the bucket counters are
// live only on tiered engines.
type queueCounters struct {
	depthMax     uint64
	depthSum     uint64
	depthSamples uint64
	near         uint64
	far          uint64
	migrated     uint64
	sorts        uint64
	bucketMax    uint64
}

// QueueStats aggregates event-queue telemetry across every engine run
// flushed so far. DepthMean is DepthSum/DepthSamples.
type QueueStats struct {
	// DepthMax is the deepest the queue got (pending events, tombstones
	// excluded) across all runs; DepthSum/DepthSamples accumulate one
	// sample per scheduled event for the mean.
	DepthMax     uint64
	DepthSum     uint64
	DepthSamples uint64
	// NearScheduled/FarScheduled split scheduled events by tier;
	// Migrated counts overflow entries pulled into buckets as the
	// window advanced. All zero under the heap queue.
	NearScheduled uint64
	FarScheduled  uint64
	Migrated      uint64
	// BucketSorts counts dispatch-bucket sorts; BucketMax is the
	// largest bucket ever sorted.
	BucketSorts uint64
	BucketMax   uint64
}

// DepthMean returns the mean queue depth over every sample, or 0 with
// no samples.
func (s QueueStats) DepthMean() float64 {
	if s.DepthSamples == 0 {
		return 0
	}
	return float64(s.DepthSum) / float64(s.DepthSamples)
}

var (
	totalDepthMax     atomic.Uint64
	totalDepthSum     atomic.Uint64
	totalDepthSamples atomic.Uint64
	totalNear         atomic.Uint64
	totalFar          atomic.Uint64
	totalMigrated     atomic.Uint64
	totalSorts        atomic.Uint64
	totalBucketMax    atomic.Uint64
)

// TotalQueueStats returns the process-wide queue telemetry, summed (and
// for the maxima, maxed) over every engine run flushed so far.
func TotalQueueStats() QueueStats {
	return QueueStats{
		DepthMax:      totalDepthMax.Load(),
		DepthSum:      totalDepthSum.Load(),
		DepthSamples:  totalDepthSamples.Load(),
		NearScheduled: totalNear.Load(),
		FarScheduled:  totalFar.Load(),
		Migrated:      totalMigrated.Load(),
		BucketSorts:   totalSorts.Load(),
		BucketMax:     totalBucketMax.Load(),
	}
}

// atomicMax raises a into v if it is larger.
func atomicMax(v *atomic.Uint64, a uint64) {
	for {
		cur := v.Load()
		if a <= cur || v.CompareAndSwap(cur, a) {
			return
		}
	}
}

// flushQueueStats folds the run's counters into the process totals and
// zeroes them for the next run.
func (e *Engine) flushQueueStats() {
	q := &e.qstats
	if q.depthSamples != 0 {
		totalDepthSum.Add(q.depthSum)
		totalDepthSamples.Add(q.depthSamples)
		atomicMax(&totalDepthMax, q.depthMax)
	}
	if q.near != 0 {
		totalNear.Add(q.near)
	}
	if q.far != 0 {
		totalFar.Add(q.far)
	}
	if q.migrated != 0 {
		totalMigrated.Add(q.migrated)
	}
	if q.sorts != 0 {
		totalSorts.Add(q.sorts)
		atomicMax(&totalBucketMax, q.bucketMax)
	}
	*q = queueCounters{}
}
