package sim

import (
	"testing"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestScheduleRunsInOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTiesBreakByScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie order = %v, want ascending", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := New()
	var at time.Duration
	e.Schedule(42*time.Millisecond, func() { at = e.Now() })
	e.Run()
	if at != 42*time.Millisecond {
		t.Fatalf("event saw Now() = %v, want 42ms", at)
	}
	if e.Now() != 42*time.Millisecond {
		t.Fatalf("final Now() = %v, want 42ms", e.Now())
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := New()
	fired := false
	e.Schedule(10*time.Millisecond, func() {
		e.Schedule(-time.Second, func() { fired = true })
	})
	e.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("Now() = %v, want 10ms", e.Now())
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := New()
	fired := false
	tm := e.Schedule(time.Millisecond, func() { fired = true })
	tm.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
	if tm.Active() {
		t.Fatal("Active() = true after Cancel")
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	e := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			e.Schedule(time.Millisecond, recurse)
		}
	}
	e.Schedule(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*time.Millisecond {
		t.Fatalf("Now() = %v, want 99ms", e.Now())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("fired %d events after Run, want 3", len(fired))
	}
}

func TestRunUntilAdvancesClockWhenIdle(t *testing.T) {
	e := New()
	e.RunUntil(5 * time.Second)
	if e.Now() != 5*time.Second {
		t.Fatalf("Now() = %v, want 5s", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := New()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 5 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	e.Run() // resumes
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestProcessedCounts(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.Schedule(time.Millisecond, func() {})
	}
	tm := e.Schedule(time.Millisecond, func() {})
	tm.Cancel()
	e.Run()
	if e.Processed() != 7 {
		t.Fatalf("Processed() = %d, want 7 (cancelled events excluded)", e.Processed())
	}
}

func TestAtClampsPastTimes(t *testing.T) {
	e := New()
	var at time.Duration
	e.Schedule(10*time.Millisecond, func() {
		e.At(time.Millisecond, func() { at = e.Now() }) // in the past
	})
	e.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("past-scheduled event ran at %v, want 10ms", at)
	}
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	New().Schedule(0, nil)
}

func TestTimerAt(t *testing.T) {
	e := New()
	tm := e.Schedule(7*time.Millisecond, func() {})
	if tm.At() != 7*time.Millisecond {
		t.Fatalf("At() = %v, want 7ms", tm.At())
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	var events uint64
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j)*time.Microsecond, func() {})
		}
		e.Run()
		events += e.Processed() + e.Coalesced()
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}
