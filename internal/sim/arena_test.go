package sim

import (
	"container/heap"
	"math/rand"
	"testing"
	"time"
)

// The timer arena recycles slots through a free list and hands out
// generation-checked handles. These tests pin the safety properties of
// that reuse and the eager-removal behaviour of Cancel.

func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	tm.Cancel() // must not panic
	if tm.Active() {
		t.Fatal("zero Timer reports Active")
	}
	if tm.At() != 0 {
		t.Fatalf("zero Timer At() = %v, want 0", tm.At())
	}
}

func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := New()
	tm := e.Schedule(time.Millisecond, func() {})
	e.Run()
	if tm.Active() {
		t.Fatal("fired timer reports Active")
	}
	tm.Cancel() // slot already recycled; must be a no-op
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after no-op cancel, want 0", e.Pending())
	}
}

func TestStaleHandleCannotCancelReusedSlot(t *testing.T) {
	e := New()
	first := e.Schedule(time.Millisecond, func() {})
	first.Cancel()
	// The freed slot is reused by the very next schedule.
	fired := false
	second := e.Schedule(2*time.Millisecond, func() { fired = true })
	first.Cancel() // stale generation: must not touch the reused slot
	if !second.Active() {
		t.Fatal("fresh timer deactivated by a stale handle")
	}
	e.Run()
	if !fired {
		t.Fatal("reused-slot timer did not fire")
	}
}

func TestDoubleCancelIsNoOp(t *testing.T) {
	e := New()
	tm := e.Schedule(time.Millisecond, func() {})
	keep := e.Schedule(2*time.Millisecond, func() {})
	tm.Cancel()
	tm.Cancel() // second cancel must not disturb the queue
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	if !keep.Active() {
		t.Fatal("unrelated timer lost to a double cancel")
	}
}

func TestCancelRemovesEagerly(t *testing.T) {
	e := New()
	timers := make([]Timer, 100)
	for i := range timers {
		timers[i] = e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	for _, tm := range timers {
		tm.Cancel()
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancelling everything, want 0 (no dead entries may linger)", e.Pending())
	}
}

func TestRunUntilWithCancelledHead(t *testing.T) {
	e := New()
	head := e.Schedule(time.Millisecond, func() { t.Fatal("cancelled head fired") })
	var at Time
	e.Schedule(2*time.Millisecond, func() { at = e.Now() })
	head.Cancel()
	e.RunUntil(5 * time.Millisecond)
	if at != 2*time.Millisecond {
		t.Fatalf("survivor ran at %v, want 2ms", at)
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", e.Now())
	}
}

func TestStopMidQueuePreservesRemainder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 6; i++ {
		i := i
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			order = append(order, i)
			if i == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if len(order) != 3 {
		t.Fatalf("ran %d events before Stop, want 3", len(order))
	}
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d after Stop, want 3", e.Pending())
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want 0..5", order)
		}
	}
}

func TestRescheduleFromCallbackReusesSlot(t *testing.T) {
	e := New()
	hops := 0
	var hop func()
	hop = func() {
		hops++
		if hops < 1000 {
			e.Schedule(time.Microsecond, hop)
		}
	}
	e.Schedule(0, hop)
	e.Run()
	if hops != 1000 {
		t.Fatalf("hops = %d, want 1000", hops)
	}
	// A self-rescheduling chain must recycle one arena slot, not grow one
	// per hop.
	if len(e.arena) > 2 {
		t.Fatalf("arena grew to %d slots for a 1-deep chain", len(e.arena))
	}
}

// testPayload and the test kinds below exercise the typed-event path.
// RegisterKind is init-only, so test kinds are registered at package
// level like model kinds are.
type testPayload struct{ hits int }

var (
	kindTestNop   = RegisterKind("sim.test.nop", func(any) {})
	kindTestInc   = RegisterKind("sim.test.inc", func(a any) { a.(*testPayload).hits++ })
	kindTestInc10 = RegisterKind("sim.test.inc10", func(a any) { a.(*testPayload).hits += 10 })
)

func TestScheduleEventPassesArg(t *testing.T) {
	e := New()
	p := &testPayload{}
	e.ScheduleEvent(time.Millisecond, kindTestInc, p)
	e.AtEvent(2*time.Millisecond, kindTestInc10, p)
	e.Run()
	if p.hits != 11 {
		t.Fatalf("hits = %d, want 11", p.hits)
	}
}

func TestAtEventUnregisteredKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AtEvent with an unregistered kind did not panic")
		}
	}()
	New().AtEvent(0, EventKind(maxKinds-1), nil)
}

func TestKindName(t *testing.T) {
	if got := KindName(kindTestNop); got != "sim.test.nop" {
		t.Fatalf("KindName = %q, want sim.test.nop", got)
	}
	if got := KindName(KindClosure); got != "sim.closure" {
		t.Fatalf("KindName(KindClosure) = %q", got)
	}
}

// TestHeapMatchesReferenceUnderChurn drives the 4-ary indexed heap
// against container/heap with a mixed schedule/cancel/pop workload and
// checks the pop order matches exactly — the (at, seq) total order is
// what the byte-identity contract of every experiment rests on.
func TestHeapMatchesReferenceUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	e := New()
	ref := &refHeap{}
	heap.Init(ref)
	type pair struct {
		tm  Timer
		ev  *refEvent
		idx int
	}
	var live []pair
	var got, want []int
	next := 0
	for round := 0; round < 5000; round++ {
		switch op := rng.Intn(10); {
		case op < 5: // schedule
			at := Time(rng.Intn(1000)) * time.Millisecond
			idx := next
			next++
			tm := e.At(at, func() { got = append(got, idx) })
			ev := &refEvent{at: tm.At(), seq: uint64(round), idx: idx}
			heap.Push(ref, ev)
			live = append(live, pair{tm, ev, idx})
		case op < 7 && len(live) > 0: // cancel a random live timer
			i := rng.Intn(len(live))
			p := live[i]
			if p.tm.Active() {
				p.tm.Cancel()
				p.ev.cancelled = true
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		default: // pop one event from both
			if e.Step() {
				for ref.Len() > 0 {
					ev := heap.Pop(ref).(*refEvent)
					if !ev.cancelled {
						want = append(want, ev.idx)
						break
					}
				}
			}
		}
	}
	// Drain the rest.
	e.Run()
	for ref.Len() > 0 {
		ev := heap.Pop(ref).(*refEvent)
		if !ev.cancelled {
			want = append(want, ev.idx)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, reference popped %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pop %d: got event %d, reference says %d", i, got[i], want[i])
		}
	}
}

// refEvent/refHeap is a container/heap reference implementation ordered
// by (at, seq), mirroring the engine's pre-refactor queue.
type refEvent struct {
	at        Time
	seq       uint64
	idx       int
	cancelled bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TestSteadyStateSchedulingAllocates0 pins the arena contract: once the
// heap and arena are warm, closure-free scheduling and firing allocate
// nothing.
func TestSteadyStateSchedulingAllocates0(t *testing.T) {
	e := New()
	// Warm the arena/heap to the working-set size.
	for i := 0; i < 64; i++ {
		e.ScheduleEvent(time.Duration(i)*time.Millisecond, kindTestNop, nil)
	}
	e.Run()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			e.ScheduleEvent(time.Duration(i)*time.Millisecond, kindTestNop, nil)
		}
		e.Run()
	})
	if avg != 0 {
		t.Fatalf("steady-state schedule+run allocates %v per cycle, want 0", avg)
	}
}

// TestCancelAllocates0 pins that arm/cancel churn (the RTO pattern) is
// allocation-free too.
func TestCancelAllocates0(t *testing.T) {
	e := New()
	tm := e.ScheduleEvent(time.Millisecond, kindTestNop, nil)
	tm.Cancel()
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			tm := e.ScheduleEvent(time.Millisecond, kindTestNop, nil)
			tm.Cancel()
		}
	})
	if avg != 0 {
		t.Fatalf("arm/cancel churn allocates %v per cycle, want 0", avg)
	}
}

// BenchmarkEngineScheduleEventRun is the typed counterpart of
// BenchmarkEngineScheduleRun: 1000 events scheduled and drained per
// iteration, with the engine (and its arena) reused across iterations as
// a simulation would.
func BenchmarkEngineScheduleEventRun(b *testing.B) {
	e := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1000; j++ {
			e.ScheduleEvent(time.Duration(j)*time.Microsecond, kindTestNop, nil)
		}
		e.Run()
	}
	b.ReportMetric(float64(e.Processed()+e.Coalesced())/float64(b.N), "events/op")
}

// BenchmarkEngineCancel measures the arm/cancel cycle (the per-segment
// RTO pattern) on a warm arena.
func BenchmarkEngineCancel(b *testing.B) {
	e := New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := e.ScheduleEvent(time.Millisecond, kindTestNop, nil)
		tm.Cancel()
	}
}
