package sim

import (
	"testing"
	"time"
)

// TestResetClearsQueueAndClock: a reset engine looks factory-new.
func TestResetClearsQueueAndClock(t *testing.T) {
	e := New()
	fired := 0
	e.Schedule(time.Millisecond, func() { fired++ })
	e.Schedule(2*time.Millisecond, func() { fired++ })
	e.RunUntil(time.Millisecond) // leaves one event queued, clock at 1ms
	e.Reset()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v after Reset, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Reset, want 0", e.Pending())
	}
	if e.Processed() != 0 {
		t.Fatalf("Processed() = %d after Reset, want 0", e.Processed())
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("events fired = %d, want 1 (the pre-Reset pending event must not survive)", fired)
	}
}

// TestResetInvalidatesHandles: Timer handles from before a Reset are
// stale — Active is false and Cancel is a no-op even though their slots
// were recycled.
func TestResetInvalidatesHandles(t *testing.T) {
	e := New()
	stale := e.Schedule(time.Millisecond, func() {})
	e.Reset()
	if stale.Active() {
		t.Fatal("pre-Reset handle still Active")
	}
	fired := false
	fresh := e.Schedule(time.Millisecond, func() { fired = true })
	stale.Cancel() // must not cancel the unrelated reused slot
	if !fresh.Active() {
		t.Fatal("stale Cancel killed a post-Reset timer")
	}
	e.Run()
	if !fired {
		t.Fatal("post-Reset timer did not fire")
	}
}

// TestResetIsDeterministic: a reused engine replays a schedule with the
// same execution order and timestamps as a fresh one — the property the
// engine pool's byte-identical-output contract rests on.
func TestResetIsDeterministic(t *testing.T) {
	run := func(e *Engine) []int {
		var got []int
		for i := 0; i < 50; i++ {
			i := i
			// Many ties at the same timestamp exercise the seq reset.
			e.Schedule(time.Duration(i%7)*time.Millisecond, func() { got = append(got, i) })
		}
		e.Run()
		return got
	}
	e := New()
	fresh := run(e)
	e.Reset()
	reused := run(e)
	if len(fresh) != len(reused) {
		t.Fatalf("event counts differ: %d vs %d", len(fresh), len(reused))
	}
	for i := range fresh {
		if fresh[i] != reused[i] {
			t.Fatalf("execution order diverged at %d: fresh %v, reused %v", i, fresh, reused)
		}
	}
}

// TestAcquireReleaseRoundTrip: released engines come back reset.
func TestAcquireReleaseRoundTrip(t *testing.T) {
	e := Acquire()
	e.Schedule(time.Hour, func() {})
	e.RunUntil(time.Minute)
	Release(e)
	e2 := Acquire() // may or may not be the same engine — either way it must be clean
	if e2.Now() != 0 || e2.Pending() != 0 {
		t.Fatalf("Acquire returned a dirty engine: now=%v pending=%d", e2.Now(), e2.Pending())
	}
	Release(e2)
}

// TestResetReusesArenaCapacity: after Reset, scheduling within the old
// working set performs no heap growth.
func TestResetReusesArenaCapacity(t *testing.T) {
	e := New()
	for i := 0; i < 256; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, func() {})
	}
	e.Run()
	e.Reset()
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < 256; i++ {
			e.ScheduleEvent(time.Duration(i)*time.Microsecond, kindTestNop, nil)
		}
		e.Run()
		e.Reset()
	})
	if avg != 0 {
		t.Fatalf("reused engine allocates %v per 256-event batch, want 0", avg)
	}
}
