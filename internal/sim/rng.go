package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via splitmix64). It is reproducible across Go
// versions and platforms, which matters because every experiment in this
// repository must regenerate the same rows for a given seed.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed returns the generator to the exact state NewRNG(seed) would
// construct, so a pooled model can restart its random stream in place
// instead of allocating a fresh generator per simulation cell.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any seed
	// cannot produce four zero words, but guard regardless.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), via inverse-transform sampling.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normal value using the Box-Muller
// transform (polar form avoided to keep the stream consumption fixed).
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		u2 := r.Float64()
		if u1 <= 0 {
			continue
		}
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Fork derives an independent generator from this one. Use it to give
// subsystems their own streams so adding draws in one subsystem does not
// perturb another.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
