package sim

import (
	"testing"
	"time"
)

// batcher is a miniature of the multiplexing pattern netsim.Link and the
// tcp pacer use: logical events (each with a reserved ticket) funnel
// through one timer; the handler fires the head, then claims successors
// inline with RunsNext, re-arming through the heap only when a claim is
// refused.
type batcher struct {
	e     *Engine
	queue []struct {
		at Time
		tk Ticket
		id int
	}
	timer Timer
	fired []int
}

var kindBatch EventKind

func init() {
	kindBatch = RegisterKind("sim.test.batch", func(a any) { a.(*batcher).drain() })
}

// add reserves a ticket for a new logical event, exactly as scheduling it
// individually would have.
func (b *batcher) add(at Time, id int) {
	b.queue = append(b.queue, struct {
		at Time
		tk Ticket
		id int
	}{at, b.e.ReserveTicket(), id})
	if !b.timer.Active() {
		b.arm()
	}
}

func (b *batcher) arm() {
	h := b.queue[0]
	b.timer = b.e.AtTicket(h.at, h.tk, kindBatch, b)
}

func (b *batcher) drain() {
	b.timer = Timer{}
	for {
		h := b.queue[0]
		b.fired = append(b.fired, h.id)
		b.queue = b.queue[1:]
		if len(b.queue) == 0 {
			return
		}
		n := b.queue[0]
		if !b.e.RunsNext(n.at, n.tk) {
			b.arm()
			return
		}
	}
}

// TestBatcherMatchesUnbatchedOrder pins the core RunsNext guarantee:
// interleaving batched logical events with ordinary events produces
// exactly the execution order the unbatched schedule would.
func TestBatcherMatchesUnbatchedOrder(t *testing.T) {
	// Events at: batch 1ms, plain 1ms, batch 1ms, batch 2ms, plain 2ms,
	// batch 3ms. Scheduling order defines the tie-breaks.
	type ev struct {
		at      Time
		batched bool
		id      int
	}
	schedule := []ev{
		{1 * time.Millisecond, true, 0},
		{1 * time.Millisecond, false, 1},
		{1 * time.Millisecond, true, 2},
		{2 * time.Millisecond, true, 3},
		{2 * time.Millisecond, false, 4},
		{3 * time.Millisecond, true, 5},
	}
	// Reference: schedule everything as plain events.
	ref := New()
	var want []int
	for _, v := range schedule {
		id := v.id
		ref.Schedule(v.at, func() { want = append(want, id) })
	}
	ref.Run()

	// Batched: same schedule, batched events funnelled through one
	// multiplexed timer.
	e := New()
	var plain []int
	b := &batcher{e: e}
	for _, v := range schedule {
		if v.batched {
			b.add(v.at, v.id)
		} else {
			id := v.id
			e.Schedule(v.at, func() { plain = append(plain, id) })
		}
	}
	e.Run()
	// Check the interleaving: consuming `want` must drain b.fired and
	// plain as two orderly subsequences, which holds iff the merged
	// execution order matched the reference exactly.
	bi, ti := 0, 0
	for _, w := range want {
		if bi < len(b.fired) && b.fired[bi] == w {
			bi++
			continue
		}
		if ti < len(plain) && plain[ti] == w {
			ti++
			continue
		}
		t.Fatalf("execution order diverged at id %d: batched fired %v, plain fired %v, want %v", w, b.fired, plain, want)
	}
	if bi != len(b.fired) || ti != len(plain) {
		t.Fatalf("extra events fired: batched %v, plain %v, want %v", b.fired, plain, want)
	}
	// Assert at least one coalesce happened so the claim path is
	// actually exercised by this schedule.
	if e.Coalesced() == 0 {
		t.Fatal("no events were coalesced; RunsNext claim path not exercised")
	}
}

// TestRunsNextRefusesEarlierEvent: a claim must fail when any queued
// event sorts before the candidate.
func TestRunsNextRefusesEarlierEvent(t *testing.T) {
	e := New()
	refused := false
	e.Schedule(time.Millisecond, func() {
		tk := e.ReserveTicket()
		e.At(2*time.Millisecond, func() {}) // sorts before (earlier than 3ms)
		if e.RunsNext(3*time.Millisecond, tk) {
			t.Fatal("RunsNext claimed past an earlier queued event")
		}
		refused = true
	})
	e.Run()
	if !refused {
		t.Fatal("test body did not run")
	}
}

// TestRunsNextRefusesEarlierTicketAtSameInstant: tie-breaks count — a
// queued event at the same timestamp with an earlier ticket wins.
func TestRunsNextRefusesEarlierTicketAtSameInstant(t *testing.T) {
	e := New()
	checked := false
	e.Schedule(time.Millisecond, func() {
		e.At(e.Now(), func() {}) // same instant, earlier seq
		tk := e.ReserveTicket()  // later seq
		if e.RunsNext(e.Now(), tk) {
			t.Fatal("RunsNext claimed over a same-instant earlier-ticket event")
		}
		checked = true
	})
	e.Run()
	if !checked {
		t.Fatal("test body did not run")
	}
}

// TestRunsNextAllowsLaterTicketAtSameInstant: the claim succeeds when the
// queued competitor has a later ticket.
func TestRunsNextAllowsLaterTicketAtSameInstant(t *testing.T) {
	e := New()
	checked := false
	e.Schedule(time.Millisecond, func() {
		tk := e.ReserveTicket() // earlier seq
		e.At(e.Now(), func() {})
		if !e.RunsNext(e.Now(), tk) {
			t.Fatal("RunsNext refused although the candidate sorts first")
		}
		checked = true
	})
	e.Run()
	if !checked {
		t.Fatal("test body did not run")
	}
	if e.Coalesced() != 1 {
		t.Fatalf("Coalesced() = %d, want 1", e.Coalesced())
	}
}

// TestRunsNextFailsOutsideRunLoop: direct Step callers get strict
// one-event-per-Step semantics — no inline claims.
func TestRunsNextFailsOutsideRunLoop(t *testing.T) {
	e := New()
	claimed := false
	e.Schedule(time.Millisecond, func() {
		tk := e.ReserveTicket()
		claimed = e.RunsNext(e.Now(), tk)
	})
	e.Step()
	if claimed {
		t.Fatal("RunsNext claimed outside Run/RunUntil")
	}
}

// TestRunsNextRespectsDeadline: RunUntil's deadline bounds inline claims
// exactly as it bounds heap dispatches.
func TestRunsNextRespectsDeadline(t *testing.T) {
	e := New()
	var early, late bool
	e.Schedule(time.Millisecond, func() {
		early = e.RunsNext(4*time.Millisecond, e.ReserveTicket())
		late = e.RunsNext(6*time.Millisecond, e.ReserveTicket())
	})
	e.RunUntil(5 * time.Millisecond)
	if !early {
		t.Fatal("claim within the deadline refused")
	}
	if late {
		t.Fatal("claim beyond the RunUntil deadline succeeded")
	}
	if e.Now() != 5*time.Millisecond {
		t.Fatalf("Now() = %v, want 5ms", e.Now())
	}
}

// TestRunsNextFailsAfterStop: a stopping run refuses further claims so a
// batching drain winds down with the loop.
func TestRunsNextFailsAfterStop(t *testing.T) {
	e := New()
	var after bool
	e.Schedule(time.Millisecond, func() {
		e.Stop()
		after = e.RunsNext(e.Now(), e.ReserveTicket())
	})
	e.Run()
	if after {
		t.Fatal("RunsNext claimed after Stop")
	}
}

// TestCancelPendingBatchedDrain: cancelling the armed timer of a
// multiplexed batch removes it eagerly; none of the batched logical
// events fire, and re-adding re-arms cleanly.
func TestCancelPendingBatchedDrain(t *testing.T) {
	e := New()
	b := &batcher{e: e}
	b.add(time.Millisecond, 0)
	b.add(time.Millisecond, 1)
	b.add(2*time.Millisecond, 2)
	b.timer.Cancel()
	e.Run()
	if len(b.fired) != 0 {
		t.Fatalf("cancelled batch fired %v", b.fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancel, want 0", e.Pending())
	}
	// Re-arm under the still-pending head ticket: the batch replays in
	// original ticket order even after the cancel.
	b.arm()
	e.Run()
	if len(b.fired) != 3 || b.fired[0] != 0 || b.fired[1] != 1 || b.fired[2] != 2 {
		t.Fatalf("re-armed batch fired %v, want [0 1 2]", b.fired)
	}
}

// TestReserveTicketInsideBatch: reserving a ticket while handling a
// coalesced (inline-claimed) event allocates positions after every
// already-reserved ticket, so a newly scheduled event cannot jump ahead
// of the rest of the batch.
func TestReserveTicketInsideBatch(t *testing.T) {
	e := New()
	var order []int
	b := &batcher{e: e}
	b.add(time.Millisecond, 0)
	b.add(time.Millisecond, 1)
	e.Schedule(time.Millisecond, func() { order = append(order, 100) })
	// While the batch drains (id 0 fires, id 1 coalesces), a
	// same-instant event scheduled from inside the batch must run after
	// everything already queued.
	e.Schedule(0, func() {
		e.At(time.Millisecond, func() { order = append(order, 200) })
	})
	e.Run()
	want := []int{100, 200}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("plain order = %v, want %v", order, want)
	}
	if len(b.fired) != 2 {
		t.Fatalf("batch fired %v, want [0 1]", b.fired)
	}
}

// TestResetWithCoalescedInFlight: Reset with an armed batch timer and
// pending logical tickets leaves the engine factory-clean and flushes
// both counters into the process totals.
func TestResetWithCoalescedInFlight(t *testing.T) {
	e := New()
	b := &batcher{e: e}
	b.add(time.Millisecond, 0)
	b.add(time.Millisecond, 1)
	b.add(time.Millisecond, 2)
	e.Run() // head fires, 1 and 2 coalesce
	if e.Coalesced() != 2 {
		t.Fatalf("Coalesced() = %d, want 2", e.Coalesced())
	}
	// Arm a fresh batch, leave it in flight, then Reset.
	b.queue = b.queue[:0]
	b.fired = b.fired[:0]
	b.add(time.Millisecond, 3)
	b.add(time.Millisecond, 4)

	beforeP, beforeC := TotalEvents()
	p, c := e.Processed(), e.Coalesced()
	e.Reset()
	afterP, afterC := TotalEvents()
	if afterP-beforeP != p || afterC-beforeC != c {
		t.Fatalf("Reset flushed (%d,%d) into totals, want (%d,%d)",
			afterP-beforeP, afterC-beforeC, p, c)
	}
	if e.Processed() != 0 || e.Coalesced() != 0 || e.Pending() != 0 || e.Now() != 0 {
		t.Fatal("Reset left residue")
	}
	if b.timer.Active() {
		t.Fatal("pre-Reset batch timer still Active")
	}
	// The reset engine must refuse claims until a run loop is live again
	// (limit is cleared), and replay deterministically.
	if e.RunsNext(0, e.ReserveTicket()) {
		t.Fatal("RunsNext claimed on a reset engine outside a run loop")
	}
}
