package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/100 identical draws across seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		m := int(n%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.03 {
		t.Fatalf("mean = %v, want ~1.0", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	sum, sumSq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		m := int(n % 64)
		p := NewRNG(seed).Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Fork()
	// Child draws must not affect parent's subsequent stream relative to
	// a parent that forked and discarded the child.
	parent2 := NewRNG(5)
	_ = parent2.Fork()
	for i := 0; i < 100; i++ {
		child.Uint64()
	}
	for i := 0; i < 100; i++ {
		if parent.Uint64() != parent2.Uint64() {
			t.Fatal("child draws perturbed parent stream")
		}
	}
}

func TestReseedMatchesFreshConstruction(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 100; i++ {
		r.Uint64() // advance to an arbitrary interior state
	}
	r.Reseed(42)
	fresh := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := r.Uint64(), fresh.Uint64(); got != want {
			t.Fatalf("draw %d after Reseed(42) = %d, fresh NewRNG(42) = %d", i, got, want)
		}
	}
}
