package sim

import "sync"

// enginePool recycles engines across simulations for callers that
// drive engines directly. The experiment sweep no longer cycles
// engines through here: core pools whole networks, and each pooled
// network owns one engine for its lifetime, reset in place between
// cells. Acquire/Release remains the pooling idiom for standalone
// engine users (harnesses, tools) with the same Reset guarantees.
var enginePool = sync.Pool{New: func() any { return New() }}

// Acquire returns a ready-to-use engine at virtual time zero, reusing a
// pooled one (with its arena and heap already grown to a previous
// simulation's working set) when available. The caller owns the engine
// exclusively until Release.
func Acquire() *Engine {
	e := enginePool.Get().(*Engine)
	// A pooled engine may predate a SetDefaultQueue call; adopt the
	// current process default (unless the engine is pinned).
	e.adoptDefaultQueue()
	return e
}

// Release resets e and returns it to the pool. The reset invalidates
// every outstanding Timer handle and drops all callback references, so
// the released simulation's objects do not leak through the pool; the
// arena and heap keep their capacity for the next Acquire. The caller
// must not use e (or any Timer obtained from it) afterwards.
func Release(e *Engine) {
	e.Reset()
	enginePool.Put(e)
}
