package sim

import (
	"reflect"
	"testing"
	"time"
)

// laneCell is a synthetic simulation cell: a self-rescheduling event
// chain driven by a seeded RNG that occasionally schedules extra
// one-shot events, recording every dispatch as (now, tag). Two cells
// built from the same seed produce identical logs when driven by any
// correct run loop, so the log doubles as a dispatch-order fingerprint.
type laneCell struct {
	e   *Engine
	rng *RNG
	log []laneRec
}

type laneRec struct {
	at  Time
	tag int
}

func newLaneCell(seed uint64) *laneCell {
	c := &laneCell{e: New(), rng: NewRNG(seed)}
	var chain func()
	chain = func() {
		c.log = append(c.log, laneRec{c.e.Now(), 0})
		// Irregular gaps so different cells' event times interleave
		// finely, exercising the cross-lane pick scan.
		gap := time.Duration(50+c.rng.Intn(400)) * time.Microsecond
		c.e.Schedule(gap, chain)
		if c.rng.Intn(4) == 0 {
			tag := 1 + c.rng.Intn(9)
			at := c.e.Now() + Time(c.rng.Intn(2_000_000)) // within 2ms
			c.e.At(at, func() { c.log = append(c.log, laneRec{c.e.Now(), tag}) })
		}
	}
	c.e.At(0, chain)
	return c
}

// scalarLog runs a cell of the given seed to the deadline with the
// plain Engine.RunUntil loop and returns its log and final clock.
func scalarLog(seed uint64, deadline Time) ([]laneRec, Time) {
	c := newLaneCell(seed)
	c.e.RunUntil(deadline)
	return c.log, c.e.Now()
}

// TestLaneEngineMatchesScalar drives K cells through a LaneEngine and
// checks every lane's dispatch log and final clock are byte-for-byte
// what a scalar RunUntil of that cell alone produces — the ordering
// contract the experiment goldens rely on.
func TestLaneEngineMatchesScalar(t *testing.T) {
	const deadline = Time(80 * 1e6) // 80ms of sim time
	for _, k := range []int{1, 2, 3, 4, 8} {
		le := NewLaneEngine(k)
		cells := make([]*laneCell, k)
		for i := range cells {
			cells[i] = newLaneCell(uint64(1000 + i))
			le.SetLane(i, cells[i].e, deadline)
		}
		if got := le.Active(); got != k {
			t.Fatalf("k=%d: Active() = %d before run", k, got)
		}
		retired := make(map[int]bool)
		for le.Active() > 0 {
			i := le.RunLaneDone()
			if i < 0 || i >= k || retired[i] {
				t.Fatalf("k=%d: RunLaneDone returned %d (retired=%v)", k, i, retired)
			}
			retired[i] = true
		}
		if i := le.RunLaneDone(); i != -1 {
			t.Fatalf("k=%d: RunLaneDone on empty lanes = %d, want -1", k, i)
		}
		for i, c := range cells {
			wantLog, wantNow := scalarLog(uint64(1000+i), deadline)
			if !reflect.DeepEqual(c.log, wantLog) {
				t.Errorf("k=%d lane %d: dispatch log diverges from scalar (%d vs %d events)",
					k, i, len(c.log), len(wantLog))
			}
			if c.e.Now() != wantNow {
				t.Errorf("k=%d lane %d: final clock %v, want %v", k, i, c.e.Now(), wantNow)
			}
		}
	}
}

// TestLaneEngineRefill retires lanes one at a time and installs fresh
// cells on the freed indexes, the way a sweep worker streams a cell
// list through a fixed-width lane engine.
func TestLaneEngineRefill(t *testing.T) {
	const k, n = 2, 7
	const deadline = Time(40 * 1e6)
	le := NewLaneEngine(k)
	cells := make([]*laneCell, n)
	onLane := make([]int, k) // lane -> cell index
	next := 0
	for ; next < k; next++ {
		cells[next] = newLaneCell(uint64(7000 + next))
		le.SetLane(next, cells[next].e, deadline)
		onLane[next] = next
	}
	doneCount := 0
	for le.Active() > 0 {
		lane := le.RunLaneDone()
		doneCount++
		if got, want := cells[onLane[lane]].e.Now(), deadline; got != want {
			t.Fatalf("cell %d finished with clock %v, want %v", onLane[lane], got, want)
		}
		if next < n {
			cells[next] = newLaneCell(uint64(7000 + next))
			le.SetLane(lane, cells[next].e, deadline)
			onLane[lane] = next
			next++
		}
	}
	if doneCount != n {
		t.Fatalf("retired %d cells, want %d", doneCount, n)
	}
	for i, c := range cells {
		wantLog, wantNow := scalarLog(uint64(7000+i), deadline)
		if !reflect.DeepEqual(c.log, wantLog) {
			t.Errorf("cell %d: dispatch log diverges from scalar after refill", i)
		}
		if c.e.Now() != wantNow {
			t.Errorf("cell %d: final clock %v, want %v", i, c.e.Now(), wantNow)
		}
	}
}

// TestLaneEngineDoneQueue covers lanes that are complete the moment
// they are set: an empty engine, and one whose only event lies past the
// deadline (it must stay queued, exactly like RunUntil).
func TestLaneEngineDoneQueue(t *testing.T) {
	const deadline = Time(10 * 1e6)
	le := NewLaneEngine(2)

	empty := New()
	le.SetLane(0, empty, deadline)

	late := New()
	fired := false
	late.At(deadline+1, func() { fired = true })
	le.SetLane(1, late, deadline)

	seen := map[int]bool{}
	for le.Active() > 0 {
		seen[le.RunLaneDone()] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("done-queue lanes not retired: %v", seen)
	}
	if fired {
		t.Error("event past the deadline fired")
	}
	if late.Pending() != 1 {
		t.Errorf("late event dropped from the queue: Pending() = %d", late.Pending())
	}
	if empty.Now() != deadline || late.Now() != deadline {
		t.Errorf("clocks not advanced to deadline: %v, %v", empty.Now(), late.Now())
	}
}

// TestLaneEngineStop checks a lane whose handler calls Stop retires at
// that point with the remaining queue preserved and the clock advanced
// to the deadline — RunUntil's exact stop semantics.
func TestLaneEngineStop(t *testing.T) {
	const deadline = Time(10 * 1e6)
	le := NewLaneEngine(1)
	e := New()
	e.At(1000, func() { e.Stop() })
	survived := false
	e.At(2000, func() { survived = true })
	le.SetLane(0, e, deadline)
	if i := le.RunLaneDone(); i != 0 {
		t.Fatalf("RunLaneDone = %d, want 0", i)
	}
	if survived {
		t.Error("event after Stop fired")
	}
	if e.Pending() != 1 {
		t.Errorf("queue not preserved after Stop: Pending() = %d", e.Pending())
	}
	if e.Now() != deadline {
		t.Errorf("clock %v after Stop, want deadline %v", e.Now(), deadline)
	}
}

// TestLaneEngineInlineClaims checks RunsNext claims stay live under a
// lane run, mirroring RunUntil's in-run claim window: a handler that
// would batch its successor inline in a scalar run must batch it in a
// lane run too (coalesced counts are part of the byte-identity story
// via the stderr event counters).
func TestLaneEngineInlineClaims(t *testing.T) {
	const deadline = Time(10 * 1e6)
	build := func() *Engine {
		e := New()
		tk := e.ReserveTicket()
		e.AtTicket(500, tk, KindClosure, func() {
			// Drain pattern: ask for the successor inline before arming
			// a timer for it. Nothing sorts before (600, tk2), so a live
			// run loop must grant the claim.
			tk2 := e.ReserveTicket()
			if !e.RunsNext(600, tk2) {
				t.Error("RunsNext claim denied inside lane run")
			}
		})
		return e
	}
	scalar := build()
	scalar.RunUntil(deadline)

	e := build()
	le := NewLaneEngine(2)
	le.SetLane(1, e, deadline) // non-zero lane index for variety
	for le.Active() > 0 {
		le.RunLaneDone()
	}
	if e.Coalesced() != scalar.Coalesced() {
		t.Errorf("coalesced %d under lanes, %d scalar", e.Coalesced(), scalar.Coalesced())
	}
	// After retirement the claim window must be shut again.
	tk := e.ReserveTicket()
	e.AtTicket(deadline+100, tk, KindClosure, func() {})
	if e.RunsNext(deadline+100, tk) {
		t.Error("RunsNext claim granted after lane retired")
	}
}

// TestLaneEngineSetLanePanics pins the misuse guards: bad lane counts,
// occupied lanes, and the reserved maximum-Time deadline.
func TestLaneEngineSetLanePanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("NewLaneEngine(0)", func() { NewLaneEngine(0) })
	expectPanic("NewLaneEngine(MaxLanes+1)", func() { NewLaneEngine(MaxLanes + 1) })
	le := NewLaneEngine(1)
	le.SetLane(0, New(), 1000)
	expectPanic("SetLane on occupied lane", func() { le.SetLane(0, New(), 1000) })
	le2 := NewLaneEngine(1)
	expectPanic("SetLane with sentinel deadline", func() { le2.SetLane(0, New(), laneInactive) })
}
