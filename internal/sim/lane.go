package sim

import (
	"fmt"
	"math"
)

// MaxLanes bounds how many engines a LaneEngine can drive in lockstep.
// The win comes from overlapping a handful of independent per-event
// dependency chains inside one core's out-of-order window; past a few
// lanes the combined working set outgrows the close caches and the
// merged pick scan stops being free. 8 is comfortably past the knee.
const MaxLanes = 8

// laneInactive is the scoreboard key of a lane with nothing to
// dispatch. It sorts after every real event time, so the pick scan
// skips parked lanes without a separate activity check.
const laneInactive = Time(math.MaxInt64)

// laneDrift is how far (in simulated time) the running lane may run
// past another lane's next event before the dispatcher switches. Zero
// would be the strict merged (at, lane, ticket) order; since the lanes
// are independent simulations, the interleave is unobservable, and a
// bounded drift window lets a lane burst through many events while its
// per-lane state is hot instead of ping-ponging between lanes whose
// event times interleave finely. 100ms of sim time is a few dozen
// events on the grid workload — long enough to amortize the lane
// switch, short enough that lanes still finish (and refill) together.
const laneDrift = Time(100 * 1e6)

// LaneEngine drives up to K independent engines through one merged
// dispatch order keyed (at, lane, ticket): at every step the earliest
// pending event across all lanes runs, with cross-lane timestamp ties
// going to the lane already running (the lowest lane index when none
// is mid-burst) and each lane's own (time, ticket) heap order breaking
// ties within it. Because the lanes are mutually independent
// simulations, each lane's dispatch sequence — and therefore every
// tie-break and every byte of its output — is exactly what a scalar
// Engine.RunUntil of that lane alone would produce; the merged order
// only fixes how the lanes interleave on the worker, which no output
// can observe.
//
// The point of the interleave is throughput: consecutive dispatches
// touch different heaps, arenas and transport state, so their
// dependency chains are independent and the core's out-of-order window
// overlaps them, where a scalar run serializes each event behind the
// previous one's heap writes. The per-lane next-event keys live in a
// small structure-of-arrays scoreboard (one contiguous Time slice) so
// the pick scan reads one cache line and never chases into the lanes'
// heaps.
//
// A LaneEngine is single-goroutine, like the engines it drives. Lanes
// run under per-lane deadlines (RunUntil semantics, inline RunsNext
// claims included); deadlines must be below the maximum Time, which
// doubles as the parked-lane sentinel.
type LaneEngine struct {
	// headAt is the SoA scoreboard: headAt[i] is lane i's next dispatch
	// time, or laneInactive when the lane is parked or complete.
	headAt []Time
	// engs/deadlines are the per-lane engine handles and RunUntil
	// deadlines, indexed like headAt.
	engs      []*Engine
	deadlines []Time
	active    int
	// done queues lanes that were complete the moment they were set
	// (already-empty queue, first event past the deadline), so
	// RunLaneDone can retire them without the pick scan ever seeing
	// them.
	done []int
}

// NewLaneEngine returns a lane engine with k parked lanes.
func NewLaneEngine(k int) *LaneEngine {
	if k < 1 || k > MaxLanes {
		panic(fmt.Sprintf("sim: NewLaneEngine with %d lanes (want 1..%d)", k, MaxLanes))
	}
	le := &LaneEngine{
		headAt:    make([]Time, k),
		engs:      make([]*Engine, k),
		deadlines: make([]Time, k),
		done:      make([]int, 0, k),
	}
	for i := range le.headAt {
		le.headAt[i] = laneInactive
	}
	return le
}

// Lanes returns the lane count K.
func (le *LaneEngine) Lanes() int { return len(le.headAt) }

// Active returns how many lanes currently hold an engine.
func (le *LaneEngine) Active() int { return le.active }

// SetLane installs an engine on a parked lane with a RunUntil deadline.
// The engine must already hold its initial events (the cell's setup has
// run); from here until RunLaneDone retires the lane, the engine is
// inside a run loop — inline RunsNext claims up to the deadline are
// live, exactly as in Engine.RunUntil.
func (le *LaneEngine) SetLane(i int, e *Engine, deadline Time) {
	if le.engs[i] != nil {
		panic(fmt.Sprintf("sim: SetLane on occupied lane %d", i))
	}
	if deadline >= laneInactive {
		panic("sim: SetLane deadline must be below the maximum Time")
	}
	e.stopped = false
	e.limit = deadline
	le.engs[i] = e
	le.deadlines[i] = deadline
	le.active++
	if at := e.PeekTime(); at > deadline {
		le.done = append(le.done, i)
	} else {
		le.headAt[i] = at
	}
}

// RunLaneDone dispatches merged events until one lane completes its
// run — no pending event at or before its deadline remains, or its
// engine was stopped — then retires that lane exactly as
// Engine.RunUntil would have finished it (claim limit cleared, clock
// advanced to the deadline) and returns its index. The lane is parked;
// the caller collects the cell, closes its network, and may SetLane a
// fresh cell on the same index. Returns -1 when no lanes are occupied.
func (le *LaneEngine) RunLaneDone() int {
	if n := len(le.done); n > 0 {
		i := le.done[n-1]
		le.done = le.done[:n-1]
		le.retire(i)
		return i
	}
	heads := le.headAt
	for {
		// Pick the merged-order head (minimum next dispatch time) and
		// the runner-up time in one scan. Scanning in ascending lane
		// index with strict < makes the lower lane win the pick on
		// timestamp ties.
		best := -1
		bestAt := laneInactive
		second := laneInactive
		for i, at := range heads {
			if at < bestAt {
				second = bestAt
				best, bestAt = i, at
			} else if at < second {
				second = at
			}
		}
		if best < 0 {
			return -1
		}
		// Burst: keep stepping the picked lane while it stays within
		// the drift window of the runner-up (ties included — the
		// running lane wins ties, see the type doc). The inner loop is
		// Engine.RunUntil's with one extra compare, so a lane burst
		// costs the same per event as a scalar run, and the pick scan
		// above amortizes over the burst. (at-laneDrift avoids
		// overflowing second, which is laneInactive = the maximum Time
		// when best is the only occupied lane.)
		e := le.engs[best]
		deadline := le.deadlines[best]
		for {
			e.Step()
			at := e.PeekTime()
			if e.stopped || at > deadline {
				le.retire(best)
				return best
			}
			if at-laneDrift > second {
				heads[best] = at
				break
			}
		}
	}
}

// retire finishes a lane's run the way Engine.RunUntil returns: inline
// claims are shut off and the clock advances to the deadline when the
// queue went quiet early. The engine handle is dropped so the caller's
// Close/Reset is the only owner afterwards.
func (le *LaneEngine) retire(i int) {
	e := le.engs[i]
	e.limit = noRunLimit
	if e.now < le.deadlines[i] {
		e.now = le.deadlines[i]
	}
	le.engs[i] = nil
	le.headAt[i] = laneInactive
	le.active--
}
