// Package cc implements the congestion controllers used by MPTCP
// subflows: uncoupled Reno, the coupled controller (LIA, RFC 6356 /
// Wischik et al. NSDI'11), and OLIA (Khalili et al. CoNEXT'12).
//
// The paper notes (§3.1) that the fast-path under-utilization it analyses
// appears regardless of the congestion controller; exposing all three lets
// the ablation benches confirm the same holds in this reproduction.
package cc

// Flow is the view a controller has of one subflow. Congestion windows
// are measured in segments (possibly fractional between ACKs, as in the
// Linux "cwnd count" accumulator style).
type Flow interface {
	// Cwnd returns the congestion window in segments.
	Cwnd() float64
	// SetCwnd sets the congestion window in segments.
	SetCwnd(w float64)
	// Ssthresh returns the slow-start threshold in segments.
	Ssthresh() float64
	// SetSsthresh sets the slow-start threshold in segments.
	SetSsthresh(w float64)
	// SrttSeconds returns the smoothed RTT estimate in seconds, or 0 if
	// no sample has been taken yet.
	SrttSeconds() float64
	// InSlowStart reports whether the flow is below its slow-start
	// threshold.
	InSlowStart() bool
}

// Controller decides window growth and backoff. Slow-start doubling is
// performed by the subflow itself; controllers are consulted only for the
// congestion-avoidance increase and for loss response.
//
// Coupled controllers must see every subflow of a connection, hence
// Register/Unregister.
type Controller interface {
	// Name identifies the controller ("reno", "lia", "olia").
	Name() string
	// Register adds a flow to the coupled set.
	Register(f Flow)
	// Unregister removes a flow from the coupled set.
	Unregister(f Flow)
	// OnAck is invoked when n segments are newly acknowledged on f while
	// f is in congestion avoidance.
	OnAck(f Flow, n int)
	// OnLoss is invoked on a loss event (fast retransmit or RTO) and
	// performs the multiplicative decrease.
	OnLoss(f Flow)
}

// minCwnd is the floor for any window after a decrease, in segments.
const minCwnd = 2.0

// halve applies the standard multiplicative decrease shared by all three
// controllers.
func halve(f Flow) {
	ss := f.Cwnd() / 2
	if ss < minCwnd {
		ss = minCwnd
	}
	f.SetSsthresh(ss)
	f.SetCwnd(ss)
}
