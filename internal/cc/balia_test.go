package cc

import (
	"testing"
	"testing/quick"
)

func TestBALIAName(t *testing.T) {
	if NewBALIA().Name() != "balia" {
		t.Fatal("name mismatch")
	}
}

func TestBALIAIncreaseBoundedByReno(t *testing.T) {
	b := NewBALIA()
	a := &fakeFlow{cwnd: 10, srtt: 0.05}
	c := &fakeFlow{cwnd: 40, srtt: 0.2}
	b.Register(a)
	b.Register(c)
	before := a.cwnd
	b.OnAck(a, 1)
	inc := a.cwnd - before
	if inc <= 0 {
		t.Fatalf("increase = %v, want positive", inc)
	}
	if inc > 1.0/before+1e-12 {
		t.Fatalf("increase %v exceeds Reno bound %v", inc, 1.0/before)
	}
}

func TestBALIALossScalesWithImbalance(t *testing.T) {
	// The flow with the max rate (α=1) gets the full w/4 decrease; a
	// slower flow (α capped at 1.5) decreases more sharply relative to
	// its window.
	b := NewBALIA()
	fast := &fakeFlow{cwnd: 40, srtt: 0.05} // x = 800
	slow := &fakeFlow{cwnd: 10, srtt: 0.2}  // x = 50, α capped 1.5
	b.Register(fast)
	b.Register(slow)
	b.OnLoss(fast)
	// fast: 40 - 20·(1/2) = 30.
	if fast.cwnd < 29 || fast.cwnd > 31 {
		t.Fatalf("fast cwnd after loss = %v, want ~30", fast.cwnd)
	}
	b.OnLoss(slow)
	// slow: 10 - 5·(1.5/2) = 6.25.
	if slow.cwnd < 6 || slow.cwnd > 6.5 {
		t.Fatalf("slow cwnd after loss = %v, want ~6.25", slow.cwnd)
	}
}

func TestBALIALossFloor(t *testing.T) {
	b := NewBALIA()
	f := &fakeFlow{cwnd: 2.2, srtt: 0.1}
	b.Register(f)
	b.OnLoss(f)
	if f.cwnd < minCwnd {
		t.Fatalf("cwnd = %v below floor", f.cwnd)
	}
}

func TestBALIAZeroRTTSafe(t *testing.T) {
	b := NewBALIA()
	f := &fakeFlow{cwnd: 10, srtt: 0}
	b.Register(f)
	b.OnAck(f, 1)
	if f.cwnd != f.cwnd || f.cwnd < 10 {
		t.Fatalf("cwnd = %v with zero rtt", f.cwnd)
	}
}

func TestBALIAUnregister(t *testing.T) {
	b := NewBALIA()
	a := &fakeFlow{cwnd: 10, srtt: 0.1}
	c := &fakeFlow{cwnd: 10, srtt: 0.1}
	b.Register(a)
	b.Register(c)
	b.Unregister(c)
	before := a.cwnd
	b.OnAck(a, 1)
	if a.cwnd <= before {
		t.Fatal("no growth after unregister")
	}
}

func TestBALIAIncreaseNeverNegativeProperty(t *testing.T) {
	if err := quick.Check(func(w1, w2 uint8, r1, r2 uint8) bool {
		b := NewBALIA()
		a := &fakeFlow{cwnd: float64(w1%100) + 1, srtt: float64(int(r1)%300+1) / 1000}
		c := &fakeFlow{cwnd: float64(w2%100) + 1, srtt: float64(int(r2)%300+1) / 1000}
		b.Register(a)
		b.Register(c)
		before := a.cwnd
		b.OnAck(a, 1)
		return a.cwnd >= before && a.cwnd == a.cwnd
	}, nil); err != nil {
		t.Fatal(err)
	}
}
