package cc

import (
	"testing"
	"testing/quick"
)

// fakeFlow implements Flow for controller tests.
type fakeFlow struct {
	cwnd, ssthresh, srtt float64
}

func (f *fakeFlow) Cwnd() float64         { return f.cwnd }
func (f *fakeFlow) SetCwnd(w float64)     { f.cwnd = w }
func (f *fakeFlow) Ssthresh() float64     { return f.ssthresh }
func (f *fakeFlow) SetSsthresh(w float64) { f.ssthresh = w }
func (f *fakeFlow) SrttSeconds() float64  { return f.srtt }
func (f *fakeFlow) InSlowStart() bool     { return f.cwnd < f.ssthresh }

func TestRenoIncreaseOneSegmentPerRTT(t *testing.T) {
	r := NewReno()
	f := &fakeFlow{cwnd: 10, ssthresh: 5, srtt: 0.1}
	// 10 acks of 1 segment each = one full window = +1 segment.
	for i := 0; i < 10; i++ {
		r.OnAck(f, 1)
	}
	if f.cwnd < 10.9 || f.cwnd > 11.1 {
		t.Fatalf("cwnd = %v after one window of acks, want ~11", f.cwnd)
	}
}

func TestRenoLossHalves(t *testing.T) {
	r := NewReno()
	f := &fakeFlow{cwnd: 20, ssthresh: 30, srtt: 0.1}
	r.OnLoss(f)
	if f.cwnd != 10 || f.ssthresh != 10 {
		t.Fatalf("after loss cwnd=%v ssthresh=%v, want 10/10", f.cwnd, f.ssthresh)
	}
}

func TestLossFloor(t *testing.T) {
	for _, c := range []Controller{NewReno(), NewLIA(), NewOLIA()} {
		f := &fakeFlow{cwnd: 1.5, ssthresh: 10, srtt: 0.1}
		c.Register(f)
		c.OnLoss(f)
		if f.cwnd < minCwnd {
			t.Fatalf("%s: cwnd = %v after loss, want >= %v", c.Name(), f.cwnd, minCwnd)
		}
	}
}

func TestLIALessAggressiveThanReno(t *testing.T) {
	// RFC 6356 goal: the coupled increase on any subflow never exceeds
	// what Reno would do.
	lia := NewLIA()
	a := &fakeFlow{cwnd: 10, srtt: 0.05}
	b := &fakeFlow{cwnd: 40, srtt: 0.2}
	lia.Register(a)
	lia.Register(b)
	beforeA := a.cwnd
	lia.OnAck(a, 1)
	liaInc := a.cwnd - beforeA
	renoInc := 1.0 / beforeA
	if liaInc > renoInc+1e-12 {
		t.Fatalf("LIA increase %v exceeds Reno %v", liaInc, renoInc)
	}
	if liaInc <= 0 {
		t.Fatalf("LIA increase %v, want positive", liaInc)
	}
}

func TestLIASingleFlowBehavesLikeReno(t *testing.T) {
	lia := NewLIA()
	f := &fakeFlow{cwnd: 10, srtt: 0.1}
	lia.Register(f)
	lia.OnAck(f, 1)
	inc := f.cwnd - 10
	// With one flow alpha = 1 so increase = 1/total = 1/10 = Reno.
	if inc < 0.099 || inc > 0.101 {
		t.Fatalf("single-flow LIA increase = %v, want 0.1", inc)
	}
}

func TestLIAUnregister(t *testing.T) {
	lia := NewLIA()
	a := &fakeFlow{cwnd: 10, srtt: 0.1}
	b := &fakeFlow{cwnd: 10, srtt: 0.1}
	lia.Register(a)
	lia.Register(b)
	lia.Unregister(b)
	lia.OnAck(a, 1)
	inc := a.cwnd - 10
	if inc < 0.099 || inc > 0.101 {
		t.Fatalf("after unregister increase = %v, want Reno-like 0.1", inc)
	}
}

func TestOLIAIncreasePositiveAndBounded(t *testing.T) {
	olia := NewOLIA()
	a := &fakeFlow{cwnd: 10, srtt: 0.05}
	b := &fakeFlow{cwnd: 40, srtt: 0.2}
	olia.Register(a)
	olia.Register(b)
	before := b.cwnd
	olia.OnAck(b, 1)
	inc := b.cwnd - before
	if inc < 0 {
		t.Fatalf("OLIA shrank window on ack: %v", inc)
	}
	if inc > 1.0/before+1e-12 {
		t.Fatalf("OLIA increase %v exceeds Reno bound %v", inc, 1.0/before)
	}
}

func TestOLIAFavorsBestSmallWindowPath(t *testing.T) {
	olia := NewOLIA()
	// a: small window, good quality (low rtt); b: big window.
	a := &fakeFlow{cwnd: 4, srtt: 0.02}
	b := &fakeFlow{cwnd: 50, srtt: 0.02}
	olia.Register(a)
	olia.Register(b)
	aBefore, bBefore := a.cwnd, b.cwnd
	olia.OnAck(a, 1)
	olia.OnAck(b, 1)
	incA := (a.cwnd - aBefore) / aBefore
	incB := (b.cwnd - bBefore) / bBefore
	if incA <= incB {
		t.Fatalf("relative increase a=%v b=%v; OLIA should favor the best small-window path", incA, incB)
	}
}

func TestControllersHandleZeroRTT(t *testing.T) {
	// Before the first RTT sample SrttSeconds is 0; controllers must not
	// divide by zero.
	for _, c := range []Controller{NewReno(), NewLIA(), NewOLIA()} {
		f := &fakeFlow{cwnd: 10, srtt: 0}
		c.Register(f)
		c.OnAck(f, 1)
		if f.cwnd <= 10 || f.cwnd != f.cwnd /* NaN check */ {
			t.Fatalf("%s: cwnd = %v with zero rtt, want growth and not NaN", c.Name(), f.cwnd)
		}
	}
}

func TestHalvePropertyNeverBelowFloor(t *testing.T) {
	if err := quick.Check(func(w float64) bool {
		if w != w || w < 0 || w > 1e9 {
			return true // skip absurd inputs
		}
		f := &fakeFlow{cwnd: w}
		halve(f)
		return f.cwnd >= minCwnd && f.cwnd <= w/2+minCwnd
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	if NewReno().Name() != "reno" || NewLIA().Name() != "lia" || NewOLIA().Name() != "olia" {
		t.Fatal("controller name mismatch")
	}
}
