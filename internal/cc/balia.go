package cc

import "math"

// BALIA is the Balanced Linked Adaptation controller (Peng, Walid, Hwang,
// Low — IEEE/ACM ToN 2016), the third coupled controller shipped in the
// MPTCP kernel alongside LIA and OLIA. Per ACK of n segments on path r:
//
//	x_r = w_r / rtt_r
//	α_r = max_p(x_p) / x_r
//	w_r += n · x_r / (rtt_r · (Σ_p x_p)²) · (1+α_r)/2 · (4+α_r)/5
//
// and on loss:
//
//	w_r ← w_r − w_r/2 · min(α_r, 1.5)/2
//
// BALIA balances the LIA/OLIA trade-off between friendliness and
// responsiveness; it is included for the congestion-control ablation.
type BALIA struct {
	flows []Flow
}

// NewBALIA returns an empty BALIA controller.
func NewBALIA() *BALIA { return &BALIA{} }

// Name implements Controller.
func (*BALIA) Name() string { return "balia" }

// Register implements Controller.
func (c *BALIA) Register(f Flow) { c.flows = append(c.flows, f) }

// Unregister implements Controller.
func (c *BALIA) Unregister(f Flow) {
	for i, ff := range c.flows {
		if ff == f {
			c.flows = append(c.flows[:i], c.flows[i+1:]...)
			return
		}
	}
}

// rates returns x_r for every flow plus the maximum.
func (c *BALIA) rates() (xs map[Flow]float64, sum, max float64) {
	xs = make(map[Flow]float64, len(c.flows))
	for _, f := range c.flows {
		x := f.Cwnd() / rttOf(f)
		xs[f] = x
		sum += x
		if x > max {
			max = x
		}
	}
	return xs, sum, max
}

// OnAck implements the BALIA increase.
func (c *BALIA) OnAck(f Flow, n int) {
	xs, sum, max := c.rates()
	x := xs[f]
	if x <= 0 || sum <= 0 {
		// Degenerate state: behave like Reno.
		w := f.Cwnd()
		if w < 1 {
			w = 1
		}
		f.SetCwnd(w + float64(n)/w)
		return
	}
	alpha := max / x
	rtt := rttOf(f)
	inc := float64(n) * x / (rtt * sum * sum) * (1 + alpha) / 2 * (4 + alpha) / 5
	if renoInc := float64(n) / f.Cwnd(); inc > renoInc {
		inc = renoInc
	}
	if inc < 0 || math.IsNaN(inc) {
		inc = 0
	}
	f.SetCwnd(f.Cwnd() + inc)
}

// OnLoss implements the BALIA decrease.
func (c *BALIA) OnLoss(f Flow) {
	xs, _, max := c.rates()
	x := xs[f]
	alpha := 1.0
	if x > 0 {
		alpha = max / x
	}
	if alpha > 1.5 {
		alpha = 1.5
	}
	w := f.Cwnd()
	nw := w - w/2*alpha/2
	if nw < minCwnd {
		nw = minCwnd
	}
	f.SetSsthresh(nw)
	f.SetCwnd(nw)
}
