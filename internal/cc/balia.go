package cc

import "math"

// BALIA is the Balanced Linked Adaptation controller (Peng, Walid, Hwang,
// Low — IEEE/ACM ToN 2016), the third coupled controller shipped in the
// MPTCP kernel alongside LIA and OLIA. Per ACK of n segments on path r:
//
//	x_r = w_r / rtt_r
//	α_r = max_p(x_p) / x_r
//	w_r += n · x_r / (rtt_r · (Σ_p x_p)²) · (1+α_r)/2 · (4+α_r)/5
//
// and on loss:
//
//	w_r ← w_r − w_r/2 · min(α_r, 1.5)/2
//
// BALIA balances the LIA/OLIA trade-off between friendliness and
// responsiveness; it is included for the congestion-control ablation.
type BALIA struct {
	flows []Flow
	// xs is the per-flow rate scratch reused across ACKs (indexed like
	// flows) so the per-ACK hot path allocates nothing.
	xs []float64
}

// NewBALIA returns an empty BALIA controller.
func NewBALIA() *BALIA { return &BALIA{} }

// Name implements Controller.
func (*BALIA) Name() string { return "balia" }

// Register implements Controller.
func (c *BALIA) Register(f Flow) { c.flows = append(c.flows, f) }

// Unregister implements Controller.
func (c *BALIA) Unregister(f Flow) {
	for i, ff := range c.flows {
		if ff == f {
			c.flows = append(c.flows[:i], c.flows[i+1:]...)
			return
		}
	}
}

// rates fills c.xs with x_r for every flow (in registration order, same
// as the flows slice) and returns the flow sum and maximum, plus x for
// the flow of interest.
func (c *BALIA) rates(f Flow) (x, sum, max float64) {
	if cap(c.xs) < len(c.flows) {
		c.xs = make([]float64, len(c.flows))
	}
	c.xs = c.xs[:len(c.flows)]
	for i, ff := range c.flows {
		xi := ff.Cwnd() / rttOf(ff)
		c.xs[i] = xi
		sum += xi
		if xi > max {
			max = xi
		}
		if ff == f {
			x = xi
		}
	}
	return x, sum, max
}

// OnAck implements the BALIA increase.
func (c *BALIA) OnAck(f Flow, n int) {
	x, sum, max := c.rates(f)
	if x <= 0 || sum <= 0 {
		// Degenerate state: behave like Reno.
		w := f.Cwnd()
		if w < 1 {
			w = 1
		}
		f.SetCwnd(w + float64(n)/w)
		return
	}
	alpha := max / x
	rtt := rttOf(f)
	inc := float64(n) * x / (rtt * sum * sum) * (1 + alpha) / 2 * (4 + alpha) / 5
	if renoInc := float64(n) / f.Cwnd(); inc > renoInc {
		inc = renoInc
	}
	if inc < 0 || math.IsNaN(inc) {
		inc = 0
	}
	f.SetCwnd(f.Cwnd() + inc)
}

// OnLoss implements the BALIA decrease.
func (c *BALIA) OnLoss(f Flow) {
	x, _, max := c.rates(f)
	alpha := 1.0
	if x > 0 {
		alpha = max / x
	}
	if alpha > 1.5 {
		alpha = 1.5
	}
	w := f.Cwnd()
	nw := w - w/2*alpha/2
	if nw < minCwnd {
		nw = minCwnd
	}
	f.SetSsthresh(nw)
	f.SetCwnd(nw)
}
