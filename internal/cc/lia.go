package cc

// LIA is the coupled "Linked Increases Algorithm" of RFC 6356, the
// default MPTCP congestion controller in the kernel the paper used.
//
// Per ACK of n segments on subflow i in congestion avoidance:
//
//	w_i += min(alpha·n/w_total, n/w_i)
//
// with
//
//	alpha = w_total · max_r(w_r/rtt_r²) / (Σ_r w_r/rtt_r)²
//
// The coupling is exactly why the paper's CWND resets hurt so much: a
// reset fast subflow drags the aggregate increase rate down (§3.2).
type LIA struct {
	flows []Flow
}

// NewLIA returns an empty coupled controller; subflows join via Register.
func NewLIA() *LIA { return &LIA{} }

// Name implements Controller.
func (*LIA) Name() string { return "lia" }

// Register implements Controller.
func (c *LIA) Register(f Flow) { c.flows = append(c.flows, f) }

// Unregister implements Controller.
func (c *LIA) Unregister(f Flow) {
	for i, ff := range c.flows {
		if ff == f {
			c.flows = append(c.flows[:i], c.flows[i+1:]...)
			return
		}
	}
}

// alpha computes the RFC 6356 aggressiveness factor.
func (c *LIA) alpha() float64 {
	_, a := c.totals()
	return a
}

// totals walks the flow set once, returning the aggregate window and the
// RFC 6356 alpha. OnAck needs both, and the per-flow Cwnd/SrttSeconds
// interface calls are the dominant cost of the coupled increase on the
// per-ACK hot path, so they are gathered in a single pass. Sums
// accumulate in registration order, exactly as the former separate
// loops did, keeping the floating-point results bit-identical.
func (c *LIA) totals() (total, alpha float64) {
	var maxTerm, denom float64
	for _, f := range c.flows {
		rtt := f.SrttSeconds()
		if rtt <= 0 {
			rtt = 0.1 // no sample yet: assume 100 ms
		}
		w := f.Cwnd()
		total += w
		t := w / (rtt * rtt)
		if t > maxTerm {
			maxTerm = t
		}
		denom += w / rtt
	}
	if denom <= 0 || total <= 0 {
		return total, 1
	}
	return total, total * maxTerm / (denom * denom)
}

// OnAck implements the linked increase.
func (c *LIA) OnAck(f Flow, n int) {
	total, alpha := c.totals()
	w := f.Cwnd()
	if w <= 0 {
		w = 1
	}
	if total <= 0 {
		total = w
	}
	inc := alpha * float64(n) / total
	solo := float64(n) / w
	if solo < inc {
		inc = solo
	}
	f.SetCwnd(w + inc)
}

// OnLoss halves the window, as in standard TCP.
func (*LIA) OnLoss(f Flow) { halve(f) }
