package cc

// OLIA is the "Opportunistic Linked Increases Algorithm" (Khalili et al.,
// CoNEXT'12), the alternative coupled controller the paper mentions
// alongside the default. Per ACK of n segments on path r:
//
//	w_r += n · ( (w_r/rtt_r²) / (Σ_p w_p/rtt_p)²  +  α_r/w_r )
//
// where α_r shifts traffic toward "best" paths (largest ℓ̂²/rtt, with ℓ̂
// the inter-loss transfer estimate) that do not already hold the largest
// window. We estimate ℓ̂ by counting segments acknowledged since the last
// loss on each path, as the kernel implementation does.
type OLIA struct {
	flows []Flow
	acked map[Flow]float64 // segments acked since last loss (ℓ̂ estimate)
}

// NewOLIA returns an empty OLIA controller.
func NewOLIA() *OLIA { return &OLIA{acked: make(map[Flow]float64)} }

// Name implements Controller.
func (*OLIA) Name() string { return "olia" }

// Register implements Controller.
func (c *OLIA) Register(f Flow) {
	c.flows = append(c.flows, f)
	c.acked[f] = 0
}

// Unregister implements Controller.
func (c *OLIA) Unregister(f Flow) {
	for i, ff := range c.flows {
		if ff == f {
			c.flows = append(c.flows[:i], c.flows[i+1:]...)
			delete(c.acked, f)
			return
		}
	}
}

func rttOf(f Flow) float64 {
	rtt := f.SrttSeconds()
	if rtt <= 0 {
		rtt = 0.1
	}
	return rtt
}

// classify partitions flows into M (max window) and B ("best" quality by
// ℓ̂²/rtt). Ties include every tied flow.
func (c *OLIA) classify() (maxW []Flow, best []Flow) {
	var wMax, qMax float64
	for _, f := range c.flows {
		if f.Cwnd() > wMax {
			wMax = f.Cwnd()
		}
		if q := c.quality(f); q > qMax {
			qMax = q
		}
	}
	for _, f := range c.flows {
		if f.Cwnd() >= wMax*0.999 {
			maxW = append(maxW, f)
		}
		if c.quality(f) >= qMax*0.999 {
			best = append(best, f)
		}
	}
	return maxW, best
}

// quality is the ℓ̂²/rtt path-quality metric.
func (c *OLIA) quality(f Flow) float64 {
	l := c.acked[f] + 1
	return l * l / rttOf(f)
}

func contains(fs []Flow, f Flow) bool {
	for _, ff := range fs {
		if ff == f {
			return true
		}
	}
	return false
}

// OnAck implements the OLIA increase.
func (c *OLIA) OnAck(f Flow, n int) {
	c.acked[f] += float64(n)

	var denom float64
	for _, ff := range c.flows {
		denom += ff.Cwnd() / rttOf(ff)
	}
	if denom <= 0 {
		denom = 1
	}
	w := f.Cwnd()
	if w <= 0 {
		w = 1
	}
	rtt := rttOf(f)
	// Base term: (w/rtt²)/denom², already a per-ACK window increment in
	// segment units.
	base := (w / (rtt * rtt)) / (denom * denom)

	var alpha float64
	nPaths := float64(len(c.flows))
	maxW, best := c.classify()
	var collectedBest []Flow // B \ M
	for _, ff := range best {
		if !contains(maxW, ff) {
			collectedBest = append(collectedBest, ff)
		}
	}
	if len(collectedBest) > 0 && nPaths > 0 {
		switch {
		case contains(collectedBest, f):
			alpha = 1 / (nPaths * float64(len(collectedBest)))
		case contains(maxW, f):
			alpha = -1 / (nPaths * float64(len(maxW)))
		}
	}

	inc := float64(n) * (base + alpha/w)
	if renoInc := float64(n) / w; inc > renoInc {
		inc = renoInc // never more aggressive than Reno
	}
	if inc < 0 {
		inc = 0 // a window never shrinks on an ACK
	}
	f.SetCwnd(w + inc)
}

// OnLoss halves the window and resets the inter-loss estimate.
func (c *OLIA) OnLoss(f Flow) {
	c.acked[f] = 0
	halve(f)
}
