package cc

// Reno is classic uncoupled NewReno-style additive increase /
// multiplicative decrease, applied independently per subflow.
type Reno struct{}

// NewReno returns an uncoupled Reno controller.
func NewReno() *Reno { return &Reno{} }

// Name implements Controller.
func (*Reno) Name() string { return "reno" }

// Register implements Controller (no coupled state).
func (*Reno) Register(Flow) {}

// Unregister implements Controller.
func (*Reno) Unregister(Flow) {}

// OnAck grows the window by n/cwnd segments (one segment per RTT).
func (*Reno) OnAck(f Flow, n int) {
	w := f.Cwnd()
	if w <= 0 {
		w = 1
	}
	f.SetCwnd(w + float64(n)/w)
}

// OnLoss halves the window.
func (*Reno) OnLoss(f Flow) { halve(f) }
