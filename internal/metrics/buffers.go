package metrics

import (
	"sync"
	"time"
)

// Sample-buffer pool. The experiment drivers copy per-cell telemetry
// (out-of-order delay samples, per-chunk series) out of pooled
// simulation objects before the owning network is closed; the copies
// land in reusable buffers drawn from here, so a sweep worker's
// telemetry hand-off allocates nothing in steady state. Callers own a
// buffer from Get until they Put it back (or drop it — an unpooled
// buffer is merely garbage-collected).

// durBufPool recycles []time.Duration sample buffers.
var durBufPool = sync.Pool{New: func() any { return new([]time.Duration) }}

// GetDurations returns an empty duration buffer with whatever capacity
// a previous user grew it to.
func GetDurations() []time.Duration {
	return (*durBufPool.Get().(*[]time.Duration))[:0]
}

// PutDurations recycles buf. The caller must not use buf afterwards.
func PutDurations(buf []time.Duration) {
	if buf == nil {
		return
	}
	durBufPool.Put(&buf)
}

// CopyDurations copies src into a pooled buffer — the idiom for taking
// ownership of telemetry that lives in pooled simulation objects.
func CopyDurations(src []time.Duration) []time.Duration {
	return append(GetDurations(), src...)
}
