// Package metrics provides the statistics and presentation helpers the
// experiment drivers use to report paper-style tables, CDFs/CCDFs and
// heat maps.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary holds moments of a sample set.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes moments. An empty input returns the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	return s
}

// DurationsToSeconds converts a duration slice to seconds.
func DurationsToSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

// CDF is an empirical distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the samples.
func NewCDF(xs []float64) *CDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Advance past equal values so At is P(X <= x), not P(X < x).
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// CCDFAt returns P(X > x).
func (c *CDF) CCDFAt(x float64) float64 { return 1 - c.At(x) }

// Quantile returns the p-quantile for p in [0, 1].
func (c *CDF) Quantile(p float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return c.sorted[0]
	}
	if p >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := p * float64(len(c.sorted)-1)
	lo := int(idx)
	frac := idx - float64(lo)
	if lo+1 >= len(c.sorted) {
		return c.sorted[lo]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, x := range c.sorted {
		sum += x
	}
	return sum / float64(len(c.sorted))
}

// Series renders (x, CCDF(x)) rows at evenly spaced points up to max —
// the form the paper's CCDF figures take.
func (c *CDF) Series(points int, max float64) []struct{ X, Y float64 } {
	if points < 2 {
		points = 2
	}
	out := make([]struct{ X, Y float64 }, points)
	for i := 0; i < points; i++ {
		x := max * float64(i) / float64(points-1)
		out[i] = struct{ X, Y float64 }{X: x, Y: c.CCDFAt(x)}
	}
	return out
}

// Heatmap is a labeled 2-D grid of values in [0, ∞), rendered with the
// darker-is-better shading of the paper's Figures 2, 9, 15 and 19.
type Heatmap struct {
	Title     string
	RowLabels []string // e.g. LTE bandwidths (top to bottom = last to first)
	ColLabels []string // e.g. WiFi bandwidths
	Values    [][]float64
}

// NewHeatmap allocates a rows×cols map.
func NewHeatmap(title string, rowLabels, colLabels []string) *Heatmap {
	v := make([][]float64, len(rowLabels))
	for i := range v {
		v[i] = make([]float64, len(colLabels))
	}
	return &Heatmap{Title: title, RowLabels: rowLabels, ColLabels: colLabels, Values: v}
}

// Set stores one cell.
func (h *Heatmap) Set(row, col int, v float64) { h.Values[row][col] = v }

// At reads one cell.
func (h *Heatmap) At(row, col int) float64 { return h.Values[row][col] }

// Mean returns the average over all cells.
func (h *Heatmap) Mean() float64 {
	var sum float64
	var n int
	for _, row := range h.Values {
		for _, v := range row {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// String renders the grid with numeric cells, rows printed last-to-first
// so the origin sits at the lower left like the paper's axes.
func (h *Heatmap) String() string {
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	for i := len(h.RowLabels) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%6s |", h.RowLabels[i])
		for j := range h.ColLabels {
			fmt.Fprintf(&b, " %5.2f", h.Values[i][j])
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%6s  ", "")
	for _, c := range h.ColLabels {
		fmt.Fprintf(&b, " %5s", c)
	}
	b.WriteString("\n")
	return b.String()
}

// Shade renders the grid as ASCII shading (darker character = higher
// value, matching "darker is better").
func (h *Heatmap) Shade() string {
	shades := []rune(" .:-=+*#%@")
	var b strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&b, "%s\n", h.Title)
	}
	for i := len(h.RowLabels) - 1; i >= 0; i-- {
		fmt.Fprintf(&b, "%6s |", h.RowLabels[i])
		for j := range h.ColLabels {
			v := h.Values[i][j]
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(shades)-1))
			ch := shades[idx]
			fmt.Fprintf(&b, " %c%c", ch, ch)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%6s  ", "")
	for _, c := range h.ColLabels {
		fmt.Fprintf(&b, " %2s", c)
	}
	b.WriteString("\n")
	return b.String()
}

// TimeSeries collects (t, v) points, e.g. CWND traces for Figures 11-12.
type TimeSeries struct {
	T []time.Duration
	V []float64
}

// Add appends one point.
func (ts *TimeSeries) Add(t time.Duration, v float64) {
	ts.T = append(ts.T, t)
	ts.V = append(ts.V, v)
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.T) }

// MeanValue returns the time-unweighted mean of V.
func (ts *TimeSeries) MeanValue() float64 {
	if len(ts.V) == 0 {
		return 0
	}
	var sum float64
	for _, v := range ts.V {
		sum += v
	}
	return sum / float64(len(ts.V))
}

// Downsample returns every k-th point (k >= 1), for compact printing.
func (ts *TimeSeries) Downsample(k int) *TimeSeries {
	if k < 1 {
		k = 1
	}
	out := &TimeSeries{}
	for i := 0; i < ts.Len(); i += k {
		out.Add(ts.T[i], ts.V[i])
	}
	return out
}

// Table prints aligned rows: header plus formatted cells. It is the
// common surface for "same rows the paper reports" output.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, hd := range t.Header {
		widths[i] = len(hd)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
