package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCCDFComplement(t *testing.T) {
	if err := quick.Check(func(xs []float64, x float64) bool {
		c := NewCDF(xs)
		return math.Abs(c.At(x)+c.CCDFAt(x)-1) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMonotone(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		c := NewCDF(xs)
		probe := append([]float64{}, xs...)
		sort.Float64s(probe)
		prev := -1.0
		for _, x := range probe {
			if math.IsNaN(x) {
				return true
			}
			v := c.At(x)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40, 50})
	if q := c.Quantile(0); q != 10 {
		t.Fatalf("q0 = %v", q)
	}
	if q := c.Quantile(1); q != 50 {
		t.Fatalf("q1 = %v", q)
	}
	if q := c.Quantile(0.5); q != 30 {
		t.Fatalf("median = %v, want 30", q)
	}
	if q := c.Quantile(0.25); q != 20 {
		t.Fatalf("q25 = %v, want 20", q)
	}
}

func TestQuantileWithinRange(t *testing.T) {
	if err := quick.Check(func(xs []float64, p float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		p = math.Abs(math.Mod(p, 1))
		q := c.Quantile(p)
		s := append([]float64{}, clean...)
		sort.Float64s(s)
		return q >= s[0] && q <= s[len(s)-1]
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFMean(t *testing.T) {
	c := NewCDF([]float64{2, 4, 6})
	if m := c.Mean(); m != 4 {
		t.Fatalf("mean = %v", m)
	}
	if m := NewCDF(nil).Mean(); m != 0 {
		t.Fatalf("empty mean = %v", m)
	}
}

func TestSeries(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	pts := c.Series(5, 4)
	if len(pts) != 5 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 0 || pts[4].X != 4 {
		t.Fatalf("x range = %v..%v", pts[0].X, pts[4].X)
	}
	if pts[0].Y != 1 {
		t.Fatalf("CCDF(0) = %v, want 1", pts[0].Y)
	}
	if pts[4].Y != 0 {
		t.Fatalf("CCDF(max) = %v, want 0", pts[4].Y)
	}
}

func TestDurationsToSeconds(t *testing.T) {
	out := DurationsToSeconds([]time.Duration{time.Second, 500 * time.Millisecond})
	if out[0] != 1 || out[1] != 0.5 {
		t.Fatalf("out = %v", out)
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap("test", []string{"a", "b"}, []string{"x", "y", "z"})
	h.Set(0, 0, 0.5)
	h.Set(1, 2, 1.0)
	if h.At(0, 0) != 0.5 || h.At(1, 2) != 1.0 {
		t.Fatal("set/get mismatch")
	}
	if math.Abs(h.Mean()-0.25) > 1e-9 {
		t.Fatalf("mean = %v, want 0.25", h.Mean())
	}
	s := h.String()
	if !strings.Contains(s, "test") || !strings.Contains(s, "1.00") {
		t.Fatalf("render missing pieces:\n%s", s)
	}
	sh := h.Shade()
	if !strings.Contains(sh, "@@") {
		t.Fatalf("shade should use darkest char for 1.0:\n%s", sh)
	}
}

func TestHeatmapShadeClamps(t *testing.T) {
	h := NewHeatmap("", []string{"a"}, []string{"x"})
	h.Set(0, 0, 7.5) // out of range must not panic
	_ = h.Shade()
	h.Set(0, 0, -3)
	_ = h.Shade()
}

func TestTimeSeries(t *testing.T) {
	ts := &TimeSeries{}
	for i := 0; i < 10; i++ {
		ts.Add(time.Duration(i)*time.Second, float64(i))
	}
	if ts.Len() != 10 {
		t.Fatalf("len = %d", ts.Len())
	}
	if ts.MeanValue() != 4.5 {
		t.Fatalf("mean = %v", ts.MeanValue())
	}
	d := ts.Downsample(3)
	if d.Len() != 4 {
		t.Fatalf("downsampled len = %d, want 4", d.Len())
	}
	if d.V[1] != 3 {
		t.Fatalf("downsample picked %v, want 3", d.V[1])
	}
}

func TestTable(t *testing.T) {
	tab := &Table{Header: []string{"name", "value"}}
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "22222")
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "alpha") {
		t.Fatalf("row render: %q", lines[1])
	}
	// Alignment: all lines equal width after trim of trailing spaces.
	if len(lines[0]) == 0 {
		t.Fatal("empty header line")
	}
}
