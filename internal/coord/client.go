package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/results"
)

// Backoff is an exponential-backoff-with-full-jitter schedule: attempt
// n sleeps a uniformly random duration in (0, min(Base·2ⁿ, Max)].
// Jitter decorrelates a fleet of workers hammering a briefly-down
// coordinator; the randomness never feeds the simulation, so the
// determinism contract is untouched.
type Backoff struct {
	// Base is attempt 0's ceiling. Default 100ms.
	Base time.Duration
	// Max caps the per-attempt ceiling. Default 5s.
	Max time.Duration
	// Attempts bounds total tries per RPC (first try included).
	// Default 8 — roughly 20s of cumulative patience, comfortably
	// longer than a coordinator restart.
	Attempts int
}

// withDefaults fills the zero values.
func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Attempts <= 0 {
		b.Attempts = 8
	}
	return b
}

// delay computes attempt's sleep.
func (b Backoff) delay(attempt int, rng *rand.Rand) time.Duration {
	d := b.Base << uint(attempt)
	if d <= 0 || d > b.Max {
		d = b.Max
	}
	return time.Duration(rng.Int63n(int64(d))) + time.Millisecond
}

// Client is a coordinator client. Every RPC retries transient failures
// (connection errors, timeouts, 5xx, 429) per the Backoff schedule;
// permanent rejections (other 4xx) surface immediately with the
// server's message.
type Client struct {
	// BaseURL is the coordinator root, e.g. "http://host:7468".
	BaseURL string
	// Worker identifies this worker in leases and logs.
	Worker string
	// HTTP is the transport; nil selects a client with a 30s
	// per-request timeout (bounds stalled reads, not just dials).
	HTTP *http.Client
	// Backoff is the retry schedule (zero value: defaults).
	Backoff Backoff
	// Logf receives retry/latency notes; nil discards.
	Logf func(format string, args ...any)

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewClient builds a client for the coordinator at hostport (scheme
// optional; plain host:port gets http://).
func NewClient(hostport, worker string) *Client {
	base := hostport
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{BaseURL: strings.TrimRight(base, "/"), Worker: worker}
}

// httpClient resolves the transport.
func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// statusError is a non-2xx response carrying the server's message.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("coordinator returned %d: %s", e.code, e.msg)
}

// retryable classifies an RPC failure: transport errors and 5xx/429
// are transient; other HTTP statuses are the server telling us no.
func retryable(err error) bool {
	if se, ok := err.(*statusError); ok {
		return se.code >= 500 || se.code == http.StatusTooManyRequests
	}
	return true // transport-level: dial refused, reset, timeout
}

// jitter draws one backoff sleep.
func (c *Client) jitter(attempt int) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano() ^ int64(len(c.Worker))))
	}
	return c.Backoff.withDefaults().delay(attempt, c.rng)
}

// do runs one JSON RPC with retries.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	b := c.Backoff.withDefaults()
	var lastErr error
	for attempt := 0; attempt < b.Attempts; attempt++ {
		if attempt > 0 {
			d := c.jitter(attempt - 1)
			if c.Logf != nil {
				c.Logf("retrying %s in %v (attempt %d/%d): %v", path, d.Round(time.Millisecond), attempt+1, b.Attempts, lastErr)
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		lastErr = c.once(ctx, method, path, in, out)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if !retryable(lastErr) {
			return lastErr
		}
	}
	return fmt.Errorf("coord: %s failed after %d attempts: %w", path, b.Attempts, lastErr)
}

// once performs a single HTTP exchange.
func (c *Client) once(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var eb errorBody
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &statusError{code: resp.StatusCode, msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// Sweep fetches the sweep description.
func (c *Client) Sweep(ctx context.Context) (SweepInfo, error) {
	var info SweepInfo
	err := c.do(ctx, http.MethodGet, "/v1/sweep", nil, &info)
	return info, err
}

// Claim leases up to max cells (0 = server's batch size).
func (c *Client) Claim(ctx context.Context, max int) (ClaimResponse, error) {
	var resp ClaimResponse
	err := c.do(ctx, http.MethodPost, "/v1/claim", ClaimRequest{Worker: c.Worker, Max: max}, &resp)
	return resp, err
}

// Heartbeat renews leases on cells.
func (c *Client) Heartbeat(ctx context.Context, cells []results.Key) (HeartbeatResponse, error) {
	var resp HeartbeatResponse
	err := c.do(ctx, http.MethodPost, "/v1/heartbeat", HeartbeatRequest{Worker: c.Worker, Cells: cells}, &resp)
	return resp, err
}

// Ingest uploads one serialized record envelope.
func (c *Client) Ingest(ctx context.Context, k results.Key, record []byte) (IngestResponse, error) {
	var resp IngestResponse
	err := c.do(ctx, http.MethodPost, "/v1/ingest", IngestRequest{Worker: c.Worker, Cell: k, Record: record}, &resp)
	return resp, err
}

// Release returns leases, optionally reporting a failure.
func (c *Client) Release(ctx context.Context, cells []results.Key, failed bool, reason string) (ReleaseResponse, error) {
	var resp ReleaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/release", ReleaseRequest{Worker: c.Worker, Cells: cells, Failed: failed, Reason: reason}, &resp)
	return resp, err
}

// Status fetches sweep progress.
func (c *Client) Status(ctx context.Context) (Status, error) {
	var st Status
	err := c.do(ctx, http.MethodGet, "/v1/status", nil, &st)
	return st, err
}
