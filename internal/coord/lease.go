package coord

import (
	"time"

	"repro/internal/results"
)

// cellStatus is one cell's position in the sweep lifecycle.
type cellStatus uint8

const (
	cellPending cellStatus = iota // waiting in the queue
	cellLeased                    // held by a worker, TTL-bounded
	cellDone                      // record ingested
	cellFailed                    // retry budget exhausted; parked
)

// leaseTable tracks every cell of the sweep: its status, current
// holder, lease expiry, and failure history. It is not goroutine-safe;
// the Server serializes access under its mutex (and tests drive it
// directly with a fake clock).
type leaseTable struct {
	cells   []results.Key
	index   map[results.Key]int
	status  []cellStatus
	holder  []string
	expiry  []time.Time
	fails   []int
	lastWhy []string

	// queue holds pending cell indexes in issue order. Cells enter in
	// work-list order, so batches stay family-contiguous; expired and
	// released cells rejoin at the tail.
	queue []int

	ttl        time.Duration
	maxRetries int

	done   int
	failed int
	stolen int // expired leases reclaimed, cumulative
}

// newLeaseTable builds the table over the sweep's work list.
func newLeaseTable(cells []results.Key, ttl time.Duration, maxRetries int) *leaseTable {
	t := &leaseTable{
		cells:      cells,
		index:      make(map[results.Key]int, len(cells)),
		status:     make([]cellStatus, len(cells)),
		holder:     make([]string, len(cells)),
		expiry:     make([]time.Time, len(cells)),
		fails:      make([]int, len(cells)),
		lastWhy:    make([]string, len(cells)),
		queue:      make([]int, 0, len(cells)),
		ttl:        ttl,
		maxRetries: maxRetries,
	}
	for i, k := range cells {
		t.index[k] = i
		t.queue = append(t.queue, i)
	}
	return t
}

// expire reclaims every lease whose TTL has passed — the work-stealing
// half of the protocol. Expired cells rejoin the pending queue; the
// holder finds out through its next heartbeat (lost) or upload
// (duplicate).
func (t *leaseTable) expire(now time.Time) int {
	n := 0
	for i, st := range t.status {
		if st == cellLeased && now.After(t.expiry[i]) {
			t.status[i] = cellPending
			t.holder[i] = ""
			t.queue = append(t.queue, i)
			n++
		}
	}
	t.stolen += n
	return n
}

// claim leases up to max pending cells to worker.
func (t *leaseTable) claim(worker string, max int, now time.Time) []results.Key {
	t.expire(now)
	if max <= 0 {
		return nil
	}
	var out []results.Key
	for len(out) < max && len(t.queue) > 0 {
		i := t.queue[0]
		t.queue = t.queue[1:]
		if t.status[i] != cellPending {
			continue // done or failed while queued (stale queue entry)
		}
		t.status[i] = cellLeased
		t.holder[i] = worker
		t.expiry[i] = now.Add(t.ttl)
		out = append(out, t.cells[i])
	}
	return out
}

// heartbeat extends worker's leases on the given cells and returns the
// ones it no longer holds — stolen after expiry, finished by someone
// else, or never leased to it.
func (t *leaseTable) heartbeat(worker string, keys []results.Key, now time.Time) (lost []results.Key) {
	t.expire(now)
	for _, k := range keys {
		i, ok := t.index[k]
		if !ok || t.status[i] != cellLeased || t.holder[i] != worker {
			lost = append(lost, k)
			continue
		}
		t.expiry[i] = now.Add(t.ttl)
	}
	return lost
}

// markDone records a successful ingest for k, whoever held the lease —
// a stolen-then-revived worker's record is as good as anyone's. It
// reports false when the cell was already done (a duplicate ingest) or
// is not part of this sweep.
func (t *leaseTable) markDone(k results.Key) (added, known bool) {
	i, ok := t.index[k]
	if !ok {
		return false, false
	}
	if t.status[i] == cellDone {
		return false, true
	}
	if t.status[i] == cellFailed {
		t.failed-- // a late successful record un-poisons the cell
	}
	t.status[i] = cellDone
	t.holder[i] = ""
	t.done++
	return true, true
}

// release returns worker's leases on the given cells. A release with
// failed=true counts against the cell's retry budget; a cell out of
// budget is parked as failed instead of requeued. Releases for cells
// the worker does not hold are ignored (stolen or finished already).
func (t *leaseTable) release(worker string, keys []results.Key, failed bool, why string, now time.Time) {
	t.expire(now)
	for _, k := range keys {
		i, ok := t.index[k]
		if !ok || t.status[i] != cellLeased || t.holder[i] != worker {
			continue
		}
		t.holder[i] = ""
		if failed {
			t.fails[i]++
			t.lastWhy[i] = why
			if t.fails[i] >= t.maxRetries {
				t.status[i] = cellFailed
				t.failed++
				continue
			}
		}
		t.status[i] = cellPending
		t.queue = append(t.queue, i)
	}
}

// counts snapshots the table for status reporting.
func (t *leaseTable) counts(now time.Time) (done, leased, pending, failed int) {
	t.expire(now)
	for _, st := range t.status {
		switch st {
		case cellDone:
			done++
		case cellLeased:
			leased++
		case cellPending:
			pending++
		case cellFailed:
			failed++
		}
	}
	return
}

// failedCells lists the parked cells with their failure history.
func (t *leaseTable) failedCells() []FailedCell {
	var out []FailedCell
	for i, st := range t.status {
		if st == cellFailed {
			out = append(out, FailedCell{Key: t.cells[i], Attempts: t.fails[i], LastError: t.lastWhy[i]})
		}
	}
	return out
}

// settled reports whether no work remains: every cell is done or
// parked as failed. complete additionally requires zero failures.
func (t *leaseTable) settled() (settled, complete bool) {
	n := t.done + t.failed
	return n == len(t.cells), t.done == len(t.cells)
}
