package coord

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/results"
)

// Config parameterizes a coordinator.
type Config struct {
	// Store is the coordinator's record store — the sweep's only
	// durable state. Required.
	Store *results.Store
	// Cells is the sweep's work list in stable order (expand
	// experiments.EnumerateCells). Required, non-empty.
	Cells []results.Key
	// ScaleName names the scale profile workers must run at.
	ScaleName string
	// LeaseTTL bounds how long a silent worker keeps its cells.
	// Default 45s.
	LeaseTTL time.Duration
	// BatchSize is the suggested cells-per-claim. Default 32.
	BatchSize int
	// MaxRetries is the per-cell failure budget before it is parked as
	// failed. Default 3.
	MaxRetries int
	// StatePath is where the sweep snapshot lands (atomic durable
	// write). Empty selects <store dir>/coord-state.json; "-" disables
	// persistence (tests).
	StatePath string
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
	// Now is the clock; nil selects time.Now (tests inject a fake).
	Now func() time.Time
}

// Server is the sweep coordinator: lease table, idempotent ingest into
// the store, state snapshots, and the HTTP handler over all of it.
type Server struct {
	cfg   Config
	now   func() time.Time
	logf  func(string, ...any)
	state string // "" when persistence is disabled

	mu         sync.Mutex
	table      *leaseTable
	ingested   int
	duplicates int
	lastSave   time.Time

	doneOnce sync.Once
	doneCh   chan struct{}
}

// persistedState is the on-disk sweep snapshot. The store scan is the
// authoritative ingest state; the snapshot pins the sweep's identity
// (so a restart with different parameters refuses to mix sweeps) and
// gives operators progress without the server running.
type persistedState struct {
	Scale      string       `json:"scale"`
	CellsHash  string       `json:"cells_hash"`
	Total      int          `json:"total"`
	Done       int          `json:"done"`
	Failed     []FailedCell `json:"failed_cells,omitempty"`
	SavedAt    time.Time    `json:"saved_at"`
	SchemaNote string       `json:"note"`
}

// hashCells fingerprints the work list: same cells in same order, same
// sweep.
func hashCells(cells []results.Key) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, k := range cells {
		enc.Encode(k)
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// NewServer builds a coordinator and resumes any prior sweep in the
// store: every cell with a well-formed record is marked done up front,
// so a restart recomputes nothing. A state snapshot from a different
// sweep (other scale or work list) in the same store is an error.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("coord: Config.Store is required")
	}
	if len(cfg.Cells) == 0 {
		return nil, fmt.Errorf("coord: Config.Cells is empty — nothing to sweep")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 45 * time.Second
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	s := &Server{
		cfg:    cfg,
		now:    cfg.Now,
		logf:   cfg.Logf,
		doneCh: make(chan struct{}),
	}
	if s.now == nil {
		s.now = time.Now
	}
	if s.logf == nil {
		s.logf = func(string, ...any) {}
	}
	switch cfg.StatePath {
	case "":
		s.state = filepath.Join(cfg.Store.Dir(), "coord-state.json")
	case "-":
		s.state = ""
	default:
		s.state = cfg.StatePath
	}
	if s.state != "" {
		if err := s.checkPriorState(); err != nil {
			return nil, err
		}
	}
	s.table = newLeaseTable(cfg.Cells, cfg.LeaseTTL, cfg.MaxRetries)
	resumed := 0
	for _, k := range cfg.Cells {
		if cfg.Store.Has(k) {
			if added, _ := s.table.markDone(k); added {
				resumed++
			}
		}
	}
	if resumed > 0 {
		s.logf("resume: %d/%d cells already in the store", resumed, len(cfg.Cells))
	}
	s.maybeDone()
	return s, nil
}

// checkPriorState refuses to resume over a snapshot from a different
// sweep — mixing scales or work lists in one store would interleave
// incompatible record sets silently.
func (s *Server) checkPriorState() error {
	raw, err := os.ReadFile(s.state)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("coord: reading state %s: %w", s.state, err)
	}
	var st persistedState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("coord: state %s is corrupt: %v (delete it to start fresh)", s.state, err)
	}
	if st.Scale != s.cfg.ScaleName || st.CellsHash != hashCells(s.cfg.Cells) {
		return fmt.Errorf("coord: state %s records a different sweep (scale %q, %d cells); refusing to mix sweeps in one store — use a fresh -cache-dir or delete the state file",
			s.state, st.Scale, st.Total)
	}
	return nil
}

// PersistState writes the sweep snapshot durably. Safe to call at any
// time; the graceful-shutdown path calls it after the HTTP server has
// drained in-flight ingests.
func (s *Server) PersistState() error {
	if s.state == "" {
		return nil
	}
	s.mu.Lock()
	st := persistedState{
		Scale:      s.cfg.ScaleName,
		CellsHash:  hashCells(s.cfg.Cells),
		Total:      len(s.cfg.Cells),
		Done:       s.table.done,
		Failed:     s.table.failedCells(),
		SavedAt:    s.now(),
		SchemaNote: "advisory snapshot; the record store is the authoritative ingest state",
	}
	s.lastSave = s.now()
	s.mu.Unlock()
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return results.AtomicWriteFile(s.state, append(raw, '\n'))
}

// maybePersist saves the snapshot at most once per second — called on
// ingest progress so a hard-killed coordinator still leaves a recent
// snapshot, without an fsync per record on the state file. Caller
// holds s.mu; the actual write happens outside it via a goroutine-free
// fast path: we just record intent and let the caller write after
// unlock.
func (s *Server) maybePersist() bool {
	if s.state == "" {
		return false
	}
	if s.now().Sub(s.lastSave) < time.Second {
		return false
	}
	s.lastSave = s.now()
	return true
}

// Done is closed when no work remains (every cell done or parked as
// failed) — the -exit-when-done trigger.
func (s *Server) Done() <-chan struct{} { return s.doneCh }

// maybeDone closes Done when the sweep has settled. Caller holds s.mu
// or is in the constructor.
func (s *Server) maybeDone() {
	if settled, _ := s.table.settled(); settled {
		s.doneOnce.Do(func() { close(s.doneCh) })
	}
}

// Status snapshots sweep progress.
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	done, leased, pending, failed := s.table.counts(s.now())
	settled, complete := s.table.settled()
	return Status{
		Scale:      s.cfg.ScaleName,
		Total:      len(s.cfg.Cells),
		Done:       done,
		Leased:     leased,
		Pending:    pending,
		Failed:     failed,
		FailedList: s.table.failedCells(),
		Stolen:     s.table.stolen,
		Ingested:   s.ingested,
		Duplicates: s.duplicates,
		SweepDone:  settled,
		Complete:   complete,
	}
}

// Handler returns the coordinator's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/claim", s.handleClaim)
	mux.HandleFunc("/v1/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/release", s.handleRelease)
	mux.HandleFunc("/v1/status", s.handleStatus)
	return mux
}

// writeJSON renders a response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// readJSON decodes a bounded request body.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST required"})
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 64<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading body: " + err.Error()})
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "decoding body: " + err.Error()})
		return false
	}
	return true
}

func (s *Server) handleSweep(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, SweepInfo{
		Scale:      s.cfg.ScaleName,
		TotalCells: len(s.cfg.Cells),
		LeaseTTLMs: s.cfg.LeaseTTL.Milliseconds(),
		BatchSize:  s.cfg.BatchSize,
	})
}

func (s *Server) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req ClaimRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "claim without a worker id"})
		return
	}
	max := req.Max
	if max <= 0 {
		max = s.cfg.BatchSize
	}
	s.mu.Lock()
	cells := s.table.claim(req.Worker, max, s.now())
	settled, complete := s.table.settled()
	s.mu.Unlock()
	if len(cells) > 0 {
		s.logf("claim: %d cells -> %s (first %s/%d)", len(cells), req.Worker, cells[0].Experiment, cells[0].Cell)
	}
	writeJSON(w, http.StatusOK, ClaimResponse{
		Cells:      cells,
		LeaseTTLMs: s.cfg.LeaseTTL.Milliseconds(),
		SweepDone:  settled,
		Complete:   complete,
	})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	lost := s.table.heartbeat(req.Worker, req.Cells, s.now())
	settled, _ := s.table.settled()
	s.mu.Unlock()
	if len(lost) > 0 {
		s.logf("heartbeat: %s lost %d leases", req.Worker, len(lost))
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Lost: lost, SweepDone: settled})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	i, known := s.table.index[req.Cell]
	alreadyDone := known && s.table.status[i] == cellDone
	s.mu.Unlock()
	if !known {
		writeJSON(w, http.StatusConflict, errorBody{Error: fmt.Sprintf(
			"cell %d of %q is not part of this sweep (mismatched scale or schema?)", req.Cell.Cell, req.Cell.Experiment)})
		return
	}
	if alreadyDone {
		s.mu.Lock()
		s.duplicates++
		settled, _ := s.table.settled()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, IngestResponse{Duplicate: true, SweepDone: settled})
		return
	}
	// The durable write happens outside the table lock so concurrent
	// ingests overlap their fsyncs; Store.Ingest is idempotent, and
	// racing writers produce identical bytes under the determinism
	// contract, so last-rename-wins is harmless.
	if _, err := s.cfg.Store.Ingest(req.Cell, req.Record); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	s.mu.Lock()
	marked, _ := s.table.markDone(req.Cell)
	if marked {
		s.ingested++
	} else {
		s.duplicates++
	}
	persist := s.maybePersist()
	settled, _ := s.table.settled()
	s.maybeDone()
	s.mu.Unlock()
	if persist {
		if err := s.PersistState(); err != nil {
			s.logf("state snapshot failed: %v", err)
		}
	}
	writeJSON(w, http.StatusOK, IngestResponse{Duplicate: !marked, SweepDone: settled})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	s.mu.Lock()
	s.table.release(req.Worker, req.Cells, req.Failed, req.Reason, s.now())
	settled, _ := s.table.settled()
	s.maybeDone()
	s.mu.Unlock()
	if req.Failed {
		s.logf("release: %s failed %d cells: %s", req.Worker, len(req.Cells), req.Reason)
	}
	writeJSON(w, http.StatusOK, ReleaseResponse{SweepDone: settled})
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}
