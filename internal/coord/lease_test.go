package coord

import (
	"testing"
	"time"

	"repro/internal/results"
)

func testCells(n int) []results.Key {
	sp := results.Spec{Experiment: "unit/sweep", Schema: 1, Scale: "s"}
	out := make([]results.Key, n)
	for i := range out {
		out[i] = sp.Key(i)
	}
	return out
}

func TestLeaseTableClaimExpireSteal(t *testing.T) {
	cells := testCells(4)
	tab := newLeaseTable(cells, 10*time.Second, 3)
	t0 := time.Unix(1000, 0)

	got := tab.claim("a", 3, t0)
	if len(got) != 3 || got[0] != cells[0] || got[2] != cells[2] {
		t.Fatalf("claim = %v", got)
	}
	// Nothing left but cell 3.
	if rest := tab.claim("b", 10, t0); len(rest) != 1 || rest[0] != cells[3] {
		t.Fatalf("second claim = %v", rest)
	}
	// Before the TTL nothing is stealable.
	if s := tab.claim("b", 10, t0.Add(9*time.Second)); len(s) != 0 {
		t.Fatalf("claim before expiry stole %v", s)
	}
	// After a's TTL its three cells are stolen; b's lease (taken at t0
	// too) expires equally — but b re-claims them all.
	steal := tab.claim("b", 10, t0.Add(11*time.Second))
	if len(steal) != 4 {
		t.Fatalf("claim after expiry = %d cells, want all 4 back", len(steal))
	}
	if tab.stolen != 4 {
		t.Fatalf("stolen counter = %d, want 4", tab.stolen)
	}
}

func TestLeaseTableHeartbeatKeepsAndReportsLost(t *testing.T) {
	cells := testCells(2)
	tab := newLeaseTable(cells, 10*time.Second, 3)
	t0 := time.Unix(1000, 0)
	tab.claim("a", 2, t0)

	// Heartbeats at 8s intervals keep the lease alive far past one TTL.
	now := t0
	for i := 0; i < 5; i++ {
		now = now.Add(8 * time.Second)
		if lost := tab.heartbeat("a", cells, now); len(lost) != 0 {
			t.Fatalf("heartbeat %d lost %v", i, lost)
		}
	}
	if got := tab.claim("b", 10, now); len(got) != 0 {
		t.Fatalf("heartbeated leases were stolen: %v", got)
	}

	// Silence past the TTL: the next heartbeat reports both cells lost.
	now = now.Add(11 * time.Second)
	if lost := tab.heartbeat("a", cells, now); len(lost) != 2 {
		t.Fatalf("post-expiry heartbeat lost %v, want both", lost)
	}
	// A heartbeat for cells never leased to the worker reports them lost.
	tab2 := newLeaseTable(cells, 10*time.Second, 3)
	tab2.claim("a", 2, t0)
	if lost := tab2.heartbeat("b", cells, t0); len(lost) != 2 {
		t.Fatalf("foreign heartbeat lost %v, want both", lost)
	}
}

func TestLeaseTableMarkDoneIsIdempotentAndUnpoisons(t *testing.T) {
	cells := testCells(1)
	tab := newLeaseTable(cells, 10*time.Second, 1)
	t0 := time.Unix(1000, 0)

	// Exhaust the retry budget: the cell parks as failed.
	tab.claim("a", 1, t0)
	tab.release("a", cells, true, "sim blew up", t0)
	if tab.failed != 1 {
		t.Fatalf("failed = %d, want 1 (budget 1)", tab.failed)
	}
	if got := tab.claim("b", 1, t0); len(got) != 0 {
		t.Fatalf("failed cell was re-leased: %v", got)
	}
	if fc := tab.failedCells(); len(fc) != 1 || fc[0].Attempts != 1 || fc[0].LastError != "sim blew up" {
		t.Fatalf("failedCells = %+v", fc)
	}
	if settled, complete := tab.settled(); !settled || complete {
		t.Fatalf("settled=%v complete=%v, want settled but incomplete", settled, complete)
	}

	// A late successful ingest un-poisons the cell.
	added, known := tab.markDone(cells[0])
	if !added || !known {
		t.Fatalf("markDone on failed cell = %v, %v", added, known)
	}
	if tab.failed != 0 || tab.done != 1 {
		t.Fatalf("after un-poison: failed=%d done=%d", tab.failed, tab.done)
	}
	if settled, complete := tab.settled(); !settled || !complete {
		t.Fatalf("settled=%v complete=%v, want both", settled, complete)
	}

	// Duplicates and foreign cells.
	if added, known := tab.markDone(cells[0]); added || !known {
		t.Fatalf("duplicate markDone = %v, %v", added, known)
	}
	foreign := results.Key{Experiment: "other", Cell: 0, Schema: 1, Scale: "s"}
	if added, known := tab.markDone(foreign); added || known {
		t.Fatalf("foreign markDone = %v, %v", added, known)
	}
}

func TestLeaseTableReleaseRequeuesUntilBudget(t *testing.T) {
	cells := testCells(1)
	tab := newLeaseTable(cells, 10*time.Second, 3)
	t0 := time.Unix(1000, 0)

	for attempt := 1; attempt <= 3; attempt++ {
		got := tab.claim("w", 1, t0)
		if len(got) != 1 {
			t.Fatalf("attempt %d: claim = %v", attempt, got)
		}
		tab.release("w", cells, true, "flaky", t0)
		if attempt < 3 && tab.failed != 0 {
			t.Fatalf("attempt %d: parked early", attempt)
		}
	}
	if tab.failed != 1 || tab.fails[0] != 3 {
		t.Fatalf("failed=%d fails=%d, want parked after 3", tab.failed, tab.fails[0])
	}

	// A clean (failed=false) release requeues without burning budget.
	tab2 := newLeaseTable(cells, 10*time.Second, 3)
	tab2.claim("w", 1, t0)
	tab2.release("w", cells, false, "", t0)
	if tab2.fails[0] != 0 {
		t.Fatalf("clean release burned budget: %d", tab2.fails[0])
	}
	if got := tab2.claim("v", 1, t0); len(got) != 1 {
		t.Fatalf("released cell not claimable: %v", got)
	}
	// Releasing cells the worker does not hold is a no-op.
	tab2.release("w", cells, true, "stale", t0)
	if tab2.fails[0] != 0 {
		t.Fatal("stale release from a non-holder burned budget")
	}
}

func TestLeaseTableDoneCellsNeverRequeue(t *testing.T) {
	cells := testCells(2)
	tab := newLeaseTable(cells, 10*time.Second, 3)
	t0 := time.Unix(1000, 0)
	tab.claim("a", 2, t0)
	tab.markDone(cells[0])

	// The done cell does not rejoin the queue even after its holder's
	// lease expires.
	if got := tab.claim("b", 10, t0.Add(time.Minute)); len(got) != 1 || got[0] != cells[1] {
		t.Fatalf("claim after expiry = %v, want only cell 1", got)
	}
	done, leased, pending, failed := tab.counts(t0.Add(time.Minute))
	if done != 1 || leased != 1 || pending != 0 || failed != 0 {
		t.Fatalf("counts = %d/%d/%d/%d", done, leased, pending, failed)
	}
}
