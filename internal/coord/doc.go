// Package coord is the fault-tolerant distributed sweep coordinator:
// the server behind cmd/ecfd, the retrying HTTP client and lease-loop
// worker behind ecfbench -join, and the lease table both share.
//
// A sweep is a fixed work list of cell keys (enumerated by
// experiments.EnumerateCells, so it cannot drift from the drivers).
// The coordinator owns that list and a content-addressed results.Store;
// workers own nothing durable. The protocol is four idempotent RPCs:
//
//	claim      lease a batch of pending cells (TTL-bounded)
//	heartbeat  extend the worker's leases; learn which were stolen
//	ingest     upload one finished cell record (idempotent)
//	release    return cells early (requeue, or report a failure)
//
// # Lease contract
//
// A lease is a TTL on a cell granted to one worker. Holding a lease is
// the only polite way to compute a cell, but it is advisory, not a
// lock: leases exist to stop duplicate work, not to make it unsafe.
// A worker that stops heartbeating loses its leases when they expire;
// the cells return to the pending queue and the next claim hands them
// to someone else (work-stealing from slow, hung, or dead workers).
// Heartbeats report which cells were lost so a worker can stop
// computing stolen work mid-pass. A cell released with a failure
// (e.g. a -cell-timeout surrender) is retried up to the configured
// retry budget, then parked as failed and reported in status — the
// sweep ends rather than retrying a poisoned cell forever.
//
// # Idempotency contract
//
// Every cell record is deterministic: any worker computing a cell
// produces the same bytes. Ingest exploits that — the first upload of
// a cell wins, every later upload (a retried RPC whose first attempt
// landed, a stolen-then-revived worker finishing anyway, a replayed
// request) is a no-op acknowledged as a duplicate. Records land in the
// store via the atomic durable write path (temp file, fsync, rename,
// directory fsync), so a crashed coordinator can never hold a
// half-ingested record.
//
// # Crash safety and resume
//
// The store is the ingest state: on startup the coordinator scans it
// and marks every cell with a well-formed record as done, so a
// restarted `ecfd serve` resumes the sweep instead of restarting it.
// Leases are deliberately not durable — after a restart workers'
// heartbeats report every lease as lost, the workers re-claim, and the
// sweep continues. A state snapshot (written atomically on shutdown
// and periodically during the run) records the sweep's identity — the
// scale and a hash of the work list — so a coordinator restarted with
// different parameters over the same store refuses to mix sweeps, and
// operators can inspect progress without the server running.
//
// Client RPCs retry transient failures with exponential backoff plus
// jitter; workers bound each computed cell with a context deadline
// (results.Session.CellTimeout) so one wedged cell is surrendered
// loudly instead of holding its lease until theft.
package coord
