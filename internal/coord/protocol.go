package coord

import (
	"encoding/json"

	"repro/internal/results"
)

// The wire protocol: JSON bodies over four POST endpoints plus two GET
// probes, all rooted at /v1/. Every request is safe to retry — claim
// grants fresh leases, heartbeat/release are idempotent per (worker,
// cell) state, ingest is idempotent by construction.

// SweepInfo describes the sweep to a joining worker (GET /v1/sweep).
type SweepInfo struct {
	// Scale is the scale-profile name ("full", "quick") the worker must
	// run its catalog passes at.
	Scale string `json:"scale"`
	// TotalCells is the size of the work list.
	TotalCells int `json:"total_cells"`
	// LeaseTTLMs is the lease TTL; workers heartbeat well inside it.
	LeaseTTLMs int64 `json:"lease_ttl_ms"`
	// BatchSize is the suggested claim size.
	BatchSize int `json:"batch_size"`
}

// ClaimRequest asks for up to Max leases (POST /v1/claim).
type ClaimRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// ClaimResponse grants leases. Empty Cells with SweepDone false means
// everything pending is leased elsewhere: poll again after a backoff —
// a lease may expire and come back around.
type ClaimResponse struct {
	Cells      []results.Key `json:"cells,omitempty"`
	LeaseTTLMs int64         `json:"lease_ttl_ms"`
	// SweepDone reports that no work remains (every cell done or parked
	// as failed) — workers should exit.
	SweepDone bool `json:"sweep_done"`
	// Complete reports every cell done with no failures.
	Complete bool `json:"complete"`
}

// HeartbeatRequest renews the worker's leases (POST /v1/heartbeat).
type HeartbeatRequest struct {
	Worker string        `json:"worker"`
	Cells  []results.Key `json:"cells"`
}

// HeartbeatResponse lists the cells the worker no longer holds.
type HeartbeatResponse struct {
	Lost      []results.Key `json:"lost,omitempty"`
	SweepDone bool          `json:"sweep_done"`
}

// IngestRequest uploads one finished cell record (POST /v1/ingest).
// Record is the serialized results envelope (results.EncodeRecord).
type IngestRequest struct {
	Worker string          `json:"worker"`
	Cell   results.Key     `json:"cell"`
	Record json.RawMessage `json:"record"`
}

// IngestResponse acknowledges the upload.
type IngestResponse struct {
	// Duplicate reports the record was already ingested (idempotent
	// no-op) — normal under lease theft and RPC retries.
	Duplicate bool `json:"duplicate"`
	SweepDone bool `json:"sweep_done"`
}

// ReleaseRequest returns leases early (POST /v1/release): a clean
// requeue at pass end, or a failure report (Failed true) that counts
// against the cell's retry budget.
type ReleaseRequest struct {
	Worker string        `json:"worker"`
	Cells  []results.Key `json:"cells"`
	Failed bool          `json:"failed"`
	Reason string        `json:"reason,omitempty"`
}

// ReleaseResponse is an acknowledgement.
type ReleaseResponse struct {
	SweepDone bool `json:"sweep_done"`
}

// FailedCell reports one cell that exhausted its retry budget.
type FailedCell struct {
	Key       results.Key `json:"key"`
	Attempts  int         `json:"attempts"`
	LastError string      `json:"last_error,omitempty"`
}

// Status is the sweep progress snapshot (GET /v1/status).
type Status struct {
	Scale      string       `json:"scale"`
	Total      int          `json:"total"`
	Done       int          `json:"done"`
	Leased     int          `json:"leased"`
	Pending    int          `json:"pending"`
	Failed     int          `json:"failed"`
	FailedList []FailedCell `json:"failed_cells,omitempty"`
	Stolen     int          `json:"leases_stolen"`
	Ingested   int          `json:"records_ingested"`
	Duplicates int          `json:"duplicate_ingests"`
	SweepDone  bool         `json:"sweep_done"`
	Complete   bool         `json:"complete"`
}

// errorBody is the JSON error payload on non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}
