package coord

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/results"
)

// tablePass runs the real Table 2 driver under a worker session,
// converting the driver's *results.FatalError panics back into errors —
// the same recovery ecfbench's join mode performs over the full catalog.
func tablePass(ses *results.Session) (err error) {
	defer func() {
		if v := recover(); v != nil {
			var fe *results.FatalError
			if pe, ok := v.(error); ok && errors.As(pe, &fe) {
				err = fe.Err
				return
			}
			panic(v)
		}
	}()
	sc := experiments.Quick
	sc.Workers = 2
	sc.Results = ses
	experiments.Table2(sc)
	return nil
}

// TestDistributedTable2RendersByteIdentical is the in-process end of
// the distributed determinism contract: a sweep computed by two
// lease-loop workers — one of which dies mid-sweep without releasing
// anything — and merged from the coordinator's store renders the exact
// bytes a single-machine run prints. (The CI integration job proves the
// same over real processes, SIGKILL included, for the whole catalog.)
func TestDistributedTable2RendersByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}

	// Golden: the ordinary in-process run.
	direct := experiments.Quick
	direct.Workers = 2
	golden := experiments.Table2(direct).String()

	// The sweep's work list: exactly Table 2's cells, enumerated from
	// the driver itself.
	enum := &results.Session{Enumerate: true}
	scE := experiments.Quick
	scE.Workers = 1
	scE.Results = enum
	experiments.Table2(scE)
	var cells []results.Key
	for _, f := range enum.ActiveCellFamilies() {
		for i := 0; i < f.Cells; i++ {
			cells = append(cells, f.Spec.Key(i))
		}
	}
	if len(cells) == 0 {
		t.Fatal("enumeration found no cells")
	}

	dir := t.TempDir()
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Config{
		Store: store, Cells: cells, ScaleName: "quick",
		LeaseTTL: 400 * time.Millisecond, BatchSize: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Worker "victim" claims a batch and dies without heartbeating or
	// releasing — its leases must be stolen.
	victim := fastClient(hs.URL, "victim")
	if resp, err := victim.Claim(context.Background(), 3); err != nil || len(resp.Cells) == 0 {
		t.Fatalf("victim claim: %v (%d cells)", err, len(resp.Cells))
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[w] = RunWorker(context.Background(), WorkerConfig{
				Client:       fastClient(hs.URL, []string{"alpha", "beta"}[w]),
				RunPass:      tablePass,
				PollInterval: 20 * time.Millisecond,
			})
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	st := srv.Status()
	if !st.Complete || st.Done != len(cells) {
		t.Fatalf("status = %+v, want all %d cells done", st, len(cells))
	}
	if st.Stolen == 0 {
		t.Fatal("the dead worker's leases were never stolen")
	}

	// Render from the coordinator's store alone.
	merged := experiments.Quick
	merged.Results = &results.Session{Store: store, Merge: true}
	got := experiments.Table2(merged).String()
	if got != golden {
		t.Fatalf("distributed sweep renders differently:\n--- direct ---\n%s\n--- merged ---\n%s", golden, got)
	}
}
