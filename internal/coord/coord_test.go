package coord

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/results"
	"repro/internal/runner"
)

// cellRec is the test catalog's record type. Compute is deterministic,
// so every worker produces identical bytes for a cell — the contract
// idempotent ingest leans on.
type cellRec struct {
	Cell  int
	Value float64
}

func testSpec() results.Spec {
	return results.Spec{Experiment: "unit/sweep", Schema: 1, Scale: "s"}
}

func computeCellRec(i int) cellRec { return cellRec{Cell: i, Value: float64(i) * 2.5} }

// startServer builds a Server over a fresh store and serves it via
// httptest. State persistence is exercised through the default path in
// the store dir.
func startServer(t *testing.T, dir string, n int, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = store
	if cfg.Cells == nil {
		cfg.Cells = testCells(n)
	}
	if cfg.ScaleName == "" {
		cfg.ScaleName = "s"
	}
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// fastClient builds a worker client with millisecond backoff so retry
// paths run in test time.
func fastClient(url, worker string) *Client {
	c := NewClient(url, worker)
	c.Backoff = Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Attempts: 10}
	return c
}

// passRunner adapts the test catalog to WorkerConfig.RunPass: one
// results.Run over the spec's cells under the worker's session.
func passRunner(n int, compute func(int) cellRec) func(*results.Session) error {
	pool := runner.New(2)
	return func(ses *results.Session) error {
		return results.Run(context.Background(), pool, ses, testSpec(), n,
			compute, func(int, cellRec) {})
	}
}

// storeHasAll fails unless the store holds exactly one well-formed
// record per cell.
func storeHasAll(t *testing.T, dir string, n int) {
	t.Helper()
	store, err := results.OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testCells(n) {
		if !store.Has(k) {
			t.Fatalf("store misses cell %d after sweep", k.Cell)
		}
	}
	files := 0
	err = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		base := filepath.Base(path)
		if strings.HasSuffix(base, ".json") && !strings.HasPrefix(base, ".tmp-") && base != "coord-state.json" {
			files++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if files != n {
		t.Fatalf("store holds %d record files, want exactly %d (one per cell)", files, n)
	}
}

func TestSweepTwoWorkersComplete(t *testing.T) {
	const n = 24
	dir := t.TempDir()
	srv, hs := startServer(t, dir, n, Config{LeaseTTL: 5 * time.Second, BatchSize: 5})

	var wg sync.WaitGroup
	stats := make([]WorkerStats, 2)
	errs := make([]error, 2)
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			stats[w], errs[w] = RunWorker(context.Background(), WorkerConfig{
				Client:       fastClient(hs.URL, fmt.Sprintf("w%d", w)),
				RunPass:      passRunner(n, computeCellRec),
				PollInterval: 5 * time.Millisecond,
			})
		}()
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	st := srv.Status()
	if !st.SweepDone || !st.Complete || st.Done != n || st.Failed != 0 {
		t.Fatalf("status = %+v", st)
	}
	if got := stats[0].Uploaded + stats[1].Uploaded; got < n {
		t.Fatalf("workers uploaded %d records, want >= %d", got, n)
	}
	select {
	case <-srv.Done():
	default:
		t.Fatal("Done channel not closed after completion")
	}
	storeHasAll(t, dir, n)

	// The final snapshot agrees with the table.
	if err := srv.PersistState(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "coord-state.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"done": 24`, `"scale": "s"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("snapshot %s lacks %q", raw, want)
		}
	}
}

// flakyTransport injects the three transient failure modes a worker
// must ride out: requests dropped before they reach the server,
// responses dropped after the server already executed the request (the
// dangerous one — the retry replays a side effect), and 503s. Failures
// hit a fixed schedule so the test is deterministic.
type flakyTransport struct {
	base http.RoundTripper
	mu   sync.Mutex
	n    int

	dropped  int
	executed int
	busied   int
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.n++
	n := f.n
	f.mu.Unlock()
	switch {
	case n%11 == 3:
		f.mu.Lock()
		f.dropped++
		f.mu.Unlock()
		return nil, fmt.Errorf("injected: connection reset before send")
	case n%11 == 7:
		// Execute the request server-side, then lose the response: the
		// client retries an RPC that already landed.
		resp, err := f.base.RoundTrip(req)
		if err == nil {
			resp.Body.Close()
		}
		f.mu.Lock()
		f.executed++
		f.mu.Unlock()
		return nil, fmt.Errorf("injected: response dropped after execution")
	case n%11 == 9:
		f.mu.Lock()
		f.busied++
		f.mu.Unlock()
		rec := httptest.NewRecorder()
		rec.WriteHeader(http.StatusServiceUnavailable)
		return rec.Result(), nil
	}
	return f.base.RoundTrip(req)
}

func TestFlakyTransportConvergesOnOneRecordPerCell(t *testing.T) {
	const n = 30
	dir := t.TempDir()
	srv, hs := startServer(t, dir, n, Config{LeaseTTL: 500 * time.Millisecond, BatchSize: 4})

	flaky := &flakyTransport{base: http.DefaultTransport}
	client := fastClient(hs.URL, "flaky-worker")
	client.HTTP = &http.Client{Transport: flaky, Timeout: 5 * time.Second}

	stats, err := RunWorker(context.Background(), WorkerConfig{
		Client:       client,
		RunPass:      passRunner(n, computeCellRec),
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("worker over flaky transport: %v", err)
	}
	if flaky.dropped == 0 || flaky.executed == 0 || flaky.busied == 0 {
		t.Fatalf("fault injection never fired: %+v", flaky)
	}
	st := srv.Status()
	if !st.Complete || st.Done != n {
		t.Fatalf("status = %+v", st)
	}
	// Executed-then-dropped ingests were replayed by the retry loop;
	// idempotency must have absorbed them.
	if st.Ingested != n {
		t.Fatalf("ingested = %d, want %d", st.Ingested, n)
	}
	storeHasAll(t, dir, n)
	t.Logf("flaky run: %+v, server saw %d duplicates, injected %d/%d/%d faults",
		stats, st.Duplicates, flaky.dropped, flaky.executed, flaky.busied)
}

func TestDeadWorkerLeasesAreStolen(t *testing.T) {
	const n = 12
	dir := t.TempDir()
	srv, hs := startServer(t, dir, n, Config{LeaseTTL: 150 * time.Millisecond, BatchSize: 6})

	// Worker A claims half the sweep and dies silently: no heartbeat,
	// no release — the SIGKILL case.
	dead := fastClient(hs.URL, "dead-worker")
	claimed, err := dead.Claim(context.Background(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(claimed.Cells) != 6 {
		t.Fatalf("dead worker claimed %d cells", len(claimed.Cells))
	}

	// Worker B sweeps everything; A's cells come back after the TTL.
	stats, err := RunWorker(context.Background(), WorkerConfig{
		Client:       fastClient(hs.URL, "live-worker"),
		RunPass:      passRunner(n, computeCellRec),
		PollInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Status()
	if !st.Complete || st.Done != n {
		t.Fatalf("status after steal = %+v", st)
	}
	if st.Stolen == 0 {
		t.Fatal("no leases were stolen despite the dead worker")
	}
	if stats.Uploaded != n {
		t.Fatalf("live worker uploaded %d, want %d", stats.Uploaded, n)
	}

	// The dead worker rises and uploads a cell it still thinks it
	// holds: an idempotent no-op, reported as a duplicate.
	k := claimed.Cells[0]
	raw, err := results.EncodeRecord(k, computeCellRec(k.Cell))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := dead.Ingest(context.Background(), k, raw)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Duplicate {
		t.Fatal("revived worker's upload was not flagged as a duplicate")
	}
	storeHasAll(t, dir, n)
}

func TestServerResumesFromStore(t *testing.T) {
	const n = 10
	dir := t.TempDir()

	// First life: half the sweep lands, then the coordinator "crashes"
	// (we simply drop it — the store is the durable state).
	srv1, hs1 := startServer(t, dir, n, Config{})
	c := fastClient(hs1.URL, "w")
	for _, k := range testCells(n)[:5] {
		raw, err := results.EncodeRecord(k, computeCellRec(k.Cell))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Ingest(context.Background(), k, raw); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv1.PersistState(); err != nil {
		t.Fatal(err)
	}
	hs1.Close()

	// Second life: the five ingested cells are done up front — no
	// recomputation — and only the remaining five are handed out.
	srv2, hs2 := startServer(t, dir, n, Config{})
	if st := srv2.Status(); st.Done != 5 || st.Pending != 5 {
		t.Fatalf("resumed status = %+v, want 5 done / 5 pending", st)
	}
	stats, err := RunWorker(context.Background(), WorkerConfig{
		Client:       fastClient(hs2.URL, "w2"),
		RunPass:      passRunner(n, computeCellRec),
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Claimed != 5 {
		t.Fatalf("resumed sweep claimed %d cells, want only the missing 5", stats.Claimed)
	}
	if st := srv2.Status(); !st.Complete {
		t.Fatalf("status = %+v", st)
	}

	// Third life: a fully swept store settles at construction.
	srv3, _ := startServer(t, dir, n, Config{})
	select {
	case <-srv3.Done():
	default:
		t.Fatal("fully-resumed server's Done channel not closed")
	}
}

func TestServerRefusesMixingSweepsInOneStore(t *testing.T) {
	dir := t.TempDir()
	srv, _ := startServer(t, dir, 4, Config{ScaleName: "quick"})
	if err := srv.PersistState(); err != nil {
		t.Fatal(err)
	}
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Same store, different scale: refused.
	if _, err := NewServer(Config{Store: store, Cells: testCells(4), ScaleName: "full"}); err == nil {
		t.Fatal("NewServer accepted a different scale over the same store")
	}
	// Same store, different work list: refused.
	if _, err := NewServer(Config{Store: store, Cells: testCells(7), ScaleName: "quick"}); err == nil {
		t.Fatal("NewServer accepted a different work list over the same store")
	}
	// The matching sweep still resumes.
	if _, err := NewServer(Config{Store: store, Cells: testCells(4), ScaleName: "quick"}); err != nil {
		t.Fatalf("matching resume refused: %v", err)
	}
}

func TestWedgedCellIsSurrenderedAndParked(t *testing.T) {
	const n, wedged = 8, 3
	dir := t.TempDir()
	srv, hs := startServer(t, dir, n, Config{LeaseTTL: 5 * time.Second, MaxRetries: 2, BatchSize: n})

	block := make(chan struct{})
	defer close(block)
	compute := func(i int) cellRec {
		if i == wedged {
			<-block // no cancellation points, like a wedged simulation
		}
		return computeCellRec(i)
	}
	stats, err := RunWorker(context.Background(), WorkerConfig{
		Client:       fastClient(hs.URL, "w"),
		RunPass:      passRunner(n, compute),
		CellTimeout:  30 * time.Millisecond,
		PollInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("worker must survive a wedged cell, got %v", err)
	}
	if stats.Surrendered != 2 {
		t.Fatalf("surrendered %d times, want 2 (the retry budget)", stats.Surrendered)
	}
	st := srv.Status()
	if !st.SweepDone || st.Complete {
		t.Fatalf("status = %+v, want settled but incomplete", st)
	}
	if st.Done != n-1 || st.Failed != 1 {
		t.Fatalf("done=%d failed=%d, want %d/1", st.Done, st.Failed, n-1)
	}
	if len(st.FailedList) != 1 || st.FailedList[0].Key.Cell != wedged {
		t.Fatalf("FailedList = %+v, want cell %d", st.FailedList, wedged)
	}
	if !strings.Contains(st.FailedList[0].LastError, "timeout") {
		t.Fatalf("failure reason %q does not mention the timeout", st.FailedList[0].LastError)
	}

	// A late successful ingest un-poisons the parked cell and the sweep
	// completes.
	raw, err := results.EncodeRecord(testCells(n)[wedged], computeCellRec(wedged))
	if err != nil {
		t.Fatal(err)
	}
	c := fastClient(hs.URL, "healer")
	if _, err := c.Ingest(context.Background(), testCells(n)[wedged], raw); err != nil {
		t.Fatal(err)
	}
	if st := srv.Status(); !st.Complete || st.Failed != 0 {
		t.Fatalf("status after healing ingest = %+v", st)
	}
}

func TestIngestRejectsForeignAndMalformedRecords(t *testing.T) {
	const n = 3
	_, hs := startServer(t, t.TempDir(), n, Config{})
	c := fastClient(hs.URL, "w")

	// A cell outside the sweep: permanent rejection, no retries eating
	// the clock (409 is not retryable).
	foreign := results.Spec{Experiment: "other", Schema: 9, Scale: "x"}.Key(0)
	raw, err := results.EncodeRecord(foreign, cellRec{})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Ingest(context.Background(), foreign, raw); err == nil {
		t.Fatal("foreign ingest accepted")
	}
	if time.Since(start) > time.Second {
		t.Fatal("permanent rejection was retried")
	}

	// A malformed envelope for an in-sweep cell: rejected, cell stays
	// pending.
	k := testCells(n)[0]
	if _, err := c.Ingest(context.Background(), k, []byte("{not json")); err == nil {
		t.Fatal("malformed ingest accepted")
	}
}

func TestClientRetriesUntilServerComesBack(t *testing.T) {
	// The first 4 exchanges fail at the transport; the worker's RPC
	// succeeds anyway within its attempt budget.
	var n int
	var mu sync.Mutex
	_, hs := startServer(t, t.TempDir(), 2, Config{})
	c := fastClient(hs.URL, "w")
	c.HTTP = &http.Client{Transport: roundTripFunc(func(req *http.Request) (*http.Response, error) {
		mu.Lock()
		n++
		attempt := n
		mu.Unlock()
		if attempt <= 4 {
			return nil, fmt.Errorf("injected: coordinator restarting")
		}
		return http.DefaultTransport.RoundTrip(req)
	})}
	info, err := c.Sweep(context.Background())
	if err != nil {
		t.Fatalf("Sweep through outage: %v", err)
	}
	if info.TotalCells != 2 {
		t.Fatalf("info = %+v", info)
	}
	// A cancelled context stops the retry loop promptly.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hs.Close()
	if _, err := c.Sweep(ctx); err == nil {
		t.Fatal("Sweep with cancelled context succeeded")
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
