package coord

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/results"
)

// claimSet is the worker's live view of its leases: the Claims gate a
// catalog pass consults per cell, shrunk when heartbeats report theft
// and as uploads complete. Safe for concurrent use (pool workers and
// the heartbeat goroutine touch it together).
type claimSet struct {
	mu   sync.Mutex
	live map[results.Key]bool
}

func newClaimSet(cells []results.Key) *claimSet {
	s := &claimSet{live: make(map[results.Key]bool, len(cells))}
	for _, k := range cells {
		s.live[k] = true
	}
	return s
}

// Covers is the results.Session.Claims gate.
func (s *claimSet) Covers(k results.Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.live[k]
}

// Lose drops stolen leases — their cells stop being claimed (and so
// stop being computed) immediately.
func (s *claimSet) Lose(keys []results.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		delete(s.live, k)
	}
}

// MarkDone retires an uploaded cell.
func (s *claimSet) MarkDone(k results.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.live, k)
}

// Remaining lists the cells still held — what a finishing pass
// heartbeats for, and what it releases when it ends.
func (s *claimSet) Remaining() []results.Key {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]results.Key, 0, len(s.live))
	for k := range s.live {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		return a.Cell < b.Cell
	})
	return out
}

// uploadSink adapts the client's Ingest RPC to results.Sink: encode
// the record, upload with retries, retire the claim. It counts uploads
// and duplicates for the worker's pass report.
type uploadSink struct {
	ctx    context.Context
	client *Client
	claims *claimSet

	mu         sync.Mutex
	uploaded   int
	duplicates int
	sweepDone  bool
}

// Put implements results.Sink.
func (u *uploadSink) Put(k results.Key, v any) error {
	raw, err := results.EncodeRecord(k, v)
	if err != nil {
		return err
	}
	resp, err := u.client.Ingest(u.ctx, k, raw)
	if err != nil {
		return err
	}
	u.claims.MarkDone(k)
	u.mu.Lock()
	u.uploaded++
	if resp.Duplicate {
		u.duplicates++
	}
	if resp.SweepDone {
		u.sweepDone = true
	}
	u.mu.Unlock()
	return nil
}

// sawSweepDone reports whether any ingest response announced the sweep
// settled — often this worker's own final upload. The lease loop exits
// on it instead of racing one more claim against a coordinator that may
// be shutting down under -exit-when-done.
func (u *uploadSink) sawSweepDone() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.sweepDone
}

// WorkerConfig parameterizes RunWorker.
type WorkerConfig struct {
	// Client talks to the coordinator. Required.
	Client *Client
	// RunPass executes one catalog pass under the given session: every
	// cell the session's Claims gate covers must be computed (or served
	// from the session's store) and delivered to the session's Sink.
	// ecfbench wires experiments.RunCatalog here; tests wire a fake
	// catalog. A returned error aborts the pass (remaining leases are
	// released); a *results.CellTimeoutError releases the wedged cell
	// as failed and the worker carries on. Required.
	RunPass func(ses *results.Session) error
	// Store optionally caches records locally (a worker's -cache-dir):
	// cells it already holds are served from it and still uploaded.
	Store *results.Store
	// CellTimeout bounds each computed cell (see
	// results.Session.CellTimeout). Zero: no deadline.
	CellTimeout time.Duration
	// BatchSize overrides the server's suggested claim size.
	BatchSize int
	// PollInterval is the idle wait when everything pending is leased
	// elsewhere. Zero: min(LeaseTTL/2, 2s).
	PollInterval time.Duration
	// Logf receives pass-level progress; nil discards.
	Logf func(format string, args ...any)
}

// WorkerStats summarizes a worker's run.
type WorkerStats struct {
	// Passes counts claim->compute->upload rounds.
	Passes int
	// Claimed, Uploaded, Duplicates, Lost, Surrendered count cells.
	Claimed     int
	Uploaded    int
	Duplicates  int
	Lost        int
	Surrendered int
}

// RunWorker drives the lease loop until the coordinator reports the
// sweep settled (or ctx is cancelled): claim a batch, heartbeat it in
// the background, compute-and-upload through RunPass, release whatever
// remains, repeat. Lease theft shrinks the live claim set mid-pass;
// cell timeouts surrender the wedged cell as a failure and continue.
func RunWorker(ctx context.Context, cfg WorkerConfig) (WorkerStats, error) {
	var stats WorkerStats
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	info, err := cfg.Client.Sweep(ctx)
	if err != nil {
		return stats, err
	}
	ttl := time.Duration(info.LeaseTTLMs) * time.Millisecond
	poll := cfg.PollInterval
	if poll <= 0 {
		poll = ttl / 2
		if poll > 2*time.Second {
			poll = 2 * time.Second
		}
		if poll <= 0 {
			poll = time.Second
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		resp, err := cfg.Client.Claim(ctx, cfg.BatchSize)
		if err != nil {
			return stats, err
		}
		if len(resp.Cells) == 0 {
			if resp.SweepDone {
				return stats, nil
			}
			// Everything pending is leased elsewhere; wait for leases
			// to resolve (finish or expire) and try again.
			select {
			case <-time.After(poll):
			case <-ctx.Done():
				return stats, ctx.Err()
			}
			continue
		}
		stats.Passes++
		stats.Claimed += len(resp.Cells)
		claims := newClaimSet(resp.Cells)
		sink := &uploadSink{ctx: ctx, client: cfg.Client, claims: claims}

		// Heartbeat the live claims at a third of the TTL until the
		// pass ends. A failed heartbeat is not fatal — the next one may
		// land, and losing the lease only costs duplicate work.
		hbCtx, stopHB := context.WithCancel(ctx)
		var hbWG sync.WaitGroup
		hbWG.Add(1)
		go func() {
			defer hbWG.Done()
			interval := ttl / 3
			if interval <= 0 {
				interval = time.Second
			}
			for {
				select {
				case <-hbCtx.Done():
					return
				case <-time.After(interval):
				}
				held := claims.Remaining()
				if len(held) == 0 {
					continue
				}
				hb, err := cfg.Client.Heartbeat(hbCtx, held)
				if err != nil {
					continue
				}
				if len(hb.Lost) > 0 {
					claims.Lose(hb.Lost)
					logf("lost %d leases (stolen); dropping them mid-pass", len(hb.Lost))
				}
			}
		}()

		ses := &results.Session{
			Store:       cfg.Store,
			Claims:      claims.Covers,
			Sink:        sink,
			CellTimeout: cfg.CellTimeout,
		}
		passErr := cfg.RunPass(ses)
		stopHB()
		hbWG.Wait()

		stats.Uploaded += sink.uploaded
		stats.Duplicates += sink.duplicates

		var timeout *results.CellTimeoutError
		if passErr != nil && errors.As(passErr, &timeout) {
			// Surrender the wedged cell as a failure; the coordinator
			// retries it elsewhere up to its budget.
			stats.Surrendered++
			claims.Lose([]results.Key{timeout.Key})
			if _, rerr := cfg.Client.Release(ctx, []results.Key{timeout.Key}, true, timeout.Error()); rerr != nil {
				logf("failed to report surrendered cell: %v", rerr)
			}
			passErr = nil
		}
		// Return whatever the pass did not finish — aborted by an
		// error, skipped after theft already removed it, or simply not
		// reached before a timeout abort.
		if rest := claims.Remaining(); len(rest) > 0 {
			stats.Lost += len(rest)
			if _, rerr := cfg.Client.Release(ctx, rest, false, ""); rerr != nil {
				logf("failed to release %d unfinished cells (their leases will expire): %v", len(rest), rerr)
			}
		}
		if passErr != nil {
			return stats, passErr
		}
		logf("pass %d: claimed %d, uploaded %d (%d duplicate)", stats.Passes, len(resp.Cells), sink.uploaded, sink.duplicates)
		if sink.sawSweepDone() {
			return stats, nil
		}
	}
}
