package dash

import (
	"math"
	"time"

	"repro/internal/mptcp"
	"repro/internal/sim"
)

// PlayerConfig parameterizes a streaming session.
type PlayerConfig struct {
	// Ladder is the available representation set (default StandardLadder).
	Ladder []Representation
	// ChunkSeconds is the chunk duration (default 5, as in §5.1).
	ChunkSeconds float64
	// VideoSeconds is the total content length (the paper streams a 20
	// minute playout; benches use shorter clips).
	VideoSeconds float64
	// MaxBufferSec is the playback buffer cap that produces the OFF
	// periods (default 30).
	MaxBufferSec float64
	// StartPlaySec is the buffer level at which playback starts during
	// initial buffering (default 10).
	StartPlaySec float64
	// ResumePlaySec is the refill level that ends a rebuffering stall
	// (default 10).
	ResumePlaySec float64
	// ABR is the adaptation algorithm (default NewRateABR()).
	ABR ABR
}

func (c *PlayerConfig) fillDefaults() {
	if c.Ladder == nil {
		c.Ladder = StandardLadder
	}
	if c.ChunkSeconds <= 0 {
		c.ChunkSeconds = 5
	}
	if c.VideoSeconds <= 0 {
		c.VideoSeconds = 120
	}
	if c.MaxBufferSec <= 0 {
		c.MaxBufferSec = 30
	}
	if c.StartPlaySec <= 0 {
		c.StartPlaySec = 10
	}
	if c.ResumePlaySec <= 0 {
		c.ResumePlaySec = 10
	}
	if c.ABR == nil {
		// The paper's client uses the buffer-based algorithm of Huang et
		// al. [12]; it is the default here too. Rate-based ABR is
		// available for ablations.
		c.ABR = NewBBAABR()
	}
}

// Player is the DASH client state machine (§2.2): initial buffering,
// steady ON-OFF fetching against a capped playback buffer, and
// rebuffering stalls when the buffer runs dry.
type Player struct {
	eng  *sim.Engine
	conn *mptcp.Conn
	cfg  PlayerConfig

	state       PlayerState
	bufferSec   float64
	lastUpdate  sim.Time
	playing     bool
	stallBegin  sim.Time
	nextChunk   int
	totalChunks int
	cumBytes    int64

	result Result
	done   func(*Result)
}

// NewPlayer builds a player over an established MPTCP connection.
func NewPlayer(eng *sim.Engine, conn *mptcp.Conn, cfg PlayerConfig) *Player {
	cfg.fillDefaults()
	total := int(math.Ceil(cfg.VideoSeconds / cfg.ChunkSeconds))
	if total < 1 {
		total = 1
	}
	return &Player{eng: eng, conn: conn, cfg: cfg, totalChunks: total}
}

// State returns the current phase.
func (p *Player) State() PlayerState { return p.state }

// BufferSeconds returns the playback buffer level, accounting for
// playback drain since the last event.
func (p *Player) BufferSeconds() float64 {
	buf := p.bufferSec
	if p.playing {
		buf -= (p.eng.Now() - p.lastUpdate).Seconds()
		if buf < 0 {
			buf = 0
		}
	}
	return buf
}

// Result returns the session telemetry collected so far.
func (p *Player) Result() *Result { return &p.result }

// Start begins the session; done (optional) fires when the last chunk has
// been downloaded.
func (p *Player) Start(done func(*Result)) {
	p.done = done
	p.lastUpdate = p.eng.Now()
	p.state = InitialBuffering
	p.requestNext()
}

// advanceBuffer applies playback drain up to now and detects stalls.
func (p *Player) advanceBuffer() {
	now := p.eng.Now()
	if p.playing {
		drain := (now - p.lastUpdate).Seconds()
		if drain >= p.bufferSec {
			// Ran dry some time between events: playback stalled at the
			// moment the buffer hit zero.
			stalledAt := p.lastUpdate + time.Duration(p.bufferSec*float64(time.Second))
			p.bufferSec = 0
			p.playing = false
			// Any dry buffer after playback has begun is a stall, even if
			// the session never completed its initial buffering.
			p.state = Rebuffering
			p.result.Rebuffers++
			p.stallBegin = stalledAt
		} else {
			p.bufferSec -= drain
		}
	}
	p.lastUpdate = now
}

// requestNext issues the next chunk request via the ABR.
// kindPlayerRequest dispatches the end of an ON-OFF pause through the
// typed event table.
var kindPlayerRequest sim.EventKind

func init() {
	kindPlayerRequest = sim.RegisterKind("dash.Player.requestNext", func(a any) { a.(*Player).requestNext() })
}

func (p *Player) requestNext() {
	p.advanceBuffer()
	if p.nextChunk >= p.totalChunks {
		return
	}
	idx := p.cfg.ABR.Choose(p)
	rep := p.cfg.Ladder[idx]
	bytes := ChunkBytes(rep, p.cfg.ChunkSeconds)
	chunkIdx := p.nextChunk
	p.nextChunk++
	p.conn.Request(bytes, func(tr *mptcp.Transfer) {
		p.onChunkDone(chunkIdx, rep, bytes, tr)
	})
}

// onChunkDone folds in a completed chunk and decides when to fetch the
// next one (immediately, or after an OFF period).
func (p *Player) onChunkDone(idx int, rep Representation, bytes int64, tr *mptcp.Transfer) {
	p.advanceBuffer()
	now := p.eng.Now()

	rec := ChunkRecord{
		Index:       idx,
		Rep:         rep,
		Bytes:       bytes,
		RequestedAt: tr.RequestedAt,
		CompletedAt: now,
	}
	if dur := tr.Duration().Seconds(); dur > 0 {
		rec.ThroughputMbps = float64(bytes) * 8 / dur / 1e6
	}
	if diff, ok := tr.LastPacketTimeDiff(0, 1); ok {
		rec.LastPacketDiff = diff
		rec.BothPaths = true
	}
	p.result.Chunks = append(p.result.Chunks, rec)
	p.cumBytes += bytes
	p.result.DownloadTrace = append(p.result.DownloadTrace, TracePoint{At: now, Bytes: p.cumBytes})

	p.bufferSec += p.cfg.ChunkSeconds

	// Playback start / stall resume.
	if !p.playing {
		threshold := p.cfg.StartPlaySec
		if p.state == Rebuffering {
			threshold = p.cfg.ResumePlaySec
		}
		if p.bufferSec >= threshold || p.nextChunk >= p.totalChunks {
			if p.state == Rebuffering {
				p.result.StallTime += now - p.stallBegin
				p.state = Steady
			}
			p.playing = true
		}
	}
	if p.state == InitialBuffering && p.bufferSec >= p.cfg.MaxBufferSec {
		p.state = Steady
	}

	if p.nextChunk >= p.totalChunks {
		p.state = Finished
		if p.done != nil {
			p.done(&p.result)
		}
		return
	}

	// ON-OFF: if fetching the next chunk would overflow the buffer, pause
	// until enough playback has been consumed (§2.2, Figure 1).
	if p.bufferSec+p.cfg.ChunkSeconds > p.cfg.MaxBufferSec && p.playing {
		offSec := p.bufferSec + p.cfg.ChunkSeconds - p.cfg.MaxBufferSec
		p.eng.ScheduleEvent(time.Duration(offSec*float64(time.Second)), kindPlayerRequest, p)
		return
	}
	p.requestNext()
}
