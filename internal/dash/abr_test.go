package dash

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// playerWithHistory builds a bare player carrying synthetic chunk
// telemetry for ABR unit tests.
func playerWithHistory(buffer float64, throughputs ...float64) *Player {
	p := &Player{cfg: PlayerConfig{Ladder: StandardLadder, MaxBufferSec: 30}}
	p.bufferSec = buffer
	for i, tp := range throughputs {
		p.result.Chunks = append(p.result.Chunks, ChunkRecord{Index: i, ThroughputMbps: tp})
	}
	return p
}

func TestRateABRFirstChunkConservative(t *testing.T) {
	a := NewRateABR()
	p := playerWithHistory(0)
	if idx := a.Choose(p); idx != 0 {
		t.Fatalf("first chunk index = %d, want 0 (lowest)", idx)
	}
}

func TestRateABRTracksThroughput(t *testing.T) {
	a := NewRateABR()
	p := playerWithHistory(20, 10, 10, 10, 10, 10)
	var idx int
	for i := 0; i < 5; i++ { // converge the EWMA
		idx = a.Choose(p)
	}
	// 10 Mbps × 0.85 = 8.5 ⇒ 1080p (8.47) sustainable.
	if StandardLadder[idx].Name != "1080p" {
		t.Fatalf("steady 10 Mbps picked %s, want 1080p", StandardLadder[idx].Name)
	}
}

func TestRateABRPanicsToLowestOnEmptyBuffer(t *testing.T) {
	a := NewRateABR()
	p := playerWithHistory(2, 10, 10, 10) // buffer below panic threshold
	if idx := a.Choose(p); idx != 0 {
		t.Fatalf("panic region picked %d, want 0", idx)
	}
}

func TestRateABRSafetyFactor(t *testing.T) {
	a := NewRateABR()
	a.EWMAWeight = 1 // estimate = last sample exactly
	// 4.5 Mbps measured × 0.85 = 3.83 ⇒ 360p (1.0) < x < 760p(4.14)?
	// Highest at most 3.83 is 480p (1.60).
	p := playerWithHistory(20, 4.5)
	if idx := a.Choose(p); StandardLadder[idx].Name != "480p" {
		t.Fatalf("4.5 Mbps picked %s, want 480p", StandardLadder[idx].Name)
	}
}

func TestRateABRName(t *testing.T) {
	if NewRateABR().Name() != "rate" || NewBBAABR().Name() != "bba" || (&FixedABR{}).Name() != "fixed" {
		t.Fatal("ABR name mismatch")
	}
}

func TestBBACushionOverride(t *testing.T) {
	a := NewBBAABR()
	a.CushionSec = 12
	p := playerWithHistory(15)
	if idx := a.Choose(p); idx != len(StandardLadder)-1 {
		t.Fatalf("above explicit cushion picked %d, want top", idx)
	}
}

func TestPlayerBufferDrainsWhilePlaying(t *testing.T) {
	// White-box: BufferSeconds accounts for elapsed playback since the
	// last event.
	net := newTestEngine()
	p := &Player{eng: net, cfg: PlayerConfig{Ladder: StandardLadder, MaxBufferSec: 30}}
	p.bufferSec = 10
	p.playing = true
	p.lastUpdate = net.Now()
	net.RunUntil(net.Now() + 4*time.Second)
	if got := p.BufferSeconds(); got < 5.9 || got > 6.1 {
		t.Fatalf("buffer = %.2f after 4 s playback, want ~6", got)
	}
}

// newTestEngine returns a fresh simulation engine for white-box tests.
func newTestEngine() *sim.Engine { return sim.New() }
