// Package dash models Dynamic Adaptive Streaming over HTTP (§2.2): a
// chunked video ladder, adaptive bit-rate selection, and the client
// player buffer state machine whose ON-OFF request pattern produces the
// idle periods — and consequent congestion-window resets — at the heart
// of the paper's analysis.
package dash

import (
	"fmt"
	"time"
)

// Representation is one encoding of the video (paper Table 1).
type Representation struct {
	// Name is the resolution label ("1080p").
	Name string
	// Mbps is the encoding bit rate in megabits per second.
	Mbps float64
}

// StandardLadder reproduces paper Table 1: the six YouTube-style
// representations from 144p to 1080p.
var StandardLadder = []Representation{
	{Name: "144p", Mbps: 0.26},
	{Name: "240p", Mbps: 0.64},
	{Name: "360p", Mbps: 1.00},
	{Name: "480p", Mbps: 1.60},
	{Name: "760p", Mbps: 4.14},
	{Name: "1080p", Mbps: 8.47},
}

// RegulatedBandwidthsMbps are the tc settings of §3.1/§5: "slightly
// larger than those listed in Table 1, to ensure there is sufficient
// bandwidth for that video encoding."
var RegulatedBandwidthsMbps = []float64{0.3, 0.7, 1.1, 1.7, 4.2, 8.6}

// IdealBitrateMbps returns the paper's definition of the ideal average
// bit rate for a streaming workload: the minimum of the aggregate
// bandwidth and the top representation's rate (§3.1).
func IdealBitrateMbps(aggregateBandwidthMbps float64, ladder []Representation) float64 {
	top := ladder[len(ladder)-1].Mbps
	if aggregateBandwidthMbps < top {
		return aggregateBandwidthMbps
	}
	return top
}

// HighestSustainable returns the index of the best representation whose
// rate does not exceed the given bandwidth (at least index 0).
func HighestSustainable(ladder []Representation, mbps float64) int {
	best := 0
	for i, r := range ladder {
		if r.Mbps <= mbps {
			best = i
		}
	}
	return best
}

// ChunkBytes returns the size of one chunk of the given representation.
func ChunkBytes(r Representation, chunkSeconds float64) int64 {
	b := int64(r.Mbps * 1e6 * chunkSeconds / 8)
	if b < 1 {
		b = 1
	}
	return b
}

// PlayerState is the player's buffer state machine phase.
type PlayerState int

const (
	// InitialBuffering: filling the buffer before/at session start.
	InitialBuffering PlayerState = iota
	// Steady: ON-OFF chunk fetching with playback running.
	Steady
	// Rebuffering: playback stalled, refilling to the resume threshold.
	Rebuffering
	// Finished: all chunks downloaded.
	Finished
)

func (s PlayerState) String() string {
	switch s {
	case InitialBuffering:
		return "initial-buffering"
	case Steady:
		return "steady"
	case Rebuffering:
		return "rebuffering"
	case Finished:
		return "finished"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ChunkRecord captures one chunk download.
type ChunkRecord struct {
	Index          int
	Rep            Representation
	Bytes          int64
	RequestedAt    time.Duration
	CompletedAt    time.Duration
	ThroughputMbps float64
	// LastPacketDiff is the time difference between the last packets on
	// the two subflows for this chunk (Figure 5); valid when BothPaths.
	LastPacketDiff time.Duration
	BothPaths      bool
}

// Result aggregates a streaming session.
type Result struct {
	Chunks        []ChunkRecord
	Rebuffers     int
	StallTime     time.Duration
	DownloadTrace []TracePoint // cumulative bytes over time (Figure 1)
}

// TracePoint is one cumulative-download sample.
type TracePoint struct {
	At    time.Duration
	Bytes int64
}

// AvgBitrateMbps returns the mean encoding rate over downloaded chunks —
// the paper's "average video bit rate".
func (r *Result) AvgBitrateMbps() float64 {
	if len(r.Chunks) == 0 {
		return 0
	}
	var sum float64
	for _, c := range r.Chunks {
		sum += c.Rep.Mbps
	}
	return sum / float64(len(r.Chunks))
}

// AvgThroughputMbps returns the mean per-chunk download throughput — the
// "measured throughput" of Figures 6 and 16.
func (r *Result) AvgThroughputMbps() float64 {
	if len(r.Chunks) == 0 {
		return 0
	}
	var sum float64
	for _, c := range r.Chunks {
		sum += c.ThroughputMbps
	}
	return sum / float64(len(r.Chunks))
}

// ChunkThroughputsMbps returns the per-chunk series (Figure 17).
func (r *Result) ChunkThroughputsMbps() []float64 {
	out := make([]float64, len(r.Chunks))
	for i, c := range r.Chunks {
		out[i] = c.ThroughputMbps
	}
	return out
}

// LastPacketDiffs returns the per-chunk last-packet time differences
// where both paths carried data (Figure 5).
func (r *Result) LastPacketDiffs() []time.Duration {
	var out []time.Duration
	for _, c := range r.Chunks {
		if c.BothPaths {
			out = append(out, c.LastPacketDiff)
		}
	}
	return out
}
