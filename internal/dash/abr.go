package dash

// ABR selects the representation for the next chunk.
type ABR interface {
	// Name identifies the algorithm.
	Name() string
	// Choose returns the ladder index for the next chunk given the
	// current player state.
	Choose(p *Player) int
}

// RateABR is throughput-based adaptation: an EWMA of per-chunk download
// throughput scaled by a safety factor, with a buffer floor that falls
// back to the lowest representation when the buffer is nearly empty.
//
// This is the adaptation loop that transmits the scheduler's efficiency
// into video quality: when the path scheduler under-utilizes the fast
// path, measured chunk throughput drops and the client selects a lower
// bit rate than the aggregate bandwidth could sustain — the effect behind
// Figure 2.
type RateABR struct {
	// Safety scales the throughput estimate (default 0.85).
	Safety float64
	// EWMAWeight is the weight of the newest sample (default 0.4).
	EWMAWeight float64
	// PanicBufferSec: below this buffer level pick the lowest rate.
	PanicBufferSec float64

	estimate float64 // Mbps
}

// NewRateABR returns the default throughput-based ABR.
func NewRateABR() *RateABR {
	return &RateABR{Safety: 0.85, EWMAWeight: 0.4, PanicBufferSec: 6}
}

// Name implements ABR.
func (*RateABR) Name() string { return "rate" }

// Choose implements ABR.
func (a *RateABR) Choose(p *Player) int {
	if n := len(p.result.Chunks); n > 0 {
		last := p.result.Chunks[n-1].ThroughputMbps
		if a.estimate == 0 {
			a.estimate = last
		} else {
			a.estimate = a.estimate*(1-a.EWMAWeight) + last*a.EWMAWeight
		}
	}
	if p.BufferSeconds() < a.PanicBufferSec && len(p.result.Chunks) > 0 {
		return 0
	}
	if a.estimate == 0 {
		return 0 // first chunk: start conservative, like real players
	}
	return HighestSustainable(p.cfg.Ladder, a.estimate*a.Safety)
}

// BBAABR is the buffer-based algorithm of Huang et al. (SIGCOMM'14),
// which the paper's client uses ([12]): a linear map from buffer level to
// rate between a reservoir and a cushion.
type BBAABR struct {
	// ReservoirSec below which the lowest rate is used (default 8).
	ReservoirSec float64
	// CushionSec above which the highest rate is used (default 0.8 of
	// the max buffer at Choose time).
	CushionSec float64
}

// NewBBAABR returns a buffer-based ABR with default thresholds.
func NewBBAABR() *BBAABR { return &BBAABR{ReservoirSec: 8} }

// Name implements ABR.
func (*BBAABR) Name() string { return "bba" }

// Choose implements ABR.
func (a *BBAABR) Choose(p *Player) int {
	buf := p.BufferSeconds()
	cushion := a.CushionSec
	if cushion <= 0 {
		cushion = 0.8 * p.cfg.MaxBufferSec
	}
	ladder := p.cfg.Ladder
	if buf <= a.ReservoirSec {
		return 0
	}
	if buf >= cushion {
		return len(ladder) - 1
	}
	frac := (buf - a.ReservoirSec) / (cushion - a.ReservoirSec)
	lo := ladder[0].Mbps
	hi := ladder[len(ladder)-1].Mbps
	target := lo + frac*(hi-lo)
	return HighestSustainable(ladder, target)
}

// FixedABR always picks the same index; used by tests and by experiments
// that need a constant-rate stream.
type FixedABR struct {
	// Index is the ladder index to pick (clamped).
	Index int
}

// Name implements ABR.
func (*FixedABR) Name() string { return "fixed" }

// Choose implements ABR.
func (a *FixedABR) Choose(p *Player) int {
	i := a.Index
	if i < 0 {
		i = 0
	}
	if i >= len(p.cfg.Ladder) {
		i = len(p.cfg.Ladder) - 1
	}
	return i
}
