package dash

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
)

func TestStandardLadderMatchesTable1(t *testing.T) {
	want := map[string]float64{
		"144p": 0.26, "240p": 0.64, "360p": 1.00,
		"480p": 1.60, "760p": 4.14, "1080p": 8.47,
	}
	if len(StandardLadder) != 6 {
		t.Fatalf("ladder size = %d, want 6", len(StandardLadder))
	}
	for _, r := range StandardLadder {
		if want[r.Name] != r.Mbps {
			t.Fatalf("%s = %v Mbps, want %v", r.Name, r.Mbps, want[r.Name])
		}
	}
	for i := 1; i < len(StandardLadder); i++ {
		if StandardLadder[i].Mbps <= StandardLadder[i-1].Mbps {
			t.Fatal("ladder must be ascending")
		}
	}
}

func TestIdealBitrate(t *testing.T) {
	// Paper example: 8.6+8.6 aggregate → ideal 8.47 (the 1080p cap);
	// 0.3+8.6 → ideal 8.9 capped at 8.47? No: 8.9 > 8.47 so cap.
	if got := IdealBitrateMbps(17.2, StandardLadder); got != 8.47 {
		t.Fatalf("ideal(17.2) = %v, want 8.47", got)
	}
	if got := IdealBitrateMbps(2.0, StandardLadder); got != 2.0 {
		t.Fatalf("ideal(2.0) = %v, want 2.0", got)
	}
}

func TestHighestSustainable(t *testing.T) {
	if i := HighestSustainable(StandardLadder, 0.1); i != 0 {
		t.Fatalf("0.1 Mbps → index %d, want 0", i)
	}
	if i := HighestSustainable(StandardLadder, 1.7); i != 3 {
		t.Fatalf("1.7 Mbps → index %d, want 3 (480p)", i)
	}
	if i := HighestSustainable(StandardLadder, 100); i != 5 {
		t.Fatalf("100 Mbps → index %d, want 5", i)
	}
}

func TestChunkBytes(t *testing.T) {
	// 1080p, 5 s: 8.47 Mbps ⇒ 8.47e6*5/8 bytes.
	if got := ChunkBytes(StandardLadder[5], 5); got != int64(8.47e6*5/8) {
		t.Fatalf("chunk bytes = %d", got)
	}
	if got := ChunkBytes(Representation{Mbps: 0}, 5); got != 1 {
		t.Fatalf("degenerate chunk = %d, want 1", got)
	}
}

func TestFixedABRClamps(t *testing.T) {
	p := &Player{cfg: PlayerConfig{Ladder: StandardLadder}}
	if i := (&FixedABR{Index: -3}).Choose(p); i != 0 {
		t.Fatalf("clamp low = %d", i)
	}
	if i := (&FixedABR{Index: 99}).Choose(p); i != 5 {
		t.Fatalf("clamp high = %d", i)
	}
}

func TestBBAABRRegions(t *testing.T) {
	p := &Player{cfg: PlayerConfig{Ladder: StandardLadder, MaxBufferSec: 30}}
	a := NewBBAABR()
	p.bufferSec = 2 // below reservoir
	if i := a.Choose(p); i != 0 {
		t.Fatalf("reservoir region picked %d, want 0", i)
	}
	p.bufferSec = 29 // above cushion (24)
	if i := a.Choose(p); i != 5 {
		t.Fatalf("cushion region picked %d, want 5", i)
	}
	p.bufferSec = 16 // mid: monotone between
	mid := a.Choose(p)
	if mid <= 0 || mid >= 5 {
		t.Fatalf("mid region picked %d, want interior", mid)
	}
}

func TestBBAABRMonotoneInBuffer(t *testing.T) {
	if err := quick.Check(func(b1, b2 uint8) bool {
		lo, hi := float64(b1%31), float64(b2%31)
		if lo > hi {
			lo, hi = hi, lo
		}
		p := &Player{cfg: PlayerConfig{Ladder: StandardLadder, MaxBufferSec: 30}}
		a := NewBBAABR()
		p.bufferSec = lo
		iLo := a.Choose(p)
		p.bufferSec = hi
		iHi := a.Choose(p)
		return iLo <= iHi
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// stream runs a full session on a two-path network and returns the result.
func stream(t *testing.T, schedName string, wifiMbps, lteMbps float64, cfg PlayerConfig) *Result {
	t.Helper()
	net := core.NewNetwork(core.DefaultPaths(wifiMbps, lteMbps))
	conn := net.NewConn(core.ConnOptions{Scheduler: schedName})
	p := NewPlayer(net.Engine(), conn, cfg)
	var out *Result
	p.Start(func(r *Result) { out = r })
	net.RunAll()
	if out == nil {
		t.Fatalf("stream(%s) did not finish", schedName)
	}
	return out
}

func TestStreamingSessionCompletes(t *testing.T) {
	res := stream(t, "minrtt", 4.2, 4.2, PlayerConfig{VideoSeconds: 60})
	if len(res.Chunks) != 12 {
		t.Fatalf("chunks = %d, want 12", len(res.Chunks))
	}
	if res.AvgBitrateMbps() <= 0 {
		t.Fatal("no bitrate recorded")
	}
	if len(res.DownloadTrace) != len(res.Chunks) {
		t.Fatal("download trace should have one point per chunk")
	}
}

func TestHighBandwidthReachesTopRate(t *testing.T) {
	res := stream(t, "ecf", 8.6, 8.6, PlayerConfig{VideoSeconds: 120})
	// Skip the adaptation warm-up: the steady tail should be 1080p.
	tail := res.Chunks[len(res.Chunks)/2:]
	top := 0
	for _, c := range tail {
		if c.Rep.Name == "1080p" {
			top++
		}
	}
	if frac := float64(top) / float64(len(tail)); frac < 0.8 {
		t.Fatalf("1080p fraction in steady tail = %.2f, want >= 0.8", frac)
	}
}

func TestLowBandwidthStaysLow(t *testing.T) {
	res := stream(t, "minrtt", 0.3, 0.3, PlayerConfig{VideoSeconds: 60})
	if br := res.AvgBitrateMbps(); br > 0.7 {
		t.Fatalf("avg bitrate %v Mbps on 0.6 Mbps aggregate, want <= 0.7", br)
	}
}

func TestOnOffPatternHasGaps(t *testing.T) {
	// With ample bandwidth the player must exhibit OFF periods: gaps of
	// roughly the chunk duration between steady-state requests (Figure 1).
	res := stream(t, "ecf", 8.6, 8.6, PlayerConfig{VideoSeconds: 120})
	var gaps int
	for i := len(res.Chunks) / 2; i < len(res.Chunks); i++ {
		gap := res.Chunks[i].RequestedAt - res.Chunks[i-1].CompletedAt
		if gap > time.Second {
			gaps++
		}
	}
	if gaps == 0 {
		t.Fatal("no OFF periods observed in steady state")
	}
}

func TestECFBitrateAtLeastDefaultHeterogeneous(t *testing.T) {
	cfg := PlayerConfig{VideoSeconds: 120}
	def := stream(t, "minrtt", 0.3, 8.6, cfg)
	ecf := stream(t, "ecf", 0.3, 8.6, cfg)
	if ecf.AvgBitrateMbps() < def.AvgBitrateMbps() {
		t.Fatalf("ecf bitrate %.2f < default %.2f under heterogeneity",
			ecf.AvgBitrateMbps(), def.AvgBitrateMbps())
	}
}

func TestPlayerStateString(t *testing.T) {
	for s, want := range map[PlayerState]string{
		InitialBuffering: "initial-buffering",
		Steady:           "steady",
		Rebuffering:      "rebuffering",
		Finished:         "finished",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}

func TestResultAggregates(t *testing.T) {
	r := &Result{Chunks: []ChunkRecord{
		{Rep: Representation{Mbps: 2}, ThroughputMbps: 4, BothPaths: true, LastPacketDiff: time.Second},
		{Rep: Representation{Mbps: 4}, ThroughputMbps: 8},
	}}
	if r.AvgBitrateMbps() != 3 {
		t.Fatalf("avg bitrate = %v", r.AvgBitrateMbps())
	}
	if r.AvgThroughputMbps() != 6 {
		t.Fatalf("avg throughput = %v", r.AvgThroughputMbps())
	}
	if len(r.LastPacketDiffs()) != 1 {
		t.Fatal("LastPacketDiffs should include only both-path chunks")
	}
	if got := r.ChunkThroughputsMbps(); len(got) != 2 || got[1] != 8 {
		t.Fatalf("chunk throughputs = %v", got)
	}
}

// Regression: a player on a starved connection must stall, count a
// rebuffer, and still finish.
func TestRebufferingOnStarvedLink(t *testing.T) {
	net := core.NewNetwork(core.DefaultPaths(0.3, 0.3))
	conn := net.NewConn(core.ConnOptions{Scheduler: "minrtt"})
	// Force high-rate chunks over a starved link: fixed 480p (1.6 Mbps)
	// over 0.6 Mbps aggregate.
	p := NewPlayer(net.Engine(), conn, PlayerConfig{
		VideoSeconds: 60,
		ABR:          &FixedABR{Index: 3},
	})
	var out *Result
	p.Start(func(r *Result) { out = r })
	net.RunAll()
	if out == nil {
		t.Fatal("did not finish")
	}
	if out.Rebuffers == 0 || out.StallTime == 0 {
		t.Fatalf("rebuffers=%d stall=%v, want stalls on a starved link", out.Rebuffers, out.StallTime)
	}
}
