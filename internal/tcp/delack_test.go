package tcp

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// delackHarness builds a subflow with delayed ACKs enabled at the
// receiver.
func delackHarness(t *testing.T, total int64) *harness {
	t.Helper()
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 8e6, Delay: 10 * time.Millisecond, QueueBytes: 128 << 10},
		Config{Name: "p"}, total)
	h.rx.DelayedAcks = true
	return h
}

func TestDelayedAcksTransferStillCompletes(t *testing.T) {
	h := delackHarness(t, 1_000_000)
	h.pmp.fill()
	h.eng.Run()
	if h.rx.Expected() != 1_000_000 {
		t.Fatalf("received %d, want 1000000", h.rx.Expected())
	}
}

func TestDelayedAcksReduceAckCount(t *testing.T) {
	run := func(delayed bool) int64 {
		h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 8e6, Delay: 10 * time.Millisecond, QueueBytes: 128 << 10},
			Config{Name: "p"}, 2_000_000)
		h.rx.DelayedAcks = delayed
		h.pmp.fill()
		h.eng.Run()
		if h.rx.Expected() != 2_000_000 {
			t.Fatal("incomplete transfer")
		}
		return h.rx.AcksSent()
	}
	plain := run(false)
	delayed := run(true)
	if delayed >= plain {
		t.Fatalf("delayed acks sent %d >= plain %d", delayed, plain)
	}
	// RFC 1122 every-other-segment coalescing: roughly half the ACKs.
	if float64(delayed) > float64(plain)*0.75 {
		t.Fatalf("coalescing too weak: %d vs %d", delayed, plain)
	}
}

func TestDelayedAckTimerFliesSolo(t *testing.T) {
	// A single segment with no follow-up must still be acknowledged
	// (after the 40 ms delayed-ack timer).
	eng := sim.New()
	path := netsim.NewPath(eng, netsim.PathConfig{Name: "p", RateBps: 8e6, Delay: 5 * time.Millisecond, QueueBytes: 64 << 10})
	var acks []netsim.Packet
	rx := NewSubflowRecv(eng, path, &bigWindowSink{}, 60)
	rx.DelayedAcks = true
	path.SetForwardReceiver(rx.OnPacket)
	path.SetReverseReceiver(func(p *netsim.Packet) { acks = append(acks, *p) })
	rx.OnPacket(&netsim.Packet{Kind: netsim.Data, Size: 1460, Seq: 0, DSN: 0, PayloadLen: 1400})
	eng.Run()
	if len(acks) != 1 {
		t.Fatalf("acks = %d, want 1 (timer-driven)", len(acks))
	}
	if acks[0].AckSeq != 1400 {
		t.Fatalf("ack seq = %d, want 1400", acks[0].AckSeq)
	}
	if rx.AcksDelayed() != 1 {
		t.Fatalf("AcksDelayed = %d, want 1", rx.AcksDelayed())
	}
}

func TestDelayedAcksImmediateOnOutOfOrder(t *testing.T) {
	// RFC 5681: out-of-order arrivals must be acknowledged immediately so
	// the sender's dup-ACK machinery works.
	eng := sim.New()
	path := netsim.NewPath(eng, netsim.PathConfig{Name: "p", RateBps: 1e9})
	var acks []netsim.Packet
	rx := NewSubflowRecv(eng, path, &bigWindowSink{}, 60)
	rx.DelayedAcks = true
	path.SetForwardReceiver(rx.OnPacket)
	path.SetReverseReceiver(func(p *netsim.Packet) { acks = append(acks, *p) })
	// Hole at 0: seq 1400 arrives first.
	rx.OnPacket(&netsim.Packet{Kind: netsim.Data, Size: 1460, Seq: 1400, DSN: 1400, PayloadLen: 1400})
	if len(acks) != 0 {
		eng.Step()
	}
	eng.RunUntil(time.Millisecond) // far below the 40 ms delack timer
	if len(acks) != 1 {
		t.Fatalf("OOO arrival not acked immediately: %d acks", len(acks))
	}
	if !acks[0].SackHole {
		t.Fatal("OOO ack should signal the hole")
	}
}

func TestDelayedAcksLossRecoveryIntact(t *testing.T) {
	// Loss recovery must still work end-to-end with coalesced ACKs.
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 2e6, Delay: 20 * time.Millisecond, QueueBytes: 20_000},
		Config{Name: "p"}, 1_500_000)
	h.rx.DelayedAcks = true
	h.pmp.fill()
	h.eng.Run()
	if h.rx.Expected() != 1_500_000 {
		t.Fatalf("received %d, want 1500000", h.rx.Expected())
	}
	if h.sf.Stats().Retransmits == 0 {
		t.Fatal("expected retransmissions on the lossy path")
	}
}

var _ = cc.NewReno // keep import used if harness changes
