package tcp

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// bigWindowSink is a MetaSink that never limits the sender.
type bigWindowSink struct{ dataAck int64 }

func (m *bigWindowSink) OnData(p *netsim.Packet) (int64, int64) {
	if end := p.DSN + int64(p.PayloadLen); end > m.dataAck {
		m.dataAck = end
	}
	return m.dataAck, 1 << 40
}

func (m *bigWindowSink) Snapshot() (int64, int64) { return m.dataAck, 1 << 40 }

// pump drives a subflow like a single-subflow connection would: it pushes
// segments whenever the window opens until total bytes are sent.
type pump struct {
	sf      *Subflow
	total   int64
	sentDSN int64
	mss     int64
}

func (p *pump) SubflowAcked(s *Subflow, dataAck, window int64) { p.fill() }

func (p *pump) fill() {
	p.sf.PrepareSend()
	for p.sentDSN < p.total && p.sf.CanSend() {
		l := p.mss
		if p.total-p.sentDSN < l {
			l = p.total - p.sentDSN
		}
		p.sf.SendSegment(p.sentDSN, int(l))
		p.sentDSN += l
	}
}

// harness bundles one subflow + receiver over a fresh path.
type harness struct {
	eng  *sim.Engine
	path *netsim.Path
	sf   *Subflow
	rx   *SubflowRecv
	pmp  *pump
}

func newHarness(t *testing.T, pathCfg netsim.PathConfig, sfCfg Config, total int64) *harness {
	t.Helper()
	eng := sim.New()
	path := netsim.NewPath(eng, pathCfg)
	h := &harness{eng: eng, path: path}
	h.pmp = &pump{total: total, mss: 1400}
	if sfCfg.MSS != 0 {
		h.pmp.mss = int64(sfCfg.MSS)
	}
	h.sf = NewSubflow(eng, sfCfg, path, cc.NewReno(), h.pmp)
	h.pmp.sf = h.sf
	h.rx = NewSubflowRecv(eng, path, &bigWindowSink{}, 60)
	path.SetForwardReceiver(h.rx.OnPacket)
	path.SetReverseReceiver(h.sf.OnAck)
	return h
}

func TestTransferCompletes(t *testing.T) {
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 8e6, Delay: 10 * time.Millisecond, QueueBytes: 128 << 10},
		Config{Name: "p"}, 1_000_000)
	h.pmp.fill()
	h.eng.Run()
	if h.rx.Expected() != 1_000_000 {
		t.Fatalf("receiver got %d bytes, want 1000000", h.rx.Expected())
	}
	if h.sf.InflightSegments() != 0 || h.sf.InflightBytes() != 0 {
		t.Fatalf("inflight not drained: %d segs %d bytes", h.sf.InflightSegments(), h.sf.InflightBytes())
	}
}

func TestSlowStartDoublesWindow(t *testing.T) {
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 100e6, Delay: 50 * time.Millisecond, QueueBytes: 4 << 20},
		Config{Name: "p"}, 10_000_000)
	h.pmp.fill()
	// After ~1 RTT the initial 10 segments are acked: cwnd ≈ 20.
	h.eng.RunUntil(140 * time.Millisecond)
	if w := h.sf.CwndSegments(); w < 18 || w > 25 {
		t.Fatalf("cwnd = %v after one RTT of slow start, want ~20", w)
	}
	h.eng.RunUntil(240 * time.Millisecond)
	if w := h.sf.CwndSegments(); w < 35 {
		t.Fatalf("cwnd = %v after two RTTs, want ~40", w)
	}
}

func TestRTTMeasuredMatchesPath(t *testing.T) {
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 50e6, Delay: 30 * time.Millisecond, QueueBytes: 4 << 20},
		Config{Name: "p"}, 500_000)
	h.pmp.fill()
	h.eng.Run()
	srtt := h.sf.Srtt()
	// Base RTT 60 ms plus small serialization/queueing.
	if srtt < 60*time.Millisecond || srtt > 90*time.Millisecond {
		t.Fatalf("srtt = %v, want 60-90ms", srtt)
	}
}

func TestLossRecoveryViaDupAcks(t *testing.T) {
	// Small queue on a slow link forces drop-tail losses; the transfer
	// must still complete, using fast retransmits.
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 2e6, Delay: 20 * time.Millisecond, QueueBytes: 20_000},
		Config{Name: "p"}, 2_000_000)
	h.pmp.fill()
	h.eng.Run()
	if h.rx.Expected() != 2_000_000 {
		t.Fatalf("receiver got %d bytes, want 2000000", h.rx.Expected())
	}
	st := h.sf.Stats()
	if st.Retransmits == 0 {
		t.Fatal("expected retransmissions on a lossy path")
	}
}

func TestRandomLossRecovery(t *testing.T) {
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 10e6, Delay: 15 * time.Millisecond, QueueBytes: 256 << 10, LossRate: 0.02, Seed: 7},
		Config{Name: "p"}, 3_000_000)
	h.pmp.fill()
	h.eng.Run()
	if h.rx.Expected() != 3_000_000 {
		t.Fatalf("receiver got %d bytes, want 3000000", h.rx.Expected())
	}
}

func TestRTORecoversFromTotalBlackout(t *testing.T) {
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 8e6, Delay: 10 * time.Millisecond, QueueBytes: 128 << 10},
		Config{Name: "p"}, 400_000)
	// Black out the path before anything is sent: all packets lost.
	h.path.Forward().SetLossRate(1.0)
	h.pmp.fill()
	h.eng.RunUntil(3 * time.Second)
	if h.rx.Expected() != 0 {
		t.Fatal("nothing should arrive during blackout")
	}
	// Restore and let RTO-driven retransmission finish the transfer.
	h.path.Forward().SetLossRate(0)
	h.eng.Run()
	if h.rx.Expected() != 400_000 {
		t.Fatalf("receiver got %d bytes after blackout, want 400000", h.rx.Expected())
	}
	st := h.sf.Stats()
	if st.Timeouts == 0 {
		t.Fatal("expected RTO events")
	}
	if st.IWResets == 0 {
		t.Fatal("RTO should count as an IW reset")
	}
}

func TestIdleRestartResetsCwnd(t *testing.T) {
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 50e6, Delay: 20 * time.Millisecond, QueueBytes: 4 << 20},
		Config{Name: "p", IdleRestart: true}, 2_000_000)
	h.pmp.fill()
	h.eng.Run()
	grown := h.sf.CwndSegments()
	if grown < 20 {
		t.Fatalf("cwnd = %v after transfer, want growth", grown)
	}
	// Idle for far longer than the RTO, then prepare a new send.
	h.eng.RunUntil(h.eng.Now() + 10*time.Second)
	h.sf.PrepareSend()
	if w := h.sf.CwndSegments(); w != 10 {
		t.Fatalf("cwnd = %v after idle restart, want initial 10", w)
	}
	if h.sf.Stats().IdleResets != 1 {
		t.Fatalf("IdleResets = %d, want 1", h.sf.Stats().IdleResets)
	}
}

func TestIdleRestartDisabled(t *testing.T) {
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 50e6, Delay: 20 * time.Millisecond, QueueBytes: 4 << 20},
		Config{Name: "p", IdleRestart: false}, 2_000_000)
	h.pmp.fill()
	h.eng.Run()
	grown := h.sf.CwndSegments()
	h.eng.RunUntil(h.eng.Now() + 10*time.Second)
	h.sf.PrepareSend()
	if w := h.sf.CwndSegments(); w != grown {
		t.Fatalf("cwnd = %v after idle with restart disabled, want unchanged %v", w, grown)
	}
	if h.sf.Stats().IdleResets != 0 {
		t.Fatal("IdleResets should be 0 when disabled")
	}
}

func TestIdleRestartAppliedOncePerIdlePeriod(t *testing.T) {
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 50e6, Delay: 20 * time.Millisecond, QueueBytes: 4 << 20},
		Config{Name: "p", IdleRestart: true}, 1_000_000)
	h.pmp.fill()
	h.eng.Run()
	h.eng.RunUntil(h.eng.Now() + 5*time.Second)
	h.sf.PrepareSend()
	h.sf.PrepareSend()
	h.sf.PrepareSend()
	if h.sf.Stats().IdleResets != 1 {
		t.Fatalf("IdleResets = %d after repeated PrepareSend, want 1", h.sf.Stats().IdleResets)
	}
}

func TestAvailableCwndArithmetic(t *testing.T) {
	eng := sim.New()
	path := netsim.NewPath(eng, netsim.PathConfig{Name: "p", RateBps: 1e6, Delay: time.Second, QueueBytes: 1 << 20})
	sf := NewSubflow(eng, Config{Name: "p"}, path, cc.NewReno(), nil)
	rx := NewSubflowRecv(eng, path, &bigWindowSink{}, 60)
	path.SetForwardReceiver(rx.OnPacket)
	path.SetReverseReceiver(sf.OnAck)
	if got := sf.AvailableCwndSegments(); got != 10 {
		t.Fatalf("available = %d, want 10 (IW)", got)
	}
	for i := 0; i < 10; i++ {
		if !sf.CanSend() {
			t.Fatalf("CanSend false at segment %d", i)
		}
		sf.SendSegment(int64(i*1400), 1400)
	}
	if sf.CanSend() {
		t.Fatal("CanSend true with a full window")
	}
	if sf.InflightSegments() != 10 || sf.InflightBytes() != 14000 {
		t.Fatalf("inflight = %d segs %d bytes, want 10/14000", sf.InflightSegments(), sf.InflightBytes())
	}
}

func TestSendSegmentPanicsOnBadLength(t *testing.T) {
	eng := sim.New()
	path := netsim.NewPath(eng, netsim.PathConfig{Name: "p", RateBps: 1e6})
	sf := NewSubflow(eng, Config{Name: "p"}, path, cc.NewReno(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("SendSegment(0) did not panic")
		}
	}()
	sf.SendSegment(0, 0)
}

func TestCloseCancelsTimerAndUnregisters(t *testing.T) {
	eng := sim.New()
	path := netsim.NewPath(eng, netsim.PathConfig{Name: "p", RateBps: 1e6, Delay: 10 * time.Second, QueueBytes: 1 << 20})
	lia := cc.NewLIA()
	sf := NewSubflow(eng, Config{Name: "p"}, path, lia, nil)
	rx := NewSubflowRecv(eng, path, &bigWindowSink{}, 60)
	path.SetForwardReceiver(rx.OnPacket)
	path.SetReverseReceiver(sf.OnAck)
	sf.SendSegment(0, 1400)
	sf.Close()
	// With the RTO cancelled and a 20 s RTT, the run ends when the
	// (unanswered) packets drain, without timeout events.
	eng.RunUntil(2 * time.Second)
	if sf.Stats().Timeouts != 0 {
		t.Fatalf("timeouts = %d after Close, want 0", sf.Stats().Timeouts)
	}
}

func TestSubflowRecvOutOfOrderBuffering(t *testing.T) {
	eng := sim.New()
	path := netsim.NewPath(eng, netsim.PathConfig{Name: "p", RateBps: 1e9})
	var acks []netsim.Packet
	rx := NewSubflowRecv(eng, path, &bigWindowSink{}, 60)
	path.SetReverseReceiver(func(p *netsim.Packet) { acks = append(acks, *p) })
	// Deliver seq 1400 before seq 0.
	rx.OnPacket(&netsim.Packet{Kind: netsim.Data, Size: 1460, Seq: 1400, DSN: 1400, PayloadLen: 1400})
	eng.Run()
	if rx.Expected() != 0 {
		t.Fatalf("expected = %d, want 0 (hole at front)", rx.Expected())
	}
	if len(acks) != 1 || !acks[0].SackHole || acks[0].AckSeq != 0 {
		t.Fatalf("first ack = %+v, want dup-ack with hole", acks[0])
	}
	rx.OnPacket(&netsim.Packet{Kind: netsim.Data, Size: 1460, Seq: 0, DSN: 0, PayloadLen: 1400})
	eng.Run()
	if rx.Expected() != 2800 {
		t.Fatalf("expected = %d after filling hole, want 2800", rx.Expected())
	}
	if last := acks[len(acks)-1]; last.SackHole || last.AckSeq != 2800 {
		t.Fatalf("final ack = %+v, want cumulative 2800 no hole", last)
	}
}

func TestSubflowRecvCountsDuplicates(t *testing.T) {
	eng := sim.New()
	path := netsim.NewPath(eng, netsim.PathConfig{Name: "p", RateBps: 1e9})
	rx := NewSubflowRecv(eng, path, &bigWindowSink{}, 60)
	path.SetReverseReceiver(func(*netsim.Packet) {})
	pkt := netsim.Packet{Kind: netsim.Data, Size: 1460, Seq: 0, DSN: 0, PayloadLen: 1400}
	rx.OnPacket(&pkt)
	rx.OnPacket(&pkt) // stale duplicate
	if rx.Duplicates() != 1 {
		t.Fatalf("duplicates = %d, want 1", rx.Duplicates())
	}
}

func TestThroughputApproachesLinkRate(t *testing.T) {
	// 8 Mbps path, 4 MB transfer: should finish in roughly
	// 4MB*8/8Mbps ≈ 4.2 s (plus slow start), definitely < 7 s.
	h := newHarness(t, netsim.PathConfig{Name: "p", RateBps: 8e6, Delay: 20 * time.Millisecond, QueueBytes: 64 << 10},
		Config{Name: "p"}, 4<<20)
	h.pmp.fill()
	h.eng.Run()
	if h.rx.Expected() != 4<<20 {
		t.Fatalf("incomplete transfer: %d", h.rx.Expected())
	}
	dur := h.eng.Now().Seconds()
	if dur > 7 {
		t.Fatalf("transfer took %.1fs, want < 7s (≈ link-rate limited)", dur)
	}
	if dur < 4 {
		t.Fatalf("transfer took %.1fs, impossibly faster than the 8 Mbps link", dur)
	}
}
