package tcp

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// subflowRecvRef is a reference model of the receive-side reassembly
// logic as it was before the seq-ordered ring: a map keyed by subflow
// sequence number. The property tests drive it and the real SubflowRecv
// through identical randomized loss/reorder/duplicate schedules and
// require identical observable behaviour packet by packet.
type subflowRecvRef struct {
	expected   int64
	buffered   map[int64]int
	received   int64
	duplicates int64
}

func newSubflowRecvRef() *subflowRecvRef {
	return &subflowRecvRef{buffered: make(map[int64]int)}
}

// onPacket folds one data packet in and returns the ACK fields the old
// implementation would have emitted: the cumulative ACK and the
// SACK-style hole hint.
func (m *subflowRecvRef) onPacket(seq int64, payload int) (ackSeq int64, sackHole bool) {
	m.received++
	if seq >= m.expected {
		if _, dup := m.buffered[seq]; dup {
			m.duplicates++
		} else {
			m.buffered[seq] = payload
		}
	} else {
		m.duplicates++
	}
	for {
		l, ok := m.buffered[m.expected]
		if !ok {
			break
		}
		delete(m.buffered, m.expected)
		m.expected += int64(l)
	}
	return m.expected, len(m.buffered) > 0
}

// lossReorderSchedule builds a randomized arrival schedule over n
// segments with stable boundaries: the in-order stream is perturbed by
// window-bounded reordering (as multiple paths produce), random
// "losses" whose segments arrive again later as retransmits, and
// outright duplicate deliveries (retransmit races). Every segment
// arrives at least once, so reassembly must complete.
type arrival struct {
	seq    int64
	length int
}

func lossReorderSchedule(rng *sim.RNG, n int) (schedule []arrival, total int64) {
	segs := make([]arrival, n)
	var next int64
	for i := range segs {
		l := 100 + rng.Intn(1400)
		segs[i] = arrival{seq: next, length: l}
		next += int64(l)
	}
	// First pass: each segment delivered once, displaced by up to a
	// window of 8 positions (Fisher-Yates restricted to a local window).
	order := make([]arrival, n)
	copy(order, segs)
	for i := range order {
		w := i + 1 + rng.Intn(8)
		if w >= n {
			w = n - 1
		}
		j := i + rng.Intn(w-i+1)
		order[i], order[j] = order[j], order[i]
	}
	// Second pass: sprinkle retransmit/duplicate copies of random
	// segments into the tail half of the schedule.
	schedule = order
	for d := 0; d < n/3; d++ {
		s := segs[rng.Intn(n)]
		pos := n/2 + rng.Intn(n/2+1)
		if pos >= len(schedule) {
			schedule = append(schedule, s)
		} else {
			schedule = append(schedule[:pos+1], schedule[pos:]...)
			schedule[pos] = s
		}
	}
	return schedule, next
}

// TestSubflowRecvMatchesMapReference: the ring-based receiver and the
// map-based reference emit identical ACK streams (cumulative ACK and
// hole hint per arrival) and identical duplicate counts over randomized
// loss/reorder schedules.
func TestSubflowRecvMatchesMapReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		rng := sim.NewRNG(seed)
		schedule, total := lossReorderSchedule(rng, n)

		eng := sim.New()
		path := netsim.NewPath(eng, netsim.PathConfig{Name: "prop", RateBps: 1e9, Delay: time.Millisecond})
		var acks []netsim.Packet
		path.SetReverseReceiver(func(p *netsim.Packet) { acks = append(acks, *p) })
		rx := NewSubflowRecv(eng, path, benchSink{}, 60)
		ref := newSubflowRecvRef()

		for i, s := range schedule {
			rx.OnPacket(&netsim.Packet{Kind: netsim.Data, Size: s.length + 60, Seq: s.seq, DSN: s.seq, PayloadLen: s.length})
			eng.Run() // deliver the emitted ACK through the reverse link
			wantAck, wantHole := ref.onPacket(s.seq, s.length)
			if rx.Expected() != wantAck {
				t.Logf("arrival %d: Expected() = %d, reference = %d", i, rx.Expected(), wantAck)
				return false
			}
			if rx.Duplicates() != ref.duplicates {
				t.Logf("arrival %d: Duplicates() = %d, reference = %d", i, rx.Duplicates(), ref.duplicates)
				return false
			}
			// Every arrival emits exactly one ACK (delayed ACKs off);
			// its fields must match the reference.
			if len(acks) != i+1 {
				t.Logf("arrival %d: %d acks emitted", i, len(acks))
				return false
			}
			if acks[i].AckSeq != wantAck || acks[i].SackHole != wantHole {
				t.Logf("arrival %d: ack (%d, hole=%v), reference (%d, hole=%v)",
					i, acks[i].AckSeq, acks[i].SackHole, wantAck, wantHole)
				return false
			}
		}
		// Completeness: everything delivered, nothing left buffered.
		return rx.Expected() == total && ref.expected == total && len(ref.buffered) == 0
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
