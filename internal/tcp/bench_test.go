package tcp

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// benchSink is a minimal connection-level receiver: it acknowledges
// everything and advertises an unbounded window.
type benchSink struct{}

func (benchSink) OnData(p *netsim.Packet) (int64, int64) {
	return p.DSN + int64(p.PayloadLen), 1 << 40
}
func (benchSink) Snapshot() (int64, int64) { return 0, 1 << 40 }

// benchConn refills the send window from the ACK upcall.
type benchConn struct{ pump func() }

func (c *benchConn) SubflowAcked(*Subflow, int64, int64) { c.pump() }

// BenchmarkSubflowTransfer measures the steady-state per-segment cost of
// the full subflow loop: SendSegment → pacing → link → receiver → ACK →
// window bookkeeping → next segment.
func BenchmarkSubflowTransfer(b *testing.B) {
	eng := sim.New()
	path := netsim.NewPath(eng, netsim.PathConfig{
		Name:       "bench",
		RateBps:    50e6,
		Delay:      5 * time.Millisecond,
		QueueBytes: 1 << 20,
	})
	conn := &benchConn{}
	s := NewSubflow(eng, Config{ConnID: 1, ID: 0, Name: "bench"}, path, cc.NewReno(), conn)
	recv := NewSubflowRecv(eng, path, benchSink{}, 60)
	path.SetForwardReceiver(recv.OnPacket)
	path.SetReverseReceiver(s.OnAck)
	s.SeedRTT(10 * time.Millisecond)

	const mss = 1400
	var dsn int64
	total := int64(b.N) * mss
	conn.pump = func() {
		for s.CanSend() && dsn < total {
			s.SendSegment(dsn, mss)
			dsn += mss
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	conn.pump()
	eng.Run()
	if s.InflightSegments() != 0 {
		b.Fatalf("%d segments still in flight", s.InflightSegments())
	}
	b.ReportMetric(float64(eng.Processed()+eng.Coalesced())/float64(b.N), "events/op")
}
