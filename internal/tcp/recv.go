package tcp

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/sim"
)

// MetaSink is the connection-level receiver a subflow receiver reports
// into. It returns the piggyback fields for the outgoing ACK: the
// cumulative data-level acknowledgement and the advertised receive window.
type MetaSink interface {
	OnData(p *netsim.Packet) (dataAck, window int64)
	// Snapshot returns the current piggyback fields without consuming a
	// packet (delayed ACKs read it when their timer fires).
	Snapshot() (dataAck, window int64)
}

// SubflowRecv is the receive side of one subflow: it reassembles the
// subflow-level byte stream, generates cumulative ACKs (with a SACK-style
// "hole present" hint that drives the sender's duplicate-ACK counting)
// and forwards every arriving data packet to the connection-level
// receiver for DSN-level reordering.
type SubflowRecv struct {
	eng      *sim.Engine
	path     *netsim.Path
	meta     MetaSink
	ackBytes int

	expected int64
	// buffered holds the out-of-order segments as a seq-ordered ring
	// sliding with the cumulative ACK point — no per-packet map hashing;
	// the in-order common case never touches it.
	buffered ring.Reorder[struct{}]

	// DelayedAcks enables RFC 1122-style ACK coalescing: in-order
	// arrivals are acknowledged every second segment or after 40 ms,
	// while out-of-order arrivals (and arrivals that fill holes) are
	// acknowledged immediately per RFC 5681. Off by default — the
	// experiments model per-packet ACKs as most handsets disable
	// delayed ACKs for small RTT-sensitive flows — but available for
	// realism studies.
	DelayedAcks bool

	pendingAck  bool
	pendingPkt  netsim.Packet
	delayTimer  sim.Timer
	acksSent    int64
	acksDelayed int64

	// ackScratch is the outgoing ACK under construction. sendAck
	// overwrites every ACK field on each send and never touches the
	// data fields (they stay zero), so reusing one struct avoids
	// building and copying a ~100-byte literal per ACK.
	ackScratch netsim.Packet

	// stats
	received   int64
	duplicates int64
}

// NewSubflowRecv builds the receive side. The caller wires OnPacket to
// the path's forward direction (directly, or through a netsim.Demux when
// links are shared across connections).
func NewSubflowRecv(eng *sim.Engine, path *netsim.Path, meta MetaSink, ackBytes int) *SubflowRecv {
	r := &SubflowRecv{eng: eng}
	r.Reset(path, meta, ackBytes)
	return r
}

// Reset rebinds a pooled receiver to a path and meta sink, restoring
// the state NewSubflowRecv would construct: sequence zero, an empty
// reorder buffer (capacity kept), no pending delayed ACK, zeroed
// counters. The engine must have been reset first (it owned the
// delayed-ACK timer).
func (r *SubflowRecv) Reset(path *netsim.Path, meta MetaSink, ackBytes int) {
	if ackBytes <= 0 {
		ackBytes = 60
	}
	r.path = path
	r.meta = meta
	r.ackBytes = ackBytes
	r.expected = 0
	r.buffered.Reset()
	r.DelayedAcks = false
	r.pendingAck = false
	r.pendingPkt = netsim.Packet{}
	r.delayTimer = sim.Timer{}
	r.acksSent = 0
	r.acksDelayed = 0
	r.ackScratch = netsim.Packet{}
	r.received = 0
	r.duplicates = 0
}

// Expected returns the next subflow-level byte the receiver is waiting
// for (the value it advertises as the cumulative ACK).
func (r *SubflowRecv) Expected() int64 { return r.expected }

// Received returns the count of data packets processed.
func (r *SubflowRecv) Received() int64 { return r.received }

// Duplicates returns the count of redundant segment arrivals.
func (r *SubflowRecv) Duplicates() int64 { return r.duplicates }

// AcksSent returns the number of ACK packets emitted.
func (r *SubflowRecv) AcksSent() int64 { return r.acksSent }

// AcksDelayed returns how many arrivals were coalesced by delayed ACKs.
func (r *SubflowRecv) AcksDelayed() int64 { return r.acksDelayed }

// OnPacket handles one arriving data packet and emits (or schedules) an
// ACK.
func (r *SubflowRecv) OnPacket(p *netsim.Packet) {
	if p.Kind != netsim.Data {
		return
	}
	r.received++
	inOrder := p.Seq == r.expected
	switch {
	case inOrder:
		// The buffered block never contains the expected seq (the drain
		// below always consumes it), so an in-order arrival is never a
		// duplicate: advance directly and drain any adjacent segments.
		r.expected += int64(p.PayloadLen)
		for {
			l, _, ok := r.buffered.PopAt(r.expected)
			if !ok {
				break
			}
			r.expected += int64(l)
		}
	case p.Seq > r.expected:
		if !r.buffered.Insert(p.Seq, p.PayloadLen, struct{}{}) {
			r.duplicates++
		}
	default:
		r.duplicates++
	}
	dataAck, window := r.meta.OnData(p)

	if r.DelayedAcks && inOrder && r.buffered.Len() == 0 && !r.pendingAck {
		// First of a potential pair: hold the ACK briefly.
		r.pendingAck = true
		r.pendingPkt = *p
		r.acksDelayed++
		r.delayTimer = r.eng.ScheduleEvent(40*time.Millisecond, kindDelayedAck, r)
		return
	}
	// A second arrival before the 40 ms timer supersedes the held ACK in
	// this very dispatch: the pending flush is cancelled eagerly and the
	// fresher cumulative ACK goes out now, so a same-instant delayed-ACK
	// flush never costs its own event.
	r.cancelPending()
	r.sendAck(p, dataAck, window)
}

// kindDelayedAck dispatches the delayed-ACK timer through the typed
// event table.
var kindDelayedAck sim.EventKind

func init() {
	kindDelayedAck = sim.RegisterKind("tcp.SubflowRecv.delayedAck", func(a any) { a.(*SubflowRecv).flushPending() })
}

// cancelPending drops the held ACK state (a fresher ACK supersedes it).
func (r *SubflowRecv) cancelPending() {
	r.delayTimer.Cancel()
	r.delayTimer = sim.Timer{}
	r.pendingAck = false
}

// flushPending emits the held ACK after the delay timer fires.
func (r *SubflowRecv) flushPending() {
	if !r.pendingAck {
		return
	}
	p := r.pendingPkt
	r.cancelPending()
	dataAck, window := r.meta.Snapshot()
	r.sendAck(&p, dataAck, window)
}

// sendAck emits one cumulative acknowledgement.
func (r *SubflowRecv) sendAck(p *netsim.Packet, dataAck, window int64) {
	r.acksSent++
	ack := &r.ackScratch
	ack.Kind = netsim.Ack
	ack.Size = r.ackBytes
	ack.ConnID = p.ConnID
	ack.SubflowID = p.SubflowID
	ack.AckSeq = r.expected
	ack.DataAck = dataAck
	ack.Window = window
	ack.EchoSentAt = p.SentAt
	ack.EchoRetransmit = p.Retransmit
	ack.SackHole = r.buffered.Len() > 0
	r.path.Reverse().Send(ack)
}
