package tcp

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/sim"
)

// ConnHooks is the upcall interface from a subflow to its owning MPTCP
// connection. The subflow handles everything at its own sequence level
// (RTT, CWND, retransmission); the connection layer reacts to the
// piggybacked data-level acknowledgement and tries to schedule more data.
type ConnHooks interface {
	// SubflowAcked is invoked after subflow-level processing of every ACK.
	SubflowAcked(s *Subflow, dataAck, window int64)
}

// Config parameterizes a subflow.
type Config struct {
	// ConnID is the owning connection's identifier on shared links.
	ConnID int
	// ID is the subflow index within its connection.
	ID int
	// Name labels the subflow ("wifi", "lte").
	Name string
	// MSS is the payload bytes per segment. Zero selects 1400.
	MSS int
	// HeaderBytes is per-packet overhead on the wire. Zero selects 60
	// (IP + TCP + MPTCP DSS option).
	HeaderBytes int
	// AckBytes is the wire size of a pure ACK. Zero selects 60.
	AckBytes int
	// InitialCwnd is the initial window in segments. Zero selects 10
	// (RFC 6928, the value the paper's §3.2 example uses).
	InitialCwnd float64
	// IdleRestart enables the RFC 2861 congestion-window reset after the
	// connection has been idle for an RTO. Figure 6 toggles this.
	IdleRestart bool
	// MinRTO clamps the retransmission timer. Zero selects 200 ms.
	MinRTO time.Duration
	// DisablePacing turns off sender pacing. By default transmissions
	// are spaced at cwnd/srtt (doubled during slow start), as Linux's
	// internal TCP pacing does; without it, window-opening ACKs release
	// line-rate bursts that overflow shallow drop-tail buffers far below
	// the window the path could sustain.
	DisablePacing bool
}

func (c *Config) fillDefaults() {
	if c.MSS <= 0 {
		c.MSS = 1400
	}
	if c.HeaderBytes <= 0 {
		c.HeaderBytes = 60
	}
	if c.AckBytes <= 0 {
		c.AckBytes = 60
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 10
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
}

// SubflowStats aggregates sender-side counters.
type SubflowStats struct {
	SegmentsSent    int64
	BytesSent       int64 // payload bytes, first transmissions only
	Retransmits     int64
	FastRetransmits int64
	Timeouts        int64
	// IWResets counts events that return the window to (or below) the
	// initial window: idle restarts and RTO backoffs. Table 3 reports
	// this per scheduler.
	IWResets int64
	// IdleResets counts only the idle-restart subset of IWResets.
	IdleResets int64
}

// maxBurstSegments bounds how far past the in-flight count the window may
// point right after loss recovery (burst moderation, as in Linux's
// tcp_moderate_cwnd with a slightly wider allowance).
const maxBurstSegments = 10

// segment is one in-flight subflow-level segment. Segments are pooled
// per subflow: acked segments return to a free list and are reused by
// later sends, so steady-state transfer allocates no segment memory.
type segment struct {
	seq    int64 // subflow sequence (start byte)
	dsn    int64 // data sequence (start byte)
	length int
	sentAt sim.Time
	rtx    int // retransmission count
	owner  *Subflow
}

// paced is one pending paced transmission: the segment, its release
// time, and the tie-break ticket reserved when it entered the queue —
// the position an individually scheduled transmit event would have
// occupied, which is what keeps the batched pacer byte-identical.
type paced struct {
	seg *segment
	at  sim.Time
	tk  sim.Ticket
}

// kindPacedTransmit and kindRTO dispatch the subflow's timer events
// through the typed event table.
var (
	kindPacedTransmit sim.EventKind
	kindRTO           sim.EventKind
)

func init() {
	kindPacedTransmit = sim.RegisterKind("tcp.Subflow.pacedTransmit", func(a any) { a.(*Subflow).firePaced() })
	kindRTO = sim.RegisterKind("tcp.Subflow.rto", func(a any) { a.(*Subflow).fireRTO() })
}

// Subflow is the sender side of one MPTCP subflow.
type Subflow struct {
	eng  *sim.Engine
	cfg  Config
	path *netsim.Path
	conn ConnHooks
	ctrl cc.Controller

	nextSeq int64
	sndUna  int64
	// inflight is a seq-ordered ring of unacknowledged segments
	// ([infHead, infTail) live, in increasing-seq order). Sends append at
	// the tail; cumulative ACKs pop a prefix — segments are contiguous in
	// sequence space, so the acked set is always a prefix — and
	// retransmission paths only ever need the head segment (the one
	// starting at sndUna). No map hashing, no per-segment allocation.
	inflight         ring.Ring[*segment]
	infHead, infTail uint64
	segPool          []*segment
	inflightSegs     int
	inflightBytes    int

	cwnd          float64
	ssthresh      float64
	recoveryPoint int64 // -1 when not in loss recovery
	dupAcks       int
	// dupSacked counts duplicate ACKs received during the current
	// recovery episode. Each one means a segment left the network, so the
	// effective in-flight count is reduced accordingly — the SACK-less
	// equivalent of RFC 5681's window inflation, which keeps the pipe
	// busy through multi-loss recovery instead of stalling for one hole
	// per RTT.
	dupSacked int

	rtt      *RTTEstimator
	rtoTimer sim.Timer
	// rtoDeadline/rtoTk are the authoritative retransmission deadline
	// and its reserved tie-break ticket (rtoDeadline 0 = disarmed). The
	// heap timer is re-armed lazily: re-arming to a later deadline
	// leaves the earlier timer in place to fire as a no-op that chains
	// to the real deadline, so the per-ACK cancel+insert churn of the
	// eager scheme disappears from the heap entirely.
	rtoDeadline sim.Time
	rtoTk       sim.Ticket
	// rtoArmedTk is the ticket the heap timer is currently armed under;
	// when it trails rtoTk the fire is stale even if the times coincide
	// (the real timeout must run at rtoTk's tie-break position).
	rtoArmedTk sim.Ticket
	rtoBackoff time.Duration // multiplier, 1 when no backoff

	// pacedQ is the pending paced-transmission queue ([pacedHead,
	// pacedTail) live, release times and tickets both monotone), drained
	// by one self-rescheduling timer that batches back-to-back releases
	// via sim.RunsNext instead of costing one heap event per segment.
	pacedQ               ring.Ring[paced]
	pacedHead, pacedTail uint64
	pacedTimer           sim.Timer

	lastSendTime sim.Time
	everSent     bool
	// pktScratch is the outgoing packet under construction. transmit
	// overwrites every data field on each send and never touches the
	// ACK fields (they stay zero), so reusing one struct avoids
	// building and copying a ~100-byte literal per transmission.
	pktScratch netsim.Packet
	// idleBaseCwnd snapshots the window at the start of an idle period so
	// repeated PrepareSend calls decay idempotently from the same base as
	// the idle time grows (the kernel computes the decay once, at the
	// actual transmit; we may be consulted several times before that).
	idleBaseCwnd float64
	idleCounted  bool
	// nextPacedAt is the earliest time the pacer will release the next
	// segment.
	nextPacedAt sim.Time

	stats SubflowStats

	// debugHook, when set, observes recovery events (tests only).
	debugHook func(ev string, args ...interface{})

	// obsRec, when non-nil, records send/ACK/recovery events for the
	// flight recorder. It is installed only on the subflows of a traced
	// cell and cleared by Reset; everywhere else each hook costs one nil
	// check.
	obsRec *obs.SubflowRecorder
}

// NewSubflow wires a sender onto path's forward link; ACKs arriving on the
// reverse link must be fed to OnAck (the connection layer installs that).
func NewSubflow(eng *sim.Engine, cfg Config, path *netsim.Path, ctrl cc.Controller, conn ConnHooks) *Subflow {
	s := &Subflow{eng: eng, rtt: &RTTEstimator{}}
	s.Reset(cfg, path, ctrl, conn)
	return s
}

// Reset rebinds a pooled subflow to a (possibly different) config, path,
// controller and connection, restoring exactly the state NewSubflow
// would construct: initial window, empty inflight ring (the segment
// free list keeps its grown population), fresh RTT estimator, zeroed
// stats. It registers the subflow with ctrl, so the previous controller
// must have been detached via Close first, and — like every Reset in
// the pooled graph — the engine must have been reset first (pending
// paced-transmit and RTO events of the previous run died with it).
func (s *Subflow) Reset(cfg Config, path *netsim.Path, ctrl cc.Controller, conn ConnHooks) {
	cfg.fillDefaults()
	if ctrl == nil {
		panic("tcp: nil congestion controller")
	}
	s.cfg = cfg
	s.path = path
	s.conn = conn
	s.ctrl = ctrl
	s.nextSeq = 0
	s.sndUna = 0
	// Segments still in flight when the previous run ended (a cell cut
	// off by its horizon with unacked data) were never freed by an ACK;
	// file them back into the pool so the next run reuses them instead
	// of re-allocating, and nil the slots so the ring does not pin them.
	for k := s.infHead; k < s.infTail; k++ {
		slot := s.inflight.At(k)
		s.segPool = append(s.segPool, *slot)
		*slot = nil
	}
	s.infHead, s.infTail = 0, 0
	s.inflightSegs = 0
	s.inflightBytes = 0
	s.cwnd = cfg.InitialCwnd
	s.ssthresh = 1 << 30
	s.recoveryPoint = -1
	s.dupAcks = 0
	s.dupSacked = 0
	s.rtt.Reset(cfg.MinRTO, 0)
	s.rtoTimer = sim.Timer{}
	s.rtoDeadline = 0
	s.rtoTk = 0
	s.rtoArmedTk = 0
	s.rtoBackoff = 1
	// Segments queued in the pacer are also in the inflight ring (pushSeg
	// precedes paceOut), which the loop above already filed back into the
	// pool — just drop the queue; freeing here would double-free.
	s.pacedHead, s.pacedTail = 0, 0
	s.pacedTimer = sim.Timer{}
	s.lastSendTime = 0
	s.everSent = false
	s.pktScratch = netsim.Packet{}
	s.idleBaseCwnd = 0
	s.idleCounted = false
	s.nextPacedAt = 0
	s.stats = SubflowStats{}
	s.debugHook = nil
	s.obsRec = nil
	ctrl.Register(s)
}

// SetObserver installs (or with nil removes) the subflow-event
// recorder. Reset also removes it, so a pooled subflow never carries a
// recorder into its next cell.
func (s *Subflow) SetObserver(r *obs.SubflowRecorder) { s.obsRec = r }

// observe records one subflow event; callers guard with obsRec != nil
// so the disabled path never reaches the call.
func (s *Subflow) observe(op obs.SubflowOp, seq, ack int64) {
	s.obsRec.Record(obs.SubflowEvent{
		At:           s.eng.Now(),
		Op:           op,
		Name:         s.cfg.Name,
		ConnID:       s.cfg.ConnID,
		ID:           s.cfg.ID,
		Seq:          seq,
		AckSeq:       ack,
		Cwnd:         s.cwnd,
		Ssthresh:     s.ssthresh,
		InflightSegs: s.inflightSegs,
		Srtt:         s.rtt.Srtt(),
	})
}

// ID returns the subflow index.
func (s *Subflow) ID() int { return s.cfg.ID }

// Name returns the subflow label.
func (s *Subflow) Name() string { return s.cfg.Name }

// Path returns the underlying network path.
func (s *Subflow) Path() *netsim.Path { return s.path }

// MSS returns the segment payload size in bytes.
func (s *Subflow) MSS() int { return s.cfg.MSS }

// Stats returns a copy of the counters.
func (s *Subflow) Stats() SubflowStats { return s.stats }

// Srtt returns the smoothed RTT estimate (0 before the first sample).
func (s *Subflow) Srtt() time.Duration { return s.rtt.Srtt() }

// SeedRTT initializes the RTT estimate with one measurement, as a kernel
// does from the SYN/SYN-ACK handshake.
func (s *Subflow) SeedRTT(rtt time.Duration) { s.rtt.Sample(rtt) }

// RTTStdDev returns the RTT mean-deviation estimate — ECF's σ.
func (s *Subflow) RTTStdDev() time.Duration { return s.rtt.StdDev() }

// RTO returns the current retransmission timeout (without backoff).
func (s *Subflow) RTO() time.Duration { return s.rtt.RTO() }

// HasRTTSample reports whether at least one RTT measurement exists.
func (s *Subflow) HasRTTSample() bool { return s.rtt.Samples() > 0 }

// InflightSegments returns the number of unacknowledged segments.
func (s *Subflow) InflightSegments() int { return s.inflightSegs }

// InflightBytes returns unacknowledged payload bytes (the subflow-level
// send-buffer occupancy the paper plots in Figure 3).
func (s *Subflow) InflightBytes() int { return s.inflightBytes }

// CwndSegments returns the congestion window in segments.
func (s *Subflow) CwndSegments() float64 { return s.cwnd }

// AvailableCwndSegments returns how many more segments the window allows.
// During loss recovery the in-flight count is discounted by the duplicate
// ACKs seen (segments known to have left the network).
func (s *Subflow) AvailableCwndSegments() int {
	eff := s.inflightSegs - s.dupSacked
	if eff < 0 {
		eff = 0
	}
	avail := int(s.cwnd) - eff
	if avail < 0 {
		return 0
	}
	return avail
}

// CanSend reports whether the congestion window has room for a segment.
func (s *Subflow) CanSend() bool { return s.AvailableCwndSegments() > 0 }

// cc.Flow implementation.

// Cwnd implements cc.Flow.
func (s *Subflow) Cwnd() float64 { return s.cwnd }

// SetCwnd implements cc.Flow.
func (s *Subflow) SetCwnd(w float64) {
	if w < 1 {
		w = 1
	}
	s.cwnd = w
}

// Ssthresh implements cc.Flow.
func (s *Subflow) Ssthresh() float64 { return s.ssthresh }

// SetSsthresh implements cc.Flow.
func (s *Subflow) SetSsthresh(w float64) { s.ssthresh = w }

// SrttSeconds implements cc.Flow.
func (s *Subflow) SrttSeconds() float64 { return s.rtt.Srtt().Seconds() }

// InSlowStart implements cc.Flow.
func (s *Subflow) InSlowStart() bool { return s.cwnd < s.ssthresh }

// PrepareSend applies the idle-restart window reset if the subflow has
// been quiescent for longer than its RTO (RFC 2861). The connection calls
// this before consulting the scheduler so scheduling decisions see the
// post-reset window — exactly as in the kernel, where the reset happens on
// the transmit path.
func (s *Subflow) PrepareSend() {
	if !s.cfg.IdleRestart || !s.everSent || s.inflightSegs > 0 {
		return
	}
	idle := s.eng.Now() - s.lastSendTime
	rto := s.rtt.RTO()
	if idle < rto {
		return
	}
	if s.idleBaseCwnd == 0 {
		s.idleBaseCwnd = s.cwnd
	}
	// Decay: halve once per full RTO idle, floored at the initial window
	// (RFC 2861 / Linux tcp_cwnd_restart).
	decayed := s.idleBaseCwnd
	for t := idle; t >= rto && decayed > s.cfg.InitialCwnd; t -= rto {
		decayed /= 2
	}
	if decayed < s.cfg.InitialCwnd {
		decayed = s.cfg.InitialCwnd
	}
	if decayed < s.cwnd {
		s.cwnd = decayed
	}
	if decayed <= s.cfg.InitialCwnd && !s.idleCounted {
		s.idleCounted = true
		s.stats.IWResets++
		s.stats.IdleResets++
	}
}

// allocSeg takes a segment from the pool, falling back to the heap only
// until the pool has grown to the transfer's in-flight working set.
func (s *Subflow) allocSeg() *segment {
	if n := len(s.segPool); n > 0 {
		seg := s.segPool[n-1]
		s.segPool = s.segPool[:n-1]
		return seg
	}
	return &segment{owner: s}
}

// freeSeg recycles an acked segment. Only transmitted segments can be
// acked, and only never-transmitted segments are referenced by pending
// paced-transmit events, so a recycled segment is never still reachable
// from the event queue.
func (s *Subflow) freeSeg(seg *segment) {
	s.segPool = append(s.segPool, seg)
}

// pushSeg appends to the inflight ring.
func (s *Subflow) pushSeg(seg *segment) {
	s.inflight.Push(s.infHead, s.infTail, seg)
	s.infTail++
}

// frontSeg returns the lowest-sequence in-flight segment, or nil.
func (s *Subflow) frontSeg() *segment {
	if s.infHead == s.infTail {
		return nil
	}
	return *s.inflight.At(s.infHead)
}

// unaSegment returns the in-flight segment starting exactly at sndUna
// (the retransmission candidate), or nil — e.g. when the cumulative ACK
// landed mid-segment. Equivalent to the former map lookup: sndUna can
// only match the ring head, every earlier segment being fully acked.
func (s *Subflow) unaSegment() *segment {
	if seg := s.frontSeg(); seg != nil && seg.seq == s.sndUna {
		return seg
	}
	return nil
}

// SendSegment transmits payload [dsn, dsn+length) as a new subflow-level
// segment. The caller must have verified CanSend.
func (s *Subflow) SendSegment(dsn int64, length int) {
	if length <= 0 {
		panic(fmt.Sprintf("tcp: SendSegment with length %d", length))
	}
	seg := s.allocSeg()
	seg.seq = s.nextSeq
	seg.dsn = dsn
	seg.length = length
	seg.sentAt = 0
	seg.rtx = 0
	s.nextSeq += int64(length)
	s.pushSeg(seg)
	s.inflightSegs++
	s.inflightBytes += length
	s.stats.BytesSent += int64(length)
	s.paceOut(seg)
}

// paceOut releases a segment through the pacer: transmissions are spaced
// by srtt/cwnd (halved spacing during slow start, matching the kernel's
// pacing gain of 2).
func (s *Subflow) paceOut(seg *segment) {
	if s.cfg.DisablePacing || s.rtt.Samples() == 0 {
		s.transmit(seg)
		return
	}
	cwnd := s.cwnd
	if cwnd < 1 {
		cwnd = 1
	}
	gain := 1.0
	if s.InSlowStart() {
		gain = 2.0
	}
	interval := time.Duration(float64(s.rtt.Srtt()) / (cwnd * gain))
	now := s.eng.Now()
	at := s.nextPacedAt
	if at < now {
		at = now
	}
	s.nextPacedAt = at + interval
	if at <= now {
		s.transmit(seg)
		return
	}
	// Queue the release under a reserved ticket — the tie-break position
	// an individually scheduled transmit event would have taken — and
	// arm the shared timer only when idle: release times and tickets are
	// both monotone across the queue, so an armed timer is never late.
	tk := s.eng.ReserveTicket()
	*s.pacedQ.PushRef(s.pacedHead, s.pacedTail) = paced{seg: seg, at: at, tk: tk}
	s.pacedTail++
	if !s.pacedTimer.Active() {
		s.pacedTimer = s.eng.AtTicket(at, tk, kindPacedTransmit, s)
	}
}

// firePaced releases the head of the paced queue, then keeps releasing
// successors inline for as long as the engine confirms (sim.RunsNext)
// that each would have been its next dispatch anyway; the first refused
// claim re-arms the timer under that release's reserved ticket. A
// transmit never reenters the pacer synchronously (the wire path is
// pure event scheduling), so the queue cannot change under the loop.
func (s *Subflow) firePaced() {
	s.pacedTimer = sim.Timer{}
	for s.pacedHead < s.pacedTail {
		pc := s.pacedQ.At(s.pacedHead)
		seg := pc.seg
		pc.seg = nil // don't pin the segment once released
		s.pacedHead++
		s.transmit(seg)
		if s.pacedHead >= s.pacedTail {
			return
		}
		n := s.pacedQ.At(s.pacedHead)
		if !s.eng.RunsNext(n.at, n.tk) {
			s.pacedTimer = s.eng.AtTicket(n.at, n.tk, kindPacedTransmit, s)
			return
		}
	}
}

// transmit pushes one segment onto the wire and (re)arms the RTO.
func (s *Subflow) transmit(seg *segment) {
	now := s.eng.Now()
	seg.sentAt = now
	s.lastSendTime = now
	s.everSent = true
	s.idleBaseCwnd = 0
	s.idleCounted = false
	s.stats.SegmentsSent++
	pkt := &s.pktScratch
	pkt.Kind = netsim.Data
	pkt.Size = seg.length + s.cfg.HeaderBytes
	pkt.ConnID = s.cfg.ConnID
	pkt.SubflowID = s.cfg.ID
	pkt.Seq = seg.seq
	pkt.DSN = seg.dsn
	pkt.PayloadLen = seg.length
	pkt.SentAt = now
	pkt.Retransmit = seg.rtx > 0
	// A full drop-tail queue silently discards; recovery comes from
	// dup-ACKs or the RTO, like on a real path.
	s.path.Forward().Send(pkt)
	if s.obsRec != nil {
		s.observe(obs.SfSend, seg.seq, 0)
	}
	s.armRTO()
}

// armRTO restarts the retransmission timer lazily. Every arm reserves a
// ticket — exactly where the eager scheme's re-schedule reserved its
// sequence number, keeping every later tie-break unchanged — but the
// heap timer is only touched when it would fire too late: an early
// timer is left in place and fires as a no-op that chains to the real
// deadline (fireRTO). Since arms are per-transmit and per-ACK while
// real timeouts are rare, nearly all RTO heap traffic disappears.
func (s *Subflow) armRTO() {
	if s.inflightSegs == 0 {
		s.rtoDeadline = 0
		s.rtoTimer.Cancel()
		s.rtoTimer = sim.Timer{}
		return
	}
	d := s.rtt.RTO() * s.rtoBackoff
	at := s.eng.Now() + d
	s.rtoDeadline = at
	s.rtoTk = s.eng.ReserveTicket()
	if s.rtoTimer.Active() {
		if s.rtoTimer.At() <= at {
			// The pending timer fires no later than the new deadline:
			// leave it — fireRTO chains a stale fire to rtoDeadline
			// under the freshly reserved ticket.
			return
		}
		s.rtoTimer.Cancel()
	}
	s.rtoArmedTk = s.rtoTk
	s.rtoTimer = s.eng.AtTicket(at, s.rtoTk, kindRTO, s)
}

// fireRTO filters stale timer fires: a fire before the authoritative
// deadline re-arms at that deadline under its reserved ticket — so a
// real timeout runs at exactly the (time, tie-break) the eager scheme
// would have given it — and a fire after disarm does nothing.
func (s *Subflow) fireRTO() {
	s.rtoTimer = sim.Timer{}
	if s.rtoDeadline == 0 {
		return
	}
	if s.eng.Now() < s.rtoDeadline || s.rtoArmedTk != s.rtoTk {
		s.rtoArmedTk = s.rtoTk
		s.rtoTimer = s.eng.AtTicket(s.rtoDeadline, s.rtoTk, kindRTO, s)
		return
	}
	s.onRTO()
}

// onRTO handles a retransmission timeout: multiplicative decrease to a
// one-segment window, exponential backoff, and go-back-N style recovery
// driven by the cumulative ACK.
func (s *Subflow) onRTO() {
	s.rtoTimer = sim.Timer{}
	if s.inflightSegs == 0 {
		return
	}
	s.stats.Timeouts++
	s.stats.IWResets++
	ss := s.cwnd / 2
	if ss < 2 {
		ss = 2
	}
	s.ssthresh = ss
	s.cwnd = 1
	s.recoveryPoint = s.nextSeq
	s.dupAcks = 0
	s.dupSacked = 0
	if s.rtoBackoff < 64 {
		s.rtoBackoff *= 2
	}
	if s.obsRec != nil {
		s.observe(obs.SfRTO, s.sndUna, 0)
	}
	if seg := s.unaSegment(); seg != nil {
		seg.rtx++
		s.stats.Retransmits++
		s.transmit(seg)
	} else {
		s.armRTO()
	}
}

// OnAck processes one ACK packet from the receiver.
func (s *Subflow) OnAck(p *netsim.Packet) {
	if p.Kind != netsim.Ack {
		panic("tcp: OnAck on non-ack packet")
	}
	switch {
	case p.AckSeq > s.sndUna:
		s.processNewAck(p)
	case p.AckSeq == s.sndUna && p.SackHole && s.inflightSegs > 0:
		s.dupAcks++
		if s.recoveryPoint >= 0 {
			s.dupSacked++
		} else if s.dupAcks == 3 {
			s.fastRetransmit()
		}
	}
	if s.conn != nil {
		s.conn.SubflowAcked(s, p.DataAck, p.Window)
	}
}

func (s *Subflow) processNewAck(p *netsim.Packet) {
	// Segments are contiguous in sequence space, so the fully-acked set
	// is exactly a prefix of the seq-ordered ring.
	acked := 0
	for {
		seg := s.frontSeg()
		if seg == nil || seg.seq+int64(seg.length) > p.AckSeq {
			break
		}
		s.infHead++
		s.inflightSegs--
		s.inflightBytes -= seg.length
		s.freeSeg(seg)
		acked++
	}
	s.sndUna = p.AckSeq
	s.dupAcks = 0
	s.rtoBackoff = 1
	if s.recoveryPoint >= 0 {
		// The cumulative advance consumed some of the dup-ACKed range.
		s.dupSacked -= acked
		if s.dupSacked < 0 {
			s.dupSacked = 0
		}
	}
	if !p.EchoRetransmit && p.EchoSentAt > 0 {
		s.rtt.Sample(s.eng.Now() - p.EchoSentAt)
	}
	inRecovery := s.recoveryPoint >= 0
	if inRecovery && s.sndUna >= s.recoveryPoint {
		s.recoveryPoint = -1
		s.dupSacked = 0
		inRecovery = false
		// Burst moderation (Linux tcp_moderate_cwnd): the exit ACK is
		// typically a giant cumulative ACK that empties the pipe; without
		// this clamp the sender would dump a full window back-to-back
		// into the bottleneck queue and immediately lose again. Slow
		// start restores the window within a few RTTs (ssthresh keeps
		// the halved value).
		if moderated := float64(s.inflightSegs) + maxBurstSegments; s.cwnd > moderated {
			s.cwnd = moderated
		}
		if s.debugHook != nil {
			s.debugHook("recovery-exit", "sndUna", s.sndUna/1400, "cwnd", s.cwnd, "inflight", s.inflightSegs)
		}
	}
	if inRecovery {
		// NewReno partial ACK: the cumulative ACK advanced but stopped
		// short of the recovery point, exposing the next hole —
		// retransmit it immediately rather than waiting for an RTO.
		if seg := s.unaSegment(); seg != nil {
			seg.rtx++
			s.stats.Retransmits++
			s.transmit(seg)
		}
	}
	if acked > 0 && !inRecovery {
		if s.InSlowStart() {
			s.cwnd += float64(acked)
			if s.cwnd > s.ssthresh {
				s.cwnd = s.ssthresh
			}
			s.maybeExitSlowStart()
		} else {
			s.ctrl.OnAck(s, acked)
		}
	}
	if s.obsRec != nil {
		s.observe(obs.SfAck, s.sndUna, p.AckSeq)
	}
	s.armRTO()
}

// maybeExitSlowStart implements a HyStart-style delay-based slow-start
// exit (as Linux does): when the latest RTT sample exceeds the minimum
// observed RTT by more than a clamped eighth, queueing has begun and the
// window stops doubling. This avoids the massive drop-tail burst losses a
// pure loss-based exit would take on every connection start.
func (s *Subflow) maybeExitSlowStart() {
	if s.rtt.Samples() < 8 {
		return
	}
	minRTT := s.rtt.Min()
	thresh := minRTT / 8
	const lo, hi = 4 * time.Millisecond, 16 * time.Millisecond
	if thresh < lo {
		thresh = lo
	}
	if thresh > hi {
		thresh = hi
	}
	if s.rtt.RecentMin() > minRTT+thresh {
		s.ssthresh = s.cwnd
	}
}

// fastRetransmit reacts to three duplicate ACKs.
func (s *Subflow) fastRetransmit() {
	seg := s.unaSegment()
	if seg == nil {
		return
	}
	s.ctrl.OnLoss(s)
	if s.cwnd <= s.cfg.InitialCwnd {
		s.stats.IWResets++
	}
	if s.debugHook != nil {
		s.debugHook("fast-rtx", "sndUna", s.sndUna/1400, "recPt", s.nextSeq/1400, "cwnd", s.cwnd, "inflight", s.inflightSegs)
	}
	s.recoveryPoint = s.nextSeq
	s.stats.FastRetransmits++
	s.stats.Retransmits++
	if s.obsRec != nil {
		s.observe(obs.SfFastRtx, s.sndUna, 0)
	}
	seg.rtx++
	s.transmit(seg)
}

// Penalize halves the window and slow-start threshold. The connection
// layer invokes this on the subflow that is blocking the send window, as
// part of the opportunistic-retransmission/penalization mechanism
// (Raiciu et al., NSDI'12) that the paper keeps enabled throughout.
func (s *Subflow) Penalize() {
	s.ctrl.OnLoss(s)
}

// Close detaches the subflow from its congestion controller and stops the
// retransmission timer.
func (s *Subflow) Close() {
	s.rtoTimer.Cancel()
	s.rtoTimer = sim.Timer{}
	s.rtoDeadline = 0
	s.pacedTimer.Cancel()
	s.pacedTimer = sim.Timer{}
	s.ctrl.Unregister(s)
}

// AckPacketSize returns the configured wire size of pure ACKs.
func (s *Subflow) AckPacketSize() int { return s.cfg.AckBytes }
