package tcp

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// BenchmarkSubflowRecvInOrder measures the common case: every segment
// arrives exactly at the cumulative ACK point, so the reassembly
// structure stays empty and each arrival emits one ACK.
func BenchmarkSubflowRecvInOrder(b *testing.B) {
	eng := sim.New()
	path := netsim.NewPath(eng, netsim.PathConfig{
		Name:       "bench",
		RateBps:    1e9,
		Delay:      time.Millisecond,
		QueueBytes: 1 << 20,
	})
	path.SetReverseReceiver(func(*netsim.Packet) {})
	r := NewSubflowRecv(eng, path, benchSink{}, 60)
	const mss = 1400
	b.ReportAllocs()
	b.ResetTimer()
	// One packet reused across iterations (as the link layer does with
	// its ring slots), so the benchmark measures the receiver, not a
	// per-iteration literal allocation.
	pkt := netsim.Packet{Kind: netsim.Data, Size: mss + 60, PayloadLen: mss}
	for i := 0; i < b.N; i++ {
		r.OnPacket(&pkt)
		pkt.Seq += mss
		pkt.DSN += mss
		if i&1023 == 1023 {
			eng.Run() // drain the ACK-side link events
		}
	}
	eng.Run()
}

// BenchmarkSubflowRecvReorder measures reassembly under persistent
// reordering: segments arrive in windows of 16 delivered in a fixed
// pseudo-random permutation, so most arrivals are buffered out of order
// and each window ends with a burst of hole-filling cumulative
// advances — the access pattern that made the buffered map hot in the
// PR 3 profile.
func BenchmarkSubflowRecvReorder(b *testing.B) {
	eng := sim.New()
	path := netsim.NewPath(eng, netsim.PathConfig{
		Name:       "bench",
		RateBps:    1e9,
		Delay:      time.Millisecond,
		QueueBytes: 1 << 20,
	})
	path.SetReverseReceiver(func(*netsim.Packet) {})
	r := NewSubflowRecv(eng, path, benchSink{}, 60)
	const mss = 1400
	const window = 16
	// A fixed pseudo-random permutation keeps the arrival schedule
	// identical across runs and across implementation changes.
	perm := sim.NewRNG(0x5eed).Perm(window)
	b.ReportAllocs()
	b.ResetTimer()
	pkt := netsim.Packet{Kind: netsim.Data, Size: mss + 60, PayloadLen: mss}
	var seq int64
	for i := 0; i < b.N; i += window {
		for _, k := range perm {
			pkt.Seq = seq + int64(k)*mss
			pkt.DSN = pkt.Seq
			r.OnPacket(&pkt)
		}
		seq += window * mss
		if i&1023 == 1008 {
			eng.Run() // drain the ACK-side link events
		}
	}
	eng.Run()
}
