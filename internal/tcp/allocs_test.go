package tcp

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestSubflowSteadyStateAllocs pins the transport-layer half of the
// allocation-free core: with the segment pool, the inflight ring and the
// engine arena warm, a full send→deliver→ACK→window-update cycle
// allocates nothing per segment.
func TestSubflowSteadyStateAllocs(t *testing.T) {
	eng := sim.New()
	// A realistic bounded queue so drop-tail losses cap the congestion
	// window: pools and rings stop growing once the window stabilizes
	// (an unbounded queue would let Reno grow the working set forever).
	path := netsim.NewPath(eng, netsim.PathConfig{
		Name:       "allocs",
		RateBps:    50e6,
		Delay:      5 * time.Millisecond,
		QueueBytes: 64 * 1024,
	})
	conn := &benchConn{}
	s := NewSubflow(eng, Config{ConnID: 1, ID: 0, Name: "allocs"}, path, cc.NewReno(), conn)
	recv := NewSubflowRecv(eng, path, benchSink{}, 60)
	path.SetForwardReceiver(recv.OnPacket)
	path.SetReverseReceiver(s.OnAck)
	s.SeedRTT(10 * time.Millisecond)

	const mss = 1400
	const batch = 256
	var dsn, goal int64
	conn.pump = func() {
		for s.CanSend() && dsn < goal {
			s.SendSegment(dsn, mss)
			dsn += mss
		}
	}
	cycle := func() {
		goal += batch * mss
		conn.pump()
		eng.Run()
	}
	// Warm until the window, pools and rings reach their loss-bounded
	// steady state.
	for i := 0; i < 10; i++ {
		cycle()
	}
	if avg := testing.AllocsPerRun(20, cycle); avg != 0 {
		t.Fatalf("steady-state subflow transfer allocates %v per %d-segment batch, want 0", avg, batch)
	}
	if s.InflightSegments() != 0 {
		t.Fatalf("%d segments still in flight", s.InflightSegments())
	}
}
