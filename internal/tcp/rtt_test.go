package tcp

import (
	"testing"
	"testing/quick"
	"time"
)

func TestRTTFirstSample(t *testing.T) {
	e := NewRTTEstimator(0, 0)
	e.Sample(100 * time.Millisecond)
	if e.Srtt() != 100*time.Millisecond {
		t.Fatalf("srtt = %v, want 100ms", e.Srtt())
	}
	if e.Var() != 50*time.Millisecond {
		t.Fatalf("rttvar = %v, want 50ms", e.Var())
	}
	if e.StdDev() != 50*time.Millisecond {
		t.Fatalf("mdev = %v, want 50ms", e.StdDev())
	}
}

func TestRTTConvergesToConstant(t *testing.T) {
	e := NewRTTEstimator(0, 0)
	for i := 0; i < 200; i++ {
		e.Sample(80 * time.Millisecond)
	}
	if d := e.Srtt() - 80*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("srtt = %v, want ~80ms", e.Srtt())
	}
	if e.StdDev() > time.Millisecond {
		t.Fatalf("mdev = %v for constant samples, want ~0", e.StdDev())
	}
}

func TestRTOBeforeSamples(t *testing.T) {
	e := NewRTTEstimator(0, 0)
	if e.RTO() != time.Second {
		t.Fatalf("initial RTO = %v, want 1s", e.RTO())
	}
}

func TestRTOMinClamp(t *testing.T) {
	e := NewRTTEstimator(200*time.Millisecond, 0)
	for i := 0; i < 100; i++ {
		e.Sample(time.Millisecond)
	}
	if e.RTO() != 200*time.Millisecond {
		t.Fatalf("RTO = %v, want clamped 200ms", e.RTO())
	}
}

func TestRTOMaxClamp(t *testing.T) {
	e := NewRTTEstimator(0, 2*time.Second)
	for i := 0; i < 10; i++ {
		e.Sample(10 * time.Second)
	}
	if e.RTO() != 2*time.Second {
		t.Fatalf("RTO = %v, want clamped 2s", e.RTO())
	}
}

func TestRTOAtLeastSrtt(t *testing.T) {
	if err := quick.Check(func(ms uint16) bool {
		e := NewRTTEstimator(0, 0)
		d := time.Duration(ms%5000+1) * time.Millisecond
		for i := 0; i < 20; i++ {
			e.Sample(d)
		}
		return e.RTO() >= e.Srtt()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRTTSampleCountAndNonPositive(t *testing.T) {
	e := NewRTTEstimator(0, 0)
	e.Sample(-5 * time.Millisecond) // treated as tiny positive
	if e.Samples() != 1 {
		t.Fatalf("samples = %d, want 1", e.Samples())
	}
	if e.Srtt() <= 0 {
		t.Fatalf("srtt = %v, want positive", e.Srtt())
	}
}

func TestRTTVariabilityRaisesStdDev(t *testing.T) {
	e := NewRTTEstimator(0, 0)
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			e.Sample(50 * time.Millisecond)
		} else {
			e.Sample(150 * time.Millisecond)
		}
	}
	if e.StdDev() < 20*time.Millisecond {
		t.Fatalf("mdev = %v for alternating 50/150ms, want >= 20ms", e.StdDev())
	}
}
