// Package tcp models a single MPTCP subflow at packet level: a sender
// with Linux-style RTT estimation, slow start / congestion avoidance,
// fast retransmit, retransmission timeouts with backoff, and the
// idle-restart congestion-window reset (RFC 2861) whose interaction with
// path heterogeneity is the root cause the paper identifies.
package tcp

import "time"

// RTTEstimator implements RFC 6298 smoothing with the Linux mdev variant,
// which additionally tracks a mean-deviation estimate usable as the σ the
// ECF scheduler needs.
type RTTEstimator struct {
	srtt   time.Duration
	rttvar time.Duration
	mdev   time.Duration
	minRTO time.Duration
	maxRTO time.Duration
	// samples counts RTT measurements taken.
	samples int64
	// last is the most recent raw measurement.
	last time.Duration
	// min is the smallest measurement seen (propagation-delay estimate).
	min time.Duration
	// ring holds the most recent measurements for RecentMin (HyStart
	// uses the min of the last few samples to ignore self-induced burst
	// queueing).
	ring [8]time.Duration
}

// NewRTTEstimator returns an estimator with the given RTO clamp range.
// Zero values select Linux-like defaults (200 ms .. 120 s).
func NewRTTEstimator(minRTO, maxRTO time.Duration) *RTTEstimator {
	e := &RTTEstimator{}
	e.Reset(minRTO, maxRTO)
	return e
}

// Reset returns the estimator to the state NewRTTEstimator(minRTO,
// maxRTO) would construct: no samples, default RTO, empty recent-min
// ring.
func (e *RTTEstimator) Reset(minRTO, maxRTO time.Duration) {
	if minRTO <= 0 {
		minRTO = 200 * time.Millisecond
	}
	if maxRTO <= 0 {
		maxRTO = 120 * time.Second
	}
	*e = RTTEstimator{minRTO: minRTO, maxRTO: maxRTO}
}

// Sample folds one RTT measurement into the estimate.
func (e *RTTEstimator) Sample(rtt time.Duration) {
	if rtt <= 0 {
		rtt = time.Microsecond
	}
	e.samples++
	e.last = rtt
	e.ring[e.samples%int64(len(e.ring))] = rtt
	if e.min == 0 || rtt < e.min {
		e.min = rtt
	}
	if e.samples == 1 {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.mdev = rtt / 2
		return
	}
	// RFC 6298: srtt = 7/8 srtt + 1/8 rtt; rttvar = 3/4 var + 1/4 |err|.
	err := rtt - e.srtt
	if err < 0 {
		err = -err
	}
	e.srtt += (rtt - e.srtt) / 8
	e.rttvar += (err - e.rttvar) / 4
	e.mdev += (err - e.mdev) / 4
}

// Srtt returns the smoothed RTT, or 0 before the first sample.
func (e *RTTEstimator) Srtt() time.Duration { return e.srtt }

// Var returns the RTT variation estimate.
func (e *RTTEstimator) Var() time.Duration { return e.rttvar }

// StdDev returns the mean-deviation estimate (Linux mdev), which ECF uses
// as σ in its scheduling inequalities.
func (e *RTTEstimator) StdDev() time.Duration { return e.mdev }

// Samples returns the number of measurements folded in.
func (e *RTTEstimator) Samples() int64 { return e.samples }

// Last returns the most recent raw measurement.
func (e *RTTEstimator) Last() time.Duration { return e.last }

// Min returns the smallest measurement seen, a propagation-delay
// estimate used by the HyStart-style slow-start exit.
func (e *RTTEstimator) Min() time.Duration { return e.min }

// RecentMin returns the smallest of the last eight measurements (the
// full-ring minimum once eight samples exist). Bursty senders inflate
// individual samples with their own serialization; the windowed minimum
// sees past that, as HyStart's design does.
func (e *RTTEstimator) RecentMin() time.Duration {
	n := e.samples
	if n > int64(len(e.ring)) {
		n = int64(len(e.ring))
	}
	if n == 0 {
		return 0
	}
	min := time.Duration(0)
	for i := int64(0); i < int64(len(e.ring)); i++ {
		v := e.ring[i]
		if v == 0 {
			continue
		}
		if min == 0 || v < min {
			min = v
		}
	}
	return min
}

// RTO returns srtt + 4·rttvar clamped to [minRTO, maxRTO]; before any
// sample it returns 1 s (RFC 6298 §2.1).
func (e *RTTEstimator) RTO() time.Duration {
	if e.samples == 0 {
		return time.Second
	}
	rto := e.srtt + 4*e.rttvar
	if rto < e.minRTO {
		rto = e.minRTO
	}
	if rto > e.maxRTO {
		rto = e.maxRTO
	}
	return rto
}
