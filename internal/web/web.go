// Package web models the paper's two HTTP workloads: simple single-file
// downloads (wget, §5.4) and full-page browsing — a CNN-like page of 107
// objects fetched over six parallel persistent MPTCP connections (§5.5).
package web

import (
	"time"

	"repro/internal/mptcp"
	"repro/internal/sim"
)

// ObjectResult is one completed object download.
type ObjectResult struct {
	// Index is the object's position in the page manifest.
	Index int
	// Bytes is the object size.
	Bytes int64
	// ConnID is the connection that carried it.
	ConnID int
	// RequestedAt/CompletedAt bound the client-observed download.
	RequestedAt sim.Time
	CompletedAt sim.Time
}

// Duration returns the client-observed completion time — the quantity of
// Figures 18-20 and 23(a).
func (o ObjectResult) Duration() time.Duration { return o.CompletedAt - o.RequestedAt }

// PageResult aggregates a full page fetch.
type PageResult struct {
	Objects []ObjectResult
	// PageLoadTime is from first request to last completion.
	PageLoadTime time.Duration
}

// CompletionTimes returns the per-object durations.
func (p *PageResult) CompletionTimes() []time.Duration {
	out := make([]time.Duration, len(p.Objects))
	for i, o := range p.Objects {
		out[i] = o.Duration()
	}
	return out
}

// Download fetches one object of the given size over conn and hands the
// result to done. It models wget: one request, one response.
func Download(conn *mptcp.Conn, bytes int64, done func(ObjectResult)) {
	conn.Request(bytes, func(tr *mptcp.Transfer) {
		done(ObjectResult{
			Bytes:       bytes,
			ConnID:      conn.ID(),
			RequestedAt: tr.RequestedAt,
			CompletedAt: tr.CompletedAt,
		})
	})
}

// PageConfig parameterizes a page fetch.
type PageConfig struct {
	// Objects are the object sizes, fetched in manifest order.
	Objects []int64
	// ThinkTime is the client-side gap between finishing one object and
	// requesting the next on the same connection (parse/layout work).
	// Zero means back-to-back requests.
	ThinkTime time.Duration
}

// FetchPage downloads all objects over the given persistent connections,
// dispatching greedily: every idle connection takes the next object from
// the manifest, like a browser multiplexing six parallel HTTP/1.1
// connections. done fires once all objects have completed.
func FetchPage(eng *sim.Engine, conns []*mptcp.Conn, cfg PageConfig, done func(*PageResult)) {
	if len(conns) == 0 || len(cfg.Objects) == 0 {
		panic("web: FetchPage needs connections and objects")
	}
	f := &pageFetcher{
		eng:       eng,
		cfg:       cfg,
		done:      done,
		res:       &PageResult{},
		start:     eng.Now(),
		remaining: len(cfg.Objects),
	}
	for _, conn := range conns {
		f.fetch(conn)
	}
}

// pageFetcher is the state of one in-progress page load.
type pageFetcher struct {
	eng       *sim.Engine
	cfg       PageConfig
	done      func(*PageResult)
	res       *PageResult
	start     sim.Time
	next      int
	remaining int
}

// webThink is the argument of one scheduled think-time gap: which
// fetcher resumes, on which connection.
type webThink struct {
	f    *pageFetcher
	conn *mptcp.Conn
}

// kindWebThink dispatches the end of a think-time gap through the typed
// event table.
var kindWebThink sim.EventKind

func init() {
	kindWebThink = sim.RegisterKind("web.think", func(a any) {
		th := a.(*webThink)
		th.f.fetch(th.conn)
	})
}

// fetch takes the next manifest object on an idle connection.
func (f *pageFetcher) fetch(conn *mptcp.Conn) {
	if f.next >= len(f.cfg.Objects) {
		return
	}
	idx := f.next
	size := f.cfg.Objects[idx]
	f.next++
	conn.Request(size, func(tr *mptcp.Transfer) {
		f.res.Objects = append(f.res.Objects, ObjectResult{
			Index:       idx,
			Bytes:       size,
			ConnID:      conn.ID(),
			RequestedAt: tr.RequestedAt,
			CompletedAt: tr.CompletedAt,
		})
		f.remaining--
		if f.remaining == 0 {
			f.res.PageLoadTime = f.eng.Now() - f.start
			if f.done != nil {
				f.done(f.res)
			}
			return
		}
		if f.cfg.ThinkTime > 0 {
			f.eng.ScheduleEvent(f.cfg.ThinkTime, kindWebThink, &webThink{f: f, conn: conn})
		} else {
			f.fetch(conn)
		}
	})
}

// CNNPageObjects synthesizes a 107-object manifest shaped like the
// paper's 9/11/2014 copy of the CNN home page: one HTML document, many
// small icons/scripts, a band of medium assets and a tail of large
// images, ~2.5 MB in total. Deterministic for a given seed.
func CNNPageObjects(seed uint64) []int64 {
	rng := sim.NewRNG(seed ^ 0xC44)
	out := make([]int64, 0, 107)
	out = append(out, 110_000) // the HTML document
	for i := 0; i < 64; i++ {  // small: 1-15 KB (icons, scripts, beacons)
		out = append(out, 1_000+int64(rng.Intn(14_000)))
	}
	for i := 0; i < 28; i++ { // medium: 15-60 KB (thumbnails, CSS, JS)
		out = append(out, 15_000+int64(rng.Intn(45_000)))
	}
	for i := 0; i < 14; i++ { // large: 60-300 KB (hero images)
		out = append(out, 60_000+int64(rng.Intn(240_000)))
	}
	return out
}
