package web

import (
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mptcp"
)

func TestCNNPageShape(t *testing.T) {
	objs := CNNPageObjects(1)
	if len(objs) != 107 {
		t.Fatalf("object count = %d, want 107 (as deployed in §5.5)", len(objs))
	}
	var total int64
	for _, o := range objs {
		if o <= 0 {
			t.Fatal("non-positive object size")
		}
		total += o
	}
	if total < 1_500_000 || total > 4_500_000 {
		t.Fatalf("page total = %d bytes, want ~2.5 MB", total)
	}
}

func TestCNNPageDeterministic(t *testing.T) {
	a := CNNPageObjects(7)
	b := CNNPageObjects(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different manifests")
		}
	}
	c := CNNPageObjects(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical manifests")
	}
}

func TestDownload(t *testing.T) {
	net := core.NewNetwork(core.DefaultPaths(5, 5))
	conn := net.NewConn(core.ConnOptions{Scheduler: "ecf"})
	var got *ObjectResult
	Download(conn, 512_000, func(o ObjectResult) { got = &o })
	net.RunAll()
	if got == nil {
		t.Fatal("download did not complete")
	}
	if got.Bytes != 512_000 || got.Duration() <= 0 {
		t.Fatalf("result = %+v", got)
	}
	// 512 KB over ~10 Mbps aggregate: should be well under 3 s.
	if got.Duration() > 3*time.Second {
		t.Fatalf("duration = %v, too slow", got.Duration())
	}
}

func fetchCNN(t *testing.T, schedName string, wifiMbps, lteMbps float64, nConns int) *PageResult {
	t.Helper()
	net := core.NewNetwork(core.DefaultPaths(wifiMbps, lteMbps))
	conns := make([]*mptcp.Conn, nConns)
	for i := range conns {
		conns[i] = net.NewConn(core.ConnOptions{Scheduler: schedName})
	}
	var out *PageResult
	FetchPage(net.Engine(), conns, PageConfig{
		Objects:   CNNPageObjects(3),
		ThinkTime: 20 * time.Millisecond,
	}, func(r *PageResult) { out = r })
	net.RunAll()
	if out == nil {
		t.Fatalf("page fetch (%s) did not complete", schedName)
	}
	return out
}

func TestFetchPageCompletesAllObjects(t *testing.T) {
	res := fetchCNN(t, "minrtt", 5, 5, 6)
	if len(res.Objects) != 107 {
		t.Fatalf("completed %d objects, want 107", len(res.Objects))
	}
	if res.PageLoadTime <= 0 {
		t.Fatal("no page load time")
	}
	// All six connections should have carried traffic.
	used := map[int]bool{}
	for _, o := range res.Objects {
		used[o.ConnID] = true
	}
	if len(used) != 6 {
		t.Fatalf("connections used = %d, want 6", len(used))
	}
}

func TestFetchPageSingleConn(t *testing.T) {
	res := fetchCNN(t, "ecf", 5, 5, 1)
	if len(res.Objects) != 107 {
		t.Fatalf("completed %d objects, want 107", len(res.Objects))
	}
	// Sequential on one connection: completions must be in manifest order.
	for i := 1; i < len(res.Objects); i++ {
		if res.Objects[i].Index < res.Objects[i-1].Index {
			t.Fatal("single-connection completions out of manifest order")
		}
	}
}

func TestECFPageTailBetterHeterogeneous(t *testing.T) {
	// §5.5's claim is about the object completion-time distribution:
	// "ECF completes 99% of object downloads earlier than the other
	// schedulers" at 1/10 Mbps. Assert the tail improves and the median
	// does not regress. (Aggregate page-load time is not a paper metric:
	// ECF deliberately leaves the slow path idle at burst tails.)
	quantile := func(r *PageResult, q float64) time.Duration {
		ds := r.CompletionTimes()
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[int(float64(len(ds)-1)*q)]
	}
	def := fetchCNN(t, "minrtt", 1, 10, 6)
	ecf := fetchCNN(t, "ecf", 1, 10, 6)
	if quantile(ecf, 0.99) > quantile(def, 0.99) {
		t.Fatalf("ecf p99 %v worse than default %v", quantile(ecf, 0.99), quantile(def, 0.99))
	}
	if quantile(ecf, 0.5) > quantile(def, 0.5)*12/10 {
		t.Fatalf("ecf median %v much worse than default %v", quantile(ecf, 0.5), quantile(def, 0.5))
	}
}

func TestFetchPagePanicsOnEmpty(t *testing.T) {
	net := core.NewNetwork(core.DefaultPaths(5, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("empty FetchPage did not panic")
		}
	}()
	FetchPage(net.Engine(), nil, PageConfig{Objects: []int64{1}}, nil)
}
