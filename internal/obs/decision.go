package obs

import "time"

// SchedCandidate is one subflow as the scheduler saw it at decision
// time.
type SchedCandidate struct {
	Name string
	// Srtt and StdDev are the RTT estimate and its mean deviation
	// (ECF's σ); zero before the first sample.
	Srtt   time.Duration
	StdDev time.Duration
	// Cwnd is the congestion window in segments; Inflight the unacked
	// segments; Avail the remaining window space in segments.
	Cwnd     float64
	Inflight int
	Avail    int
	CanSend  bool
	// Score is scheduler-specific: the DAPS deficit credit after the
	// decision; unused by the other schedulers.
	Score float64
}

// EcfQuantities are the terms of the paper's Eq. 1–2 (Algorithm 1) as
// ECF evaluated them for one decision, in segment/second units.
type EcfQuantities struct {
	// K is the unscheduled backlog in segments; CwndF/CwndS the fast
	// and second-fastest windows; RTTF/RTTS their smoothed RTTs; Delta
	// the max(σ_f, σ_s) variability margin.
	K     float64
	CwndF float64
	CwndS float64
	RTTF  float64
	RTTS  float64
	Delta float64
	// N is the fast-path drain estimate in round trips (1 + k/cwnd_f,
	// or the doubling-window form in slow start); Beta the hysteresis
	// factor; Hysteresis whether the waiting state was set entering the
	// decision.
	N          float64
	Beta       float64
	Hysteresis bool
	// LHS/RHS and WaitTest are Eq. 1: n·RTT_f < (1+β·waiting)·(RTT_s+δ).
	LHS      float64
	RHS      float64
	WaitTest bool
	// GuardLHS/GuardRHS and GuardOK are Eq. 2:
	// k/cwnd_s·RTT_s ≥ 2·RTT_f+δ; GuardUsed is false for the ablation
	// that disables the guard.
	GuardLHS  float64
	GuardRHS  float64
	GuardOK   bool
	GuardUsed bool
}

// BlestQuantities are the terms of BLEST's blocking estimate for one
// decision.
type BlestQuantities struct {
	RTTF  float64
	RTTS  float64
	CwndF float64
	// X is the bytes the fast subflow could send during one slow RTT;
	// Lambda the adaptive correction factor; FreeBytes the free
	// connection-level send window; OccupiedBytes the slow subflow's
	// inflight plus the segment under decision.
	X             float64
	Lambda        float64
	FreeBytes     float64
	OccupiedBytes float64
}

// SchedDecision is one scheduling choice: the candidate set, the
// quantities compared, and the verdict.
type SchedDecision struct {
	// At is the virtual time of the decision; Scheduler the registry
	// name; Conn the connection ID.
	At        time.Duration
	Scheduler string
	Conn      int
	// HeadDSN is the data-level sequence number of the segment under
	// decision (-1 when the backlog is empty); Transfer the admission
	// sequence number of the transfer that segment belongs to (-1 when
	// unknown) — the key the per-transfer decision log groups by.
	HeadDSN  int64
	Transfer int64
	// BacklogBytes is the unscheduled backlog.
	BacklogBytes int64
	Candidates   []SchedCandidate
	// Chosen is the selected subflow's name ("" when the scheduler
	// returned nothing); Wait marks a deliberate ECF/BLEST wait for the
	// fast path (as opposed to having no sendable subflow at all).
	Chosen string
	Wait   bool
	// Reason is a short human-readable verdict.
	Reason string
	// Ecf/Blest carry the scheduler-specific quantities when the
	// decision reached the respective estimate (nil otherwise).
	Ecf   *EcfQuantities
	Blest *BlestQuantities
}

// DecisionSink receives scheduler decisions. Schedulers hold a nil
// sink except on the traced cell, and must treat recording as
// observation only — a sink never influences the choice.
type DecisionSink interface {
	RecordDecision(d *SchedDecision)
}

// DecisionRecording is implemented by schedulers that support decision
// tracing (ECF, BLEST, DAPS, minRTT). SetDecisionSink(nil) detaches.
type DecisionRecording interface {
	SetDecisionSink(DecisionSink)
}

// DecisionRecorder is the decision ring; it implements DecisionSink by
// deep-copying each decision (schedulers may reuse their scratch).
type DecisionRecorder struct {
	ring ring[SchedDecision]
}

// NewDecisionRecorder returns a recorder retaining the last capacity
// decisions (capacity <= 0 selects 16k).
func NewDecisionRecorder(capacity int) *DecisionRecorder {
	if capacity <= 0 {
		capacity = 1 << 14
	}
	return &DecisionRecorder{ring: newRing[SchedDecision](capacity)}
}

// RecordDecision implements DecisionSink. The candidate slice and the
// quantity structs are copied, so the caller may reuse them.
func (r *DecisionRecorder) RecordDecision(d *SchedDecision) {
	cp := *d
	cp.Candidates = append([]SchedCandidate(nil), d.Candidates...)
	if d.Ecf != nil {
		e := *d.Ecf
		cp.Ecf = &e
	}
	if d.Blest != nil {
		b := *d.Blest
		cp.Blest = &b
	}
	r.ring.record(cp)
}

// Decisions returns the retained records, oldest first.
func (r *DecisionRecorder) Decisions() []SchedDecision { return r.ring.snapshot() }

// Total returns how many records were ever written.
func (r *DecisionRecorder) Total() uint64 { return r.ring.n }

// Dropped returns how many records the capacity bound evicted.
func (r *DecisionRecorder) Dropped() uint64 { return r.ring.dropped() }
