package obs

import "time"

// ring is a fixed-capacity overwrite-oldest record buffer. The i-th
// record ever written lives at index i%cap, so once full the oldest
// record is at n%cap and a snapshot is two copies.
type ring[T any] struct {
	buf []T
	n   uint64 // records ever written
}

func newRing[T any](capacity int) ring[T] {
	return ring[T]{buf: make([]T, 0, capacity)}
}

func (r *ring[T]) record(v T) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v)
	} else {
		r.buf[r.n%uint64(cap(r.buf))] = v
	}
	r.n++
}

// snapshot returns the retained records, oldest first.
func (r *ring[T]) snapshot() []T {
	out := make([]T, len(r.buf))
	if r.n <= uint64(len(r.buf)) {
		copy(out, r.buf)
		return out
	}
	start := int(r.n % uint64(cap(r.buf)))
	k := copy(out, r.buf[start:])
	copy(out[k:], r.buf[:start])
	return out
}

// dropped returns how many records were evicted by the capacity bound.
func (r *ring[T]) dropped() uint64 {
	if r.n > uint64(len(r.buf)) {
		return r.n - uint64(len(r.buf))
	}
	return 0
}

// KindCoalesced is the EngineEvent.Kind value for a logical event
// claimed inline via sim.Engine.RunsNext — it never collides with a
// registered sim.EventKind (the registry is bounded far below 255).
const KindCoalesced uint8 = 0xFF

// EngineEvent is one flight-recorder record, written at dispatch by
// sim.Engine.Step (heap dispatches) and RunsNext (inline claims).
type EngineEvent struct {
	// At is the event's virtual time.
	At time.Duration
	// Ticket is the event's tie-break position: the heap entry's
	// sequence number, or the claimed ticket for a coalesced event.
	Ticket uint64
	// Kind is the sim.EventKind dispatched (KindCoalesced for inline
	// claims). The exporter resolves names via sim.KindName.
	Kind uint8
	// Coalesced marks an inline claim (no heap round-trip).
	Coalesced bool
	// Tag is a deterministic argument tag — the arena slot index the
	// event's argument occupied (engine-local, reused over time; useful
	// for correlating re-arms of the same timer within a burst).
	Tag int32
}

// FlightRecorder is the engine's fixed-capacity dispatch ring.
type FlightRecorder struct {
	ring ring[EngineEvent]
}

// NewFlightRecorder returns a recorder retaining the last capacity
// dispatches (capacity <= 0 selects 64k).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &FlightRecorder{ring: newRing[EngineEvent](capacity)}
}

// Record appends one dispatch record, evicting the oldest when full.
func (r *FlightRecorder) Record(ev EngineEvent) { r.ring.record(ev) }

// Events returns the retained records, oldest first.
func (r *FlightRecorder) Events() []EngineEvent { return r.ring.snapshot() }

// Total returns how many records were ever written.
func (r *FlightRecorder) Total() uint64 { return r.ring.n }

// Dropped returns how many records the capacity bound evicted.
func (r *FlightRecorder) Dropped() uint64 { return r.ring.dropped() }

// PacketOp is the per-packet hook site inside netsim.Link.
type PacketOp uint8

const (
	// PktEnqueue: the packet was accepted onto the link queue.
	PktEnqueue PacketOp = iota
	// PktDrop: the drop-tail buffer was full and the packet discarded.
	PktDrop
	// PktDeliver: the packet was handed to the receiver.
	PktDeliver
	// PktLoss: the random-loss process discarded the packet on delivery.
	PktLoss
	// PktCoalesce: the delivery was claimed inline by the batched drain
	// (it did not round-trip through the event heap); a PktDeliver or
	// PktLoss for the same packet follows.
	PktCoalesce
)

// String names the hook site.
func (op PacketOp) String() string {
	switch op {
	case PktEnqueue:
		return "enqueue"
	case PktDrop:
		return "drop"
	case PktDeliver:
		return "deliver"
	case PktLoss:
		return "loss"
	case PktCoalesce:
		return "coalesce"
	default:
		return "unknown"
	}
}

// PacketEvent is one per-packet record from a link hook.
type PacketEvent struct {
	At        time.Duration
	Op        PacketOp
	Link      string
	ConnID    int
	SubflowID int
	Seq       int64
	DSN       int64
	Size      int
	// QueuedBytes is the link's queue occupancy (bytes waiting for or
	// in serialization) after the hook's accounting — the counter-track
	// source for the Chrome trace.
	QueuedBytes int
	Retransmit  bool
}

// PacketRecorder is the per-link packet-event ring (one recorder is
// shared by every link of the traced cell; events carry the link name).
type PacketRecorder struct {
	ring ring[PacketEvent]
}

// NewPacketRecorder returns a recorder retaining the last capacity
// packet events (capacity <= 0 selects 64k).
func NewPacketRecorder(capacity int) *PacketRecorder {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &PacketRecorder{ring: newRing[PacketEvent](capacity)}
}

// Record appends one packet event, evicting the oldest when full.
func (r *PacketRecorder) Record(ev PacketEvent) { r.ring.record(ev) }

// Events returns the retained records, oldest first.
func (r *PacketRecorder) Events() []PacketEvent { return r.ring.snapshot() }

// Total returns how many records were ever written.
func (r *PacketRecorder) Total() uint64 { return r.ring.n }

// Dropped returns how many records the capacity bound evicted.
func (r *PacketRecorder) Dropped() uint64 { return r.ring.dropped() }

// SubflowOp is the per-subflow hook site inside tcp.Subflow.
type SubflowOp uint8

const (
	// SfSend: a segment (first transmission or retransmission) was
	// pushed onto the wire.
	SfSend SubflowOp = iota
	// SfAck: a new cumulative ACK advanced sndUna.
	SfAck
	// SfRTO: the retransmission timer fired for real (window collapsed
	// to one segment).
	SfRTO
	// SfFastRtx: three duplicate ACKs triggered a fast retransmit.
	SfFastRtx
)

// String names the hook site.
func (op SubflowOp) String() string {
	switch op {
	case SfSend:
		return "send"
	case SfAck:
		return "ack"
	case SfRTO:
		return "rto"
	case SfFastRtx:
		return "fast-rtx"
	default:
		return "unknown"
	}
}

// SubflowEvent is one record from a tcp.Subflow hook.
type SubflowEvent struct {
	At     time.Duration
	Op     SubflowOp
	Name   string
	ConnID int
	ID     int
	// Seq is the subflow-level sequence involved: the transmitted
	// segment's seq for SfSend, sndUna otherwise.
	Seq int64
	// AckSeq is the cumulative ACK that triggered an SfAck (0 otherwise).
	AckSeq int64
	// Cwnd and Ssthresh snapshot the congestion state after the hook's
	// transition — the cwnd counter-track source for the Chrome trace.
	Cwnd         float64
	Ssthresh     float64
	InflightSegs int
	Srtt         time.Duration
}

// SubflowRecorder is the subflow-event ring (shared by every subflow of
// the traced cell; events carry the subflow name).
type SubflowRecorder struct {
	ring ring[SubflowEvent]
}

// NewSubflowRecorder returns a recorder retaining the last capacity
// subflow events (capacity <= 0 selects 32k).
func NewSubflowRecorder(capacity int) *SubflowRecorder {
	if capacity <= 0 {
		capacity = 1 << 15
	}
	return &SubflowRecorder{ring: newRing[SubflowEvent](capacity)}
}

// Record appends one subflow event, evicting the oldest when full.
func (r *SubflowRecorder) Record(ev SubflowEvent) { r.ring.record(ev) }

// Events returns the retained records, oldest first.
func (r *SubflowRecorder) Events() []SubflowEvent { return r.ring.snapshot() }

// Total returns how many records were ever written.
func (r *SubflowRecorder) Total() uint64 { return r.ring.n }

// Dropped returns how many records the capacity bound evicted.
func (r *SubflowRecorder) Dropped() uint64 { return r.ring.dropped() }

// CellRecorder aggregates the recorders armed for one traced cell.
type CellRecorder struct {
	// Experiment and Cell identify the traced cell (the results.Spec
	// family name and cell index, e.g. "grid/ecf" 14).
	Experiment string
	Cell       int

	Flight    *FlightRecorder
	Packets   *PacketRecorder
	Subflows  *SubflowRecorder
	Decisions *DecisionRecorder
}

// NewCellRecorder returns a recorder set with default ring capacities.
func NewCellRecorder(experiment string, cell int) *CellRecorder {
	return &CellRecorder{
		Experiment: experiment,
		Cell:       cell,
		Flight:     NewFlightRecorder(0),
		Packets:    NewPacketRecorder(0),
		Subflows:   NewSubflowRecorder(0),
		Decisions:  NewDecisionRecorder(0),
	}
}
