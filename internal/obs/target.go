package obs

import (
	"sync"
	"sync/atomic"
)

// The process-wide trace target. At most one cell per run is traced;
// selection happens before any cell runs (ecfbench parses -trace-cell
// and calls SetTraceTarget before starting the sweep), so the string
// fields need no lock of their own — only `enabled` is read while
// cells are in flight, and it is atomic.
var (
	traceGate    sync.RWMutex
	traceEnabled atomic.Bool
	targetExp    string
	targetCell   int
	armedRec     atomic.Pointer[CellRecorder]
	capturedRec  atomic.Pointer[CellRecorder]
)

// SetTraceTarget selects the cell to trace, identified by its
// results.Spec experiment name and cell index. It must be called
// before any cell runs and clears a previously captured recorder.
func SetTraceTarget(experiment string, cell int) {
	targetExp = experiment
	targetCell = cell
	capturedRec.Store(nil)
	traceEnabled.Store(true)
}

// ClearTraceTarget disables tracing (the captured recorder, if any,
// stays retrievable).
func ClearTraceTarget() {
	traceEnabled.Store(false)
	armedRec.Store(nil)
}

// TraceEnabled reports whether a trace target is set. Callers on the
// per-cell path check this first so the no-target case costs one
// atomic load.
func TraceEnabled() bool { return traceEnabled.Load() }

// EnterCell brackets one cell run. The target cell takes the trace
// gate's write lock and arms a fresh CellRecorder — it computes alone,
// so only its own object graph can observe the armed recorder — and
// its release captures the recorder for CapturedCell. Every other cell
// takes the read lock and runs concurrently as usual. The returned
// release func must be called exactly once when the cell finishes.
func EnterCell(experiment string, cell int) (traced bool, release func()) {
	if traceEnabled.Load() && experiment == targetExp && cell == targetCell {
		traceGate.Lock()
		rec := NewCellRecorder(experiment, cell)
		armedRec.Store(rec)
		return true, func() {
			armedRec.Store(nil)
			capturedRec.Store(rec)
			traceGate.Unlock()
		}
	}
	traceGate.RLock()
	return false, traceGate.RUnlock
}

// ArmedCell returns the recorder armed for the currently-running
// traced cell, or nil. core.NewNetwork calls this to decide whether to
// install instrumentation on the network it is about to hand out.
func ArmedCell() *CellRecorder { return armedRec.Load() }

// CapturedCell returns the recorder of the last completed traced cell,
// or nil if the target never ran (wrong -exp/-scale/-shard selection,
// or a name that matches no cell).
func CapturedCell() *CellRecorder { return capturedRec.Load() }
