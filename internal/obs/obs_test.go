package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestRingOverwritesOldest pins the flight recorder's ring semantics:
// past capacity the oldest records fall off, the snapshot stays in
// chronological order, and Total/Dropped account for every record ever
// seen.
func TestRingOverwritesOldest(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(EngineEvent{Ticket: uint64(i)})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events()) = %d, want 4 (the ring capacity)", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Ticket != want {
			t.Errorf("Events()[%d].Ticket = %d, want %d (oldest-first order after wrap)", i, ev.Ticket, want)
		}
	}
	if r.Total() != 10 {
		t.Errorf("Total() = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", r.Dropped())
	}
}

// TestRingUnderCapacity checks the no-wrap path: everything recorded is
// returned, nothing reported dropped.
func TestRingUnderCapacity(t *testing.T) {
	r := NewPacketRecorder(8)
	for i := 0; i < 3; i++ {
		r.Record(PacketEvent{Seq: int64(i)})
	}
	if got := r.Events(); len(got) != 3 || got[0].Seq != 0 || got[2].Seq != 2 {
		t.Errorf("Events() = %+v, want seqs 0,1,2 in order", got)
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped() = %d, want 0", r.Dropped())
	}
}

// TestEnterCellArmsAndCaptures walks the trace-gate lifecycle: the
// target cell arms a fresh recorder, release publishes it for
// CapturedCell, and non-target cells never see an armed recorder.
func TestEnterCellArmsAndCaptures(t *testing.T) {
	SetTraceTarget("gate-test", 3)
	defer ClearTraceTarget()

	if !TraceEnabled() {
		t.Fatal("TraceEnabled() = false after SetTraceTarget")
	}
	traced, release := EnterCell("gate-test", 2)
	if traced {
		t.Fatal("EnterCell matched the wrong cell index")
	}
	if ArmedCell() != nil {
		t.Fatal("non-target cell observed an armed recorder")
	}
	release()

	traced, release = EnterCell("gate-test", 3)
	if !traced {
		t.Fatal("EnterCell did not match the target cell")
	}
	rec := ArmedCell()
	if rec == nil {
		t.Fatal("target cell has no armed recorder")
	}
	if CapturedCell() != nil {
		t.Fatal("recorder captured before release")
	}
	release()
	if ArmedCell() != nil {
		t.Fatal("recorder still armed after release")
	}
	got := CapturedCell()
	if got != rec {
		t.Fatalf("CapturedCell() = %p, want the armed recorder %p", got, rec)
	}
	if got.Experiment != "gate-test" || got.Cell != 3 {
		t.Errorf("captured identity = %s/%d, want gate-test/3", got.Experiment, got.Cell)
	}
}

// TestSetTraceTargetClearsCapture ensures re-arming for a new run drops
// the previous run's capture instead of serving it as a stale result.
func TestSetTraceTargetClearsCapture(t *testing.T) {
	SetTraceTarget("stale-test", 0)
	defer ClearTraceTarget()
	_, release := EnterCell("stale-test", 0)
	release()
	if CapturedCell() == nil {
		t.Fatal("no capture to go stale")
	}
	SetTraceTarget("stale-test", 1)
	if CapturedCell() != nil {
		t.Fatal("SetTraceTarget kept the previous run's capture")
	}
}

// TestDecisionRecorderCopiesDeeply pins the aliasing contract:
// schedulers reuse their candidate scratch and quantity structs between
// Select calls, so RecordDecision must deep-copy everything it stores.
func TestDecisionRecorderCopiesDeeply(t *testing.T) {
	r := NewDecisionRecorder(4)
	cands := []SchedCandidate{{Name: "wifi", Srtt: 20 * time.Millisecond}}
	ecf := &EcfQuantities{LHS: 1, RHS: 2}
	d := SchedDecision{Scheduler: "ecf", Chosen: "wifi", Candidates: cands, Ecf: ecf}
	r.RecordDecision(&d)

	cands[0].Name = "mutated"
	ecf.LHS = 99
	d.Chosen = "mutated"

	got := r.Decisions()
	if len(got) != 1 {
		t.Fatalf("len(Decisions()) = %d, want 1", len(got))
	}
	if got[0].Candidates[0].Name != "wifi" {
		t.Errorf("stored candidate aliased the scheduler's scratch: Name = %q", got[0].Candidates[0].Name)
	}
	if got[0].Ecf.LHS != 1 {
		t.Errorf("stored EcfQuantities aliased the scheduler's struct: LHS = %v", got[0].Ecf.LHS)
	}
	if got[0].Chosen != "wifi" {
		t.Errorf("stored decision aliased the caller's struct: Chosen = %q", got[0].Chosen)
	}
}

// TestChromeTraceSchema exports a small recorder and checks the trace
// is valid Chrome trace-event JSON: a traceEvents array, required
// fields on every event, and non-decreasing timestamps (metadata
// records excepted — they carry no time).
func TestChromeTraceSchema(t *testing.T) {
	rec := NewCellRecorder("schema-test", 0)
	rec.Flight.Record(EngineEvent{At: 2 * time.Millisecond, Ticket: 1, Kind: 7})
	rec.Flight.Record(EngineEvent{At: 3 * time.Millisecond, Ticket: 2, Kind: KindCoalesced, Coalesced: true})
	rec.Packets.Record(PacketEvent{At: time.Millisecond, Op: PktEnqueue, Link: "wifi:fwd", Seq: 1, Size: 1448, QueuedBytes: 1448})
	rec.Packets.Record(PacketEvent{At: 4 * time.Millisecond, Op: PktDeliver, Link: "wifi:fwd", Seq: 1, Size: 1448})
	rec.Subflows.Record(SubflowEvent{At: time.Millisecond, Op: SfSend, Name: "wifi", Seq: 1, Cwnd: 10})
	rec.Decisions.RecordDecision(&SchedDecision{At: time.Millisecond, Scheduler: "ecf", Chosen: "wifi",
		Candidates: []SchedCandidate{{Name: "wifi"}}, Ecf: &EcfQuantities{}})

	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf, nil); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("traceEvents is empty")
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	last := -1.0
	timed := 0
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("traceEvents[%d] has no ph: %v", i, ev)
		}
		if ph == "M" {
			continue
		}
		ts, ok := ev["ts"].(float64)
		if !ok {
			t.Fatalf("traceEvents[%d] has no numeric ts: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("traceEvents[%d] has no pid: %v", i, ev)
		}
		if ts < last {
			t.Fatalf("traceEvents[%d].ts = %v decreases (prev %v); Perfetto needs sorted events", i, ts, last)
		}
		last = ts
		timed++
	}
	if timed < 6 {
		t.Errorf("only %d timed events exported, want at least the 6 recorded", timed)
	}
}

// TestDecisionLogFormat smoke-tests the human-readable decision log:
// header, transfer grouping, and the Eq. 1/Eq. 2 lines for an ECF
// decision.
func TestDecisionLogFormat(t *testing.T) {
	rec := NewCellRecorder("log-test", 0)
	rec.Decisions.RecordDecision(&SchedDecision{
		At: time.Millisecond, Scheduler: "ecf", Transfer: 0, Chosen: "wifi",
		Reason:     "fast subflow has window space",
		Candidates: []SchedCandidate{{Name: "wifi", CanSend: true}},
		Ecf:        &EcfQuantities{GuardUsed: true},
	})
	rec.Decisions.RecordDecision(&SchedDecision{
		At: 2 * time.Millisecond, Scheduler: "ecf", Transfer: 1, Wait: true,
		Reason: "wait for fast subflow (Eq. 1 holds, Eq. 2 holds)",
	})
	var buf bytes.Buffer
	if err := rec.WriteDecisionLog(&buf); err != nil {
		t.Fatalf("WriteDecisionLog: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"cell log-test/0", "== transfer 0 ==", "== transfer 1 ==", "wifi", "wait", "eq1"} {
		if !strings.Contains(out, want) {
			t.Errorf("decision log missing %q:\n%s", want, out)
		}
	}
}

// TestRunReportRoundTrip writes a report to disk and reads it back,
// checking the schema fields a dashboard would key on.
func TestRunReportRoundTrip(t *testing.T) {
	rep := NewRunReport("quick", 4)
	er := ExperimentReport{
		Name: "fig9", WallClockMs: 12.5, CacheComputed: 144,
		EventsProcessed: 1000, EventsCoalesced: 24, EventsTotal: 1024,
		PacketsDelivered: 800, OutputBytes: 4096, OutputSHA256: "abc",
	}
	// Unsorted on purpose: SetCellDurations sorts and takes
	// nearest-rank percentiles (over sorted [1 2 4 8] ms the p50 rank
	// is index 2 and p95/max land on the largest sample).
	er.SetCellDurations([]time.Duration{
		4 * time.Millisecond, time.Millisecond, 8 * time.Millisecond, 2 * time.Millisecond,
	})
	if er.CellP50Ms != 4 || er.CellP95Ms != 8 || er.CellMaxMs != 8 {
		t.Errorf("duration stats = %v/%v/%v ms, want 4/8/8", er.CellP50Ms, er.CellP95Ms, er.CellMaxMs)
	}
	rep.Experiments = append(rep.Experiments, er)
	rep.WallClockMs = 13
	rep.OutputSHA256 = "def"
	rep.Queue = QueueReport{Kind: "tiered", DepthMax: 42, DepthMean: 17.5, NearScheduled: 1000, BucketSorts: 12, BucketMax: 9}
	rep.Mem = CaptureMemStats()

	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if raw[len(raw)-1] != '\n' {
		t.Error("report file does not end in a newline")
	}
	var got RunReport
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.Tool != "ecfbench" || got.SchemaVersion != 3 {
		t.Errorf("identity = %s/v%d, want ecfbench/v3", got.Tool, got.SchemaVersion)
	}
	if got.Queue.Kind != "tiered" || got.Queue.DepthMax != 42 || got.Queue.DepthMean != 17.5 {
		t.Errorf("queue section did not round-trip: %+v", got.Queue)
	}
	if got.Scale != "quick" || got.Workers != 4 {
		t.Errorf("scale/workers = %s/%d, want quick/4", got.Scale, got.Workers)
	}
	if len(got.Experiments) != 1 || got.Experiments[0].Name != "fig9" ||
		got.Experiments[0].EventsTotal != 1024 || got.Experiments[0].OutputSHA256 != "abc" {
		t.Errorf("experiments did not round-trip: %+v", got.Experiments)
	}
	// The JSON keys are the machine-readable contract; spot-check the
	// snake_case names a consumer greps for.
	for _, key := range []string{"schema_version", "wall_clock_ms", "events_coalesced", "cell_p50_ms", "output_sha256", "heap_alloc_bytes", "depth_max", "near_scheduled", "bucket_sorts"} {
		if !bytes.Contains(raw, []byte(`"`+key+`"`)) {
			t.Errorf("report JSON missing key %q", key)
		}
	}
}
