// Package obs is the observability layer: flight-recorder rings for
// engine, link and subflow events, scheduler decision traces, and the
// machine-readable run report — all recorded for at most one selected
// simulation cell and exported as Chrome trace-event JSON (Perfetto),
// a plain-text decision log, and a JSON run report.
//
// # The zero-cost-when-off contract
//
// Instrumentation is compiled into every hot path of the simulator —
// event dispatch in sim.Engine.Step, per-packet enqueue/deliver in
// netsim.Link, send/ACK/recovery in tcp.Subflow, every scheduler
// decision — and must therefore be provably free when no cell is being
// traced, which is always except under ecfbench -trace-cell:
//
//   - Every instrumentation site is a nil check on a recorder pointer
//     field of the instrumented object. Disabled, a site costs one
//     predictable not-taken branch and zero allocations; there is no
//     interface dispatch, no closure, no atomic, and no map lookup on
//     any per-event path.
//   - Recorder pointers are installed only on the object graph of the
//     one cell selected by SetTraceTarget, by core.NewNetwork/NewConn
//     when they find an armed recorder, and are torn down again by
//     Network.Close and by every Reset in the pooled lifecycle. Cells
//     that are not the target never see a non-nil recorder.
//   - The only cost paid by untraced cells while a trace target is set
//     is one atomic bool load plus a read-lock in results.runCell
//     (outside the simulation, once per cell); with no target set it is
//     the atomic load alone.
//
// The contract is enforced, not aspirational: cmd/benchguard pins
// ns/op, allocs/op and events/op ceilings on the engine, link and
// subflow hot paths with this package compiled in, and
// core.TestSteadyStateAllocsPerCell pins ~0 allocations per simulation
// cell. Recording, when enabled, may allocate freely (ring snapshots,
// candidate-set copies) — tracing is a debugging mode, and a traced
// cell's simulation output is still byte-identical to an untraced run
// (the instrumentation only observes; the golden-output tests in
// internal/experiments pin this too).
//
// # Recording model
//
// Recorders are fixed-capacity overwrite-oldest rings: a trace of a
// long cell keeps the most recent window rather than growing without
// bound, and Dropped reports how much history was evicted. One
// CellRecorder aggregates the four rings (engine flight records, packet
// events, subflow events, scheduler decisions) for the selected cell.
//
// Cell selection is cooperative: results.runCell brackets every cell
// between EnterCell and its release func. The target cell takes the
// trace gate's write lock — it computes alone, so the armed recorder is
// observed only by its own object graph — while every other cell takes
// the read lock and proceeds concurrently as usual. The captured
// recorder is retrieved with CapturedCell after the run.
//
// This package deliberately imports nothing from the simulator, so
// sim, netsim, tcp, sched and mptcp can all depend on it without
// cycles: times are time.Duration, event kinds are uint8 (the exporter
// takes a kind-name resolver func), tickets are uint64.
package obs
