package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format's JSON
// Array Format (the subset Perfetto and chrome://tracing accept):
// instant events ph "i", counter samples ph "C", metadata ph "M".
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds of virtual time
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

const (
	tidEngine    = 0
	tidScheduler = 1
	tidDynamic   = 2 // links then subflows, first-seen order
)

// WriteChromeTrace exports the recorder's rings as Chrome trace-event
// JSON. Engine events land on the "engine" thread named via kindName
// (pass sim.KindName; nil falls back to numeric names), scheduler
// decisions on the "scheduler" thread, and each link/subflow gets its
// own thread plus a counter track (queue occupancy in bytes, cwnd in
// segments). Virtual time maps to the trace's microsecond timestamps.
func (r *CellRecorder) WriteChromeTrace(w io.Writer, kindName func(kind uint8) string) error {
	if kindName == nil {
		kindName = func(kind uint8) string { return fmt.Sprintf("kind-%d", kind) }
	}

	var events []chromeEvent
	nextTid := tidDynamic
	tids := map[string]int{}
	tid := func(label string) int {
		id, ok := tids[label]
		if !ok {
			id = nextTid
			nextTid++
			tids[label] = id
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
				Args: map[string]any{"name": label},
			})
		}
		return id
	}

	events = append(events,
		chromeEvent{
			Name: "process_name", Ph: "M", Pid: 1,
			Args: map[string]any{"name": fmt.Sprintf("cell %s/%d", r.Experiment, r.Cell)},
		},
		chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tidEngine,
			Args: map[string]any{"name": "engine"},
		},
		chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tidScheduler,
			Args: map[string]any{"name": "scheduler"},
		},
	)

	for _, ev := range r.Flight.Events() {
		name := "coalesced"
		if !ev.Coalesced {
			name = kindName(ev.Kind)
		}
		events = append(events, chromeEvent{
			Name: name, Ph: "i", Ts: usec(ev.At), Pid: 1, Tid: tidEngine, S: "t",
			Args: map[string]any{"ticket": ev.Ticket, "tag": ev.Tag},
		})
	}

	for _, ev := range r.Packets.Events() {
		linkTid := tid("link " + ev.Link)
		events = append(events, chromeEvent{
			Name: ev.Op.String(), Ph: "i", Ts: usec(ev.At), Pid: 1, Tid: linkTid, S: "t",
			Args: map[string]any{
				"conn": ev.ConnID, "subflow": ev.SubflowID,
				"seq": ev.Seq, "dsn": ev.DSN, "size": ev.Size,
				"retransmit": ev.Retransmit,
			},
		})
		// The queue-occupancy counter track: sample after every hook
		// that changed (or observed) the accounting.
		events = append(events, chromeEvent{
			Name: "queue:" + ev.Link, Ph: "C", Ts: usec(ev.At), Pid: 1, Tid: linkTid,
			Args: map[string]any{"bytes": ev.QueuedBytes},
		})
	}

	for _, ev := range r.Subflows.Events() {
		sfTid := tid("subflow " + ev.Name)
		events = append(events, chromeEvent{
			Name: ev.Op.String(), Ph: "i", Ts: usec(ev.At), Pid: 1, Tid: sfTid, S: "t",
			Args: map[string]any{
				"seq": ev.Seq, "ack": ev.AckSeq,
				"ssthresh": ev.Ssthresh, "inflight": ev.InflightSegs,
				"srtt_us": usec(ev.Srtt),
			},
		})
		events = append(events, chromeEvent{
			Name: "cwnd:" + ev.Name, Ph: "C", Ts: usec(ev.At), Pid: 1, Tid: sfTid,
			Args: map[string]any{"segments": ev.Cwnd},
		})
	}

	decisions := r.Decisions.Decisions()
	for i := range decisions {
		d := &decisions[i]
		verdict := d.Chosen
		if verdict == "" {
			verdict = "none"
			if d.Wait {
				verdict = "wait"
			}
		}
		args := map[string]any{
			"reason": d.Reason, "conn": d.Conn,
			"head_dsn": d.HeadDSN, "transfer": d.Transfer,
			"backlog_bytes": d.BacklogBytes,
		}
		for _, c := range d.Candidates {
			args["cand:"+c.Name] = fmt.Sprintf("srtt=%v cwnd=%.1f inflight=%d avail=%d cansend=%v",
				c.Srtt, c.Cwnd, c.Inflight, c.Avail, c.CanSend)
		}
		if q := d.Ecf; q != nil {
			args["ecf"] = fmt.Sprintf("n=%.3f lhs=%.6f rhs=%.6f wait_test=%v guard=%.6f>=%.6f ok=%v used=%v hysteresis=%v",
				q.N, q.LHS, q.RHS, q.WaitTest, q.GuardLHS, q.GuardRHS, q.GuardOK, q.GuardUsed, q.Hysteresis)
		}
		if q := d.Blest; q != nil {
			args["blest"] = fmt.Sprintf("x=%.1f lambda=%.4f free=%.1f occupied=%.1f",
				q.X, q.Lambda, q.FreeBytes, q.OccupiedBytes)
		}
		events = append(events, chromeEvent{
			Name: d.Scheduler + ":" + verdict, Ph: "i", Ts: usec(d.At),
			Pid: 1, Tid: tidScheduler, S: "t", Args: args,
		})
	}

	// Metadata first, then timestamp order; the stable sort keeps
	// same-instant events in ring (i.e. dispatch) order.
	sort.SliceStable(events, func(i, j int) bool {
		mi, mj := events[i].Ph == "M", events[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if mi {
			return false
		}
		return events[i].Ts < events[j].Ts
	})

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	for i := range events {
		if i > 0 {
			if _, err := bw.WriteString(","); err != nil {
				return err
			}
		}
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteDecisionLog writes the scheduler decision ring as a plain-text
// per-transfer log: decisions are grouped under a header whenever the
// transfer they belong to changes, each line showing virtual time,
// verdict, the candidate set, and the scheduler-specific quantities.
func (r *CellRecorder) WriteDecisionLog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	decisions := r.Decisions.Decisions()
	fmt.Fprintf(bw, "# decision log: cell %s/%d, %d decisions (%d dropped)\n",
		r.Experiment, r.Cell, r.Decisions.Total(), r.Decisions.Dropped())
	curTransfer := int64(-2)
	for i := range decisions {
		d := &decisions[i]
		if d.Transfer != curTransfer {
			curTransfer = d.Transfer
			if curTransfer < 0 {
				fmt.Fprintf(bw, "\n== no active transfer ==\n")
			} else {
				fmt.Fprintf(bw, "\n== transfer %d ==\n", curTransfer)
			}
		}
		verdict := "-> " + d.Chosen
		if d.Chosen == "" {
			verdict = "-> none"
			if d.Wait {
				verdict = "-> wait"
			}
		}
		fmt.Fprintf(bw, "%12v %s conn=%d dsn=%d backlog=%dB %s (%s)\n",
			d.At, d.Scheduler, d.Conn, d.HeadDSN, d.BacklogBytes, verdict, d.Reason)
		for _, c := range d.Candidates {
			fmt.Fprintf(bw, "%12s   %-10s srtt=%-10v sd=%-10v cwnd=%-6.1f inflight=%-3d avail=%-3d cansend=%v",
				"", c.Name, c.Srtt, c.StdDev, c.Cwnd, c.Inflight, c.Avail, c.CanSend)
			if c.Score != 0 {
				fmt.Fprintf(bw, " score=%.3f", c.Score)
			}
			fmt.Fprintln(bw)
		}
		if q := d.Ecf; q != nil {
			fmt.Fprintf(bw, "%12s   ecf: k=%.1f cwndF=%.1f cwndS=%.1f rttF=%.6fs rttS=%.6fs delta=%.6fs\n",
				"", q.K, q.CwndF, q.CwndS, q.RTTF, q.RTTS, q.Delta)
			fmt.Fprintf(bw, "%12s        eq1: n=%.3f beta=%.2f hysteresis=%v  %.6f < %.6f => wait_test=%v\n",
				"", q.N, q.Beta, q.Hysteresis, q.LHS, q.RHS, q.WaitTest)
			if q.GuardUsed {
				fmt.Fprintf(bw, "%12s        eq2: %.6f >= %.6f => guard_ok=%v\n",
					"", q.GuardLHS, q.GuardRHS, q.GuardOK)
			} else {
				fmt.Fprintf(bw, "%12s        eq2: disabled\n", "")
			}
		}
		if q := d.Blest; q != nil {
			fmt.Fprintf(bw, "%12s   blest: rttF=%.6fs rttS=%.6fs cwndF=%.1f x=%.1f lambda=%.4f free=%.1f occupied=%.1f\n",
				"", q.RTTF, q.RTTS, q.CwndF, q.X, q.Lambda, q.FreeBytes, q.OccupiedBytes)
		}
	}
	return bw.Flush()
}
