package obs

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sort"
	"time"
)

// ExperimentReport is the per-experiment section of a run report. The
// event and packet counters are per-experiment deltas of the process
// counters (sim.TotalEvents, netsim.TotalDelivered) taken around the
// experiment's run; because the simulation is deterministic they are
// identical for any worker count.
type ExperimentReport struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	WallClockMs float64 `json:"wall_clock_ms"`
	// CacheHits/CacheComputed are the result-cache deltas for this
	// experiment (cells served from the store vs simulated).
	CacheHits     int64 `json:"cache_hits"`
	CacheComputed int64 `json:"cache_computed"`
	// EventsProcessed/EventsCoalesced/EventsTotal are engine dispatch
	// counts (heap dispatches, inline claims, and their sum).
	EventsProcessed uint64 `json:"events_processed"`
	EventsCoalesced uint64 `json:"events_coalesced"`
	EventsTotal     uint64 `json:"events_total"`
	// PacketsDelivered counts link deliveries (loss included).
	PacketsDelivered int64 `json:"packets_delivered"`
	// CellP50Ms/CellP95Ms/CellMaxMs summarize the wall-clock durations
	// of this experiment's *computed* cells (cache hits are excluded, so
	// the distribution describes simulation expense, not store reads,
	// and the cell population is independent of the worker count). All
	// zero when every cell was served from the cache. Schema 2.
	CellP50Ms float64 `json:"cell_p50_ms"`
	CellP95Ms float64 `json:"cell_p95_ms"`
	CellMaxMs float64 `json:"cell_max_ms"`
	// Sharded marks an experiment that printed a shard placeholder
	// instead of its report (its OutputSHA256 hashes that placeholder).
	Sharded bool `json:"sharded"`
	// OutputBytes/OutputSHA256 cover the experiment's exact stdout
	// block (header line + report + blank line) — the golden-output
	// fingerprint a coordinator can compare across runs and hosts.
	OutputBytes  int    `json:"output_bytes"`
	OutputSHA256 string `json:"output_sha256"`
}

// SetCellDurations fills the computed-cell duration stats from one
// experiment's per-cell wall-clock samples (nearest-rank percentiles;
// the slice is sorted in place). No samples — a fully cached run —
// leaves the stats zero.
func (e *ExperimentReport) SetCellDurations(durs []time.Duration) {
	if len(durs) == 0 {
		return
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	rank := func(q float64) float64 {
		i := int(q*float64(len(durs)-1) + 0.5)
		return float64(durs[i]) / 1e6
	}
	e.CellP50Ms = rank(0.50)
	e.CellP95Ms = rank(0.95)
	e.CellMaxMs = float64(durs[len(durs)-1]) / 1e6
}

// MemStats is the heap/GC summary of a run report.
type MemStats struct {
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	SysBytes        uint64  `json:"sys_bytes"`
	NumGC           uint32  `json:"num_gc"`
	PauseTotalNs    uint64  `json:"pause_total_ns"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
}

// CaptureMemStats snapshots the process heap/GC state.
func CaptureMemStats() MemStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return MemStats{
		HeapAllocBytes:  m.HeapAlloc,
		TotalAllocBytes: m.TotalAlloc,
		SysBytes:        m.Sys,
		NumGC:           m.NumGC,
		PauseTotalNs:    m.PauseTotalNs,
		GCCPUFraction:   m.GCCPUFraction,
	}
}

// QueueReport is the event-queue telemetry section of a run report
// (schema 3): which queue implementation the run used and the
// process-wide depth/tier counters flushed by engine resets. The tier
// counters (near/far/migrated/sorts) are zero under the heap queue.
type QueueReport struct {
	Kind          string  `json:"kind"`
	DepthMax      uint64  `json:"depth_max"`
	DepthMean     float64 `json:"depth_mean"`
	NearScheduled uint64  `json:"near_scheduled"`
	FarScheduled  uint64  `json:"far_scheduled"`
	Migrated      uint64  `json:"migrated"`
	BucketSorts   uint64  `json:"bucket_sorts"`
	BucketMax     uint64  `json:"bucket_max"`
}

// RunReport is the machine-readable run summary ecfbench -report-json
// emits — the artifact an ecfd sweep worker ships to its coordinator.
type RunReport struct {
	Tool          string `json:"tool"`
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	// Scale and Workers echo the run configuration (Workers resolved,
	// never 0).
	Scale       string             `json:"scale"`
	Workers     int                `json:"workers"`
	WallClockMs float64            `json:"wall_clock_ms"`
	Experiments []ExperimentReport `json:"experiments"`
	// OutputSHA256 hashes the run's whole stdout.
	OutputSHA256 string `json:"output_sha256"`
	// Queue is the event-queue telemetry (schema 3). The obs package
	// cannot see the sim package, so the caller fills it from
	// sim.TotalQueueStats.
	Queue QueueReport `json:"queue"`
	Mem   MemStats    `json:"mem"`
}

// NewRunReport returns a report with the environment fields filled in.
func NewRunReport(scale string, workers int) *RunReport {
	return &RunReport{
		Tool:          "ecfbench",
		SchemaVersion: 3,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Scale:         scale,
		Workers:       workers,
	}
}

// Write writes the report as indented JSON to w (the caller owns the
// destination — ecfbench opens it up front so a clobber refusal aborts
// before the run, not after).
func (r *RunReport) Write(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the report as indented JSON.
func (r *RunReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
