package obs

import (
	"encoding/json"
	"os"
	"runtime"
)

// ExperimentReport is the per-experiment section of a run report. The
// event and packet counters are per-experiment deltas of the process
// counters (sim.TotalEvents, netsim.TotalDelivered) taken around the
// experiment's run; because the simulation is deterministic they are
// identical for any worker count.
type ExperimentReport struct {
	Name        string  `json:"name"`
	Description string  `json:"description"`
	WallClockMs float64 `json:"wall_clock_ms"`
	// CacheHits/CacheComputed are the result-cache deltas for this
	// experiment (cells served from the store vs simulated).
	CacheHits     int64 `json:"cache_hits"`
	CacheComputed int64 `json:"cache_computed"`
	// EventsProcessed/EventsCoalesced/EventsTotal are engine dispatch
	// counts (heap dispatches, inline claims, and their sum).
	EventsProcessed uint64 `json:"events_processed"`
	EventsCoalesced uint64 `json:"events_coalesced"`
	EventsTotal     uint64 `json:"events_total"`
	// PacketsDelivered counts link deliveries (loss included).
	PacketsDelivered int64 `json:"packets_delivered"`
	// Sharded marks an experiment that printed a shard placeholder
	// instead of its report (its OutputSHA256 hashes that placeholder).
	Sharded bool `json:"sharded"`
	// OutputBytes/OutputSHA256 cover the experiment's exact stdout
	// block (header line + report + blank line) — the golden-output
	// fingerprint a coordinator can compare across runs and hosts.
	OutputBytes  int    `json:"output_bytes"`
	OutputSHA256 string `json:"output_sha256"`
}

// MemStats is the heap/GC summary of a run report.
type MemStats struct {
	HeapAllocBytes  uint64  `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64  `json:"total_alloc_bytes"`
	SysBytes        uint64  `json:"sys_bytes"`
	NumGC           uint32  `json:"num_gc"`
	PauseTotalNs    uint64  `json:"pause_total_ns"`
	GCCPUFraction   float64 `json:"gc_cpu_fraction"`
}

// CaptureMemStats snapshots the process heap/GC state.
func CaptureMemStats() MemStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return MemStats{
		HeapAllocBytes:  m.HeapAlloc,
		TotalAllocBytes: m.TotalAlloc,
		SysBytes:        m.Sys,
		NumGC:           m.NumGC,
		PauseTotalNs:    m.PauseTotalNs,
		GCCPUFraction:   m.GCCPUFraction,
	}
}

// RunReport is the machine-readable run summary ecfbench -report-json
// emits — the artifact an ecfd sweep worker ships to its coordinator.
type RunReport struct {
	Tool          string `json:"tool"`
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`
	// Scale and Workers echo the run configuration (Workers resolved,
	// never 0).
	Scale       string             `json:"scale"`
	Workers     int                `json:"workers"`
	WallClockMs float64            `json:"wall_clock_ms"`
	Experiments []ExperimentReport `json:"experiments"`
	// OutputSHA256 hashes the run's whole stdout.
	OutputSHA256 string   `json:"output_sha256"`
	Mem          MemStats `json:"mem"`
}

// NewRunReport returns a report with the environment fields filled in.
func NewRunReport(scale string, workers int) *RunReport {
	return &RunReport{
		Tool:          "ecfbench",
		SchemaVersion: 1,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Scale:         scale,
		Workers:       workers,
	}
}

// WriteFile writes the report as indented JSON.
func (r *RunReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
