package mptcp

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Config parameterizes an MPTCP connection.
type Config struct {
	// ID is the connection identifier; it must be unique per shared link.
	ID int
	// MSS is the payload bytes per segment. Zero selects 1400.
	MSS int
	// SndBuf is the connection-level send buffer size in bytes (the k in
	// ECF is the unscheduled portion of this buffer). Zero selects 4 MiB.
	SndBuf int64
	// RcvBuf is the receive buffer / advertised window base. Zero
	// selects 4 MiB.
	RcvBuf int64
	// OpportunisticRtx enables reinjection of window-blocking segments
	// onto a faster subflow (Raiciu et al., NSDI'12). The paper keeps
	// this on in every experiment.
	OpportunisticRtx bool
	// Penalization halves the window of the subflow that blocked the
	// connection-level send window. Paired with OpportunisticRtx.
	Penalization bool
	// IdleRestart enables the RFC 2861 CWND reset after idle periods.
	// Figure 6 studies the effect of turning this off.
	IdleRestart bool
	// InitialCwnd in segments (zero selects 10).
	InitialCwnd float64
	// MinRTO clamps subflow retransmission timers (zero selects 200 ms).
	MinRTO time.Duration
	// RequestDelay is the one-way latency for client requests reaching
	// the server. Zero selects the primary path's reverse propagation
	// delay plus 1 ms of processing.
	RequestDelay time.Duration
}

func (c *Config) fillDefaults() {
	if c.MSS <= 0 {
		c.MSS = 1400
	}
	if c.SndBuf <= 0 {
		c.SndBuf = 4 << 20
	}
	if c.RcvBuf <= 0 {
		c.RcvBuf = 4 << 20
	}
}

// DefaultConfig returns the configuration used throughout the paper
// reproduction: opportunistic retransmission, penalization and idle
// restart all enabled (§5.1: "the opportunistic retransmission and
// penalization mechanisms are enabled throughout all experiments").
func DefaultConfig(id int) Config {
	return Config{
		ID: id,
		// 2 MiB buffers approximate the era's Linux/Android tcp_rmem
		// settings; they are large enough for ECF to fill the aggregate
		// pipe yet small enough that slow-path head-of-line blocking
		// stalls the send window, as the paper's receive-window
		// discussion (via Raiciu et al.) describes.
		SndBuf:           2 << 20,
		RcvBuf:           2 << 20,
		OpportunisticRtx: true,
		Penalization:     true,
		IdleRestart:      true,
	}
}

// segRef is one unscheduled segment in the connection-level send buffer.
type segRef struct {
	dsn    int64
	length int
}

// dataSeg is one scheduled-but-unacked data-level segment, stored by
// value in the connection's inflight ring.
type dataSeg struct {
	dsn        int64
	length     int
	owner      *tcp.Subflow
	reinjected bool
}

// Transfer tracks one request/response exchange over the connection (a
// video chunk, a wget file, one web object).
type Transfer struct {
	// Bytes is the response size.
	Bytes int64
	// StartDSN and EndDSN delimit the response in the data stream.
	StartDSN, EndDSN int64
	// RequestedAt is when the client issued the request.
	RequestedAt sim.Time
	// StartedAt is when the server began sending.
	StartedAt sim.Time
	// CompletedAt is when the last byte was delivered in order.
	CompletedAt sim.Time
	// LastArrival records, indexed by subflow ID, the arrival time of
	// the last data packet of this transfer carried by that subflow
	// (Figure 5). Entries are negative for subflows that carried none of
	// this transfer; the slice grows on demand.
	LastArrival []sim.Time

	done func(*Transfer)
	// conn backs the closure-free request-delay event (set only for
	// transfers created via Request).
	conn *Conn
	// seq is the connection-local admission sequence number — a stable
	// identity for decision logs (DSN ranges are reused across resets,
	// admission order is not).
	seq int64
}

// Duration returns completion time as seen by the client.
func (t *Transfer) Duration() time.Duration { return t.CompletedAt - t.RequestedAt }

// LastPacketTimeDiff returns the absolute difference between the last
// data arrivals on the two given subflows, or (0, false) if either
// subflow carried none of this transfer.
func (t *Transfer) LastPacketTimeDiff(sfA, sfB int) (time.Duration, bool) {
	a, okA := t.lastArrival(sfA)
	b, okB := t.lastArrival(sfB)
	if !okA || !okB {
		return 0, false
	}
	if a > b {
		return a - b, true
	}
	return b - a, true
}

// lastArrival reads one subflow's entry, reporting false when the
// subflow carried none of this transfer.
func (t *Transfer) lastArrival(sf int) (sim.Time, bool) {
	if sf < 0 || sf >= len(t.LastArrival) || t.LastArrival[sf] < 0 {
		return 0, false
	}
	return t.LastArrival[sf], true
}

// sfUnit bundles one subflow's sender and receiver halves with the
// receiver funcs registered in the path demultiplexers. The funcs are
// method values created once per unit — pooled units re-register the
// same funcs instead of allocating fresh closures every cell.
type sfUnit struct {
	sf      *tcp.Subflow
	rx      *tcp.SubflowRecv
	rxRecv  netsim.Receiver // rx.OnPacket
	ackRecv netsim.Receiver // sf.OnAck
}

// Conn is an MPTCP connection: several TCP subflows bound to a shared
// data stream, a scheduler that places segments onto subflows, and a
// receiver that restores data-level ordering.
type Conn struct {
	eng   *sim.Engine
	cfg   Config
	ctrl  cc.Controller
	sched Scheduler
	recv  *Receiver

	subflows []*tcp.Subflow
	units    []sfUnit // parallel to subflows
	// freeUnits holds subflow units retired by Reset, reused (sender,
	// receiver and demux funcs together) by the next cell's AddSubflow.
	freeUnits []sfUnit

	writeDSN    int64 // next DSN the application will produce
	unsent      []segRef
	unsentHead  int
	unsentBytes int64

	// inflightQ is a DSN-ordered ring of scheduled-but-unacked data
	// segments stored by value ([infHead, infTail) live): cumulative
	// data ACKs pop a prefix, opportunistic retransmission reads and
	// marks the head in place. No per-segment heap allocation.
	inflightQ        ring.Ring[dataSeg]
	infHead, infTail uint64
	inflightBytes    int64
	dataAcked        int64
	peerWindow       int64

	transfers []*Transfer // active, DSN-ordered
	// transferSeq numbers transfers in admission order (Transfer.seq).
	transferSeq int64
	// retired collects completed transfers; freeTransfers feeds Write
	// and Request. Handles stay valid — fields intact — until the
	// connection is reset, which moves both lists back into the pool.
	retired       []*Transfer
	freeTransfers []*Transfer

	// lastPenalty is indexed by subflow ID (grown in AddSubflow); the
	// zero value means "never penalized", which the rate-limit check
	// treats as long ago.
	lastPenalty []sim.Time

	// stats
	reinjections int64
	penalties    int64
	windowStalls int64
	waitDecision int64 // times the scheduler chose to send nothing
	duplicates   int64 // redundant copies sent by duplicating schedulers
}

// NewConn builds a connection. Subflows are added with AddSubflow; the
// scheduler is bound with SetScheduler before traffic starts.
func NewConn(eng *sim.Engine, cfg Config, ctrl cc.Controller) *Conn {
	c := &Conn{eng: eng, recv: NewReceiver(eng, 0)}
	c.recv.ArrivalHook = c.attributeArrival
	c.Reset(cfg, ctrl)
	return c
}

// Reset rebinds a pooled connection to a new configuration and
// congestion controller, restoring the state NewConn would construct.
// Subflows of the previous run move to an internal free list and are
// revived by AddSubflow; completed and in-flight transfers return to
// the transfer pool (their handles become invalid); the receiver,
// send-buffer and inflight structures keep their grown capacity. The
// caller must have detached the previous controller (Close) and reset
// the engine first.
func (c *Conn) Reset(cfg Config, ctrl cc.Controller) {
	cfg.fillDefaults()
	if ctrl == nil {
		ctrl = cc.NewLIA()
	}
	c.cfg = cfg
	c.ctrl = ctrl
	c.sched = nil
	c.recv.Reset(cfg.RcvBuf)
	c.freeUnits = append(c.freeUnits, c.units...)
	c.units = c.units[:0]
	c.subflows = c.subflows[:0]
	c.writeDSN = 0
	c.unsent = c.unsent[:0]
	c.unsentHead = 0
	c.unsentBytes = 0
	c.infHead, c.infTail = 0, 0
	c.inflightBytes = 0
	c.dataAcked = 0
	c.peerWindow = cfg.RcvBuf
	c.freeTransfers = append(c.freeTransfers, c.retired...)
	c.retired = c.retired[:0]
	c.freeTransfers = append(c.freeTransfers, c.transfers...)
	c.transfers = c.transfers[:0]
	c.transferSeq = 0
	c.lastPenalty = c.lastPenalty[:0]
	c.reinjections = 0
	c.penalties = 0
	c.windowStalls = 0
	c.waitDecision = 0
	c.duplicates = 0
}

// SetScheduler binds the path scheduler. It must be called before data is
// written.
func (c *Conn) SetScheduler(s Scheduler) { c.sched = s }

// Scheduler returns the bound scheduler.
func (c *Conn) Scheduler() Scheduler { return c.sched }

// Controller returns the bound congestion controller (pool management:
// the network recovers it for reuse when the connection is reclaimed).
func (c *Conn) Controller() cc.Controller { return c.ctrl }

// Receiver returns the connection-level receive side.
func (c *Conn) Receiver() *Receiver { return c.recv }

// Engine returns the simulation engine.
func (c *Conn) Engine() *sim.Engine { return c.eng }

// Now returns the current virtual time.
func (c *Conn) Now() sim.Time { return c.eng.Now() }

// ID returns the connection identifier.
func (c *Conn) ID() int { return c.cfg.ID }

// MSS returns the configured segment payload size.
func (c *Conn) MSS() int { return c.cfg.MSS }

// AddSubflow creates a subflow over path and wires both directions
// through the given demultiplexers (which must be installed as the
// path's forward/reverse receivers, possibly shared with other
// connections). On a pooled connection it revives a retired subflow
// unit in place instead of allocating one.
func (c *Conn) AddSubflow(name string, path *netsim.Path, fwd, rev *netsim.Demux) *tcp.Subflow {
	id := len(c.subflows)
	sfCfg := tcp.Config{
		ConnID:      c.cfg.ID,
		ID:          id,
		Name:        name,
		MSS:         c.cfg.MSS,
		InitialCwnd: c.cfg.InitialCwnd,
		IdleRestart: c.cfg.IdleRestart,
		MinRTO:      c.cfg.MinRTO,
	}
	var u sfUnit
	if n := len(c.freeUnits); n > 0 {
		u = c.freeUnits[n-1]
		c.freeUnits = c.freeUnits[:n-1]
		u.sf.Reset(sfCfg, path, c.ctrl, c)
		u.rx.Reset(path, c.recv, u.sf.AckPacketSize())
	} else {
		u.sf = tcp.NewSubflow(c.eng, sfCfg, path, c.ctrl, c)
		u.rx = tcp.NewSubflowRecv(c.eng, path, c.recv, u.sf.AckPacketSize())
		u.rxRecv = u.rx.OnPacket
		u.ackRecv = u.sf.OnAck
	}
	// Seed the RTT estimate with the zero-load path RTT, as a kernel
	// obtains one sample from the SYN/SYN-ACK exchange at subflow setup.
	u.sf.SeedRTT(path.BaseRTT())
	fwd.Register(c.cfg.ID, id, u.rxRecv)
	rev.Register(c.cfg.ID, id, u.ackRecv)
	c.units = append(c.units, u)
	c.subflows = append(c.subflows, u.sf)
	c.lastPenalty = append(c.lastPenalty, 0)
	return u.sf
}

// Subflows returns the connection's subflows in creation order (the
// first is the primary, WiFi in the paper's setup).
func (c *Conn) Subflows() []*tcp.Subflow { return c.subflows }

// UnsentBytes returns the bytes in the connection-level send buffer not
// yet scheduled onto any subflow — the k of ECF's inequalities.
func (c *Conn) UnsentBytes() int64 { return c.unsentBytes }

// UnsentSegments returns the segment count of the unscheduled backlog.
func (c *Conn) UnsentSegments() int { return len(c.unsent) - c.unsentHead }

// NextUnsentDSN returns the data-level sequence number of the segment
// at the head of the unscheduled backlog, reporting false when the
// backlog is empty. Decision traces use it to attribute a scheduling
// choice to a transfer.
func (c *Conn) NextUnsentDSN() (int64, bool) {
	if c.unsentHead >= len(c.unsent) {
		return 0, false
	}
	return c.unsent[c.unsentHead].dsn, true
}

// ActiveTransferSeq returns the admission sequence number of the
// active transfer whose DSN range contains dsn, reporting false when
// no active transfer covers it.
func (c *Conn) ActiveTransferSeq(dsn int64) (int64, bool) {
	for _, tr := range c.transfers {
		if tr.StartDSN <= dsn && dsn < tr.EndDSN {
			return tr.seq, true
		}
	}
	return 0, false
}

// DataInflightBytes returns scheduled-but-unacked data-level bytes.
func (c *Conn) DataInflightBytes() int64 { return c.inflightBytes }

// SendWindowBytes returns the effective connection-level send window:
// min(send buffer, peer receive window). BLEST's blocking estimate is
// computed against this.
func (c *Conn) SendWindowBytes() int64 {
	w := c.cfg.SndBuf
	if c.peerWindow < w {
		w = c.peerWindow
	}
	return w
}

// SendWindowFreeBytes returns the remaining space in the send window.
func (c *Conn) SendWindowFreeBytes() int64 {
	free := c.SendWindowBytes() - c.inflightBytes
	if free < 0 {
		free = 0
	}
	return free
}

// Reinjections returns the count of opportunistic retransmissions.
func (c *Conn) Reinjections() int64 { return c.reinjections }

// Penalties returns the count of penalization events.
func (c *Conn) Penalties() int64 { return c.penalties }

// WindowStalls returns how often sending was blocked by the
// connection-level send window.
func (c *Conn) WindowStalls() int64 { return c.windowStalls }

// WaitDecisions returns how often the scheduler deliberately idled
// (returned nil with backlog present).
func (c *Conn) WaitDecisions() int64 { return c.waitDecision }

// DuplicateSends returns redundant copies sent by a DuplicatingScheduler.
func (c *Conn) DuplicateSends() int64 { return c.duplicates }

// Write appends size bytes to the send stream and returns the Transfer
// handle; done (optional) fires on in-order delivery of the last byte.
func (c *Conn) Write(size int64, done func(*Transfer)) *Transfer {
	if c.sched == nil {
		panic("mptcp: Write before SetScheduler")
	}
	if size <= 0 {
		panic(fmt.Sprintf("mptcp: Write of %d bytes", size))
	}
	now := c.eng.Now()
	tr := c.newTransfer()
	tr.Bytes = size
	tr.StartDSN = c.writeDSN
	tr.EndDSN = c.writeDSN + size
	tr.RequestedAt = now
	tr.StartedAt = now
	tr.done = done
	c.admitTransfer(tr)
	return tr
}

// newTransfer takes a Transfer from the pool, zeroed but with its
// LastArrival capacity kept, falling back to the heap until the pool
// has grown to the cell's working set. tr.conn is pre-bound.
func (c *Conn) newTransfer() *Transfer {
	var tr *Transfer
	if n := len(c.freeTransfers); n > 0 {
		tr = c.freeTransfers[n-1]
		c.freeTransfers = c.freeTransfers[:n-1]
		la := tr.LastArrival[:0]
		*tr = Transfer{LastArrival: la}
	} else {
		tr = &Transfer{}
	}
	tr.conn = c
	return tr
}

// Request models a client-issued request for size response bytes: the
// server starts writing after the request's one-way latency. done fires
// at the client when the last byte is delivered in order.
func (c *Conn) Request(size int64, done func(*Transfer)) *Transfer {
	if c.sched == nil {
		panic("mptcp: Request before SetScheduler")
	}
	if size <= 0 {
		panic(fmt.Sprintf("mptcp: Request of %d bytes", size))
	}
	now := c.eng.Now()
	tr := c.newTransfer()
	tr.Bytes = size
	tr.RequestedAt = now
	tr.done = done
	c.eng.ScheduleEvent(c.requestDelay(), kindTransferStart, tr)
	return tr
}

// kindTransferStart dispatches the request-latency event through the
// typed event table: the server begins writing the response.
var kindTransferStart sim.EventKind

func init() {
	kindTransferStart = sim.RegisterKind("mptcp.Conn.transferStart", func(arg any) {
		tr := arg.(*Transfer)
		c := tr.conn
		tr.StartedAt = c.eng.Now()
		tr.StartDSN = c.writeDSN
		tr.EndDSN = c.writeDSN + tr.Bytes
		c.admitTransfer(tr)
	})
}

// requestDelay returns the client-to-server request latency.
func (c *Conn) requestDelay() time.Duration {
	if c.cfg.RequestDelay > 0 {
		return c.cfg.RequestDelay
	}
	if len(c.subflows) > 0 {
		return c.subflows[0].Path().Reverse().Delay() + time.Millisecond
	}
	return time.Millisecond
}

// admitTransfer segments the response into the send buffer and arms the
// completion waiter.
func (c *Conn) admitTransfer(tr *Transfer) {
	tr.seq = c.transferSeq
	c.transferSeq++
	c.transfers = append(c.transfers, tr)
	c.writeDSN = tr.EndDSN
	for dsn := tr.StartDSN; dsn < tr.EndDSN; {
		l := int64(c.cfg.MSS)
		if tr.EndDSN-dsn < l {
			l = tr.EndDSN - dsn
		}
		c.unsent = append(c.unsent, segRef{dsn: dsn, length: int(l)})
		c.unsentBytes += l
		dsn += l
	}
	c.recv.notifyTransfer(tr)
	c.trySend()
}

// completeTransfer finishes tr once the receiver's delivery point has
// passed its end: it timestamps, retires the transfer (the handle stays
// valid — and is recycled — only until the connection is reset) and
// fires the caller's done callback.
func (c *Conn) completeTransfer(tr *Transfer) {
	tr.CompletedAt = c.eng.Now()
	c.dropTransfer(tr)
	if tr.done != nil {
		tr.done(tr)
	}
}

func (c *Conn) dropTransfer(tr *Transfer) {
	for i, t := range c.transfers {
		if t == tr {
			copy(c.transfers[i:], c.transfers[i+1:])
			c.transfers[len(c.transfers)-1] = nil
			c.transfers = c.transfers[:len(c.transfers)-1]
			c.retired = append(c.retired, tr)
			return
		}
	}
}

// SubflowAcked implements tcp.ConnHooks: fold in the piggybacked
// data-level ACK and window, then try to schedule more data.
func (c *Conn) SubflowAcked(sf *tcp.Subflow, dataAck, window int64) {
	c.peerWindow = window
	if dataAck > c.dataAcked {
		c.dataAcked = dataAck
		for c.infHead < c.infTail {
			seg := c.inflightQ.At(c.infHead)
			if seg.dsn+int64(seg.length) > dataAck {
				break
			}
			c.infHead++
			c.inflightBytes -= int64(seg.length)
		}
	}
	c.trySend()
}

// attributeArrival is called by the receiver wrapper to credit a data
// packet to its transfer for last-packet bookkeeping.
func (c *Conn) attributeArrival(p *netsim.Packet, now sim.Time) {
	for _, tr := range c.transfers {
		if p.DSN >= tr.StartDSN && p.DSN < tr.EndDSN {
			for len(tr.LastArrival) <= p.SubflowID {
				tr.LastArrival = append(tr.LastArrival, noArrival)
			}
			tr.LastArrival[p.SubflowID] = now
			return
		}
	}
}

// trySend drains the unscheduled backlog through the scheduler while
// windows allow.
func (c *Conn) trySend() {
	for _, sf := range c.subflows {
		sf.PrepareSend()
	}
	for c.unsentHead < len(c.unsent) {
		seg := c.unsent[c.unsentHead]
		if c.inflightBytes+int64(seg.length) > c.SendWindowBytes() {
			c.windowStalls++
			c.maybeOpportunisticRtx()
			return
		}
		sf := c.sched.Select(c)
		if sf == nil {
			c.waitDecision++
			return
		}
		if !sf.CanSend() {
			// Defensive: a scheduler must not return a full subflow.
			panic(fmt.Sprintf("mptcp: scheduler %s returned subflow %s without window space",
				c.sched.Name(), sf.Name()))
		}
		c.unsentHead++
		c.unsentBytes -= int64(seg.length)
		if c.unsentHead == len(c.unsent) {
			c.unsent = c.unsent[:0]
			c.unsentHead = 0
		}
		f := c.inflightQ.PushRef(c.infHead, c.infTail)
		c.infTail++
		f.dsn = seg.dsn
		f.length = seg.length
		f.owner = sf
		f.reinjected = false
		c.inflightBytes += int64(seg.length)
		sf.SendSegment(seg.dsn, seg.length)
		if dup, ok := c.sched.(DuplicatingScheduler); ok {
			for _, extra := range dup.SelectDuplicates(c, sf) {
				if extra.CanSend() {
					c.duplicates++
					extra.SendSegment(seg.dsn, seg.length)
				}
			}
		}
	}
}

// maybeOpportunisticRtx reinjects the window-blocking segment onto a
// faster available subflow and penalizes the blocker (Raiciu NSDI'12).
func (c *Conn) maybeOpportunisticRtx() {
	if !c.cfg.OpportunisticRtx || c.infHead == c.infTail {
		return
	}
	head := c.inflightQ.At(c.infHead)
	if head.reinjected || head.owner == nil {
		return
	}
	var best *tcp.Subflow
	for _, sf := range c.subflows {
		if sf == head.owner || !sf.CanSend() || !sf.HasRTTSample() {
			continue
		}
		if sf.Srtt() >= head.owner.Srtt() && head.owner.HasRTTSample() {
			continue // only reinject onto a faster subflow
		}
		if best == nil || sf.Srtt() < best.Srtt() {
			best = sf
		}
	}
	if best == nil {
		return
	}
	head.reinjected = true
	c.reinjections++
	best.SendSegment(head.dsn, head.length)
	if c.cfg.Penalization {
		now := c.eng.Now()
		if id := head.owner.ID(); now-c.lastPenalty[id] >= head.owner.Srtt() {
			c.lastPenalty[id] = now
			c.penalties++
			head.owner.Penalize()
		}
	}
}

// Close shuts down all subflows.
func (c *Conn) Close() {
	for _, sf := range c.subflows {
		sf.Close()
	}
}
