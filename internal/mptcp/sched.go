// Package mptcp implements the MPTCP connection layer: a connection-level
// send buffer with data sequence numbers (DSNs), subflow management, a
// pluggable path scheduler hook, a receive-side reorder buffer that
// measures out-of-order delay, and the opportunistic-retransmission and
// penalization mechanisms of Raiciu et al. (NSDI'12).
package mptcp

import "repro/internal/tcp"

// Scheduler decides which subflow carries the next segment. One Scheduler
// instance is bound to exactly one Conn (schedulers such as ECF keep
// per-connection hysteresis state).
type Scheduler interface {
	// Name identifies the scheduler ("minrtt", "ecf", "blest", "daps").
	Name() string
	// Select returns the subflow to send the next segment on, or nil to
	// send nothing now and wait for a better subflow to become available.
	// Implementations must only return subflows with CanSend() == true.
	Select(c *Conn) *tcp.Subflow
}

// SchedulerFactory builds a fresh Scheduler for each connection.
type SchedulerFactory func() Scheduler

// Resettable is implemented by schedulers that can be rebound to a new
// connection after an in-place reset. Reset must restore exactly the
// state the scheduler's factory would construct (dynamic state cleared,
// construction-time parameters kept), which is what lets the network
// pool scheduler instances across simulation cells instead of
// allocating one per connection. Schedulers that do not implement it
// are simply constructed fresh each time.
type Resettable interface {
	Scheduler
	Reset()
}

// DuplicatingScheduler is an optional extension: schedulers that also
// send redundant copies of each segment implement it. After the primary
// copy is placed on the subflow returned by Select, the connection sends
// duplicates (same DSN, new subflow sequence) on every subflow returned
// by SelectDuplicates. The receiver's reorder buffer keeps the first
// arrival and counts later copies as duplicates.
type DuplicatingScheduler interface {
	Scheduler
	SelectDuplicates(c *Conn, primary *tcp.Subflow) []*tcp.Subflow
}
