package mptcp

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// receiverRef is a reference model of the connection-level reassembly
// logic as it was before the DSN-ordered ring: maps keyed by DSN and
// subflow ID, a verbatim port of the pre-ring OnData. The property test
// drives it and the real Receiver through identical randomized
// loss/reorder schedules and requires identical telemetry.
type receiverRef struct {
	rcvBuf   int64
	expected int64

	buffered      map[int64]refSeg
	bufferedBytes int64

	oooDelays        []time.Duration
	perSubflowBytes  map[int]int64
	lastArrival      map[int]sim.Time
	deliveredBytes   int64
	duplicateArrival int64
}

type refSeg struct {
	length  int
	arrival sim.Time
}

func newReceiverRef(rcvBuf int64) *receiverRef {
	return &receiverRef{
		rcvBuf:          rcvBuf,
		buffered:        make(map[int64]refSeg),
		perSubflowBytes: make(map[int]int64),
		lastArrival:     make(map[int]sim.Time),
	}
}

func (m *receiverRef) window() int64 {
	w := m.rcvBuf - m.bufferedBytes
	if w < 0 {
		w = 0
	}
	return w
}

func (m *receiverRef) onData(dsn int64, payload, subflow int, now sim.Time) (dataAck, window int64) {
	m.lastArrival[subflow] = now
	if dsn >= m.expected {
		if _, dup := m.buffered[dsn]; dup {
			m.duplicateArrival++
		} else {
			m.buffered[dsn] = refSeg{length: payload, arrival: now}
			m.bufferedBytes += int64(payload)
			m.perSubflowBytes[subflow] += int64(payload)
		}
	} else {
		m.duplicateArrival++
	}
	for {
		seg, ok := m.buffered[m.expected]
		if !ok {
			break
		}
		delete(m.buffered, m.expected)
		m.bufferedBytes -= int64(seg.length)
		m.expected += int64(seg.length)
		m.deliveredBytes += int64(seg.length)
		m.oooDelays = append(m.oooDelays, now-seg.arrival)
	}
	return m.expected, m.window()
}

// TestReceiverMatchesMapReference: ring-based DSN reassembly and the
// map-based reference agree on every observable — cumulative data ACK,
// advertised window, delivered bytes, duplicate count, the full
// OOO-delay sample sequence and the per-subflow accounting — over
// randomized loss/reorder/duplicate schedules with virtual time
// advancing between arrivals.
func TestReceiverMatchesMapReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(seed uint64, nRaw uint8, rcvKB uint16) bool {
		n := int(nRaw%60) + 2
		rcvBuf := int64(rcvKB%64+1) * 8192
		rng := sim.NewRNG(seed)

		// Segments with stable boundaries.
		type seg struct {
			dsn    int64
			length int
		}
		segs := make([]seg, n)
		var total int64
		for i := range segs {
			l := 100 + rng.Intn(1400)
			segs[i] = seg{dsn: total, length: l}
			total += int64(l)
		}
		// Window-bounded reorder of the first delivery of each segment,
		// plus retransmit/duplicate copies sprinkled into the tail.
		order := rng.Perm(n)
		schedule := make([]seg, 0, n+n/3)
		for _, idx := range order {
			schedule = append(schedule, segs[idx])
		}
		for d := 0; d < n/3; d++ {
			schedule = append(schedule, segs[rng.Intn(n)])
		}

		eng := sim.New()
		r := NewReceiver(eng, rcvBuf)
		ref := newReceiverRef(rcvBuf)

		at := sim.Time(0)
		for i, s := range schedule {
			at += time.Duration(rng.Intn(5)) * time.Millisecond
			eng.RunUntil(at)
			sf := rng.Intn(3)
			gotAck, gotWin := r.OnData(&netsim.Packet{Kind: netsim.Data, DSN: s.dsn, PayloadLen: s.length, SubflowID: sf})
			wantAck, wantWin := ref.onData(s.dsn, s.length, sf, at)
			if gotAck != wantAck || gotWin != wantWin {
				t.Logf("arrival %d: (ack %d, win %d), reference (%d, %d)", i, gotAck, gotWin, wantAck, wantWin)
				return false
			}
			if r.DeliveredBytes() != ref.deliveredBytes || r.DuplicateArrivals() != ref.duplicateArrival {
				t.Logf("arrival %d: delivered/dups (%d, %d), reference (%d, %d)",
					i, r.DeliveredBytes(), r.DuplicateArrivals(), ref.deliveredBytes, ref.duplicateArrival)
				return false
			}
		}

		// Full telemetry equivalence at the end of the schedule.
		if r.Expected() != total || ref.expected != total {
			t.Logf("incomplete reassembly: %d / %d (total %d)", r.Expected(), ref.expected, total)
			return false
		}
		got := r.OOODelays()
		if len(got) != len(ref.oooDelays) {
			t.Logf("ooo sample counts: %d vs %d", len(got), len(ref.oooDelays))
			return false
		}
		for i := range got {
			if got[i] != ref.oooDelays[i] {
				t.Logf("ooo sample %d: %v vs %v", i, got[i], ref.oooDelays[i])
				return false
			}
		}
		for id, b := range r.SubflowBytes() {
			if b != ref.perSubflowBytes[id] {
				t.Logf("subflow %d bytes: %d vs %d", id, b, ref.perSubflowBytes[id])
				return false
			}
		}
		for id, b := range ref.perSubflowBytes {
			sb := r.SubflowBytes()
			if id >= len(sb) || sb[id] != b {
				t.Logf("subflow %d missing from dense slice", id)
				return false
			}
		}
		for id, last := range r.LastArrival() {
			want, ok := ref.lastArrival[id]
			if last < 0 {
				if ok {
					t.Logf("subflow %d: dense says no arrival, reference has %v", id, want)
					return false
				}
				continue
			}
			if !ok || last != want {
				t.Logf("subflow %d last arrival: %v vs %v", id, last, want)
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
