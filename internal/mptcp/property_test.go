package mptcp

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// TestReceiverDeliversExactlyOnceUnderAnyArrivalOrder feeds the reorder
// buffer a random permutation of segments (with random duplicates) and
// checks the core invariant: every byte is delivered in order exactly
// once, and out-of-order delay samples are non-negative.
func TestReceiverDeliversExactlyOnceUnderAnyArrivalOrder(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8, dupRaw uint8) bool {
		n := int(nRaw%50) + 1
		rng := sim.NewRNG(seed)
		eng := sim.New()
		r := NewReceiver(eng, 1<<30)

		// Build n segments of varying size, then a shuffled arrival
		// order with some duplicates mixed in.
		type seg struct {
			dsn    int64
			length int
		}
		segs := make([]seg, n)
		dsn := int64(0)
		for i := range segs {
			l := 100 + rng.Intn(1400)
			segs[i] = seg{dsn: dsn, length: l}
			dsn += int64(l)
		}
		order := rng.Perm(n)
		arrivals := make([]seg, 0, n+int(dupRaw%8))
		for _, idx := range order {
			arrivals = append(arrivals, segs[idx])
		}
		for d := 0; d < int(dupRaw%8); d++ {
			arrivals = append(arrivals, segs[rng.Intn(n)])
		}

		at := time.Duration(0)
		for _, s := range arrivals {
			at += time.Millisecond
			eng.RunUntil(at)
			r.OnData(&netsim.Packet{Kind: netsim.Data, DSN: s.dsn, PayloadLen: s.length, SubflowID: rng.Intn(2)})
		}
		if r.Expected() != dsn {
			return false
		}
		if r.DeliveredBytes() != dsn {
			return false
		}
		if r.Window() != 1<<30 {
			return false // buffer must be fully drained
		}
		for _, d := range r.OOODelays() {
			if d < 0 {
				return false
			}
		}
		// One delay sample per unique segment.
		return len(r.OOODelays()) == n
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEndToEndIntegrityUnderLoss runs random topologies with loss and
// verifies every transfer completes with the full byte count, no matter
// the heterogeneity.
func TestEndToEndIntegrityUnderLoss(t *testing.T) {
	if err := quick.Check(func(seed uint64, wifiRaw, lteRaw uint8, lossRaw uint8) bool {
		wifi := 0.3 + float64(wifiRaw%90)/10 // 0.3 .. 9.2 Mbps
		lte := 0.3 + float64(lteRaw%90)/10
		loss := float64(lossRaw%30) / 1000 // 0 .. 2.9%
		eng := sim.New()
		wifiPath := netsim.NewPath(eng, netsim.PathConfig{
			Name: "wifi", RateBps: wifi * 1e6, Delay: 10 * time.Millisecond,
			QueueBytes: 48 << 10, LossRate: loss, Seed: seed,
		})
		ltePath := netsim.NewPath(eng, netsim.PathConfig{
			Name: "lte", RateBps: lte * 1e6, Delay: 40 * time.Millisecond,
			QueueBytes: 48 << 10, LossRate: loss / 2, Seed: seed + 1,
		})
		conn := NewConn(eng, DefaultConfig(0), cc.NewLIA())
		conn.SetScheduler(minRTTSched{})
		for _, p := range []*netsim.Path{wifiPath, ltePath} {
			fwd, rev := netsim.NewDemux(), netsim.NewDemux()
			p.SetForwardReceiver(fwd.OnPacket)
			p.SetReverseReceiver(rev.OnPacket)
			conn.AddSubflow(p.Name(), p, fwd, rev)
		}
		const size = 600_000
		done := false
		conn.Write(size, func(*Transfer) { done = true })
		eng.RunUntil(10 * time.Minute)
		return done && conn.Receiver().DeliveredBytes() == size
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestConnInflightAccounting checks the send-window bookkeeping invariant
// across a transfer: data-level in-flight bytes never exceed the
// configured window and return to zero at completion.
func TestConnInflightAccounting(t *testing.T) {
	eng := sim.New()
	wifi := netsim.NewPath(eng, netsim.PathConfig{Name: "wifi", RateBps: 2e6, Delay: 10 * time.Millisecond, QueueBytes: 48 << 10})
	lte := netsim.NewPath(eng, netsim.PathConfig{Name: "lte", RateBps: 8e6, Delay: 40 * time.Millisecond, QueueBytes: 48 << 10})
	cfg := DefaultConfig(0)
	cfg.SndBuf = 256 << 10
	cfg.RcvBuf = 256 << 10
	conn := NewConn(eng, cfg, cc.NewLIA())
	conn.SetScheduler(minRTTSched{})
	for _, p := range []*netsim.Path{wifi, lte} {
		fwd, rev := netsim.NewDemux(), netsim.NewDemux()
		p.SetForwardReceiver(fwd.OnPacket)
		p.SetReverseReceiver(rev.OnPacket)
		conn.AddSubflow(p.Name(), p, fwd, rev)
	}
	done := false
	conn.Write(3<<20, func(*Transfer) { done = true })
	for !done && eng.Now() < 5*time.Minute {
		eng.RunUntil(eng.Now() + 50*time.Millisecond)
		// The advertised window may shrink below data already in flight
		// (a receiver cannot recall bytes), but in-flight data can never
		// exceed the send buffer itself.
		if got := conn.DataInflightBytes(); got > cfg.SndBuf {
			t.Fatalf("inflight %d exceeds send buffer %d", got, cfg.SndBuf)
		}
		if conn.UnsentBytes() < 0 {
			t.Fatal("negative unsent bytes")
		}
	}
	if !done {
		t.Fatal("transfer incomplete")
	}
	eng.Run()
	if conn.DataInflightBytes() != 0 {
		t.Fatalf("inflight %d at completion, want 0", conn.DataInflightBytes())
	}
	if conn.UnsentBytes() != 0 {
		t.Fatalf("unsent %d at completion, want 0", conn.UnsentBytes())
	}
}

// TestTransfersPreserveByteCounts (property): any mix of transfer sizes
// is delivered byte-exact, in order.
func TestTransfersPreserveByteCounts(t *testing.T) {
	if err := quick.Check(func(sizesRaw []uint16) bool {
		if len(sizesRaw) == 0 || len(sizesRaw) > 8 {
			return true
		}
		eng := sim.New()
		wifi := netsim.NewPath(eng, netsim.PathConfig{Name: "wifi", RateBps: 5e6, Delay: 10 * time.Millisecond, QueueBytes: 48 << 10})
		lte := netsim.NewPath(eng, netsim.PathConfig{Name: "lte", RateBps: 5e6, Delay: 40 * time.Millisecond, QueueBytes: 48 << 10})
		conn := NewConn(eng, DefaultConfig(0), cc.NewLIA())
		conn.SetScheduler(minRTTSched{})
		for _, p := range []*netsim.Path{wifi, lte} {
			fwd, rev := netsim.NewDemux(), netsim.NewDemux()
			p.SetForwardReceiver(fwd.OnPacket)
			p.SetReverseReceiver(rev.OnPacket)
			conn.AddSubflow(p.Name(), p, fwd, rev)
		}
		var total int64
		completed := 0
		for _, s := range sizesRaw {
			size := int64(s%20000) + 1
			total += size
			conn.Write(size, func(*Transfer) { completed++ })
		}
		eng.RunUntil(5 * time.Minute)
		return completed == len(sizesRaw) && conn.Receiver().DeliveredBytes() == total
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
