package mptcp

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// BenchmarkReceiverInOrder measures the common case of data-level
// reassembly: every packet arrives at the in-order delivery point.
func BenchmarkReceiverInOrder(b *testing.B) {
	eng := sim.New()
	r := NewReceiver(eng, 1<<30)
	const mss = 1400
	b.ReportAllocs()
	b.ResetTimer()
	// One packet reused across iterations (as the link layer does with
	// its ring slots), so the benchmark measures the receiver, not a
	// per-iteration literal allocation.
	pkt := netsim.Packet{Kind: netsim.Data, PayloadLen: mss}
	for i := 0; i < b.N; i++ {
		pkt.SubflowID = i & 1
		r.OnData(&pkt)
		pkt.DSN += mss
		if i&(1<<16-1) == 1<<16-1 {
			b.StopTimer()
			r.ResetOOODelays() // bound the telemetry slice outside the timer
			b.StartTimer()
		}
	}
}

// BenchmarkReceiverReorder measures DSN reassembly under persistent
// cross-path reordering: packets arrive in windows of 16 delivered in
// a fixed pseudo-random permutation, alternating subflows — the access
// pattern that made Receiver.OnData's buffered map and per-subflow
// maps hot in the PR 3 profile.
func BenchmarkReceiverReorder(b *testing.B) {
	eng := sim.New()
	r := NewReceiver(eng, 1<<30)
	const mss = 1400
	const window = 16
	perm := sim.NewRNG(0x5eed).Perm(window)
	b.ReportAllocs()
	b.ResetTimer()
	pkt := netsim.Packet{Kind: netsim.Data, PayloadLen: mss}
	var dsn int64
	for i := 0; i < b.N; i += window {
		for _, k := range perm {
			pkt.SubflowID = k & 1
			pkt.DSN = dsn + int64(k)*mss
			r.OnData(&pkt)
		}
		dsn += window * mss
		if i&(1<<16-1) == 1<<16-window {
			b.StopTimer()
			r.ResetOOODelays() // bound the telemetry slice outside the timer
			b.StartTimer()
		}
	}
}
