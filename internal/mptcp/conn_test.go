package mptcp

import (
	"testing"
	"time"

	"repro/internal/cc"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// minRTTSched is a local copy of the default policy to avoid an import
// cycle with the sched package in tests.
type minRTTSched struct{}

func (minRTTSched) Name() string { return "test-minrtt" }

func (minRTTSched) Select(c *Conn) *tcp.Subflow {
	var best *tcp.Subflow
	for _, sf := range c.Subflows() {
		if !sf.CanSend() {
			continue
		}
		var bestRTT, rtt time.Duration
		if best != nil && best.HasRTTSample() {
			bestRTT = best.Srtt()
		}
		if sf.HasRTTSample() {
			rtt = sf.Srtt()
		}
		if best == nil || rtt < bestRTT {
			best = sf
		}
	}
	return best
}

// rig is a two-path MPTCP test rig.
type rig struct {
	eng  *sim.Engine
	conn *Conn
	wifi *netsim.Path
	lte  *netsim.Path
}

func newRig(t *testing.T, wifiMbps, lteMbps float64, cfg Config) *rig {
	t.Helper()
	eng := sim.New()
	wifi := netsim.NewPath(eng, netsim.PathConfig{Name: "wifi", RateBps: wifiMbps * 1e6, Delay: 10 * time.Millisecond, QueueBytes: 48 << 10})
	lte := netsim.NewPath(eng, netsim.PathConfig{Name: "lte", RateBps: lteMbps * 1e6, Delay: 40 * time.Millisecond, QueueBytes: 48 << 10})
	conn := NewConn(eng, cfg, cc.NewLIA())
	conn.SetScheduler(minRTTSched{})
	for _, p := range []*netsim.Path{wifi, lte} {
		fwd := netsim.NewDemux()
		rev := netsim.NewDemux()
		p.SetForwardReceiver(fwd.OnPacket)
		p.SetReverseReceiver(rev.OnPacket)
		conn.AddSubflow(p.Name(), p, fwd, rev)
	}
	return &rig{eng: eng, conn: conn, wifi: wifi, lte: lte}
}

func TestSingleTransferCompletes(t *testing.T) {
	r := newRig(t, 8, 8, DefaultConfig(0))
	var completed *Transfer
	r.conn.Write(1<<20, func(tr *Transfer) { completed = tr })
	r.eng.Run()
	if completed == nil {
		t.Fatal("transfer did not complete")
	}
	if got := r.conn.Receiver().DeliveredBytes(); got != 1<<20 {
		t.Fatalf("delivered %d bytes, want %d", got, 1<<20)
	}
	if completed.Duration() <= 0 {
		t.Fatal("completion time not positive")
	}
}

func TestBothSubflowsCarryTraffic(t *testing.T) {
	r := newRig(t, 8, 8, DefaultConfig(0))
	r.conn.Write(4<<20, nil)
	r.eng.Run()
	by := r.conn.Receiver().SubflowBytes()
	if by[0] == 0 || by[1] == 0 {
		t.Fatalf("subflow bytes = %v, want both non-zero", by)
	}
	if by[0]+by[1] < 4<<20 {
		t.Fatalf("total first-arrival bytes %d < transfer size", by[0]+by[1])
	}
}

func TestTransferSplitRoughlyTracksBandwidth(t *testing.T) {
	// 2 Mbps wifi vs 8 Mbps lte: the lte subflow should carry clearly
	// more than half of a long transfer.
	r := newRig(t, 2, 8, DefaultConfig(0))
	r.conn.Write(8<<20, nil)
	r.eng.Run()
	by := r.conn.Receiver().SubflowBytes()
	frac := float64(by[1]) / float64(by[0]+by[1])
	if frac < 0.6 {
		t.Fatalf("lte fraction = %.2f, want > 0.6 on a 2-vs-8 Mbps pair", frac)
	}
}

func TestRequestAddsRequestLatency(t *testing.T) {
	r := newRig(t, 8, 8, DefaultConfig(0))
	var tr *Transfer
	r.conn.Request(100_000, func(x *Transfer) { tr = x })
	r.eng.Run()
	if tr == nil {
		t.Fatal("request did not complete")
	}
	if tr.StartedAt <= tr.RequestedAt {
		t.Fatalf("StartedAt %v not after RequestedAt %v", tr.StartedAt, tr.RequestedAt)
	}
	// wifi one-way delay is 10 ms; request latency should be ~11 ms.
	if d := tr.StartedAt - tr.RequestedAt; d < 10*time.Millisecond || d > 15*time.Millisecond {
		t.Fatalf("request latency = %v, want ~11ms", d)
	}
}

func TestSequentialTransfersDeliverInOrder(t *testing.T) {
	r := newRig(t, 4, 8, DefaultConfig(0))
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		r.conn.Write(200_000, func(*Transfer) { order = append(order, i) })
	}
	r.eng.Run()
	if len(order) != 5 {
		t.Fatalf("completed %d transfers, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v, want ascending", order)
		}
	}
}

func TestOOODelaysRecorded(t *testing.T) {
	// Strong heterogeneity forces reordering at the data level.
	r := newRig(t, 0.3, 8.6, DefaultConfig(0))
	r.conn.Write(2<<20, nil)
	r.eng.Run()
	delays := r.conn.Receiver().OOODelays()
	if len(delays) == 0 {
		t.Fatal("no OOO delay samples recorded")
	}
	var positive int
	for _, d := range delays {
		if d < 0 {
			t.Fatal("negative OOO delay")
		}
		if d > 0 {
			positive++
		}
	}
	if positive == 0 {
		t.Fatal("expected some positive OOO delays under heterogeneity")
	}
}

func TestLastPacketTimeDiff(t *testing.T) {
	r := newRig(t, 0.3, 8.6, DefaultConfig(0))
	var tr *Transfer
	r.conn.Write(1<<20, func(x *Transfer) { tr = x })
	r.eng.Run()
	if tr == nil {
		t.Fatal("no completion")
	}
	diff, ok := tr.LastPacketTimeDiff(0, 1)
	if !ok {
		t.Fatal("both subflows should have carried data")
	}
	// With a 0.3 vs 8.6 Mbps pair the slow path finishes way later
	// (paper Figure 5 shows ~1 s differences).
	if diff < 100*time.Millisecond {
		t.Fatalf("last-packet diff = %v, want substantial under heterogeneity", diff)
	}
}

func TestReceiverWindowAdvertised(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.RcvBuf = 64 << 10
	r := newRig(t, 0.3, 8.6, cfg)
	r.conn.Write(1<<20, nil)
	r.eng.Run()
	if got := r.conn.Receiver().DeliveredBytes(); got != 1<<20 {
		t.Fatalf("delivered %d with tiny rcvbuf, want full transfer", got)
	}
}

func TestOpportunisticRtxUnderTinyWindow(t *testing.T) {
	// A tiny send window plus a very slow primary path triggers
	// window-blocking; opportunistic rtx should reinject and penalize.
	cfg := DefaultConfig(0)
	cfg.SndBuf = 32 << 10
	cfg.RcvBuf = 32 << 10
	r := newRig(t, 0.2, 8.6, cfg)
	r.conn.Write(2<<20, nil)
	r.eng.Run()
	if r.conn.Receiver().DeliveredBytes() != 2<<20 {
		t.Fatalf("delivered %d, want full transfer", r.conn.Receiver().DeliveredBytes())
	}
	if r.conn.WindowStalls() == 0 {
		t.Fatal("expected send-window stalls with a 32 KiB window")
	}
	if r.conn.Reinjections() == 0 {
		t.Fatal("expected opportunistic reinjections")
	}
}

func TestOpportunisticRtxDisabled(t *testing.T) {
	cfg := DefaultConfig(0)
	cfg.SndBuf = 32 << 10
	cfg.RcvBuf = 32 << 10
	cfg.OpportunisticRtx = false
	cfg.Penalization = false
	r := newRig(t, 0.2, 8.6, cfg)
	r.conn.Write(1<<20, nil)
	r.eng.Run()
	if r.conn.Receiver().DeliveredBytes() != 1<<20 {
		t.Fatal("transfer must still complete without opportunistic rtx")
	}
	if r.conn.Reinjections() != 0 {
		t.Fatal("reinjections must be zero when disabled")
	}
}

func TestWritePanicsWithoutScheduler(t *testing.T) {
	eng := sim.New()
	conn := NewConn(eng, DefaultConfig(0), cc.NewLIA())
	defer func() {
		if recover() == nil {
			t.Fatal("Write without scheduler did not panic")
		}
	}()
	conn.Write(1000, nil)
}

func TestWritePanicsOnNonPositiveSize(t *testing.T) {
	eng := sim.New()
	conn := NewConn(eng, DefaultConfig(0), cc.NewLIA())
	conn.SetScheduler(minRTTSched{})
	defer func() {
		if recover() == nil {
			t.Fatal("Write(0) did not panic")
		}
	}()
	conn.Write(0, nil)
}

func TestTransferAccessors(t *testing.T) {
	r := newRig(t, 8, 8, DefaultConfig(0))
	var tr *Transfer
	r.conn.Write(50_000, func(x *Transfer) { tr = x })
	r.eng.Run()
	if tr.Bytes != 50_000 || tr.EndDSN-tr.StartDSN != 50_000 {
		t.Fatalf("transfer bookkeeping wrong: %+v", tr)
	}
	if _, ok := tr.LastPacketTimeDiff(0, 99); ok {
		t.Fatal("LastPacketTimeDiff with unused subflow should report !ok")
	}
}

func TestTwoConnsShareBottleneck(t *testing.T) {
	// Two connections over the same 8 Mbps path pair must share capacity:
	// combined duration ≈ 2x a single transfer, and both complete.
	eng := sim.New()
	wifi := netsim.NewPath(eng, netsim.PathConfig{Name: "wifi", RateBps: 8e6, Delay: 10 * time.Millisecond, QueueBytes: 48 << 10})
	lte := netsim.NewPath(eng, netsim.PathConfig{Name: "lte", RateBps: 8e6, Delay: 40 * time.Millisecond, QueueBytes: 48 << 10})
	fwdW, revW := netsim.NewDemux(), netsim.NewDemux()
	fwdL, revL := netsim.NewDemux(), netsim.NewDemux()
	wifi.SetForwardReceiver(fwdW.OnPacket)
	wifi.SetReverseReceiver(revW.OnPacket)
	lte.SetForwardReceiver(fwdL.OnPacket)
	lte.SetReverseReceiver(revL.OnPacket)

	mk := func(id int) *Conn {
		c := NewConn(eng, DefaultConfig(id), cc.NewLIA())
		c.SetScheduler(minRTTSched{})
		c.AddSubflow("wifi", wifi, fwdW, revW)
		c.AddSubflow("lte", lte, fwdL, revL)
		return c
	}
	c1, c2 := mk(0), mk(1)
	done := 0
	c1.Write(2<<20, func(*Transfer) { done++ })
	c2.Write(2<<20, func(*Transfer) { done++ })
	eng.Run()
	if done != 2 {
		t.Fatalf("completed %d transfers, want 2", done)
	}
	if fwdW.Unrouted() != 0 || fwdL.Unrouted() != 0 {
		t.Fatal("demux dropped packets for known flows")
	}
	// 4 MiB total over ~16 Mbps aggregate ≈ 2.1 s minimum.
	if s := eng.Now().Seconds(); s < 2.0 || s > 8 {
		t.Fatalf("shared-bottleneck run took %.1fs, want 2-8s", s)
	}
}

func TestReceiverNotifyAtImmediate(t *testing.T) {
	eng := sim.New()
	r := NewReceiver(eng, 1<<20)
	fired := false
	r.NotifyAt(0, func() { fired = true })
	if !fired {
		t.Fatal("NotifyAt(0) should fire immediately")
	}
}

func TestReceiverOnDataOrdering(t *testing.T) {
	eng := sim.New()
	r := NewReceiver(eng, 1<<20)
	// DSN 1400 first: buffered, window shrinks.
	ack, win := r.OnData(&netsim.Packet{Kind: netsim.Data, DSN: 1400, PayloadLen: 1400, SubflowID: 1})
	if ack != 0 {
		t.Fatalf("dataAck = %d, want 0", ack)
	}
	if win != (1<<20)-1400 {
		t.Fatalf("window = %d, want rcvbuf-1400", win)
	}
	ack, win = r.OnData(&netsim.Packet{Kind: netsim.Data, DSN: 0, PayloadLen: 1400, SubflowID: 0})
	if ack != 2800 {
		t.Fatalf("dataAck = %d after fill, want 2800", ack)
	}
	if win != 1<<20 {
		t.Fatalf("window = %d after drain, want full", win)
	}
	if r.DuplicateArrivals() != 0 {
		t.Fatal("no duplicates expected")
	}
	r.OnData(&netsim.Packet{Kind: netsim.Data, DSN: 0, PayloadLen: 1400, SubflowID: 0})
	if r.DuplicateArrivals() != 1 {
		t.Fatal("stale DSN should count as duplicate")
	}
}
