package mptcp

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/sim"
)

// dsnWaiter fires once the in-order delivery point reaches dsn: the
// transfer completes (tr non-nil, the closure-free form every data
// transfer uses) or fn runs (the generic NotifyAt form).
type dsnWaiter struct {
	dsn int64
	tr  *Transfer
	fn  func()
}

// Receiver is the connection-level (data-sequence) receive side. It
// reassembles the data stream across subflows, advertises the receive
// window, and records the reordering telemetry the paper reports:
// out-of-order delays (Figures 13, 14, 21, 23b) and per-subflow arrival
// accounting (Figures 5, 7, 10).
type Receiver struct {
	eng    *sim.Engine
	rcvBuf int64

	expected int64
	// buffered holds the out-of-order segments as a DSN-ordered ring
	// sliding with the in-order delivery point; the value is the
	// segment's arrival time (for the OOO-delay telemetry). The in-order
	// common case never touches it.
	buffered      ring.Reorder[sim.Time]
	bufferedBytes int64

	waiters []dsnWaiter

	// ArrivalHook, when non-nil, observes every arriving data packet
	// before reassembly (the connection uses it for per-transfer
	// last-packet accounting). The packet pointer is only valid for the
	// duration of the call.
	ArrivalHook func(p *netsim.Packet, now sim.Time)

	// Telemetry. The per-subflow series are dense slices indexed by
	// subflow ID — IDs are small sequential integers assigned by the
	// connection — grown on first sight of an ID.
	oooDelays        []time.Duration
	perSubflowBytes  []int64
	lastArrival      []sim.Time // noArrival until the first data packet
	deliveredBytes   int64
	duplicateArrival int64
}

// noArrival marks a subflow that has not delivered any data yet in
// LastArrival (arrival times are always >= 0).
const noArrival = sim.Time(-1)

// NewReceiver builds a receiver with the given receive-buffer size in
// bytes (the base of the advertised window).
func NewReceiver(eng *sim.Engine, rcvBuf int64) *Receiver {
	r := &Receiver{eng: eng}
	r.Reset(rcvBuf)
	return r
}

// Reset returns a pooled receiver to the state NewReceiver(eng, rcvBuf)
// would construct: delivery point zero, empty reorder buffer and waiter
// list, truncated telemetry series. Every slice keeps its grown
// capacity, which is what makes the per-cell telemetry (OOO-delay
// samples, per-subflow byte logs) allocation-free in steady state — and
// why callers must copy any telemetry they keep before the owning
// network is closed. ArrivalHook is deliberately preserved: the owning
// connection binds it once for its lifetime.
func (r *Receiver) Reset(rcvBuf int64) {
	if rcvBuf <= 0 {
		rcvBuf = 4 << 20
	}
	r.rcvBuf = rcvBuf
	r.expected = 0
	r.buffered.Reset()
	r.bufferedBytes = 0
	r.waiters = r.waiters[:0]
	r.oooDelays = r.oooDelays[:0]
	r.perSubflowBytes = r.perSubflowBytes[:0]
	r.lastArrival = r.lastArrival[:0]
	r.deliveredBytes = 0
	r.duplicateArrival = 0
}

// Expected returns the next in-order DSN (cumulative data-level ACK).
func (r *Receiver) Expected() int64 { return r.expected }

// DeliveredBytes returns total in-order bytes handed to the application.
func (r *Receiver) DeliveredBytes() int64 { return r.deliveredBytes }

// Window returns the currently advertised receive window.
func (r *Receiver) Window() int64 {
	w := r.rcvBuf - r.bufferedBytes
	if w < 0 {
		w = 0
	}
	return w
}

// OOODelays returns the recorded out-of-order delay samples: for every
// first-arrival data packet, the time between its arrival and its
// in-order delivery to the application layer.
func (r *Receiver) OOODelays() []time.Duration { return r.oooDelays }

// ResetOOODelays clears the sample buffer (used between experiment
// phases).
func (r *Receiver) ResetOOODelays() { r.oooDelays = nil }

// SubflowBytes returns first-arrival payload bytes indexed by subflow
// ID (zero for subflows that carried nothing).
func (r *Receiver) SubflowBytes() []int64 { return r.perSubflowBytes }

// LastArrival returns the most recent data arrival time indexed by
// subflow ID; entries are negative for subflows that have not delivered
// any data.
func (r *Receiver) LastArrival() []sim.Time { return r.lastArrival }

// DuplicateArrivals returns the count of redundant DSN deliveries
// (subflow retransmissions and reinjections that lost the race).
func (r *Receiver) DuplicateArrivals() int64 { return r.duplicateArrival }

// NotifyAt registers fn to run as soon as every byte below dsn has been
// delivered in order. If that is already true, fn runs immediately.
func (r *Receiver) NotifyAt(dsn int64, fn func()) {
	if r.expected >= dsn {
		fn()
		return
	}
	r.insertWaiter(dsnWaiter{dsn: dsn, fn: fn})
}

// notifyTransfer is the closure-free transfer form of NotifyAt: the
// transfer completes (via its owning connection) once the delivery
// point reaches its end DSN.
func (r *Receiver) notifyTransfer(tr *Transfer) {
	if r.expected >= tr.EndDSN {
		tr.conn.completeTransfer(tr)
		return
	}
	r.insertWaiter(dsnWaiter{dsn: tr.EndDSN, tr: tr})
}

// insertWaiter places w in DSN order, after every waiter with an equal
// or lower DSN — the same order the former stable sort produced —
// shifting in place so a warm waiter slice allocates nothing.
func (r *Receiver) insertWaiter(w dsnWaiter) {
	lo, hi := 0, len(r.waiters)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.waiters[mid].dsn <= w.dsn {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	r.waiters = append(r.waiters, dsnWaiter{})
	copy(r.waiters[lo+1:], r.waiters[lo:len(r.waiters)-1])
	r.waiters[lo] = w
}

// fireWaiter pops and runs the frontmost waiter, compacting in place so
// the slice's backing array is reused forever.
func (r *Receiver) fireWaiter() {
	w := r.waiters[0]
	copy(r.waiters, r.waiters[1:])
	r.waiters[len(r.waiters)-1] = dsnWaiter{}
	r.waiters = r.waiters[:len(r.waiters)-1]
	if w.tr != nil {
		w.tr.conn.completeTransfer(w.tr)
		return
	}
	w.fn()
}

// Snapshot implements tcp.MetaSink: current ACK fields without consuming
// a packet.
func (r *Receiver) Snapshot() (dataAck, window int64) {
	return r.expected, r.Window()
}

// touchSubflow grows the per-subflow telemetry slices to cover id.
func (r *Receiver) touchSubflow(id int) {
	for len(r.perSubflowBytes) <= id {
		r.perSubflowBytes = append(r.perSubflowBytes, 0)
		r.lastArrival = append(r.lastArrival, noArrival)
	}
}

// OnData implements tcp.MetaSink: it folds one arriving data packet into
// the reorder buffer and returns the data-level cumulative ACK and the
// advertised window for the outgoing subflow ACK.
func (r *Receiver) OnData(p *netsim.Packet) (dataAck, window int64) {
	now := r.eng.Now()
	r.touchSubflow(p.SubflowID)
	r.lastArrival[p.SubflowID] = now
	if r.ArrivalHook != nil {
		r.ArrivalHook(p, now)
	}

	switch {
	case p.DSN == r.expected:
		// In-order fast path: the buffered block never contains the
		// expected DSN (the drain below always consumes it), so this is
		// never a duplicate. Deliver directly — a zero OOO-delay
		// sample — then drain whatever became contiguous.
		length := int64(p.PayloadLen)
		r.perSubflowBytes[p.SubflowID] += length
		r.expected += length
		r.deliveredBytes += length
		r.oooDelays = append(r.oooDelays, 0)
		for {
			l, arrived, ok := r.buffered.PopAt(r.expected)
			if !ok {
				break
			}
			r.bufferedBytes -= int64(l)
			r.expected += int64(l)
			r.deliveredBytes += int64(l)
			r.oooDelays = append(r.oooDelays, now-arrived)
		}
	case p.DSN > r.expected:
		if r.buffered.Insert(p.DSN, p.PayloadLen, now) {
			r.bufferedBytes += int64(p.PayloadLen)
			r.perSubflowBytes[p.SubflowID] += int64(p.PayloadLen)
		} else {
			r.duplicateArrival++
		}
	default:
		r.duplicateArrival++
	}

	// Fire completion waiters in DSN order.
	for len(r.waiters) > 0 && r.waiters[0].dsn <= r.expected {
		r.fireWaiter()
	}

	return r.expected, r.Window()
}
