package mptcp

import (
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/sim"
)

// rxSeg is one buffered (out-of-order) data segment at the receiver.
type rxSeg struct {
	length  int
	arrival sim.Time
}

// dsnWaiter fires fn once the in-order delivery point reaches dsn.
type dsnWaiter struct {
	dsn int64
	fn  func()
}

// Receiver is the connection-level (data-sequence) receive side. It
// reassembles the data stream across subflows, advertises the receive
// window, and records the reordering telemetry the paper reports:
// out-of-order delays (Figures 13, 14, 21, 23b) and per-subflow arrival
// accounting (Figures 5, 7, 10).
type Receiver struct {
	eng    *sim.Engine
	rcvBuf int64

	expected      int64
	buffered      map[int64]rxSeg
	bufferedBytes int64

	waiters []dsnWaiter

	// ArrivalHook, when non-nil, observes every arriving data packet
	// before reassembly (the connection uses it for per-transfer
	// last-packet accounting).
	ArrivalHook func(p netsim.Packet, now sim.Time)

	// Telemetry.
	oooDelays        []time.Duration
	perSubflowBytes  map[int]int64
	lastArrival      map[int]sim.Time
	deliveredBytes   int64
	duplicateArrival int64
}

// NewReceiver builds a receiver with the given receive-buffer size in
// bytes (the base of the advertised window).
func NewReceiver(eng *sim.Engine, rcvBuf int64) *Receiver {
	if rcvBuf <= 0 {
		rcvBuf = 4 << 20
	}
	return &Receiver{
		eng:             eng,
		rcvBuf:          rcvBuf,
		buffered:        make(map[int64]rxSeg),
		perSubflowBytes: make(map[int]int64),
		lastArrival:     make(map[int]sim.Time),
	}
}

// Expected returns the next in-order DSN (cumulative data-level ACK).
func (r *Receiver) Expected() int64 { return r.expected }

// DeliveredBytes returns total in-order bytes handed to the application.
func (r *Receiver) DeliveredBytes() int64 { return r.deliveredBytes }

// Window returns the currently advertised receive window.
func (r *Receiver) Window() int64 {
	w := r.rcvBuf - r.bufferedBytes
	if w < 0 {
		w = 0
	}
	return w
}

// OOODelays returns the recorded out-of-order delay samples: for every
// first-arrival data packet, the time between its arrival and its
// in-order delivery to the application layer.
func (r *Receiver) OOODelays() []time.Duration { return r.oooDelays }

// ResetOOODelays clears the sample buffer (used between experiment
// phases).
func (r *Receiver) ResetOOODelays() { r.oooDelays = nil }

// SubflowBytes returns first-arrival payload bytes per subflow ID.
func (r *Receiver) SubflowBytes() map[int]int64 { return r.perSubflowBytes }

// LastArrival returns the most recent data arrival time per subflow ID.
func (r *Receiver) LastArrival() map[int]sim.Time { return r.lastArrival }

// DuplicateArrivals returns the count of redundant DSN deliveries
// (subflow retransmissions and reinjections that lost the race).
func (r *Receiver) DuplicateArrivals() int64 { return r.duplicateArrival }

// NotifyAt registers fn to run as soon as every byte below dsn has been
// delivered in order. If that is already true, fn runs immediately.
func (r *Receiver) NotifyAt(dsn int64, fn func()) {
	if r.expected >= dsn {
		fn()
		return
	}
	r.waiters = append(r.waiters, dsnWaiter{dsn: dsn, fn: fn})
	sort.SliceStable(r.waiters, func(i, j int) bool { return r.waiters[i].dsn < r.waiters[j].dsn })
}

// Snapshot implements tcp.MetaSink: current ACK fields without consuming
// a packet.
func (r *Receiver) Snapshot() (dataAck, window int64) {
	return r.expected, r.Window()
}

// OnData implements tcp.MetaSink: it folds one arriving data packet into
// the reorder buffer and returns the data-level cumulative ACK and the
// advertised window for the outgoing subflow ACK.
func (r *Receiver) OnData(p netsim.Packet) (dataAck, window int64) {
	now := r.eng.Now()
	r.lastArrival[p.SubflowID] = now
	if r.ArrivalHook != nil {
		r.ArrivalHook(p, now)
	}

	if p.DSN >= r.expected {
		if _, dup := r.buffered[p.DSN]; dup {
			r.duplicateArrival++
		} else {
			r.buffered[p.DSN] = rxSeg{length: p.PayloadLen, arrival: now}
			r.bufferedBytes += int64(p.PayloadLen)
			r.perSubflowBytes[p.SubflowID] += int64(p.PayloadLen)
		}
	} else {
		r.duplicateArrival++
	}

	// Deliver everything now contiguous.
	for {
		seg, ok := r.buffered[r.expected]
		if !ok {
			break
		}
		delete(r.buffered, r.expected)
		r.bufferedBytes -= int64(seg.length)
		r.expected += int64(seg.length)
		r.deliveredBytes += int64(seg.length)
		r.oooDelays = append(r.oooDelays, now-seg.arrival)
	}

	// Fire completion waiters in DSN order.
	for len(r.waiters) > 0 && r.waiters[0].dsn <= r.expected {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		w.fn()
	}

	return r.expected, r.Window()
}
