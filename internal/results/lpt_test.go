package results

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/runner"
)

func TestLPTOrder(t *testing.T) {
	// No cost hint anywhere → no reordering (nil keeps the pool on its
	// index-order fast path).
	if ord := lptOrder([]float64{0, 0, 0}); ord != nil {
		t.Fatalf("lptOrder(all zero) = %v, want nil", ord)
	}
	if ord := lptOrder(nil); ord != nil {
		t.Fatalf("lptOrder(nil) = %v, want nil", ord)
	}
	// Descending cost, stable on ties (equal-cost jobs keep their index
	// order, preserving determinism of the dispatch sequence).
	got := lptOrder([]float64{1, 5, 3, 5, 0})
	want := []int{1, 3, 2, 0, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("lptOrder = %v, want %v", got, want)
	}
}

// TestBatchRunDispatchesExpensiveFirst pins the LPT wiring end to end:
// a batch whose cells carry cost hints runs them most-expensive-first
// on a single worker, and the collected results are untouched by the
// reordering.
func TestBatchRunDispatchesExpensiveFirst(t *testing.T) {
	const n = 5
	costs := []float64{2, 9, 1, 7, 4} // LPT order: 1, 3, 4, 0, 2
	var ran []int
	out := make([]rec, n)
	b := NewBatch(runner.New(1), nil)
	AddLanes(b, Spec{Experiment: "unit/lpt", Schema: 1, Scale: "s"}, n,
		LaneOpts[rec]{Cost: func(i int) float64 { return costs[i] }},
		func(i int) rec { ran = append(ran, i); return rec{Cell: i} },
		func(i int, v rec) { out[i] = v })
	if err := b.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if want := []int{1, 3, 4, 0, 2}; !reflect.DeepEqual(ran, want) {
		t.Fatalf("dispatch sequence %v, want LPT order %v", ran, want)
	}
	for i, v := range out {
		if v.Cell != i {
			t.Fatalf("out[%d] = %+v: collection must be index-faithful under reordering", i, v)
		}
	}
}
