package results

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
)

// PruneReport summarizes a Prune pass.
type PruneReport struct {
	// Deleted lists the removed groups (in dry-run mode: the groups that
	// would be removed), sorted like an audit.
	Deleted []AuditLine
	// KeptRecords/KeptBytes total the surviving records.
	KeptRecords int
	KeptBytes   int64
	// Unreadable counts files that failed to parse as records. Prune
	// leaves them untouched: they are already treated as misses at read
	// time, and deleting what cannot be identified is not this tool's
	// call.
	Unreadable int
}

// DeletedRecords totals the removed record count.
func (r *PruneReport) DeletedRecords() int {
	n := 0
	for _, l := range r.Deleted {
		n += l.Records
	}
	return n
}

// DeletedBytes totals the removed bytes.
func (r *PruneReport) DeletedBytes() int64 {
	var n int64
	for _, l := range r.Deleted {
		n += l.Bytes
	}
	return n
}

// Prune walks the store and deletes every record whose (experiment,
// scale, schema) group keep rejects — the groups a current run would no
// longer read, per the enumerated active matrix. With dryRun set,
// nothing is removed and the report shows what a real pass would
// delete. Experiment directories left empty by the pass are removed.
func (s *Store) Prune(keep func(Group) bool, dryRun bool) (*PruneReport, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	deleted := make(map[Group]*AuditLine)
	rep := &PruneReport{}
	for _, dir := range entries {
		if !dir.IsDir() {
			continue
		}
		dirPath := filepath.Join(s.root, dir.Name())
		files, err := os.ReadDir(dirPath)
		if err != nil {
			return nil, err
		}
		removed := 0
		for _, f := range files {
			if f.IsDir() || filepath.Ext(f.Name()) != ".json" {
				continue
			}
			path := filepath.Join(dirPath, f.Name())
			raw, err := os.ReadFile(path)
			if err != nil {
				rep.Unreadable++
				continue
			}
			var env envelope
			if json.Unmarshal(raw, &env) != nil || env.Key.Experiment == "" {
				rep.Unreadable++
				continue
			}
			g := Group{Experiment: env.Key.Experiment, Scale: env.Key.Scale, Schema: env.Key.Schema}
			if keep(g) {
				rep.KeptRecords++
				rep.KeptBytes += int64(len(raw))
				continue
			}
			if !dryRun {
				if err := os.Remove(path); err != nil {
					return nil, err
				}
				removed++
			}
			line := deleted[g]
			if line == nil {
				line = &AuditLine{Experiment: g.Experiment, Scale: g.Scale, Schema: g.Schema}
				deleted[g] = line
			}
			line.Records++
			line.Bytes += int64(len(raw))
		}
		if removed > 0 {
			// Drop the directory when the pass emptied it; Remove fails
			// harmlessly when stray files (temp files, unreadable
			// records) remain.
			os.Remove(dirPath)
		}
	}
	for _, line := range deleted {
		rep.Deleted = append(rep.Deleted, *line)
	}
	sort.Slice(rep.Deleted, func(i, j int) bool {
		a, b := rep.Deleted[i], rep.Deleted[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Scale != b.Scale {
			return a.Scale < b.Scale
		}
		return a.Schema < b.Schema
	})
	return rep, nil
}
