package results

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// PruneOptions parameterizes a Prune pass.
type PruneOptions struct {
	// Keep reports whether a record group belongs to the active matrix.
	// Records of rejected groups are always deleted. A nil Keep treats
	// every group as active — the age-only form: Prune(PruneOptions{
	// OlderThan: ...}) deletes nothing but out-aged records.
	Keep func(Group) bool
	// OlderThan, when positive, additionally deletes records *inside*
	// the active matrix whose file modification time is older than
	// Now-OlderThan — the age-based variant that bounds store growth
	// for operators who sweep many scales (a record's mtime is its last
	// write: results.Store rewrites a record's file on every cache
	// miss, so age means "not recomputed since", while cache hits do
	// not refresh it).
	OlderThan time.Duration
	// Now anchors the age cutoff; the zero value selects time.Now().
	Now time.Time
	// DryRun reports what would be deleted without removing anything.
	DryRun bool
}

// PruneReport summarizes a Prune pass.
type PruneReport struct {
	// Deleted lists the removed groups (in dry-run mode: the groups that
	// would be removed), sorted like an audit.
	Deleted []AuditLine
	// Aged lists records removed by the OlderThan cutoff — groups the
	// active matrix still reads, whose records were last written before
	// the cutoff — sorted like an audit.
	Aged []AuditLine
	// KeptRecords/KeptBytes total the surviving records.
	KeptRecords int
	KeptBytes   int64
	// Unreadable counts files that failed to parse as records. Prune
	// leaves them untouched: they are already treated as misses at read
	// time, and deleting what cannot be identified is not this tool's
	// call.
	Unreadable int
}

// DeletedRecords totals the removed record count.
func (r *PruneReport) DeletedRecords() int {
	n := 0
	for _, l := range r.Deleted {
		n += l.Records
	}
	return n
}

// DeletedBytes totals the removed bytes.
func (r *PruneReport) DeletedBytes() int64 {
	var n int64
	for _, l := range r.Deleted {
		n += l.Bytes
	}
	return n
}

// AgedRecords totals the age-pruned record count.
func (r *PruneReport) AgedRecords() int {
	n := 0
	for _, l := range r.Aged {
		n += l.Records
	}
	return n
}

// AgedBytes totals the age-pruned bytes.
func (r *PruneReport) AgedBytes() int64 {
	var n int64
	for _, l := range r.Aged {
		n += l.Bytes
	}
	return n
}

// Prune walks the store and deletes every record whose (experiment,
// scale, schema) group opts.Keep rejects — the groups a current run
// would no longer read, per the enumerated active matrix — plus, when
// opts.OlderThan is set, records inside the active matrix last written
// before the age cutoff. With DryRun set, nothing is removed and the
// report shows what a real pass would delete. Experiment directories
// left empty by the pass are removed.
func (s *Store) Prune(opts PruneOptions) (*PruneReport, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	keep := opts.Keep
	if keep == nil {
		keep = func(Group) bool { return true }
	}
	cutoff := time.Time{}
	if opts.OlderThan > 0 {
		now := opts.Now
		if now.IsZero() {
			now = time.Now()
		}
		cutoff = now.Add(-opts.OlderThan)
	}
	deleted := make(map[Group]*AuditLine)
	aged := make(map[Group]*AuditLine)
	rep := &PruneReport{}
	for _, dir := range entries {
		if !dir.IsDir() {
			continue
		}
		dirPath := filepath.Join(s.root, dir.Name())
		files, err := os.ReadDir(dirPath)
		if err != nil {
			return nil, err
		}
		removed := 0
		for _, f := range files {
			if f.IsDir() || filepath.Ext(f.Name()) != ".json" {
				continue
			}
			path := filepath.Join(dirPath, f.Name())
			raw, err := os.ReadFile(path)
			if err != nil {
				rep.Unreadable++
				continue
			}
			var env envelope
			if json.Unmarshal(raw, &env) != nil || env.Key.Experiment == "" {
				rep.Unreadable++
				continue
			}
			g := Group{Experiment: env.Key.Experiment, Scale: env.Key.Scale, Schema: env.Key.Schema}
			lines := deleted
			if keep(g) {
				tooOld := false
				if !cutoff.IsZero() {
					if info, err := f.Info(); err == nil && info.ModTime().Before(cutoff) {
						tooOld = true
					}
				}
				if !tooOld {
					rep.KeptRecords++
					rep.KeptBytes += int64(len(raw))
					continue
				}
				lines = aged
			}
			if !opts.DryRun {
				if err := os.Remove(path); err != nil {
					return nil, err
				}
				removed++
			}
			line := lines[g]
			if line == nil {
				line = &AuditLine{Experiment: g.Experiment, Scale: g.Scale, Schema: g.Schema}
				lines[g] = line
			}
			line.Records++
			line.Bytes += int64(len(raw))
		}
		if removed > 0 {
			// Drop the directory when the pass emptied it; Remove fails
			// harmlessly when stray files (temp files, unreadable
			// records) remain.
			os.Remove(dirPath)
		}
	}
	rep.Deleted = sortedLines(deleted)
	rep.Aged = sortedLines(aged)
	return rep, nil
}

// sortedLines flattens a per-group tally into audit order.
func sortedLines(m map[Group]*AuditLine) []AuditLine {
	var out []AuditLine
	for _, line := range m {
		out = append(out, *line)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Scale != b.Scale {
			return a.Scale < b.Scale
		}
		return a.Schema < b.Schema
	})
	return out
}
