package results

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is the on-disk cell cache: one JSON file per record, grouped in
// a directory per experiment, named by cell index plus the key's
// content hash. Writes are atomic and durable (temp file, fsync, rename,
// directory fsync) so neither a concurrent writer, a killed process nor
// a machine crash can leave a half-record behind under the final name;
// reads treat any unreadable, undecodable or mismatched file as a miss,
// so a cache corrupted by other means heals itself by recomputation.
type Store struct {
	root string
	// warned dedupes fingerprint-mismatch warnings per record group.
	warned sync.Map
}

// Open prepares dir as a cell store, creating it (and parents) when
// missing and probing writability up front so an unusable -cache-dir
// fails with a clear message before any simulation runs.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cannot create cache dir %s: %w", dir, err)
	}
	probe, err := os.CreateTemp(dir, ".writable-*")
	if err != nil {
		return nil, fmt.Errorf("cache dir %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &Store{root: dir}, nil
}

// OpenRead prepares dir as a read-only record source — the -merge
// pass, which never writes, so a store on a read-only mount (or
// another user's copied shard output) works. The directory must
// already exist.
func OpenRead(dir string) (*Store, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("cache dir %s: %w", dir, err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("cache dir %s is not a directory", dir)
	}
	return &Store{root: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// envelope pairs the key with the payload on disk, so a read verifies
// it decoded the record it asked for (guarding against hash collisions
// and hand-edited files). Fp is the structural fingerprint of the
// payload's Go type at write time (see fingerprint.go): a read whose
// target type no longer matches warns and misses instead of silently
// decoding a stale shape.
type envelope struct {
	Key  Key             `json:"key"`
	Fp   string          `json:"fp,omitempty"`
	Data json.RawMessage `json:"data"`
}

// path places a record at <root>/<experiment>/c<cell>-<hash>.json. The
// experiment segment is sanitized for the filesystem; the hash is the
// actual address, the rest is for humans browsing the cache.
func (s *Store) path(k Key) string {
	exp := []byte(k.Experiment)
	for i, c := range exp {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-', c == '_':
		default:
			exp[i] = '_'
		}
	}
	return filepath.Join(s.root, string(exp), fmt.Sprintf("c%04d-%s.json", k.Cell, k.hash()))
}

// Get decodes the record for k into into (a pointer). It returns false
// on any miss: no file, unreadable file, malformed JSON, a stored key
// that does not match the request, or a payload fingerprint that does
// not match the target type — the last case also warns (once per
// group), since it means the simulator's record shape changed without
// a schema bump and the cached group is stale.
func (s *Store) Get(k Key, into any) bool {
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		return false
	}
	var env envelope
	if json.Unmarshal(raw, &env) != nil || env.Key != k {
		return false
	}
	if want := targetFingerprint(into); env.Fp != want {
		s.warnMismatch(k, env.Fp, want)
		return false
	}
	return json.Unmarshal(env.Data, into) == nil
}

// Put atomically and durably persists v as the record for k, stamped
// with the payload type's structural fingerprint.
func (s *Store) Put(k Key, v any) error {
	raw, err := EncodeRecord(k, v)
	if err != nil {
		return err
	}
	return s.write(k, raw)
}

// Has reports whether the store holds a well-formed record for k: the
// file exists, decodes as an envelope, and the stored key matches the
// request. Unlike Get it needs no target type (and so cannot check the
// payload fingerprint) — it is the coordinator's type-free notion of
// "this cell is done", conservative in the same direction as Get: a
// truncated or foreign file counts as absent.
func (s *Store) Has(k Key) bool {
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		return false
	}
	var env envelope
	return json.Unmarshal(raw, &env) == nil && env.Key == k
}

// Ingest idempotently persists a serialized record envelope (as built
// by EncodeRecord, typically on another machine) as the record for k.
// The envelope must decode and claim the same key, or the ingest is
// rejected. A record already present for k makes the ingest a no-op —
// added reports false and nothing is written — so replayed and
// duplicated uploads (a retried RPC whose first attempt did land, a
// worker whose lease was stolen finishing anyway) converge on exactly
// one record. Under the determinism contract every writer computes the
// same bytes for a cell, so first-write-wins loses nothing.
func (s *Store) Ingest(k Key, raw []byte) (added bool, err error) {
	got, err := DecodeRecordKey(raw)
	if err != nil {
		return false, fmt.Errorf("cache: ingest for cell %d of %q: %w", k.Cell, k.Experiment, err)
	}
	if got != k {
		return false, fmt.Errorf("cache: ingest for cell %d of %q carries key for cell %d of %q", k.Cell, k.Experiment, got.Cell, got.Experiment)
	}
	if s.Has(k) {
		return false, nil
	}
	if err := s.write(k, raw); err != nil {
		return false, err
	}
	return true, nil
}

// write durably lands raw at k's path.
func (s *Store) write(k Key, raw []byte) error {
	path := s.path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if err := AtomicWriteFile(path, raw); err != nil {
		return fmt.Errorf("cache: writing cell %d of %q: %w", k.Cell, k.Experiment, err)
	}
	return nil
}

// EncodeRecord serializes v as the store's record envelope for k — the
// exact bytes Put writes, and the wire format a distributed worker
// uploads for Store.Ingest on the coordinator.
func EncodeRecord(k Key, v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("cache: encoding cell %d of %q: %w", k.Cell, k.Experiment, err)
	}
	raw, err := json.Marshal(envelope{Key: k, Fp: payloadFingerprint(v), Data: data})
	if err != nil {
		return nil, fmt.Errorf("cache: encoding cell %d of %q: %w", k.Cell, k.Experiment, err)
	}
	return raw, nil
}

// DecodeRecordKey returns the key a serialized record envelope claims
// to carry, rejecting envelopes whose payload is absent or not valid
// JSON — the validation gate for ingesting records from the network.
func DecodeRecordKey(raw []byte) (Key, error) {
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return Key{}, fmt.Errorf("malformed record envelope: %w", err)
	}
	if env.Key.Experiment == "" {
		return Key{}, fmt.Errorf("record envelope carries no key")
	}
	if len(env.Data) == 0 || !json.Valid(env.Data) {
		return Key{}, fmt.Errorf("record envelope for cell %d of %q carries no valid payload", env.Key.Cell, env.Key.Experiment)
	}
	return env.Key, nil
}

// AtomicWriteFile lands data at path so that after a crash at any
// instant the path holds either the complete old content or the
// complete new content, and the new content survives power loss once
// AtomicWriteFile returns: write to a temp file in the same directory,
// fsync it, rename over the target, fsync the directory (the rename
// itself is not durable until its directory is). This is the auklet
// object-store atomic-writer discipline; the store's record writes and
// the coordinator's state snapshots both go through it.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename into it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
