package results

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is the on-disk cell cache: one JSON file per record, grouped in
// a directory per experiment, named by cell index plus the key's
// content hash. Writes are atomic (temp file + rename) so a concurrent
// or killed writer can never leave a half-record behind; reads treat
// any unreadable, undecodable or mismatched file as a miss, so a
// corrupted cache heals itself by recomputation.
type Store struct {
	root string
	// warned dedupes fingerprint-mismatch warnings per record group.
	warned sync.Map
}

// Open prepares dir as a cell store, creating it (and parents) when
// missing and probing writability up front so an unusable -cache-dir
// fails with a clear message before any simulation runs.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cannot create cache dir %s: %w", dir, err)
	}
	probe, err := os.CreateTemp(dir, ".writable-*")
	if err != nil {
		return nil, fmt.Errorf("cache dir %s is not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return &Store{root: dir}, nil
}

// OpenRead prepares dir as a read-only record source — the -merge
// pass, which never writes, so a store on a read-only mount (or
// another user's copied shard output) works. The directory must
// already exist.
func OpenRead(dir string) (*Store, error) {
	fi, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("cache dir %s: %w", dir, err)
	}
	if !fi.IsDir() {
		return nil, fmt.Errorf("cache dir %s is not a directory", dir)
	}
	return &Store{root: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// envelope pairs the key with the payload on disk, so a read verifies
// it decoded the record it asked for (guarding against hash collisions
// and hand-edited files). Fp is the structural fingerprint of the
// payload's Go type at write time (see fingerprint.go): a read whose
// target type no longer matches warns and misses instead of silently
// decoding a stale shape.
type envelope struct {
	Key  Key             `json:"key"`
	Fp   string          `json:"fp,omitempty"`
	Data json.RawMessage `json:"data"`
}

// path places a record at <root>/<experiment>/c<cell>-<hash>.json. The
// experiment segment is sanitized for the filesystem; the hash is the
// actual address, the rest is for humans browsing the cache.
func (s *Store) path(k Key) string {
	exp := []byte(k.Experiment)
	for i, c := range exp {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '-', c == '_':
		default:
			exp[i] = '_'
		}
	}
	return filepath.Join(s.root, string(exp), fmt.Sprintf("c%04d-%s.json", k.Cell, k.hash()))
}

// Get decodes the record for k into into (a pointer). It returns false
// on any miss: no file, unreadable file, malformed JSON, a stored key
// that does not match the request, or a payload fingerprint that does
// not match the target type — the last case also warns (once per
// group), since it means the simulator's record shape changed without
// a schema bump and the cached group is stale.
func (s *Store) Get(k Key, into any) bool {
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		return false
	}
	var env envelope
	if json.Unmarshal(raw, &env) != nil || env.Key != k {
		return false
	}
	if want := targetFingerprint(into); env.Fp != want {
		s.warnMismatch(k, env.Fp, want)
		return false
	}
	return json.Unmarshal(env.Data, into) == nil
}

// Put atomically persists v as the record for k, stamped with the
// payload type's structural fingerprint.
func (s *Store) Put(k Key, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("cache: encoding cell %d of %q: %w", k.Cell, k.Experiment, err)
	}
	raw, err := json.Marshal(envelope{Key: k, Fp: payloadFingerprint(v), Data: data})
	if err != nil {
		return fmt.Errorf("cache: encoding cell %d of %q: %w", k.Cell, k.Experiment, err)
	}
	path := s.path(k)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("cache: writing cell %d of %q: %w", k.Cell, k.Experiment, werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}
