package results

import (
	"os"
	"path/filepath"
	"testing"
)

// prunePut stores one tiny record under the given group.
func prunePut(t *testing.T, st *Store, exp, scale string, schema, cell int) {
	t.Helper()
	type rec struct{ V int }
	k := Key{Experiment: exp, Cell: cell, Schema: schema, Scale: scale}
	if err := st.Put(k, rec{V: cell}); err != nil {
		t.Fatal(err)
	}
}

func TestPruneDeletesOnlyRejectedGroups(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prunePut(t, st, "grid/ecf", "gv30", 2, 0)
	prunePut(t, st, "grid/ecf", "gv30", 2, 1)
	prunePut(t, st, "grid/ecf", "gv90", 2, 0) // stale scale
	prunePut(t, st, "fig16", "rd80,rs3", 1, 0)
	prunePut(t, st, "oldexp", "v60", 1, 0) // stale experiment

	active := map[Group]bool{
		{Experiment: "grid/ecf", Scale: "gv30", Schema: 2}:  true,
		{Experiment: "fig16", Scale: "rd80,rs3", Schema: 1}: true,
	}
	keep := func(g Group) bool { return active[g] }

	// Dry run: full report, nothing removed.
	rep, err := st.Prune(keep, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeletedRecords() != 2 || len(rep.Deleted) != 2 {
		t.Fatalf("dry-run: DeletedRecords = %d, groups = %d; want 2, 2", rep.DeletedRecords(), len(rep.Deleted))
	}
	if rep.KeptRecords != 3 {
		t.Fatalf("dry-run: KeptRecords = %d, want 3", rep.KeptRecords)
	}
	if audit, _ := st.Audit(); audit.Records != 5 {
		t.Fatalf("dry run removed records: %d left, want 5", audit.Records)
	}

	// Real pass.
	rep, err = st.Prune(keep, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeletedRecords() != 2 {
		t.Fatalf("DeletedRecords = %d, want 2", rep.DeletedRecords())
	}
	audit, err := st.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if audit.Records != 3 {
		t.Fatalf("%d records left, want 3", audit.Records)
	}
	for _, line := range audit.Lines {
		if !active[Group{Experiment: line.Experiment, Scale: line.Scale, Schema: line.Schema}] {
			t.Fatalf("stale group %+v survived the prune", line)
		}
	}
	// The emptied experiment directory is gone.
	if _, err := os.Stat(filepath.Join(dir, "oldexp")); !os.IsNotExist(err) {
		t.Fatalf("emptied experiment dir survived: %v", err)
	}
	// The kept records still decode.
	var got struct{ V int }
	if !st.Get(Key{Experiment: "fig16", Cell: 0, Schema: 1, Scale: "rd80,rs3"}, &got) || got.V != 0 {
		t.Fatal("kept record no longer readable")
	}
}

func TestPruneLeavesUnreadableFilesInPlace(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prunePut(t, st, "fig16", "rd80,rs3", 1, 0)
	trunc := filepath.Join(dir, "fig16", "c9999-dead.json")
	if err := os.WriteFile(trunc, []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Prune(func(Group) bool { return false }, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreadable != 1 {
		t.Fatalf("Unreadable = %d, want 1", rep.Unreadable)
	}
	if _, err := os.Stat(trunc); err != nil {
		t.Fatalf("unreadable file was removed: %v", err)
	}
}

func TestEnumerateSessionRecordsGroupsWithoutComputing(t *testing.T) {
	ses := &Session{Enumerate: true}
	computed := 0
	spec := Spec{Experiment: "e", Schema: 3, Scale: "v60"}
	err := runCell(ses, spec, 0, func(int) int { computed++; return 0 }, func(int, int) { computed++ })
	if err != nil {
		t.Fatal(err)
	}
	if computed != 0 {
		t.Fatalf("enumerate mode executed compute/collect %d times", computed)
	}
	groups := ses.ActiveGroups()
	if len(groups) != 1 || groups[0] != (Group{Experiment: "e", Scale: "v60", Schema: 3}) {
		t.Fatalf("ActiveGroups = %+v", groups)
	}
}
