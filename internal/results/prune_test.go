package results

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// prunePut stores one tiny record under the given group.
func prunePut(t *testing.T, st *Store, exp, scale string, schema, cell int) {
	t.Helper()
	type rec struct{ V int }
	k := Key{Experiment: exp, Cell: cell, Schema: schema, Scale: scale}
	if err := st.Put(k, rec{V: cell}); err != nil {
		t.Fatal(err)
	}
}

func TestPruneDeletesOnlyRejectedGroups(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prunePut(t, st, "grid/ecf", "gv30", 2, 0)
	prunePut(t, st, "grid/ecf", "gv30", 2, 1)
	prunePut(t, st, "grid/ecf", "gv90", 2, 0) // stale scale
	prunePut(t, st, "fig16", "rd80,rs3", 1, 0)
	prunePut(t, st, "oldexp", "v60", 1, 0) // stale experiment

	active := map[Group]bool{
		{Experiment: "grid/ecf", Scale: "gv30", Schema: 2}:  true,
		{Experiment: "fig16", Scale: "rd80,rs3", Schema: 1}: true,
	}
	keep := func(g Group) bool { return active[g] }

	// Dry run: full report, nothing removed.
	rep, err := st.Prune(PruneOptions{Keep: keep, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeletedRecords() != 2 || len(rep.Deleted) != 2 {
		t.Fatalf("dry-run: DeletedRecords = %d, groups = %d; want 2, 2", rep.DeletedRecords(), len(rep.Deleted))
	}
	if rep.KeptRecords != 3 {
		t.Fatalf("dry-run: KeptRecords = %d, want 3", rep.KeptRecords)
	}
	if audit, _ := st.Audit(); audit.Records != 5 {
		t.Fatalf("dry run removed records: %d left, want 5", audit.Records)
	}

	// Real pass.
	rep, err = st.Prune(PruneOptions{Keep: keep})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeletedRecords() != 2 {
		t.Fatalf("DeletedRecords = %d, want 2", rep.DeletedRecords())
	}
	audit, err := st.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if audit.Records != 3 {
		t.Fatalf("%d records left, want 3", audit.Records)
	}
	for _, line := range audit.Lines {
		if !active[Group{Experiment: line.Experiment, Scale: line.Scale, Schema: line.Schema}] {
			t.Fatalf("stale group %+v survived the prune", line)
		}
	}
	// The emptied experiment directory is gone.
	if _, err := os.Stat(filepath.Join(dir, "oldexp")); !os.IsNotExist(err) {
		t.Fatalf("emptied experiment dir survived: %v", err)
	}
	// The kept records still decode.
	var got struct{ V int }
	if !st.Get(Key{Experiment: "fig16", Cell: 0, Schema: 1, Scale: "rd80,rs3"}, &got) || got.V != 0 {
		t.Fatal("kept record no longer readable")
	}
}

// backdate rewinds every record file of one experiment directory to the
// given mtime, simulating records last written long ago.
func backdate(t *testing.T, dir, exp string, mtime time.Time) {
	t.Helper()
	files, err := os.ReadDir(filepath.Join(dir, exp))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if err := os.Chtimes(filepath.Join(dir, exp, f.Name()), mtime, mtime); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPruneOlderThanAgesOutActiveMatrixRecords(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prunePut(t, st, "grid/ecf", "gv30", 2, 0) // fresh, in matrix
	prunePut(t, st, "fig16", "rd80,rs3", 1, 0)
	prunePut(t, st, "fig16", "rd80,rs3", 1, 1) // both backdated, in matrix
	prunePut(t, st, "oldexp", "v60", 1, 0)     // fresh but outside matrix

	now := time.Now()
	backdate(t, dir, "fig16", now.Add(-48*time.Hour))

	active := map[Group]bool{
		{Experiment: "grid/ecf", Scale: "gv30", Schema: 2}:  true,
		{Experiment: "fig16", Scale: "rd80,rs3", Schema: 1}: true,
	}
	opts := PruneOptions{
		Keep:      func(g Group) bool { return active[g] },
		OlderThan: 24 * time.Hour,
		Now:       now,
		DryRun:    true,
	}

	// Dry run: aged and stale records reported separately, nothing gone.
	rep, err := st.Prune(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AgedRecords() != 2 || len(rep.Aged) != 1 {
		t.Fatalf("dry-run: AgedRecords = %d, groups = %d; want 2, 1", rep.AgedRecords(), len(rep.Aged))
	}
	if rep.DeletedRecords() != 1 {
		t.Fatalf("dry-run: DeletedRecords = %d, want 1", rep.DeletedRecords())
	}
	if rep.KeptRecords != 1 {
		t.Fatalf("dry-run: KeptRecords = %d, want 1", rep.KeptRecords)
	}
	if audit, _ := st.Audit(); audit.Records != 4 {
		t.Fatalf("dry run removed records: %d left, want 4", audit.Records)
	}

	// Real pass: only the fresh in-matrix record survives.
	opts.DryRun = false
	rep, err = st.Prune(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AgedRecords() != 2 || rep.DeletedRecords() != 1 {
		t.Fatalf("AgedRecords = %d, DeletedRecords = %d; want 2, 1", rep.AgedRecords(), rep.DeletedRecords())
	}
	audit, err := st.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if audit.Records != 1 {
		t.Fatalf("%d records left, want 1", audit.Records)
	}
	if got := audit.Lines[0]; got.Experiment != "grid/ecf" {
		t.Fatalf("surviving group = %+v, want grid/ecf", got)
	}
	// A later pass with the same cutoff finds nothing new to age out.
	rep, err = st.Prune(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AgedRecords() != 0 || rep.DeletedRecords() != 0 || rep.KeptRecords != 1 {
		t.Fatalf("idempotence: aged %d, deleted %d, kept %d", rep.AgedRecords(), rep.DeletedRecords(), rep.KeptRecords)
	}
}

func TestPruneNilKeepIsAgeOnly(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prunePut(t, st, "fig16", "rd80,rs3", 1, 0)
	prunePut(t, st, "oldexp", "v60", 1, 0)
	backdate(t, dir, "oldexp", time.Now().Add(-48*time.Hour))
	rep, err := st.Prune(PruneOptions{OlderThan: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeletedRecords() != 0 {
		t.Fatalf("nil Keep deleted %d records as out-of-matrix, want 0", rep.DeletedRecords())
	}
	if rep.AgedRecords() != 1 || rep.KeptRecords != 1 {
		t.Fatalf("age-only pass aged %d, kept %d; want 1, 1", rep.AgedRecords(), rep.KeptRecords)
	}
}

func TestPruneOlderThanZeroKeepsEverythingInMatrix(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prunePut(t, st, "fig16", "rd80,rs3", 1, 0)
	backdate(t, dir, "fig16", time.Now().Add(-1000*time.Hour))
	rep, err := st.Prune(PruneOptions{Keep: func(Group) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AgedRecords() != 0 || rep.KeptRecords != 1 {
		t.Fatalf("no-cutoff pass aged %d records, kept %d; want 0, 1", rep.AgedRecords(), rep.KeptRecords)
	}
}

func TestPruneLeavesUnreadableFilesInPlace(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	prunePut(t, st, "fig16", "rd80,rs3", 1, 0)
	trunc := filepath.Join(dir, "fig16", "c9999-dead.json")
	if err := os.WriteFile(trunc, []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Prune(PruneOptions{Keep: func(Group) bool { return false }})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unreadable != 1 {
		t.Fatalf("Unreadable = %d, want 1", rep.Unreadable)
	}
	if _, err := os.Stat(trunc); err != nil {
		t.Fatalf("unreadable file was removed: %v", err)
	}
}

func TestEnumerateSessionRecordsGroupsWithoutComputing(t *testing.T) {
	ses := &Session{Enumerate: true}
	computed := 0
	spec := Spec{Experiment: "e", Schema: 3, Scale: "v60"}
	err := runCell(ses, spec, 0, func(int) int { computed++; return 0 }, func(int, int) { computed++ })
	if err != nil {
		t.Fatal(err)
	}
	if computed != 0 {
		t.Fatalf("enumerate mode executed compute/collect %d times", computed)
	}
	groups := ses.ActiveGroups()
	if len(groups) != 1 || groups[0] != (Group{Experiment: "e", Scale: "v60", Schema: 3}) {
		t.Fatalf("ActiveGroups = %+v", groups)
	}
}
