package results

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
)

// AuditLine summarizes the records one (experiment, scale, schema) group
// occupies in a store — the unit at which cache entries become stale
// (a schema bump or scale change strands the whole group).
type AuditLine struct {
	Experiment string
	Scale      string
	Schema     int
	Records    int
	Bytes      int64
}

// AuditReport is the result of walking a store.
type AuditReport struct {
	// Lines is sorted by (experiment, scale, schema).
	Lines []AuditLine
	// Records and Bytes total the readable records.
	Records int
	Bytes   int64
	// Unreadable counts files that failed to parse as records (partial
	// writes from killed processes, hand-edited files). They are normal
	// cache misses at read time; the audit surfaces them so an operator
	// can judge whether a store is worth keeping.
	Unreadable int
}

// Audit walks the store and groups every record by (experiment, scale,
// schema) — the -cache-stats mode, answering "what is occupying this
// cache dir and which of it would a current run still read?".
func (s *Store) Audit() (*AuditReport, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, err
	}
	type group struct {
		exp    string
		scale  string
		schema int
	}
	groups := make(map[group]*AuditLine)
	rep := &AuditReport{}
	for _, dir := range entries {
		if !dir.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.root, dir.Name()))
		if err != nil {
			return nil, err
		}
		for _, f := range files {
			if f.IsDir() || filepath.Ext(f.Name()) != ".json" {
				continue
			}
			path := filepath.Join(s.root, dir.Name(), f.Name())
			raw, err := os.ReadFile(path)
			if err != nil {
				rep.Unreadable++
				continue
			}
			var env envelope
			if json.Unmarshal(raw, &env) != nil || env.Key.Experiment == "" {
				rep.Unreadable++
				continue
			}
			g := group{env.Key.Experiment, env.Key.Scale, env.Key.Schema}
			line := groups[g]
			if line == nil {
				line = &AuditLine{Experiment: g.exp, Scale: g.scale, Schema: g.schema}
				groups[g] = line
			}
			line.Records++
			line.Bytes += int64(len(raw))
			rep.Records++
			rep.Bytes += int64(len(raw))
		}
	}
	for _, line := range groups {
		rep.Lines = append(rep.Lines, *line)
	}
	sort.Slice(rep.Lines, func(i, j int) bool {
		a, b := rep.Lines[i], rep.Lines[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Scale != b.Scale {
			return a.Scale < b.Scale
		}
		return a.Schema < b.Schema
	})
	return rep, nil
}
