package results

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
)

// Schema fingerprints close the provenance gap the per-experiment
// Schema number leaves open: the number only changes when a developer
// remembers to bump it, while the fingerprint is derived from the cell
// payload's Go type structure — field names (as JSON sees them), kinds
// and nesting — so a record written by a binary whose payload type has
// since changed shape is caught at read time and treated as a miss
// (with a warning), instead of being silently decoded into the new
// type with zero-filled or dropped fields.
//
// The fingerprint is structural, not nominal: renaming a type (or
// moving it between packages) without changing its JSON shape keeps
// records valid, exactly matching what encoding/json can round-trip.
// It deliberately cannot catch semantic changes that keep the same
// shape (different seeds, changed model behaviour) — those still
// require a Schema bump, which code review can check against the
// warning this mechanism produces for shape changes.

// fpCache memoizes fingerprints per payload type.
var fpCache sync.Map // reflect.Type -> string

// typeFingerprint returns a short hex digest of t's structure.
func typeFingerprint(t reflect.Type) string {
	if v, ok := fpCache.Load(t); ok {
		return v.(string)
	}
	var b strings.Builder
	writeTypeSig(&b, t, make(map[reflect.Type]bool))
	sum := sha256.Sum256([]byte(b.String()))
	fp := hex.EncodeToString(sum[:8])
	fpCache.Store(t, fp)
	return fp
}

// writeTypeSig renders a canonical encoding of t's structure: the JSON
// field names and the kinds of everything reachable through exported
// fields (unexported fields are invisible to encoding/json and
// therefore to the record format).
func writeTypeSig(b *strings.Builder, t reflect.Type, seen map[reflect.Type]bool) {
	switch t.Kind() {
	case reflect.Pointer:
		b.WriteByte('*')
		writeTypeSig(b, t.Elem(), seen)
	case reflect.Slice:
		b.WriteString("[]")
		writeTypeSig(b, t.Elem(), seen)
	case reflect.Array:
		b.WriteByte('[')
		b.WriteString(strconv.Itoa(t.Len()))
		b.WriteByte(']')
		writeTypeSig(b, t.Elem(), seen)
	case reflect.Map:
		b.WriteString("map[")
		writeTypeSig(b, t.Key(), seen)
		b.WriteByte(']')
		writeTypeSig(b, t.Elem(), seen)
	case reflect.Struct:
		if seen[t] {
			// Self-referential payloads; mark the back-edge.
			b.WriteString("recurse")
			return
		}
		seen[t] = true
		b.WriteString("struct{")
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			name := f.Name
			if tag, ok := f.Tag.Lookup("json"); ok {
				if n, _, _ := strings.Cut(tag, ","); n == "-" {
					continue
				} else if n != "" {
					name = n
				}
			}
			b.WriteString(name)
			b.WriteByte(' ')
			writeTypeSig(b, f.Type, seen)
			b.WriteByte(';')
		}
		b.WriteByte('}')
		delete(seen, t)
	case reflect.Interface:
		b.WriteString("any")
	default:
		b.WriteString(t.Kind().String())
	}
}

// payloadFingerprint fingerprints a value to be stored (Put side).
func payloadFingerprint(v any) string {
	t := reflect.TypeOf(v)
	if t == nil {
		return ""
	}
	return typeFingerprint(t)
}

// targetFingerprint fingerprints the type a record is decoded into
// (Get side): into is a pointer to the payload type.
func targetFingerprint(into any) string {
	t := reflect.TypeOf(into)
	if t == nil || t.Kind() != reflect.Pointer {
		return ""
	}
	return typeFingerprint(t.Elem())
}

// warnf reports a fingerprint mismatch. Warnings go to stderr so
// rendered experiment output stays byte-identical; tests swap it out.
var warnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// warnMismatch emits at most one warning per (group, stored
// fingerprint) so a thousand-cell sweep over a stale group does not
// print a thousand lines.
func (s *Store) warnMismatch(k Key, stored, want string) {
	key := fmt.Sprintf("%s|%s|%d|%s", k.Experiment, k.Scale, k.Schema, stored)
	if _, dup := s.warned.LoadOrStore(key, struct{}{}); dup {
		return
	}
	if stored == "" {
		warnf("results: cache records for %q (schema %d, scale %q) predate payload fingerprints; treating them as misses (they will be recomputed and rewritten)",
			k.Experiment, k.Schema, k.Scale)
		return
	}
	warnf("results: cache records for %q (schema %d, scale %q) were written with payload shape %s but the current binary expects %s — treating them as misses; if the cell semantics changed too, bump the experiment's schema",
		k.Experiment, k.Schema, k.Scale, stored, want)
}
