package results

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/runner"
)

// recordFiles lists the record files under dir (excluding temp files and
// directories), sorted by path.
func recordFiles(t *testing.T, dir string) []string {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		if strings.HasPrefix(filepath.Base(path), ".tmp-") {
			return nil
		}
		files = append(files, path)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestCrashMidWriteScenarios simulates the debris each crash window of
// the atomic write discipline can leave behind, and verifies the store
// reads clean through every one of them: Get and Has report a miss (or
// the intact old record) and a rerun heals the store by recomputation.
func TestCrashMidWriteScenarios(t *testing.T) {
	k := spec().Key(0)
	v := rec{Cell: 0, Label: "cell", Value: 0}

	scenarios := []struct {
		name string
		// corrupt sabotages the store dir after a successful Put.
		corrupt func(t *testing.T, st *Store, path string)
		// wantHit: the record should still be served after sabotage.
		wantHit bool
	}{
		{
			// Crash after rename of a partial temp file (or a torn
			// write): the final name holds truncated JSON.
			name: "truncated record under final name",
			corrupt: func(t *testing.T, _ *Store, path string) {
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			// Crash between CreateTemp and rename: an orphaned temp
			// file sits next to an intact record. The record must still
			// be served; the orphan must not be mistaken for a record.
			name: "orphaned temp file next to intact record",
			corrupt: func(t *testing.T, _ *Store, path string) {
				orphan := filepath.Join(filepath.Dir(path), ".tmp-orphan1")
				if err := os.WriteFile(orphan, []byte(`{"key":`), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantHit: true,
		},
		{
			// A record file holding a well-formed envelope for a
			// different cell (e.g. debris from a botched manual copy):
			// the key check must reject it.
			name: "record carries another cell's envelope",
			corrupt: func(t *testing.T, _ *Store, path string) {
				other, err := EncodeRecord(spec().Key(7), rec{Cell: 7, Label: "cell", Value: 8.75})
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, other, 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			// Crash at the instant of file creation: zero bytes under
			// the final name.
			name: "empty record file",
			corrupt: func(t *testing.T, _ *Store, path string) {
				if err := os.WriteFile(path, nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			st := openStore(t, dir)
			if err := st.Put(k, v); err != nil {
				t.Fatal(err)
			}
			files := recordFiles(t, dir)
			if len(files) != 1 {
				t.Fatalf("record files after Put = %d, want 1", len(files))
			}
			sc.corrupt(t, st, files[0])

			var got rec
			if hit := st.Get(k, &got); hit != sc.wantHit {
				t.Fatalf("Get after %s = %v, want %v", sc.name, hit, sc.wantHit)
			}
			if has := st.Has(k); has != sc.wantHit {
				t.Fatalf("Has after %s = %v, want %v", sc.name, has, sc.wantHit)
			}

			// A session run over the sabotaged store recomputes exactly
			// the damaged cell and heals it.
			var computes atomic.Int64
			s := &Session{Store: openStore(t, dir)}
			out := make([]rec, 1)
			if err := Run(context.Background(), runner.New(1), s, spec(), 1, computeRec(&computes), collectInto(out)); err != nil {
				t.Fatal(err)
			}
			wantComputes := int64(1)
			if sc.wantHit {
				wantComputes = 0
			}
			if computes.Load() != wantComputes {
				t.Fatalf("recompute count = %d, want %d", computes.Load(), wantComputes)
			}
			if out[0] != v {
				t.Fatalf("healed record = %+v, want %+v", out[0], v)
			}
			if !st.Has(k) {
				t.Fatal("store not healed: Has still false after rerun")
			}
		})
	}
}

func TestAtomicWriteFileReplacesAndLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := AtomicWriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("version-two")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil || string(raw) != "version-two" {
		t.Fatalf("content = %q, %v; want \"version-two\"", raw, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dir holds %d entries after two writes, want 1 (no temp debris)", len(entries))
	}
}

func TestIngestIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	k := spec().Key(3)
	raw, err := EncodeRecord(k, rec{Cell: 3, Label: "cell", Value: 3.75})
	if err != nil {
		t.Fatal(err)
	}

	added, err := st.Ingest(k, raw)
	if err != nil || !added {
		t.Fatalf("first Ingest = %v, %v; want added", added, err)
	}
	// A replayed upload (retried RPC, stolen-then-revived worker) is a
	// no-op: not added, nothing rewritten.
	before := recordFiles(t, dir)
	added, err = st.Ingest(k, raw)
	if err != nil || added {
		t.Fatalf("duplicate Ingest = %v, %v; want no-op", added, err)
	}
	after := recordFiles(t, dir)
	if len(before) != 1 || len(after) != 1 {
		t.Fatalf("record files = %d then %d, want exactly 1", len(before), len(after))
	}
	var got rec
	if !st.Get(k, &got) || got.Cell != 3 {
		t.Fatalf("Get after duplicate ingest = %+v", got)
	}
}

func TestIngestRejectsBadEnvelopes(t *testing.T) {
	st := openStore(t, t.TempDir())
	k := spec().Key(0)
	good, err := EncodeRecord(k, rec{Cell: 0})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"garbage bytes":    []byte("{not json"),
		"empty body":       nil,
		"no key":           []byte(`{"data":{"x":1}}`),
		"no payload":       []byte(`{"key":{"experiment":"unit/alpha","cell":0,"schema":1,"scale":"s1"}}`),
		"mismatched cell":  mustEncode(t, spec().Key(9), rec{Cell: 9}),
		"mismatched exper": mustEncode(t, Key{Experiment: "other", Cell: 0, Schema: 1, Scale: "s1"}, rec{}),
	}
	for name, raw := range cases {
		if added, err := st.Ingest(k, raw); err == nil {
			t.Fatalf("%s: Ingest succeeded (added=%v), want rejection", name, added)
		}
	}
	if st.Has(k) {
		t.Fatal("rejected ingests left a record behind")
	}
	if added, err := st.Ingest(k, good); err != nil || !added {
		t.Fatalf("valid ingest after rejections = %v, %v", added, err)
	}
}

func mustEncode(t *testing.T, k Key, v any) []byte {
	t.Helper()
	raw, err := EncodeRecord(k, v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestEncodeRecordRoundTripsThroughDecodeKey(t *testing.T) {
	k := spec().Key(5)
	raw := mustEncode(t, k, rec{Cell: 5, Label: "cell", Value: 6.25})
	got, err := DecodeRecordKey(raw)
	if err != nil || got != k {
		t.Fatalf("DecodeRecordKey = %+v, %v; want %+v", got, err, k)
	}
	// The envelope is exactly what Put writes: ingesting it then reading
	// through Get yields the original value.
	st := openStore(t, t.TempDir())
	if _, err := st.Ingest(k, raw); err != nil {
		t.Fatal(err)
	}
	var v rec
	if !st.Get(k, &v) || v.Value != 6.25 {
		t.Fatalf("Get after ingest = %+v", v)
	}
	if !json.Valid(raw) {
		t.Fatal("envelope is not valid JSON")
	}
}
