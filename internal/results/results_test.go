package results

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/runner"
)

// rec is a representative cell record: mixed concrete field types.
type rec struct {
	Cell  int
	Label string
	Value float64
}

// computeRec fabricates cell i's record deterministically and counts
// invocations.
func computeRec(counter *atomic.Int64) func(int) rec {
	return func(i int) rec {
		counter.Add(1)
		return rec{Cell: i, Label: "cell", Value: float64(i) * 1.25}
	}
}

// collectInto returns a collect writing into pre-sized storage.
func collectInto(dst []rec) func(int, rec) {
	return func(i int, v rec) { dst[i] = v }
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func spec() Spec { return Spec{Experiment: "unit/alpha", Schema: 1, Scale: "s1"} }

func TestRunComputesCollectsAndServesWarm(t *testing.T) {
	dir := t.TempDir()
	const n = 8
	pool := runner.New(4)

	var computes atomic.Int64
	cold := make([]rec, n)
	s1 := &Session{Store: openStore(t, dir)}
	if err := Run(context.Background(), pool, s1, spec(), n, computeRec(&computes), collectInto(cold)); err != nil {
		t.Fatal(err)
	}
	if h, c := s1.Stats(); h != 0 || c != n {
		t.Fatalf("cold stats = %d hits, %d computed; want 0, %d", h, c, n)
	}
	if computes.Load() != n {
		t.Fatalf("compute ran %d times, want %d", computes.Load(), n)
	}

	warm := make([]rec, n)
	s2 := &Session{Store: openStore(t, dir)}
	if err := Run(context.Background(), pool, s2, spec(), n, computeRec(&computes), collectInto(warm)); err != nil {
		t.Fatal(err)
	}
	if h, c := s2.Stats(); h != n || c != 0 {
		t.Fatalf("warm stats = %d hits, %d computed; want %d, 0", h, c, n)
	}
	if computes.Load() != n {
		t.Fatalf("warm run recomputed: %d total computes", computes.Load())
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm records differ from cold:\ncold: %+v\nwarm: %+v", cold, warm)
	}
}

func TestNilSessionComputesEverything(t *testing.T) {
	const n = 5
	var computes atomic.Int64
	got := make([]rec, n)
	if err := Run(context.Background(), runner.New(2), nil, spec(), n, computeRec(&computes), collectInto(got)); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != n {
		t.Fatalf("computes = %d, want %d", computes.Load(), n)
	}
	for i, v := range got {
		if v.Cell != i {
			t.Fatalf("cell %d collected %+v", i, v)
		}
	}
}

// corruptOneRecord truncates/garbles one record file under dir and
// returns how many record files exist.
func corruptOneRecord(t *testing.T, dir string) int {
	t.Helper()
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files = append(files, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no record files found")
	}
	if err := os.WriteFile(files[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	return len(files)
}

func TestCorruptRecordIsRecomputedAndHealed(t *testing.T) {
	dir := t.TempDir()
	const n = 6
	pool := runner.New(1)
	var computes atomic.Int64

	s1 := &Session{Store: openStore(t, dir)}
	if err := Run(context.Background(), pool, s1, spec(), n, computeRec(&computes), collectInto(make([]rec, n))); err != nil {
		t.Fatal(err)
	}
	if files := corruptOneRecord(t, dir); files != n {
		t.Fatalf("record files = %d, want %d", files, n)
	}

	got := make([]rec, n)
	s2 := &Session{Store: openStore(t, dir)}
	if err := Run(context.Background(), pool, s2, spec(), n, computeRec(&computes), collectInto(got)); err != nil {
		t.Fatal(err)
	}
	if h, c := s2.Stats(); h != n-1 || c != 1 {
		t.Fatalf("post-corruption stats = %d hits, %d computed; want %d, 1", h, c, n-1)
	}
	for i, v := range got {
		if v.Cell != i || v.Value != float64(i)*1.25 {
			t.Fatalf("cell %d collected %+v after corruption", i, v)
		}
	}

	// The recompute rewrote the record: a third run is all hits.
	s3 := &Session{Store: openStore(t, dir)}
	if err := Run(context.Background(), pool, s3, spec(), n, computeRec(&computes), collectInto(make([]rec, n))); err != nil {
		t.Fatal(err)
	}
	if h, c := s3.Stats(); h != n || c != 0 {
		t.Fatalf("healed stats = %d hits, %d computed; want %d, 0", h, c, n)
	}
}

func TestKeyInvalidation(t *testing.T) {
	dir := t.TempDir()
	const n = 4
	pool := runner.New(1)
	base := spec()

	var computes atomic.Int64
	seed := func(sp Spec) (hits, computed int64) {
		s := &Session{Store: openStore(t, dir)}
		if err := Run(context.Background(), pool, s, sp, n, computeRec(&computes), collectInto(make([]rec, n))); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}

	seed(base)
	for name, sp := range map[string]Spec{
		"scale change":      {Experiment: base.Experiment, Schema: base.Schema, Scale: "s2"},
		"schema bump":       {Experiment: base.Experiment, Schema: base.Schema + 1, Scale: base.Scale},
		"experiment rename": {Experiment: "unit/beta", Schema: base.Schema, Scale: base.Scale},
	} {
		if h, c := seed(sp); h != 0 || c != n {
			t.Fatalf("%s: stats = %d hits, %d computed; want full recompute", name, h, c)
		}
	}
	// The original records were never clobbered by the variants.
	if h, c := seed(base); h != n || c != 0 {
		t.Fatalf("original spec: stats = %d hits, %d computed; want all hits", h, c)
	}
}

func TestShardsUnionThenMergeMatchesUnsharded(t *testing.T) {
	dir := t.TempDir()
	const n, shards = 10, 3
	pool := runner.New(2)

	unsharded := make([]rec, n)
	var computes atomic.Int64
	if err := Run(context.Background(), pool, nil, spec(), n, computeRec(&computes), collectInto(unsharded)); err != nil {
		t.Fatal(err)
	}

	var shardComputes int64
	for i := 0; i < shards; i++ {
		s := &Session{Store: openStore(t, dir), Shard: Shard{Index: i, Count: shards}}
		collected := make([]rec, n)
		if err := Run(context.Background(), pool, s, spec(), n, computeRec(&computes), collectInto(collected)); err != nil {
			t.Fatal(err)
		}
		_, c := s.Stats()
		shardComputes += c
		for cell, v := range collected {
			covered := cell%shards == i
			if covered && v.Cell != cell {
				t.Fatalf("shard %d: covered cell %d not collected", i, cell)
			}
			if !covered && v != (rec{}) {
				t.Fatalf("shard %d: uncovered cell %d was filled: %+v", i, cell, v)
			}
		}
	}
	if shardComputes != n {
		t.Fatalf("shards computed %d cells total, want %d (each cell exactly once)", shardComputes, n)
	}

	merged := make([]rec, n)
	m := &Session{Store: openStore(t, dir), Merge: true}
	if err := Run(context.Background(), pool, m, spec(), n, computeRec(&computes), collectInto(merged)); err != nil {
		t.Fatal(err)
	}
	if h, c := m.Stats(); h != n || c != 0 {
		t.Fatalf("merge stats = %d hits, %d computed; want %d, 0", h, c, n)
	}
	if !reflect.DeepEqual(merged, unsharded) {
		t.Fatalf("merge differs from unsharded:\nmerge:     %+v\nunsharded: %+v", merged, unsharded)
	}
}

func TestMergeMissingCellFails(t *testing.T) {
	dir := t.TempDir()
	const n = 6
	pool := runner.New(1)
	var computes atomic.Int64

	// Only shard 0/2 ran; merge must name a missing odd cell.
	s := &Session{Store: openStore(t, dir), Shard: Shard{Index: 0, Count: 2}}
	if err := Run(context.Background(), pool, s, spec(), n, computeRec(&computes), collectInto(make([]rec, n))); err != nil {
		t.Fatal(err)
	}
	m := &Session{Store: openStore(t, dir), Merge: true}
	err := Run(context.Background(), pool, m, spec(), n, computeRec(&computes), collectInto(make([]rec, n)))
	var miss *MissingCellError
	if !errors.As(err, &miss) {
		t.Fatalf("merge error = %v, want *MissingCellError", err)
	}
	if miss.Key.Cell%2 != 1 {
		t.Fatalf("missing cell %d should be odd (uncovered by shard 0/2)", miss.Key.Cell)
	}
}

func TestBatchRunsMultipleSpecsThroughOnePool(t *testing.T) {
	dir := t.TempDir()
	pool := runner.New(4)
	var computes atomic.Int64

	a := make([]rec, 7)
	b := make([]rec, 3)
	s := &Session{Store: openStore(t, dir)}
	batch := NewBatch(pool, s)
	Add(batch, Spec{Experiment: "unit/a", Schema: 1, Scale: "s"}, len(a), computeRec(&computes), collectInto(a))
	Add(batch, Spec{Experiment: "unit/b", Schema: 1, Scale: "s"}, len(b), computeRec(&computes), collectInto(b))
	if err := batch.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, c := s.Stats(); c != int64(len(a)+len(b)) {
		t.Fatalf("computed %d cells, want %d", c, len(a)+len(b))
	}
	for i, v := range a {
		if v.Cell != i {
			t.Fatalf("spec a cell %d = %+v", i, v)
		}
	}
	for i, v := range b {
		if v.Cell != i {
			t.Fatalf("spec b cell %d = %+v", i, v)
		}
	}
	// Specs do not collide: each family warms independently.
	s2 := &Session{Store: openStore(t, dir)}
	if err := Run(context.Background(), pool, s2, Spec{Experiment: "unit/a", Schema: 1, Scale: "s"}, len(a), computeRec(&computes), collectInto(make([]rec, len(a)))); err != nil {
		t.Fatal(err)
	}
	if h, c := s2.Stats(); h != int64(len(a)) || c != 0 {
		t.Fatalf("spec a warm stats = %d hits, %d computed", h, c)
	}
}

func TestParseShard(t *testing.T) {
	good := map[string]Shard{
		"0/2": {Index: 0, Count: 2},
		"1/2": {Index: 1, Count: 2},
		"4/5": {Index: 4, Count: 5},
		"0/1": {Index: 0, Count: 1},
	}
	for in, want := range good {
		got, err := ParseShard(in)
		if err != nil || got != want {
			t.Fatalf("ParseShard(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "1", "2/2", "-1/2", "a/b", "1/0", "1/-2"} {
		if _, err := ParseShard(in); err == nil {
			t.Fatalf("ParseShard(%q) succeeded, want error", in)
		}
	}
}

func TestShardCovers(t *testing.T) {
	if !(Shard{}).Covers(5) || !(Shard{Count: 1}).Covers(5) {
		t.Fatal("zero/full shard must cover every cell")
	}
	sh := Shard{Index: 1, Count: 3}
	for cell := 0; cell < 9; cell++ {
		if sh.Covers(cell) != (cell%3 == 1) {
			t.Fatalf("Shard 1/3 Covers(%d) wrong", cell)
		}
	}
}

func TestOpenCreatesMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "cache")
	if _, err := Open(dir); err != nil {
		t.Fatalf("Open on missing nested dir: %v", err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("cache dir not created: %v", err)
	}
}

func TestOpenReadServesMergeWithoutWriting(t *testing.T) {
	dir := t.TempDir()
	const n = 4
	pool := runner.New(1)
	var computes atomic.Int64
	s := &Session{Store: openStore(t, dir)}
	if err := Run(context.Background(), pool, s, spec(), n, computeRec(&computes), collectInto(make([]rec, n))); err != nil {
		t.Fatal(err)
	}

	// A read-only open (no creation, no probe) is enough for merge.
	ro, err := OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := &Session{Store: ro, Merge: true}
	got := make([]rec, n)
	if err := Run(context.Background(), pool, m, spec(), n, computeRec(&computes), collectInto(got)); err != nil {
		t.Fatal(err)
	}
	if h, c := m.Stats(); h != n || c != 0 {
		t.Fatalf("merge stats = %d hits, %d computed", h, c)
	}

	// Unlike Open, OpenRead must not invent a missing directory.
	if _, err := OpenRead(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("OpenRead on a missing dir succeeded, want error")
	}
}

func TestOpenRejectsUnwritableDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits are not enforced")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if _, err := Open(dir); err == nil {
		t.Fatal("Open on read-only dir succeeded, want error")
	}
}
