package results

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAuditGroupsAndTotals(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct{ V int }
	put := func(exp, scale string, schema, cell int) {
		k := Key{Experiment: exp, Cell: cell, Schema: schema, Scale: scale}
		if err := st.Put(k, rec{V: cell}); err != nil {
			t.Fatal(err)
		}
	}
	put("grid/ecf", "gv30", 2, 0)
	put("grid/ecf", "gv30", 2, 1)
	put("grid/ecf", "gv90", 2, 0) // same experiment, other scale
	put("fig16", "rd80,rs3", 1, 0)
	// A partial write that a killed process could leave behind.
	if err := os.WriteFile(filepath.Join(dir, "fig16", "c9999-dead.json"), []byte("{trunc"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := st.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 4 {
		t.Fatalf("Records = %d, want 4", rep.Records)
	}
	if rep.Unreadable != 1 {
		t.Fatalf("Unreadable = %d, want 1", rep.Unreadable)
	}
	if rep.Bytes <= 0 {
		t.Fatalf("Bytes = %d, want > 0", rep.Bytes)
	}
	want := []AuditLine{
		{Experiment: "fig16", Scale: "rd80,rs3", Schema: 1, Records: 1},
		{Experiment: "grid/ecf", Scale: "gv30", Schema: 2, Records: 2},
		{Experiment: "grid/ecf", Scale: "gv90", Schema: 2, Records: 1},
	}
	if len(rep.Lines) != len(want) {
		t.Fatalf("got %d lines, want %d: %+v", len(rep.Lines), len(want), rep.Lines)
	}
	for i, w := range want {
		g := rep.Lines[i]
		if g.Experiment != w.Experiment || g.Scale != w.Scale || g.Schema != w.Schema || g.Records != w.Records {
			t.Fatalf("line %d = %+v, want %+v (bytes aside)", i, g, w)
		}
	}
}

func TestAuditEmptyStore(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 0 || len(rep.Lines) != 0 || rep.Unreadable != 0 {
		t.Fatalf("empty store audit = %+v, want zeroes", rep)
	}
}
