package results

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// captureWarnings swaps the warning sink for the test's lifetime.
func captureWarnings(t *testing.T) *[]string {
	t.Helper()
	var got []string
	old := warnf
	warnf = func(format string, args ...any) {
		got = append(got, fmt.Sprintf(format, args...))
	}
	t.Cleanup(func() { warnf = old })
	return &got
}

func TestFingerprintRoundTripHits(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		Ratio float64
		OOO   []time.Duration
	}
	k := Key{Experiment: "fp", Cell: 1, Schema: 1, Scale: "v60"}
	if err := st.Put(k, rec{Ratio: 0.5, OOO: []time.Duration{time.Second}}); err != nil {
		t.Fatal(err)
	}
	var got rec
	if !st.Get(k, &got) || got.Ratio != 0.5 {
		t.Fatalf("round trip failed: %+v", got)
	}
}

func TestFingerprintStructuralNotNominal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	type recV1 struct{ X int64 }
	type renamed struct{ X int64 } // same shape, different type name
	k := Key{Experiment: "fp", Cell: 2, Schema: 1, Scale: "v60"}
	if err := st.Put(k, recV1{X: 7}); err != nil {
		t.Fatal(err)
	}
	var got renamed
	if !st.Get(k, &got) || got.X != 7 {
		t.Fatal("renaming a payload type (same shape) must keep records valid")
	}
}

func TestFingerprintMismatchWarnsAndMisses(t *testing.T) {
	warnings := captureWarnings(t)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	type oldShape struct{ Ratio float64 }
	type newShape struct {
		Ratio float64
		Extra int64 // simulator grew the record, nobody bumped Schema
	}
	k := Key{Experiment: "fp", Cell: 3, Schema: 1, Scale: "v60"}
	if err := st.Put(k, oldShape{Ratio: 0.25}); err != nil {
		t.Fatal(err)
	}
	var got newShape
	if st.Get(k, &got) {
		t.Fatal("shape-changed record was served as a hit")
	}
	if len(*warnings) != 1 {
		t.Fatalf("got %d warnings, want 1: %v", len(*warnings), *warnings)
	}
	if !strings.Contains((*warnings)[0], "bump the experiment's schema") {
		t.Fatalf("warning does not point at the schema bump: %q", (*warnings)[0])
	}
	// The warning is deduped per group.
	var again newShape
	st.Get(k, &again)
	if len(*warnings) != 1 {
		t.Fatalf("mismatch warning not deduped: %v", *warnings)
	}
	// Recomputing and rewriting heals the record for the new shape.
	if err := st.Put(k, newShape{Ratio: 0.25, Extra: 1}); err != nil {
		t.Fatal(err)
	}
	if !st.Get(k, &got) || got.Extra != 1 {
		t.Fatal("rewritten record not served")
	}
}

func TestLegacyRecordWithoutFingerprintMisses(t *testing.T) {
	warnings := captureWarnings(t)
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct{ V int }
	k := Key{Experiment: "legacy", Cell: 0, Schema: 1, Scale: "v60"}
	// Hand-write a pre-fingerprint envelope at the record's path.
	data, _ := json.Marshal(rec{V: 9})
	legacy, _ := json.Marshal(struct {
		Key  Key             `json:"key"`
		Data json.RawMessage `json:"data"`
	}{Key: k, Data: data})
	if err := st.Put(k, rec{V: 1}); err != nil { // establish the path
		t.Fatal(err)
	}
	path := st.path(k)
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	var got rec
	if st.Get(k, &got) {
		t.Fatal("legacy record without fingerprint was served")
	}
	if len(*warnings) != 1 || !strings.Contains((*warnings)[0], "predate payload fingerprints") {
		t.Fatalf("warnings = %v", *warnings)
	}
}
