package results

import (
	"context"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// Batch accumulates cells from one or more specs and executes them all
// through a single worker pool, so nested sweeps (Figure 9's four
// grids, Figure 14's two panels) saturate the pool instead of draining
// it once per sub-sweep. Cells are independent jobs under the runner
// contract: compute must derive everything from the cell index, and
// collect must write into pre-sized storage (distinct cells may be
// collected concurrently, in any order).
type Batch struct {
	pool    runner.Pool
	session *Session
	jobs    []func() error
}

// NewBatch returns an empty batch executing on pool under session's
// cache/shard policy (session may be nil: compute everything).
func NewBatch(pool runner.Pool, session *Session) *Batch {
	return &Batch{pool: pool, session: session}
}

// Add registers the n cells of one spec. compute(i) produces cell i's
// record — a JSON-serializable value with concrete field types — and
// collect(i, v) stores it into the caller's result structure. When the
// batch runs, each cell is served from the session's store when a
// record exists, computed and persisted when not, skipped when outside
// the session's shard, and in merge mode read from the store
// unconditionally (a missing record fails the run with a
// *MissingCellError).
func Add[T any](b *Batch, spec Spec, n int, compute func(i int) T, collect func(i int, v T)) {
	s := b.session
	for i := 0; i < n; i++ {
		i := i
		b.jobs = append(b.jobs, func() error { return runCell(s, spec, i, compute, collect) })
	}
}

// runCell executes one cell under the session policy.
func runCell[T any](s *Session, spec Spec, i int, compute func(int) T, collect func(int, T)) error {
	if s != nil && s.Enumerate {
		s.noteCell(spec, i)
		return nil
	}
	// Flight-recorder gate: the traced cell takes the trace gate's
	// write lock (computing alone, so only its object graph observes
	// the armed recorder); all other cells take the read lock. With no
	// trace target the check is a single atomic load.
	traced := false
	if obs.TraceEnabled() {
		var release func()
		traced, release = obs.EnterCell(spec.Experiment, i)
		defer release()
	}
	if s == nil {
		collect(i, compute(i))
		return nil
	}
	k := spec.key(i)
	if s.Merge {
		var v T
		if s.Store == nil || !s.Store.Get(k, &v) {
			if s.CollectMisses {
				s.noteMissing(k)
				return nil
			}
			return &MissingCellError{Key: k}
		}
		s.hits.Add(1)
		collect(i, v)
		return nil
	}
	if !s.Shard.Covers(i) {
		return nil
	}
	// The lease gate: a join-mode worker computes exactly the cells it
	// holds leases on and touches nothing else — not even the store.
	if s.Claims != nil && !s.Claims(k) {
		return nil
	}
	// A traced cell must actually simulate — a cache hit would leave
	// the recorder empty — so it skips the read path (its fresh record
	// still overwrites the stored one below, byte-identical).
	if s.Store != nil && !traced {
		var v T
		if s.Store.Get(k, &v) {
			s.hits.Add(1)
			if err := s.upload(k, v); err != nil {
				return err
			}
			collect(i, v)
			return nil
		}
	}
	v, err := computeCell(s, k, i, compute)
	if err != nil {
		return err
	}
	s.computed.Add(1)
	if s.Store != nil {
		if err := s.Store.Put(k, v); err != nil {
			return err
		}
	}
	if err := s.upload(k, v); err != nil {
		return err
	}
	collect(i, v)
	return nil
}

// upload forwards a served or computed record to the session's Sink —
// the distributed ingest path. A lease lost while the cell was being
// computed skips the upload: the record is correct (determinism makes
// every writer's bytes identical, and the coordinator's ingest is
// idempotent anyway) but the cell is no longer this worker's to report,
// and the stealing worker is already recomputing it.
func (s *Session) upload(k Key, v any) error {
	if s.Sink == nil {
		return nil
	}
	if s.Claims != nil && !s.Claims(k) {
		return nil
	}
	return s.Sink.Put(k, v)
}

// computeCell runs one cell's compute, bounded by the session's
// CellTimeout when set. The deadline path runs compute on its own
// goroutine: the simulator has no cancellation points on its hot path
// (by design — see internal/sim), so an overrun cell cannot be
// preempted, only abandoned. Its goroutine keeps running and its
// result is discarded; the caller is expected to exit or surrender the
// cell, both of which make the leak irrelevant. A compute panic on the
// deadline path is re-raised on the calling goroutine so the runner's
// panic contract holds regardless of CellTimeout.
func computeCell[T any](s *Session, k Key, i int, compute func(int) T) (T, error) {
	if s.CellTimeout <= 0 {
		return compute(i), nil
	}
	type outcome struct {
		v   T
		pan any
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{pan: p}
			}
		}()
		ch <- outcome{v: compute(i)}
	}()
	timer := time.NewTimer(s.CellTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		if out.pan != nil {
			panic(out.pan)
		}
		return out.v, nil
	case <-timer.C:
		var zero T
		return zero, &CellTimeoutError{Key: k, Timeout: s.CellTimeout}
	}
}

// Run executes every registered cell across the pool and empties the
// batch. It returns the first error (store I/O failure or merge miss);
// compute panics propagate per the runner contract.
func (b *Batch) Run(ctx context.Context) error {
	jobs := b.jobs
	b.jobs = nil
	return b.pool.ForEach(ctx, len(jobs), func(_ context.Context, i int) error {
		return jobs[i]()
	})
}

// Run executes one spec's n cells through pool under session — the
// single-spec convenience over NewBatch/Add/Batch.Run.
func Run[T any](ctx context.Context, pool runner.Pool, session *Session, spec Spec, n int, compute func(i int) T, collect func(i int, v T)) error {
	b := NewBatch(pool, session)
	Add(b, spec, n, compute, collect)
	return b.Run(ctx)
}
