package results

import (
	"context"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// Batch accumulates cells from one or more specs and executes them all
// through a single worker pool, so nested sweeps (Figure 9's four
// grids, Figure 14's two panels) saturate the pool instead of draining
// it once per sub-sweep. Cells are independent jobs under the runner
// contract: compute must derive everything from the cell index, and
// collect must write into pre-sized storage (distinct cells may be
// collected concurrently, in any order).
type Batch struct {
	pool    runner.Pool
	session *Session
	jobs    []func() error
	// costs holds one relative cost estimate per job (0 = unknown).
	// When any job declared a cost, Run dispatches in descending cost
	// order (longest-processing-time): starting the expensive cells
	// first shrinks the tail where the last worker finishes a long cell
	// alone. Purely a dispatch hint — collection is cell-indexed, so
	// output is identical in any order.
	costs []float64
}

// NewBatch returns an empty batch executing on pool under session's
// cache/shard policy (session may be nil: compute everything).
func NewBatch(pool runner.Pool, session *Session) *Batch {
	return &Batch{pool: pool, session: session}
}

// Add registers the n cells of one spec. compute(i) produces cell i's
// record — a JSON-serializable value with concrete field types — and
// collect(i, v) stores it into the caller's result structure. When the
// batch runs, each cell is served from the session's store when a
// record exists, computed and persisted when not, skipped when outside
// the session's shard, and in merge mode read from the store
// unconditionally (a missing record fails the run with a
// *MissingCellError).
func Add[T any](b *Batch, spec Spec, n int, compute func(i int) T, collect func(i int, v T)) {
	s := b.session
	for i := 0; i < n; i++ {
		i := i
		b.jobs = append(b.jobs, func() error { return runCell(s, spec, i, compute, collect) })
		b.costs = append(b.costs, 0)
	}
}

// LaneRunner executes a set of cache-miss cells of one spec in lane
// lockstep (see internal/sim.LaneEngine) and reports each finished
// cell through emit, in completion order. The cells are mutually
// independent; emit is called from the runner's own goroutine, never
// concurrently.
type LaneRunner[T any] func(cells []int, emit func(i int, v T))

// LaneOpts configures one spec's lane-batched execution.
type LaneOpts[T any] struct {
	// Lanes is the lockstep width K; <= 1 selects the scalar path.
	Lanes int
	// Run executes a group's cache misses in lane lockstep.
	Run LaneRunner[T]
	// Cost, when non-nil, estimates cell i's relative compute expense
	// for longest-processing-time dispatch (see Batch). Any positive
	// unit works; only the ordering matters.
	Cost func(i int) float64
}

// AddLanes registers the n cells of one spec for lane-batched
// execution: cells are grouped into contiguous chunks of 2K, and each
// chunk is one pool job that serves its cache hits scalar-style, then
// drives its misses through opt.Run K at a time (a chunk of 2K keeps
// every lane busy through the refill phase even when the group's hit
// pattern is ragged). Per-cell policy, records and collected values
// are identical to Add — only the worker's execution strategy differs.
// Groups fall back to the scalar path whenever per-cell machinery is
// needed: Lanes <= 1 or no Run, enumerate passes, an armed cell trace
// (the traced cell must compute alone under the trace gate's write
// lock), or a per-cell wall-clock budget (CellTimeout preempts one
// cell's goroutine, which has no meaning for a lane group).
func AddLanes[T any](b *Batch, spec Spec, n int, opt LaneOpts[T], compute func(i int) T, collect func(i int, v T)) {
	if opt.Lanes <= 1 || opt.Run == nil {
		Add(b, spec, n, compute, collect)
		if opt.Cost != nil {
			for i := 0; i < n; i++ {
				b.costs[len(b.costs)-n+i] = opt.Cost(i)
			}
		}
		return
	}
	s := b.session
	group := opt.Lanes * 2
	for lo := 0; lo < n; lo += group {
		lo := lo
		hi := lo + group
		if hi > n {
			hi = n
		}
		laneRun := opt.Run
		b.jobs = append(b.jobs, func() error {
			return runLaneGroup(s, spec, lo, hi, laneRun, compute, collect)
		})
		cost := 0.0
		if opt.Cost != nil {
			for i := lo; i < hi; i++ {
				cost += opt.Cost(i)
			}
		}
		b.costs = append(b.costs, cost)
	}
}

// runLaneGroup executes cells [lo, hi) of one spec as a lane group.
func runLaneGroup[T any](s *Session, spec Spec, lo, hi int, laneRun LaneRunner[T], compute func(int) T, collect func(int, T)) error {
	// Scalar fallbacks: conditions that need per-cell machinery the lane
	// loop cannot provide (see AddLanes).
	if (s != nil && (s.Enumerate || s.CellTimeout > 0)) || obs.TraceEnabled() {
		for i := lo; i < hi; i++ {
			if err := runCell(s, spec, i, compute, collect); err != nil {
				return err
			}
		}
		return nil
	}
	// Pre-pass: serve hits, shard skips, lease skips and merge reads per
	// cell exactly as runCell would; what remains is this group's cache
	// misses, which run laned.
	var misses []int
	for i := lo; i < hi; i++ {
		if s == nil {
			misses = append(misses, i)
			continue
		}
		k := spec.key(i)
		if s.Merge {
			var v T
			if s.Store == nil || !s.Store.Get(k, &v) {
				if s.CollectMisses {
					s.noteMissing(k)
					continue
				}
				return &MissingCellError{Key: k}
			}
			s.hits.Add(1)
			collect(i, v)
			continue
		}
		if !s.Shard.Covers(i) {
			continue
		}
		if s.Claims != nil && !s.Claims(k) {
			continue
		}
		if s.Store != nil {
			var v T
			if s.Store.Get(k, &v) {
				s.hits.Add(1)
				if err := s.upload(k, v); err != nil {
					return err
				}
				collect(i, v)
				continue
			}
		}
		misses = append(misses, i)
	}
	if len(misses) == 0 {
		return nil
	}
	// The lanes run to completion even after a store/sink failure — the
	// group's single goroutine has no preemption point — but the first
	// error wins and later cells are not persisted or collected.
	var firstErr error
	start := time.Now()
	laneRun(misses, func(i int, v T) {
		if firstErr != nil {
			return
		}
		firstErr = finishComputed(s, spec, i, v, collect)
	})
	if s != nil {
		per := time.Since(start) / time.Duration(len(misses))
		for range misses {
			s.noteDuration(per)
		}
	}
	return firstErr
}

// finishComputed persists and collects one freshly computed cell — the
// tail of runCell's miss path, shared with the lane groups.
func finishComputed[T any](s *Session, spec Spec, i int, v T, collect func(int, T)) error {
	if s == nil {
		collect(i, v)
		return nil
	}
	s.computed.Add(1)
	k := spec.key(i)
	if s.Store != nil {
		if err := s.Store.Put(k, v); err != nil {
			return err
		}
	}
	if err := s.upload(k, v); err != nil {
		return err
	}
	collect(i, v)
	return nil
}

// runCell executes one cell under the session policy.
func runCell[T any](s *Session, spec Spec, i int, compute func(int) T, collect func(int, T)) error {
	if s != nil && s.Enumerate {
		s.noteCell(spec, i)
		return nil
	}
	// Flight-recorder gate: the traced cell takes the trace gate's
	// write lock (computing alone, so only its object graph observes
	// the armed recorder); all other cells take the read lock. With no
	// trace target the check is a single atomic load.
	traced := false
	if obs.TraceEnabled() {
		var release func()
		traced, release = obs.EnterCell(spec.Experiment, i)
		defer release()
	}
	if s == nil {
		collect(i, compute(i))
		return nil
	}
	k := spec.key(i)
	if s.Merge {
		var v T
		if s.Store == nil || !s.Store.Get(k, &v) {
			if s.CollectMisses {
				s.noteMissing(k)
				return nil
			}
			return &MissingCellError{Key: k}
		}
		s.hits.Add(1)
		collect(i, v)
		return nil
	}
	if !s.Shard.Covers(i) {
		return nil
	}
	// The lease gate: a join-mode worker computes exactly the cells it
	// holds leases on and touches nothing else — not even the store.
	if s.Claims != nil && !s.Claims(k) {
		return nil
	}
	// A traced cell must actually simulate — a cache hit would leave
	// the recorder empty — so it skips the read path (its fresh record
	// still overwrites the stored one below, byte-identical).
	if s.Store != nil && !traced {
		var v T
		if s.Store.Get(k, &v) {
			s.hits.Add(1)
			if err := s.upload(k, v); err != nil {
				return err
			}
			collect(i, v)
			return nil
		}
	}
	v, err := computeCell(s, k, i, compute)
	if err != nil {
		return err
	}
	s.computed.Add(1)
	if s.Store != nil {
		if err := s.Store.Put(k, v); err != nil {
			return err
		}
	}
	if err := s.upload(k, v); err != nil {
		return err
	}
	collect(i, v)
	return nil
}

// upload forwards a served or computed record to the session's Sink —
// the distributed ingest path. A lease lost while the cell was being
// computed skips the upload: the record is correct (determinism makes
// every writer's bytes identical, and the coordinator's ingest is
// idempotent anyway) but the cell is no longer this worker's to report,
// and the stealing worker is already recomputing it.
func (s *Session) upload(k Key, v any) error {
	if s.Sink == nil {
		return nil
	}
	if s.Claims != nil && !s.Claims(k) {
		return nil
	}
	return s.Sink.Put(k, v)
}

// computeCell runs one cell's compute, bounded by the session's
// CellTimeout when set. The deadline path runs compute on its own
// goroutine: the simulator has no cancellation points on its hot path
// (by design — see internal/sim), so an overrun cell cannot be
// preempted, only abandoned. Its goroutine keeps running and its
// result is discarded; the caller is expected to exit or surrender the
// cell, both of which make the leak irrelevant. A compute panic on the
// deadline path is re-raised on the calling goroutine so the runner's
// panic contract holds regardless of CellTimeout.
func computeCell[T any](s *Session, k Key, i int, compute func(int) T) (T, error) {
	start := time.Now()
	if s.CellTimeout <= 0 {
		v := compute(i)
		s.noteDuration(time.Since(start))
		return v, nil
	}
	type outcome struct {
		v   T
		pan any
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{pan: p}
			}
		}()
		ch <- outcome{v: compute(i)}
	}()
	timer := time.NewTimer(s.CellTimeout)
	defer timer.Stop()
	select {
	case out := <-ch:
		if out.pan != nil {
			panic(out.pan)
		}
		s.noteDuration(time.Since(start))
		return out.v, nil
	case <-timer.C:
		var zero T
		return zero, &CellTimeoutError{Key: k, Timeout: s.CellTimeout}
	}
}

// Run executes every registered cell across the pool and empties the
// batch. Jobs with declared costs are dispatched first, most expensive
// leading (longest-processing-time); the order never affects results,
// only the parallel tail. It returns the first error (store I/O
// failure or merge miss); compute panics propagate per the runner
// contract.
func (b *Batch) Run(ctx context.Context) error {
	jobs, costs := b.jobs, b.costs
	b.jobs, b.costs = nil, nil
	pool := b.pool
	pool.Order = lptOrder(costs)
	return pool.ForEach(ctx, len(jobs), func(_ context.Context, i int) error {
		return jobs[i]()
	})
}

// lptOrder returns the descending-cost dispatch permutation, or nil
// when no job declared a cost (natural order). The sort is stable so
// unhinted jobs and cost ties keep registration order.
func lptOrder(costs []float64) []int {
	hinted := false
	for _, c := range costs {
		if c != 0 {
			hinted = true
			break
		}
	}
	if !hinted {
		return nil
	}
	ord := make([]int, len(costs))
	for i := range ord {
		ord[i] = i
	}
	sort.SliceStable(ord, func(a, b int) bool { return costs[ord[a]] > costs[ord[b]] })
	return ord
}

// Run executes one spec's n cells through pool under session — the
// single-spec convenience over NewBatch/Add/Batch.Run.
func Run[T any](ctx context.Context, pool runner.Pool, session *Session, spec Spec, n int, compute func(i int) T, collect func(i int, v T)) error {
	b := NewBatch(pool, session)
	Add(b, spec, n, compute, collect)
	return b.Run(ctx)
}
