package results

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
)

// memSink records every Put for assertions; optionally fails.
type memSink struct {
	mu   sync.Mutex
	got  map[Key]rec
	fail error
}

func newMemSink() *memSink { return &memSink{got: make(map[Key]rec)} }

func (m *memSink) Put(k Key, v any) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return m.fail
	}
	m.got[k] = v.(rec)
	return nil
}

func (m *memSink) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.got)
}

func TestClaimsGateComputesOnlyClaimedCells(t *testing.T) {
	dir := t.TempDir()
	const n = 10
	var computes atomic.Int64
	claimed := func(k Key) bool { return k.Cell%2 == 0 }

	out := make([]rec, n)
	s := &Session{Store: openStore(t, dir), Claims: claimed}
	if err := Run(context.Background(), runner.New(2), s, spec(), n, computeRec(&computes), collectInto(out)); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != n/2 {
		t.Fatalf("computed %d cells, want %d (the claimed half)", computes.Load(), n/2)
	}
	st := openStore(t, dir)
	for i := 0; i < n; i++ {
		has := st.Has(spec().Key(i))
		if want := i%2 == 0; has != want {
			t.Fatalf("store Has(cell %d) = %v, want %v", i, has, want)
		}
		if i%2 == 1 && out[i] != (rec{}) {
			t.Fatalf("unclaimed cell %d was collected: %+v", i, out[i])
		}
	}
}

func TestSinkReceivesComputedAndServedRecords(t *testing.T) {
	dir := t.TempDir()
	const n = 6
	var computes atomic.Int64

	// Cold: every record is computed and delivered to the sink.
	cold := newMemSink()
	s1 := &Session{Store: openStore(t, dir), Sink: cold}
	if err := Run(context.Background(), runner.New(2), s1, spec(), n, computeRec(&computes), collectInto(make([]rec, n))); err != nil {
		t.Fatal(err)
	}
	if cold.len() != n {
		t.Fatalf("cold sink got %d records, want %d", cold.len(), n)
	}

	// Warm: cache hits are uploaded too — a worker holding leases on
	// cells it already has locally must still deliver them.
	warm := newMemSink()
	s2 := &Session{Store: openStore(t, dir), Sink: warm}
	if err := Run(context.Background(), runner.New(2), s2, spec(), n, computeRec(&computes), collectInto(make([]rec, n))); err != nil {
		t.Fatal(err)
	}
	if h, c := s2.Stats(); h != n || c != 0 {
		t.Fatalf("warm stats = %d hits, %d computed", h, c)
	}
	if warm.len() != n {
		t.Fatalf("warm sink got %d records, want %d (hits upload too)", warm.len(), n)
	}
	for i := 0; i < n; i++ {
		k := spec().Key(i)
		if cold.got[k] != warm.got[k] {
			t.Fatalf("cell %d: cold and warm sink records differ", i)
		}
	}
}

func TestSinkErrorFailsTheCell(t *testing.T) {
	sink := newMemSink()
	sink.fail = errors.New("coordinator unreachable")
	var computes atomic.Int64
	s := &Session{Sink: sink}
	err := Run(context.Background(), runner.New(1), s, spec(), 3, computeRec(&computes), collectInto(make([]rec, 3)))
	if err == nil || !errors.Is(err, sink.fail) {
		t.Fatalf("Run with failing sink = %v, want the sink error", err)
	}
}

func TestLostClaimSkipsUpload(t *testing.T) {
	// The claim is re-checked between compute and upload: a lease lost
	// mid-cell delivers nothing (the stealing worker owns it now).
	var lost atomic.Bool
	sink := newMemSink()
	var computes atomic.Int64
	s := &Session{
		Sink: sink,
		Claims: func(Key) bool {
			// Claimed when the cell starts, revoked by upload time.
			return !lost.Load()
		},
	}
	compute := func(i int) rec {
		computes.Add(1)
		lost.Store(true)
		return rec{Cell: i}
	}
	if err := Run(context.Background(), runner.New(1), s, spec(), 1, compute, collectInto(make([]rec, 1))); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 1 {
		t.Fatalf("computes = %d, want 1", computes.Load())
	}
	if sink.len() != 0 {
		t.Fatalf("sink got %d records after lease loss, want 0", sink.len())
	}
}

func TestCollectMissesGathersEveryHole(t *testing.T) {
	dir := t.TempDir()
	const n = 9
	var computes atomic.Int64

	// Seed shard 0/3 only: cells 1,2,4,5,7,8 are holes.
	s := &Session{Store: openStore(t, dir), Shard: Shard{Index: 0, Count: 3}}
	if err := Run(context.Background(), runner.New(1), s, spec(), n, computeRec(&computes), collectInto(make([]rec, n))); err != nil {
		t.Fatal(err)
	}

	m := &Session{Store: openStore(t, dir), Merge: true, CollectMisses: true}
	got := make([]rec, n)
	if err := Run(context.Background(), runner.New(2), m, spec(), n, computeRec(&computes), collectInto(got)); err != nil {
		t.Fatalf("CollectMisses merge must not fail on holes: %v", err)
	}
	miss := m.MissingCells()
	if m.MissingCount() != 6 || len(miss) != 6 {
		t.Fatalf("missing = %d cells (%v), want 6", len(miss), miss)
	}
	for i, k := range miss {
		if k.Cell%3 == 0 {
			t.Fatalf("cell %d reported missing but shard 0/3 covered it", k.Cell)
		}
		if i > 0 && miss[i-1].Cell > k.Cell {
			t.Fatalf("missing cells not sorted: %v", miss)
		}
	}
	// Served cells were still collected; holes stayed at zero values.
	for i := 0; i < n; i++ {
		if covered := i%3 == 0; covered != (got[i].Cell == i && got[i].Label == "cell") {
			t.Fatalf("cell %d: covered=%v but collected %+v", i, covered, got[i])
		}
	}

	// Without CollectMisses the same merge fails on the first hole.
	m2 := &Session{Store: openStore(t, dir), Merge: true}
	err := Run(context.Background(), runner.New(1), m2, spec(), n, computeRec(&computes), collectInto(make([]rec, n)))
	var mce *MissingCellError
	if !errors.As(err, &mce) {
		t.Fatalf("plain merge over holes = %v, want *MissingCellError", err)
	}
}

func TestCellTimeoutNamesTheWedgedCell(t *testing.T) {
	const n = 4
	block := make(chan struct{})
	defer close(block)
	compute := func(i int) rec {
		if i == 2 {
			<-block // wedged: no cancellation points, like the simulator
		}
		return rec{Cell: i}
	}
	s := &Session{CellTimeout: 20 * time.Millisecond}
	err := Run(context.Background(), runner.New(1), s, spec(), n, compute, collectInto(make([]rec, n)))
	var te *CellTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("Run = %v, want *CellTimeoutError", err)
	}
	if te.Key != spec().Key(2) {
		t.Fatalf("timeout names cell %+v, want cell 2", te.Key)
	}
	for _, want := range []string{"cell 2", spec().Experiment, "timeout"} {
		if !strings.Contains(te.Error(), want) {
			t.Fatalf("timeout message %q does not name %q", te.Error(), want)
		}
	}
}

func TestCellTimeoutZeroMeansNoDeadline(t *testing.T) {
	var computes atomic.Int64
	s := &Session{}
	compute := func(i int) rec {
		computes.Add(1)
		time.Sleep(5 * time.Millisecond)
		return rec{Cell: i}
	}
	if err := Run(context.Background(), runner.New(1), s, spec(), 2, compute, collectInto(make([]rec, 2))); err != nil {
		t.Fatal(err)
	}
	if computes.Load() != 2 {
		t.Fatalf("computes = %d", computes.Load())
	}
}

func TestCellTimeoutPathPreservesPanics(t *testing.T) {
	s := &Session{CellTimeout: time.Second}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("compute panic was swallowed by the deadline path")
		}
		if fmt.Sprint(v) != "boom" {
			t.Fatalf("recovered %v, want boom", v)
		}
	}()
	compute := func(i int) rec { panic("boom") }
	_ = runCell(s, spec(), 0, compute, func(int, rec) {})
}
