// Package results makes experiment cells durable and distributable.
//
// The paper's evaluation regenerates every table and figure from
// hundreds of independent simulation cells. internal/runner fans those
// cells across workers inside one process; this package adds the two
// layers the ROADMAP's multi-machine north star needs on top of it:
//
//   - a cell store: a content-addressed on-disk cache of per-cell
//     records, keyed by a hash of (experiment name, cell index, the
//     Scale encoding, and a per-experiment schema version), with atomic
//     writes and corruption-tolerant reads (Store), and
//   - a cell execution layer: Run / Batch+Add execute a spec's cells
//     through a runner.Pool, serving each cell from the store when a
//     record exists and computing-then-persisting it when not, so
//     caching and sharding apply uniformly to every driver rather than
//     per-driver.
//
// A Session carries the per-invocation policy: which store to use, an
// optional shard restriction (cell index % Count == Index), or merge
// mode, where every cell must come from the store and nothing is
// simulated. Splitting a sweep across machines is then
//
//	host-a$ ecfbench -exp all -cache-dir cache -shard 0/2
//	host-b$ ecfbench -exp all -cache-dir cache -shard 1/2
//	host-a$ rsync -a host-b:cache/ cache/
//	host-a$ ecfbench -exp all -cache-dir cache -merge
//
// Records are keyed by content, not by which driver asked: drivers that
// share cells (Figure 2/6/7/9 all sweep the default-scheduler grid;
// Table 4 aggregates Figure 23's runs) automatically share records.
//
// Determinism contract: a cached record must decode back to exactly the
// value that was computed, so a warm run renders byte-identically to a
// cold one. Records are JSON with concrete field types only (float64,
// integers, time.Duration, strings, slices, structs), which Go's
// encoding round-trips exactly.
package results

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Spec identifies one family of cells: a sub-experiment whose cell
// index fully determines the cell's parameters.
type Spec struct {
	// Experiment names the cell family (e.g. "grid/ecf", "fig16").
	// Drivers that share cells use the same name and get each other's
	// records for free.
	Experiment string
	// Schema is the experiment's record-schema version. Bump it
	// whenever the driver's cell semantics change (different seeds,
	// different record contents, different simulation behaviour), so
	// stale records can never be mistaken for current ones.
	Schema int
	// Scale is the canonical encoding of the scale parameters the cell
	// content depends on (experiments.Scale minus Workers and cache
	// policy, which never affect results).
	Scale string
}

// key builds the store key for one cell of the spec.
func (s Spec) key(cell int) Key {
	return Key{Experiment: s.Experiment, Cell: cell, Schema: s.Schema, Scale: s.Scale}
}

// Key identifies one cell's record in the store.
type Key struct {
	Experiment string `json:"experiment"`
	Cell       int    `json:"cell"`
	Schema     int    `json:"schema"`
	Scale      string `json:"scale"`
}

// hash returns the record's content address: a 128-bit hex digest over
// an unambiguous (length-prefixed) encoding of the key fields.
func (k Key) hash() string {
	h := sha256.New()
	var buf [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	writeInt := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeStr(k.Experiment)
	writeInt(k.Cell)
	writeInt(k.Schema)
	writeStr(k.Scale)
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// Shard restricts a run to the cells with index % Count == Index. The
// zero value (Count 0) covers every cell, as does Count 1.
type Shard struct {
	Index, Count int
}

// ParseShard parses the -shard flag syntax "i/n" with 0 <= i < n.
func ParseShard(s string) (Shard, error) {
	idx, cnt, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("shard %q: want \"i/n\" (e.g. 0/2)", s)
	}
	i, err1 := strconv.Atoi(idx)
	n, err2 := strconv.Atoi(cnt)
	if err1 != nil || err2 != nil || n < 1 || i < 0 || i >= n {
		return Shard{}, fmt.Errorf("shard %q: want \"i/n\" with 0 <= i < n", s)
	}
	return Shard{Index: i, Count: n}, nil
}

// Covers reports whether the shard runs the given cell.
func (sh Shard) Covers(cell int) bool {
	return sh.Count <= 1 || cell%sh.Count == sh.Index
}

// String renders the flag syntax back.
func (sh Shard) String() string {
	if sh.Count <= 1 {
		return "full"
	}
	return fmt.Sprintf("%d/%d", sh.Index, sh.Count)
}

// Group identifies one (experiment, scale, schema) family of records —
// the granularity at which cache entries go stale together: a schema
// bump or scale change strands the whole group.
type Group struct {
	Experiment string
	Scale      string
	Schema     int
}

// Sink receives computed (or cache-served) cell records in addition to
// the session's local store — the distributed upload path: a join-mode
// worker's sink is a coordinator client whose Put serializes the record
// and ingests it remotely. Put may be called from several worker
// goroutines at once and must be idempotent: under the determinism
// contract a cell's record is the same bytes no matter who computes it,
// so delivering one record twice (a retried upload, a stolen-then-
// revived lease) must converge on a single stored copy.
type Sink interface {
	Put(k Key, v any) error
}

// Session is the per-invocation cache/shard policy shared by every
// driver of one run, plus the hit/computed counters the harness
// reports. The zero value (and nil) computes everything in-process with
// no persistence. Counters are safe for concurrent use.
type Session struct {
	// Store persists cell records; nil disables caching.
	Store *Store
	// Shard restricts which cells run (zero value: all of them).
	Shard Shard
	// Merge serves every cell from the store and simulates nothing; a
	// missing record is an error naming the cell — or, with
	// CollectMisses, a note in the session's missing-cell list so one
	// merge pass reports every hole instead of the first.
	Merge bool
	// CollectMisses, with Merge, records missing cells (MissingCells)
	// and leaves their slots at zero values instead of failing the run
	// on the first hole. The caller must treat any recorded miss as a
	// failed merge: result structures touched by missing cells are
	// partial and must not be rendered as complete reports.
	CollectMisses bool
	// Claims, when non-nil, restricts computation to the cells it
	// reports true for — the distributed lease gate: a join-mode worker
	// computes exactly its leased cells and skips everything else
	// (including store reads). It is consulted again between compute
	// and upload, so a lease lost mid-pass stops claiming new cells
	// immediately. Must be safe for concurrent use.
	Claims func(Key) bool
	// Sink, when non-nil, additionally receives every record the
	// session serves or computes (after Store persistence) — the
	// join-mode upload path. A Sink error fails the cell.
	Sink Sink
	// CellTimeout, when positive, bounds each computed cell's wall
	// clock. A cell that exceeds it fails with a *CellTimeoutError
	// naming the experiment and cell index — loudly surrendering the
	// cell instead of wedging the whole sweep. The overrun computation
	// itself cannot be preempted (the simulator runs no cancellation
	// points on its hot path, by design); its goroutine is abandoned
	// and its result discarded, which a process that is about to exit
	// or surrender its lease can afford. Zero preserves the default:
	// no deadline.
	CellTimeout time.Duration
	// Enumerate records which record groups the run would touch without
	// reading or computing anything: every cell is skipped after noting
	// its spec. Driving the full experiment catalog through an
	// enumerating session yields the active matrix — the ground truth
	// -cache-prune keeps (derived from the very code paths that build
	// the specs, so it cannot drift from the drivers).
	Enumerate bool

	hits     atomic.Int64
	computed atomic.Int64

	durMu    sync.Mutex
	cellDurs []time.Duration

	activeMu sync.Mutex
	active   map[Group]struct{}
	cells    map[Spec]int

	missMu  sync.Mutex
	missing map[Key]struct{}
}

// noteCell records one cell's spec during an enumerating run: its group
// and the family's cell count (the highest index seen plus one).
func (s *Session) noteCell(spec Spec, i int) {
	g := Group{Experiment: spec.Experiment, Scale: spec.Scale, Schema: spec.Schema}
	s.activeMu.Lock()
	if s.active == nil {
		s.active = make(map[Group]struct{})
		s.cells = make(map[Spec]int)
	}
	s.active[g] = struct{}{}
	if i+1 > s.cells[spec] {
		s.cells[spec] = i + 1
	}
	s.activeMu.Unlock()
}

// noteMissing records a merge miss under CollectMisses.
func (s *Session) noteMissing(k Key) {
	s.missMu.Lock()
	if s.missing == nil {
		s.missing = make(map[Key]struct{})
	}
	s.missing[k] = struct{}{}
	s.missMu.Unlock()
}

// MissingCells returns the cells a CollectMisses merge pass could not
// serve, sorted by (experiment, scale, schema, cell). Empty means the
// merge was complete.
func (s *Session) MissingCells() []Key {
	if s == nil {
		return nil
	}
	s.missMu.Lock()
	defer s.missMu.Unlock()
	out := make([]Key, 0, len(s.missing))
	for k := range s.missing {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Scale != b.Scale {
			return a.Scale < b.Scale
		}
		if a.Schema != b.Schema {
			return a.Schema < b.Schema
		}
		return a.Cell < b.Cell
	})
	return out
}

// MissingCount returns how many merge misses have been collected so
// far — the cheap "did this experiment leave holes" probe a harness
// checks around each driver.
func (s *Session) MissingCount() int {
	if s == nil {
		return 0
	}
	s.missMu.Lock()
	defer s.missMu.Unlock()
	return len(s.missing)
}

// ActiveGroups returns the record groups noted by an enumerating run,
// sorted by (experiment, scale, schema).
func (s *Session) ActiveGroups() []Group {
	s.activeMu.Lock()
	defer s.activeMu.Unlock()
	out := make([]Group, 0, len(s.active))
	for g := range s.active {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Scale != b.Scale {
			return a.Scale < b.Scale
		}
		return a.Schema < b.Schema
	})
	return out
}

// CellFamily pairs one spec with its cell count — one entry of the
// enumerated work list a sweep coordinator hands out as leases.
type CellFamily struct {
	Spec  Spec
	Cells int
}

// ActiveCellFamilies returns every (spec, cell count) pair noted by an
// enumerating run, sorted by (experiment, scale, schema). Expanding
// each family's cells 0..Cells-1 through Spec.Key yields the complete,
// stable cell work list of a catalog run at the enumerated scale.
func (s *Session) ActiveCellFamilies() []CellFamily {
	s.activeMu.Lock()
	defer s.activeMu.Unlock()
	out := make([]CellFamily, 0, len(s.cells))
	for spec, n := range s.cells {
		out = append(out, CellFamily{Spec: spec, Cells: n})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Spec, out[j].Spec
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Scale != b.Scale {
			return a.Scale < b.Scale
		}
		return a.Schema < b.Schema
	})
	return out
}

// Key builds the store key for one cell of the spec — the exported
// form of the internal key derivation, for coordinators enumerating
// work lists.
func (s Spec) Key(cell int) Key { return s.key(cell) }

// noteDuration records one computed cell's wall clock. Lane groups
// attribute the group's wall clock evenly across their computed cells
// (individual lanes interleave on one goroutine, so per-cell walls are
// not separable there).
func (s *Session) noteDuration(d time.Duration) {
	s.durMu.Lock()
	s.cellDurs = append(s.cellDurs, d)
	s.durMu.Unlock()
}

// TakeCellDurations drains the wall-clock samples of every cell
// computed since the last call — the per-experiment collection point
// for the run report's cell-duration percentiles. Cache hits record
// nothing, so the sample population (though not the values) is
// independent of worker count and lane width.
func (s *Session) TakeCellDurations() []time.Duration {
	if s == nil {
		return nil
	}
	s.durMu.Lock()
	defer s.durMu.Unlock()
	out := s.cellDurs
	s.cellDurs = nil
	return out
}

// Stats returns how many cells were served from the store and how many
// were simulated since the session was created.
func (s *Session) Stats() (hits, computed int64) {
	if s == nil {
		return 0, 0
	}
	return s.hits.Load(), s.computed.Load()
}

// Sharded reports whether the session restricts cell coverage. A
// sharded run fills the store but leaves uncovered slots of every
// driver's result structure at their zero values, so its rendered
// reports are partial — render from a -merge pass instead.
func (s *Session) Sharded() bool {
	return s != nil && s.Shard.Count > 1
}

// MissingCellError reports a merge pass that needed a record no shard
// had produced.
type MissingCellError struct {
	Key Key
}

// Error names the missing cell and how to produce it.
func (e *MissingCellError) Error() string {
	return fmt.Sprintf("results: cell %d of %q (schema %d, scale %q) is not in the cache; run the shard covering it (and every other cell) before -merge",
		e.Key.Cell, e.Key.Experiment, e.Key.Schema, e.Key.Scale)
}

// CellTimeoutError reports a computed cell that exceeded the session's
// CellTimeout. It names the exact cell so an operator (or a join-mode
// worker surrendering the cell back to its coordinator) can act on it.
type CellTimeoutError struct {
	Key     Key
	Timeout time.Duration
}

// Error names the wedged cell and the deadline it blew.
func (e *CellTimeoutError) Error() string {
	return fmt.Sprintf("results: cell %d of %q (schema %d, scale %q) exceeded the %v cell timeout; surrendered (rerun without -cell-timeout to let it finish, or investigate the cell)",
		e.Key.Cell, e.Key.Experiment, e.Key.Schema, e.Key.Scale, e.Timeout)
}

// FatalError wraps an operational results failure (store I/O, a merge
// miss) raised out of an experiment driver as a panic — the drivers
// return no errors by design. Harnesses recover it at the top level and
// exit with the message instead of a stack trace.
type FatalError struct {
	Err error
}

// Error delegates to the wrapped error.
func (e *FatalError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *FatalError) Unwrap() error { return e.Err }
