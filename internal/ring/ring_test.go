package ring

import "testing"

func TestPushGrowAndWrap(t *testing.T) {
	var r Ring[int]
	var head, tail uint64
	// Interleave pushes and pops across several growth boundaries,
	// checking every live entry after each operation.
	check := func() {
		t.Helper()
		for k := head; k < tail; k++ {
			if got := *r.At(k); got != int(k) {
				t.Fatalf("entry %d = %d, want %d (len %d)", k, got, k, len(r.buf))
			}
		}
	}
	for i := 0; i < 1000; i++ {
		r.Push(head, tail, int(tail))
		tail++
		if i%3 == 0 && head < tail {
			head++ // pop
		}
		check()
	}
	if len(r.buf)&(len(r.buf)-1) != 0 {
		t.Fatalf("buffer length %d is not a power of two", len(r.buf))
	}
}

func TestSteadyStatePushAllocates0(t *testing.T) {
	var r Ring[int]
	var head, tail uint64
	for i := 0; i < 64; i++ {
		r.Push(head, tail, i)
		tail++
	}
	head = tail // drain
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			r.Push(head, tail, i)
			tail++
		}
		head = tail
	})
	if avg != 0 {
		t.Fatalf("steady-state push allocates %v per batch, want 0", avg)
	}
}
