// Package ring provides the absolute-indexed circular buffer backing
// the simulator's in-flight FIFOs (netsim.Link's flight ring,
// tcp.Subflow's inflight segment ring) and the seq-ordered reorder
// buffer backing stream reassembly (tcp.SubflowRecv, mptcp.Receiver).
// The caller owns its cursors — monotonically increasing absolute
// counters — and the ring guarantees that entry k stays at a stable
// masked position while live, growing by doubling when the live span
// fills the buffer. Steady-state push/read allocates nothing once the
// buffer has reached the working-set size.
package ring

// Ring is a power-of-two-sized circular buffer addressed by absolute
// index. The zero value is ready to use.
type Ring[T any] struct {
	buf []T
}

// Push stores v at absolute index tail, where [head, tail) is the live
// span; the caller increments its tail counter afterwards.
//
// For large T prefer PushRef, which constructs the entry in place
// instead of copying a fully built value through the call.
func (r *Ring[T]) Push(head, tail uint64, v T) {
	*r.PushRef(head, tail) = v
}

// PushRef makes room at absolute index tail and returns a pointer to
// the entry's storage, so the caller fills the fields in place — no
// stack copy of a large entry travels through the call. The returned
// pointer is valid until the next grow (i.e. the next push may move
// it); the caller increments its tail counter afterwards.
func (r *Ring[T]) PushRef(head, tail uint64) *T {
	if int(tail-head) == len(r.buf) {
		r.grow(head, tail)
	}
	return &r.buf[tail&uint64(len(r.buf)-1)]
}

// At returns a pointer to the entry at absolute index k, which must lie
// in the live span. Mutating through the pointer is the idiom for
// head-of-line state updates (netsim.Link's drain); the pointer is
// invalidated by the next grow.
func (r *Ring[T]) At(k uint64) *T {
	return &r.buf[k&uint64(len(r.buf)-1)]
}

// grow doubles the buffer, re-placing live entries at their new masked
// positions.
func (r *Ring[T]) grow(head, tail uint64) {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 8
	}
	fresh := make([]T, size)
	oldMask := uint64(len(r.buf) - 1)
	newMask := uint64(size - 1)
	for k := head; k < tail; k++ {
		fresh[k&newMask] = r.buf[k&oldMask]
	}
	r.buf = fresh
}
