package ring

// Reorder is a seq-ordered sliding buffer for out-of-order stream
// reassembly: the receive-side replacement for a map keyed by sequence
// number. Entries are (seq, length, value) triples kept sorted by seq
// in a deque that slides with the consumer's cumulative point — the
// front is popped as the in-order edge advances, new highest segments
// append at the back, and hole-filling arrivals insert in between
// (binary search plus a short memmove over a reorder window that is
// bounded by the congestion window).
//
// The deque reuses its backing storage forever: popping moves a head
// index, and appends compact the popped prefix in place before growing.
// Once the buffer has reached the working-set size, Insert/PopAt
// allocate nothing. Values must not hold pointers the caller expects to
// be released on pop — popped entries are not zeroed (the simulator
// stores only plain scalars here).
//
// Segments are assumed non-overlapping with stable boundaries, as TCP
// retransmission produces: two segments with the same seq are the same
// segment (Insert reports the second as a duplicate), and segments with
// different seqs never overlap.
type Reorder[T any] struct {
	ents []reorderEnt[T]
	head int
}

// reorderEnt is one buffered segment.
type reorderEnt[T any] struct {
	seq    int64
	length int
	val    T
}

// Len returns the number of buffered (out-of-order) segments.
func (r *Reorder[T]) Len() int { return len(r.ents) - r.head }

// Reset empties the buffer while keeping its backing storage, so a
// pooled receiver restarts at sequence zero with its reorder window
// already grown to a previous run's working set.
func (r *Reorder[T]) Reset() {
	r.ents = r.ents[:0]
	r.head = 0
}

// Insert buffers segment [seq, seq+length) with its associated value.
// It reports false — and stores nothing — when the seq is already
// buffered (a duplicate arrival).
func (r *Reorder[T]) Insert(seq int64, length int, v T) bool {
	n := len(r.ents)
	// Common case: a new highest segment (in-order growth of the
	// out-of-order block) appends at the back.
	if n == r.head || seq > r.ents[n-1].seq {
		r.push(reorderEnt[T]{seq: seq, length: length, val: v})
		return true
	}
	// Common case: a retransmit filling space just below the block
	// lands in front; the popped prefix usually has a free slot.
	if seq < r.ents[r.head].seq && r.head > 0 {
		r.head--
		r.ents[r.head] = reorderEnt[T]{seq: seq, length: length, val: v}
		return true
	}
	// General case: binary search the live span, then shift the tail.
	lo, hi := r.head, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.ents[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < n && r.ents[lo].seq == seq {
		return false // duplicate
	}
	var zero reorderEnt[T]
	r.ents = append(r.ents, zero)
	copy(r.ents[lo+1:], r.ents[lo:len(r.ents)-1])
	r.ents[lo] = reorderEnt[T]{seq: seq, length: length, val: v}
	return true
}

// PopAt removes and returns the front segment if it starts exactly at
// seq — the hole-drain step: the consumer calls it with its cumulative
// point after each advance.
func (r *Reorder[T]) PopAt(seq int64) (length int, v T, ok bool) {
	if r.head == len(r.ents) || r.ents[r.head].seq != seq {
		var zero T
		return 0, zero, false
	}
	e := r.ents[r.head]
	r.head++
	if r.head == len(r.ents) {
		r.head = 0
		r.ents = r.ents[:0]
	}
	return e.length, e.val, true
}

// push appends at the back, compacting the popped prefix in place when
// the buffer is full so storage is reused instead of re-grown.
func (r *Reorder[T]) push(e reorderEnt[T]) {
	if len(r.ents) == cap(r.ents) && r.head > 0 {
		live := copy(r.ents, r.ents[r.head:])
		r.ents = r.ents[:live]
		r.head = 0
	}
	r.ents = append(r.ents, e)
}
