package ring

import "testing"

func TestReorderInOrderNeverBuffers(t *testing.T) {
	var r Reorder[int]
	if r.Len() != 0 {
		t.Fatalf("zero value Len = %d", r.Len())
	}
	if _, _, ok := r.PopAt(0); ok {
		t.Fatal("PopAt on empty buffer reported ok")
	}
}

func TestReorderInsertPopChain(t *testing.T) {
	var r Reorder[string]
	// Arrivals 200, 400, 100 (lengths 100 each); hole at 0.
	for _, seq := range []int64{200, 400, 100} {
		if !r.Insert(seq, 100, "v") {
			t.Fatalf("Insert(%d) reported duplicate", seq)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if _, _, ok := r.PopAt(0); ok {
		t.Fatal("PopAt(0) succeeded with a hole at 0")
	}
	// Hole fills at 100: the chain 100, 200 drains, then stalls at the
	// 300 hole, then 400 remains buffered.
	for _, seq := range []int64{100, 200} {
		if l, _, ok := r.PopAt(seq); !ok || l != 100 {
			t.Fatalf("PopAt(%d) = (%d, %v), want (100, true)", seq, l, ok)
		}
	}
	if _, _, ok := r.PopAt(300); ok {
		t.Fatal("PopAt(300) succeeded with a hole at 300")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (the 400 segment)", r.Len())
	}
	if l, _, ok := r.PopAt(400); !ok || l != 100 {
		t.Fatalf("PopAt(400) = (%d, %v), want (100, true)", l, ok)
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after full drain, want 0", r.Len())
	}
}

func TestReorderDuplicateDetection(t *testing.T) {
	var r Reorder[int]
	if !r.Insert(500, 100, 1) {
		t.Fatal("first insert reported duplicate")
	}
	if r.Insert(500, 100, 2) {
		t.Fatal("second insert of same seq not reported as duplicate")
	}
	// Middle duplicate.
	r.Insert(700, 100, 3)
	r.Insert(600, 100, 4)
	if r.Insert(600, 100, 5) {
		t.Fatal("middle duplicate not detected")
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}

func TestReorderFrontInsertReusesPoppedPrefix(t *testing.T) {
	var r Reorder[int]
	r.Insert(100, 100, 0)
	r.Insert(200, 100, 0)
	if l, _, ok := r.PopAt(100); !ok || l != 100 {
		t.Fatalf("PopAt(100) = (%d, %v)", l, ok)
	}
	// 150 < front(200): should slot into the freed prefix cell.
	if !r.Insert(150, 50, 0) {
		t.Fatal("front insert reported duplicate")
	}
	if l, _, ok := r.PopAt(150); !ok || l != 50 {
		t.Fatalf("PopAt(150) = (%d, %v)", l, ok)
	}
	if l, _, ok := r.PopAt(200); !ok || l != 100 {
		t.Fatalf("PopAt(200) = (%d, %v)", l, ok)
	}
}

func TestReorderValuesTravelWithSegments(t *testing.T) {
	var r Reorder[int]
	for i := 0; i < 20; i++ {
		r.Insert(int64(100+i*10), 10, i)
	}
	for i := 0; i < 20; i++ {
		_, v, ok := r.PopAt(int64(100 + i*10))
		if !ok || v != i {
			t.Fatalf("PopAt(%d) = (%d, %v), want (%d, true)", 100+i*10, v, ok, i)
		}
	}
}

func TestReorderSteadyStateAllocs(t *testing.T) {
	var r Reorder[int64]
	// Warm to the working set.
	cycle := func() {
		base := int64(0)
		for round := 0; round < 8; round++ {
			// Insert 16 segments in reverse, drain them in order.
			for i := 15; i >= 0; i-- {
				r.Insert(base+int64(i)*100, 100, 0)
			}
			at := base
			for i := 0; i < 16; i++ {
				l, _, ok := r.PopAt(at)
				if !ok {
					t.Fatalf("drain stalled at %d", at)
				}
				at += int64(l)
			}
			base = at
		}
	}
	cycle()
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Fatalf("steady-state reorder buffer allocates %v per cycle, want 0", avg)
	}
}
