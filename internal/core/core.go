// Package core is the public facade of the reproduction: it assembles
// network paths, MPTCP connections, congestion control and a path
// scheduler into a runnable simulation. Examples, command-line tools and
// the experiment drivers all build on this package.
//
// A minimal session:
//
//	net := core.NewNetwork(core.DefaultPaths(8.6, 8.6))
//	conn := net.NewConn(core.ConnOptions{Scheduler: "ecf"})
//	conn.Request(1<<20, func(tr *mptcp.Transfer) { ... })
//	net.Run(30 * time.Second)
package core

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/mptcp"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/sim"
)

// PathSpec describes one network path (one interface pair).
type PathSpec struct {
	// Name labels the path ("wifi", "lte").
	Name string
	// RateMbps is the forward bandwidth in megabits per second.
	RateMbps float64
	// BaseRTT is the zero-load round-trip time; each direction gets half
	// as propagation delay.
	BaseRTT time.Duration
	// QueueBytes sizes the bottleneck buffer. Zero selects 48 KiB, which
	// calibrates the RTT-vs-bandwidth inflation to the paper's Table 2
	// (about one second of queueing at 0.3 Mbps).
	QueueBytes int
	// LossRate is i.i.d. forward loss probability.
	LossRate float64
	// Seed perturbs the loss process (experiment repetitions vary it).
	Seed uint64
	// ReverseRateMbps overrides the ACK-direction rate (zero: same as
	// forward).
	ReverseRateMbps float64
}

// DefaultQueueBytes is the bottleneck buffer used when PathSpec leaves
// QueueBytes zero. 48 KiB at 0.3 Mbps is ~1.3 s of queueing when full,
// matching the bufferbloat the paper measures on its slowest setting.
const DefaultQueueBytes = 48 * 1024

// WiFiBaseRTT and LTEBaseRTT are the zero-load RTTs used by the standard
// two-path topology; they are calibrated so that measured RTTs under load
// approximate the paper's Table 2 (WiFi 40 ms, LTE 105 ms at 8.6 Mbps).
const (
	WiFiBaseRTT = 20 * time.Millisecond
	LTEBaseRTT  = 80 * time.Millisecond
)

// DefaultPaths returns the paper's standard two-path topology: WiFi
// (primary) and LTE with the given forward bandwidths in Mbps.
func DefaultPaths(wifiMbps, lteMbps float64) []PathSpec {
	return []PathSpec{
		{Name: "wifi", RateMbps: wifiMbps, BaseRTT: WiFiBaseRTT},
		{Name: "lte", RateMbps: lteMbps, BaseRTT: LTEBaseRTT},
	}
}

// pathPort bundles a path with its shared demultiplexers.
type pathPort struct {
	path *netsim.Path
	fwd  *netsim.Demux
	rev  *netsim.Demux
}

// Network is a simulated topology shared by any number of MPTCP
// connections.
type Network struct {
	eng    *sim.Engine
	ports  []pathPort
	nextID int
}

// NewNetwork builds the topology on a simulation engine acquired from
// the engine pool: the arena and event heap of a previously released
// network are reused, so a sweep of independent simulation cells grows
// them once per worker instead of once per cell. Call Close when the
// simulation is done to return the engine; a network that is never
// closed simply keeps its engine out of the pool.
func NewNetwork(specs []PathSpec) *Network {
	eng := sim.Acquire()
	n := &Network{eng: eng}
	for i, s := range specs {
		q := s.QueueBytes
		if q <= 0 {
			q = DefaultQueueBytes
		}
		p := netsim.NewPath(eng, netsim.PathConfig{
			Name:           s.Name,
			RateBps:        s.RateMbps * 1e6,
			ReverseRateBps: s.ReverseRateMbps * 1e6,
			Delay:          s.BaseRTT / 2,
			QueueBytes:     q,
			LossRate:       s.LossRate,
			Seed:           s.Seed + uint64(i) + 1,
		})
		fwd := netsim.NewDemux()
		rev := netsim.NewDemux()
		p.SetForwardReceiver(fwd.OnPacket)
		p.SetReverseReceiver(rev.OnPacket)
		n.ports = append(n.ports, pathPort{path: p, fwd: fwd, rev: rev})
	}
	return n
}

// Engine exposes the simulation engine (for timers and custom events).
func (n *Network) Engine() *sim.Engine { return n.eng }

// Close releases the network's engine back to the simulation pool,
// cancelling everything still scheduled. The network, its connections
// and any Timer handles obtained from its engine must not be used
// afterwards; results must be collected before closing.
func (n *Network) Close() {
	if n.eng == nil {
		return
	}
	sim.Release(n.eng)
	n.eng = nil
}

// Paths returns the underlying paths in spec order.
func (n *Network) Paths() []*netsim.Path {
	out := make([]*netsim.Path, len(n.ports))
	for i, p := range n.ports {
		out[i] = p.path
	}
	return out
}

// SetRateMbps changes a path's forward bandwidth mid-run (the §5.3
// variable-bandwidth scenarios).
func (n *Network) SetRateMbps(pathIdx int, mbps float64) {
	n.ports[pathIdx].path.SetRateBps(mbps * 1e6)
}

// Run advances the simulation until the given virtual time.
func (n *Network) Run(until time.Duration) { n.eng.RunUntil(until) }

// RunAll drains every pending event.
func (n *Network) RunAll() { n.eng.Run() }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.eng.Now() }

// ConnOptions parameterizes NewConn.
type ConnOptions struct {
	// Scheduler is a registered scheduler name ("minrtt", "ecf",
	// "blest", "daps", ...). Empty selects "minrtt".
	Scheduler string
	// SchedulerInstance overrides Scheduler with a concrete instance
	// (used by ablations that tweak scheduler parameters).
	SchedulerInstance mptcp.Scheduler
	// CongestionControl is "lia" (default), "olia" or "reno".
	CongestionControl string
	// SubflowsPerPath creates this many subflows over each path
	// (default 1; §5.2.5 uses 2).
	SubflowsPerPath int
	// Config overrides the mptcp defaults. Zero-valued fields keep the
	// DefaultConfig behaviour; the ID is assigned by the network.
	Config *mptcp.Config
}

// NewConn creates an MPTCP connection with one (or more) subflows over
// every network path.
func (n *Network) NewConn(opts ConnOptions) *mptcp.Conn {
	id := n.nextID
	n.nextID++

	cfg := mptcp.DefaultConfig(id)
	if opts.Config != nil {
		cfg = *opts.Config
		cfg.ID = id
	}

	var ctrl cc.Controller
	switch opts.CongestionControl {
	case "", "lia":
		ctrl = cc.NewLIA()
	case "olia":
		ctrl = cc.NewOLIA()
	case "balia":
		ctrl = cc.NewBALIA()
	case "reno":
		ctrl = cc.NewReno()
	default:
		panic(fmt.Sprintf("core: unknown congestion control %q", opts.CongestionControl))
	}

	conn := mptcp.NewConn(n.eng, cfg, ctrl)

	var schedr mptcp.Scheduler
	if opts.SchedulerInstance != nil {
		schedr = opts.SchedulerInstance
	} else {
		name := opts.Scheduler
		if name == "" {
			name = "minrtt"
		}
		f, err := sched.Factory(name)
		if err != nil {
			panic(err)
		}
		schedr = f()
	}
	conn.SetScheduler(schedr)

	per := opts.SubflowsPerPath
	if per <= 0 {
		per = 1
	}
	for rep := 0; rep < per; rep++ {
		for _, port := range n.ports {
			name := port.path.Name()
			if per > 1 {
				name = fmt.Sprintf("%s#%d", name, rep)
			}
			conn.AddSubflow(name, port.path, port.fwd, port.rev)
		}
	}
	return conn
}
