// Package core is the public facade of the reproduction: it assembles
// network paths, MPTCP connections, congestion control and a path
// scheduler into a runnable simulation. Examples, command-line tools and
// the experiment drivers all build on this package.
//
// A minimal session:
//
//	net := core.NewNetwork(core.DefaultPaths(8.6, 8.6))
//	conn := net.NewConn(core.ConnOptions{Scheduler: "ecf"})
//	conn.Request(1<<20, func(tr *mptcp.Transfer) { ... })
//	net.Run(30 * time.Second)
//
// # Pooled lifecycle contract
//
// The whole per-cell object graph is pooled. NewNetwork draws a
// previously closed network from a process-wide pool and resets it in
// place; only the first network a worker builds touches the allocator.
// The contract has two halves:
//
//   - Reset guarantees construction equivalence: every reused object is
//     restored to exactly the state a cold construction would produce —
//     link serializers idle and loss RNGs reseeded, demux routes
//     cleared, subflows at the initial window with fresh RTT
//     estimators, schedulers with their dynamic state cleared (via
//     mptcp.Resettable), congestion controllers with no registered
//     flows, receivers at sequence zero with truncated telemetry.
//     Capacities (rings, reorder buffers, segment and transfer pools,
//     the engine's timer arena and event heap, telemetry series) are
//     retained; values are not. A pooled cell is therefore
//     byte-identical to a fresh one — the determinism and golden-hash
//     tests in internal/experiments pin this, and
//     core.TestSteadyStateAllocsPerCell pins the ~0 allocs/cell
//     steady state.
//
//   - Close reclaims everything at once: connections (with their
//     subflow units, segment pools and transfer pools) go to the
//     network's connection free list, schedulers and congestion
//     controllers file into per-registry-name free lists, the engine
//     is reset — cancelling all pending events and invalidating every
//     sim.Timer handle — and the network returns to the package pool.
//     After Close, the network, its connections, mptcp.Transfer
//     handles and any telemetry slices obtained from its receivers
//     (Receiver.OOODelays, SubflowBytes, LastArrival) are off-limits:
//     another worker may already be resetting them. Copy results out
//     first (the experiment drivers copy reorder telemetry into
//     metrics sample-pool buffers for exactly this reason).
package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cc"
	"repro/internal/mptcp"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// PathSpec describes one network path (one interface pair).
type PathSpec struct {
	// Name labels the path ("wifi", "lte").
	Name string
	// RateMbps is the forward bandwidth in megabits per second.
	RateMbps float64
	// BaseRTT is the zero-load round-trip time; each direction gets half
	// as propagation delay.
	BaseRTT time.Duration
	// QueueBytes sizes the bottleneck buffer. Zero selects 48 KiB, which
	// calibrates the RTT-vs-bandwidth inflation to the paper's Table 2
	// (about one second of queueing at 0.3 Mbps).
	QueueBytes int
	// LossRate is i.i.d. forward loss probability.
	LossRate float64
	// Seed perturbs the loss process (experiment repetitions vary it).
	Seed uint64
	// ReverseRateMbps overrides the ACK-direction rate (zero: same as
	// forward).
	ReverseRateMbps float64
}

// DefaultQueueBytes is the bottleneck buffer used when PathSpec leaves
// QueueBytes zero. 48 KiB at 0.3 Mbps is ~1.3 s of queueing when full,
// matching the bufferbloat the paper measures on its slowest setting.
const DefaultQueueBytes = 48 * 1024

// WiFiBaseRTT and LTEBaseRTT are the zero-load RTTs used by the standard
// two-path topology; they are calibrated so that measured RTTs under load
// approximate the paper's Table 2 (WiFi 40 ms, LTE 105 ms at 8.6 Mbps).
const (
	WiFiBaseRTT = 20 * time.Millisecond
	LTEBaseRTT  = 80 * time.Millisecond
)

// DefaultPaths returns the paper's standard two-path topology: WiFi
// (primary) and LTE with the given forward bandwidths in Mbps.
func DefaultPaths(wifiMbps, lteMbps float64) []PathSpec {
	return []PathSpec{
		{Name: "wifi", RateMbps: wifiMbps, BaseRTT: WiFiBaseRTT},
		{Name: "lte", RateMbps: lteMbps, BaseRTT: LTEBaseRTT},
	}
}

// pathPort bundles a path with its shared demultiplexers. The receiver
// funcs are method values created once per port, so a pooled network
// re-wires its links without allocating fresh closures every cell.
type pathPort struct {
	path    *netsim.Path
	fwd     *netsim.Demux
	rev     *netsim.Demux
	fwdRecv netsim.Receiver // fwd.OnPacket
	revRecv netsim.Receiver // rev.OnPacket
}

// connSlot tracks one live connection together with the pool keys of
// its scheduler and congestion controller (registry names, recorded at
// NewConn time), so Close can file both back under the right free list.
type connSlot struct {
	conn      *mptcp.Conn
	sched     mptcp.Scheduler // pooled instance, nil when caller-provided
	schedName string
	ctrlName  string
}

// Network is a simulated topology shared by any number of MPTCP
// connections.
//
// Networks are pooled: NewNetwork reuses the entire object graph of a
// previously closed network — engine (arena and event heap), links and
// their in-flight rings, demux tables, connections with their subflows,
// segment pools, reorder buffers, schedulers, congestion controllers
// and telemetry series — resetting everything in place to the state a
// cold construction would produce. A sweep of independent simulation
// cells therefore touches the allocator only while its first cell grows
// the working set; see the pooled-lifecycle contract on Close.
type Network struct {
	eng    *sim.Engine
	ports  []pathPort // live, one per spec
	spares []pathPort // retired by a Reset to fewer paths
	nextID int

	conns     []connSlot
	freeConns []*mptcp.Conn
	// freeScheds and freeCtrls are keyed by registry name — the request
	// key, not the instance's Name(), so e.g. "wifi-only" and
	// "lte-only" (both SinglePath) never mix.
	freeScheds map[string][]mptcp.Scheduler
	freeCtrls  map[string][]cc.Controller

	// obsRec, when non-nil, is the cell recorder this network's object
	// graph reports into — set by NewNetwork only when this network is
	// the traced cell's (obs.ArmedCell), detached again by Close.
	obsRec *obs.CellRecorder

	closed bool
}

// netPool recycles whole networks across simulation cells, the same way
// sim's engine pool recycles engines — one warm object graph per
// worker, not one per cell.
var netPool = sync.Pool{New: func() any { return &Network{} }}

// NewNetwork builds the topology on a pooled network: the engine,
// links, connections and telemetry buffers of a previously closed
// network are reset in place and reused, so a sweep of independent
// simulation cells grows them once per worker instead of once per
// cell. Call Close when the simulation is done to return the graph; a
// network that is never closed simply keeps its objects out of the
// pool.
func NewNetwork(specs []PathSpec) *Network {
	n := netPool.Get().(*Network)
	if n.eng == nil {
		// The engine is built once per pooled network and rides inside
		// it for the network's whole pool lifetime (Close resets it in
		// place), so the sim engine pool is not involved here.
		n.eng = sim.New()
		n.freeScheds = make(map[string][]mptcp.Scheduler)
		n.freeCtrls = make(map[string][]cc.Controller)
	}
	n.closed = false
	n.nextID = 0
	n.Reset(specs)
	// When this network belongs to the traced cell (the armed recorder
	// is visible only to the cell holding the trace gate's write lock),
	// install the engine and link instrumentation; NewConn adds the
	// subflow and scheduler halves as they are created.
	if rec := obs.ArmedCell(); rec != nil {
		n.obsRec = rec
		n.eng.SetFlightRecorder(rec.Flight)
		for i := range n.ports {
			p := n.ports[i].path
			p.Forward().SetObserver(rec.Packets)
			p.Reverse().SetObserver(rec.Packets)
		}
	}
	return n
}

// Reset rebuilds the topology in place over the network's pooled
// links and demultiplexers: port i is reconfigured to specs[i] exactly
// as NewNetwork would construct it, ports beyond len(specs) are parked
// for later reuse, and missing ports are created. The engine must be
// freshly reset (Close leaves it so); connections are not touched —
// Reset is the construction half of the NewNetwork/Close cycle.
func (n *Network) Reset(specs []PathSpec) {
	// Park or revive ports so len(n.ports) == len(specs).
	for len(n.ports) > len(specs) {
		last := len(n.ports) - 1
		n.spares = append(n.spares, n.ports[last])
		n.ports[last] = pathPort{}
		n.ports = n.ports[:last]
	}
	for len(n.ports) < len(specs) && len(n.spares) > 0 {
		last := len(n.spares) - 1
		n.ports = append(n.ports, n.spares[last])
		n.spares[last] = pathPort{}
		n.spares = n.spares[:last]
	}
	for i, s := range specs {
		q := s.QueueBytes
		if q <= 0 {
			q = DefaultQueueBytes
		}
		cfg := netsim.PathConfig{
			Name:           s.Name,
			RateBps:        s.RateMbps * 1e6,
			ReverseRateBps: s.ReverseRateMbps * 1e6,
			Delay:          s.BaseRTT / 2,
			QueueBytes:     q,
			LossRate:       s.LossRate,
			Seed:           s.Seed + uint64(i) + 1,
		}
		if i < len(n.ports) {
			port := &n.ports[i]
			port.path.Reset(cfg)
			port.fwd.Reset()
			port.rev.Reset()
			port.path.SetForwardReceiver(port.fwdRecv)
			port.path.SetReverseReceiver(port.revRecv)
			continue
		}
		p := netsim.NewPath(n.eng, cfg)
		port := pathPort{path: p, fwd: netsim.NewDemux(), rev: netsim.NewDemux()}
		port.fwdRecv = port.fwd.OnPacket
		port.revRecv = port.rev.OnPacket
		p.SetForwardReceiver(port.fwdRecv)
		p.SetReverseReceiver(port.revRecv)
		n.ports = append(n.ports, port)
	}
}

// Engine exposes the simulation engine (for timers and custom events).
func (n *Network) Engine() *sim.Engine { return n.eng }

// Close reclaims the whole per-cell object graph for reuse: every
// connection's subflows detach from their congestion controller,
// schedulers and controllers file back into per-name free lists, the
// engine is reset (cancelling everything still scheduled and
// invalidating every Timer handle), and the network returns to the
// pool. The network, its connections, Transfer handles and any
// telemetry slices obtained from its receivers must not be used
// afterwards; results must be copied out before closing. Closing twice
// is a no-op.
func (n *Network) Close() {
	if n.closed {
		return
	}
	n.closed = true
	for i := range n.conns {
		s := &n.conns[i]
		// Detach instrumentation before the graph enters the pools: a
		// pooled object must never carry a recorder into its next cell
		// (Reset clears these too; this keeps the invariant even for
		// objects that sit in a pool without being reused).
		if n.obsRec != nil {
			sched.WireDecisionSink(s.conn.Scheduler(), nil)
			for _, sf := range s.conn.Subflows() {
				sf.SetObserver(nil)
			}
		}
		// Detach subflows from the controller (and stop their timers)
		// while the engine is still live.
		s.conn.Close()
		if s.sched != nil {
			n.freeScheds[s.schedName] = append(n.freeScheds[s.schedName], s.sched)
		}
		n.freeCtrls[s.ctrlName] = append(n.freeCtrls[s.ctrlName], s.conn.Controller())
		n.freeConns = append(n.freeConns, s.conn)
		*s = connSlot{}
	}
	n.conns = n.conns[:0]
	// Flush per-link delivery counts into the process totals before the
	// ports are reused — netsim.TotalDelivered feeds the events/packet
	// telemetry and must count every finished cell exactly once.
	for i := range n.ports {
		if p := n.ports[i].path; p != nil {
			p.Forward().FlushStats()
			p.Reverse().FlushStats()
		}
	}
	for i := range n.spares {
		if p := n.spares[i].path; p != nil {
			p.Forward().FlushStats()
			p.Reverse().FlushStats()
		}
	}
	if n.obsRec != nil {
		for i := range n.ports {
			if p := n.ports[i].path; p != nil {
				p.Forward().SetObserver(nil)
				p.Reverse().SetObserver(nil)
			}
		}
		n.obsRec = nil
	}
	// The engine reset below also drops its flight recorder.
	n.eng.Reset()
	netPool.Put(n)
}

// Paths returns the underlying paths in spec order.
func (n *Network) Paths() []*netsim.Path {
	out := make([]*netsim.Path, len(n.ports))
	for i, p := range n.ports {
		out[i] = p.path
	}
	return out
}

// SetRateMbps changes a path's forward bandwidth mid-run (the §5.3
// variable-bandwidth scenarios).
func (n *Network) SetRateMbps(pathIdx int, mbps float64) {
	n.ports[pathIdx].path.SetRateBps(mbps * 1e6)
}

// Run advances the simulation until the given virtual time.
func (n *Network) Run(until time.Duration) { n.eng.RunUntil(until) }

// RunAll drains every pending event.
func (n *Network) RunAll() { n.eng.Run() }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.eng.Now() }

// ConnOptions parameterizes NewConn.
type ConnOptions struct {
	// Scheduler is a registered scheduler name ("minrtt", "ecf",
	// "blest", "daps", ...). Empty selects "minrtt".
	Scheduler string
	// SchedulerInstance overrides Scheduler with a concrete instance
	// (used by ablations that tweak scheduler parameters).
	SchedulerInstance mptcp.Scheduler
	// CongestionControl is "lia" (default), "olia" or "reno".
	CongestionControl string
	// SubflowsPerPath creates this many subflows over each path
	// (default 1; §5.2.5 uses 2).
	SubflowsPerPath int
	// Config overrides the mptcp defaults. Zero-valued fields keep the
	// DefaultConfig behaviour; the ID is assigned by the network.
	Config *mptcp.Config
}

// NewConn creates an MPTCP connection with one (or more) subflows over
// every network path, reviving a pooled connection — with its subflows,
// segment pools and telemetry buffers — when one is available.
func (n *Network) NewConn(opts ConnOptions) *mptcp.Conn {
	id := n.nextID
	n.nextID++

	cfg := mptcp.DefaultConfig(id)
	if opts.Config != nil {
		cfg = *opts.Config
		cfg.ID = id
	}

	ctrlName := opts.CongestionControl
	if ctrlName == "" {
		ctrlName = "lia"
	}
	ctrl := n.takeController(ctrlName)

	var conn *mptcp.Conn
	if k := len(n.freeConns); k > 0 {
		conn = n.freeConns[k-1]
		n.freeConns[k-1] = nil
		n.freeConns = n.freeConns[:k-1]
		conn.Reset(cfg, ctrl)
	} else {
		conn = mptcp.NewConn(n.eng, cfg, ctrl)
	}

	slot := connSlot{conn: conn, ctrlName: ctrlName}
	var schedr mptcp.Scheduler
	if opts.SchedulerInstance != nil {
		schedr = opts.SchedulerInstance
	} else {
		name := opts.Scheduler
		if name == "" {
			name = "minrtt"
		}
		schedr = n.takeScheduler(name)
		if res, ok := schedr.(mptcp.Resettable); ok {
			slot.sched = res
			slot.schedName = name
		}
	}
	conn.SetScheduler(schedr)
	n.conns = append(n.conns, slot)

	per := opts.SubflowsPerPath
	if per <= 0 {
		per = 1
	}
	for rep := 0; rep < per; rep++ {
		for i := range n.ports {
			port := &n.ports[i]
			name := port.path.Name()
			if per > 1 {
				name = fmt.Sprintf("%s#%d", name, rep)
			}
			conn.AddSubflow(name, port.path, port.fwd, port.rev)
		}
	}
	if n.obsRec != nil {
		sched.WireDecisionSink(schedr, n.obsRec.Decisions)
		for _, sf := range conn.Subflows() {
			sf.SetObserver(n.obsRec.Subflows)
		}
	}
	return conn
}

// takeController pops a pooled congestion controller for the given
// name, constructing one when the free list is empty. A reclaimed
// controller has had every flow unregistered, which is exactly the
// freshly-constructed state.
func (n *Network) takeController(name string) cc.Controller {
	if list := n.freeCtrls[name]; len(list) > 0 {
		ctrl := list[len(list)-1]
		list[len(list)-1] = nil
		n.freeCtrls[name] = list[:len(list)-1]
		return ctrl
	}
	switch name {
	case "lia":
		return cc.NewLIA()
	case "olia":
		return cc.NewOLIA()
	case "balia":
		return cc.NewBALIA()
	case "reno":
		return cc.NewReno()
	default:
		panic(fmt.Sprintf("core: unknown congestion control %q", name))
	}
}

// takeScheduler pops a pooled scheduler registered under name and
// resets it, constructing a fresh instance when the free list is empty.
// Only mptcp.Resettable instances ever enter the free lists, so the pop
// path always resets.
func (n *Network) takeScheduler(name string) mptcp.Scheduler {
	if list := n.freeScheds[name]; len(list) > 0 {
		s := list[len(list)-1]
		list[len(list)-1] = nil
		n.freeScheds[name] = list[:len(list)-1]
		s.(mptcp.Resettable).Reset()
		return s
	}
	f, err := sched.Factory(name)
	if err != nil {
		panic(err)
	}
	return f()
}
