package core

import (
	"runtime"
	"testing"
	"time"
)

// cellAllocBudget bounds the per-cell allocation count on a warm pooled
// worker. The graph itself (engine, links, demuxes, connection,
// subflows, segments, transfers, scheduler, controller, telemetry
// series) must be fully reused — measured steady state is exactly 0
// mallocs per cell; the budget only absorbs incidental runtime noise,
// not per-packet or per-transfer work, which numbers in the tens of
// thousands for this cell when pooling is broken.
const cellAllocBudget = 8

// TestSteadyStateAllocsPerCell pins the tentpole invariant of the
// pooled per-cell object graph: after the first iteration has grown
// every pool to the cell's working set, re-running the same cell on the
// same worker allocates (approximately) nothing. The minimum across
// iterations is asserted rather than the mean because a GC between
// cells may legitimately drop sync.Pool contents and force a one-off
// re-grow; a missed Reset-reuse path shows up in every iteration and
// cannot hide in the minimum.
func TestSteadyStateAllocsPerCell(t *testing.T) {
	runCell := func() {
		net := NewNetwork(DefaultPaths(5, 5))
		conn := net.NewConn(ConnOptions{Scheduler: "ecf"})
		for i := 0; i < 4; i++ {
			conn.Write(256<<10, nil)
		}
		net.Run(30 * time.Second)
		if conn.Receiver().DeliveredBytes() == 0 {
			t.Fatal("cell transferred nothing; the measurement is vacuous")
		}
		net.Close()
	}

	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1)) // keep one P so the net pool's per-P cache is hit
	runCell()                                       // grow every pool to the working set

	var m0, m1 runtime.MemStats
	best := ^uint64(0)
	for i := 0; i < 8; i++ {
		runtime.ReadMemStats(&m0)
		runCell()
		runtime.ReadMemStats(&m1)
		if d := m1.Mallocs - m0.Mallocs; d < best {
			best = d
		}
	}
	if best > cellAllocBudget {
		t.Errorf("warm pooled worker allocates %d objects per cell, want <= %d (a Reset path stopped reusing its pooled state)",
			best, cellAllocBudget)
	}
}
