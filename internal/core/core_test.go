package core

import (
	"testing"
	"time"

	"repro/internal/mptcp"
	"repro/internal/sched"
)

func TestDefaultPathsShape(t *testing.T) {
	specs := DefaultPaths(0.3, 8.6)
	if len(specs) != 2 {
		t.Fatalf("paths = %d, want 2", len(specs))
	}
	if specs[0].Name != "wifi" || specs[1].Name != "lte" {
		t.Fatalf("names = %s/%s", specs[0].Name, specs[1].Name)
	}
	if specs[0].BaseRTT >= specs[1].BaseRTT {
		t.Fatal("wifi base RTT should be below lte's")
	}
}

func TestNetworkAssembly(t *testing.T) {
	net := NewNetwork(DefaultPaths(1, 10))
	paths := net.Paths()
	if len(paths) != 2 {
		t.Fatalf("paths = %d", len(paths))
	}
	if paths[0].Forward().RateBps() != 1e6 || paths[1].Forward().RateBps() != 10e6 {
		t.Fatal("rates not applied")
	}
	if paths[0].Forward().QueueBytes() != DefaultQueueBytes {
		t.Fatalf("queue default = %d", paths[0].Forward().QueueBytes())
	}
}

func TestSetRateMbps(t *testing.T) {
	net := NewNetwork(DefaultPaths(1, 10))
	net.SetRateMbps(0, 4.2)
	if got := net.Paths()[0].Forward().RateBps(); got != 4.2e6 {
		t.Fatalf("rate = %v", got)
	}
}

func TestNewConnDefaults(t *testing.T) {
	net := NewNetwork(DefaultPaths(5, 5))
	conn := net.NewConn(ConnOptions{})
	if conn.Scheduler().Name() != "minrtt" {
		t.Fatalf("default scheduler = %s", conn.Scheduler().Name())
	}
	if len(conn.Subflows()) != 2 {
		t.Fatalf("subflows = %d", len(conn.Subflows()))
	}
	// Handshake-seeded RTT estimates exist.
	for _, sf := range conn.Subflows() {
		if !sf.HasRTTSample() {
			t.Fatal("subflow should have a handshake RTT seed")
		}
	}
}

func TestNewConnAllSchedulers(t *testing.T) {
	for _, name := range sched.Names() {
		net := NewNetwork(DefaultPaths(5, 5))
		conn := net.NewConn(ConnOptions{Scheduler: name})
		done := false
		conn.Request(100_000, func(*mptcp.Transfer) { done = true })
		net.Run(time.Minute)
		if !done {
			t.Fatalf("scheduler %s did not complete a simple transfer", name)
		}
	}
}

func TestNewConnAllControllers(t *testing.T) {
	for _, ccName := range []string{"lia", "olia", "balia", "reno"} {
		net := NewNetwork(DefaultPaths(5, 5))
		conn := net.NewConn(ConnOptions{Scheduler: "ecf", CongestionControl: ccName})
		done := false
		conn.Request(500_000, func(*mptcp.Transfer) { done = true })
		net.Run(time.Minute)
		if !done {
			t.Fatalf("controller %s did not complete a transfer", ccName)
		}
	}
}

func TestNewConnUnknownCCPanics(t *testing.T) {
	net := NewNetwork(DefaultPaths(5, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("unknown cc did not panic")
		}
	}()
	net.NewConn(ConnOptions{CongestionControl: "cubic"})
}

func TestNewConnUnknownSchedulerPanics(t *testing.T) {
	net := NewNetwork(DefaultPaths(5, 5))
	defer func() {
		if recover() == nil {
			t.Fatal("unknown scheduler did not panic")
		}
	}()
	net.NewConn(ConnOptions{Scheduler: "bogus"})
}

func TestSubflowsPerPath(t *testing.T) {
	net := NewNetwork(DefaultPaths(5, 5))
	conn := net.NewConn(ConnOptions{Scheduler: "ecf", SubflowsPerPath: 2})
	subflows := conn.Subflows()
	if len(subflows) != 4 {
		t.Fatalf("subflows = %d, want 4", len(subflows))
	}
	// Naming: wifi#0, lte#0, wifi#1, lte#1.
	if subflows[0].Name() != "wifi#0" || subflows[3].Name() != "lte#1" {
		t.Fatalf("names = %s..%s", subflows[0].Name(), subflows[3].Name())
	}
	done := false
	conn.Request(1<<20, func(*mptcp.Transfer) { done = true })
	net.Run(time.Minute)
	if !done {
		t.Fatal("4-subflow transfer incomplete")
	}
}

func TestConnIDsUnique(t *testing.T) {
	net := NewNetwork(DefaultPaths(5, 5))
	a := net.NewConn(ConnOptions{})
	b := net.NewConn(ConnOptions{})
	if a.ID() == b.ID() {
		t.Fatal("connection IDs must be unique per network")
	}
}

func TestMidStreamRateChange(t *testing.T) {
	// Squeeze the LTE path mid-transfer; the transfer must still finish,
	// just slower than an unsqueezed one.
	run := func(squeeze bool) time.Duration {
		net := NewNetwork(DefaultPaths(1, 10))
		conn := net.NewConn(ConnOptions{Scheduler: "ecf"})
		var dur time.Duration
		conn.Request(4<<20, func(tr *mptcp.Transfer) { dur = tr.Duration() })
		if squeeze {
			net.Engine().Schedule(time.Second, func() { net.SetRateMbps(1, 0.5) })
		}
		net.Run(5 * time.Minute)
		if dur == 0 {
			t.Fatal("transfer incomplete")
		}
		return dur
	}
	fast := run(false)
	slow := run(true)
	if slow <= fast {
		t.Fatalf("squeezed run %v not slower than clean run %v", slow, fast)
	}
}

func TestMidStreamBlackoutRecovery(t *testing.T) {
	// Total blackout of the fast path for 3 s mid-transfer: RTO-driven
	// recovery must finish the transfer after the path returns.
	net := NewNetwork(DefaultPaths(1, 10))
	conn := net.NewConn(ConnOptions{Scheduler: "ecf"})
	done := false
	conn.Request(3<<20, func(*mptcp.Transfer) { done = true })
	eng := net.Engine()
	eng.Schedule(500*time.Millisecond, func() {
		net.Paths()[1].Forward().SetLossRate(1.0)
	})
	eng.Schedule(3500*time.Millisecond, func() {
		net.Paths()[1].Forward().SetLossRate(0)
	})
	net.Run(5 * time.Minute)
	if !done {
		t.Fatal("transfer did not survive the blackout")
	}
}

func TestEngineAccessors(t *testing.T) {
	net := NewNetwork(DefaultPaths(5, 5))
	if net.Engine() == nil {
		t.Fatal("nil engine")
	}
	net.Run(time.Second)
	if net.Now() != time.Second {
		t.Fatalf("Now = %v", net.Now())
	}
}

func TestConnConfigOverride(t *testing.T) {
	net := NewNetwork(DefaultPaths(5, 5))
	cfg := mptcp.Config{SndBuf: 64 << 10, RcvBuf: 64 << 10}
	conn := net.NewConn(ConnOptions{Scheduler: "ecf", Config: &cfg})
	if conn.SendWindowBytes() != 64<<10 {
		t.Fatalf("send window = %d, want 64KiB", conn.SendWindowBytes())
	}
	done := false
	conn.Request(1<<20, func(*mptcp.Transfer) { done = true })
	net.Run(2 * time.Minute)
	if !done {
		t.Fatal("tiny-buffer transfer incomplete")
	}
}
