package core

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// runObsCell runs the pool_test reference cell (5/5 Mbps default paths,
// one ECF connection, 4×256 KiB transfers, 30 simulated seconds).
func runObsCell(t testing.TB) {
	net := NewNetwork(DefaultPaths(5, 5))
	conn := net.NewConn(ConnOptions{Scheduler: "ecf"})
	for i := 0; i < 4; i++ {
		conn.Write(256<<10, nil)
	}
	net.Run(30 * time.Second)
	if conn.Receiver().DeliveredBytes() == 0 {
		t.Fatal("cell transferred nothing; the measurement is vacuous")
	}
	net.Close()
}

// TestTracedCellRecordsAllStreams drives one cell through the trace
// gate the way results.runCell does and checks that every pillar of the
// recorder observed traffic: engine dispatches, per-packet link events,
// subflow congestion events, and scheduler decisions.
func TestTracedCellRecordsAllStreams(t *testing.T) {
	obs.SetTraceTarget("core-obs-test", 0)
	defer obs.ClearTraceTarget()
	traced, release := obs.EnterCell("core-obs-test", 0)
	if !traced {
		t.Fatal("EnterCell did not match the target")
	}
	runObsCell(t)
	release()

	rec := obs.CapturedCell()
	if rec == nil {
		t.Fatal("no recorder captured")
	}
	if n := rec.Flight.Total(); n == 0 {
		t.Error("flight recorder saw no engine events")
	}
	if n := rec.Packets.Total(); n == 0 {
		t.Error("packet recorder saw no link events")
	}
	if n := rec.Subflows.Total(); n == 0 {
		t.Error("subflow recorder saw no congestion events")
	}
	if n := rec.Decisions.Total(); n == 0 {
		t.Error("decision recorder saw no scheduler decisions (ECF sink not wired?)")
	}
}

// TestRecorderDetachedAfterClose pins the teardown half of the
// contract: once the traced cell releases the gate, later cells on the
// same pooled object graph must not keep appending to the captured
// recorder (the pooled networks are reused by every subsequent cell).
func TestRecorderDetachedAfterClose(t *testing.T) {
	obs.SetTraceTarget("core-detach-test", 0)
	traced, release := obs.EnterCell("core-detach-test", 0)
	if !traced {
		t.Fatal("EnterCell did not match the target")
	}
	runObsCell(t)
	release()
	obs.ClearTraceTarget()

	rec := obs.CapturedCell()
	if rec == nil {
		t.Fatal("no recorder captured")
	}
	flight, packets, subflows, decisions := rec.Flight.Total(), rec.Packets.Total(), rec.Subflows.Total(), rec.Decisions.Total()

	runObsCell(t) // untraced; likely reuses the traced cell's pooled graph

	if got := rec.Flight.Total(); got != flight {
		t.Errorf("flight recorder grew after its cell closed: %d -> %d", flight, got)
	}
	if got := rec.Packets.Total(); got != packets {
		t.Errorf("packet recorder grew after its cell closed: %d -> %d", packets, got)
	}
	if got := rec.Subflows.Total(); got != subflows {
		t.Errorf("subflow recorder grew after its cell closed: %d -> %d", subflows, got)
	}
	if got := rec.Decisions.Total(); got != decisions {
		t.Errorf("decision recorder grew after its cell closed: %d -> %d", decisions, got)
	}
}

// BenchmarkCellSteadyState is the benchguard probe for the disabled
// observability path: the pool_test reference cell on a warm pooled
// worker, with the obs hooks compiled in but no trace target set. The
// guarded ceilings pin allocs/op at zero and ns/op at the pre-obs
// level — the "zero cost when off" contract as a number.
func BenchmarkCellSteadyState(b *testing.B) {
	runObsCell(b) // grow every pool to the working set
	b.ReportAllocs()
	p0, c0 := sim.TotalEvents()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runObsCell(b)
	}
	b.StopTimer()
	p1, c1 := sim.TotalEvents()
	b.ReportMetric(float64((p1-p0)+(c1-c0))/float64(b.N), "events/op")
}
