package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 57
		counts := make([]int32, n)
		err := New(workers).ForEach(context.Background(), n, func(_ context.Context, i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachResultsIndependentOfWorkerCount(t *testing.T) {
	// Each job writes a value derived only from its index and seed; the
	// collected slice must be identical for any worker count.
	const n = 40
	collect := func(workers int) []uint64 {
		out := make([]uint64, n)
		if err := New(workers).ForEach(context.Background(), n, func(_ context.Context, i int) error {
			out[i] = Seed("order-independence", i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := collect(1)
	for _, w := range []int{2, 3, 8} {
		got := collect(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				v := recover()
				if v == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				pe, ok := v.(*PanicError)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want *PanicError", workers, v)
				}
				if pe.Job != 3 || pe.Value != "boom" || len(pe.Stack) == 0 {
					t.Fatalf("workers=%d: PanicError = job %d value %v stack %d bytes",
						workers, pe.Job, pe.Value, len(pe.Stack))
				}
			}()
			New(workers).ForEach(context.Background(), 16, func(_ context.Context, i int) error {
				if i == 3 {
					panic("boom")
				}
				return nil
			})
		}()
	}
}

func TestForEachPanicCancelsRemainingJobs(t *testing.T) {
	var started int32
	func() {
		defer func() { recover() }()
		New(2).ForEach(context.Background(), 1000, func(ctx context.Context, i int) error {
			atomic.AddInt32(&started, 1)
			if i == 0 {
				panic("die early")
			}
			// Give the cancellation a moment to land before the next pull.
			select {
			case <-ctx.Done():
			case <-time.After(time.Millisecond):
			}
			return nil
		})
	}()
	if n := atomic.LoadInt32(&started); n >= 1000 {
		t.Fatalf("all %d jobs started despite early panic", n)
	}
}

func TestForEachErrorWinsByLowestIndex(t *testing.T) {
	// All jobs fail; the reported error must be job 0's regardless of
	// completion order.
	for _, workers := range []int{1, 4} {
		err := New(workers).ForEach(context.Background(), 8, func(_ context.Context, i int) error {
			return fmt.Errorf("job %d failed", i)
		})
		if err == nil || err.Error() != "job 0 failed" {
			t.Fatalf("workers=%d: err = %v, want job 0's", workers, err)
		}
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran int32
	done := make(chan error, 1)
	release := make(chan struct{})
	go func() {
		done <- New(2).ForEach(ctx, 1000, func(ctx context.Context, i int) error {
			atomic.AddInt32(&ran, 1)
			<-release
			return nil
		})
	}()
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after cancellation")
	}
	if n := atomic.LoadInt32(&ran); n >= 1000 {
		t.Fatalf("all %d jobs ran despite cancelled context", n)
	}
}

func TestForEachZeroJobs(t *testing.T) {
	if err := New(4).ForEach(context.Background(), 0, nil); err != nil {
		t.Fatalf("n=0: err = %v", err)
	}
}

func TestPanicErrorUnwrap(t *testing.T) {
	base := errors.New("root cause")
	pe := &PanicError{Job: 1, Value: base}
	if !errors.Is(pe, base) {
		t.Fatal("PanicError should unwrap to an error panic value")
	}
	if (&PanicError{Job: 1, Value: "text"}).Unwrap() != nil {
		t.Fatal("non-error panic value should unwrap to nil")
	}
}

func TestSeedStableAndDistinct(t *testing.T) {
	// Stability: the derivation is part of the reproducibility contract,
	// so pin a few values.
	if a, b := Seed("grid", 0), Seed("grid", 0); a != b {
		t.Fatalf("Seed not deterministic: %d vs %d", a, b)
	}
	seen := map[uint64]string{}
	for _, exp := range []string{"grid", "random", "web", "wild", ""} {
		for cell := 0; cell < 1000; cell++ {
			s := Seed(exp, cell)
			key := fmt.Sprintf("%s/%d", exp, cell)
			if prev, dup := seen[s]; dup {
				t.Fatalf("Seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestSeedRunDistinctAndNonZero(t *testing.T) {
	if a, b := SeedRun("web", 3, 2), SeedRun("web", 3, 2); a != b {
		t.Fatalf("SeedRun not deterministic: %d vs %d", a, b)
	}
	seen := map[uint64]string{}
	for _, exp := range []string{"fig18", "fig19", "web-browsing"} {
		for cell := 0; cell < 50; cell++ {
			for run := 0; run < 30; run++ {
				s := SeedRun(exp, cell, run)
				if s == 0 {
					t.Fatalf("SeedRun(%q, %d, %d) = 0 (zero selects the default stream)", exp, cell, run)
				}
				key := fmt.Sprintf("%s/%d/%d", exp, cell, run)
				if prev, dup := seen[s]; dup {
					t.Fatalf("SeedRun collision: %s and %s both map to %d", prev, key, s)
				}
				seen[s] = key
			}
		}
	}
	// Run 0 must reuse nothing from the single-level Seed of the same
	// cell (the addend is mixed before use).
	if SeedRun("fig18", 0, 0) == Seed("fig18", 0) {
		t.Fatal("SeedRun(exp, cell, 0) must not equal Seed(exp, cell)")
	}
}
