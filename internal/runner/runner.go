// Package runner is the concurrency layer under the experiment matrix.
//
// The paper's evaluation is a large set of mutually independent
// simulations — 6×6 bandwidth grids per scheduler, batches of random
// §5.3 scenarios, repeated web and wild runs. Each cell builds its own
// network, engine and RNG streams, so cells can execute in any order on
// any number of goroutines without observing each other. A Pool fans
// those cells across a bounded set of workers; callers enumerate cells
// as job indexes and write results into pre-sized storage indexed by
// cell, which makes aggregation order-independent by construction.
//
// Determinism contract: a job's behaviour may depend only on its index
// (and on seeds derived from it — see Seed), never on worker count,
// scheduling order, or wall-clock time. Under that contract a sweep's
// output is byte-identical for Workers=1 and Workers=N.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool executes independent jobs across a bounded set of goroutines.
// The zero value is valid and uses one worker per logical CPU.
type Pool struct {
	// Workers bounds concurrency. Zero or negative selects
	// runtime.GOMAXPROCS(0). The job results never depend on it.
	Workers int
	// OnProgress, when non-nil, is called after every job finishes
	// (failed and cancelled-after-dispatch jobs included) with the
	// number completed so far and the batch total. Calls may come from
	// any worker goroutine concurrently; the callback must be
	// goroutine-safe and fast (it runs on the worker's critical path).
	// Like Workers it can never affect job results — it only observes.
	OnProgress func(done, total int)
	// Order, when non-nil, is a dispatch-order hint: a permutation of
	// [0, n) for the next ForEach call, dispatched front to back.
	// Sweeps use it to start known-expensive jobs first
	// (longest-processing-time), shrinking the tail where the last
	// worker finishes a long job alone. It is strictly observational:
	// results land in caller-indexed storage regardless of order, so
	// output is byte-identical with or without a hint. A hint that is
	// not a permutation of [0, n) — wrong length, out-of-range or
	// duplicate entries — is ignored rather than trusted.
	Order []int
}

// New returns a pool bounded to the given worker count (0 = GOMAXPROCS).
func New(workers int) Pool { return Pool{Workers: workers} }

// order validates the dispatch hint for n jobs: a permutation of [0, n)
// is returned as-is, anything else (including no hint) yields nil and
// natural order.
func (p Pool) order(n int) []int {
	ord := p.Order
	if len(ord) != n {
		return nil
	}
	seen := make([]bool, n)
	for _, j := range ord {
		if j < 0 || j >= n || seen[j] {
			return nil
		}
		seen[j] = true
	}
	return ord
}

// workers resolves the effective worker count for n jobs.
func (p Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// PanicError wraps a panic recovered from a job so it can cross the
// goroutine boundary and be re-raised in the caller of ForEach.
type PanicError struct {
	// Job is the index of the panicking job.
	Job int
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error renders the panic with its originating job and stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job %d panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// Unwrap exposes an underlying error panic value to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// ForEach runs fn(ctx, i) for every i in [0, n) across the pool's
// workers and blocks until all dispatched jobs return.
//
// Jobs complete in no particular order; results must go into
// caller-owned, pre-sized storage indexed by i (distinct elements of a
// pre-allocated slice are safe to write concurrently).
//
// If fn returns an error, the context passed to still-running jobs is
// cancelled, undispatched jobs are skipped, and the error recorded for
// the lowest job index is returned. If fn panics, remaining jobs are
// cancelled the same way and the panic is re-raised in the caller,
// wrapped in *PanicError with the original stack. If ctx is cancelled,
// dispatch stops and ctx's error is returned after in-flight jobs drain.
func (p Pool) ForEach(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	w := p.workers(n)
	ord := p.order(n)
	if w == 1 {
		return p.serial(ctx, n, ord, fn)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		done     atomic.Int64
		mu       sync.Mutex
		errJob   = n // lowest failing index seen so far
		firstErr error
		pan      *PanicError
		wg       sync.WaitGroup
	)
	next.Store(-1)
	record := func(job int, err error, pv any, stack []byte) {
		mu.Lock()
		defer mu.Unlock()
		if pv != nil && (pan == nil || job < pan.Job) {
			pan = &PanicError{Job: job, Value: pv, Stack: stack}
		}
		if err != nil && job < errJob {
			errJob, firstErr = job, err
		}
		cancel()
	}
	runOne := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				record(i, nil, v, debug.Stack())
			}
		}()
		if err := fn(cctx, i); err != nil {
			record(i, err, nil, nil)
		}
	}
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || cctx.Err() != nil {
					return
				}
				if ord != nil {
					i = ord[i]
				}
				runOne(i)
				if p.OnProgress != nil {
					p.OnProgress(int(done.Add(1)), n)
				}
			}
		}()
	}
	wg.Wait()

	if pan != nil {
		panic(pan)
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// serial is the one-worker fast path: inline execution, no goroutines.
// Panics are wrapped in *PanicError exactly as on the parallel path, so
// the contract callers see does not depend on the worker count.
func (p Pool) serial(ctx context.Context, n int, ord []int, fn func(ctx context.Context, i int) error) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		j := i
		if ord != nil {
			j = ord[i]
		}
		err := p.serialOne(ctx, j, fn)
		if p.OnProgress != nil {
			p.OnProgress(i+1, n)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// serialOne runs one job, converting a panic into the re-raised
// *PanicError the parallel path produces.
func (p Pool) serialOne(ctx context.Context, i int, fn func(ctx context.Context, i int) error) error {
	defer func() {
		if v := recover(); v != nil {
			panic(&PanicError{Job: i, Value: v, Stack: debug.Stack()})
		}
	}()
	return fn(ctx, i)
}

// Seed derives a 64-bit seed for one job from its experiment name and
// cell index. Feeding the result to sim.NewRNG gives every cell its own
// stream that depends only on (experiment, cell) — never on worker
// count or completion order — so adding draws in one cell cannot
// perturb another. FNV-1a over the name, golden-ratio mix of the index,
// splitmix64 finalizer.
func Seed(experiment string, cell int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(experiment); i++ {
		h ^= uint64(experiment[i])
		h *= 1099511628211
	}
	h ^= (uint64(cell) + 1) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// SeedRun derives the seed for repetition run of cell cell — Seed's
// two-level variant for experiments that repeat each cell several
// times. Same namespacing guarantee as Seed, plus streams disjoint
// across runs of one cell; the result is never zero (simulator path
// specs treat a zero seed as "use the default stream"). Experiments
// comparing schedulers over shared randomness pass a cell index that
// excludes the scheduler so both sides see identical draws (the
// paper's paired design).
func SeedRun(experiment string, cell, run int) uint64 {
	s := Seed(experiment, cell) + uint64(run)*0x9e3779b97f4a7c15
	s ^= s >> 30
	s *= 0xbf58476d1ce4e5b9
	s ^= s >> 27
	if s == 0 {
		s = 1
	}
	return s
}
