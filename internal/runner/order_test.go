package runner

import (
	"context"
	"sync"
	"testing"
)

// TestOrderHintSerialDispatch pins that a valid Order hint is the exact
// serial dispatch sequence at one worker, and that every job still runs
// exactly once.
func TestOrderHintSerialDispatch(t *testing.T) {
	const n = 6
	hint := []int{4, 2, 5, 0, 3, 1}
	var got []int
	p := New(1)
	p.Order = hint
	if err := p.ForEach(context.Background(), n, func(_ context.Context, i int) error {
		got = append(got, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("ran %d jobs, want %d", len(got), n)
	}
	for k, j := range hint {
		if got[k] != j {
			t.Fatalf("dispatch sequence %v, want the hint %v", got, hint)
		}
	}
}

// TestOrderHintParallelCoverage checks the hint changes only dispatch
// order, never coverage: every job runs exactly once at any width.
func TestOrderHintParallelCoverage(t *testing.T) {
	const n = 33
	hint := make([]int, n)
	for i := range hint {
		hint[i] = n - 1 - i
	}
	for _, workers := range []int{1, 2, 8} {
		var mu sync.Mutex
		counts := make([]int, n)
		p := New(workers)
		p.Order = hint
		if err := p.ForEach(context.Background(), n, func(_ context.Context, i int) error {
			mu.Lock()
			counts[i]++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestOrderHintInvalidIgnored pins that a malformed hint — wrong
// length, out-of-range index, duplicate index — is ignored rather than
// trusted: dispatch falls back to index order and coverage is intact.
func TestOrderHintInvalidIgnored(t *testing.T) {
	const n = 5
	bad := map[string][]int{
		"wrong length": {0, 1, 2},
		"out of range": {0, 1, 2, 3, 7},
		"negative":     {0, 1, 2, 3, -1},
		"duplicate":    {0, 1, 2, 2, 4},
	}
	for name, hint := range bad {
		var got []int
		p := New(1)
		p.Order = hint
		if err := p.ForEach(context.Background(), n, func(_ context.Context, i int) error {
			got = append(got, i)
			return nil
		}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for k := range got {
			if got[k] != k {
				t.Fatalf("%s: dispatch sequence %v, want index order (hint ignored)", name, got)
			}
		}
		if len(got) != n {
			t.Fatalf("%s: ran %d jobs, want %d", name, len(got), n)
		}
	}
}
