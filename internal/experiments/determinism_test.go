package experiments

import "testing"

// The parallel runner's contract: every sweep renders byte-identically
// for any worker count, because each cell is an independent simulation
// keyed only by its index. These regressions pin that for a grid sweep,
// a random-scenario sweep, and a repetition table.

func TestRunGridDeterministicAcrossWorkerCounts(t *testing.T) {
	sc := Scale{GridVideoSec: 10}
	sc.Workers = 1
	serial := RunGrid("ecf", sc, false).Heatmap().String()
	sc.Workers = 8
	parallel := RunGrid("ecf", sc, false).Heatmap().String()
	if serial != parallel {
		t.Fatalf("grid sweep differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestFigure16DeterministicAcrossWorkerCounts(t *testing.T) {
	sc := Scale{RandomDurSec: 60, RandomScenarios: 3}
	sc.Workers = 1
	serial := Figure16(sc).String()
	sc.Workers = 8
	parallel := Figure16(sc).String()
	if serial != parallel {
		t.Fatalf("random sweep differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestTable3DeterministicAcrossWorkerCounts(t *testing.T) {
	sc := Scale{VideoSec: 20}
	sc.Workers = 1
	serial := Table3(sc).String()
	sc.Workers = 8
	parallel := Table3(sc).String()
	if serial != parallel {
		t.Fatalf("Table 3 differs between Workers=1 and Workers=8:\n%s\nvs\n%s", serial, parallel)
	}
}
