package experiments

import (
	"testing"

	"repro/internal/results"
)

// The results-layer contract at the driver level: a warm-cache run
// renders byte-identically to the cold run that filled the store (for
// any worker count), shards union into the unsharded report, and key
// changes invalidate records.

func cacheSession(t *testing.T, dir string) *results.Session {
	t.Helper()
	store, err := results.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return &results.Session{Store: store}
}

func TestGridWarmCacheByteIdenticalAcrossWorkerCounts(t *testing.T) {
	dir := t.TempDir()
	sc := Scale{GridVideoSec: 10}

	sc.Workers = 1
	sc.Results = cacheSession(t, dir)
	cold := RunGrid("ecf", sc, false).Heatmap().String()
	if h, c := sc.Results.Stats(); h != 0 || c != 36 {
		t.Fatalf("cold stats = %d hits, %d computed; want 0, 36", h, c)
	}

	// Warm run on a different worker count: all cells from the store,
	// identical rendering.
	sc.Workers = 8
	sc.Results = cacheSession(t, dir)
	warm := RunGrid("ecf", sc, false).Heatmap().String()
	if h, c := sc.Results.Stats(); h != 36 || c != 0 {
		t.Fatalf("warm stats = %d hits, %d computed; want 36, 0", h, c)
	}
	if warm != cold {
		t.Fatalf("warm grid differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
}

func TestFigure16ShardsPlusMergeMatchUnsharded(t *testing.T) {
	sc := Scale{RandomDurSec: 60, RandomScenarios: 3}
	want := Figure16(sc).String() // no cache, no shards

	// Split the 9 cells across two shard passes into one store.
	dir := t.TempDir()
	cells := int64(0)
	for i := 0; i < 2; i++ {
		shard := sc
		shard.Results = cacheSession(t, dir)
		shard.Results.Shard = results.Shard{Index: i, Count: 2}
		Figure16(shard)
		_, c := shard.Results.Stats()
		cells += c
	}
	if cells != 9 {
		t.Fatalf("shards computed %d cells total, want 9", cells)
	}

	// Merge renders the full report purely from the store.
	merge := sc
	merge.Results = cacheSession(t, dir)
	merge.Results.Merge = true
	got := Figure16(merge).String()
	if h, c := merge.Results.Stats(); h != 9 || c != 0 {
		t.Fatalf("merge stats = %d hits, %d computed; want 9, 0", h, c)
	}
	if got != want {
		t.Fatalf("merged report differs from unsharded:\n--- unsharded ---\n%s\n--- merged ---\n%s", want, got)
	}
}

func TestScaleChangeInvalidatesCachedCells(t *testing.T) {
	dir := t.TempDir()
	sc := Scale{VideoSec: 15}
	sc.Results = cacheSession(t, dir)
	Table3(sc)
	if h, c := sc.Results.Stats(); h != 0 || c != 4 {
		t.Fatalf("cold stats = %d hits, %d computed; want 0, 4", h, c)
	}

	// Same store, longer playout: every cell must be recomputed.
	longer := Scale{VideoSec: 16}
	longer.Results = cacheSession(t, dir)
	Table3(longer)
	if h, c := longer.Results.Stats(); h != 0 || c != 4 {
		t.Fatalf("changed-scale stats = %d hits, %d computed; want full recompute", h, c)
	}

	// The original scale still hits its own records.
	again := Scale{VideoSec: 15}
	again.Results = cacheSession(t, dir)
	Table3(again)
	if h, c := again.Results.Stats(); h != 4 || c != 0 {
		t.Fatalf("original-scale stats = %d hits, %d computed; want all hits", h, c)
	}

	// Scale keys are per cell family: a knob Table 3 does not read
	// (WebRuns) must not invalidate its records.
	unrelated := Scale{VideoSec: 15, WebRuns: 99}
	unrelated.Results = cacheSession(t, dir)
	Table3(unrelated)
	if h, c := unrelated.Results.Stats(); h != 4 || c != 0 {
		t.Fatalf("unrelated-knob stats = %d hits, %d computed; want all hits", h, c)
	}
}

func TestShardedPointerRecordDriverMergesCleanly(t *testing.T) {
	// Figure 23 aggregates pointer records (*PageOutcome) after
	// collection; a shard pass leaves uncovered slots nil and the
	// aggregation must skip them rather than dereference (regression:
	// nil-pointer panic under -shard).
	sc := Scale{WildWebRuns: 2}
	want := Figure23(sc).String()

	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		shard := sc
		shard.Results = cacheSession(t, dir)
		shard.Results.Shard = results.Shard{Index: i, Count: 2}
		Figure23(shard) // must not panic on nil outcomes
	}
	merge := sc
	merge.Results = cacheSession(t, dir)
	merge.Results.Merge = true
	if got := Figure23(merge).String(); got != want {
		t.Fatalf("merged Figure 23 differs from unsharded:\n--- unsharded ---\n%s\n--- merged ---\n%s", want, got)
	}
}

func TestSharedCellFamiliesServeSiblingDrivers(t *testing.T) {
	// Figure 7 reads the same default-scheduler grid Figure 2 fills: at
	// equal scale the second driver must simulate nothing.
	dir := t.TempDir()
	sc := Scale{GridVideoSec: 10}
	sc.Results = cacheSession(t, dir)
	Figure2(sc)
	h0, c0 := sc.Results.Stats()
	if h0 != 0 || c0 != 36 {
		t.Fatalf("Figure2 cold stats = %d hits, %d computed", h0, c0)
	}
	Figure7(sc)
	h1, c1 := sc.Results.Stats()
	if h1-h0 != 36 || c1 != c0 {
		t.Fatalf("Figure7 after Figure2: %d hits, %d computed; want 36 hits, 0 computed", h1-h0, c1-c0)
	}
}
