package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestTraceCellDoesNotChangeOutput pins the observability tentpole from
// the outside: arming the flight recorder for one cell of a sweep must
// leave the rendered report byte-identical — the recorder observes, it
// never participates. The traced run must also actually capture
// something, or the equality is vacuous.
func TestTraceCellDoesNotChangeOutput(t *testing.T) {
	baseline := Table2(Quick).String()

	obs.SetTraceTarget("table2", 0)
	defer obs.ClearTraceTarget()
	traced := Table2(Quick).String()

	if traced != baseline {
		t.Errorf("tracing cell table2/0 changed the rendered report:\n--- untraced ---\n%s\n--- traced ---\n%s", baseline, traced)
	}
	rec := obs.CapturedCell()
	if rec == nil {
		t.Fatal("traced sweep captured no recorder (trace gate not reached from the driver path)")
	}
	if rec.Flight.Total() == 0 || rec.Packets.Total() == 0 || rec.Subflows.Total() == 0 {
		t.Errorf("captured recorder is missing streams: flight=%d packets=%d subflows=%d",
			rec.Flight.Total(), rec.Packets.Total(), rec.Subflows.Total())
	}
}

// TestDriverTraceExportsValidChromeTrace runs a traced cell through a
// real driver and validates the exported trace against the Chrome
// trace-event golden schema: a traceEvents array wrapped in an object,
// ph/ts/pid on every timed event, and non-decreasing timestamps.
func TestDriverTraceExportsValidChromeTrace(t *testing.T) {
	obs.SetTraceTarget("table2", 1)
	defer obs.ClearTraceTarget()
	_ = Table2(Quick)
	rec := obs.CapturedCell()
	if rec == nil {
		t.Fatal("traced sweep captured no recorder")
	}

	var buf bytes.Buffer
	kindName := func(k uint8) string { return sim.KindName(sim.EventKind(k)) }
	if err := rec.WriteChromeTrace(&buf, kindName); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 100 {
		t.Fatalf("only %d trace events for a full simulated cell; expected hundreds", len(doc.TraceEvents))
	}
	last := -1.0
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("traceEvents[%d] has no ph", i)
		}
		if ph == "M" {
			continue
		}
		ts, ok := ev["ts"].(float64)
		if !ok {
			t.Fatalf("traceEvents[%d] has no numeric ts", i)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("traceEvents[%d] has no pid", i)
		}
		if ts < last {
			t.Fatalf("traceEvents[%d].ts = %v decreases (prev %v)", i, ts, last)
		}
		last = ts
	}
}

// TestEventTelemetryDeterministic pins the run-report counters the
// observability layer exposes per experiment: the event and delivery
// deltas of one sweep must not depend on the worker count (they feed a
// machine-readable report that is diffed across runs).
func TestEventTelemetryDeterministic(t *testing.T) {
	type counts struct {
		processed, coalesced uint64
		delivered            int64
	}
	measure := func(workers int) counts {
		p0, c0 := sim.TotalEvents()
		d0 := netsim.TotalDelivered()
		sc := Quick
		sc.Workers = workers
		_ = Table2(sc)
		p1, c1 := sim.TotalEvents()
		d1 := netsim.TotalDelivered()
		return counts{p1 - p0, c1 - c0, d1 - d0}
	}
	one := measure(1)
	eight := measure(8)
	if one != eight {
		t.Errorf("event telemetry depends on worker count: -j 1 %+v, -j 8 %+v", one, eight)
	}
	if one.processed == 0 || one.delivered == 0 {
		t.Errorf("telemetry deltas are vacuous: %+v", one)
	}
}
