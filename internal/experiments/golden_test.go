package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// fig9QuickSHA256 pins the rendered Figure 9 quick-scale report. It was
// captured before the allocation-free simulation core landed (PR 3) and
// guards the refactor's byte-identity contract: any engine, link or
// subflow change that alters event ordering, RNG consumption or float
// arithmetic shows up here as a hash mismatch. Bump it only for an
// intentional model change (alongside the affected cache schema
// versions).
const fig9QuickSHA256 = "a28f3534390a8a3ebd0bba213f99893633b3f04c26c2e147bb9efc380329253c"

// TestFigure9QuickByteIdentical renders the full Figure 9 quick sweep at
// two worker counts and checks both against the pinned pre-refactor
// hash: the simulation core must produce byte-identical reports
// regardless of parallelism and across the pooled-timer rewrite.
func TestFigure9QuickByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole fig9 quick sweep")
	}
	for _, workers := range []int{1, 8} {
		for _, lanes := range []int{1, 4} {
			sc := Quick
			sc.Workers = workers
			sc.Lanes = lanes
			out := Figure9(sc).String()
			sum := sha256.Sum256([]byte(out))
			if got := hex.EncodeToString(sum[:]); got != fig9QuickSHA256 {
				t.Errorf("Workers=%d Lanes=%d: fig9 quick hash = %s, want %s (output no longer byte-identical to the pre-refactor core)",
					workers, lanes, got, fig9QuickSHA256)
			}
		}
	}
}
