package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mptcp"
	"repro/internal/trace"
	"repro/internal/web"
)

// Figure22Result is the §6.2 wild streaming study: nine runs sorted by
// WiFi RTT, default vs ECF average throughput.
type Figure22Result struct {
	Runs []trace.WildRun
	// WifiRTT/LteRTT are the mean measured RTTs per run (panel a).
	WifiRTT, LteRTT []time.Duration
	// Default/ECF are average per-chunk throughputs in Mbps (panel b).
	Default, ECF []float64
}

// wildStream runs one §6 streaming session with RTT jitter installed.
func wildStream(run trace.WildRun, scheduler string, videoSec float64) *StreamOutcome {
	return RunStreaming(StreamConfig{
		Paths:     run.Paths(),
		Scheduler: scheduler,
		VideoSec:  videoSec,
		PreRun: func(net *core.Network) {
			horizon := seconds(videoSec * 12)
			trace.InstallRTTJitter(net, 0, run.WifiRTT, 0.5, 500*time.Millisecond, run.Seed, horizon)
			trace.InstallRTTJitter(net, 1, run.LteRTT, 0.15, 500*time.Millisecond, run.Seed+99, horizon)
		},
	})
}

// Figure22 runs the nine wild streaming configurations under both
// schedulers — 18 independent sessions fanned across the worker pool.
func Figure22(sc Scale) *Figure22Result {
	runs := trace.WildStreamingRuns()
	res := &Figure22Result{
		Runs:    runs,
		WifiRTT: make([]time.Duration, len(runs)),
		LteRTT:  make([]time.Duration, len(runs)),
		Default: make([]float64, len(runs)),
		ECF:     make([]float64, len(runs)),
	}
	for i, run := range runs {
		res.WifiRTT[i] = run.WifiRTT
		res.LteRTT[i] = run.LteRTT
	}
	// Cell record: the session's average throughput. Seeds are part of
	// the wild run definitions (trace.WildStreamingRuns), fixed
	// topology data rather than per-job derivations.
	runCells(sc, sc.spec("fig22", 1, sc.videoKey()), len(runs)*2,
		func(k int) float64 {
			sched := "minrtt"
			if k%2 == 1 {
				sched = "ecf"
			}
			out := wildStream(runs[k/2], sched, sc.VideoSec)
			defer out.Release()
			return out.Result.AvgThroughputMbps()
		},
		func(k int, mbps float64) {
			if k%2 == 0 {
				res.Default[k/2] = mbps
			} else {
				res.ECF[k/2] = mbps
			}
		})
	return res
}

// MeanThroughput returns the across-run averages (paper: default 6.72,
// ECF 7.79 — a 16% improvement).
func (r *Figure22Result) MeanThroughput() (def, ecf float64) {
	return metrics.Summarize(r.Default).Mean, metrics.Summarize(r.ECF).Mean
}

// Improvement returns ECF's relative throughput gain.
func (r *Figure22Result) Improvement() float64 {
	def, ecf := r.MeanThroughput()
	if def <= 0 {
		return 0
	}
	return ecf/def - 1
}

// String renders both panels.
func (r *Figure22Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 22: Streaming Experiments in the Wild\n")
	t := &metrics.Table{Header: []string{"run", "WiFi RTT (ms)", "LTE RTT (ms)", "Default (Mbps)", "ECF (Mbps)"}}
	for i := range r.Runs {
		t.AddRow(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", r.WifiRTT[i].Milliseconds()),
			fmt.Sprintf("%d", r.LteRTT[i].Milliseconds()),
			fmt.Sprintf("%.2f", r.Default[i]),
			fmt.Sprintf("%.2f", r.ECF[i]))
	}
	b.WriteString(t.String())
	def, ecf := r.MeanThroughput()
	fmt.Fprintf(&b, "mean: default %.2f Mbps, ECF %.2f Mbps (%.0f%% improvement; paper: 16%%)\n",
		def, ecf, r.Improvement()*100)
	return b.String()
}

// Figure23Result is the §6.3 wild web study backing Figure 23 and
// Table 4.
type Figure23Result struct {
	Schedulers     []string
	Completion     map[string]*metrics.CDF
	OOO            map[string]*metrics.CDF
	MeanCompletion map[string]time.Duration
	MeanOOO        map[string]time.Duration
}

// Figure23 fetches the CNN-like page over wild paths for both schedulers
// across sc.WildWebRuns runs.
func Figure23(sc Scale) *Figure23Result {
	res := &Figure23Result{
		Schedulers:     []string{"minrtt", "ecf"},
		Completion:     make(map[string]*metrics.CDF),
		OOO:            make(map[string]*metrics.CDF),
		MeanCompletion: make(map[string]time.Duration),
		MeanOOO:        make(map[string]time.Duration),
	}
	runs := trace.WildWebRuns(sc.WildWebRuns)
	// One job per (scheduler, run) page fetch; aggregation walks the
	// outcomes in index order afterwards. Table 4 reads the same cell
	// family, so its pass is free once Figure 23's cells are cached.
	outs := make([]*PageOutcome, len(res.Schedulers)*len(runs))
	runCells(sc, sc.spec("fig23", 1, sc.wildWebKey()), len(outs),
		func(k int) *PageOutcome {
			return wildPage(runs[k%len(runs)], res.Schedulers[k/len(runs)])
		},
		func(k int, out *PageOutcome) { outs[k] = out })
	for si, s := range res.Schedulers {
		var comp, ooo []float64
		for ri := range runs {
			out := outs[si*len(runs)+ri]
			if out == nil {
				// Cell outside this run's shard; the merge pass sees
				// them all.
				continue
			}
			comp = append(comp, metrics.DurationsToSeconds(out.Completions)...)
			ooo = append(ooo, metrics.DurationsToSeconds(out.OOODelays)...)
		}
		res.Completion[s] = metrics.NewCDF(comp)
		res.OOO[s] = metrics.NewCDF(ooo)
		res.MeanCompletion[s] = time.Duration(res.Completion[s].Mean() * float64(time.Second))
		res.MeanOOO[s] = time.Duration(res.OOO[s].Mean() * float64(time.Second))
	}
	return res
}

// wildPage fetches the page once over one wild run's topology.
func wildPage(run trace.WildRun, scheduler string) *PageOutcome {
	net := core.NewNetwork(run.Paths())
	defer net.Close()
	trace.InstallRTTJitter(net, 0, run.WifiRTT, 0.5, 500*time.Millisecond, run.Seed, 10*time.Minute)
	trace.InstallRTTJitter(net, 1, run.LteRTT, 0.15, 500*time.Millisecond, run.Seed+99, 10*time.Minute)
	conns := make([]*mptcp.Conn, 6)
	for i := range conns {
		conns[i] = net.NewConn(core.ConnOptions{Scheduler: scheduler})
	}
	var res *web.PageResult
	web.FetchPage(net.Engine(), conns, web.PageConfig{
		Objects:   web.CNNPageObjects(run.Seed),
		ThinkTime: 30 * time.Millisecond,
	}, func(r *web.PageResult) { res = r })
	net.Run(10 * time.Minute)
	out := &PageOutcome{}
	if res != nil {
		out.Completions = res.CompletionTimes()
	}
	for _, c := range conns {
		out.OOODelays = append(out.OOODelays, c.Receiver().OOODelays()...)
	}
	return out
}

// String renders the CCDF quantiles for both metrics.
func (r *Figure23Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 23: Web Browsing Comparison in the Wild\n")
	t := &metrics.Table{Header: []string{"scheduler", "completion p50 (s)", "p99", "mean", "OOO p50 (s)", "p99", "mean"}}
	for _, s := range r.Schedulers {
		c, o := r.Completion[s], r.OOO[s]
		t.AddRow(s,
			fmt.Sprintf("%.3f", c.Quantile(0.5)),
			fmt.Sprintf("%.3f", c.Quantile(0.99)),
			fmt.Sprintf("%.3f", c.Mean()),
			fmt.Sprintf("%.3f", o.Quantile(0.5)),
			fmt.Sprintf("%.3f", o.Quantile(0.99)),
			fmt.Sprintf("%.3f", o.Mean()))
	}
	b.WriteString(t.String())
	return b.String()
}
