package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dash"
	"repro/internal/metrics"
	"repro/internal/results"
	"repro/internal/trace"
)

// gridSchema versions the grid cell record (GridCell) and the cell
// semantics of RunGrid; bump on any change to either.
const gridSchema = 1

// gridSpecName names the cell family of one scheduler's sweep, so every
// figure touching the same (scheduler, ablation) grid shares records.
func gridSpecName(scheduler string, disableIdleRestart bool) string {
	if disableIdleRestart {
		return "grid/" + scheduler + "/no-reset"
	}
	return "grid/" + scheduler
}

// GridCell is the outcome of one (WiFi, LTE) bandwidth cell.
type GridCell struct {
	WifiMbps, LteMbps float64
	// BitrateRatio is measured avg bitrate / ideal avg bitrate (the heat
	// map value of Figures 2, 9, 15; darker is better).
	BitrateRatio float64
	// ThroughputMbps is the mean per-chunk download throughput (Figure 6).
	ThroughputMbps float64
	// IdealThroughputMbps is the aggregate bandwidth (Figure 6's "Ideal").
	IdealThroughputMbps float64
	// FastFraction and IdealFraction are the traffic-split values of
	// Figures 7 and 10.
	FastFraction, IdealFraction float64
	// IWResets sums subflow window resets.
	IWResets int64
}

// GridResult is a full 6×6 sweep for one scheduler.
type GridResult struct {
	Scheduler string
	// Cells[i][j]: i indexes WiFi bandwidth, j indexes LTE bandwidth.
	Cells [][]GridCell
	// Bandwidths are the grid axis values.
	Bandwidths []float64
}

// addGrid registers one scheduler's 36-cell §5.2 sweep on the batch and
// returns the result structure, filled in when the batch runs. Keeping
// registration separate from execution lets multi-grid figures (6, 9,
// 10) flatten all their cells into a single pool fan-out.
func addGrid(b *results.Batch, scheduler string, sc Scale, disableIdleRestart bool) *GridResult {
	bws := trace.GridBandwidthsMbps
	res := &GridResult{Scheduler: scheduler, Bandwidths: bws}
	res.Cells = make([][]GridCell, len(bws))
	for i := range res.Cells {
		res.Cells[i] = make([]GridCell, len(bws))
	}
	n := len(bws)
	// The scalar compute and the lane runner share one config/derive
	// pair, so both execution strategies run the identical simulation
	// and produce the identical record for any cell.
	cfg := func(k int) StreamConfig {
		i, j := k/n, k%n
		return StreamConfig{
			WifiMbps:           bws[i],
			LteMbps:            bws[j],
			Scheduler:          scheduler,
			VideoSec:           sc.GridVideoSec,
			DisableIdleRestart: disableIdleRestart,
		}
	}
	from := func(k int, out *StreamOutcome) GridCell {
		defer out.Release()
		i, j := k/n, k%n
		wifi, lte := bws[i], bws[j]
		ideal := dash.IdealBitrateMbps(wifi+lte, dash.StandardLadder)
		cell := GridCell{
			WifiMbps:            wifi,
			LteMbps:             lte,
			ThroughputMbps:      out.Result.AvgThroughputMbps(),
			IdealThroughputMbps: wifi + lte,
			FastFraction:        out.FastFraction,
			IdealFraction:       out.IdealFraction,
			IWResets:            out.IWResets,
		}
		if ideal > 0 {
			cell.BitrateRatio = out.Result.AvgBitrateMbps() / ideal
			if cell.BitrateRatio > 1 {
				cell.BitrateRatio = 1
			}
		}
		return cell
	}
	opt := results.LaneOpts[GridCell]{
		Lanes: sc.Lanes,
		Run:   streamingLaneRunner(sc.Lanes, cfg, from),
		// A cell's event count grows with aggregate bandwidth × playout
		// length, so the high-bandwidth corner dominates sweep time;
		// starting there shrinks the parallel tail.
		Cost: func(k int) float64 { return (bws[k/n] + bws[k%n]) * sc.GridVideoSec },
	}
	results.AddLanes(b, sc.lanedSpec(gridSpecName(scheduler, disableIdleRestart), gridSchema, sc.gridKey()), n*n, opt,
		func(k int) GridCell { return from(k, RunStreaming(cfg(k))) },
		func(k int, c GridCell) { res.Cells[k/n][k%n] = c })
	return res
}

// RunGrid sweeps the §5.2 bandwidth grid for one scheduler, fanning the
// 36 independent cells across the scale's worker pool.
// disableIdleRestart supports the Figure 6 ablation.
func RunGrid(scheduler string, sc Scale, disableIdleRestart bool) *GridResult {
	b := newBatch(sc)
	res := addGrid(b, scheduler, sc, disableIdleRestart)
	runBatch(b)
	return res
}

// Heatmap converts the sweep to a bitrate-ratio heat map (rows: LTE,
// cols: WiFi — the paper's axes).
func (g *GridResult) Heatmap() *metrics.Heatmap {
	labels := make([]string, len(g.Bandwidths))
	for i, b := range g.Bandwidths {
		labels[i] = fmtMbps(b)
	}
	h := metrics.NewHeatmap(
		fmt.Sprintf("Ratio of Measured vs. Ideal Bit Rate — %s (darker is better)", g.Scheduler),
		labels, labels)
	for i := range g.Bandwidths { // wifi (cols)
		for j := range g.Bandwidths { // lte (rows)
			h.Set(j, i, g.Cells[i][j].BitrateRatio)
		}
	}
	return h
}

// Figure2Result is the default-scheduler heat map of §3.1.
type Figure2Result struct {
	Grid *GridResult
}

// Figure2 reproduces the motivation heat map: the default scheduler's
// achieved/ideal bitrate ratio over the 6×6 grid.
func Figure2(sc Scale) *Figure2Result {
	return &Figure2Result{Grid: RunGrid("minrtt", sc, false)}
}

// String renders both numeric and shaded forms.
func (r *Figure2Result) String() string {
	h := r.Grid.Heatmap()
	return "Figure 2: " + h.String() + h.Shade()
}

// Figure6Result compares throughput with and without the CWND reset.
type Figure6Result struct {
	Bandwidths []float64
	WithReset  *GridResult
	NoReset    *GridResult
}

// Figure6 reruns the default-scheduler grid with idle restart disabled;
// both grids' cells run through one shared pool.
func Figure6(sc Scale) *Figure6Result {
	b := newBatch(sc)
	res := &Figure6Result{
		Bandwidths: trace.GridBandwidthsMbps,
		WithReset:  addGrid(b, "minrtt", sc, false),
		NoReset:    addGrid(b, "minrtt", sc, true),
	}
	runBatch(b)
	return res
}

// String renders throughput rows per bandwidth pair.
func (r *Figure6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: Throughput w/ and w/o CWND reset (Default scheduler)\n")
	t := &metrics.Table{Header: []string{"WiFi-LTE (Mbps)", "w/ reset", "w/o reset", "Ideal"}}
	for i, wifi := range r.Bandwidths {
		for j, lte := range r.Bandwidths {
			t.AddRow(
				fmtMbps(wifi)+"-"+fmtMbps(lte),
				fmt.Sprintf("%.2f", r.WithReset.Cells[i][j].ThroughputMbps),
				fmt.Sprintf("%.2f", r.NoReset.Cells[i][j].ThroughputMbps),
				fmt.Sprintf("%.2f", wifi+lte),
			)
		}
	}
	b.WriteString(t.String())
	return b.String()
}

// Figure7Result is the default scheduler's traffic split vs ideal.
type Figure7Result struct {
	Grid *GridResult
}

// Figure7 reports the fraction of traffic on the fast subflow under the
// default scheduler across the grid.
func Figure7(sc Scale) *Figure7Result {
	return &Figure7Result{Grid: RunGrid("minrtt", sc, false)}
}

// String renders fraction rows.
func (r *Figure7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: Fraction of Traffic on Fast Subflow (Default)\n")
	t := &metrics.Table{Header: []string{"WiFi-LTE (Mbps)", "Default", "Ideal"}}
	for i, wifi := range r.Grid.Bandwidths {
		for j, lte := range r.Grid.Bandwidths {
			c := r.Grid.Cells[i][j]
			t.AddRow(fmtMbps(wifi)+"-"+fmtMbps(lte),
				fmt.Sprintf("%.3f", c.FastFraction),
				fmt.Sprintf("%.3f", c.IdealFraction))
		}
	}
	b.WriteString(t.String())
	return b.String()
}

// Figure9Result is the four-scheduler heat map comparison of §5.2.1.
type Figure9Result struct {
	Grids map[string]*GridResult
	Order []string
}

// Figure9 sweeps the grid for default, ECF, DAPS and BLEST. All four
// grids are flattened into one job list served by a single shared pool,
// so the 144 cells saturate the workers instead of draining the pool
// four times (ROADMAP item).
func Figure9(sc Scale) *Figure9Result {
	order := []string{"minrtt", "ecf", "daps", "blest"}
	res := &Figure9Result{Grids: make(map[string]*GridResult), Order: order}
	b := newBatch(sc)
	for _, s := range order {
		res.Grids[s] = addGrid(b, s, sc, false)
	}
	runBatch(b)
	return res
}

// MeanRatio returns the grid-average bitrate ratio per scheduler — a
// scalar summary of "who is darker".
func (r *Figure9Result) MeanRatio(scheduler string) float64 {
	return r.Grids[scheduler].Heatmap().Mean()
}

// String renders all four heat maps.
func (r *Figure9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9: Measured/Ideal Bit Rate by Scheduler (darker is better)\n")
	for _, s := range r.Order {
		h := r.Grids[s].Heatmap()
		b.WriteString(h.String())
		b.WriteString(h.Shade())
		b.WriteString("\n")
	}
	return b.String()
}

// Figure10Result compares the BLEST/ECF traffic splits against ideal.
type Figure10Result struct {
	Bandwidths []float64
	BLEST      *GridResult
	ECF        *GridResult
}

// Figure10 reports traffic splits for the two wait-capable schedulers,
// both grids sharing one pool.
func Figure10(sc Scale) *Figure10Result {
	b := newBatch(sc)
	res := &Figure10Result{
		Bandwidths: trace.GridBandwidthsMbps,
		BLEST:      addGrid(b, "blest", sc, false),
		ECF:        addGrid(b, "ecf", sc, false),
	}
	runBatch(b)
	return res
}

// String renders the split rows.
func (r *Figure10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10: Fraction of Traffic on Fast Subflow (Streaming)\n")
	t := &metrics.Table{Header: []string{"WiFi-LTE (Mbps)", "BLEST", "ECF", "Ideal"}}
	for i, wifi := range r.Bandwidths {
		for j, lte := range r.Bandwidths {
			t.AddRow(fmtMbps(wifi)+"-"+fmtMbps(lte),
				fmt.Sprintf("%.3f", r.BLEST.Cells[i][j].FastFraction),
				fmt.Sprintf("%.3f", r.ECF.Cells[i][j].FastFraction),
				fmt.Sprintf("%.3f", r.ECF.Cells[i][j].IdealFraction))
		}
	}
	b.WriteString(t.String())
	return b.String()
}

// Figure15Result is the four-subflow study of §5.2.5: 0.3 Mbps WiFi,
// varying LTE, two subflows per interface.
type Figure15Result struct {
	LteBandwidths []float64
	DefaultRatio  []float64
	ECFRatio      []float64
}

// Figure15 compares default vs ECF with four subflows; the 12
// (bandwidth, scheduler) cells run as one parallel batch.
func Figure15(sc Scale) *Figure15Result {
	bws := trace.GridBandwidthsMbps
	res := &Figure15Result{
		LteBandwidths: bws,
		DefaultRatio:  make([]float64, len(bws)),
		ECFRatio:      make([]float64, len(bws)),
	}
	schedulers := []string{"minrtt", "ecf"}
	cfg := func(k int) StreamConfig {
		li, si := k/len(schedulers), k%len(schedulers)
		return StreamConfig{
			WifiMbps:        0.3,
			LteMbps:         bws[li],
			Scheduler:       schedulers[si],
			VideoSec:        sc.GridVideoSec,
			SubflowsPerPath: 2,
		}
	}
	from := func(k int, out *StreamOutcome) float64 {
		defer out.Release()
		lte := bws[k/len(schedulers)]
		ideal := dash.IdealBitrateMbps(0.3+lte, dash.StandardLadder)
		ratio := out.Result.AvgBitrateMbps() / ideal
		if ratio > 1 {
			ratio = 1
		}
		return ratio
	}
	runCellsLanes(sc, sc.lanedSpec("fig15", 1, sc.gridKey()), len(bws)*len(schedulers),
		results.LaneOpts[float64]{
			Lanes: sc.Lanes,
			Run:   streamingLaneRunner(sc.Lanes, cfg, from),
			Cost:  func(k int) float64 { return (0.3 + bws[k/len(schedulers)]) * sc.GridVideoSec },
		},
		func(k int) float64 { return from(k, RunStreaming(cfg(k))) },
		func(k int, ratio float64) {
			li, si := k/len(schedulers), k%len(schedulers)
			if si == 0 {
				res.DefaultRatio[li] = ratio
			} else {
				res.ECFRatio[li] = ratio
			}
		})
	return res
}

// String renders the two rows of the strip heat map.
func (r *Figure15Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 15: Measured/Ideal Bit Rate with 4 Subflows (0.3 Mbps WiFi)\n")
	t := &metrics.Table{Header: []string{"LTE (Mbps)"}}
	for _, bw := range r.LteBandwidths {
		t.Header = append(t.Header, fmtMbps(bw))
	}
	def := []string{"Default"}
	ecf := []string{"ECF"}
	for i := range r.LteBandwidths {
		def = append(def, fmt.Sprintf("%.2f", r.DefaultRatio[i]))
		ecf = append(ecf, fmt.Sprintf("%.2f", r.ECFRatio[i]))
	}
	t.AddRow(ecf...)
	t.AddRow(def...)
	b.WriteString(t.String())
	return b.String()
}
