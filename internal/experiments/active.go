package experiments

import "repro/internal/results"

// allDrivers runs every experiment driver in the catalog, in catalog
// order. It exists for EnumerateActive: keep it in sync with the
// ecfbench catalog (the prune-coverage test in this package catches a
// driver whose records are not enumerated).
var allDrivers = []func(Scale){
	func(Scale) { Table1() },
	func(sc Scale) { Table2(sc) },
	func(sc Scale) { Table3(sc) },
	func(sc Scale) { Table4(sc) },
	func(sc Scale) { Figure1(sc) },
	func(sc Scale) { Figure2(sc) },
	func(sc Scale) { Figure3(sc) },
	func(sc Scale) { Figure5(sc) },
	func(sc Scale) { Figure6(sc) },
	func(sc Scale) { Figure7(sc) },
	func(sc Scale) { Figure9(sc) },
	func(sc Scale) { Figure10(sc) },
	func(sc Scale) { Figure11(sc) },
	func(sc Scale) { Figure12(sc) },
	func(sc Scale) { Figure13(sc) },
	func(sc Scale) { Figure14(sc) },
	func(sc Scale) { Figure15(sc) },
	func(sc Scale) { Figure16(sc) },
	func(sc Scale) { Figure17(sc) },
	func(sc Scale) { Figure18(sc) },
	func(sc Scale) { Figure19(sc) },
	func(sc Scale) { Figure20(sc) },
	func(sc Scale) { Figure21(sc) },
	func(sc Scale) { Figure22(sc) },
	func(sc Scale) { Figure23(sc) },
}

// EnumerateActive returns the record groups — (experiment, scale,
// schema) triples — that a full catalog run at the given scale reads
// and writes, without simulating anything: every driver runs under an
// enumerating session, which notes each cell's spec and skips the cell.
// Because the specs come from the same code paths a real run uses, the
// result cannot drift from the drivers; it is the active matrix that
// ecfbench -cache-prune keeps.
func EnumerateActive(sc Scale) []results.Group {
	ses := &results.Session{Enumerate: true}
	sc.Results = ses
	sc.Workers = 1 // enumerate jobs are no-ops; skip the pool fan-out
	for _, run := range allDrivers {
		run(sc)
	}
	return ses.ActiveGroups()
}

// EnumerateCells returns the full cell work list of a catalog run at
// the given scale — one (spec, cell count) entry per record family,
// derived by the same enumerating-session trick as EnumerateActive, so
// it cannot drift from the drivers. Expanding each family through
// Spec.Key yields every cell key exactly once; this is the work list a
// sweep coordinator (cmd/ecfd) hands out as leases.
func EnumerateCells(sc Scale) []results.CellFamily {
	ses := &results.Session{Enumerate: true}
	sc.Results = ses
	sc.Workers = 1
	for _, run := range allDrivers {
		run(sc)
	}
	return ses.ActiveCellFamilies()
}

// RunCatalog runs every driver in the catalog for its side effects on
// sc.Results, discarding the rendered reports — the join-mode worker
// pass: under a session whose Claims gate covers the worker's leased
// cells, exactly those cells are computed and uploaded, everything
// else is skipped, and the partially-filled result structures are
// never rendered.
func RunCatalog(sc Scale) {
	for _, run := range allDrivers {
		run(sc)
	}
}
