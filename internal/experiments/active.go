package experiments

import "repro/internal/results"

// allDrivers runs every experiment driver in the catalog, in catalog
// order. It exists for EnumerateActive: keep it in sync with the
// ecfbench catalog (the prune-coverage test in this package catches a
// driver whose records are not enumerated).
var allDrivers = []func(Scale){
	func(Scale) { Table1() },
	func(sc Scale) { Table2(sc) },
	func(sc Scale) { Table3(sc) },
	func(sc Scale) { Table4(sc) },
	func(sc Scale) { Figure1(sc) },
	func(sc Scale) { Figure2(sc) },
	func(sc Scale) { Figure3(sc) },
	func(sc Scale) { Figure5(sc) },
	func(sc Scale) { Figure6(sc) },
	func(sc Scale) { Figure7(sc) },
	func(sc Scale) { Figure9(sc) },
	func(sc Scale) { Figure10(sc) },
	func(sc Scale) { Figure11(sc) },
	func(sc Scale) { Figure12(sc) },
	func(sc Scale) { Figure13(sc) },
	func(sc Scale) { Figure14(sc) },
	func(sc Scale) { Figure15(sc) },
	func(sc Scale) { Figure16(sc) },
	func(sc Scale) { Figure17(sc) },
	func(sc Scale) { Figure18(sc) },
	func(sc Scale) { Figure19(sc) },
	func(sc Scale) { Figure20(sc) },
	func(sc Scale) { Figure21(sc) },
	func(sc Scale) { Figure22(sc) },
	func(sc Scale) { Figure23(sc) },
}

// EnumerateActive returns the record groups — (experiment, scale,
// schema) triples — that a full catalog run at the given scale reads
// and writes, without simulating anything: every driver runs under an
// enumerating session, which notes each cell's spec and skips the cell.
// Because the specs come from the same code paths a real run uses, the
// result cannot drift from the drivers; it is the active matrix that
// ecfbench -cache-prune keeps.
func EnumerateActive(sc Scale) []results.Group {
	ses := &results.Session{Enumerate: true}
	sc.Results = ses
	sc.Workers = 1 // enumerate jobs are no-ops; skip the pool fan-out
	for _, run := range allDrivers {
		run(sc)
	}
	return ses.ActiveGroups()
}
