// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver runs the simulation matrix for its
// experiment and returns a result type whose String method prints the
// same rows/series the paper reports. README.md carries the experiment
// index.
//
// Every driver enumerates its independent simulation cells as jobs for
// the internal/runner worker pool and collects results into pre-sized,
// cell-indexed storage, so output is byte-identical for any Workers
// setting.
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dash"
	"repro/internal/metrics"
	"repro/internal/mptcp"
	"repro/internal/results"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/tcp"
)

// Scale sets experiment sizes. The paper streams a 20-minute playout per
// cell and repeats everything 5-30 times on a physical testbed; the Full
// scale trades that down to what a laptop regenerates in minutes while
// preserving every qualitative shape, and Quick keeps unit tests fast.
type Scale struct {
	// VideoSec is the playout length for single-cell streaming studies.
	VideoSec float64
	// GridVideoSec is the per-cell playout length for 6×6 heat maps.
	GridVideoSec float64
	// RandomDurSec is the §5.3 scenario length.
	RandomDurSec float64
	// RandomScenarios is the §5.3 scenario count.
	RandomScenarios int
	// WebRuns repeats each wget/page configuration.
	WebRuns int
	// WildWebRuns is the §6.3 run count.
	WildWebRuns int
	// Workers bounds how many simulation cells run concurrently (the
	// ecfbench -j flag). Zero selects GOMAXPROCS. Every cell is an
	// independent simulation seeded by its own index, so results are
	// byte-identical for any worker count.
	Workers int
	// Results is the per-run cache/shard policy (the ecfbench
	// -cache-dir/-shard/-merge flags). Nil computes every cell
	// in-process with no persistence. Like Workers it never affects
	// cell content, only where records come from, so it is excluded
	// from cache keys.
	Results *results.Session
	// Progress, when non-nil, observes cell completion (the ecfbench
	// -progress flag): called after every finished cell with the count
	// completed so far and the batch total, possibly from several
	// worker goroutines at once. Like Workers and Results it never
	// affects cell content and is excluded from cache keys.
	Progress func(done, total int)
	// Lanes is the lane-batched execution width (the ecfbench -lanes
	// flag): each worker drives up to Lanes cache-miss cells of one
	// family in lockstep through a sim.LaneEngine. 0 or 1 selects the
	// scalar path. Only the grid-family drivers opt in; other families
	// fall back to scalar (reported once per family through
	// LaneFallbackLog). Like Workers, lanes never affect cell content —
	// the lane contract preserves per-cell dispatch order exactly — so
	// it is excluded from cache keys.
	Lanes int
	// LaneFallbackLog, when non-nil, is told once per cell family that
	// stayed scalar although Lanes > 1 requested lane batching
	// (unsupported family, armed cell trace, or per-cell timeout).
	LaneFallbackLog func(family string)
}

// Scale-key helpers: each cell family's cache key encodes only the
// Scale fields its cells actually read, so changing one knob (say
// WebRuns) invalidates only the families depending on it and leaves
// the expensive grid/streaming records valid. Workers and Results are
// excluded everywhere: the determinism contract guarantees they never
// change a cell's value. A driver that starts reading an additional
// Scale field must widen its key (or bump its schema).
func (sc Scale) videoKey() string { return fmt.Sprintf("v%g", sc.VideoSec) }
func (sc Scale) gridKey() string  { return fmt.Sprintf("gv%g", sc.GridVideoSec) }
func (sc Scale) randomKey() string {
	return fmt.Sprintf("rd%g,rs%d", sc.RandomDurSec, sc.RandomScenarios)
}
func (sc Scale) webKey() string     { return fmt.Sprintf("wr%d", sc.WebRuns) }
func (sc Scale) wildWebKey() string { return fmt.Sprintf("ww%d", sc.WildWebRuns) }

// spec builds the cache spec for one cell family. The name labels the
// family; drivers that share cells (the grid figures, Figure 20/21,
// Table 4 via Figure 23) pass the same name and share records. schema
// is the family's record-schema version — bumped whenever the driver's
// cell semantics change — and scaleKey is the relevant scale-key
// helper's output.
func (sc Scale) spec(experiment string, schema int, scaleKey string) results.Spec {
	// Every scalar-only family builds its spec here, so this is the
	// chokepoint for reporting that lane batching was requested but the
	// family doesn't support it. (The log callback dedupes: shared
	// families are registered by several figures.)
	if sc.Lanes > 1 && sc.LaneFallbackLog != nil {
		sc.LaneFallbackLog(experiment)
	}
	return results.Spec{Experiment: experiment, Schema: schema, Scale: scaleKey}
}

// lanedSpec is spec for the families that do support lane batching.
func (sc Scale) lanedSpec(experiment string, schema int, scaleKey string) results.Spec {
	return results.Spec{Experiment: experiment, Schema: schema, Scale: scaleKey}
}

// Full is the bench-scale profile.
var Full = Scale{
	VideoSec:        240,
	GridVideoSec:    90,
	RandomDurSec:    240,
	RandomScenarios: 10,
	WebRuns:         5,
	WildWebRuns:     30,
}

// Quick is the test-scale profile.
var Quick = Scale{
	VideoSec:        60,
	GridVideoSec:    30,
	RandomDurSec:    80,
	RandomScenarios: 3,
	WebRuns:         2,
	WildWebRuns:     6,
}

// StreamConfig parameterizes one streaming run.
type StreamConfig struct {
	// WifiMbps/LteMbps set the regulated bandwidths (ignored when Paths
	// is set).
	WifiMbps, LteMbps float64
	// Paths overrides the topology (wild runs).
	Paths []core.PathSpec
	// Scheduler is the registered scheduler name.
	Scheduler string
	// SchedulerInstance overrides Scheduler with a concrete instance
	// (ablations tweak scheduler parameters this way).
	SchedulerInstance mptcp.Scheduler
	// VideoSec is the playout length.
	VideoSec float64
	// SubflowsPerPath (default 1; §5.2.5 uses 2).
	SubflowsPerPath int
	// DisableIdleRestart turns off the RFC 2861 CWND reset (Figure 6).
	DisableIdleRestart bool
	// CC selects the congestion controller (default "lia").
	CC string
	// ABR overrides the adaptation algorithm.
	ABR dash.ABR
	// SampleInterval enables CWND/send-buffer trace sampling.
	SampleInterval time.Duration
	// PreRun runs after network construction, before the player starts
	// (jitter installation, bandwidth schedules).
	PreRun func(net *core.Network)
}

// cwndSampler periodically records every subflow's CWND and send-buffer
// occupancy into the streaming outcome's traces until the player
// finishes.
type cwndSampler struct {
	eng      *sim.Engine
	subflows []*tcp.Subflow
	out      *StreamOutcome
	done     *bool
	interval time.Duration
}

// kindCwndSample dispatches a trace sample through the typed event
// table.
var kindCwndSample sim.EventKind

func init() {
	kindCwndSample = sim.RegisterKind("experiments.cwndSample", func(a any) { a.(*cwndSampler).sample() })
}

func (s *cwndSampler) sample() {
	if *s.done {
		return
	}
	for i, sf := range s.subflows {
		s.out.CwndTraces[i].Add(s.eng.Now(), sf.CwndSegments())
		s.out.SndbufTraces[i].Add(s.eng.Now(), float64(sf.InflightBytes()))
	}
	s.eng.ScheduleEvent(s.interval, kindCwndSample, s)
}

// StreamOutcome is the telemetry of one streaming run.
type StreamOutcome struct {
	// Result is the player-side session record.
	Result *dash.Result
	// Finished reports whether the playout downloaded fully within the
	// simulation horizon.
	Finished bool
	// FastFraction is the share of received bytes carried by the
	// fast (higher-bandwidth) path; IdealFraction is the bandwidth share.
	FastFraction  float64
	IdealFraction float64
	// IWResets counts initial-window resets summed over subflows
	// (Table 3); FastIWResets counts only the fast path's.
	IWResets     int64
	FastIWResets int64
	// OOODelays are the receiver's reordering samples, copied into a
	// caller-owned buffer drawn from the metrics sample pool before the
	// network is closed (the receiver's own series is reused by the
	// next cell). Hand the buffer back with Release once the samples
	// are consumed.
	OOODelays []time.Duration
	// CwndTraces/SndbufTraces hold one series per subflow when sampling
	// was enabled (Figures 3, 11, 12).
	CwndTraces   []*metrics.TimeSeries
	SndbufTraces []*metrics.TimeSeries
	// SubflowNames labels the traces.
	SubflowNames []string
}

// Release hands the outcome's pooled telemetry buffers back to the
// metrics sample pool. Call it when the outcome's samples have been
// consumed (summarized, converted, rendered); the outcome must not be
// used afterwards. Dropping an outcome without releasing it is safe —
// the buffers are then simply collected instead of reused.
func (o *StreamOutcome) Release() {
	metrics.PutDurations(o.OOODelays)
	o.OOODelays = nil
}

// fastPathIndex returns which path is "fast" per the paper's definition:
// the higher-bandwidth one, with the lower-base-RTT WiFi breaking ties.
func fastPathIndex(wifiMbps, lteMbps float64) int {
	if lteMbps > wifiMbps {
		return 1
	}
	return 0
}

// streamRun is one streaming cell held open between setup and
// collection — the lane-batched execution unit. startStreaming builds
// the network and schedules the player's first events; the caller then
// drives the engine to Horizon (scalar RunUntil, or interleaved with
// other lanes through sim.LaneEngine) and calls finish to gather the
// outcome and close the network. RunStreaming is the scalar
// composition of the three steps; the lane path is byte-identical to
// it because the split moves no work across the run boundary.
type streamRun struct {
	specs   []core.PathSpec
	net     *core.Network
	conn    *mptcp.Conn
	out     *StreamOutcome
	done    bool
	Horizon time.Duration
}

// RunStreaming executes one streaming session and gathers the outcome.
func RunStreaming(cfg StreamConfig) *StreamOutcome {
	r := startStreaming(cfg)
	r.net.Run(r.Horizon)
	return r.finish()
}

// startStreaming builds one streaming cell on a pooled network and
// schedules its initial events, stopping just short of running the
// engine.
func startStreaming(cfg StreamConfig) *streamRun {
	specs := cfg.Paths
	if specs == nil {
		specs = core.DefaultPaths(cfg.WifiMbps, cfg.LteMbps)
	}
	net := core.NewNetwork(specs)
	eng := net.Engine()

	connCfg := mptcp.DefaultConfig(0)
	if cfg.DisableIdleRestart {
		connCfg.IdleRestart = false
	}
	conn := net.NewConn(core.ConnOptions{
		Scheduler:         cfg.Scheduler,
		SchedulerInstance: cfg.SchedulerInstance,
		CongestionControl: cfg.CC,
		SubflowsPerPath:   cfg.SubflowsPerPath,
		Config:            &connCfg,
	})

	if cfg.PreRun != nil {
		cfg.PreRun(net)
	}

	videoSec := cfg.VideoSec
	if videoSec <= 0 {
		videoSec = 120
	}
	player := dash.NewPlayer(eng, conn, dash.PlayerConfig{
		VideoSeconds: videoSec,
		ABR:          cfg.ABR,
	})

	r := &streamRun{specs: specs, net: net, conn: conn, out: &StreamOutcome{}}
	player.Start(func(*dash.Result) {
		r.done = true
		r.out.Finished = true
	})
	r.out.Result = player.Result()

	// Optional periodic sampling of CWND and subflow send-buffer
	// occupancy.
	if cfg.SampleInterval > 0 {
		subflows := conn.Subflows()
		out := r.out
		out.CwndTraces = make([]*metrics.TimeSeries, len(subflows))
		out.SndbufTraces = make([]*metrics.TimeSeries, len(subflows))
		out.SubflowNames = make([]string, len(subflows))
		for i, sf := range subflows {
			out.CwndTraces[i] = &metrics.TimeSeries{}
			out.SndbufTraces[i] = &metrics.TimeSeries{}
			out.SubflowNames[i] = sf.Name()
		}
		s := &cwndSampler{eng: eng, subflows: subflows, out: out, done: &r.done, interval: cfg.SampleInterval}
		eng.ScheduleEvent(0, kindCwndSample, s)
	}

	r.Horizon = time.Duration((videoSec*12 + 300) * float64(time.Second))
	return r
}

// finish collects the cell's telemetry and closes its network. The
// engine must have been driven to the run's Horizon first.
func (r *streamRun) finish() *StreamOutcome {
	specs, conn, out := r.specs, r.conn, r.out
	defer r.net.Close()
	nPaths := len(specs)
	fastPath := fastPathIndex(specs[0].RateMbps, specs[1].RateMbps)
	var fastBytes, totalBytes int64
	for id, b := range conn.Receiver().SubflowBytes() {
		totalBytes += b
		if id%nPaths == fastPath {
			fastBytes += b
		}
	}
	if totalBytes > 0 {
		out.FastFraction = float64(fastBytes) / float64(totalBytes)
	}
	sumBW := specs[0].RateMbps + specs[1].RateMbps
	if sumBW > 0 {
		fastBW := specs[fastPath].RateMbps
		out.IdealFraction = fastBW / sumBW
	}
	for id, sf := range conn.Subflows() {
		st := sf.Stats()
		out.IWResets += st.IWResets
		if id%nPaths == fastPath {
			out.FastIWResets += st.IWResets
		}
	}
	// Copy the reordering samples out of the pooled receiver: once the
	// Close above runs, the receiver (and its series) belongs to the
	// pool and may be reset by another cell.
	out.OOODelays = metrics.CopyDurations(conn.Receiver().OOODelays())
	return out
}

// newBatch starts a cell batch on the scale's worker pool under its
// cache/shard policy. Drivers register cells with results.Add and
// execute them with runBatch; nested sweeps (Figure 9's four grids)
// register everything first so one pool serves the whole flattened
// matrix.
func newBatch(sc Scale) *results.Batch {
	pool := runner.New(sc.Workers)
	pool.OnProgress = sc.Progress
	return results.NewBatch(pool, sc.Results)
}

// runBatch executes the batch's cells. Each cell must derive everything
// (topology, seeds, parameters) from its index and collect into
// pre-sized storage, so aggregation is order-independent and the
// sweep's output depends on neither sc.Workers nor cache state.
// Operational cache failures (store I/O, merge misses) surface as a
// *results.FatalError panic, since drivers return no errors; the
// ecfbench harness recovers it for a clean exit.
func runBatch(b *results.Batch) {
	if err := b.Run(context.Background()); err != nil {
		panic(&results.FatalError{Err: err})
	}
}

// runCells runs the n cells of a single-spec experiment: compute(i)
// produces cell i's serializable record, collect(i, v) places it in the
// driver's result structure. Caching, sharding and merge apply per the
// scale's Results session.
func runCells[T any](sc Scale, spec results.Spec, n int, compute func(i int) T, collect func(i int, v T)) {
	b := newBatch(sc)
	results.Add(b, spec, n, compute, collect)
	runBatch(b)
}

// runCellsLanes is runCells for a lane-capable family: cache misses run
// through opt.Run in groups of sc.Lanes when lane batching is on.
func runCellsLanes[T any](sc Scale, spec results.Spec, n int, opt results.LaneOpts[T], compute func(i int) T, collect func(i int, v T)) {
	b := newBatch(sc)
	results.AddLanes(b, spec, n, opt, compute, collect)
	runBatch(b)
}

// runSeed derives the RNG seed for repetition run of cell cell of the
// named experiment — runner.SeedRun, so streams stay disjoint across
// experiments even at equal indexes (ROADMAP item). Drivers that
// compare schedulers over shared randomness pass a cell index that
// excludes the scheduler, preserving the paper's paired design.
func runSeed(experiment string, cell, run int) uint64 {
	return runner.SeedRun(experiment, cell, run)
}

// seconds converts a float of seconds to a duration.
func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// fmtMbps labels grid axes.
func fmtMbps(v float64) string {
	switch {
	case v == float64(int64(v)):
		return itoa(int64(v))
	default:
		// one decimal, no fmt dependency creep — small helper
		whole := int64(v)
		frac := int64(v*10+0.5) - whole*10
		return itoa(whole) + "." + itoa(frac)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
