package experiments

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mptcp"
	"repro/internal/trace"
	"repro/internal/web"
)

// The pooled-network contract: a simulation cell's results depend only
// on its own parameters, never on what previously ran on the worker's
// pooled object graph. These tests run a reference cell per scheduler,
// then interleave deliberately dissimilar "polluter" cells — different
// topology shapes, connection counts, subflow fan-outs, congestion
// controllers, loss and jitter — and require the reference results to
// stay byte-identical. A Reset that misses a field (a stale hysteresis
// flag, a leftover telemetry sample, an un-cleared window) shows up
// here as a drifted fingerprint. The golden fig9 hash test additionally
// pins pooled output against the pre-pooling (fresh-construction)
// capture, so repetition-invariance here plus the golden hash together
// give pooled == fresh.

// isolationFingerprint runs one small streaming cell and renders every
// outcome channel — per-chunk records, reorder telemetry, counters —
// into a string suitable for exact comparison.
func isolationFingerprint(scheduler string) string {
	out := RunStreaming(StreamConfig{
		WifiMbps:  0.7,
		LteMbps:   4.2,
		Scheduler: scheduler,
		VideoSec:  12,
	})
	defer out.Release()
	var b strings.Builder
	fmt.Fprintf(&b, "fast=%.12f ideal=%.12f iw=%d fiw=%d fin=%v\n",
		out.FastFraction, out.IdealFraction, out.IWResets, out.FastIWResets, out.Finished)
	for _, c := range out.Result.Chunks {
		fmt.Fprintf(&b, "chunk %d rep=%s req=%d done=%d tp=%.9f diff=%d both=%v\n",
			c.Index, c.Rep.Name, c.RequestedAt, c.CompletedAt, c.ThroughputMbps, c.LastPacketDiff, c.BothPaths)
	}
	for _, d := range out.OOODelays {
		fmt.Fprintf(&b, "%d,", d)
	}
	return b.String()
}

// polluters are cells chosen to stress every reset path with state as
// unlike the reference cell as possible.
var polluters = []struct {
	name string
	run  func()
}{
	{"six-conn lossy page fetch", func() {
		net := core.NewNetwork([]core.PathSpec{
			{Name: "wifi", RateMbps: 2, BaseRTT: core.WiFiBaseRTT, LossRate: 0.01, Seed: 7},
			{Name: "lte", RateMbps: 6, BaseRTT: core.LTEBaseRTT, LossRate: 0.002, Seed: 11},
		})
		defer net.Close()
		trace.InstallRTTJitter(net, 0, core.WiFiBaseRTT, 0.5, 200*time.Millisecond, 3, time.Minute)
		conns := make([]*mptcp.Conn, 6)
		for i := range conns {
			conns[i] = net.NewConn(core.ConnOptions{Scheduler: "ecf", CongestionControl: "olia"})
		}
		web.FetchPage(net.Engine(), conns, web.PageConfig{
			Objects:   web.CNNPageObjects(5),
			ThinkTime: 10 * time.Millisecond,
		}, nil)
		net.Run(time.Minute)
	}},
	{"three-path round-robin bulk", func() {
		net := core.NewNetwork([]core.PathSpec{
			{Name: "a", RateMbps: 1, BaseRTT: 10 * time.Millisecond},
			{Name: "b", RateMbps: 3, BaseRTT: 150 * time.Millisecond},
			{Name: "c", RateMbps: 0.5, BaseRTT: 400 * time.Millisecond, LossRate: 0.01, Seed: 2},
		})
		defer net.Close()
		conn := net.NewConn(core.ConnOptions{Scheduler: "roundrobin", CongestionControl: "balia"})
		conn.Write(3<<20, nil)
		net.Run(time.Minute)
	}},
	{"four-subflow redundant streaming", func() {
		out := RunStreaming(StreamConfig{
			WifiMbps:           0.3,
			LteMbps:            8.6,
			Scheduler:          "redundant",
			VideoSec:           8,
			SubflowsPerPath:    2,
			DisableIdleRestart: true,
			CC:                 "reno",
		})
		out.Release()
	}},
	{"variable-bandwidth daps streaming", func() {
		changes := trace.RandomScenario(99, 2, 30*time.Second, 5*time.Second, trace.RandomChangeValuesMbps)
		out := RunStreaming(StreamConfig{
			WifiMbps:  8.6,
			LteMbps:   0.3,
			Scheduler: "daps",
			VideoSec:  8,
			PreRun:    func(net *core.Network) { trace.Apply(net, changes) },
		})
		out.Release()
	}},
}

func TestCrossCellIsolation(t *testing.T) {
	schedulers := []string{"minrtt", "ecf", "daps", "blest", "redundant", "roundrobin"}
	base := make(map[string]string, len(schedulers))
	for _, s := range schedulers {
		base[s] = isolationFingerprint(s)
	}
	for _, p := range polluters {
		p.run()
		for _, s := range schedulers {
			if got := isolationFingerprint(s); got != base[s] {
				t.Errorf("scheduler %s: cell fingerprint drifted after polluter %q — state leaked across cells through the pool", s, p.name)
			}
		}
	}
}
