package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTable1MatchesPaper(t *testing.T) {
	r := Table1()
	s := r.String()
	for _, want := range []string{"144p", "1080p", "0.26", "8.47"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, s)
		}
	}
}

func TestTable2RTTShape(t *testing.T) {
	r := Table2(Quick)
	// RTT must decrease monotonically with bandwidth (Table 2's shape).
	for i := 1; i < len(r.BandwidthsMbps); i++ {
		if r.WifiRTT[i] >= r.WifiRTT[i-1] {
			t.Fatalf("WiFi RTT not decreasing: %v", r.WifiRTT)
		}
		if r.LteRTT[i] >= r.LteRTT[i-1] {
			t.Fatalf("LTE RTT not decreasing: %v", r.LteRTT)
		}
	}
	// 0.3 Mbps should show ~1 s bufferbloat (paper: WiFi 969 ms).
	if r.WifiRTT[0] < 500*time.Millisecond || r.WifiRTT[0] > 2*time.Second {
		t.Fatalf("WiFi RTT at 0.3 Mbps = %v, want ~1 s", r.WifiRTT[0])
	}
	// 8.6 Mbps should be within a few 10s of ms of the base RTT
	// (paper: WiFi 40 ms, LTE 105 ms).
	if r.WifiRTT[5] > 100*time.Millisecond {
		t.Fatalf("WiFi RTT at 8.6 Mbps = %v, want < 100 ms", r.WifiRTT[5])
	}
	if r.LteRTT[5] > 180*time.Millisecond {
		t.Fatalf("LTE RTT at 8.6 Mbps = %v, want < 180 ms", r.LteRTT[5])
	}
}

func TestRunStreamingBasics(t *testing.T) {
	out := RunStreaming(StreamConfig{WifiMbps: 4.2, LteMbps: 4.2, Scheduler: "ecf", VideoSec: 40})
	if !out.Finished {
		t.Fatal("streaming run did not finish")
	}
	if out.FastFraction <= 0 || out.FastFraction > 1 {
		t.Fatalf("fast fraction = %v", out.FastFraction)
	}
	if out.IdealFraction != 0.5 {
		t.Fatalf("ideal fraction = %v for symmetric pair, want 0.5", out.IdealFraction)
	}
	if len(out.OOODelays) == 0 {
		t.Fatal("no OOO samples")
	}
}

func TestRunStreamingSamplesTraces(t *testing.T) {
	out := RunStreaming(StreamConfig{
		WifiMbps: 0.3, LteMbps: 8.6, Scheduler: "minrtt", VideoSec: 30,
		SampleInterval: 100 * time.Millisecond,
	})
	if len(out.CwndTraces) != 2 || len(out.SndbufTraces) != 2 {
		t.Fatalf("trace counts = %d/%d, want 2/2", len(out.CwndTraces), len(out.SndbufTraces))
	}
	if out.CwndTraces[0].Len() < 50 {
		t.Fatalf("cwnd trace too short: %d points", out.CwndTraces[0].Len())
	}
	if out.SubflowNames[0] != "wifi" || out.SubflowNames[1] != "lte" {
		t.Fatalf("subflow names = %v", out.SubflowNames)
	}
}

func TestFigure2HeterogeneityHurtsDefault(t *testing.T) {
	// Mini-grid assertion at test scale: the symmetric high-bandwidth
	// cell must score (much) better than the extreme heterogeneous cell.
	sym := RunStreaming(StreamConfig{WifiMbps: 8.6, LteMbps: 8.6, Scheduler: "minrtt", VideoSec: Quick.VideoSec})
	het := RunStreaming(StreamConfig{WifiMbps: 0.3, LteMbps: 8.6, Scheduler: "minrtt", VideoSec: Quick.VideoSec})
	symRatio := sym.Result.AvgBitrateMbps() / 8.47
	hetRatio := het.Result.AvgBitrateMbps() / 8.47
	if hetRatio >= symRatio {
		t.Fatalf("default: heterogeneous ratio %.2f >= symmetric %.2f — motivation effect missing", hetRatio, symRatio)
	}
}

func TestFigure9ECFBeatsDefaultAtHotCells(t *testing.T) {
	// The paper's headline: at 0.3/8.6 ECF's ratio clearly exceeds the
	// default's, while at 8.6/8.6 they tie. Uses a longer playout to get
	// past ABR warm-up.
	defHet := RunStreaming(StreamConfig{WifiMbps: 0.3, LteMbps: 8.6, Scheduler: "minrtt", VideoSec: 180})
	ecfHet := RunStreaming(StreamConfig{WifiMbps: 0.3, LteMbps: 8.6, Scheduler: "ecf", VideoSec: 180})
	dr := defHet.Result.AvgBitrateMbps() / 8.47
	er := ecfHet.Result.AvgBitrateMbps() / 8.47
	if er <= dr {
		t.Fatalf("ECF ratio %.2f <= default %.2f at 0.3/8.6", er, dr)
	}
	if er-dr < 0.08 {
		t.Fatalf("ECF improvement %.2f too small at the hot cell", er-dr)
	}
	defSym := RunStreaming(StreamConfig{WifiMbps: 8.6, LteMbps: 8.6, Scheduler: "minrtt", VideoSec: 180})
	ecfSym := RunStreaming(StreamConfig{WifiMbps: 8.6, LteMbps: 8.6, Scheduler: "ecf", VideoSec: 180})
	ds := defSym.Result.AvgBitrateMbps()
	es := ecfSym.Result.AvgBitrateMbps()
	if es < ds*0.95 {
		t.Fatalf("ECF %.2f worse than default %.2f on symmetric paths", es, ds)
	}
}

func TestTable3ECFFewestResets(t *testing.T) {
	r := Table3(Quick)
	byName := map[string]int64{}
	for i, s := range r.Schedulers {
		byName[s] = r.IWResets[i]
	}
	if byName["ecf"] > byName["minrtt"] {
		t.Fatalf("ECF resets %d > default %d (paper: 16 vs 486)", byName["ecf"], byName["minrtt"])
	}
	if !strings.Contains(r.String(), "IW Resets") {
		t.Fatal("render missing title")
	}
}

func TestFigure5DiffsGrowWithHeterogeneity(t *testing.T) {
	r := Figure5(Quick)
	// Median last-packet diff at 0.3-8.6 must exceed the 4.2-8.6 one.
	if r.Median(0) <= r.Median(3) {
		t.Fatalf("last-packet diff medians: 0.3-8.6 %v <= 4.2-8.6 %v", r.Median(0), r.Median(3))
	}
}

func TestFigure14ECFLowestOOO(t *testing.T) {
	r := Figure14(Quick)
	het := r.Heterogeneous
	if het.CDFs["ecf"].Mean() > het.CDFs["minrtt"].Mean() {
		t.Fatalf("ECF mean OOO %.4f > default %.4f under heterogeneity",
			het.CDFs["ecf"].Mean(), het.CDFs["minrtt"].Mean())
	}
	// Symmetric: all schedulers close (DAPS excepted by the paper);
	// assert ECF does not blow up relative to default.
	sym := r.Symmetric
	if sym.CDFs["ecf"].Mean() > sym.CDFs["minrtt"].Mean()*2+0.01 {
		t.Fatalf("symmetric: ECF OOO %.4f much worse than default %.4f",
			sym.CDFs["ecf"].Mean(), sym.CDFs["minrtt"].Mean())
	}
}

func TestFigure16ECFHighestMeanThroughput(t *testing.T) {
	// Scenarios short enough for CI but long enough that heterogeneous
	// phases dominate warm-up noise.
	sc := Scale{RandomDurSec: 160, RandomScenarios: 4}
	r := Figure16(sc)
	if r.MeanThroughput("ecf") < r.MeanThroughput("minrtt") {
		t.Fatalf("random-bandwidth: ECF %.2f < default %.2f",
			r.MeanThroughput("ecf"), r.MeanThroughput("minrtt"))
	}
	if len(r.Throughput["ecf"]) != sc.RandomScenarios {
		t.Fatalf("scenario count = %d", len(r.Throughput["ecf"]))
	}
}

func TestFigure17SeriesPresent(t *testing.T) {
	r := Figure17(Quick)
	if len(r.Default) == 0 || len(r.ECF) == 0 {
		t.Fatal("empty chunk traces")
	}
	if !strings.Contains(r.String(), "Per-chunk") {
		t.Fatal("render missing title")
	}
}

func TestWgetECFNotWorse(t *testing.T) {
	// 512 KB at 1/10 Mbps: ECF should be at least as fast as default
	// (paper: ~13-20% faster).
	def := wgetStats("minrtt", 1, 10, 512<<10, 3, "test-wget", 0)
	ecf := wgetStats("ecf", 1, 10, 512<<10, 3, "test-wget", 0)
	if ecf.Mean > def.Mean*1.05 {
		t.Fatalf("wget: ECF %.3fs worse than default %.3fs", ecf.Mean, def.Mean)
	}
}

func TestWgetSmallSizeParity(t *testing.T) {
	// 128 KB transfers: schedulers should be statistically similar
	// (paper Figure 19a is all white).
	def := wgetStats("minrtt", 1, 5, 128<<10, 3, "test-wget", 1)
	ecf := wgetStats("ecf", 1, 5, 128<<10, 3, "test-wget", 1)
	if diff := ecf.Mean - def.Mean; diff > def.StdDev+ecf.StdDev+0.2 {
		t.Fatalf("128KB: ECF %.3fs vs default %.3fs beyond noise", ecf.Mean, def.Mean)
	}
}

func TestFigure22WildShapes(t *testing.T) {
	sc := Quick
	sc.VideoSec = 40
	r := Figure22(sc)
	if len(r.Default) != 9 || len(r.ECF) != 9 {
		t.Fatalf("run counts: %d/%d", len(r.Default), len(r.ECF))
	}
	// The paper reports a 16% ECF gain in the wild; our synthetic wild
	// paths reproduce the per-run RTT spread but land near parity (see
	// README.md for the harness tour). Assert ECF does not lose
	// meaningfully.
	def, ecf := r.MeanThroughput()
	if ecf < def*0.85 {
		t.Fatalf("wild streaming: ECF mean %.2f far below default %.2f", ecf, def)
	}
	// Run 1 (symmetric RTTs) should be near parity.
	if r.ECF[0] < r.Default[0]*0.85 {
		t.Fatalf("run 1 should be near parity: ecf %.2f vs def %.2f", r.ECF[0], r.Default[0])
	}
}

func TestFigure23AndTable4(t *testing.T) {
	sc := Quick
	r := Table4(sc)
	ci, oi := r.Improvement()
	if ci < -0.10 {
		t.Fatalf("wild web: ECF completion %.0f%% worse", -ci*100)
	}
	if oi < -0.15 {
		t.Fatalf("wild web: ECF OOO delay much worse (%.0f%%)", -oi*100)
	}
	if !strings.Contains(r.String(), "ECF Improvement") {
		t.Fatal("render missing improvement row")
	}
}

func TestFigure1OnOffPattern(t *testing.T) {
	r := Figure1(Quick)
	if len(r.Trace) == 0 {
		t.Fatal("no download trace")
	}
	if r.OffPeriods == 0 {
		t.Fatal("no OFF periods detected — the §2.2 pattern is missing")
	}
	// Cumulative bytes must be non-decreasing.
	for i := 1; i < len(r.Trace); i++ {
		if r.Trace[i].Bytes < r.Trace[i-1].Bytes {
			t.Fatal("download trace not monotone")
		}
	}
}

func TestFigure3BuffersTracked(t *testing.T) {
	r := Figure3(Quick)
	peaks := r.PeakBytes()
	if len(peaks) != 2 {
		t.Fatalf("peaks = %v", peaks)
	}
	if peaks[0] == 0 || peaks[1] == 0 {
		t.Fatalf("send buffers never occupied: %v", peaks)
	}
	// LTE (fast) peak occupancy should far exceed WiFi's.
	if peaks[1] < peaks[0] {
		t.Fatalf("LTE peak %v < WiFi peak %v, expected the fast path to hold more in flight", peaks[1], peaks[0])
	}
}

func TestFigure11And12CwndMeans(t *testing.T) {
	sc := Quick
	r12 := Figure12(sc)
	// Figure 12's claim: ECF sustains a larger LTE window than default.
	if r12.MeanCwnd("ecf") <= r12.MeanCwnd("minrtt") {
		t.Fatalf("LTE mean cwnd: ecf %.1f <= default %.1f",
			r12.MeanCwnd("ecf"), r12.MeanCwnd("minrtt"))
	}
	r11 := Figure11(sc)
	// Figure 11's claim: ECF uses the WiFi (slow) subflow less.
	if r11.MeanCwnd("ecf") > r11.MeanCwnd("minrtt")*1.5 {
		t.Fatalf("WiFi mean cwnd: ecf %.1f much larger than default %.1f",
			r11.MeanCwnd("ecf"), r11.MeanCwnd("minrtt"))
	}
}

func TestFigure15FourSubflows(t *testing.T) {
	sc := Quick
	r := Figure15(sc)
	if len(r.DefaultRatio) != 6 || len(r.ECFRatio) != 6 {
		t.Fatalf("lengths: %d/%d", len(r.DefaultRatio), len(r.ECFRatio))
	}
	// At the most heterogeneous point (0.3 WiFi, 8.6 LTE), ECF ≥ default.
	if r.ECFRatio[5] < r.DefaultRatio[5]*0.95 {
		t.Fatalf("4-subflow 0.3/8.6: ecf %.2f < default %.2f", r.ECFRatio[5], r.DefaultRatio[5])
	}
}

func TestGridRendering(t *testing.T) {
	g := RunGrid("ecf", Scale{GridVideoSec: 15}, false)
	h := g.Heatmap()
	s := h.String() + h.Shade()
	if !strings.Contains(s, "ecf") {
		t.Fatalf("heatmap render missing scheduler name:\n%s", s)
	}
	for i := range g.Bandwidths {
		for j := range g.Bandwidths {
			v := g.Cells[i][j].BitrateRatio
			if v < 0 || v > 1 {
				t.Fatalf("ratio out of range at %d,%d: %v", i, j, v)
			}
		}
	}
}
