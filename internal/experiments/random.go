package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/trace"
)

// randomSchema versions the §5.3 cell records. v2: scenario seeds are
// namespaced via runner.Seed("random", scenario) instead of the raw
// scenario number.
const randomSchema = 2

// Figure16Result compares average streaming throughput across random
// bandwidth-change scenarios (§5.3).
type Figure16Result struct {
	Scenarios  int
	Schedulers []string
	// Throughput[scheduler][scenario] is the session-average per-chunk
	// throughput in Mbps.
	Throughput map[string][]float64
}

// Figure16 runs the §5.3 study: WiFi and LTE bandwidths change at
// exponentially distributed intervals (mean 40 s), drawn uniformly from
// {0.3, 1.1, 1.7, 4.2, 8.6} Mbps; one unique seed per scenario.
func Figure16(sc Scale) *Figure16Result {
	schedulers := []string{"minrtt", "blest", "ecf"}
	res := &Figure16Result{
		Scenarios:  sc.RandomScenarios,
		Schedulers: schedulers,
		Throughput: make(map[string][]float64),
	}
	// Pre-size before the fan-out: workers write disjoint (scheduler,
	// scenario) slots and never touch the map itself.
	for _, s := range schedulers {
		res.Throughput[s] = make([]float64, sc.RandomScenarios)
	}
	runCells(sc, sc.spec("fig16", randomSchema, sc.randomKey()), len(schedulers)*sc.RandomScenarios,
		func(k int) float64 {
			si, scen := k/sc.RandomScenarios, k%sc.RandomScenarios
			out := runRandomScenario(schedulers[si], scen+1, sc)
			defer out.Release()
			return out.Result.AvgThroughputMbps()
		},
		func(k int, mbps float64) {
			si, scen := k/sc.RandomScenarios, k%sc.RandomScenarios
			res.Throughput[schedulers[si]][scen] = mbps
		})
	return res
}

// runRandomScenario builds scenario n (1-based) deterministically from
// its runner.Seed-namespaced seed (identical across schedulers, as in
// the paper) and streams through it.
func runRandomScenario(scheduler string, n int, sc Scale) *StreamOutcome {
	seed := runner.Seed("random", n)
	dur := seconds(sc.RandomDurSec)
	init := trace.InitialRates(seed, 2, trace.RandomChangeValuesMbps)
	changes := trace.RandomScenario(seed, 2, dur, 40*time.Second, trace.RandomChangeValuesMbps)
	return RunStreaming(StreamConfig{
		WifiMbps:  init[0],
		LteMbps:   init[1],
		Scheduler: scheduler,
		VideoSec:  sc.RandomDurSec,
		PreRun: func(net *core.Network) {
			trace.Apply(net, changes)
		},
	})
}

// MeanThroughput averages across scenarios for one scheduler.
func (r *Figure16Result) MeanThroughput(s string) float64 {
	return metrics.Summarize(r.Throughput[s]).Mean
}

// String renders per-scenario bars.
func (r *Figure16Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 16: Streaming Throughput under Random Bandwidth Changes (Mbps)\n")
	t := &metrics.Table{Header: append([]string{"scenario"}, r.Schedulers...)}
	for scen := 0; scen < r.Scenarios; scen++ {
		row := []string{fmt.Sprintf("%d", scen+1)}
		for _, s := range r.Schedulers {
			row = append(row, fmt.Sprintf("%.2f", r.Throughput[s][scen]))
		}
		t.AddRow(row...)
	}
	row := []string{"mean"}
	for _, s := range r.Schedulers {
		row = append(row, fmt.Sprintf("%.2f", r.MeanThroughput(s)))
	}
	t.AddRow(row...)
	b.WriteString(t.String())
	return b.String()
}

// Figure17Result is the per-chunk throughput trace for one scenario.
type Figure17Result struct {
	Scenario int
	Default  []float64
	ECF      []float64
}

// Figure17 traces chunk throughputs for scenario 6 (as the paper plots),
// clamped to the available scenario count at small scales.
func Figure17(sc Scale) *Figure17Result {
	scen := 6
	if scen > sc.RandomScenarios {
		scen = sc.RandomScenarios
	}
	res := &Figure17Result{Scenario: scen}
	traces := make([][]float64, 2)
	schedulers := []string{"minrtt", "ecf"}
	runCells(sc, sc.spec("fig17", randomSchema, sc.randomKey()), len(schedulers),
		func(i int) []float64 {
			out := runRandomScenario(schedulers[i], scen, sc)
			defer out.Release()
			return out.Result.ChunkThroughputsMbps()
		},
		func(i int, xs []float64) { traces[i] = xs })
	res.Default, res.ECF = traces[0], traces[1]
	return res
}

// String renders the two chunk series.
func (r *Figure17Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 17: Per-chunk Throughput Trace (scenario %d, Mbps)\n", r.Scenario)
	t := &metrics.Table{Header: []string{"chunk", "Default", "ECF"}}
	n := len(r.Default)
	if len(r.ECF) > n {
		n = len(r.ECF)
	}
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("%d", i)}
		if i < len(r.Default) {
			row = append(row, fmt.Sprintf("%.2f", r.Default[i]))
		} else {
			row = append(row, "")
		}
		if i < len(r.ECF) {
			row = append(row, fmt.Sprintf("%.2f", r.ECF[i]))
		} else {
			row = append(row, "")
		}
		t.AddRow(row...)
	}
	b.WriteString(t.String())
	return b.String()
}
