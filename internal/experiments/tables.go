package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dash"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// Table1Result reproduces paper Table 1 (bit rate per resolution). It is
// static data, included so the harness covers every numbered artifact.
type Table1Result struct {
	Ladder []dash.Representation
}

// Table1 returns the representation ladder.
func Table1() *Table1Result {
	return &Table1Result{Ladder: dash.StandardLadder}
}

// String renders the paper's row pair.
func (r *Table1Result) String() string {
	var names, rates []string
	for _, rep := range r.Ladder {
		names = append(names, fmt.Sprintf("%6s", rep.Name))
		rates = append(rates, fmt.Sprintf("%6.2f", rep.Mbps))
	}
	return "Table 1: Video Bit Rates vs. Resolution\n" +
		"Resolution      " + strings.Join(names, " ") + "\n" +
		"Bit Rate (Mbps) " + strings.Join(rates, " ") + "\n"
}

// Table2Result holds measured average RTT per regulated bandwidth for
// both interfaces (paper Table 2).
type Table2Result struct {
	BandwidthsMbps []float64
	WifiRTT        []time.Duration
	LteRTT         []time.Duration
}

// Table2 measures average RTT under a saturating bulk transfer at each
// regulated bandwidth, per interface — 12 independent (bandwidth,
// interface) cells fanned across the worker pool. The paper's numbers
// (WiFi 969 ms at 0.3 Mbps down to 40 ms at 8.6) come from tc buffering;
// ours come from the same mechanism — a drop-tail buffer ahead of the
// shaped link.
func Table2(sc Scale) *Table2Result {
	bws := trace.GridBandwidthsMbps
	res := &Table2Result{
		BandwidthsMbps: bws,
		WifiRTT:        make([]time.Duration, len(bws)),
		LteRTT:         make([]time.Duration, len(bws)),
	}
	// Cell record: the mean loaded RTT. The measurement is fully
	// deterministic (no RNG draws) and reads no Scale field, so its
	// scale key is empty: records survive any scale change.
	runCells(sc, sc.spec("table2", 1, ""), len(bws)*2,
		func(k int) time.Duration {
			bw := bws[k/2]
			if k%2 == 0 {
				return measureLoadedRTT("wifi", bw, core.WiFiBaseRTT)
			}
			return measureLoadedRTT("lte", bw, core.LTEBaseRTT)
		},
		func(k int, rtt time.Duration) {
			if k%2 == 0 {
				res.WifiRTT[k/2] = rtt
			} else {
				res.LteRTT[k/2] = rtt
			}
		})
	return res
}

// measureLoadedRTT saturates a single path and reports the mean of the
// subflow's smoothed RTT sampled over the transfer.
func measureLoadedRTT(name string, mbps float64, baseRTT time.Duration) time.Duration {
	net := core.NewNetwork([]core.PathSpec{
		{Name: name, RateMbps: mbps, BaseRTT: baseRTT},
		{Name: "unused", RateMbps: 0.01, BaseRTT: time.Second},
	})
	defer net.Close()
	conn := net.NewConn(core.ConnOptions{Scheduler: "wifi-only"})
	// Enough bytes to keep the path busy for ~20 s.
	bytes := int64(mbps * 1e6 / 8 * 20)
	conn.Write(bytes, nil)
	eng := net.Engine()
	s := &loadedRTTSampler{eng: eng, sf: conn.Subflows()[0]}
	eng.ScheduleEvent(2*time.Second, kindLoadedRTTSample, s) // skip slow-start warm-up
	net.Run(22 * time.Second)
	if s.n == 0 {
		return 0
	}
	return s.sum / time.Duration(s.n)
}

// loadedRTTSampler periodically samples a saturated subflow's smoothed
// RTT (the Table 2 loaded-RTT measurement).
type loadedRTTSampler struct {
	eng *sim.Engine
	sf  *tcp.Subflow
	sum time.Duration
	n   int
}

// kindLoadedRTTSample dispatches an RTT sample through the typed event
// table.
var kindLoadedRTTSample sim.EventKind

func init() {
	kindLoadedRTTSample = sim.RegisterKind("experiments.loadedRTTSample", func(a any) { a.(*loadedRTTSampler).sample() })
}

func (s *loadedRTTSampler) sample() {
	s.sum += s.sf.Srtt()
	s.n++
	if s.eng.Now() < 20*time.Second {
		s.eng.ScheduleEvent(250*time.Millisecond, kindLoadedRTTSample, s)
	}
}

// String renders the Table 2 rows.
func (r *Table2Result) String() string {
	t := &metrics.Table{Header: []string{"Bandwidth (Mbps)"}}
	for _, bw := range r.BandwidthsMbps {
		t.Header = append(t.Header, fmtMbps(bw))
	}
	wifi := []string{"WiFi RTT(ms)"}
	lte := []string{"LTE RTT(ms)"}
	for i := range r.BandwidthsMbps {
		wifi = append(wifi, fmt.Sprintf("%d", r.WifiRTT[i].Milliseconds()))
		lte = append(lte, fmt.Sprintf("%d", r.LteRTT[i].Milliseconds()))
	}
	t.AddRow(wifi...)
	t.AddRow(lte...)
	return "Table 2: Avg. RTT with Bandwidth Regulation\n" + t.String()
}

// Table3Result counts initial-window resets per scheduler in the
// heterogeneous streaming configuration (paper Table 3: default 486,
// DAPS 92, BLEST 382, ECF 16 — ECF lowest by far).
type Table3Result struct {
	Schedulers []string
	IWResets   []int64
}

// Table3 runs 0.3 Mbps WiFi / 8.6 Mbps LTE streaming per scheduler and
// counts window resets.
func Table3(sc Scale) *Table3Result {
	schedulers := []string{"minrtt", "daps", "blest", "ecf"}
	res := &Table3Result{
		Schedulers: schedulers,
		IWResets:   make([]int64, len(schedulers)),
	}
	runCells(sc, sc.spec("table3", 1, sc.videoKey()), len(schedulers),
		func(i int) int64 {
			out := RunStreaming(StreamConfig{
				WifiMbps: 0.3, LteMbps: 8.6,
				Scheduler: schedulers[i],
				VideoSec:  sc.VideoSec,
			})
			defer out.Release()
			return out.IWResets
		},
		func(i int, resets int64) { res.IWResets[i] = resets })
	return res
}

// String renders the Table 3 rows.
func (r *Table3Result) String() string {
	t := &metrics.Table{Header: append([]string{"Scheduler"}, r.Schedulers...)}
	row := []string{"# of IW Resets"}
	for _, v := range r.IWResets {
		row = append(row, fmt.Sprintf("%d", v))
	}
	t.AddRow(row...)
	return "Table 3: # of IW Resets - 0.3 Mbps WiFi & 8.6 Mbps LTE\n" + t.String()
}

// Table4Result reports the §6.3 wild web averages (paper Table 4:
// download completion 0.882 s → 0.650 s, OOO delay 0.297 s → 0.087 s).
type Table4Result struct {
	DefaultCompletion time.Duration
	ECFCompletion     time.Duration
	DefaultOOO        time.Duration
	ECFOOO            time.Duration
}

// Table4 aggregates the wild web runs (it shares the engine room with
// Figure 23).
func Table4(sc Scale) *Table4Result {
	f := Figure23(sc)
	return &Table4Result{
		DefaultCompletion: f.MeanCompletion["minrtt"],
		ECFCompletion:     f.MeanCompletion["ecf"],
		DefaultOOO:        f.MeanOOO["minrtt"],
		ECFOOO:            f.MeanOOO["ecf"],
	}
}

// Improvement returns the relative reductions ECF achieves.
func (r *Table4Result) Improvement() (completion, ooo float64) {
	if r.DefaultCompletion > 0 {
		completion = 1 - float64(r.ECFCompletion)/float64(r.DefaultCompletion)
	}
	if r.DefaultOOO > 0 {
		ooo = 1 - float64(r.ECFOOO)/float64(r.DefaultOOO)
	}
	return completion, ooo
}

// String renders the Table 4 rows.
func (r *Table4Result) String() string {
	ci, oi := r.Improvement()
	t := &metrics.Table{Header: []string{"", "Download Completion Time (sec)", "Out of Order Delay (sec)"}}
	t.AddRow("Default", fmt.Sprintf("%.3f", r.DefaultCompletion.Seconds()), fmt.Sprintf("%.3f", r.DefaultOOO.Seconds()))
	t.AddRow("ECF", fmt.Sprintf("%.3f", r.ECFCompletion.Seconds()), fmt.Sprintf("%.3f", r.ECFOOO.Seconds()))
	t.AddRow("ECF Improvement", fmt.Sprintf("%.0f%% shorter", ci*100), fmt.Sprintf("%.0f%% shorter", oi*100))
	return "Table 4: Average Statistics of Web Browsing in the Wild\n" + t.String()
}
