package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mptcp"
	"repro/internal/trace"
	"repro/internal/web"
)

// webLossRate adds light random loss to the §5.4/§5.5 experiments so
// that repeated runs (different seeds) produce the run-to-run variance
// the paper's error bars and stddev-based normalization rely on.
const webLossRate = 0.001

// wgetSizes are the transfer sizes of Figure 18.
var wgetSizes = []int64{128 << 10, 256 << 10, 512 << 10, 1 << 20}

// wgetOnce downloads one object and returns its completion time. Each
// run perturbs both paths' propagation delays with a seeded random walk,
// reproducing the run-to-run variance a physical testbed shows (the
// paper's Figure 19 normalization clamps differences inside the combined
// standard deviation to 1.0, which only makes sense with real variance).
func wgetOnce(scheduler string, wifiMbps, lteMbps float64, bytes int64, seed uint64) time.Duration {
	net := core.NewNetwork([]core.PathSpec{
		{Name: "wifi", RateMbps: wifiMbps, BaseRTT: core.WiFiBaseRTT, LossRate: webLossRate, Seed: seed * 17},
		{Name: "lte", RateMbps: lteMbps, BaseRTT: core.LTEBaseRTT, LossRate: webLossRate, Seed: seed*31 + 7},
	})
	defer net.Close()
	trace.InstallRTTJitter(net, 0, core.WiFiBaseRTT, 0.3, 100*time.Millisecond, seed*101+1, time.Minute)
	trace.InstallRTTJitter(net, 1, core.LTEBaseRTT, 0.2, 100*time.Millisecond, seed*211+5, time.Minute)
	conn := net.NewConn(core.ConnOptions{Scheduler: scheduler})
	var dur time.Duration
	web.Download(conn, bytes, func(o web.ObjectResult) { dur = o.Duration() })
	net.Run(5 * time.Minute)
	return dur
}

// wgetStats runs N repetitions and summarizes. Per-run seeds derive
// from (seedExp, seedCell, run) via runSeed; callers comparing
// schedulers pass a seedCell that excludes the scheduler so both sides
// see identical network randomness (the paper's paired design, which
// Figure 19's stddev normalization depends on).
func wgetStats(scheduler string, wifiMbps, lteMbps float64, bytes int64, runs int, seedExp string, seedCell int) metrics.Summary {
	var xs []float64
	for r := 0; r < runs; r++ {
		d := wgetOnce(scheduler, wifiMbps, lteMbps, bytes, runSeed(seedExp, seedCell, r))
		xs = append(xs, d.Seconds())
	}
	return metrics.Summarize(xs)
}

// Figure18Result holds average completion times for the 1 Mbps WiFi row.
type Figure18Result struct {
	Sizes         []int64
	LteBandwidths []float64
	Schedulers    []string
	// Mean[size][scheduler][lteIdx] in seconds.
	Mean map[int64]map[string][]float64
}

// Figure18 sweeps wget completion times: WiFi fixed at 1 Mbps, LTE from
// 1 to 10 Mbps, four sizes, four schedulers.
func Figure18(sc Scale) *Figure18Result {
	res := &Figure18Result{
		Sizes:         wgetSizes,
		LteBandwidths: trace.WebBandwidthsMbps,
		Schedulers:    []string{"minrtt", "daps", "blest", "ecf"},
		Mean:          make(map[int64]map[string][]float64),
	}
	for _, size := range res.Sizes {
		res.Mean[size] = make(map[string][]float64)
		for _, s := range res.Schedulers {
			res.Mean[size][s] = make([]float64, len(res.LteBandwidths))
		}
	}
	// Cell record: the full completion-time summary (the figure prints
	// the mean; the spread stays available to cache consumers). v2:
	// seeds namespaced via runSeed, paired across schedulers.
	nSch, nLte := len(res.Schedulers), len(res.LteBandwidths)
	runCells(sc, sc.spec("fig18", 2, sc.webKey()), len(res.Sizes)*nSch*nLte,
		func(k int) metrics.Summary {
			size := res.Sizes[k/(nSch*nLte)]
			s := res.Schedulers[k/nLte%nSch]
			li := k % nLte
			seedCell := k/(nSch*nLte)*nLte + li // (size, lte): scheduler-independent
			return wgetStats(s, 1, res.LteBandwidths[li], size, sc.WebRuns, "fig18", seedCell)
		},
		func(k int, sum metrics.Summary) {
			size := res.Sizes[k/(nSch*nLte)]
			s := res.Schedulers[k/nLte%nSch]
			res.Mean[size][s][k%nLte] = sum.Mean
		})
	return res
}

// String renders one block per size.
func (r *Figure18Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 18: Average Download Completion Time (s), WiFi = 1 Mbps\n")
	for _, size := range r.Sizes {
		fmt.Fprintf(&b, "-- %d KB --\n", size/1024)
		t := &metrics.Table{Header: append([]string{"LTE (Mbps)"}, r.Schedulers...)}
		for li, lte := range r.LteBandwidths {
			row := []string{fmtMbps(lte)}
			for _, s := range r.Schedulers {
				row = append(row, fmt.Sprintf("%.3f", r.Mean[size][s][li]))
			}
			t.AddRow(row...)
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// Figure19Result is the ECF/default completion-ratio heat map over the
// 10×10 grid, per size. Following the paper, cells whose difference is
// within one standard deviation are clamped to 1.0.
type Figure19Result struct {
	Sizes []int64
	Maps  map[int64]*metrics.Heatmap
}

// Figure19 computes normalized completion-time ratios.
func Figure19(sc Scale) *Figure19Result {
	res := &Figure19Result{Sizes: wgetSizes, Maps: make(map[int64]*metrics.Heatmap)}
	labels := make([]string, len(trace.WebBandwidthsMbps))
	for i, bw := range trace.WebBandwidthsMbps {
		labels[i] = fmtMbps(bw)
	}
	for _, size := range res.Sizes {
		res.Maps[size] = metrics.NewHeatmap(
			fmt.Sprintf("ECF/Default completion ratio, %d KB (<1 = ECF faster)", size/1024),
			labels, labels)
	}
	// One job per (size, wifi, lte) cell; each writes its own
	// pre-allocated heat-map slot. The cell record keeps both
	// schedulers' summaries so the normalization stays recomputable
	// from cache. v2: seeds namespaced via runSeed, shared by both
	// schedulers within a cell (paired runs).
	nBW := len(trace.WebBandwidthsMbps)
	runCells(sc, sc.spec("fig19", 2, sc.webKey()), len(res.Sizes)*nBW*nBW,
		func(k int) wgetPair {
			size := res.Sizes[k/(nBW*nBW)]
			wifi := trace.WebBandwidthsMbps[k/nBW%nBW]
			lte := trace.WebBandwidthsMbps[k%nBW]
			return wgetPair{
				Def: wgetStats("minrtt", wifi, lte, size, sc.WebRuns, "fig19", k),
				ECF: wgetStats("ecf", wifi, lte, size, sc.WebRuns, "fig19", k),
			}
		},
		func(k int, p wgetPair) {
			size := res.Sizes[k/(nBW*nBW)]
			ratio := 1.0
			diff := p.Def.Mean - p.ECF.Mean
			band := p.Def.StdDev + p.ECF.StdDev
			if diff > band || diff < -band {
				if p.Def.Mean > 0 {
					ratio = p.ECF.Mean / p.Def.Mean
				}
			}
			res.Maps[size].Set(k%nBW, k/nBW%nBW, ratio)
		})
	return res
}

// wgetPair is the cached record of one Figure 19 cell: both schedulers'
// completion summaries under shared per-run seeds.
type wgetPair struct {
	Def metrics.Summary
	ECF metrics.Summary
}

// WorseCells counts cells where ECF is slower than default beyond the
// noise band — the paper reports zero.
func (r *Figure19Result) WorseCells() int {
	n := 0
	for _, h := range r.Maps {
		for _, row := range h.Values {
			for _, v := range row {
				if v > 1.0001 {
					n++
				}
			}
		}
	}
	return n
}

// String renders the ratio maps.
func (r *Figure19Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 19: ECF Completion Time Normalized by Default\n")
	for _, size := range r.Sizes {
		b.WriteString(r.Maps[size].String())
	}
	fmt.Fprintf(&b, "cells where ECF does worse: %d (paper: none)\n", r.WorseCells())
	return b.String()
}

// webPageConfig is one §5.5 bandwidth configuration.
type webPageConfig struct {
	Label    string
	WifiMbps float64
	LteMbps  float64
}

// figure20Configs are the three panels of Figures 20/21.
var figure20Configs = []webPageConfig{
	{"5.0 Mbps WiFi and 5.0 Mbps LTE", 5, 5},
	{"1.0 Mbps WiFi and 5.0 Mbps LTE", 1, 5},
	{"1.0 Mbps WiFi and 10.0 Mbps LTE", 1, 10},
}

// PageOutcome is one page-fetch run's telemetry.
type PageOutcome struct {
	Completions []time.Duration
	OOODelays   []time.Duration
}

// fetchCNNPage runs one browsing session: 107 objects over six parallel
// persistent MPTCP connections (twelve subflows).
func fetchCNNPage(scheduler string, wifiMbps, lteMbps float64, seed uint64) *PageOutcome {
	net := core.NewNetwork([]core.PathSpec{
		{Name: "wifi", RateMbps: wifiMbps, BaseRTT: core.WiFiBaseRTT, LossRate: webLossRate, Seed: seed * 13},
		{Name: "lte", RateMbps: lteMbps, BaseRTT: core.LTEBaseRTT, LossRate: webLossRate, Seed: seed*29 + 3},
	})
	defer net.Close()
	conns := make([]*mptcp.Conn, 6)
	for i := range conns {
		conns[i] = net.NewConn(core.ConnOptions{Scheduler: scheduler})
	}
	var res *web.PageResult
	web.FetchPage(net.Engine(), conns, web.PageConfig{
		Objects:   web.CNNPageObjects(seed),
		ThinkTime: 30 * time.Millisecond,
	}, func(r *web.PageResult) { res = r })
	net.Run(10 * time.Minute)
	out := &PageOutcome{}
	if res != nil {
		out.Completions = res.CompletionTimes()
	}
	for _, c := range conns {
		out.OOODelays = append(out.OOODelays, c.Receiver().OOODelays()...)
	}
	return out
}

// WebBrowsingResult carries per-scheduler distributions for the three
// §5.5 configurations; it backs both Figure 20 (completion times) and
// Figure 21 (OOO delays).
type WebBrowsingResult struct {
	Figure      string
	Configs     []webPageConfig
	Schedulers  []string
	Completions map[string][]*metrics.CDF // scheduler -> per-config CDF
	OOO         map[string][]*metrics.CDF
}

// runWebBrowsing aggregates sc.WebRuns sessions per cell.
func runWebBrowsing(sc Scale) *WebBrowsingResult {
	res := &WebBrowsingResult{
		Configs:     figure20Configs,
		Schedulers:  []string{"minrtt", "daps", "blest", "ecf"},
		Completions: make(map[string][]*metrics.CDF),
		OOO:         make(map[string][]*metrics.CDF),
	}
	// Fan every (scheduler, config, run) session out as its own job,
	// then aggregate in index order so the CDFs see samples in the same
	// sequence regardless of worker count. Both Figure 20 and Figure 21
	// read from the same cell family ("web-browsing"), so one pass
	// serves both. v2: seeds namespaced via runSeed per (config, run),
	// shared across schedulers (paired sessions).
	nCfg, nRun := len(res.Configs), sc.WebRuns
	outs := make([]*PageOutcome, len(res.Schedulers)*nCfg*nRun)
	runCells(sc, sc.spec("web-browsing", 2, sc.webKey()), len(outs),
		func(k int) *PageOutcome {
			s := res.Schedulers[k/(nCfg*nRun)]
			ci := k / nRun % nCfg
			cfg := res.Configs[ci]
			return fetchCNNPage(s, cfg.WifiMbps, cfg.LteMbps, runSeed("web-browsing", ci, k%nRun))
		},
		func(k int, out *PageOutcome) { outs[k] = out })
	for si, s := range res.Schedulers {
		for ci := range res.Configs {
			var comp, ooo []float64
			for run := 0; run < nRun; run++ {
				out := outs[(si*nCfg+ci)*nRun+run]
				if out == nil {
					// Cell outside this run's shard; the merge pass
					// sees them all.
					continue
				}
				comp = append(comp, metrics.DurationsToSeconds(out.Completions)...)
				ooo = append(ooo, metrics.DurationsToSeconds(out.OOODelays)...)
			}
			res.Completions[s] = append(res.Completions[s], metrics.NewCDF(comp))
			res.OOO[s] = append(res.OOO[s], metrics.NewCDF(ooo))
		}
	}
	return res
}

// Figure20 reports web object download completion-time CCDFs.
func Figure20(sc Scale) *WebBrowsingResult {
	r := runWebBrowsing(sc)
	r.Figure = "Figure 20: Web Object Download Completion Time"
	return r
}

// Figure21 reports web browsing OOO-delay CCDFs (same runs, other
// metric).
func Figure21(sc Scale) *WebBrowsingResult {
	r := runWebBrowsing(sc)
	r.Figure = "Figure 21: Out-of-Order Delay - Web Browsing"
	return r
}

// String renders quantile rows per config and scheduler.
func (r *WebBrowsingResult) String() string {
	var b strings.Builder
	b.WriteString(r.Figure + "\n")
	source := r.Completions
	unit := "completion (s)"
	if strings.Contains(r.Figure, "Out-of-Order") {
		source = r.OOO
		unit = "OOO delay (s)"
	}
	for ci, cfg := range r.Configs {
		fmt.Fprintf(&b, "(%s)\n", cfg.Label)
		t := &metrics.Table{Header: []string{"scheduler", "p50 " + unit, "p90", "p99", "mean"}}
		for _, s := range r.Schedulers {
			c := source[s][ci]
			t.AddRow(s,
				fmt.Sprintf("%.3f", c.Quantile(0.5)),
				fmt.Sprintf("%.3f", c.Quantile(0.9)),
				fmt.Sprintf("%.3f", c.Quantile(0.99)),
				fmt.Sprintf("%.3f", c.Mean()))
		}
		b.WriteString(t.String())
	}
	return b.String()
}
