package experiments

import (
	"repro/internal/results"
	"repro/internal/sim"
)

// Lane-batched cell execution (the ecfbench -lanes flag).
//
// A lane group is one worker running K streaming cells of the same
// family in lockstep: each cell keeps its own pooled network and
// engine, and a sim.LaneEngine interleaves their events in the merged
// (at, lane, ticket) order. Per-lane dispatch order — and therefore
// every cell's record and every byte of stdout — is exactly the scalar
// path's; only the worker's instruction stream changes, from one
// serially-dependent event chain to K independent ones the core can
// overlap. Finished lanes retire independently: their cell is
// collected and its network closed (back to the worker's pool) while
// the other lanes keep running, and the freed lane is refilled from
// the group's remaining cells until the group drains.
//
// Only drivers that opt in run laned (the grid family and fig15 — the
// 6×6 sweeps the paper's evaluation is dominated by); every other
// family, and any group that must honor a per-cell wall-clock budget
// or an armed cell trace, falls back to the scalar path automatically.

// runStreamingLanes executes the given streaming cells K at a time in
// lane lockstep: cfg derives cell i's configuration, emit receives
// each finished cell's outcome (from the group's single goroutine, in
// completion order — callers collect into cell-indexed storage, so
// order carries no meaning). Cells must be mutually independent, per
// the runner determinism contract.
func runStreamingLanes(k int, cells []int, cfg func(i int) StreamConfig, emit func(i int, out *StreamOutcome)) {
	if k > len(cells) {
		k = len(cells)
	}
	le := sim.NewLaneEngine(k)
	runs := make([]*streamRun, k)
	cellOf := make([]int, k)
	next := 0
	fill := func(lane int) {
		r := startStreaming(cfg(cells[next]))
		runs[lane] = r
		cellOf[lane] = cells[next]
		le.SetLane(lane, r.net.Engine(), r.Horizon)
		next++
	}
	for lane := 0; lane < k; lane++ {
		fill(lane)
	}
	for {
		lane := le.RunLaneDone()
		if lane < 0 {
			return
		}
		out := runs[lane].finish()
		runs[lane] = nil
		emit(cellOf[lane], out)
		if next < len(cells) {
			fill(lane)
		}
	}
}

// streamingLaneRunner adapts runStreamingLanes to the results.AddLanes
// contract for a family whose record type T is derived from a
// streaming outcome.
func streamingLaneRunner[T any](k int, cfg func(i int) StreamConfig, from func(i int, out *StreamOutcome) T) results.LaneRunner[T] {
	return func(cells []int, emit func(i int, v T)) {
		runStreamingLanes(k, cells, cfg, func(i int, out *StreamOutcome) {
			emit(i, from(i, out))
		})
	}
}
