package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/results"
)

// renderMixedSweep runs a deliberately mixed catalog slice — two
// lane-capable grid-family sweeps (fig9, fig15) and two scalar-only
// families (fig16's randomized loss cells, fig13's streaming trace) —
// and concatenates their rendered reports. Any lane-batching defect
// that leaks across cells, reorders RNG consumption, or drops a
// scalar-fallback family shows up as a byte difference.
func renderMixedSweep(sc Scale) string {
	var b strings.Builder
	b.WriteString(Figure9(sc).String())
	b.WriteString(Figure15(sc).String())
	b.WriteString(Figure16(sc).String())
	b.WriteString(Figure13(sc).String())
	return b.String()
}

// TestLaneSweepByteIdentity is the lane determinism property test: the
// mixed sweep's rendered bytes are identical across lanes {1,2,4} ×
// workers {1,8}, and the scalar-fallback log names only the families
// without lane support.
func TestLaneSweepByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four quick-scale sweeps per configuration")
	}
	var want string
	for _, workers := range []int{1, 8} {
		for _, lanes := range []int{1, 2, 4} {
			var mu sync.Mutex
			fallback := map[string]bool{}
			sc := Quick
			sc.Workers = workers
			sc.Lanes = lanes
			sc.LaneFallbackLog = func(family string) {
				mu.Lock()
				fallback[family] = true
				mu.Unlock()
			}
			got := renderMixedSweep(sc)
			if want == "" {
				want = got
			} else if got != want {
				t.Errorf("workers=%d lanes=%d: rendered sweep differs from baseline (%d vs %d bytes)",
					workers, lanes, len(got), len(want))
			}
			if lanes > 1 {
				if len(fallback) == 0 {
					t.Errorf("workers=%d lanes=%d: scalar families logged no lane fallback", workers, lanes)
				}
				for family := range fallback {
					if strings.HasPrefix(family, "grid/") || family == "fig15" {
						t.Errorf("workers=%d lanes=%d: lane-capable family %q logged a scalar fallback", workers, lanes, family)
					}
				}
			} else if len(fallback) != 0 {
				t.Errorf("workers=%d lanes=%d: scalar run logged lane fallbacks %v", workers, lanes, fallback)
			}
		}
	}
}

// hashStoreDir fingerprints every record file under a store directory
// by relative path.
func hashStoreDir(t *testing.T, dir string) map[string]string {
	t.Helper()
	sums := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		sum := sha256.Sum256(data)
		sums[rel] = hex.EncodeToString(sum[:])
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sums
}

// TestLaneCacheRecordsByteIdentical runs the mixed sweep cold into two
// stores — scalar and lanes=4 — and compares every persisted record
// byte for byte: lane batching must not change what lands in the
// cache. A warm lanes=4 pass over the scalar store must then serve
// every cell as a hit and render the same bytes.
func TestLaneCacheRecordsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three quick-scale mixed sweeps with stores")
	}
	dirs := map[int]string{1: t.TempDir(), 4: t.TempDir()}
	outs := map[int]string{}
	for _, lanes := range []int{1, 4} {
		store, err := results.Open(dirs[lanes])
		if err != nil {
			t.Fatal(err)
		}
		sc := Quick
		sc.Workers = 8
		sc.Lanes = lanes
		sc.Results = &results.Session{Store: store}
		outs[lanes] = renderMixedSweep(sc)
		if h, c := sc.Results.Stats(); h != 0 || c == 0 {
			t.Fatalf("lanes=%d cold: %d hits, %d computed", lanes, h, c)
		}
	}
	if outs[1] != outs[4] {
		t.Error("cold rendered sweeps differ between lanes=1 and lanes=4")
	}
	scalar, laned := hashStoreDir(t, dirs[1]), hashStoreDir(t, dirs[4])
	if len(scalar) == 0 {
		t.Fatal("scalar store is empty")
	}
	if len(scalar) != len(laned) {
		t.Fatalf("store record counts differ: %d scalar, %d lanes=4", len(scalar), len(laned))
	}
	for rel, sum := range scalar {
		if laned[rel] != sum {
			t.Errorf("record %s differs between scalar and lanes=4 stores", rel)
		}
	}

	// Warm pass: lanes=4 over the scalar store.
	store, err := results.Open(dirs[1])
	if err != nil {
		t.Fatal(err)
	}
	sc := Quick
	sc.Workers = 8
	sc.Lanes = 4
	sc.Results = &results.Session{Store: store}
	if got := renderMixedSweep(sc); got != outs[1] {
		t.Error("warm lanes=4 render differs from cold scalar render")
	}
	if h, c := sc.Results.Stats(); c != 0 || h == 0 {
		t.Errorf("warm lanes=4: %d hits, %d computed (want all hits)", h, c)
	}
}

// TestLaneCellTimeoutFallsBackScalar pins the deadline interaction: a
// session with a per-cell wall-clock budget forces scalar execution
// (one goroutine per cell is what the timeout measures), and the
// output still matches the lane-free render.
func TestLaneCellTimeoutFallsBackScalar(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two fig9 quick sweeps")
	}
	sc := Quick
	sc.Workers = 8
	want := Figure9(sc).String()
	sc.Lanes = 4
	sc.Results = &results.Session{CellTimeout: time.Minute}
	if got := Figure9(sc).String(); got != want {
		t.Error("fig9 under -lanes 4 with a cell timeout differs from the scalar render")
	}
	if _, c := sc.Results.Stats(); c == 0 {
		t.Error("timeout run computed no cells")
	}
}
