package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// laneBenchCells is one 6-cell grid row per scheduler pair — a
// realistic slice of the fig9 workload where neighbouring cells differ
// only in LTE bandwidth.
func laneBenchConfigs() []StreamConfig {
	bws := trace.GridBandwidthsMbps
	cfgs := make([]StreamConfig, 0, 2*len(bws))
	for _, sched := range []string{"ecf", "minrtt"} {
		for _, lte := range bws {
			cfgs = append(cfgs, StreamConfig{
				WifiMbps:  1.1,
				LteMbps:   lte,
				Scheduler: sched,
				VideoSec:  30,
			})
		}
	}
	return cfgs
}

func outcomeSnapshot(out *StreamOutcome) map[string]any {
	defer out.Release()
	return map[string]any{
		"bitrate":    out.Result.AvgBitrateMbps(),
		"throughput": out.Result.AvgThroughputMbps(),
		"rebuffers":  out.Result.Rebuffers,
		"stalltime":  out.Result.StallTime,
		"chunks":     len(out.Result.Chunks),
		"fast":       out.FastFraction,
		"ideal":      out.IdealFraction,
		"iwresets":   out.IWResets,
		"finished":   out.Finished,
		"ooo":        len(out.OOODelays),
	}
}

// TestLaneStreamingMatchesScalar locks the lane contract at the
// outcome level: every cell run through the lane loop yields exactly
// the record the scalar path yields, at every K and regardless of how
// the group divides.
func TestLaneStreamingMatchesScalar(t *testing.T) {
	cfgs := laneBenchConfigs()
	want := make([]map[string]any, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = outcomeSnapshot(RunStreaming(cfg))
	}
	cells := make([]int, len(cfgs))
	for i := range cells {
		cells[i] = i
	}
	for _, k := range []int{1, 2, 3, 4, 8} {
		got := make([]map[string]any, len(cfgs))
		runStreamingLanes(k, cells, func(i int) StreamConfig { return cfgs[i] },
			func(i int, out *StreamOutcome) { got[i] = outcomeSnapshot(out) })
		for i := range want {
			if !reflect.DeepEqual(want[i], got[i]) {
				t.Errorf("K=%d cell %d: lane outcome %v, scalar %v", k, i, got[i], want[i])
			}
		}
	}
}

// BenchmarkLaneBatchGrid measures the lane win on the grid family:
// ns/cell for the same 12-cell workload executed scalar vs in K=4 lane
// lockstep. The acceptance gate is lanes4 ≥ 1.3x faster than scalar.
func BenchmarkLaneBatchGrid(b *testing.B) {
	cfgs := laneBenchConfigs()
	cells := make([]int, len(cfgs))
	for i := range cells {
		cells[i] = i
	}
	cfg := func(i int) StreamConfig { return cfgs[i] }
	b.Run("scalar", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			for i := range cfgs {
				RunStreaming(cfgs[i]).Release()
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(cfgs)), "ns/cell")
	})
	b.Run("lanes4", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			runStreamingLanes(4, cells, cfg, func(_ int, out *StreamOutcome) { out.Release() })
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(cfgs)), "ns/cell")
	})
}

// benchLanesK is a development-time probe of the K knee.
func BenchmarkLaneBatchGridK(b *testing.B) {
	cfgs := laneBenchConfigs()
	cells := make([]int, len(cfgs))
	for i := range cells {
		cells[i] = i
	}
	cfg := func(i int) StreamConfig { return cfgs[i] }
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runStreamingLanes(k, cells, cfg, func(_ int, out *StreamOutcome) { out.Release() })
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(cfgs)), "ns/cell")
		})
	}
}
