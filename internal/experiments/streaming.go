package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/results"
)

// Figure1Result is the ON-OFF download pattern of §2.2.
type Figure1Result struct {
	// Trace is the cumulative downloaded amount over time.
	Trace []struct {
		At    time.Duration
		Bytes int64
	}
	// OffPeriods counts steady-state inter-request gaps above one second.
	OffPeriods int
	// InitialBufferingEnds marks when the buffer first filled.
	InitialBufferingEnds time.Duration
}

// Figure1 reproduces the Netflix-style ON-OFF client behaviour: an
// initial-buffering ramp followed by paced chunk fetches. Its single
// cell's record is the Figure1Result itself.
func Figure1(sc Scale) *Figure1Result {
	res := &Figure1Result{}
	runCells(sc, sc.spec("fig1", 1, sc.videoKey()), 1,
		func(int) *Figure1Result {
			out := RunStreaming(StreamConfig{
				WifiMbps: 8.6, LteMbps: 8.6,
				Scheduler: "minrtt",
				VideoSec:  sc.VideoSec,
			})
			defer out.Release()
			cell := &Figure1Result{}
			for _, p := range out.Result.DownloadTrace {
				cell.Trace = append(cell.Trace, struct {
					At    time.Duration
					Bytes int64
				}{p.At, p.Bytes})
			}
			chunks := out.Result.Chunks
			for i := 1; i < len(chunks); i++ {
				gap := chunks[i].RequestedAt - chunks[i-1].CompletedAt
				if gap > time.Second {
					if cell.OffPeriods == 0 {
						cell.InitialBufferingEnds = chunks[i-1].CompletedAt
					}
					cell.OffPeriods++
				}
			}
			return cell
		},
		func(_ int, cell *Figure1Result) { *res = *cell })
	return res
}

// String renders the cumulative download series.
func (r *Figure1Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 1: Example Download Behavior (cumulative MB over time)\n")
	t := &metrics.Table{Header: []string{"t (s)", "downloaded (MB)"}}
	for _, p := range r.Trace {
		t.AddRow(fmt.Sprintf("%.1f", p.At.Seconds()), fmt.Sprintf("%.2f", float64(p.Bytes)/1e6))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "initial buffering completes ≈ %.1f s; %d OFF periods afterwards\n",
		r.InitialBufferingEnds.Seconds(), r.OffPeriods)
	return b.String()
}

// Figure3Result is the send-buffer occupancy trace for 0.3/8.6 under the
// default scheduler.
type Figure3Result struct {
	Names  []string
	Traces []*metrics.TimeSeries // bytes over time, per subflow
}

// Figure3 samples subflow send-buffer occupancy (unacked bytes, in-flight
// included, as the paper measures) every 100 ms.
func Figure3(sc Scale) *Figure3Result {
	res := &Figure3Result{}
	runCells(sc, sc.spec("fig3", 1, sc.videoKey()), 1,
		func(int) *Figure3Result {
			out := RunStreaming(StreamConfig{
				WifiMbps: 0.3, LteMbps: 8.6,
				Scheduler:      "minrtt",
				VideoSec:       sc.VideoSec,
				SampleInterval: 100 * time.Millisecond,
			})
			defer out.Release()
			return &Figure3Result{Names: out.SubflowNames, Traces: out.SndbufTraces}
		},
		func(_ int, cell *Figure3Result) { *res = *cell })
	return res
}

// PeakBytes returns the maximum occupancy seen per subflow.
func (r *Figure3Result) PeakBytes() []float64 {
	out := make([]float64, len(r.Traces))
	for i, tr := range r.Traces {
		for _, v := range tr.V {
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}

// String renders a down-sampled occupancy table.
func (r *Figure3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: Send Buffer Occupancy (KB), 0.3 Mbps WiFi / 8.6 Mbps LTE\n")
	t := &metrics.Table{Header: append([]string{"t (s)"}, r.Names...)}
	if len(r.Traces) > 0 {
		ds := make([]*metrics.TimeSeries, len(r.Traces))
		for i, tr := range r.Traces {
			ds[i] = tr.Downsample(10)
		}
		for k := 0; k < ds[0].Len(); k++ {
			row := []string{fmt.Sprintf("%.1f", ds[0].T[k].Seconds())}
			for i := range ds {
				if k < ds[i].Len() {
					row = append(row, fmt.Sprintf("%.1f", ds[i].V[k]/1000))
				} else {
					row = append(row, "")
				}
			}
			t.AddRow(row...)
		}
	}
	b.WriteString(t.String())
	return b.String()
}

// Figure5Result holds the CDFs of last-packet time differences for the
// x-8.6 Mbps bandwidth pairs.
type Figure5Result struct {
	WifiBandwidths []float64
	CDFs           []*metrics.CDF
}

// figure5Pairs are the paper's four WiFi settings against 8.6 Mbps LTE.
var figure5Pairs = []float64{0.3, 0.7, 1.1, 4.2}

// Figure5 measures, per chunk, the time difference between the last
// packets received on each path under the default scheduler.
func Figure5(sc Scale) *Figure5Result {
	res := &Figure5Result{
		WifiBandwidths: figure5Pairs,
		CDFs:           make([]*metrics.CDF, len(figure5Pairs)),
	}
	// Cell record: the raw per-chunk diff samples in seconds; the CDF is
	// rebuilt at collection so the cached form stays small and stable.
	runCells(sc, sc.spec("fig5", 1, sc.videoKey()), len(figure5Pairs),
		func(i int) []float64 {
			out := RunStreaming(StreamConfig{
				WifiMbps: figure5Pairs[i], LteMbps: 8.6,
				Scheduler: "minrtt",
				VideoSec:  sc.VideoSec,
			})
			defer out.Release()
			return metrics.DurationsToSeconds(out.Result.LastPacketDiffs())
		},
		func(i int, xs []float64) { res.CDFs[i] = metrics.NewCDF(xs) })
	return res
}

// Median returns the median diff for pair index i.
func (r *Figure5Result) Median(i int) time.Duration {
	return time.Duration(r.CDFs[i].Quantile(0.5) * float64(time.Second))
}

// String renders CDF quantiles per pair.
func (r *Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: Time Difference of Last Packets (CDF quantiles, seconds)\n")
	t := &metrics.Table{Header: []string{"WiFi-LTE (Mbps)", "p25", "p50", "p75", "p95"}}
	for i, wifi := range r.WifiBandwidths {
		c := r.CDFs[i]
		t.AddRow(fmtMbps(wifi)+"-8.6",
			fmt.Sprintf("%.3f", c.Quantile(0.25)),
			fmt.Sprintf("%.3f", c.Quantile(0.50)),
			fmt.Sprintf("%.3f", c.Quantile(0.75)),
			fmt.Sprintf("%.3f", c.Quantile(0.95)))
	}
	b.WriteString(t.String())
	return b.String()
}

// CwndTraceResult carries per-scheduler CWND traces for one subflow
// (Figure 11: WiFi, Figure 12: LTE) in the 0.3/8.6 configuration.
type CwndTraceResult struct {
	Figure     string
	SubflowIdx int
	Schedulers []string
	Traces     map[string]*metrics.TimeSeries
}

// cwndTrace runs the 0.3/8.6 configuration for each scheduler, sampling
// the chosen subflow's congestion window. The cell family is named by
// subflow ("cwnd/sf0", "cwnd/sf1"), not figure label, so the records
// are reusable by any rendering of the same traces.
func cwndTrace(fig string, subflowIdx int, sc Scale) *CwndTraceResult {
	res := &CwndTraceResult{
		Figure:     fig,
		SubflowIdx: subflowIdx,
		Schedulers: []string{"minrtt", "daps", "blest", "ecf"},
		Traces:     make(map[string]*metrics.TimeSeries),
	}
	traces := make([]*metrics.TimeSeries, len(res.Schedulers))
	runCells(sc, sc.spec(fmt.Sprintf("cwnd/sf%d", subflowIdx), 1, sc.videoKey()), len(res.Schedulers),
		func(i int) *metrics.TimeSeries {
			out := RunStreaming(StreamConfig{
				WifiMbps: 0.3, LteMbps: 8.6,
				Scheduler:      res.Schedulers[i],
				VideoSec:       sc.VideoSec,
				SampleInterval: 100 * time.Millisecond,
			})
			defer out.Release()
			return out.CwndTraces[subflowIdx]
		},
		func(i int, tr *metrics.TimeSeries) { traces[i] = tr })
	for i, s := range res.Schedulers {
		res.Traces[s] = traces[i]
	}
	return res
}

// Figure11 traces the WiFi (slow) subflow's CWND per scheduler.
func Figure11(sc Scale) *CwndTraceResult { return cwndTrace("Figure 11 (WiFi CWND)", 0, sc) }

// Figure12 traces the LTE (fast) subflow's CWND per scheduler.
func Figure12(sc Scale) *CwndTraceResult { return cwndTrace("Figure 12 (LTE CWND)", 1, sc) }

// MeanCwnd returns the time-averaged window per scheduler.
func (r *CwndTraceResult) MeanCwnd(s string) float64 { return r.Traces[s].MeanValue() }

// String renders mean/summary rows per scheduler plus a down-sampled
// trace for ECF vs default.
func (r *CwndTraceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — 0.3 Mbps WiFi and 8.6 Mbps LTE\n", r.Figure)
	t := &metrics.Table{Header: []string{"scheduler", "mean cwnd (segments)", "max"}}
	for _, s := range r.Schedulers {
		tr := r.Traces[s]
		maxV := 0.0
		for _, v := range tr.V {
			if v > maxV {
				maxV = v
			}
		}
		t.AddRow(s, fmt.Sprintf("%.1f", tr.MeanValue()), fmt.Sprintf("%.0f", maxV))
	}
	b.WriteString(t.String())
	return b.String()
}

// OOOResult carries out-of-order delay CCDFs per scheduler for one
// bandwidth configuration.
type OOOResult struct {
	Label      string
	Schedulers []string
	CDFs       map[string]*metrics.CDF
}

// addOOO registers one bandwidth pair's per-scheduler OOO-delay cells
// on the batch; the result's CDFs fill in when the batch runs. The cell
// record is the raw delay samples in seconds.
func addOOO(b *results.Batch, label string, wifi, lte float64, schedulers []string, sc Scale) *OOOResult {
	res := &OOOResult{Label: label, Schedulers: schedulers, CDFs: make(map[string]*metrics.CDF)}
	var mu sync.Mutex // collect runs concurrently and CDFs is a map
	results.Add(b, sc.spec(fmt.Sprintf("ooo/%s-%s", fmtMbps(wifi), fmtMbps(lte)), 1, sc.videoKey()), len(schedulers),
		func(i int) []float64 {
			out := RunStreaming(StreamConfig{
				WifiMbps: wifi, LteMbps: lte,
				Scheduler: schedulers[i],
				VideoSec:  sc.VideoSec,
			})
			defer out.Release()
			return metrics.DurationsToSeconds(out.OOODelays)
		},
		func(i int, xs []float64) {
			c := metrics.NewCDF(xs)
			mu.Lock()
			res.CDFs[schedulers[i]] = c
			mu.Unlock()
		})
	return res
}

// Figure13Result is the default scheduler's OOO delay across pairs.
type Figure13Result struct {
	WifiBandwidths []float64
	CDFs           []*metrics.CDF
}

// Figure13 measures OOO-delay CCDFs for the default scheduler at the
// four x-8.6 pairs.
func Figure13(sc Scale) *Figure13Result {
	res := &Figure13Result{
		WifiBandwidths: figure5Pairs,
		CDFs:           make([]*metrics.CDF, len(figure5Pairs)),
	}
	runCells(sc, sc.spec("fig13", 1, sc.videoKey()), len(figure5Pairs),
		func(i int) []float64 {
			out := RunStreaming(StreamConfig{
				WifiMbps: figure5Pairs[i], LteMbps: 8.6,
				Scheduler: "minrtt",
				VideoSec:  sc.VideoSec,
			})
			defer out.Release()
			return metrics.DurationsToSeconds(out.OOODelays)
		},
		func(i int, xs []float64) { res.CDFs[i] = metrics.NewCDF(xs) })
	return res
}

// String renders CCDF rows.
func (r *Figure13Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 13: Out-of-Order Delay CCDF (Default scheduler)\n")
	t := &metrics.Table{Header: []string{"WiFi-LTE", "P(>0.1s)", "P(>0.5s)", "P(>1.0s)", "mean (s)"}}
	for i, wifi := range r.WifiBandwidths {
		c := r.CDFs[i]
		t.AddRow(fmtMbps(wifi)+"-8.6",
			fmt.Sprintf("%.4f", c.CCDFAt(0.1)),
			fmt.Sprintf("%.4f", c.CCDFAt(0.5)),
			fmt.Sprintf("%.4f", c.CCDFAt(1.0)),
			fmt.Sprintf("%.4f", c.Mean()))
	}
	b.WriteString(t.String())
	return b.String()
}

// Figure14Result is the four-scheduler OOO comparison at two pairs.
type Figure14Result struct {
	Heterogeneous *OOOResult // 0.3 / 8.6
	Symmetric     *OOOResult // 4.2 / 8.6
}

// Figure14 compares OOO delay across schedulers; both panels' cells run
// through one shared pool.
func Figure14(sc Scale) *Figure14Result {
	scheds := []string{"minrtt", "daps", "blest", "ecf"}
	b := newBatch(sc)
	res := &Figure14Result{
		Heterogeneous: addOOO(b, "0.3 Mbps WiFi and 8.6 Mbps LTE", 0.3, 8.6, scheds, sc),
		Symmetric:     addOOO(b, "4.2 Mbps WiFi and 8.6 Mbps LTE", 4.2, 8.6, scheds, sc),
	}
	runBatch(b)
	return res
}

// String renders both panels.
func (r *Figure14Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 14: Out-of-Order Delay by Scheduler\n")
	for _, panel := range []*OOOResult{r.Heterogeneous, r.Symmetric} {
		fmt.Fprintf(&b, "(%s)\n", panel.Label)
		t := &metrics.Table{Header: []string{"scheduler", "P(>0.1s)", "P(>0.5s)", "P(>0.8s)", "mean (s)"}}
		for _, s := range panel.Schedulers {
			c := panel.CDFs[s]
			t.AddRow(s,
				fmt.Sprintf("%.4f", c.CCDFAt(0.1)),
				fmt.Sprintf("%.4f", c.CCDFAt(0.5)),
				fmt.Sprintf("%.4f", c.CCDFAt(0.8)),
				fmt.Sprintf("%.4f", c.Mean()))
		}
		b.WriteString(t.String())
	}
	return b.String()
}
