package experiments

import (
	"testing"

	"repro/internal/results"
)

// TestEnumerateActiveCoversColdStoreGroups is the anti-drift guard for
// -cache-prune: every group a real (cold, cached) run writes must be in
// the enumerated active matrix for the same scale, or prune would
// delete live records. A couple of cheap drivers stand in for the
// catalog — the enumerated set itself is produced by running all of it.
func TestEnumerateActiveCoversColdStoreGroups(t *testing.T) {
	sc := Scale{
		VideoSec:        5,
		GridVideoSec:    5,
		RandomDurSec:    20,
		RandomScenarios: 1,
		WebRuns:         1,
		WildWebRuns:     1,
	}

	dir := t.TempDir()
	cold := sc
	cold.Results = cacheSession(t, dir)
	Figure16(cold) // random-bandwidth cells (randomKey, schema'd)
	Figure1(cold)  // single streaming cell (videoKey)
	if _, c := cold.Results.Stats(); c == 0 {
		t.Fatal("cold pass computed nothing; test is vacuous")
	}

	active := make(map[results.Group]bool)
	for _, g := range EnumerateActive(sc) {
		active[g] = true
	}
	if len(active) == 0 {
		t.Fatal("EnumerateActive returned nothing")
	}

	store, err := results.OpenRead(dir)
	if err != nil {
		t.Fatal(err)
	}
	audit, err := store.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if audit.Records == 0 {
		t.Fatal("cold store is empty; test is vacuous")
	}
	for _, line := range audit.Lines {
		g := results.Group{Experiment: line.Experiment, Scale: line.Scale, Schema: line.Schema}
		if !active[g] {
			t.Errorf("group %+v written by a real run is missing from the active matrix (prune would delete it)", g)
		}
	}

	// And the matrix actually discriminates: a stale group must not be
	// covered.
	if active[results.Group{Experiment: "fig16", Scale: "rd999,rs9", Schema: 2}] {
		t.Error("active matrix covers a scale that was never enumerated")
	}
}
