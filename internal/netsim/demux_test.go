package netsim

import (
	"testing"
	"testing/quick"
)

func TestDemuxRoutesByFlow(t *testing.T) {
	d := NewDemux()
	var gotA, gotB []Packet
	d.Register(1, 0, func(p *Packet) { gotA = append(gotA, *p) })
	d.Register(2, 1, func(p *Packet) { gotB = append(gotB, *p) })
	d.OnPacket(&Packet{ConnID: 1, SubflowID: 0, Seq: 1})
	d.OnPacket(&Packet{ConnID: 2, SubflowID: 1, Seq: 2})
	d.OnPacket(&Packet{ConnID: 1, SubflowID: 0, Seq: 3})
	if len(gotA) != 2 || len(gotB) != 1 {
		t.Fatalf("routes: A=%d B=%d, want 2/1", len(gotA), len(gotB))
	}
	if gotA[1].Seq != 3 || gotB[0].Seq != 2 {
		t.Fatal("payload routing mismatch")
	}
}

func TestDemuxUnknownFlowCounted(t *testing.T) {
	d := NewDemux()
	d.OnPacket(&Packet{ConnID: 9, SubflowID: 9})
	if d.Unrouted() != 1 {
		t.Fatalf("unrouted = %d, want 1", d.Unrouted())
	}
}

func TestDemuxUnregister(t *testing.T) {
	d := NewDemux()
	n := 0
	d.Register(1, 0, func(*Packet) { n++ })
	d.OnPacket(&Packet{ConnID: 1, SubflowID: 0})
	d.Unregister(1, 0)
	d.OnPacket(&Packet{ConnID: 1, SubflowID: 0})
	if n != 1 {
		t.Fatalf("delivered %d, want 1", n)
	}
	if d.Unrouted() != 1 {
		t.Fatalf("unrouted = %d, want 1 after unregister", d.Unrouted())
	}
}

func TestDemuxReplaceRoute(t *testing.T) {
	d := NewDemux()
	a, b := 0, 0
	d.Register(1, 0, func(*Packet) { a++ })
	d.Register(1, 0, func(*Packet) { b++ })
	d.OnPacket(&Packet{ConnID: 1, SubflowID: 0})
	if a != 0 || b != 1 {
		t.Fatalf("a=%d b=%d, replacement should win", a, b)
	}
}

func TestDemuxConservationProperty(t *testing.T) {
	// Every packet is either routed to exactly one receiver or counted
	// as unrouted.
	if err := quick.Check(func(conns []uint8) bool {
		if len(conns) > 200 {
			return true
		}
		d := NewDemux()
		counts := make(map[int]int)
		for c := 0; c < 4; c++ {
			c := c
			d.Register(c, 0, func(*Packet) { counts[c]++ })
		}
		for _, c := range conns {
			d.OnPacket(&Packet{ConnID: int(c % 8), SubflowID: 0})
		}
		routed := 0
		for _, n := range counts {
			routed += n
		}
		return routed+int(d.Unrouted()) == len(conns)
	}, nil); err != nil {
		t.Fatal(err)
	}
}
