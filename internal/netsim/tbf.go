package netsim

import (
	"time"

	"repro/internal/ring"
	"repro/internal/sim"
)

// TokenBucket models tc-tbf style shaping, the mechanism the paper uses
// to regulate WiFi and LTE bandwidth on the server ("using the Linux
// traffic control utility tc", §3.1). Unlike the Link's pure serializer,
// a token bucket admits short bursts up to its bucket size at line rate,
// then throttles to the token rate; packets that find neither tokens nor
// queue space are dropped.
//
// It composes in front of a Link: Send consumes tokens and forwards to
// the Link (which should be configured at a much higher "line" rate).
type TokenBucket struct {
	eng *sim.Engine

	rate        float64 // tokens (bytes) per second
	bucketSize  float64 // burst capacity in bytes
	tokens      float64
	lastRefill  sim.Time
	queueLimit  int // bytes waiting for tokens
	queuedBytes int
	// queue is the token backlog: [qhead, qtail) live, FIFO. The ring
	// reuses its buffer forever, so the backlog allocates only until it
	// reaches its high-water mark.
	queue        ring.Ring[Packet]
	qhead, qtail uint64
	next         *Link
	draining     bool

	dropped int64
	shaped  int64
}

// TokenBucketConfig parameterizes a TokenBucket.
type TokenBucketConfig struct {
	// RateBps is the token rate in bits per second.
	RateBps float64
	// BurstBytes is the bucket size. Zero selects 16 KiB (a typical tc
	// burst for megabit-scale rates).
	BurstBytes int
	// QueueBytes bounds the backlog waiting for tokens. Zero selects
	// 48 KiB, matching the repository's default drop-tail depth.
	QueueBytes int
}

// NewTokenBucket builds a shaper feeding the given link.
func NewTokenBucket(eng *sim.Engine, cfg TokenBucketConfig, next *Link) *TokenBucket {
	tb := &TokenBucket{eng: eng}
	tb.Reset(cfg, next)
	return tb
}

// Reset reconfigures the shaper in place to the state NewTokenBucket
// would construct: a full bucket, an empty backlog (the ring keeps its
// grown capacity) and zeroed counters. Like Link.Reset it requires the
// engine to have been reset first.
func (tb *TokenBucket) Reset(cfg TokenBucketConfig, next *Link) {
	if cfg.RateBps <= 0 {
		panic("netsim: token bucket needs a positive rate")
	}
	if cfg.BurstBytes <= 0 {
		cfg.BurstBytes = 16 * 1024
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 48 * 1024
	}
	tb.rate = cfg.RateBps / 8
	tb.bucketSize = float64(cfg.BurstBytes)
	tb.tokens = float64(cfg.BurstBytes)
	tb.lastRefill = 0
	tb.queueLimit = cfg.QueueBytes
	tb.queuedBytes = 0
	tb.qhead, tb.qtail = 0, 0
	tb.next = next
	tb.draining = false
	tb.dropped = 0
	tb.shaped = 0
}

// Dropped returns packets discarded for lack of tokens and queue space.
func (tb *TokenBucket) Dropped() int64 { return tb.dropped }

// Shaped returns packets that had to wait for tokens.
func (tb *TokenBucket) Shaped() int64 { return tb.shaped }

// QueuedBytes returns the bytes waiting for tokens.
func (tb *TokenBucket) QueuedBytes() int { return tb.queuedBytes }

// SetRateBps changes the token rate.
func (tb *TokenBucket) SetRateBps(rate float64) {
	if rate <= 0 {
		panic("netsim: token bucket needs a positive rate")
	}
	tb.refill()
	tb.rate = rate / 8
}

// refill accrues tokens since the last refill, capped at the bucket size.
func (tb *TokenBucket) refill() {
	now := tb.eng.Now()
	tb.tokens += tb.rate * (now - tb.lastRefill).Seconds()
	if tb.tokens > tb.bucketSize {
		tb.tokens = tb.bucketSize
	}
	tb.lastRefill = now
}

// Send shapes one packet. It returns false when the packet was dropped.
func (tb *TokenBucket) Send(p *Packet) bool {
	tb.refill()
	if tb.qhead == tb.qtail && tb.tokens >= float64(p.Size) {
		tb.tokens -= float64(p.Size)
		return tb.next.Send(p)
	}
	if tb.queuedBytes+p.Size > tb.queueLimit {
		tb.dropped++
		return false
	}
	tb.shaped++
	*tb.queue.PushRef(tb.qhead, tb.qtail) = *p
	tb.qtail++
	tb.queuedBytes += p.Size
	tb.scheduleDrain()
	return true
}

// scheduleDrain arms a timer for when enough tokens exist for the head
// packet.
func (tb *TokenBucket) scheduleDrain() {
	if tb.draining || tb.qhead == tb.qtail {
		return
	}
	tb.draining = true
	need := float64(tb.queue.At(tb.qhead).Size) - tb.tokens
	wait := time.Duration(0)
	if need > 0 {
		wait = time.Duration(need / tb.rate * float64(time.Second))
	}
	tb.eng.ScheduleEvent(wait, kindTokenBucketDrain, tb)
}

// kindTokenBucketDrain dispatches the drain through the typed event
// table (a method value like tb.drain would allocate on every arm).
var kindTokenBucketDrain sim.EventKind

func init() {
	kindTokenBucketDrain = sim.RegisterKind("netsim.TokenBucket.drain", func(a any) { a.(*TokenBucket).drain() })
}

// drain forwards queued packets while tokens allow.
func (tb *TokenBucket) drain() {
	tb.draining = false
	tb.refill()
	for tb.qhead < tb.qtail {
		// Forward straight out of the backlog slot: the downstream link
		// copies the packet into its own ring and never reenters this
		// shaper, so the in-queue pointer stays valid across the call.
		p := tb.queue.At(tb.qhead)
		if tb.tokens < float64(p.Size) {
			break
		}
		tb.queuedBytes -= p.Size
		tb.tokens -= float64(p.Size)
		tb.next.Send(p)
		tb.qhead++
	}
	tb.scheduleDrain()
}
