package netsim

import (
	"fmt"
	"strings"
	"time"
)

// TraceEventKind classifies packet-level trace events.
type TraceEventKind uint8

const (
	// TraceSend: packet accepted onto a link.
	TraceSend TraceEventKind = iota
	// TraceDeliver: packet handed to a receiver.
	TraceDeliver
	// TraceDrop: packet discarded by a full queue.
	TraceDrop
	// TraceLoss: packet discarded by the random-loss process.
	TraceLoss
)

func (k TraceEventKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	case TraceLoss:
		return "loss"
	default:
		return "unknown"
	}
}

// TraceEvent is one recorded packet event.
type TraceEvent struct {
	At   time.Duration
	Kind TraceEventKind
	Link string
	Pkt  Packet
}

// String renders a tcpdump-style line.
func (e TraceEvent) String() string {
	base := fmt.Sprintf("%.6f %-7s %-9s conn=%d sf=%d", e.At.Seconds(), e.Kind, e.Link, e.Pkt.ConnID, e.Pkt.SubflowID)
	if e.Pkt.Kind == Data {
		return fmt.Sprintf("%s data seq=%d dsn=%d len=%d rtx=%v", base, e.Pkt.Seq, e.Pkt.DSN, e.Pkt.PayloadLen, e.Pkt.Retransmit)
	}
	return fmt.Sprintf("%s ack ackseq=%d dataack=%d wnd=%d hole=%v", base, e.Pkt.AckSeq, e.Pkt.DataAck, e.Pkt.Window, e.Pkt.SackHole)
}

// Tracer records packet events from instrumented links, with an optional
// filter and a bound on retained events (oldest evicted first).
type Tracer struct {
	// Filter, when non-nil, drops events for which it returns false.
	Filter func(TraceEvent) bool
	// Limit bounds retained events; zero means 64k.
	Limit int

	events  []TraceEvent
	evicted int64
}

// NewTracer returns a tracer retaining up to limit events (0 = 64k).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = 64 * 1024
	}
	return &Tracer{Limit: limit}
}

// Record adds one event, applying the filter and retention limit.
func (t *Tracer) Record(e TraceEvent) {
	if t.Filter != nil && !t.Filter(e) {
		return
	}
	if len(t.events) >= t.Limit {
		t.events = t.events[1:]
		t.evicted++
	}
	t.events = append(t.events, e)
}

// Events returns the retained events in order.
func (t *Tracer) Events() []TraceEvent { return t.events }

// Evicted returns how many events were discarded by the retention limit.
func (t *Tracer) Evicted() int64 { return t.evicted }

// Count returns the retained event count.
func (t *Tracer) Count() int { return len(t.events) }

// CountKind returns how many retained events have the given kind.
func (t *Tracer) CountKind(k TraceEventKind) int {
	n := 0
	for _, e := range t.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Dump renders all retained events, one per line.
func (t *Tracer) Dump() string {
	var b strings.Builder
	for _, e := range t.events {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}

// Attach instruments a link so that its packet events are recorded. The
// original receiver keeps working; Attach wraps it.
func (t *Tracer) Attach(l *Link) {
	l.tracer = t
}
