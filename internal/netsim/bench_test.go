package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// BenchmarkLinkSend measures the steady-state per-packet cost of a link
// traversal (Send + serialization + propagation + delivery), with a
// window of packets kept in flight so the pipe never idles — the shape
// of every data path in the simulator.
func BenchmarkLinkSend(b *testing.B) {
	eng := sim.New()
	l := NewLink(eng, LinkConfig{
		Name:       "bench",
		RateBps:    100e6,
		Delay:      5 * time.Millisecond,
		QueueBytes: 1 << 20,
	}, nil)
	sent := 0
	l.SetReceiver(func(p *Packet) {
		if sent < b.N {
			sent++
			l.Send(&Packet{Kind: Data, Size: 1200})
		}
	})
	prime := 64
	if prime > b.N {
		prime = b.N
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < prime; i++ {
		sent++
		l.Send(&Packet{Kind: Data, Size: 1200})
	}
	eng.Run()
	b.ReportMetric(float64(eng.Processed()+eng.Coalesced())/float64(b.N), "events/op")
}

// BenchmarkLinkSendLossy is BenchmarkLinkSend with the random-loss
// process enabled, covering the RNG branch of delivery.
func BenchmarkLinkSendLossy(b *testing.B) {
	eng := sim.New()
	l := NewLink(eng, LinkConfig{
		Name:       "bench",
		RateBps:    100e6,
		Delay:      5 * time.Millisecond,
		QueueBytes: 1 << 20,
		LossRate:   0.01,
		Seed:       7,
	}, nil)
	sent := 0
	l.SetReceiver(func(p *Packet) {
		if sent < b.N {
			sent++
			l.Send(&Packet{Kind: Data, Size: 1200})
		}
	})
	prime := 64
	if prime > b.N {
		prime = b.N
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < prime; i++ {
		sent++
		l.Send(&Packet{Kind: Data, Size: 1200})
	}
	// Losses shrink the in-flight window; top it back up until every
	// packet has been sent.
	for eng.Run(); sent < b.N; eng.Run() {
		sent++
		l.Send(&Packet{Kind: Data, Size: 1200})
	}
}
