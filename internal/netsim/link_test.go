package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func mbps(m float64) float64 { return m * 1e6 }

func TestLinkDeliversWithSerializationAndPropagation(t *testing.T) {
	eng := sim.New()
	var arrived []sim.Time
	l := NewLink(eng, LinkConfig{Name: "t", RateBps: mbps(8), Delay: 10 * time.Millisecond}, func(p *Packet) {
		arrived = append(arrived, eng.Now())
	})
	// 1000 bytes at 8 Mbps = 1 ms serialization; +10 ms propagation.
	if !l.Send(&Packet{Size: 1000}) {
		t.Fatal("Send returned false")
	}
	eng.Run()
	if len(arrived) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(arrived))
	}
	want := 11 * time.Millisecond
	if arrived[0] != want {
		t.Fatalf("arrival at %v, want %v", arrived[0], want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	eng := sim.New()
	var arrived []sim.Time
	l := NewLink(eng, LinkConfig{Name: "t", RateBps: mbps(8), Delay: 0}, func(p *Packet) {
		arrived = append(arrived, eng.Now())
	})
	for i := 0; i < 3; i++ {
		l.Send(&Packet{Size: 1000})
	}
	eng.Run()
	if len(arrived) != 3 {
		t.Fatalf("delivered %d, want 3", len(arrived))
	}
	for i, want := range []time.Duration{1, 2, 3} {
		if arrived[i] != want*time.Millisecond {
			t.Fatalf("packet %d arrived at %v, want %v ms", i, arrived[i], want)
		}
	}
}

func TestLinkDropsWhenQueueFull(t *testing.T) {
	eng := sim.New()
	delivered := 0
	l := NewLink(eng, LinkConfig{Name: "t", RateBps: mbps(1), Delay: 0, QueueBytes: 2500}, func(p *Packet) {
		delivered++
	})
	ok1 := l.Send(&Packet{Size: 1000})
	ok2 := l.Send(&Packet{Size: 1000})
	ok3 := l.Send(&Packet{Size: 1000}) // 3000 > 2500: dropped
	eng.Run()
	if !ok1 || !ok2 {
		t.Fatal("first two sends should be accepted")
	}
	if ok3 {
		t.Fatal("third send should be dropped")
	}
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2", delivered)
	}
	st := l.Stats()
	if st.Dropped != 1 || st.Sent != 2 || st.Delivered != 2 {
		t.Fatalf("stats = %+v, want 1 drop, 2 sent, 2 delivered", st)
	}
}

func TestLinkQueueDrainsOverTime(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, LinkConfig{Name: "t", RateBps: mbps(8), Delay: 0, QueueBytes: 10000}, func(p *Packet) {})
	l.Send(&Packet{Size: 1000})
	l.Send(&Packet{Size: 1000})
	if l.QueuedBytes() != 2000 {
		t.Fatalf("queued = %d, want 2000", l.QueuedBytes())
	}
	eng.RunUntil(1500 * time.Microsecond) // first packet serialized at 1 ms
	if l.QueuedBytes() != 1000 {
		t.Fatalf("queued = %d after first departure, want 1000", l.QueuedBytes())
	}
	eng.Run()
	if l.QueuedBytes() != 0 {
		t.Fatalf("queued = %d at end, want 0", l.QueuedBytes())
	}
}

func TestLinkRateChangeAffectsLaterPackets(t *testing.T) {
	eng := sim.New()
	var arrived []sim.Time
	l := NewLink(eng, LinkConfig{Name: "t", RateBps: mbps(8), Delay: 0}, func(p *Packet) {
		arrived = append(arrived, eng.Now())
	})
	l.Send(&Packet{Size: 1000}) // 1 ms at 8 Mbps
	eng.Run()
	l.SetRateBps(mbps(4))
	l.Send(&Packet{Size: 1000}) // 2 ms at 4 Mbps
	eng.Run()
	if arrived[0] != time.Millisecond {
		t.Fatalf("first at %v, want 1ms", arrived[0])
	}
	if arrived[1] != 3*time.Millisecond {
		t.Fatalf("second at %v, want 3ms", arrived[1])
	}
}

func TestLinkRandomLoss(t *testing.T) {
	eng := sim.New()
	delivered := 0
	l := NewLink(eng, LinkConfig{Name: "t", RateBps: mbps(100), Delay: 0, LossRate: 0.5, Seed: 1, QueueBytes: 1 << 30}, func(p *Packet) {
		delivered++
	})
	const n = 2000
	for i := 0; i < n; i++ {
		l.Send(&Packet{Size: 100})
	}
	eng.Run()
	if delivered < n*4/10 || delivered > n*6/10 {
		t.Fatalf("delivered %d of %d with 50%% loss, want ~half", delivered, n)
	}
	st := l.Stats()
	if st.Lost+int64(delivered) != n {
		t.Fatalf("lost(%d)+delivered(%d) != sent(%d)", st.Lost, delivered, n)
	}
}

func TestLinkPanicsOnBadConfig(t *testing.T) {
	eng := sim.New()
	assertPanics(t, "zero rate", func() { NewLink(eng, LinkConfig{RateBps: 0}, nil) })
	l := NewLink(eng, LinkConfig{RateBps: 1e6}, func(*Packet) {})
	assertPanics(t, "zero size", func() { l.Send(&Packet{Size: 0}) })
	assertPanics(t, "negative rate set", func() { l.SetRateBps(-1) })
	l2 := NewLink(eng, LinkConfig{RateBps: 1e6}, nil)
	assertPanics(t, "nil receiver", func() { l2.Send(&Packet{Size: 10}) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: did not panic", name)
		}
	}()
	fn()
}

func TestLinkConservation(t *testing.T) {
	// Accepted packets are either delivered or randomly lost; never
	// duplicated, never stuck.
	eng := sim.New()
	delivered := 0
	l := NewLink(eng, LinkConfig{Name: "t", RateBps: mbps(10), Delay: time.Millisecond, QueueBytes: 20000, LossRate: 0.1, Seed: 3}, func(p *Packet) {
		delivered++
	})
	accepted := 0
	for i := 0; i < 500; i++ {
		if l.Send(&Packet{Size: 1200}) {
			accepted++
		}
		// Space sends so the queue partially drains.
		eng.RunUntil(eng.Now() + 500*time.Microsecond)
	}
	eng.Run()
	st := l.Stats()
	if int64(delivered)+st.Lost != int64(accepted) {
		t.Fatalf("delivered(%d)+lost(%d) != accepted(%d)", delivered, st.Lost, accepted)
	}
	if l.QueuedBytes() != 0 {
		t.Fatalf("queue not drained: %d bytes", l.QueuedBytes())
	}
}

func TestPathWiring(t *testing.T) {
	eng := sim.New()
	p := NewPath(eng, PathConfig{Name: "wifi", RateBps: mbps(8), Delay: 5 * time.Millisecond})
	var fwdGot, revGot bool
	p.SetForwardReceiver(func(*Packet) { fwdGot = true })
	p.SetReverseReceiver(func(*Packet) { revGot = true })
	p.Forward().Send(&Packet{Size: 100})
	p.Reverse().Send(&Packet{Size: 100})
	eng.Run()
	if !fwdGot || !revGot {
		t.Fatalf("fwd=%v rev=%v, want both true", fwdGot, revGot)
	}
	if p.BaseRTT() != 10*time.Millisecond {
		t.Fatalf("BaseRTT = %v, want 10ms", p.BaseRTT())
	}
	if p.Name() != "wifi" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestPathReverseRateDefaultsToForward(t *testing.T) {
	eng := sim.New()
	p := NewPath(eng, PathConfig{Name: "x", RateBps: mbps(2)})
	if p.Reverse().RateBps() != mbps(2) {
		t.Fatalf("reverse rate = %v, want %v", p.Reverse().RateBps(), mbps(2))
	}
	p2 := NewPath(eng, PathConfig{Name: "y", RateBps: mbps(2), ReverseRateBps: mbps(10)})
	if p2.Reverse().RateBps() != mbps(10) {
		t.Fatalf("reverse rate = %v, want %v", p2.Reverse().RateBps(), mbps(10))
	}
}

func TestPacketKindString(t *testing.T) {
	if Data.String() != "data" || Ack.String() != "ack" {
		t.Fatal("PacketKind.String mismatch")
	}
	if PacketKind(9).String() != "unknown" {
		t.Fatal("unknown kind should stringify to unknown")
	}
}

// TestLinkResetMatchesFreshLink drives identical traffic through a
// reused (engine-reset + link-reset) link and a freshly constructed
// one, requiring identical delivery times, loss draws and counters —
// the equivalence the pooled network relies on.
func TestLinkResetMatchesFreshLink(t *testing.T) {
	cfg := LinkConfig{Name: "t", RateBps: mbps(2), Delay: 5 * time.Millisecond, QueueBytes: 4000, LossRate: 0.2, Seed: 9}
	drive := func(eng *sim.Engine, l *Link) ([]sim.Time, LinkStats) {
		var arrived []sim.Time
		l.SetReceiver(func(p *Packet) { arrived = append(arrived, eng.Now()) })
		for i := 0; i < 50; i++ {
			l.Send(&Packet{Size: 1000})
			eng.RunUntil(eng.Now() + 2*time.Millisecond)
		}
		eng.Run()
		return arrived, l.Stats()
	}

	engA := sim.New()
	lA := NewLink(engA, LinkConfig{Name: "warmup", RateBps: mbps(50), Delay: time.Millisecond, LossRate: 0.5, Seed: 1}, nil)
	drive(engA, lA) // pollute: different config, different loss stream
	engA.Reset()
	lA.Reset(cfg, nil)
	gotT, gotS := drive(engA, lA)

	engB := sim.New()
	wantT, wantS := drive(engB, NewLink(engB, cfg, nil))

	if gotS != wantS {
		t.Fatalf("stats after reset = %+v, fresh = %+v", gotS, wantS)
	}
	if len(gotT) != len(wantT) {
		t.Fatalf("delivered %d packets after reset, fresh delivered %d", len(gotT), len(wantT))
	}
	for i := range gotT {
		if gotT[i] != wantT[i] {
			t.Fatalf("arrival %d at %v after reset, fresh at %v", i, gotT[i], wantT[i])
		}
	}
}
