// Package netsim models network paths at packet granularity: rate-shaped
// links with propagation delay and finite drop-tail buffers, composed into
// bidirectional paths. It is the substrate that stands in for the paper's
// tc-regulated WiFi and LTE interfaces.
package netsim

import "time"

// PacketKind distinguishes the two packet classes the transport layer
// exchanges.
type PacketKind uint8

const (
	// Data is a TCP data segment.
	Data PacketKind = iota
	// Ack is a (pure) acknowledgement.
	Ack
)

func (k PacketKind) String() string {
	switch k {
	case Data:
		return "data"
	case Ack:
		return "ack"
	default:
		return "unknown"
	}
}

// Packet is the unit of transmission. The transport layer fills in the
// sequencing metadata; netsim only reads Size.
type Packet struct {
	Kind PacketKind
	// Size is the wire size in bytes, headers included.
	Size int
	// ConnID identifies the MPTCP connection (links are shared across
	// connections; the Demux routes on ConnID+SubflowID).
	ConnID int
	// SubflowID identifies the owning MPTCP subflow within its connection.
	SubflowID int
	// Seq is the subflow-level sequence number (segment index).
	Seq int64
	// DSN is the MPTCP data sequence number (data-level segment index).
	// -1 for packets that carry no data-level mapping.
	DSN int64
	// PayloadLen is the number of application bytes carried.
	PayloadLen int
	// SentAt is the virtual time the sender handed the packet to the link.
	SentAt time.Duration
	// Retransmit marks a retransmitted segment.
	Retransmit bool

	// Ack fields (valid when Kind == Ack).

	// AckSeq is the cumulative subflow-level acknowledgement: the next
	// expected subflow sequence number.
	AckSeq int64
	// DataAck is the cumulative data-level acknowledgement: the next
	// expected DSN at the connection level.
	DataAck int64
	// Window is the advertised connection-level receive window in bytes.
	Window int64
	// EchoSentAt echoes SentAt of the segment that triggered this ACK,
	// for RTT sampling without timestamps state.
	EchoSentAt time.Duration
	// EchoRetransmit reports whether the ACKed segment was a retransmit
	// (Karn's rule: skip the RTT sample).
	EchoRetransmit bool
	// SackHole reports whether the receiver currently has a gap in the
	// subflow sequence space (drives dup-ACK accounting at the sender).
	SackHole bool
}
