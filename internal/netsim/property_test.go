package netsim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// The property under test: the batched drain (one multi-delivery event
// claiming successors via sim.RunsNext, departures accounted lazily
// against CurrentTicket) is observationally identical to the reference
// scheme where every departure and every arrival is its own heap event
// under the same reserved tickets. The reference below reimplements the
// link's serializer math independently and schedules eagerly; both are
// driven by identical randomized schedules of same-instant packet
// bursts, mid-flight rate and delay changes (the reorder clamp), random
// loss, and queue-occupancy probes, and must agree on every delivery
// (identity and timestamp), every drop decision, every occupancy
// reading, and the final counters.

// refFlight is one in-flight packet of the reference link.
type refFlight struct {
	pkt       Packet
	departure sim.Time
	arrival   sim.Time
}

// refLink schedules one event per serializer departure and one per
// arrival, exactly like the pre-batching link.
type refLink struct {
	eng         *sim.Engine
	rate        float64
	delay       time.Duration
	queueLimit  int
	queued      int
	busyUntil   sim.Time
	lastArrival sim.Time
	lossRate    float64
	rng         *sim.RNG
	dst         Receiver

	q []refFlight

	sent, delivered, dropped, lost int64
}

// refEv points one scheduled sub-event at its in-flight entry.
type refEv struct {
	l   *refLink
	idx int
}

var kindRefDepart, kindRefArrive sim.EventKind

func init() {
	kindRefDepart = sim.RegisterKind("netsim.test.refDepart", func(a any) {
		ev := a.(*refEv)
		ev.l.queued -= ev.l.q[ev.idx].pkt.Size
	})
	kindRefArrive = sim.RegisterKind("netsim.test.refArrive", func(a any) {
		ev := a.(*refEv)
		l := ev.l
		f := &l.q[ev.idx]
		if l.lossRate > 0 && l.rng.Float64() < l.lossRate {
			l.lost++
			return
		}
		l.delivered++
		l.dst(&f.pkt)
	})
}

func newRefLink(eng *sim.Engine, cfg LinkConfig, dst Receiver) *refLink {
	l := &refLink{
		eng:        eng,
		rate:       cfg.RateBps,
		delay:      cfg.Delay,
		queueLimit: cfg.QueueBytes,
		lossRate:   cfg.LossRate,
		dst:        dst,
	}
	if l.lossRate > 0 {
		// Mirrors the production link's loss-stream seeding so both draw
		// identical deviates in identical delivery order.
		l.rng = sim.NewRNG(cfg.Seed + 0x9d5f)
	}
	return l
}

func (l *refLink) SetRateBps(rate float64) { l.rate = rate }

func (l *refLink) SetDelay(d time.Duration) { l.delay = d }

func (l *refLink) Send(p *Packet) bool {
	if l.queued+p.Size > l.queueLimit {
		l.dropped++
		return false
	}
	l.sent++
	l.queued += p.Size

	now := l.eng.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	txTime := time.Duration(float64(p.Size*8) / l.rate * float64(time.Second))
	if txTime <= 0 {
		txTime = time.Nanosecond
	}
	l.busyUntil = start + txTime
	departure := l.busyUntil
	arrival := departure + l.delay
	if arrival < l.lastArrival {
		arrival = l.lastArrival
	}
	l.lastArrival = arrival

	depTk := l.eng.ReserveTicket()
	arrTk := l.eng.ReserveTicket()
	idx := len(l.q)
	l.q = append(l.q, refFlight{pkt: *p, departure: departure, arrival: arrival})
	l.eng.AtTicket(departure, depTk, kindRefDepart, &refEv{l: l, idx: idx})
	l.eng.AtTicket(arrival, arrTk, kindRefArrive, &refEv{l: l, idx: idx})
	return true
}

// propAction is one scripted workload step. The same precomputed script
// drives both links so every timestamp, burst and parameter change —
// and therefore every engine ticket — lines up.
type propAction struct {
	at    sim.Time
	kind  int // 0 send, 1 setRate, 2 setDelay, 3 probe
	id    int64
	size  int
	rate  float64
	delay time.Duration
}

func propScript(seed uint64) []propAction {
	rng := sim.NewRNG(seed*0x9e3779b97f4a7c15 + 1)
	var acts []propAction
	var id int64
	at := sim.Time(0)
	for i := 0; i < 400; i++ {
		// A coarse grid keeps many actions landing at the same instant,
		// exercising same-timestamp tie-breaks and occupancy reads.
		at += sim.Time(rng.Intn(5)) * 100 * time.Microsecond
		switch r := rng.Intn(10); {
		case r < 6: // burst of back-to-back sends
			n := 1 + rng.Intn(4)
			for j := 0; j < n; j++ {
				id++
				acts = append(acts, propAction{at: at, kind: 0, id: id, size: 200 + rng.Intn(1300)})
			}
		case r < 7:
			acts = append(acts, propAction{at: at, kind: 1, rate: float64(1+rng.Intn(20)) * 1e5})
		case r < 8:
			// Shrinking the delay mid-flight triggers the FIFO reorder
			// clamp (later packets must not overtake earlier ones).
			acts = append(acts, propAction{at: at, kind: 2, delay: time.Duration(rng.Intn(20)) * time.Millisecond})
		default:
			acts = append(acts, propAction{at: at, kind: 3})
		}
	}
	return acts
}

// linkUnderTest abstracts the two implementations for the driver.
type linkUnderTest interface {
	Send(p *Packet) bool
}

// propDriver replays the script against one link, logging everything
// observable.
type propDriver struct {
	eng     *sim.Engine
	link    linkUnderTest
	rater   interface{ SetRateBps(float64) }
	delayer interface{ SetDelay(time.Duration) }
	prober  func() int
	acts    []propAction
	next    int
	log     []string
}

var kindPropStep sim.EventKind

func init() {
	kindPropStep = sim.RegisterKind("netsim.test.propStep", func(a any) { a.(*propDriver).step() })
}

// step executes every scripted action due now, then arms the next batch.
// One driver event per distinct timestamp in both runs keeps the ticket
// streams aligned.
func (d *propDriver) step() {
	now := d.eng.Now()
	for d.next < len(d.acts) && d.acts[d.next].at == now {
		a := d.acts[d.next]
		d.next++
		switch a.kind {
		case 0:
			p := Packet{Kind: Data, Seq: a.id, Size: a.size}
			ok := d.link.Send(&p)
			d.log = append(d.log, fmt.Sprintf("send %d at %v -> %v", a.id, now, ok))
		case 1:
			d.rater.SetRateBps(a.rate)
		case 2:
			d.delayer.SetDelay(a.delay)
		case 3:
			d.log = append(d.log, fmt.Sprintf("probe at %v = %d", now, d.prober()))
		}
	}
	if d.next < len(d.acts) {
		d.eng.AtEvent(d.acts[d.next].at, kindPropStep, d)
	}
}

func runPropSchedule(t *testing.T, seed uint64, useRef bool) (log []string, sent, delivered, dropped, lost int64) {
	t.Helper()
	eng := sim.New()
	cfg := LinkConfig{Name: "prop", RateBps: 1e6, Delay: 5 * time.Millisecond, QueueBytes: 8 * 1024, Seed: seed}
	if seed%2 == 0 {
		cfg.LossRate = 0.05
	}
	d := &propDriver{eng: eng, acts: propScript(seed)}
	record := func(p *Packet) {
		d.log = append(d.log, fmt.Sprintf("deliver %d at %v", p.Seq, eng.Now()))
	}
	if useRef {
		l := newRefLink(eng, cfg, record)
		d.link, d.rater, d.delayer = l, l, l
		d.prober = func() int { return l.queued }
		d.eng = eng
		if len(d.acts) > 0 {
			eng.AtEvent(d.acts[0].at, kindPropStep, d)
		}
		eng.Run()
		return d.log, l.sent, l.delivered, l.dropped, l.lost
	}
	l := NewLink(eng, cfg, record)
	d.link, d.rater, d.delayer = l, l, l
	d.prober = l.QueuedBytes
	if len(d.acts) > 0 {
		eng.AtEvent(d.acts[0].at, kindPropStep, d)
	}
	eng.Run()
	st := l.Stats()
	return d.log, st.Sent, st.Delivered, st.Dropped, st.Lost
}

func TestLinkBatchingMatchesUnbatchedReference(t *testing.T) {
	for seed := uint64(1); seed <= 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			gotLog, gs, gd, gdr, gl := runPropSchedule(t, seed, false)
			wantLog, ws, wd, wdr, wl := runPropSchedule(t, seed, true)
			if len(gotLog) != len(wantLog) {
				t.Fatalf("log length: batched %d, reference %d", len(gotLog), len(wantLog))
			}
			for i := range gotLog {
				if gotLog[i] != wantLog[i] {
					t.Fatalf("log[%d]:\nbatched:   %s\nreference: %s", i, gotLog[i], wantLog[i])
				}
			}
			if gs != ws || gd != wd || gdr != wdr || gl != wl {
				t.Fatalf("counters: batched sent=%d delivered=%d dropped=%d lost=%d, reference sent=%d delivered=%d dropped=%d lost=%d",
					gs, gd, gdr, gl, ws, wd, wdr, wl)
			}
		})
	}
}
