package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestLinkSteadyStateAllocs pins the tentpole invariant of the
// allocation-free core: once the engine arena and the link's in-flight
// ring have grown to the working set, forwarding a packet (Send +
// departure + arrival + delivery) allocates nothing.
func TestLinkSteadyStateAllocs(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, LinkConfig{
		Name:       "allocs",
		RateBps:    100e6,
		Delay:      2 * time.Millisecond,
		QueueBytes: 1 << 20,
	}, func(*Packet) {})
	const batch = 64
	cycle := func() {
		for i := 0; i < batch; i++ {
			l.Send(&Packet{Kind: Data, Size: 1200})
		}
		eng.Run()
	}
	cycle() // warm the arena, heap and ring
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Fatalf("steady-state link forwarding allocates %v per %d-packet batch, want 0", avg, batch)
	}
}

// TestLinkLossySteadyStateAllocs covers the RNG delivery branch.
func TestLinkLossySteadyStateAllocs(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, LinkConfig{
		Name:       "allocs",
		RateBps:    100e6,
		Delay:      2 * time.Millisecond,
		QueueBytes: 1 << 20,
		LossRate:   0.2,
		Seed:       11,
	}, func(*Packet) {})
	const batch = 64
	cycle := func() {
		for i := 0; i < batch; i++ {
			l.Send(&Packet{Kind: Data, Size: 1200})
		}
		eng.Run()
	}
	cycle()
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Fatalf("lossy link forwarding allocates %v per %d-packet batch, want 0", avg, batch)
	}
}

// TestTokenBucketSteadyStateAllocs pins the shaper's drain scheduling
// (closure-free since the arena rewrite; the backlog slice itself
// reaches steady capacity).
func TestTokenBucketSteadyStateAllocs(t *testing.T) {
	eng := sim.New()
	line := NewLink(eng, LinkConfig{
		Name:       "line",
		RateBps:    1e9,
		Delay:      time.Millisecond,
		QueueBytes: 1 << 20,
	}, func(*Packet) {})
	tb := NewTokenBucket(eng, TokenBucketConfig{RateBps: 10e6}, line)
	const batch = 16
	cycle := func() {
		for i := 0; i < batch; i++ {
			tb.Send(&Packet{Kind: Data, Size: 1200})
		}
		eng.Run()
	}
	cycle()
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Fatalf("token-bucket shaping allocates %v per %d-packet batch, want 0", avg, batch)
	}
}
