package netsim

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestTokenBucketBurstPassesAtLineRate(t *testing.T) {
	eng := sim.New()
	var arrived []sim.Time
	line := NewLink(eng, LinkConfig{Name: "line", RateBps: 1e9, Delay: 0}, func(p *Packet) {
		arrived = append(arrived, eng.Now())
	})
	tb := NewTokenBucket(eng, TokenBucketConfig{RateBps: 1e6, BurstBytes: 10_000}, line)
	// 5 KB burst fits the bucket: all packets traverse at line rate.
	for i := 0; i < 5; i++ {
		if !tb.Send(&Packet{Size: 1000}) {
			t.Fatal("burst within bucket was rejected")
		}
	}
	eng.Run()
	if len(arrived) != 5 {
		t.Fatalf("delivered %d, want 5", len(arrived))
	}
	if arrived[4] > time.Millisecond {
		t.Fatalf("burst took %v, want near-instant line-rate pass", arrived[4])
	}
}

func TestTokenBucketThrottlesToRate(t *testing.T) {
	eng := sim.New()
	var last sim.Time
	delivered := 0
	line := NewLink(eng, LinkConfig{Name: "line", RateBps: 1e9, Delay: 0}, func(p *Packet) {
		last = eng.Now()
		delivered++
	})
	// 1 Mbps shaping, tiny bucket: 25 KB should take ~0.2 s.
	tb := NewTokenBucket(eng, TokenBucketConfig{RateBps: 1e6, BurstBytes: 1500, QueueBytes: 1 << 20}, line)
	for i := 0; i < 25; i++ {
		tb.Send(&Packet{Size: 1000})
	}
	eng.Run()
	if delivered != 25 {
		t.Fatalf("delivered %d, want 25", delivered)
	}
	want := 25_000 * 8 / 1e6 // seconds
	got := last.Seconds()
	if got < want*0.85 || got > want*1.15 {
		t.Fatalf("25 KB at 1 Mbps finished at %.3fs, want ~%.3fs", got, want)
	}
	if tb.Shaped() == 0 {
		t.Fatal("expected shaped packets")
	}
}

func TestTokenBucketDropsOverflow(t *testing.T) {
	eng := sim.New()
	line := NewLink(eng, LinkConfig{Name: "line", RateBps: 1e9, Delay: 0}, func(*Packet) {})
	tb := NewTokenBucket(eng, TokenBucketConfig{RateBps: 1e5, BurstBytes: 1000, QueueBytes: 3000}, line)
	accepted := 0
	for i := 0; i < 10; i++ {
		if tb.Send(&Packet{Size: 1000}) {
			accepted++
		}
	}
	if tb.Dropped() == 0 {
		t.Fatal("expected drops with a 3 KB queue")
	}
	if accepted+int(tb.Dropped()) != 10 {
		t.Fatalf("accepted %d + dropped %d != 10", accepted, tb.Dropped())
	}
	eng.Run()
	if tb.QueuedBytes() != 0 {
		t.Fatalf("queue not drained: %d", tb.QueuedBytes())
	}
}

func TestTokenBucketRateChange(t *testing.T) {
	eng := sim.New()
	delivered := 0
	line := NewLink(eng, LinkConfig{Name: "line", RateBps: 1e9, Delay: 0}, func(*Packet) { delivered++ })
	tb := NewTokenBucket(eng, TokenBucketConfig{RateBps: 1e5, BurstBytes: 1000, QueueBytes: 1 << 20}, line)
	for i := 0; i < 20; i++ {
		tb.Send(&Packet{Size: 1000})
	}
	eng.RunUntil(100 * time.Millisecond)
	tb.SetRateBps(1e7) // 100x faster
	eng.Run()
	if delivered != 20 {
		t.Fatalf("delivered %d, want 20", delivered)
	}
	// At 0.1 Mbps alone, 20 KB would take 1.6 s; the speedup must land
	// well under that.
	if eng.Now() > time.Second {
		t.Fatalf("finished at %v, rate change had no effect", eng.Now())
	}
}

func TestTokenBucketPanicsOnBadRate(t *testing.T) {
	eng := sim.New()
	line := NewLink(eng, LinkConfig{Name: "line", RateBps: 1e9}, func(*Packet) {})
	assertPanics(t, "zero rate", func() { NewTokenBucket(eng, TokenBucketConfig{RateBps: 0}, line) })
	tb := NewTokenBucket(eng, TokenBucketConfig{RateBps: 1e6}, line)
	assertPanics(t, "negative set", func() { tb.SetRateBps(-1) })
}

func TestTracerRecordsLinkEvents(t *testing.T) {
	eng := sim.New()
	l := NewLink(eng, LinkConfig{Name: "t", RateBps: 1e6, Delay: time.Millisecond, QueueBytes: 2500}, func(*Packet) {})
	tr := NewTracer(0)
	tr.Attach(l)
	l.Send(&Packet{Kind: Data, Size: 1000, Seq: 0, DSN: 0, PayloadLen: 940})
	l.Send(&Packet{Kind: Data, Size: 1000, Seq: 940, DSN: 940, PayloadLen: 940})
	l.Send(&Packet{Kind: Data, Size: 1000, Seq: 1880, DSN: 1880, PayloadLen: 940}) // dropped
	eng.Run()
	if got := tr.CountKind(TraceSend); got != 2 {
		t.Fatalf("sends = %d, want 2", got)
	}
	if got := tr.CountKind(TraceDeliver); got != 2 {
		t.Fatalf("delivers = %d, want 2", got)
	}
	if got := tr.CountKind(TraceDrop); got != 1 {
		t.Fatalf("drops = %d, want 1", got)
	}
	dump := tr.Dump()
	if dump == "" || tr.Count() != 5 {
		t.Fatalf("dump empty or count %d != 5:\n%s", tr.Count(), dump)
	}
}

func TestTracerFilterAndLimit(t *testing.T) {
	tr := NewTracer(3)
	tr.Filter = func(e TraceEvent) bool { return e.Kind == TraceDrop }
	for i := 0; i < 10; i++ {
		tr.Record(TraceEvent{Kind: TraceDrop})
		tr.Record(TraceEvent{Kind: TraceSend})
	}
	if tr.Count() != 3 {
		t.Fatalf("count = %d, want 3 (limit)", tr.Count())
	}
	if tr.Evicted() != 7 {
		t.Fatalf("evicted = %d, want 7", tr.Evicted())
	}
	for _, e := range tr.Events() {
		if e.Kind != TraceDrop {
			t.Fatal("filter leaked a non-drop event")
		}
	}
}

func TestTraceEventString(t *testing.T) {
	e := TraceEvent{At: time.Second, Kind: TraceSend, Link: "wifi:fwd",
		Pkt: Packet{Kind: Data, Seq: 100, DSN: 200, PayloadLen: 1400}}
	s := e.String()
	for _, want := range []string{"send", "wifi:fwd", "seq=100", "dsn=200"} {
		if !containsStr(s, want) {
			t.Fatalf("trace line missing %q: %s", want, s)
		}
	}
	a := TraceEvent{Kind: TraceDeliver, Pkt: Packet{Kind: Ack, AckSeq: 7}}
	if !containsStr(a.String(), "ackseq=7") {
		t.Fatalf("ack line: %s", a.String())
	}
	if TraceEventKind(99).String() != "unknown" {
		t.Fatal("unknown kind string")
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}
