package netsim

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Receiver consumes packets that survive a link traversal. The packet
// is passed by pointer so the ~100-byte struct is not re-copied at
// every hop of the delivery chain (link → demux → subflow → connection);
// the pointee is only valid for the duration of the call — receivers
// that retain a packet must copy it.
type Receiver func(*Packet)

// LinkStats aggregates per-link counters.
type LinkStats struct {
	Sent      int64 // packets accepted onto the link
	Delivered int64 // packets handed to the receiver
	Dropped   int64 // queue-overflow drops
	Lost      int64 // random-loss drops
	Bytes     int64 // payload+header bytes delivered
}

// totalDelivered accumulates, across every link in the process, the
// delivered-packet counts of finished cells (flushed by FlushStats,
// which core.Network.Close and Link.Reset both invoke). Together with
// sim.TotalEvents it yields the events/packet telemetry ecfbench
// reports.
var totalDelivered atomic.Int64

// TotalDelivered returns the process-wide count of packets delivered by
// links whose stats have been flushed (a cell flushes when its network
// is closed).
func TotalDelivered() int64 { return totalDelivered.Load() }

// flight is one in-flight packet: accepted onto the link, not yet
// delivered. departure is when it finishes serialization (freeing queue
// space); arrival is when it reaches the receiver. Both carry tickets
// reserved at Send time — exactly where the former per-sub-event queue
// entries obtained their sequence numbers, which is what keeps
// same-timestamp ordering (and therefore experiment output)
// byte-identical across this rewrite. Only the arrival is ever
// scheduled: departures run no model-visible code, so they are
// accounted lazily from the dep cursor, with depTk fixing exactly
// where in the same-instant dispatch order the queue space frees (see
// advanceDeparted).
type flight struct {
	pkt       Packet
	departure sim.Time
	arrival   sim.Time
	depTk     sim.Ticket
	arrTk     sim.Ticket
}

// Link is a unidirectional rate-shaped channel: a drop-tail FIFO feeding a
// serializer at Rate bits/s, followed by fixed propagation Delay.
//
// The queue limit bounds the bytes waiting for or in serialization, which
// is what produces the bufferbloat the paper measures in Table 2 (a 0.3
// Mbps link behind tens of kilobytes of buffer shows ~1 s RTTs).
//
// Internally the link keeps its in-flight packets in a ring buffer and
// schedules only deliveries: departures (queue-space release) are pure
// link-internal accounting, advanced lazily from the dep cursor whenever
// the queue occupancy is next consulted, so they cost no heap events at
// all. Deliveries funnel through one self-rescheduling drain event that
// batches back-to-back arrivals: after delivering the head packet the
// drain claims each successor inline via sim.RunsNext — succeeding
// exactly when that delivery would have been the engine's next dispatch
// anyway — so an uncontended link drains a whole serialization run in
// one event without perturbing a single tie-break. Steady-state
// forwarding allocates nothing — see the allocs-per-packet regression
// test.
type Link struct {
	eng  *sim.Engine
	name string

	rate       float64 // bits per second
	delay      time.Duration
	queueLimit int // bytes
	queued     int // bytes waiting or in serialization
	busyUntil  sim.Time
	// lastArrival enforces FIFO delivery: a mid-flight propagation-delay
	// decrease (RTT jitter) must not let later packets overtake earlier
	// ones.
	lastArrival sim.Time
	lossRate    float64
	rng         *sim.RNG
	dst         Receiver
	tracer      *Tracer
	// obsRec, when non-nil, records per-packet events (enqueue, drop,
	// deliver, loss, coalesced delivery) for the flight recorder. It is
	// installed only on the links of a traced cell and cleared by Reset;
	// everywhere else each hook costs one nil check.
	obsRec *obs.PacketRecorder

	// ring holds in-flight packets addressed by absolute counters:
	// [head, tail) are accepted-but-undelivered entries, of which
	// [head, dep) have departed the serializer. head <= dep <= tail.
	ring ring.Ring[flight]
	head uint64
	dep  uint64
	tail uint64

	// drainTimer is the single pending drain event (inactive when nothing
	// is in flight), armed at the head arrival under its reserved ticket.
	// Arrivals are FIFO-monotone in both time and ticket, so an armed
	// timer never needs to move up. draining suppresses re-arming while
	// the drain itself runs.
	drainTimer sim.Timer
	draining   bool

	// flushedDelivered is the high-water mark of stats.Delivered already
	// added to the process-wide total, so FlushStats is idempotent.
	flushedDelivered int64

	stats LinkStats
}

// kindLinkDrain dispatches the drain event through the typed event
// table.
var kindLinkDrain sim.EventKind

func init() {
	kindLinkDrain = sim.RegisterKind("netsim.Link.drain", func(a any) { a.(*Link).drain() })
}

// LinkConfig parameterizes a Link.
type LinkConfig struct {
	// Name labels the link in telemetry ("wifi:fwd").
	Name string
	// RateBps is the shaping rate in bits per second. Must be positive.
	RateBps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueBytes is the drop-tail buffer size. Zero selects a default of
	// 64 KiB.
	QueueBytes int
	// LossRate is an i.i.d. random-loss probability in [0,1), applied on
	// delivery (in addition to queue drops).
	LossRate float64
	// Seed seeds the loss process. Only used when LossRate > 0.
	Seed uint64
}

// NewLink builds a Link on the given engine. The receiver may be set later
// via SetReceiver but must be non-nil before the first Send.
func NewLink(eng *sim.Engine, cfg LinkConfig, dst Receiver) *Link {
	l := &Link{eng: eng}
	l.Reset(cfg, dst)
	return l
}

// Reset reconfigures the link in place to the state NewLink(eng, cfg,
// dst) would construct: empty queue, idle serializer, reseeded loss
// process, zeroed stats (flushed into the process totals first), no
// tracer. The in-flight ring keeps its grown capacity. The caller must
// have reset (or drained) the engine first — any pending drain event of
// the previous run would otherwise fire into the reset link.
func (l *Link) Reset(cfg LinkConfig, dst Receiver) {
	if cfg.RateBps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive rate %v for link %q", cfg.RateBps, cfg.Name))
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 64 * 1024
	}
	l.FlushStats()
	l.name = cfg.Name
	l.rate = cfg.RateBps
	l.delay = cfg.Delay
	l.queueLimit = cfg.QueueBytes
	l.queued = 0
	l.busyUntil = 0
	l.lastArrival = 0
	l.lossRate = cfg.LossRate
	if cfg.LossRate > 0 {
		if l.rng == nil {
			l.rng = sim.NewRNG(cfg.Seed + 0x9d5f)
		} else {
			l.rng.Reseed(cfg.Seed + 0x9d5f)
		}
	} else {
		l.rng = nil
	}
	l.dst = dst
	l.tracer = nil
	l.obsRec = nil
	l.head, l.dep, l.tail = 0, 0, 0
	l.drainTimer = sim.Timer{}
	l.draining = false
	l.stats = LinkStats{}
	l.flushedDelivered = 0
}

// FlushStats adds the link's not-yet-flushed delivered-packet count into
// the process-wide total (see TotalDelivered). Idempotent; called by
// Reset and by core.Network.Close so finished cells are counted exactly
// once.
func (l *Link) FlushStats() {
	if d := l.stats.Delivered - l.flushedDelivered; d > 0 {
		totalDelivered.Add(d)
		l.flushedDelivered = l.stats.Delivered
	}
}

// SetObserver installs (or with nil removes) the per-packet event
// recorder. Reset also removes it, so a pooled link never carries a
// recorder into its next cell.
func (l *Link) SetObserver(r *obs.PacketRecorder) { l.obsRec = r }

// observe records one per-packet event; callers guard with obsRec != nil
// so the disabled path never reaches the call.
func (l *Link) observe(op obs.PacketOp, p *Packet) {
	l.obsRec.Record(obs.PacketEvent{
		At:          l.eng.Now(),
		Op:          op,
		Link:        l.name,
		ConnID:      p.ConnID,
		SubflowID:   p.SubflowID,
		Seq:         p.Seq,
		DSN:         p.DSN,
		Size:        p.Size,
		QueuedBytes: l.queued,
		Retransmit:  p.Retransmit,
	})
}

// Name returns the link label.
func (l *Link) Name() string { return l.name }

// RateBps returns the current shaping rate.
func (l *Link) RateBps() float64 { return l.rate }

// Delay returns the propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// QueueBytes returns the configured buffer size.
func (l *Link) QueueBytes() int { return l.queueLimit }

// QueuedBytes returns the bytes currently waiting or in serialization.
func (l *Link) QueuedBytes() int {
	l.advanceDeparted()
	return l.queued
}

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// SetReceiver installs the delivery callback.
func (l *Link) SetReceiver(dst Receiver) { l.dst = dst }

// SetRateBps changes the shaping rate. Packets already in serialization
// keep their departure times; subsequent packets use the new rate. This is
// how the §5.3 random bandwidth-change scenarios are driven.
func (l *Link) SetRateBps(rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: non-positive rate %v for link %q", rate, l.name))
	}
	l.rate = rate
}

// SetLossRate changes the random loss probability.
func (l *Link) SetLossRate(p float64) {
	l.lossRate = p
	if p > 0 && l.rng == nil {
		l.rng = sim.NewRNG(0x9d5f)
	}
}

// SetDelay changes the propagation delay for subsequent packets.
func (l *Link) SetDelay(d time.Duration) { l.delay = d }

// advanceDeparted applies all serializer departures that the former
// eager scheme would have dispatched by this point in the run: a packet
// stops occupying queue space once its departure key (departure time,
// depTk) precedes the event being dispatched right now. The ticket
// comparison is what makes the lazy scheme exact — an observer running
// at the same instant as a departure but at an earlier tie-break
// position must still see the packet in the queue, or a borderline
// drop-tail decision flips relative to the event-per-departure
// schedule. Deferring the accounting to the next occupancy check
// (Send's drop test, QueuedBytes) is then observationally identical,
// at zero heap traffic.
func (l *Link) advanceDeparted() {
	now := l.eng.Now()
	cur := l.eng.CurrentTicket()
	for l.dep < l.tail {
		f := l.at(l.dep)
		if f.departure > now || (f.departure == now && f.depTk > cur) {
			break
		}
		l.queued -= f.pkt.Size
		l.dep++
	}
}

// Send enqueues a packet. It returns false when the drop-tail buffer is
// full and the packet was discarded. The packet is copied exactly once —
// straight into the in-flight ring slot; the caller keeps ownership of
// the pointee.
func (l *Link) Send(p *Packet) bool {
	if l.dst == nil {
		panic("netsim: Send on link with nil receiver")
	}
	if p.Size <= 0 {
		panic("netsim: Send with non-positive packet size")
	}
	l.advanceDeparted()
	if l.queued+p.Size > l.queueLimit {
		l.stats.Dropped++
		if l.tracer != nil {
			l.tracer.Record(TraceEvent{At: l.eng.Now(), Kind: TraceDrop, Link: l.name, Pkt: *p})
		}
		if l.obsRec != nil {
			l.observe(obs.PktDrop, p)
		}
		return false
	}
	l.stats.Sent++
	if l.tracer != nil {
		l.tracer.Record(TraceEvent{At: l.eng.Now(), Kind: TraceSend, Link: l.name, Pkt: *p})
	}
	l.queued += p.Size
	if l.obsRec != nil {
		l.observe(obs.PktEnqueue, p)
	}

	now := l.eng.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	txTime := time.Duration(float64(p.Size*8) / l.rate * float64(time.Second))
	if txTime <= 0 {
		txTime = time.Nanosecond
	}
	l.busyUntil = start + txTime
	departure := l.busyUntil
	arrival := departure + l.delay
	if arrival < l.lastArrival {
		arrival = l.lastArrival
	}
	l.lastArrival = arrival

	// Fill the ring slot in place: one packet copy, no flight struct
	// traveling down the stack.
	f := l.ring.PushRef(l.head, l.tail)
	l.tail++
	f.pkt = *p
	f.departure = departure
	f.arrival = arrival
	f.depTk = l.eng.ReserveTicket()
	f.arrTk = l.eng.ReserveTicket()
	// Arrivals are FIFO-monotone in (time, ticket), so an already-armed
	// timer is never late; arm only when idle. A Send landing inside a
	// running drain (a receiver forwarding back onto this link) leaves
	// arming to the drain loop, which re-checks the ring on exit.
	if !l.draining && !l.drainTimer.Active() {
		h := l.at(l.head)
		l.drainTimer = l.eng.AtTicket(h.arrival, h.arrTk, kindLinkDrain, l)
	}
	return true
}

// at returns the in-flight entry with absolute index k.
func (l *Link) at(k uint64) *flight {
	return l.ring.At(k)
}

// drain delivers the head packet, then keeps delivering successors
// inline for as long as the engine confirms (sim.RunsNext) that each
// would have been its next dispatch anyway — so a run of back-to-back
// arrivals on an uncontended link costs one heap event, while any
// interleaved same-instant event from another model (an ACK arrival on
// the reverse path, a pacer shot) breaks the batch exactly where the
// unbatched schedule would have interleaved it. The first refused claim
// re-arms the timer under that arrival's reserved ticket, so it
// competes in the queue precisely as its own event always did.
func (l *Link) drain() {
	l.drainTimer = sim.Timer{}
	if l.head >= l.tail {
		return
	}
	l.draining = true
	for {
		// The departure key of the packet being delivered (and of any
		// earlier one) precedes this dispatch, so its queue space frees
		// here: advanceDeparted moves dep past head.
		l.advanceDeparted()
		// Deliver straight out of the ring slot — zero copies. The head
		// cursor is advanced only after delivery returns, so a reentrant
		// Send cannot reuse the slot: while the head is still live, a
		// push into a full ring grows it, and growing copies the buffer
		// out rather than overwriting it, which keeps the delivered
		// pointee intact for the rest of the receiver chain.
		l.deliver(&l.at(l.head).pkt)
		l.head++
		if l.head >= l.tail {
			break
		}
		n := l.at(l.head)
		if !l.eng.RunsNext(n.arrival, n.arrTk) {
			l.drainTimer = l.eng.AtTicket(n.arrival, n.arrTk, kindLinkDrain, l)
			break
		}
		if l.obsRec != nil {
			l.observe(obs.PktCoalesce, &n.pkt)
		}
	}
	l.draining = false
}

// deliver applies the loss process and hands the packet to the receiver.
func (l *Link) deliver(p *Packet) {
	if l.lossRate > 0 && l.rng.Float64() < l.lossRate {
		l.stats.Lost++
		if l.tracer != nil {
			l.tracer.Record(TraceEvent{At: l.eng.Now(), Kind: TraceLoss, Link: l.name, Pkt: *p})
		}
		if l.obsRec != nil {
			l.observe(obs.PktLoss, p)
		}
		return
	}
	l.stats.Delivered++
	l.stats.Bytes += int64(p.Size)
	if l.tracer != nil {
		l.tracer.Record(TraceEvent{At: l.eng.Now(), Kind: TraceDeliver, Link: l.name, Pkt: *p})
	}
	if l.obsRec != nil {
		l.observe(obs.PktDeliver, p)
	}
	l.dst(p)
}
