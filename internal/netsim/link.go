package netsim

import (
	"fmt"
	"time"

	"repro/internal/ring"
	"repro/internal/sim"
)

// Receiver consumes packets that survive a link traversal. The packet
// is passed by pointer so the ~100-byte struct is not re-copied at
// every hop of the delivery chain (link → demux → subflow → connection);
// the pointee is only valid for the duration of the call — receivers
// that retain a packet must copy it.
type Receiver func(*Packet)

// LinkStats aggregates per-link counters.
type LinkStats struct {
	Sent      int64 // packets accepted onto the link
	Delivered int64 // packets handed to the receiver
	Dropped   int64 // queue-overflow drops
	Lost      int64 // random-loss drops
	Bytes     int64 // payload+header bytes delivered
}

// flight is one in-flight packet: accepted onto the link, not yet
// delivered. departure is when it finishes serialization (freeing queue
// space); arrival is when it reaches the receiver. The two tickets are
// the tie-break positions those sub-events occupy in the engine's total
// order, reserved at Send time — exactly where the former
// two-events-per-packet scheme obtained its sequence numbers, which is
// what keeps same-timestamp ordering (and therefore experiment output)
// byte-identical across the single-drain rewrite.
type flight struct {
	pkt       Packet
	departure sim.Time
	arrival   sim.Time
	depTk     sim.Ticket
	arrTk     sim.Ticket
}

// Link is a unidirectional rate-shaped channel: a drop-tail FIFO feeding a
// serializer at Rate bits/s, followed by fixed propagation Delay.
//
// The queue limit bounds the bytes waiting for or in serialization, which
// is what produces the bufferbloat the paper measures in Table 2 (a 0.3
// Mbps link behind tens of kilobytes of buffer shows ~1 s RTTs).
//
// Internally the link keeps its in-flight packets in a ring buffer and
// runs a single self-rescheduling drain event, rather than two heap
// events per packet: both the serializer (departure) and the propagation
// pipe (arrival) are FIFO, so the earliest pending sub-event is always at
// one of two ring cursors. Steady-state forwarding therefore allocates
// nothing — see the allocs-per-packet regression test.
type Link struct {
	eng  *sim.Engine
	name string

	rate       float64 // bits per second
	delay      time.Duration
	queueLimit int // bytes
	queued     int // bytes waiting or in serialization
	busyUntil  sim.Time
	// lastArrival enforces FIFO delivery: a mid-flight propagation-delay
	// decrease (RTT jitter) must not let later packets overtake earlier
	// ones.
	lastArrival sim.Time
	lossRate    float64
	rng         *sim.RNG
	dst         Receiver
	tracer      *Tracer

	// ring holds in-flight packets addressed by absolute counters:
	// [head, tail) are accepted-but-undelivered entries, of which
	// [head, dep) have departed the serializer. head <= dep <= tail.
	ring ring.Ring[flight]
	head uint64
	dep  uint64
	tail uint64

	// drainTimer is the single pending drain event (inactive when nothing
	// is in flight), armed at the earliest pending sub-event's time under
	// its reserved ticket; drainAt/drainTk mirror that arming. draining
	// suppresses rescheduling while the drain itself runs.
	drainTimer sim.Timer
	drainAt    sim.Time
	drainTk    sim.Ticket
	draining   bool

	stats LinkStats
}

// LinkConfig parameterizes a Link.
type LinkConfig struct {
	// Name labels the link in telemetry ("wifi:fwd").
	Name string
	// RateBps is the shaping rate in bits per second. Must be positive.
	RateBps float64
	// Delay is the one-way propagation delay.
	Delay time.Duration
	// QueueBytes is the drop-tail buffer size. Zero selects a default of
	// 64 KiB.
	QueueBytes int
	// LossRate is an i.i.d. random-loss probability in [0,1), applied on
	// delivery (in addition to queue drops).
	LossRate float64
	// Seed seeds the loss process. Only used when LossRate > 0.
	Seed uint64
}

// NewLink builds a Link on the given engine. The receiver may be set later
// via SetReceiver but must be non-nil before the first Send.
func NewLink(eng *sim.Engine, cfg LinkConfig, dst Receiver) *Link {
	l := &Link{eng: eng}
	l.Reset(cfg, dst)
	return l
}

// Reset reconfigures the link in place to the state NewLink(eng, cfg,
// dst) would construct: empty queue, idle serializer, reseeded loss
// process, zeroed stats, no tracer. The in-flight ring keeps its grown
// capacity. The caller must have reset (or drained) the engine first —
// any pending drain event of the previous run would otherwise fire into
// the reset link.
func (l *Link) Reset(cfg LinkConfig, dst Receiver) {
	if cfg.RateBps <= 0 {
		panic(fmt.Sprintf("netsim: non-positive rate %v for link %q", cfg.RateBps, cfg.Name))
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 64 * 1024
	}
	l.name = cfg.Name
	l.rate = cfg.RateBps
	l.delay = cfg.Delay
	l.queueLimit = cfg.QueueBytes
	l.queued = 0
	l.busyUntil = 0
	l.lastArrival = 0
	l.lossRate = cfg.LossRate
	if cfg.LossRate > 0 {
		if l.rng == nil {
			l.rng = sim.NewRNG(cfg.Seed + 0x9d5f)
		} else {
			l.rng.Reseed(cfg.Seed + 0x9d5f)
		}
	} else {
		l.rng = nil
	}
	l.dst = dst
	l.tracer = nil
	l.head, l.dep, l.tail = 0, 0, 0
	l.drainTimer = sim.Timer{}
	l.drainAt = 0
	l.drainTk = 0
	l.draining = false
	l.stats = LinkStats{}
}

// Name returns the link label.
func (l *Link) Name() string { return l.name }

// RateBps returns the current shaping rate.
func (l *Link) RateBps() float64 { return l.rate }

// Delay returns the propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// QueueBytes returns the configured buffer size.
func (l *Link) QueueBytes() int { return l.queueLimit }

// QueuedBytes returns the bytes currently waiting or in serialization.
func (l *Link) QueuedBytes() int { return l.queued }

// Stats returns a copy of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// SetReceiver installs the delivery callback.
func (l *Link) SetReceiver(dst Receiver) { l.dst = dst }

// SetRateBps changes the shaping rate. Packets already in serialization
// keep their departure times; subsequent packets use the new rate. This is
// how the §5.3 random bandwidth-change scenarios are driven.
func (l *Link) SetRateBps(rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("netsim: non-positive rate %v for link %q", rate, l.name))
	}
	l.rate = rate
}

// SetLossRate changes the random loss probability.
func (l *Link) SetLossRate(p float64) {
	l.lossRate = p
	if p > 0 && l.rng == nil {
		l.rng = sim.NewRNG(0x9d5f)
	}
}

// SetDelay changes the propagation delay for subsequent packets.
func (l *Link) SetDelay(d time.Duration) { l.delay = d }

// Send enqueues a packet. It returns false when the drop-tail buffer is
// full and the packet was discarded. The packet is copied exactly once —
// straight into the in-flight ring slot; the caller keeps ownership of
// the pointee.
func (l *Link) Send(p *Packet) bool {
	if l.dst == nil {
		panic("netsim: Send on link with nil receiver")
	}
	if p.Size <= 0 {
		panic("netsim: Send with non-positive packet size")
	}
	if l.queued+p.Size > l.queueLimit {
		l.stats.Dropped++
		if l.tracer != nil {
			l.tracer.Record(TraceEvent{At: l.eng.Now(), Kind: TraceDrop, Link: l.name, Pkt: *p})
		}
		return false
	}
	l.stats.Sent++
	if l.tracer != nil {
		l.tracer.Record(TraceEvent{At: l.eng.Now(), Kind: TraceSend, Link: l.name, Pkt: *p})
	}
	l.queued += p.Size

	now := l.eng.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	txTime := time.Duration(float64(p.Size*8) / l.rate * float64(time.Second))
	if txTime <= 0 {
		txTime = time.Nanosecond
	}
	l.busyUntil = start + txTime
	departure := l.busyUntil
	arrival := departure + l.delay
	if arrival < l.lastArrival {
		arrival = l.lastArrival
	}
	l.lastArrival = arrival

	// Fill the ring slot in place: one packet copy, no flight struct
	// traveling down the stack.
	f := l.ring.PushRef(l.head, l.tail)
	l.tail++
	f.pkt = *p
	f.departure = departure
	f.arrival = arrival
	f.depTk = l.eng.ReserveTicket()
	f.arrTk = l.eng.ReserveTicket()
	l.scheduleDrain()
	return true
}

// at returns the in-flight entry with absolute index k.
func (l *Link) at(k uint64) *flight {
	return l.ring.At(k)
}

// nextEvent returns the earliest pending sub-event: its time, its
// reserved ticket, and whether it is a departure. Departures and
// arrivals are each FIFO-monotone in both time and ticket, so the
// earliest pending sub-event is always at one of the two cursors; on a
// time tie the lower ticket wins (a pending arrival always belongs to an
// earlier packet than the departure cursor's, hence holds the lower
// ticket).
func (l *Link) nextEvent() (t sim.Time, tk sim.Ticket, doDep, ok bool) {
	switch {
	case l.dep < l.tail && l.head < l.dep:
		d := l.at(l.dep)
		a := l.at(l.head)
		if d.departure < a.arrival {
			return d.departure, d.depTk, true, true
		}
		return a.arrival, a.arrTk, false, true
	case l.dep < l.tail:
		d := l.at(l.dep)
		return d.departure, d.depTk, true, true
	case l.head < l.tail:
		a := l.at(l.head)
		return a.arrival, a.arrTk, false, true
	default:
		return 0, 0, false, false
	}
}

// scheduleDrain (re)arms the drain event for the earliest pending
// sub-event, under that sub-event's reserved ticket. A new packet can
// introduce an earlier sub-event than the one the timer waits on (its
// departure may precede the head arrival), so an active-but-late timer
// is moved up.
func (l *Link) scheduleDrain() {
	if l.draining {
		return // the running drain re-arms on exit
	}
	t, tk, _, ok := l.nextEvent()
	if !ok {
		return
	}
	if l.drainTimer.Active() {
		if l.drainAt < t || (l.drainAt == t && l.drainTk <= tk) {
			return
		}
		l.drainTimer.Cancel()
	}
	l.drainAt = t
	l.drainTk = tk
	l.drainTimer = l.eng.AtTicket(t, tk, drainLink, l)
}

// drainLink dispatches the drain event without a closure.
func drainLink(arg any) { arg.(*Link).drain() }

// drain fires for exactly one sub-event — the one the timer was armed
// for — then re-arms for the next. One sub-event per firing (rather than
// batch-processing everything due) is what lets other models' events
// interleave at the same timestamp exactly as they did when each
// sub-event was its own queue entry: the next pending sub-event goes
// back into the queue under its own reserved ticket and competes there.
func (l *Link) drain() {
	_, _, doDep, ok := l.nextEvent()
	if !ok {
		return
	}
	if doDep {
		l.queued -= l.at(l.dep).pkt.Size
		l.dep++
		l.scheduleDrain()
		return
	}
	// Deliver straight out of the ring slot — zero copies. The head
	// cursor is advanced only after delivery returns, so a reentrant
	// Send cannot reuse the slot: while the head is still live, a push
	// into a full ring grows it, and growing copies the buffer out
	// rather than overwriting it, which keeps the delivered pointee
	// intact for the rest of the receiver chain. Rescheduling is
	// suppressed so the re-arm below picks the earliest pending
	// sub-event exactly once.
	l.draining = true
	l.deliver(&l.at(l.head).pkt)
	l.draining = false
	l.head++
	l.scheduleDrain()
}

// deliver applies the loss process and hands the packet to the receiver.
func (l *Link) deliver(p *Packet) {
	if l.lossRate > 0 && l.rng.Float64() < l.lossRate {
		l.stats.Lost++
		if l.tracer != nil {
			l.tracer.Record(TraceEvent{At: l.eng.Now(), Kind: TraceLoss, Link: l.name, Pkt: *p})
		}
		return
	}
	l.stats.Delivered++
	l.stats.Bytes += int64(p.Size)
	if l.tracer != nil {
		l.tracer.Record(TraceEvent{At: l.eng.Now(), Kind: TraceDeliver, Link: l.name, Pkt: *p})
	}
	l.dst(p)
}
