package netsim

import (
	"time"

	"repro/internal/sim"
)

// PathConfig parameterizes a bidirectional Path.
type PathConfig struct {
	// Name labels the path ("wifi", "lte").
	Name string
	// RateBps is the forward (server-to-client) shaping rate in bits/s.
	RateBps float64
	// ReverseRateBps is the return-path rate. Zero means same as forward.
	ReverseRateBps float64
	// Delay is the one-way propagation delay in each direction.
	Delay time.Duration
	// QueueBytes sizes each direction's drop-tail buffer (zero = 64 KiB).
	// The forward buffer is what produces the RTT inflation of Table 2.
	QueueBytes int
	// LossRate is i.i.d. random loss applied in the forward direction.
	LossRate float64
	// Seed seeds the loss process.
	Seed uint64
}

// Path is a bidirectional channel made of a forward and a reverse Link.
// The transport sends data packets Forward and ACKs Reverse.
type Path struct {
	name string
	fwd  *Link
	rev  *Link
}

// NewPath builds both directions on the engine. Receivers start nil and
// must be installed via SetForwardReceiver / SetReverseReceiver before
// traffic flows.
func NewPath(eng *sim.Engine, cfg PathConfig) *Path {
	p := &Path{fwd: &Link{eng: eng}, rev: &Link{eng: eng}}
	p.Reset(cfg)
	return p
}

// Reset reconfigures both directions in place to the state NewPath(eng,
// cfg) would construct, keeping the links' grown ring capacity. Like
// Link.Reset it requires the engine to have been reset first; receivers
// must be (re)installed afterwards.
func (p *Path) Reset(cfg PathConfig) {
	revRate := cfg.ReverseRateBps
	if revRate <= 0 {
		revRate = cfg.RateBps
	}
	fwdName, revName := p.fwd.name, p.rev.name
	if p.name != cfg.Name || fwdName == "" {
		fwdName = cfg.Name + ":fwd"
		revName = cfg.Name + ":rev"
	}
	p.name = cfg.Name
	p.fwd.Reset(LinkConfig{
		Name:       fwdName,
		RateBps:    cfg.RateBps,
		Delay:      cfg.Delay,
		QueueBytes: cfg.QueueBytes,
		LossRate:   cfg.LossRate,
		Seed:       cfg.Seed,
	}, nil)
	p.rev.Reset(LinkConfig{
		Name:       revName,
		RateBps:    revRate,
		Delay:      cfg.Delay,
		QueueBytes: cfg.QueueBytes,
	}, nil)
}

// Name returns the path label.
func (p *Path) Name() string { return p.name }

// Forward returns the data-direction link.
func (p *Path) Forward() *Link { return p.fwd }

// Reverse returns the ACK-direction link.
func (p *Path) Reverse() *Link { return p.rev }

// SetForwardReceiver installs the data-side consumer (the client).
func (p *Path) SetForwardReceiver(r Receiver) { p.fwd.SetReceiver(r) }

// SetReverseReceiver installs the ACK-side consumer (the server).
func (p *Path) SetReverseReceiver(r Receiver) { p.rev.SetReceiver(r) }

// SetRateBps rescales the forward direction (the regulated direction in
// the paper's testbed). The reverse link is left untouched: ACK traffic is
// negligible.
func (p *Path) SetRateBps(rate float64) { p.fwd.SetRateBps(rate) }

// BaseRTT returns the zero-load round-trip time (twice the propagation
// delay; serialization excluded).
func (p *Path) BaseRTT() time.Duration { return p.fwd.Delay() + p.rev.Delay() }
