package netsim

// FlowKey identifies one subflow of one connection on a shared link.
type FlowKey struct {
	ConnID    int
	SubflowID int
}

// Demux fans packets from a shared Link out to per-subflow receivers by
// (ConnID, SubflowID). This is what lets several MPTCP connections — the
// six persistent browser connections of §5.5, or the four subflows of
// §5.2.5 — contend for the same bottleneck links.
type Demux struct {
	routes  map[FlowKey]Receiver
	unknown int64
}

// NewDemux returns an empty demultiplexer.
func NewDemux() *Demux {
	return &Demux{routes: make(map[FlowKey]Receiver)}
}

// Register installs the receiver for one flow, replacing any previous
// registration.
func (d *Demux) Register(connID, subflowID int, r Receiver) {
	d.routes[FlowKey{connID, subflowID}] = r
}

// Unregister removes a flow's route.
func (d *Demux) Unregister(connID, subflowID int) {
	delete(d.routes, FlowKey{connID, subflowID})
}

// Unrouted returns the count of packets that arrived for unknown flows.
func (d *Demux) Unrouted() int64 { return d.unknown }

// OnPacket routes one packet; unknown flows are counted and dropped.
func (d *Demux) OnPacket(p Packet) {
	if r, ok := d.routes[FlowKey{p.ConnID, p.SubflowID}]; ok {
		r(p)
		return
	}
	d.unknown++
}
