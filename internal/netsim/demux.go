package netsim

// Demux fans packets from a shared Link out to per-subflow receivers by
// (ConnID, SubflowID). This is what lets several MPTCP connections — the
// six persistent browser connections of §5.5, or the four subflows of
// §5.2.5 — contend for the same bottleneck links.
//
// Routing is a dense two-level table indexed by the IDs directly:
// connection and subflow IDs are small sequential integers (the network
// assigns them in creation order), so the per-packet route lookup is two
// bounds checks and two loads instead of a map access hashing a
// composite key — the demux sits on every delivered packet.
type Demux struct {
	routes  [][]Receiver // [connID][subflowID], nil = unrouted
	unknown int64
}

// NewDemux returns an empty demultiplexer.
func NewDemux() *Demux {
	return &Demux{}
}

// Reset drops every route and zeroes the unrouted counter while keeping
// the dense table's storage, so a pooled network re-registers its flows
// without re-growing the rows. A packet for any ID routes exactly as it
// would through a fresh Demux: unregistered flows are counted and
// dropped.
func (d *Demux) Reset() {
	for _, row := range d.routes {
		for i := range row {
			row[i] = nil
		}
	}
	d.unknown = 0
}

// Register installs the receiver for one flow, replacing any previous
// registration. IDs must be non-negative; the table grows to cover the
// largest registered ID.
func (d *Demux) Register(connID, subflowID int, r Receiver) {
	for len(d.routes) <= connID {
		d.routes = append(d.routes, nil)
	}
	row := d.routes[connID]
	for len(row) <= subflowID {
		row = append(row, nil)
	}
	row[subflowID] = r
	d.routes[connID] = row
}

// Unregister removes a flow's route.
func (d *Demux) Unregister(connID, subflowID int) {
	if connID < len(d.routes) && subflowID < len(d.routes[connID]) {
		d.routes[connID][subflowID] = nil
	}
}

// Unrouted returns the count of packets that arrived for unknown flows.
func (d *Demux) Unrouted() int64 { return d.unknown }

// OnPacket routes one packet; unknown flows are counted and dropped.
func (d *Demux) OnPacket(p *Packet) {
	if uint(p.ConnID) < uint(len(d.routes)) {
		row := d.routes[p.ConnID]
		if uint(p.SubflowID) < uint(len(row)) {
			if r := row[p.SubflowID]; r != nil {
				r(p)
				return
			}
		}
	}
	d.unknown++
}
