// Package trace generates the experiment scenarios of the paper's
// evaluation: the fixed bandwidth grids (§3.1, §5.2, §5.4), the random
// bandwidth-change processes (§5.3), and the "in the wild" path
// conditions (§6) that we synthesize since we have no physical WiFi/LTE
// testbed.
package trace

import (
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
)

// GridBandwidthsMbps is the 6-value tc grid of §3.1/§5.2.
var GridBandwidthsMbps = []float64{0.3, 0.7, 1.1, 1.7, 4.2, 8.6}

// WebBandwidthsMbps is the 1..10 Mbps grid of §5.4/§5.5.
var WebBandwidthsMbps = []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

// RandomChangeValuesMbps is the §5.3 value set for random bandwidth
// changes.
var RandomChangeValuesMbps = []float64{0.3, 1.1, 1.7, 4.2, 8.6}

// BandwidthChange is one scheduled rate change on one path.
type BandwidthChange struct {
	At      time.Duration
	PathIdx int
	Mbps    float64
}

// RandomScenario draws a §5.3 scenario: each path independently changes
// bandwidth at exponentially distributed intervals (mean meanInterval),
// with values chosen uniformly at random from values. Deterministic for a
// given seed.
func RandomScenario(seed uint64, paths int, duration, meanInterval time.Duration, values []float64) []BandwidthChange {
	rng := sim.NewRNG(seed*0x9e37 + 0x79b9)
	var out []BandwidthChange
	for p := 0; p < paths; p++ {
		at := time.Duration(0)
		for {
			at += time.Duration(rng.ExpFloat64() * float64(meanInterval))
			if at >= duration {
				break
			}
			out = append(out, BandwidthChange{
				At:      at,
				PathIdx: p,
				Mbps:    values[rng.Intn(len(values))],
			})
		}
	}
	return out
}

// InitialRates draws the scenario's starting bandwidth per path, using a
// stream decoupled from the change sequence.
func InitialRates(seed uint64, paths int, values []float64) []float64 {
	rng := sim.NewRNG(seed*0x517c + 0xc2b2)
	out := make([]float64, paths)
	for i := range out {
		out[i] = values[rng.Intn(len(values))]
	}
	return out
}

// rateChange is the argument of one scheduled bandwidth change.
type rateChange struct {
	net     *core.Network
	pathIdx int
	mbps    float64
}

// kindRateChange dispatches a scheduled bandwidth change through the
// typed event table.
var kindRateChange sim.EventKind

func init() {
	kindRateChange = sim.RegisterKind("trace.rateChange", func(a any) {
		c := a.(*rateChange)
		c.net.SetRateMbps(c.pathIdx, c.mbps)
	})
}

// Apply schedules the changes on the network.
func Apply(net *core.Network, changes []BandwidthChange) {
	for _, ch := range changes {
		net.Engine().AtEvent(ch.At, kindRateChange, &rateChange{net: net, pathIdx: ch.PathIdx, mbps: ch.Mbps})
	}
}

// WildRun describes one §6 measurement run. The paper's nine streaming
// runs (Figure 22a) show LTE pinned near 70 ms while the public WiFi's
// average RTT spreads from tens of milliseconds to nearly a second; we
// regenerate that spread directly.
type WildRun struct {
	// Index is the 1-based run number (runs are sorted by WiFi RTT).
	Index int
	// WifiRTT and LteRTT are the mean base RTTs for the run.
	WifiRTT, LteRTT time.Duration
	// WifiMbps and LteMbps are the (unregulated) capacities.
	WifiMbps, LteMbps float64
	// WifiLoss is random loss on the congested public WiFi.
	WifiLoss float64
	// Seed drives the run's jitter processes.
	Seed uint64
}

// wildWifi approximates the sorted per-run WiFi conditions behind
// Fig 22a. A public AP's RTT inflation comes from congestion, so high
// average RTT co-occurs with low usable bandwidth — the regime where the
// paper's default scheduler loses throughput to WiFi chunk tails while
// ECF shifts nearly everything to LTE.
var wildWifi = []struct {
	rtt  time.Duration
	mbps float64
}{
	{65 * time.Millisecond, 9.0},
	{72 * time.Millisecond, 8.5},
	{120 * time.Millisecond, 5.0},
	{200 * time.Millisecond, 3.5},
	{300 * time.Millisecond, 2.5},
	{430 * time.Millisecond, 2.0},
	{560 * time.Millisecond, 1.5},
	{720 * time.Millisecond, 1.2},
	{950 * time.Millisecond, 1.0},
}

// WildStreamingRuns returns the nine §6.2 runs.
func WildStreamingRuns() []WildRun {
	out := make([]WildRun, len(wildWifi))
	for i, w := range wildWifi {
		out[i] = WildRun{
			Index:    i + 1,
			WifiRTT:  w.rtt,
			LteRTT:   70 * time.Millisecond,
			WifiMbps: w.mbps,
			LteMbps:  8.6,
			WifiLoss: 0.002,
			Seed:     uint64(i + 1),
		}
	}
	return out
}

// WildWebRuns returns n §6.3 runs with WiFi conditions cycling through
// the observed spread.
func WildWebRuns(n int) []WildRun {
	out := make([]WildRun, n)
	for i := 0; i < n; i++ {
		w := wildWifi[i%len(wildWifi)]
		out[i] = WildRun{
			Index:    i + 1,
			WifiRTT:  w.rtt,
			LteRTT:   70 * time.Millisecond,
			WifiMbps: w.mbps,
			LteMbps:  8.6,
			WifiLoss: 0.002,
			Seed:     uint64(1000 + i),
		}
	}
	return out
}

// Paths converts a wild run to a topology spec.
func (w WildRun) Paths() []core.PathSpec {
	return []core.PathSpec{
		{Name: "wifi", RateMbps: w.WifiMbps, BaseRTT: w.WifiRTT, LossRate: w.WifiLoss},
		{Name: "lte", RateMbps: w.LteMbps, BaseRTT: w.LteRTT},
	}
}

// InstallRTTJitter perturbs a path's propagation delay around its base
// value with a bounded random walk, re-drawn every interval. This gives
// the RTT estimators realistic variance (the σ in ECF's δ margin) in
// wild scenarios.
func InstallRTTJitter(net *core.Network, pathIdx int, base time.Duration, amplitude float64, interval time.Duration, seed uint64, until time.Duration) {
	j := &rttJitter{
		eng:       net.Engine(),
		path:      net.Paths()[pathIdx],
		rng:       sim.NewRNG(seed ^ 0x177e),
		base:      base,
		amplitude: amplitude,
		interval:  interval,
		until:     until,
	}
	j.eng.ScheduleEvent(0, kindRTTJitter, j)
}

// rttJitter is the state of one installed jitter process: a bounded
// random walk re-armed every interval until the horizon.
type rttJitter struct {
	eng       *sim.Engine
	path      *netsim.Path
	rng       *sim.RNG
	base      time.Duration
	amplitude float64
	interval  time.Duration
	until     time.Duration
	level     float64 // walk state in [-1, 1]
}

// kindRTTJitter dispatches a jitter step through the typed event table.
var kindRTTJitter sim.EventKind

func init() {
	kindRTTJitter = sim.RegisterKind("trace.rttJitter", func(a any) { a.(*rttJitter).step() })
}

func (j *rttJitter) step() {
	j.level += (j.rng.Float64()*2 - 1) * 0.5
	if j.level > 1 {
		j.level = 1
	}
	if j.level < -1 {
		j.level = -1
	}
	d := time.Duration(float64(j.base) * (1 + j.amplitude*j.level) / 2)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	j.path.Forward().SetDelay(d)
	j.path.Reverse().SetDelay(d)
	if j.eng.Now()+j.interval < j.until {
		j.eng.ScheduleEvent(j.interval, kindRTTJitter, j)
	}
}
