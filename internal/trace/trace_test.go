package trace

import (
	"testing"
	"time"

	"repro/internal/core"
)

func TestRandomScenarioDeterministic(t *testing.T) {
	a := RandomScenario(5, 2, 400*time.Second, 40*time.Second, RandomChangeValuesMbps)
	b := RandomScenario(5, 2, 400*time.Second, 40*time.Second, RandomChangeValuesMbps)
	if len(a) != len(b) {
		t.Fatal("same seed, different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different changes")
		}
	}
}

func TestRandomScenarioShape(t *testing.T) {
	ch := RandomScenario(1, 2, 400*time.Second, 40*time.Second, RandomChangeValuesMbps)
	if len(ch) < 8 || len(ch) > 30 {
		t.Fatalf("change count = %d for 2 paths over 400s at mean 40s, want ~20", len(ch))
	}
	valid := map[float64]bool{}
	for _, v := range RandomChangeValuesMbps {
		valid[v] = true
	}
	for _, c := range ch {
		if c.At < 0 || c.At >= 400*time.Second {
			t.Fatalf("change outside window: %v", c.At)
		}
		if c.PathIdx < 0 || c.PathIdx > 1 {
			t.Fatalf("bad path index %d", c.PathIdx)
		}
		if !valid[c.Mbps] {
			t.Fatalf("value %v not in the §5.3 set", c.Mbps)
		}
	}
}

func TestInitialRates(t *testing.T) {
	r := InitialRates(3, 2, RandomChangeValuesMbps)
	if len(r) != 2 {
		t.Fatalf("len = %d", len(r))
	}
	valid := map[float64]bool{}
	for _, v := range RandomChangeValuesMbps {
		valid[v] = true
	}
	for _, v := range r {
		if !valid[v] {
			t.Fatalf("initial rate %v not in set", v)
		}
	}
}

func TestApplyChangesRates(t *testing.T) {
	net := core.NewNetwork(core.DefaultPaths(8.6, 8.6))
	Apply(net, []BandwidthChange{
		{At: time.Second, PathIdx: 0, Mbps: 1.1},
		{At: 2 * time.Second, PathIdx: 1, Mbps: 4.2},
	})
	net.Run(3 * time.Second)
	if got := net.Paths()[0].Forward().RateBps(); got != 1.1e6 {
		t.Fatalf("wifi rate = %v, want 1.1e6", got)
	}
	if got := net.Paths()[1].Forward().RateBps(); got != 4.2e6 {
		t.Fatalf("lte rate = %v, want 4.2e6", got)
	}
}

func TestWildStreamingRunsSortedLikeFigure22a(t *testing.T) {
	runs := WildStreamingRuns()
	if len(runs) != 9 {
		t.Fatalf("runs = %d, want 9", len(runs))
	}
	for i := 1; i < len(runs); i++ {
		if runs[i].WifiRTT < runs[i-1].WifiRTT {
			t.Fatal("wifi RTTs must ascend across runs (sorted, as in the paper)")
		}
	}
	for _, r := range runs {
		if r.LteRTT != 70*time.Millisecond {
			t.Fatal("LTE RTT should be pinned near 70 ms")
		}
		if len(r.Paths()) != 2 {
			t.Fatal("wild run must produce a 2-path topology")
		}
	}
	// Run 1-2 near-symmetric; run 9 close to a second (paper Fig 22a).
	if runs[0].WifiRTT > 80*time.Millisecond {
		t.Fatal("run 1 should be near-symmetric with LTE")
	}
	if runs[8].WifiRTT < 900*time.Millisecond {
		t.Fatal("run 9 should be ~1 s")
	}
}

func TestWildWebRuns(t *testing.T) {
	runs := WildWebRuns(30)
	if len(runs) != 30 {
		t.Fatalf("runs = %d", len(runs))
	}
	seeds := map[uint64]bool{}
	for _, r := range runs {
		if seeds[r.Seed] {
			t.Fatal("duplicate wild web seed")
		}
		seeds[r.Seed] = true
	}
}

func TestInstallRTTJitterVariesDelay(t *testing.T) {
	net := core.NewNetwork(core.DefaultPaths(8.6, 8.6))
	base := 200 * time.Millisecond
	InstallRTTJitter(net, 0, base, 0.6, 100*time.Millisecond, 9, 5*time.Second)
	seen := map[time.Duration]bool{}
	for i := 1; i <= 40; i++ {
		net.Run(time.Duration(i) * 125 * time.Millisecond)
		seen[net.Paths()[0].Forward().Delay()] = true
	}
	if len(seen) < 5 {
		t.Fatalf("jitter produced only %d distinct delays", len(seen))
	}
	for d := range seen {
		if d <= 0 || d > base {
			t.Fatalf("delay %v outside (0, base]", d)
		}
	}
}
