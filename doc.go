// Package repro is a from-scratch Go reproduction of "ECF: An MPTCP Path
// Scheduler to Manage Heterogeneous Paths" (Lim, Nahum, Towsley, Gibbens
// — CoNEXT 2017).
//
// The library builds every layer the paper's evaluation rests on — a
// discrete-event network simulator, packet-level TCP subflows with
// coupled congestion control, the MPTCP connection layer with
// opportunistic retransmission and penalization, the ECF scheduler and
// its baselines (default minimum-RTT, BLEST, DAPS), a DASH streaming
// stack and web workloads — plus a benchmark harness (bench_test.go and
// cmd/ecfbench) that regenerates every table and figure. The
// experiment matrix runs on a worker pool (internal/runner) with a
// persistent per-cell result cache and cross-process sharding
// (internal/results), so reruns only simulate changed cells and sweeps
// split across machines.
//
// See README.md for a tour of the packages, how to run the harness,
// and the experiment index.
package repro
