// Package repro is a from-scratch Go reproduction of "ECF: An MPTCP Path
// Scheduler to Manage Heterogeneous Paths" (Lim, Nahum, Towsley, Gibbens
// — CoNEXT 2017).
//
// The library builds every layer the paper's evaluation rests on — a
// discrete-event network simulator, packet-level TCP subflows with
// coupled congestion control, the MPTCP connection layer with
// opportunistic retransmission and penalization, the ECF scheduler and
// its baselines (default minimum-RTT, BLEST, DAPS), a DASH streaming
// stack and web workloads — plus a benchmark harness (bench_test.go and
// cmd/ecfbench) that regenerates every table and figure.
//
// See README.md for a tour of the packages, how to run the harness,
// and the experiment index.
package repro
