// Command mptcpsim runs a one-shot MPTCP transfer simulation and reports
// transport-level telemetry. It is the generic entry point for exploring
// scheduler behaviour outside the paper's fixed experiment matrix.
//
// Example:
//
//	mptcpsim -wifi 0.3 -lte 8.6 -sched ecf -bytes 4194304
//	mptcpsim -wifi 1 -lte 10 -sched minrtt -bytes 1048576 -bursts 10 -gap 1s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mptcp"
	"repro/internal/sched"
	"repro/internal/sim"
)

func main() {
	var (
		wifi     = flag.Float64("wifi", 8.6, "WiFi bandwidth in Mbps")
		lte      = flag.Float64("lte", 8.6, "LTE bandwidth in Mbps")
		schedFlg = flag.String("sched", "ecf", fmt.Sprintf("scheduler %v", sched.Names()))
		ccFlg    = flag.String("cc", "lia", "congestion control: lia, olia, reno")
		bytes    = flag.Int64("bytes", 4<<20, "bytes per transfer")
		bursts   = flag.Int("bursts", 1, "number of sequential transfers")
		gap      = flag.Duration("gap", time.Second, "idle gap between transfers")
		subflows = flag.Int("subflows-per-path", 1, "subflows per path")
	)
	flag.Parse()

	if _, err := sched.Factory(*schedFlg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	net := core.NewNetwork(core.DefaultPaths(*wifi, *lte))
	conn := net.NewConn(core.ConnOptions{
		Scheduler:         *schedFlg,
		CongestionControl: *ccFlg,
		SubflowsPerPath:   *subflows,
	})

	iss := &burstIssuer{net: net, conn: conn, bytes: *bytes, gap: *gap, bursts: *bursts}
	iss.issue()
	net.RunAll()

	durations := iss.durations
	if len(durations) != *bursts {
		fmt.Fprintf(os.Stderr, "only %d/%d transfers completed\n", len(durations), *bursts)
		os.Exit(1)
	}

	fmt.Printf("scheduler=%s cc=%s wifi=%.1fMbps lte=%.1fMbps transfer=%dB x%d\n",
		*schedFlg, *ccFlg, *wifi, *lte, *bytes, *bursts)
	sum := metrics.Summarize(metrics.DurationsToSeconds(durations))
	fmt.Printf("completion: mean=%.3fs std=%.3fs min=%.3fs max=%.3fs\n", sum.Mean, sum.StdDev, sum.Min, sum.Max)
	fmt.Printf("goodput: %.2f Mbps per transfer (mean)\n", float64(*bytes)*8/sum.Mean/1e6)

	for _, sf := range conn.Subflows() {
		st := sf.Stats()
		fmt.Printf("subflow %-6s sent=%6d segs rtx=%4d timeouts=%2d iw-resets=%2d srtt=%4dms cwnd=%5.1f\n",
			sf.Name(), st.SegmentsSent, st.Retransmits, st.Timeouts, st.IWResets,
			sf.Srtt().Milliseconds(), sf.CwndSegments())
	}
	by := conn.Receiver().SubflowBytes()
	var total int64
	for _, b := range by {
		total += b
	}
	for id, b := range by {
		name := conn.Subflows()[id].Name()
		fmt.Printf("bytes via %-6s %9d (%.1f%%)\n", name, b, 100*float64(b)/float64(total))
	}
	ooo := metrics.NewCDF(metrics.DurationsToSeconds(conn.Receiver().OOODelays()))
	fmt.Printf("out-of-order delay: mean=%.4fs p99=%.4fs\n", ooo.Mean(), ooo.Quantile(0.99))
}

// burstIssuer issues the request train: each completed transfer arms
// the next request one gap later, through the typed event table.
type burstIssuer struct {
	net       *core.Network
	conn      *mptcp.Conn
	bytes     int64
	gap       time.Duration
	bursts    int
	i         int
	durations []time.Duration
}

// kindIssueBurst dispatches the next request of the train.
var kindIssueBurst sim.EventKind

func init() {
	kindIssueBurst = sim.RegisterKind("mptcpsim.issueBurst", func(a any) { a.(*burstIssuer).issue() })
}

func (b *burstIssuer) issue() {
	if b.i >= b.bursts {
		return
	}
	b.i++
	b.conn.Request(b.bytes, func(tr *mptcp.Transfer) {
		b.durations = append(b.durations, tr.Duration())
		b.net.Engine().ScheduleEvent(b.gap, kindIssueBurst, b)
	})
}
