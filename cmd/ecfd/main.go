// Command ecfd is the distributed-sweep coordinator daemon.
//
// Usage:
//
//	ecfd serve -cache-dir store -scale full -addr :7468
//	ecfd serve -cache-dir store -scale quick -addr :7468 -exit-when-done
//	ecfd status -addr host:7468
//
// serve enumerates the full experiment catalog's cell work list at the
// given scale, resumes from any records already in the store (a
// restarted coordinator never recomputes finished cells), and serves
// the lease/ingest protocol of internal/coord. Workers join with
//
//	ecfbench -join host:7468 [-j N] [-cell-timeout 2m] [-cache-dir localcache]
//
// and the sweep survives workers crashing, hanging, or flapping: a
// worker that stops heartbeating loses its leases after the TTL and
// its cells are re-issued (work-stealing), while duplicate uploads
// from stolen-then-revived workers are idempotent no-ops. SIGTERM
// drains in-flight ingests, persists a state snapshot, and exits;
// rerunning `ecfd serve` with the same flags resumes the sweep. Once
// the sweep completes, the report renders from the coordinator's own
// store:
//
//	ecfbench -exp all -scale <scale> -cache-dir store -merge
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/coord"
	"repro/internal/experiments"
	"repro/internal/results"
)

// fail prints one clean message and exits 1.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ecfd: "+format+"\n", args...)
	os.Exit(1)
}

// failUsage prints one clean message and exits 2.
func failUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ecfd: "+format+"\n", args...)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ecfd serve  -cache-dir DIR [-scale full|quick] [-addr :7468] [-lease-ttl 45s] [-claim-batch 32] [-max-retries 3] [-exit-when-done]
  ecfd status -addr HOST:7468`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "status":
		status(os.Args[2:])
	default:
		usage()
	}
}

// parseScale maps the -scale flag to a profile.
func parseScale(name string) (experiments.Scale, bool) {
	switch name {
	case "full":
		return experiments.Full, true
	case "quick":
		return experiments.Quick, true
	default:
		return experiments.Scale{}, false
	}
}

// workList expands the enumerated cell families into the sweep's
// stable, duplicate-free work list.
func workList(sc experiments.Scale) []results.Key {
	fams := experiments.EnumerateCells(sc)
	var cells []results.Key
	for _, f := range fams {
		for i := 0; i < f.Cells; i++ {
			cells = append(cells, f.Spec.Key(i))
		}
	}
	return cells
}

func serve(args []string) {
	fs := flag.NewFlagSet("ecfd serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":7468", "listen address")
		cacheDir   = fs.String("cache-dir", "", "the coordinator's record store (created if missing); also the resume state")
		scaleName  = fs.String("scale", "full", "scale profile the sweep runs at: full or quick")
		leaseTTL   = fs.Duration("lease-ttl", 45*time.Second, "how long a silent worker keeps its leases before they are stolen")
		batch      = fs.Int("claim-batch", 32, "cells handed out per claim")
		maxRetries = fs.Int("max-retries", 3, "per-cell failure budget before the cell is parked as failed")
		exitDone   = fs.Bool("exit-when-done", false, "exit once every cell is done or parked as failed (0 on complete, 1 otherwise)")
	)
	fs.Parse(args)
	if *cacheDir == "" {
		failUsage("serve requires -cache-dir (the sweep's store and resume state)")
	}
	sc, ok := parseScale(*scaleName)
	if !ok {
		failUsage("unknown scale %q (full|quick)", *scaleName)
	}
	store, err := results.Open(*cacheDir)
	if err != nil {
		fail("%v", err)
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "ecfd: "+format+"\n", a...)
	}
	logf("enumerating the %s-scale cell matrix...", *scaleName)
	cells := workList(sc)
	srv, err := coord.NewServer(coord.Config{
		Store:      store,
		Cells:      cells,
		ScaleName:  *scaleName,
		LeaseTTL:   *leaseTTL,
		BatchSize:  *batch,
		MaxRetries: *maxRetries,
		Logf:       logf,
	})
	if err != nil {
		fail("%v", err)
	}
	if err := srv.PersistState(); err != nil {
		fail("writing initial state snapshot: %v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("listen %s: %v", *addr, err)
	}
	st := srv.Status()
	logf("serving sweep on %s: %d cells total, %d already done, lease TTL %v, batch %d",
		ln.Addr(), st.Total, st.Done, *leaseTTL, *batch)
	logf("join workers with: ecfbench -join <host>%s", portSuffix(ln.Addr()))

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	done := false
	select {
	case <-sigCtx.Done():
		logf("signal received; draining in-flight ingests...")
	case <-func() <-chan struct{} {
		if *exitDone {
			return srv.Done()
		}
		return make(chan struct{}) // never: keep serving after completion
	}():
		done = true
		logf("sweep settled; shutting down")
	case err := <-serveErr:
		fail("serve: %v", err)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		logf("shutdown: %v (persisting state anyway)", err)
	}
	if err := srv.PersistState(); err != nil {
		fail("persisting state: %v", err)
	}
	st = srv.Status()
	logf("state persisted: %d/%d done, %d failed; restart `ecfd serve` with the same -cache-dir to resume",
		st.Done, st.Total, st.Failed)
	logf("sweep stats: %d ingested, %d duplicate uploads, %d leases stolen", st.Ingested, st.Duplicates, st.Stolen)
	if done || st.SweepDone {
		if !st.Complete {
			logf("sweep finished with %d permanently failed cells:", st.Failed)
			printFailed(st.FailedList)
			os.Exit(1)
		}
		logf("sweep complete; render with: ecfbench -exp all -scale %s -cache-dir %s -merge", *scaleName, *cacheDir)
	}
}

// portSuffix extracts ":port" from a listener address for the join
// hint.
func portSuffix(a net.Addr) string {
	if tcp, ok := a.(*net.TCPAddr); ok {
		return fmt.Sprintf(":%d", tcp.Port)
	}
	return ""
}

// printFailed lists permanently failed cells.
func printFailed(cells []coord.FailedCell) {
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i].Key, cells[j].Key
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		return a.Cell < b.Cell
	})
	for _, f := range cells {
		fmt.Fprintf(os.Stderr, "  cell %d of %q (schema %d, scale %q): %d attempts, last error: %s\n",
			f.Key.Cell, f.Key.Experiment, f.Key.Schema, f.Key.Scale, f.Attempts, f.LastError)
	}
}

func status(args []string) {
	fs := flag.NewFlagSet("ecfd status", flag.ExitOnError)
	addr := fs.String("addr", "localhost:7468", "coordinator address")
	fs.Parse(args)
	client := coord.NewClient(*addr, "status")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := client.Status(ctx)
	if err != nil {
		fail("%v", err)
	}
	out, _ := json.MarshalIndent(st, "", "  ")
	fmt.Println(string(out))
	if st.Failed > 0 {
		os.Exit(1)
	}
}
