package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/coord"
	"repro/internal/experiments"
	"repro/internal/results"
)

// defaultWorkerID identifies this worker to the coordinator: hostname
// plus pid, unique enough for leases and readable in logs.
func defaultWorkerID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "worker"
	}
	return fmt.Sprintf("%s-%d", host, os.Getpid())
}

// runJoin is the -join mode: a lease-loop worker against an ecfd
// coordinator. The coordinator dictates the scale; the worker claims
// cell batches, computes them through the ordinary pooled driver path
// (exactly the cells it holds leases on — the session's Claims gate
// skips everything else), uploads each record idempotently, and
// heartbeats so a crash or hang forfeits its cells to other workers.
func runJoin(addr string, jobs int, cacheDir string, cellTimeout time.Duration, workerID string, progress bool) {
	if workerID == "" {
		workerID = defaultWorkerID()
	}
	client := coord.NewClient(addr, workerID)
	client.Logf = func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "ecfbench[%s]: %s\n", workerID, fmt.Sprintf(format, a...))
	}
	ctx := context.Background()
	info, err := client.Sweep(ctx)
	if err != nil {
		fail("-join %s: %v (is `ecfd serve` running there?)", addr, err)
	}
	sc, ok := parseScale(info.Scale)
	if !ok {
		fail("-join %s: coordinator sweeps unknown scale %q (version skew between ecfd and ecfbench?)", addr, info.Scale)
	}
	sc.Workers = jobs
	if progress {
		pp := &progressPrinter{}
		sc.Progress = pp.note
	}
	var store *results.Store
	if cacheDir != "" {
		store, err = results.Open(cacheDir)
		if err != nil {
			fail("%v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "ecfbench[%s]: joined %s: %s-scale sweep, %d cells, lease TTL %v\n",
		workerID, addr, info.Scale, info.TotalCells, time.Duration(info.LeaseTTLMs)*time.Millisecond)

	start := time.Now()
	stats, err := coord.RunWorker(ctx, coord.WorkerConfig{
		Client:      client,
		Store:       store,
		CellTimeout: cellTimeout,
		RunPass: func(ses *results.Session) error {
			return runCatalogPass(sc, ses)
		},
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "ecfbench[%s]: %s\n", workerID, fmt.Sprintf(format, a...))
		},
	})
	if err != nil {
		fail("-join: %v", err)
	}
	fmt.Fprintf(os.Stderr, "ecfbench[%s]: sweep done in %v: %d passes, %d cells claimed, %d uploaded (%d duplicate, %d returned, %d surrendered)\n",
		workerID, time.Since(start).Round(time.Millisecond),
		stats.Passes, stats.Claimed, stats.Uploaded, stats.Duplicates, stats.Lost, stats.Surrendered)
}

// runCatalogPass runs one full-catalog pass under the worker's session,
// converting the drivers' *results.FatalError panics (store I/O, sink
// upload failures, cell timeouts) back into errors for the lease loop
// to handle; any other panic propagates with its stack.
func runCatalogPass(sc experiments.Scale, ses *results.Session) (err error) {
	defer func() {
		if v := recover(); v != nil {
			var fe *results.FatalError
			if pe, ok := v.(error); ok && errors.As(pe, &fe) {
				err = fe.Err
				return
			}
			panic(v)
		}
	}()
	sc.Results = ses
	experiments.RunCatalog(sc)
	return nil
}
