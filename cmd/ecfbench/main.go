// Command ecfbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ecfbench -list
//	ecfbench -exp fig9
//	ecfbench -exp table3 -scale quick
//	ecfbench -exp all -j 8
//	ecfbench -exp all -lanes 4                    # lane-batch grid cells; stdout unchanged
//	ecfbench -exp all -cache-dir cache            # cache cells; rerun is instant
//	ecfbench -exp all -cache-dir cache -shard 0/2 # simulate half the cells
//	ecfbench -exp all -cache-dir cache -merge     # assemble purely from cache
//	ecfbench -join host:7468                      # lease-loop worker for `ecfd serve`
//	ecfbench -exp all -cell-timeout 2m            # fail loudly if one cell wedges
//	ecfbench -cache-dir cache -cache-stats        # audit what occupies the store
//	ecfbench -cache-dir cache -cache-prune -dry-run  # preview stale-group cleanup
//	ecfbench -cache-dir cache -cache-prune        # delete groups no current run reads
//	ecfbench -cache-dir cache -cache-prune -older-than 720h  # also age out in-matrix records
//	ecfbench -exp fig9 -cpuprofile cpu.pprof      # profile a run (also -memprofile)
//	ecfbench -exp fig9 -trace-cell grid/ecf/14 -trace-out trace.json  # flight-record one cell
//	ecfbench -exp all -report-json report.json    # machine-readable run summary
//	ecfbench -exp all -progress                   # cells/total + ETA on stderr
//	ecfbench -exp all -queue tiered               # A/B the event queue; stdout unchanged
//	ecfbench -exp all -debug-addr localhost:6060  # live pprof + counter snapshot
//
// Each experiment prints the same rows/series the paper reports (see
// README.md for the experiment index) on stdout; timing and cache
// statistics go to stderr, so stdout is byte-identical for any -j value
// and for cold vs. warm cache runs — including runs with -trace-cell,
// which only observes. -cache-dir persists every simulation cell's
// record keyed by (experiment, cell, scale, schema); -shard i/n
// simulates only the cells with index%n == i (for splitting a sweep
// across machines); -merge renders everything from cached records
// alone and fails listing every missing cell, grouped by experiment,
// with the exact command to backfill them. -join turns the process
// into a lease-loop worker for a `ecfd serve` coordinator: claim a
// batch of cells, simulate, upload, heartbeat — with retry/backoff on
// every RPC and work-stealing semantics when a worker dies (see
// internal/coord).
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/internal/sim"
)

// experiment is a named, runnable paper artifact.
type experiment struct {
	name string
	desc string
	run  func(sc experiments.Scale) fmt.Stringer
}

var catalog = []experiment{
	{"table1", "video bit rates vs. resolution", func(experiments.Scale) fmt.Stringer { return experiments.Table1() }},
	{"table2", "avg RTT with bandwidth regulation", func(sc experiments.Scale) fmt.Stringer { return experiments.Table2(sc) }},
	{"table3", "# of IW resets per scheduler (0.3/8.6)", func(sc experiments.Scale) fmt.Stringer { return experiments.Table3(sc) }},
	{"table4", "wild web browsing averages", func(sc experiments.Scale) fmt.Stringer { return experiments.Table4(sc) }},
	{"fig1", "ON-OFF download pattern", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure1(sc) }},
	{"fig2", "default-scheduler bitrate-ratio heat map", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure2(sc) }},
	{"fig3", "send-buffer occupancy trace (0.3/8.6)", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure3(sc) }},
	{"fig5", "CDF of last-packet time differences", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure5(sc) }},
	{"fig6", "throughput with/without CWND reset", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure6(sc) }},
	{"fig7", "traffic split, default vs ideal", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure7(sc) }},
	{"fig9", "bitrate-ratio heat maps for 4 schedulers", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure9(sc) }},
	{"fig10", "traffic split: BLEST vs ECF vs ideal", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure10(sc) }},
	{"fig11", "WiFi CWND traces per scheduler", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure11(sc) }},
	{"fig12", "LTE CWND traces per scheduler", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure12(sc) }},
	{"fig13", "OOO-delay CCDF, default scheduler", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure13(sc) }},
	{"fig14", "OOO-delay CCDF per scheduler", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure14(sc) }},
	{"fig15", "four-subflow bitrate ratios", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure15(sc) }},
	{"fig16", "random bandwidth-change throughput", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure16(sc) }},
	{"fig17", "per-chunk throughput trace", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure17(sc) }},
	{"fig18", "wget completion times", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure18(sc) }},
	{"fig19", "ECF/default wget ratio heat maps", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure19(sc) }},
	{"fig20", "web object completion-time CCDFs", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure20(sc) }},
	{"fig21", "web browsing OOO-delay CCDFs", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure21(sc) }},
	{"fig22", "wild streaming: RTTs and throughput", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure22(sc) }},
	{"fig23", "wild web: completion and OOO CCDFs", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure23(sc) }},
}

// parseScale maps the -scale flag to a profile.
func parseScale(name string) (experiments.Scale, bool) {
	switch name {
	case "full":
		return experiments.Full, true
	case "quick":
		return experiments.Quick, true
	default:
		return experiments.Scale{}, false
	}
}

// fail prints one clean message and exits 1 — operational failures
// (unwritable cache dirs, store I/O, merge misses). Usage mistakes go
// through failUsage instead.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ecfbench: "+format+"\n", args...)
	os.Exit(1)
}

// failUsage prints one clean message and exits 2 — the flag package's
// convention for command-line mistakes (unknown experiment or scale,
// malformed or conflicting flags).
func failUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ecfbench: "+format+"\n", args...)
	os.Exit(2)
}

// newSession builds the cache/shard policy from the flags, validating
// combinations and probing the cache dir up front.
func newSession(cacheDir, shardStr string, merge, noCache bool, cellTimeout time.Duration) *results.Session {
	if noCache {
		if shardStr != "" || merge {
			failUsage("-no-cache cannot be combined with -shard or -merge (both need the store)")
		}
		if cellTimeout > 0 {
			return &results.Session{CellTimeout: cellTimeout}
		}
		return nil
	}
	if cacheDir == "" {
		if shardStr != "" {
			failUsage("-shard requires -cache-dir (a shard's results live in the store)")
		}
		if merge {
			failUsage("-merge requires -cache-dir (it renders from cached records)")
		}
		if cellTimeout > 0 {
			return &results.Session{CellTimeout: cellTimeout}
		}
		return nil
	}
	if shardStr != "" && merge {
		failUsage("-shard and -merge are mutually exclusive (merge reads every cell)")
	}
	shard := results.Shard{}
	if shardStr != "" {
		var err error
		shard, err = results.ParseShard(shardStr)
		if err != nil {
			failUsage("%v", err)
		}
	}
	// Merge only reads, so a read-only store (e.g. another machine's
	// shard output on a read-only mount) is fine; every other mode
	// creates the dir and probes writability up front.
	open := results.Open
	if merge {
		open = results.OpenRead
	}
	store, err := open(cacheDir)
	if err != nil {
		fail("%v", err)
	}
	// A merge collects every missing cell instead of failing on the
	// first, so one pass reports the sweep's complete hole list with
	// the command to backfill it.
	return &results.Session{Store: store, Shard: shard, Merge: merge, CollectMisses: merge, CellTimeout: cellTimeout}
}

// reportMissing renders a failed merge's complete hole list on stderr,
// grouped by record family, with the exact commands that backfill the
// missing cells, then exits 1. A plain cached run recomputes exactly
// the missing cells (hits are served from the store), so the backfill
// command is the ordinary sweep invocation — sharded or coordinated
// for multi-machine backfills.
func reportMissing(ses *results.Session, cacheDir, scaleName string) {
	miss := ses.MissingCells()
	type family struct {
		exp    string
		scale  string
		schema int
	}
	order := []family{}
	cells := map[family][]int{}
	for _, k := range miss {
		f := family{k.Experiment, k.Scale, k.Schema}
		if _, seen := cells[f]; !seen {
			order = append(order, f)
		}
		cells[f] = append(cells[f], k.Cell)
	}
	fmt.Fprintf(os.Stderr, "ecfbench: merge incomplete: %d cells missing across %d record families:\n", len(miss), len(order))
	for _, f := range order {
		idx := cells[f]
		list := ""
		for i, c := range idx {
			if i == 16 {
				list += fmt.Sprintf(" ... (+%d more)", len(idx)-i)
				break
			}
			if i > 0 {
				list += " "
			}
			list += strconv.Itoa(c)
		}
		fmt.Fprintf(os.Stderr, "  %s (schema %d, scale %q): %d cells: %s\n", f.exp, f.schema, f.scale, len(idx), list)
	}
	fmt.Fprintf(os.Stderr, "backfill, then re-run -merge:\n")
	fmt.Fprintf(os.Stderr, "  one machine:   ecfbench -exp all -scale %s -cache-dir %s   (computes only the missing cells)\n", scaleName, cacheDir)
	fmt.Fprintf(os.Stderr, "  N machines:    ecfbench -exp all -scale %s -cache-dir %s -shard i/N   (i = 0..N-1, then rsync the stores)\n", scaleName, cacheDir)
	fmt.Fprintf(os.Stderr, "  coordinated:   ecfd serve -cache-dir %s -scale %s -addr :7468  +  ecfbench -join <host>:7468 per worker\n", cacheDir, scaleName)
	os.Exit(1)
}

// runExperiment executes one driver, converting *results.FatalError
// panics (store I/O failures, merge misses) into errors for a clean
// exit; any other panic propagates with its stack.
func runExperiment(e experiment, sc experiments.Scale) (out fmt.Stringer, err error) {
	defer func() {
		if v := recover(); v != nil {
			var fe *results.FatalError
			if pe, ok := v.(error); ok && errors.As(pe, &fe) {
				err = fe
				return
			}
			panic(v)
		}
	}()
	return e.run(sc), nil
}

// cachePrune implements -cache-prune: enumerate the active matrix (the
// record groups a full catalog run at the given scale would read) by
// driving every driver through an enumerating session — no simulation,
// no store reads — then delete the store's other groups. With
// -older-than it additionally drops records inside the active matrix
// that have not been rewritten within the given age. The audit half of
// this lifecycle is -cache-stats.
func cachePrune(cacheDir string, sc experiments.Scale, olderThan time.Duration, dryRun bool) {
	open := results.Open
	if dryRun {
		open = results.OpenRead // a preview must work on read-only stores
	}
	store, err := open(cacheDir)
	if err != nil {
		fail("%v", err)
	}
	keep := make(map[results.Group]bool)
	for _, g := range experiments.EnumerateActive(sc) {
		keep[g] = true
	}
	rep, err := store.Prune(results.PruneOptions{
		Keep:      func(g results.Group) bool { return keep[g] },
		OlderThan: olderThan,
		DryRun:    dryRun,
	})
	if err != nil {
		fail("pruning %s: %v", cacheDir, err)
	}
	verb := "deleted"
	if dryRun {
		verb = "would delete"
	}
	if len(rep.Deleted) == 0 && len(rep.Aged) == 0 {
		fmt.Printf("cache dir %s: nothing to prune (%d records in the active matrix)\n", cacheDir, rep.KeptRecords)
		return
	}
	printGroups := func(lines []results.AuditLine) {
		w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
		fmt.Fprintln(w, "EXPERIMENT\tSCALE\tSCHEMA\tRECORDS\tBYTES")
		for _, line := range lines {
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\n", line.Experiment, line.Scale, line.Schema, line.Records, line.Bytes)
		}
		w.Flush()
	}
	if len(rep.Deleted) > 0 {
		fmt.Printf("cache dir %s: %s %d records (%d bytes) outside the active matrix:\n",
			cacheDir, verb, rep.DeletedRecords(), rep.DeletedBytes())
		printGroups(rep.Deleted)
	}
	if len(rep.Aged) > 0 {
		fmt.Printf("cache dir %s: %s %d records (%d bytes) older than %v inside the active matrix:\n",
			cacheDir, verb, rep.AgedRecords(), rep.AgedBytes(), olderThan)
		printGroups(rep.Aged)
	}
	fmt.Printf("kept: %d records, %d bytes", rep.KeptRecords, rep.KeptBytes)
	if rep.Unreadable > 0 {
		fmt.Printf(", %d unreadable files left in place", rep.Unreadable)
	}
	fmt.Println()
}

// cacheStats renders the -cache-stats audit: what occupies the store,
// grouped by (experiment, scale, schema) — the granularity at which
// records go stale.
func cacheStats(cacheDir string) {
	store, err := results.OpenRead(cacheDir)
	if err != nil {
		fail("%v", err)
	}
	rep, err := store.Audit()
	if err != nil {
		fail("auditing %s: %v", cacheDir, err)
	}
	fmt.Printf("cache dir %s:\n", cacheDir)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "EXPERIMENT\tSCALE\tSCHEMA\tRECORDS\tBYTES")
	for _, line := range rep.Lines {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\n", line.Experiment, line.Scale, line.Schema, line.Records, line.Bytes)
	}
	w.Flush()
	fmt.Printf("total: %d records, %d bytes", rep.Records, rep.Bytes)
	if rep.Unreadable > 0 {
		fmt.Printf(", %d unreadable files", rep.Unreadable)
	}
	fmt.Println()
}

// createProfile opens a profile output file, refusing to clobber an
// existing one unless -force was given — an interrupted run leaves a
// valid profile behind, and silently truncating it on the next
// invocation has destroyed real data before.
func createProfile(flagName, path string, force bool) *os.File {
	flags := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
	if !force {
		flags |= os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		if os.IsExist(err) {
			fail("%s: %s already exists; use -force to overwrite", flagName, path)
		}
		fail("%s: %v", flagName, err)
	}
	return f
}

// profiling starts the -cpuprofile collection and returns a function
// that finalizes both profiles; the caller must run it before exiting
// normally (error exits skip profiles). The heap profile destination is
// opened up front so a clobber refusal aborts before hours of
// simulation, not after.
func profiling(cpu, mem string, force bool) func() {
	var cpuFile, memFile *os.File
	if cpu != "" {
		f := createProfile("-cpuprofile", cpu, force)
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("-cpuprofile: %v", err)
		}
		cpuFile = f
	}
	if mem != "" {
		memFile = createProfile("-memprofile", mem, force)
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memFile != nil {
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				fail("-memprofile: %v", err)
			}
			memFile.Close()
		}
	}
}

// parseTraceCell splits the -trace-cell argument at its LAST slash:
// cell family names themselves contain slashes ("grid/ecf",
// "grid/ecf/no-reset"), so "grid/ecf/14" means cell 14 of "grid/ecf".
func parseTraceCell(s string) (experiment string, cell int, err error) {
	i := strings.LastIndex(s, "/")
	if i <= 0 || i == len(s)-1 {
		return "", 0, fmt.Errorf("-trace-cell %q: want \"family/index\", e.g. grid/ecf/14 (the index follows the last '/')", s)
	}
	cell, err = strconv.Atoi(s[i+1:])
	if err != nil || cell < 0 {
		return "", 0, fmt.Errorf("-trace-cell %q: cell index %q is not a non-negative integer", s, s[i+1:])
	}
	return s[:i], cell, nil
}

// progressPrinter renders -progress lines on stderr: cells done/total,
// completion rate, and an ETA extrapolated from the running batch.
// Rate-limited so huge sweeps don't flood the terminal; the final cell
// of every batch always prints so the 100% line is never dropped.
type progressPrinter struct {
	mu       sync.Mutex
	start    time.Time
	last     time.Time
	lastDone int
	total    int
}

// note is the runner.Pool.OnProgress callback (via Scale.Progress). It
// observes only; it never touches result state.
func (p *progressPrinter) note(done, total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if total != p.total || done < p.lastDone {
		// A new batch started (drivers run several per experiment).
		p.start, p.last = now, time.Time{}
		p.total = total
	}
	p.lastDone = done
	if done != total && now.Sub(p.last) < 250*time.Millisecond {
		return
	}
	p.last = now
	line := fmt.Sprintf("progress: %d/%d cells", done, total)
	elapsed := now.Sub(p.start)
	if sec := elapsed.Seconds(); sec > 0.001 && done > 0 {
		line += fmt.Sprintf(" (%.0f cells/s", float64(done)/sec)
		if done < total {
			eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done))
			line += fmt.Sprintf(", ETA %v", eta.Round(time.Second))
		}
		line += ")"
	}
	fmt.Fprintln(os.Stderr, line)
}

// startDebugServer mounts net/http/pprof plus a /debug/obs counter
// snapshot on addr and serves in the background for the life of the
// run. The listener is opened synchronously so a bad address fails
// before any simulation starts.
func startDebugServer(addr string) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fail("-debug-addr: %v", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		processed, coalesced := sim.TotalEvents()
		snap := map[string]any{
			"events_processed":  processed,
			"events_coalesced":  coalesced,
			"events_total":      processed + coalesced,
			"packets_delivered": netsim.TotalDelivered(),
			"goroutines":        runtime.NumGoroutine(),
			"trace_armed":       obs.TraceEnabled(),
			"mem":               obs.CaptureMemStats(),
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ (counters at /debug/obs)\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
}

// writeTrace exports the captured cell recorder: a Chrome trace-event
// JSON file (load in Perfetto or chrome://tracing) and optionally a
// human-readable per-transfer scheduler decision log. Both destinations
// were opened (clobber-guarded) before the run started.
func writeTrace(traceFile, decsFile *os.File) {
	rec := obs.CapturedCell()
	if rec == nil {
		fail("-trace-cell: the selected cell never ran — check the family name and index against the chosen -exp and -scale (and any -shard); the index follows the LAST '/', e.g. grid/ecf/14 is cell 14 of family \"grid/ecf\"")
	}
	kindName := func(k uint8) string {
		if n := sim.KindName(sim.EventKind(k)); n != "" {
			return n
		}
		return fmt.Sprintf("kind-%d", k)
	}
	if err := rec.WriteChromeTrace(traceFile, kindName); err != nil {
		traceFile.Close()
		fail("-trace-out: %v", err)
	}
	if err := traceFile.Close(); err != nil {
		fail("-trace-out: %v", err)
	}
	fmt.Fprintf(os.Stderr,
		"trace: cell %s/%d — %d engine events (%d overwritten), %d packet events (%d overwritten), %d subflow events (%d overwritten), %d decisions (%d overwritten) → %s\n",
		rec.Experiment, rec.Cell,
		rec.Flight.Total(), rec.Flight.Dropped(),
		rec.Packets.Total(), rec.Packets.Dropped(),
		rec.Subflows.Total(), rec.Subflows.Dropped(),
		rec.Decisions.Total(), rec.Decisions.Dropped(),
		traceFile.Name())
	if decsFile == nil {
		return
	}
	if err := rec.WriteDecisionLog(decsFile); err != nil {
		decsFile.Close()
		fail("-decisions-out: %v", err)
	}
	if err := decsFile.Close(); err != nil {
		fail("-decisions-out: %v", err)
	}
	fmt.Fprintf(os.Stderr, "decision log: %d decisions → %s\n", rec.Decisions.Total(), decsFile.Name())
}

// queueLine renders the event-queue telemetry flushed by engine resets:
// the implementation in use, queue depth, and (tiered only) the tier
// split and dispatch-bucket sort counters.
func queueLine(k sim.QueueKind, qs sim.QueueStats) string {
	s := fmt.Sprintf("queue: %s, depth max %d mean %.1f", k, qs.DepthMax, qs.DepthMean())
	if k == sim.QueueTiered {
		s += fmt.Sprintf(", %d near / %d far / %d migrated, %d bucket sorts (max bucket %d)",
			qs.NearScheduled, qs.FarScheduled, qs.Migrated, qs.BucketSorts, qs.BucketMax)
	}
	return s
}

// eventLine renders the per-run event telemetry: how many logical
// simulation events fired, how many of those were coalesced into a
// preceding dispatch instead of going through the heap, and the
// events-per-delivered-packet ratio — the event-count regression signal
// the batching work optimizes. Cells served from the result cache
// simulate nothing, so a fully warm run reports "0 events" and the
// ratio is suppressed rather than divided by zero.
func eventLine(processed, coalesced uint64, delivered int64) string {
	events := processed + coalesced
	s := fmt.Sprintf("%d events (%d coalesced)", events, coalesced)
	if delivered > 0 {
		s += fmt.Sprintf(", %.2f events/pkt", float64(events)/float64(delivered))
	}
	return s
}

// cacheLine renders the session counter delta as "N hits, M computed
// (P% hit)"; with no cells at all there is no rate to report.
func cacheLine(hits, computed int64) string {
	total := hits + computed
	if total == 0 {
		return "cache: 0 hits, 0 computed"
	}
	return fmt.Sprintf("cache: %d hits, %d computed (%d%% hit)", hits, computed, hits*100/total)
}

func main() {
	var (
		expName   = flag.String("exp", "", "experiment to run (see -list), or \"all\"")
		scale     = flag.String("scale", "full", "scale profile: full or quick")
		list      = flag.Bool("list", false, "list experiments and exit")
		jobs      = flag.Int("j", 0, "worker count for the simulation matrix (0 = GOMAXPROCS); results are identical for any value")
		cacheDir  = flag.String("cache-dir", "", "persist per-cell results under this directory (created if missing); reruns serve unchanged cells from it")
		shardStr  = flag.String("shard", "", "run only cells with index%n == i, given as \"i/n\" (requires -cache-dir; join shards with -merge)")
		merge     = flag.Bool("merge", false, "assemble the report purely from cached records, simulating nothing (requires -cache-dir)")
		noCache   = flag.Bool("no-cache", false, "ignore -cache-dir: compute every cell, neither reading nor writing the store")
		stats     = flag.Bool("cache-stats", false, "audit -cache-dir: list experiments/scales/schema versions occupying the store, then exit")
		prune     = flag.Bool("cache-prune", false, "delete record groups in -cache-dir that a full catalog run at the given -scale would no longer read, then exit")
		olderThan = flag.Duration("older-than", 0, "with -cache-prune: also delete records inside the active matrix not rewritten within this age (e.g. 720h)")
		dryRun    = flag.Bool("dry-run", false, "with -cache-prune: report what would be deleted without removing anything")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
		force     = flag.Bool("force", false, "allow -cpuprofile/-memprofile/-trace-out/-decisions-out/-report-json to overwrite an existing file")
		traceCell = flag.String("trace-cell", "", "flight-record one simulation cell, given as \"family/index\" with the index after the LAST '/' (e.g. grid/ecf/14); requires -exp and -trace-out")
		traceOut  = flag.String("trace-out", "", "write the traced cell's Chrome trace-event JSON (Perfetto/chrome://tracing) to this file (requires -trace-cell)")
		decsOut   = flag.String("decisions-out", "", "also write the traced cell's per-transfer scheduler decision log to this file (requires -trace-cell)")
		reportOut = flag.String("report-json", "", "write a machine-readable run report (per-experiment wall clock, cache/event counters, output hashes, heap stats) to this file")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and a /debug/obs counter snapshot on this address (e.g. localhost:6060) for the life of the run")
		progress  = flag.Bool("progress", false, "report cells completed/total with rate and ETA on stderr while sweeps run")
		queueName = flag.String("queue", sim.DefaultQueue().String(), "event-queue implementation: heap (4-ary min-heap) or tiered (two-tier calendar); output is byte-identical either way")
		lanes     = flag.Int("lanes", 1, "run up to K similar cells in lane lockstep per worker (grid-family experiments; others run scalar; 1 = classic scalar execution)")
		joinAddr  = flag.String("join", "", "join the ecfd coordinator at this host:port as a lease-loop worker (the coordinator dictates the scale)")
		workerID  = flag.String("worker-id", "", "worker identity for -join leases and logs (default hostname-pid)")
		cellTO    = flag.Duration("cell-timeout", 0, "per-cell wall-clock budget; a cell exceeding it fails loudly naming the experiment and cell index (0 = no deadline)")
	)
	flag.Parse()

	// Select the queue implementation before anything simulates (pooled
	// engines re-adopt the default at Reset, so this also covers engines
	// a package-level init may already have built).
	if qk, err := sim.ParseQueueKind(*queueName); err != nil {
		failUsage("-queue: %v", err)
	} else {
		sim.SetDefaultQueue(qk)
	}

	if *cellTO < 0 {
		failUsage("-cell-timeout must be a positive duration")
	}
	if *lanes < 1 {
		failUsage("-lanes must be at least 1 (1 = scalar execution)")
	}
	if *lanes > sim.MaxLanes {
		failUsage("-lanes %d exceeds the maximum of %d (wider batches thrash the cache instead of helping)", *lanes, sim.MaxLanes)
	}
	if *joinAddr != "" {
		// Join mode is a worker loop: the coordinator owns the sweep
		// definition, so flags that define or render a local sweep
		// conflict with it.
		conflicts := map[string]string{
			"exp": "the coordinator sweeps the full catalog", "scale": "the coordinator dictates the scale",
			"shard": "leases replace shards", "merge": "render from the coordinator's store after the sweep",
			"no-cache": "join mode decides store use itself", "cache-stats": "runs alone", "cache-prune": "runs alone",
			"trace-cell": "trace on a local run instead", "trace-out": "trace on a local run instead",
			"decisions-out": "trace on a local run instead", "report-json": "reports cover local runs",
			"lanes": "lease batches are scalar (per-cell claims don't group into lanes)",
		}
		flag.Visit(func(f *flag.Flag) {
			if why, bad := conflicts[f.Name]; bad {
				failUsage("-join cannot be combined with -%s (%s)", f.Name, why)
			}
		})
		runJoin(*joinAddr, *jobs, *cacheDir, *cellTO, *workerID, *progress)
		return
	}

	if *traceOut != "" && *traceCell == "" {
		failUsage("-trace-out requires -trace-cell (nothing records without a target)")
	}
	if *decsOut != "" && *traceCell == "" {
		failUsage("-decisions-out requires -trace-cell (nothing records without a target)")
	}
	var traceExp string
	var traceIdx int
	if *traceCell != "" {
		if *expName == "" {
			failUsage("-trace-cell requires -exp (the experiment whose sweep runs the cell)")
		}
		if *merge {
			failUsage("-trace-cell cannot be combined with -merge (a merge renders from cache and simulates nothing)")
		}
		if *traceOut == "" {
			failUsage("-trace-cell requires -trace-out (the trace has to go somewhere)")
		}
		if *lanes > 1 {
			// The flight recorder is single-cell: the traced cell's lane
			// group would have to drop to scalar execution anyway, so the
			// combination is refused rather than silently de-laned.
			failUsage("-trace-cell cannot be combined with -lanes %d (tracing runs the cell scalar; rerun with -lanes 1)", *lanes)
		}
		var err error
		traceExp, traceIdx, err = parseTraceCell(*traceCell)
		if err != nil {
			failUsage("%v", err)
		}
	}

	if *stats {
		if *cacheDir == "" {
			failUsage("-cache-stats requires -cache-dir (it audits the store)")
		}
		if *expName != "" || *shardStr != "" || *merge || *noCache || *prune {
			failUsage("-cache-stats runs alone (no -exp/-shard/-merge/-no-cache/-cache-prune)")
		}
		cacheStats(*cacheDir)
		return
	}
	if *dryRun && !*prune {
		failUsage("-dry-run only applies to -cache-prune")
	}
	if *olderThan != 0 && !*prune {
		failUsage("-older-than only applies to -cache-prune")
	}
	if *olderThan < 0 {
		failUsage("-older-than must be a positive duration")
	}
	if *prune {
		if *cacheDir == "" {
			failUsage("-cache-prune requires -cache-dir (it prunes the store)")
		}
		if *expName != "" || *shardStr != "" || *merge || *noCache {
			failUsage("-cache-prune runs alone (no -exp/-shard/-merge/-no-cache); the active matrix is the full catalog at the given -scale")
		}
		sc, ok := parseScale(*scale)
		if !ok {
			failUsage("unknown scale %q (full|quick)", *scale)
		}
		cachePrune(*cacheDir, sc, *olderThan, *dryRun)
		return
	}
	stopProfiles := profiling(*cpuProf, *memProf, *force)
	defer stopProfiles()

	// Artifact destinations open up front under the same clobber guard
	// as the profiles: a refusal (or an unwritable path) aborts before
	// hours of simulation, not after.
	var traceFile, decsFile, reportFile *os.File
	if *traceOut != "" {
		traceFile = createProfile("-trace-out", *traceOut, *force)
	}
	if *decsOut != "" {
		decsFile = createProfile("-decisions-out", *decsOut, *force)
	}
	if *reportOut != "" {
		reportFile = createProfile("-report-json", *reportOut, *force)
	}

	if *list || *expName == "" {
		names := make([]string, 0, len(catalog))
		for _, e := range catalog {
			names = append(names, fmt.Sprintf("  %-7s %s", e.name, e.desc))
		}
		sort.Strings(names)
		fmt.Println("available experiments (-exp <name> | all):")
		fmt.Println(strings.Join(names, "\n"))
		if *expName == "" && !*list {
			os.Exit(2)
		}
		return
	}

	sc, ok := parseScale(*scale)
	if !ok {
		failUsage("unknown scale %q (full|quick)", *scale)
	}
	sc.Workers = *jobs
	sc.Lanes = *lanes
	if *lanes > 1 {
		// Families without lane support run scalar; say so once per
		// family on stderr instead of silently ignoring the flag.
		var fbMu sync.Mutex
		fbSeen := make(map[string]bool)
		sc.LaneFallbackLog = func(family string) {
			fbMu.Lock()
			defer fbMu.Unlock()
			if fbSeen[family] {
				return
			}
			fbSeen[family] = true
			fmt.Fprintf(os.Stderr, "ecfbench: -lanes %d: %s has no lane support, running scalar\n", *lanes, family)
		}
	}
	sc.Results = newSession(*cacheDir, *shardStr, *merge, *noCache, *cellTO)
	if *progress {
		pp := &progressPrinter{}
		sc.Progress = pp.note
	}
	if *debugAddr != "" {
		startDebugServer(*debugAddr)
	}
	if *traceCell != "" {
		// Arm the flight recorder before any cell runs; the matching
		// cell captures itself on the way through results.runCell.
		obs.SetTraceTarget(traceExp, traceIdx)
	}
	var report *obs.RunReport
	var runHash hash.Hash
	if *reportOut != "" {
		if sc.Results == nil {
			// The report's per-cell duration stats ride on the session;
			// a cache-less run gets a store-less one (every cell still
			// computes, nothing is persisted).
			sc.Results = &results.Session{}
		}
		workers := sc.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		report = obs.NewRunReport(*scale, workers)
		runHash = sha256.New()
	}
	runStart := time.Now()

	run := func(e experiment) {
		h0, c0 := sc.Results.Stats()
		p0, c0ev := sim.TotalEvents()
		dl0 := netsim.TotalDelivered()
		miss0 := sc.Results.MissingCount()
		start := time.Now()
		out, err := runExperiment(e, sc)
		if err != nil {
			fail("%s: %v", e.name, err)
		}
		sharded := sc.Results.Sharded()
		var block string
		if sharded {
			// A shard pass fills the store; its result structures are
			// partial, so the report is rendered by -merge instead.
			block = fmt.Sprintf("=== %s (%s) — shard %s cached, render with -merge ===\n", e.name, e.desc, sc.Results.Shard)
		} else if missed := sc.Results.MissingCount() - miss0; missed > 0 {
			// A merge that found holes: the result structures are
			// partial, so nothing is rendered for this experiment —
			// the run ends with the full grouped hole report and exit 1.
			fmt.Fprintf(os.Stderr, "ecfbench: %s: %d cells missing from the store; block suppressed\n", e.name, missed)
		} else {
			block = fmt.Sprintf("=== %s (%s) ===\n%s\n", e.name, e.desc, out)
		}
		if _, err := os.Stdout.WriteString(block); err != nil {
			fail("writing stdout: %v", err)
		}
		elapsed := time.Since(start)
		h1, c1 := sc.Results.Stats()
		p1, c1ev := sim.TotalEvents()
		dl1 := netsim.TotalDelivered()
		if report != nil {
			runHash.Write([]byte(block))
			sum := sha256.Sum256([]byte(block))
			er := obs.ExperimentReport{
				Name:             e.name,
				Description:      e.desc,
				WallClockMs:      float64(elapsed.Nanoseconds()) / 1e6,
				CacheHits:        h1 - h0,
				CacheComputed:    c1 - c0,
				EventsProcessed:  p1 - p0,
				EventsCoalesced:  c1ev - c0ev,
				EventsTotal:      (p1 - p0) + (c1ev - c0ev),
				PacketsDelivered: dl1 - dl0,
				Sharded:          sharded,
				OutputBytes:      len(block),
				OutputSHA256:     hex.EncodeToString(sum[:]),
			}
			er.SetCellDurations(sc.Results.TakeCellDurations())
			report.Experiments = append(report.Experiments, er)
		}
		status := fmt.Sprintf("%s: %v", e.name, elapsed.Round(time.Millisecond))
		if sc.Results != nil {
			status += ", " + cacheLine(h1-h0, c1-c0)
		}
		status += ", " + eventLine(p1-p0, c1ev-c0ev, dl1-dl0)
		fmt.Fprintln(os.Stderr, status)
	}

	if *expName == "all" {
		for _, e := range catalog {
			run(e)
		}
		status := fmt.Sprintf("all %d experiments: %v total", len(catalog), time.Since(runStart).Round(time.Millisecond))
		if sc.Results != nil {
			status += ", " + cacheLine(sc.Results.Stats())
		}
		pAll, cAll := sim.TotalEvents()
		status += ", " + eventLine(pAll, cAll, netsim.TotalDelivered())
		fmt.Fprintln(os.Stderr, status)
	} else {
		found := false
		for _, e := range catalog {
			if e.name == *expName {
				run(e)
				found = true
				break
			}
		}
		if !found {
			failUsage("unknown experiment %q; use -list", *expName)
		}
	}

	if *merge && sc.Results.MissingCount() > 0 {
		// Every experiment ran, so the hole list is complete — one
		// report covers the whole sweep instead of dying on the first
		// missing cell.
		reportMissing(sc.Results, *cacheDir, *scale)
	}

	qs := sim.TotalQueueStats()
	fmt.Fprintln(os.Stderr, queueLine(sim.DefaultQueue(), qs))

	if *traceCell != "" {
		writeTrace(traceFile, decsFile)
	}
	if report != nil {
		report.WallClockMs = float64(time.Since(runStart).Nanoseconds()) / 1e6
		report.OutputSHA256 = hex.EncodeToString(runHash.Sum(nil))
		report.Queue = obs.QueueReport{
			Kind:          sim.DefaultQueue().String(),
			DepthMax:      qs.DepthMax,
			DepthMean:     qs.DepthMean(),
			NearScheduled: qs.NearScheduled,
			FarScheduled:  qs.FarScheduled,
			Migrated:      qs.Migrated,
			BucketSorts:   qs.BucketSorts,
			BucketMax:     qs.BucketMax,
		}
		report.Mem = obs.CaptureMemStats()
		if err := report.Write(reportFile); err != nil {
			fail("-report-json: %v", err)
		}
		if err := reportFile.Close(); err != nil {
			fail("-report-json: %v", err)
		}
		fmt.Fprintf(os.Stderr, "run report: %d experiments → %s\n", len(report.Experiments), *reportOut)
	}
}
