// Command ecfbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ecfbench -list
//	ecfbench -exp fig9
//	ecfbench -exp table3 -scale quick
//	ecfbench -exp all -j 8
//
// Each experiment prints the same rows/series the paper reports (see
// README.md for the experiment index). -j fans the experiment's
// independent simulation cells across that many workers; the output is
// byte-identical for any -j value.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/experiments"
)

// experiment is a named, runnable paper artifact.
type experiment struct {
	name string
	desc string
	run  func(sc experiments.Scale) fmt.Stringer
}

var catalog = []experiment{
	{"table1", "video bit rates vs. resolution", func(experiments.Scale) fmt.Stringer { return experiments.Table1() }},
	{"table2", "avg RTT with bandwidth regulation", func(sc experiments.Scale) fmt.Stringer { return experiments.Table2(sc) }},
	{"table3", "# of IW resets per scheduler (0.3/8.6)", func(sc experiments.Scale) fmt.Stringer { return experiments.Table3(sc) }},
	{"table4", "wild web browsing averages", func(sc experiments.Scale) fmt.Stringer { return experiments.Table4(sc) }},
	{"fig1", "ON-OFF download pattern", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure1(sc) }},
	{"fig2", "default-scheduler bitrate-ratio heat map", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure2(sc) }},
	{"fig3", "send-buffer occupancy trace (0.3/8.6)", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure3(sc) }},
	{"fig5", "CDF of last-packet time differences", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure5(sc) }},
	{"fig6", "throughput with/without CWND reset", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure6(sc) }},
	{"fig7", "traffic split, default vs ideal", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure7(sc) }},
	{"fig9", "bitrate-ratio heat maps for 4 schedulers", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure9(sc) }},
	{"fig10", "traffic split: BLEST vs ECF vs ideal", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure10(sc) }},
	{"fig11", "WiFi CWND traces per scheduler", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure11(sc) }},
	{"fig12", "LTE CWND traces per scheduler", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure12(sc) }},
	{"fig13", "OOO-delay CCDF, default scheduler", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure13(sc) }},
	{"fig14", "OOO-delay CCDF per scheduler", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure14(sc) }},
	{"fig15", "four-subflow bitrate ratios", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure15(sc) }},
	{"fig16", "random bandwidth-change throughput", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure16(sc) }},
	{"fig17", "per-chunk throughput trace", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure17(sc) }},
	{"fig18", "wget completion times", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure18(sc) }},
	{"fig19", "ECF/default wget ratio heat maps", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure19(sc) }},
	{"fig20", "web object completion-time CCDFs", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure20(sc) }},
	{"fig21", "web browsing OOO-delay CCDFs", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure21(sc) }},
	{"fig22", "wild streaming: RTTs and throughput", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure22(sc) }},
	{"fig23", "wild web: completion and OOO CCDFs", func(sc experiments.Scale) fmt.Stringer { return experiments.Figure23(sc) }},
}

func main() {
	var (
		expName = flag.String("exp", "", "experiment to run (see -list), or \"all\"")
		scale   = flag.String("scale", "full", "scale profile: full or quick")
		list    = flag.Bool("list", false, "list experiments and exit")
		jobs    = flag.Int("j", 0, "worker count for the simulation matrix (0 = GOMAXPROCS); results are identical for any value")
	)
	flag.Parse()

	if *list || *expName == "" {
		names := make([]string, 0, len(catalog))
		for _, e := range catalog {
			names = append(names, fmt.Sprintf("  %-7s %s", e.name, e.desc))
		}
		sort.Strings(names)
		fmt.Println("available experiments (-exp <name> | all):")
		fmt.Println(strings.Join(names, "\n"))
		if *expName == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "full":
		sc = experiments.Full
	case "quick":
		sc = experiments.Quick
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (full|quick)\n", *scale)
		os.Exit(2)
	}
	sc.Workers = *jobs

	run := func(e experiment) {
		start := time.Now()
		out := e.run(sc)
		fmt.Printf("=== %s (%s) — %v ===\n%s\n", e.name, e.desc, time.Since(start).Round(time.Millisecond), out)
	}

	if *expName == "all" {
		start := time.Now()
		for _, e := range catalog {
			run(e)
		}
		fmt.Printf("=== all %d experiments — %v total ===\n", len(catalog), time.Since(start).Round(time.Millisecond))
		return
	}
	for _, e := range catalog {
		if e.name == *expName {
			run(e)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *expName)
	os.Exit(2)
}
