// Command benchguard turns microbenchmark output into a CI gate: it
// reads `go test -bench` output on stdin, looks up each guarded
// benchmark's pinned ceiling in the committed BENCH_pr10.json, and exits
// non-zero when ns/op, allocs/op or events/op regresses past the slack
// factor. The events/op metric (emitted by the guarded benchmarks via
// b.ReportMetric from the engine's processed+coalesced counters) pins
// the event-count reductions of the batched drain and lazy timers —
// a change that quietly reintroduces per-packet events fails CI even
// if raw ns/op noise masks it.
//
// Usage (as the bench-smoke CI job does):
//
//	go test -run xxx -bench 'EngineScheduleRun$|LinkSend$|SubflowTransfer$' \
//	    -benchmem ./internal/sim ./internal/netsim ./internal/tcp \
//	  | benchguard -baseline BENCH_pr10.json
//
// Every benchmark named in the baseline's guard_ceilings section must
// appear in the input — a benchmark that silently stops running would
// otherwise un-guard itself.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// ceiling is one guarded benchmark's pinned budget. A zero EventsPerOp
// leaves the event count unguarded (benchmarks predating the metric).
type ceiling struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	EventsPerOp float64 `json:"events_per_op"`
}

// baseline is the slice of BENCH_pr10.json this tool reads; the rest of
// the file (narrative before/after numbers) is for humans.
type baseline struct {
	GuardCeilings map[string]ceiling `json:"guard_ceilings"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
	eventsPerOp float64
	hasEvents   bool
}

// parseBenchLine parses a `go test -bench` result line, returning the
// benchmark name (GOMAXPROCS suffix stripped) and its measurements.
func parseBenchLine(line string) (string, measurement, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", measurement{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var m measurement
	ok := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			m.nsPerOp = v
			ok = true
		case "allocs/op":
			m.allocsPerOp = v
			m.hasAllocs = true
		case "events/op":
			m.eventsPerOp = v
			m.hasEvents = true
		}
	}
	return name, m, ok
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_pr10.json", "baseline JSON with a guard_ceilings section")
	slack := flag.Float64("slack", 1.25, "allowed regression factor over the pinned ceilings")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if len(base.GuardCeilings) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s has no guard_ceilings — nothing to enforce\n", *baselinePath)
		os.Exit(2)
	}

	measured := make(map[string]measurement)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the CI log
		if name, m, ok := parseBenchLine(line); ok {
			measured[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: reading stdin: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for name, c := range base.GuardCeilings {
		m, ok := measured[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: benchmark did not run (guarded benchmarks must appear in the input)\n", name)
			failed = true
			continue
		}
		if limit := c.NsPerOp * *slack; m.nsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %.1f ns/op exceeds ceiling %.1f ns/op (pinned %.1f × slack %.2f)\n",
				name, m.nsPerOp, limit, c.NsPerOp, *slack)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchguard: ok   %s: %.1f ns/op <= %.1f\n", name, m.nsPerOp, limit)
		}
		if !m.hasAllocs {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: no allocs/op in input (run with -benchmem)\n", name)
			failed = true
			continue
		}
		// A zero-alloc ceiling is exact — the whole point of the
		// allocation-free core; non-zero ceilings get the same slack.
		limit := c.AllocsPerOp * *slack
		if m.allocsPerOp > limit {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %.1f allocs/op exceeds ceiling %.1f\n", name, m.allocsPerOp, limit)
			failed = true
		} else {
			fmt.Fprintf(os.Stderr, "benchguard: ok   %s: %.1f allocs/op <= %.1f\n", name, m.allocsPerOp, limit)
		}
		if c.EventsPerOp > 0 {
			if !m.hasEvents {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: no events/op in input (the benchmark must ReportMetric it)\n", name)
				failed = true
				continue
			}
			// Event counts are deterministic for a fixed b.N schedule, but
			// b.N itself varies between runs and the priming window makes
			// the ratio mildly N-dependent, so the ceiling keeps the same
			// slack as the other metrics.
			limit := c.EventsPerOp * *slack
			if m.eventsPerOp > limit {
				fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %.2f events/op exceeds ceiling %.2f\n", name, m.eventsPerOp, limit)
				failed = true
			} else {
				fmt.Fprintf(os.Stderr, "benchguard: ok   %s: %.2f events/op <= %.2f\n", name, m.eventsPerOp, limit)
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
