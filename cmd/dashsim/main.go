// Command dashsim streams a DASH video over a simulated two-path MPTCP
// connection and prints the per-chunk log plus session summary — the §5.2
// workload as a standalone tool.
//
// Example:
//
//	dashsim -wifi 0.3 -lte 8.6 -sched ecf -video 240
//	dashsim -wifi 4.2 -lte 8.6 -sched minrtt -abr bba -chunks
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dash"
	"repro/internal/sched"
)

func main() {
	var (
		wifi     = flag.Float64("wifi", 8.6, "WiFi bandwidth in Mbps")
		lte      = flag.Float64("lte", 8.6, "LTE bandwidth in Mbps")
		schedFlg = flag.String("sched", "ecf", fmt.Sprintf("scheduler %v", sched.Names()))
		video    = flag.Float64("video", 120, "video length in seconds")
		abrFlg   = flag.String("abr", "bba", "ABR algorithm: bba, rate")
		chunks   = flag.Bool("chunks", false, "print the per-chunk log")
	)
	flag.Parse()

	var abr dash.ABR
	switch *abrFlg {
	case "bba":
		abr = dash.NewBBAABR()
	case "rate":
		abr = dash.NewRateABR()
	default:
		fmt.Fprintf(os.Stderr, "unknown abr %q (bba|rate)\n", *abrFlg)
		os.Exit(2)
	}

	net := core.NewNetwork(core.DefaultPaths(*wifi, *lte))
	conn := net.NewConn(core.ConnOptions{Scheduler: *schedFlg})
	player := dash.NewPlayer(net.Engine(), conn, dash.PlayerConfig{
		VideoSeconds: *video,
		ABR:          abr,
	})
	var res *dash.Result
	player.Start(func(r *dash.Result) { res = r })
	net.RunAll()
	if res == nil {
		fmt.Fprintln(os.Stderr, "stream did not complete")
		os.Exit(1)
	}

	if *chunks {
		fmt.Println("chunk  rep     Mbps(enc)  Mbps(meas)  start(s)  done(s)")
		for _, c := range res.Chunks {
			fmt.Printf("%5d  %-6s %9.2f  %10.2f  %8.2f  %7.2f\n",
				c.Index, c.Rep.Name, c.Rep.Mbps, c.ThroughputMbps,
				c.RequestedAt.Seconds(), c.CompletedAt.Seconds())
		}
	}

	ideal := dash.IdealBitrateMbps(*wifi+*lte, dash.StandardLadder)
	fmt.Printf("scheduler=%s wifi=%.1f lte=%.1f video=%.0fs abr=%s\n", *schedFlg, *wifi, *lte, *video, *abrFlg)
	fmt.Printf("avg bitrate:    %.2f Mbps (ideal %.2f, ratio %.2f)\n",
		res.AvgBitrateMbps(), ideal, res.AvgBitrateMbps()/ideal)
	fmt.Printf("avg throughput: %.2f Mbps per chunk\n", res.AvgThroughputMbps())
	fmt.Printf("rebuffers:      %d (stalled %.1fs)\n", res.Rebuffers, res.StallTime.Seconds())
	var iw int64
	for _, sf := range conn.Subflows() {
		iw += sf.Stats().IWResets
	}
	fmt.Printf("IW resets:      %d\n", iw)
}
